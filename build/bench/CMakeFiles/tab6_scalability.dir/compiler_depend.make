# Empty compiler generated dependencies file for tab6_scalability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab6_scalability.dir/tab6_scalability.cc.o"
  "CMakeFiles/tab6_scalability.dir/tab6_scalability.cc.o.d"
  "tab6_scalability"
  "tab6_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tab4_memcached_dedicated.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab4_memcached_dedicated.dir/tab4_memcached_dedicated.cc.o"
  "CMakeFiles/tab4_memcached_dedicated.dir/tab4_memcached_dedicated.cc.o.d"
  "tab4_memcached_dedicated"
  "tab4_memcached_dedicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_memcached_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

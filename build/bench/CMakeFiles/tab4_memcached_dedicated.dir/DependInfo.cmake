
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab4_memcached_dedicated.cc" "bench/CMakeFiles/tab4_memcached_dedicated.dir/tab4_memcached_dedicated.cc.o" "gcc" "bench/CMakeFiles/tab4_memcached_dedicated.dir/tab4_memcached_dedicated.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtvirt_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for fig4_video_streaming.
# This may be replaced when dependencies are built.

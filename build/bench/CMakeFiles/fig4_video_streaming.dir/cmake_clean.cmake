file(REMOVE_RECURSE
  "CMakeFiles/fig4_video_streaming.dir/fig4_video_streaming.cc.o"
  "CMakeFiles/fig4_video_streaming.dir/fig4_video_streaming.cc.o.d"
  "fig4_video_streaming"
  "fig4_video_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_video_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

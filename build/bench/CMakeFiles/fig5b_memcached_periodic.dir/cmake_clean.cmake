file(REMOVE_RECURSE
  "CMakeFiles/fig5b_memcached_periodic.dir/fig5b_memcached_periodic.cc.o"
  "CMakeFiles/fig5b_memcached_periodic.dir/fig5b_memcached_periodic.cc.o.d"
  "fig5b_memcached_periodic"
  "fig5b_memcached_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_memcached_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5b_memcached_periodic.
# This may be replaced when dependencies are built.

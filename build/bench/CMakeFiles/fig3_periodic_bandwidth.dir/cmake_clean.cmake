file(REMOVE_RECURSE
  "CMakeFiles/fig3_periodic_bandwidth.dir/fig3_periodic_bandwidth.cc.o"
  "CMakeFiles/fig3_periodic_bandwidth.dir/fig3_periodic_bandwidth.cc.o.d"
  "fig3_periodic_bandwidth"
  "fig3_periodic_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_periodic_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig3_periodic_bandwidth.
# This may be replaced when dependencies are built.

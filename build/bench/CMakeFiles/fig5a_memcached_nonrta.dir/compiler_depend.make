# Empty compiler generated dependencies file for fig5a_memcached_nonrta.
# This may be replaced when dependencies are built.

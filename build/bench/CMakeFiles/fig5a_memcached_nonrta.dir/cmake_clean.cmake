file(REMOVE_RECURSE
  "CMakeFiles/fig5a_memcached_nonrta.dir/fig5a_memcached_nonrta.cc.o"
  "CMakeFiles/fig5a_memcached_nonrta.dir/fig5a_memcached_nonrta.cc.o.d"
  "fig5a_memcached_nonrta"
  "fig5a_memcached_nonrta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_memcached_nonrta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sporadic_groups.
# This may be replaced when dependencies are built.

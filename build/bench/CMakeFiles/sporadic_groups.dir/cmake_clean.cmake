file(REMOVE_RECURSE
  "CMakeFiles/sporadic_groups.dir/sporadic_groups.cc.o"
  "CMakeFiles/sporadic_groups.dir/sporadic_groups.cc.o.d"
  "sporadic_groups"
  "sporadic_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sporadic_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tab2_csa_interfaces.dir/tab2_csa_interfaces.cc.o"
  "CMakeFiles/tab2_csa_interfaces.dir/tab2_csa_interfaces.cc.o.d"
  "tab2_csa_interfaces"
  "tab2_csa_interfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_csa_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

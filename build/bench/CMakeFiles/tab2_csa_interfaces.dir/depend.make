# Empty dependencies file for tab2_csa_interfaces.
# This may be replaced when dependencies are built.

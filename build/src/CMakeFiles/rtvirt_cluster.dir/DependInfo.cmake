
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/migration_model.cc" "src/CMakeFiles/rtvirt_cluster.dir/cluster/migration_model.cc.o" "gcc" "src/CMakeFiles/rtvirt_cluster.dir/cluster/migration_model.cc.o.d"
  "/root/repo/src/cluster/placement.cc" "src/CMakeFiles/rtvirt_cluster.dir/cluster/placement.cc.o" "gcc" "src/CMakeFiles/rtvirt_cluster.dir/cluster/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtvirt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for rtvirt_cluster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librtvirt_cluster.a"
)

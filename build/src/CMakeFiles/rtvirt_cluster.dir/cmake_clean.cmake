file(REMOVE_RECURSE
  "CMakeFiles/rtvirt_cluster.dir/cluster/migration_model.cc.o"
  "CMakeFiles/rtvirt_cluster.dir/cluster/migration_model.cc.o.d"
  "CMakeFiles/rtvirt_cluster.dir/cluster/placement.cc.o"
  "CMakeFiles/rtvirt_cluster.dir/cluster/placement.cc.o.d"
  "librtvirt_cluster.a"
  "librtvirt_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtvirt_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rtvirt_hv.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/machine.cc" "src/CMakeFiles/rtvirt_hv.dir/hv/machine.cc.o" "gcc" "src/CMakeFiles/rtvirt_hv.dir/hv/machine.cc.o.d"
  "/root/repo/src/hv/pcpu.cc" "src/CMakeFiles/rtvirt_hv.dir/hv/pcpu.cc.o" "gcc" "src/CMakeFiles/rtvirt_hv.dir/hv/pcpu.cc.o.d"
  "/root/repo/src/hv/vcpu.cc" "src/CMakeFiles/rtvirt_hv.dir/hv/vcpu.cc.o" "gcc" "src/CMakeFiles/rtvirt_hv.dir/hv/vcpu.cc.o.d"
  "/root/repo/src/hv/vm.cc" "src/CMakeFiles/rtvirt_hv.dir/hv/vm.cc.o" "gcc" "src/CMakeFiles/rtvirt_hv.dir/hv/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtvirt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

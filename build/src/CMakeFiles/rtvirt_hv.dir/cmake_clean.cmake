file(REMOVE_RECURSE
  "CMakeFiles/rtvirt_hv.dir/hv/machine.cc.o"
  "CMakeFiles/rtvirt_hv.dir/hv/machine.cc.o.d"
  "CMakeFiles/rtvirt_hv.dir/hv/pcpu.cc.o"
  "CMakeFiles/rtvirt_hv.dir/hv/pcpu.cc.o.d"
  "CMakeFiles/rtvirt_hv.dir/hv/vcpu.cc.o"
  "CMakeFiles/rtvirt_hv.dir/hv/vcpu.cc.o.d"
  "CMakeFiles/rtvirt_hv.dir/hv/vm.cc.o"
  "CMakeFiles/rtvirt_hv.dir/hv/vm.cc.o.d"
  "librtvirt_hv.a"
  "librtvirt_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtvirt_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librtvirt_hv.a"
)

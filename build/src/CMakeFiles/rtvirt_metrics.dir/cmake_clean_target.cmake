file(REMOVE_RECURSE
  "librtvirt_metrics.a"
)

# Empty dependencies file for rtvirt_metrics.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/alloc_tracker.cc" "src/CMakeFiles/rtvirt_metrics.dir/metrics/alloc_tracker.cc.o" "gcc" "src/CMakeFiles/rtvirt_metrics.dir/metrics/alloc_tracker.cc.o.d"
  "/root/repo/src/metrics/deadline_monitor.cc" "src/CMakeFiles/rtvirt_metrics.dir/metrics/deadline_monitor.cc.o" "gcc" "src/CMakeFiles/rtvirt_metrics.dir/metrics/deadline_monitor.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/CMakeFiles/rtvirt_metrics.dir/metrics/report.cc.o" "gcc" "src/CMakeFiles/rtvirt_metrics.dir/metrics/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtvirt_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/rtvirt_metrics.dir/metrics/alloc_tracker.cc.o"
  "CMakeFiles/rtvirt_metrics.dir/metrics/alloc_tracker.cc.o.d"
  "CMakeFiles/rtvirt_metrics.dir/metrics/deadline_monitor.cc.o"
  "CMakeFiles/rtvirt_metrics.dir/metrics/deadline_monitor.cc.o.d"
  "CMakeFiles/rtvirt_metrics.dir/metrics/report.cc.o"
  "CMakeFiles/rtvirt_metrics.dir/metrics/report.cc.o.d"
  "librtvirt_metrics.a"
  "librtvirt_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtvirt_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

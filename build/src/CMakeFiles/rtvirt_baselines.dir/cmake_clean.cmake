file(REMOVE_RECURSE
  "CMakeFiles/rtvirt_baselines.dir/baselines/credit.cc.o"
  "CMakeFiles/rtvirt_baselines.dir/baselines/credit.cc.o.d"
  "CMakeFiles/rtvirt_baselines.dir/baselines/server_edf.cc.o"
  "CMakeFiles/rtvirt_baselines.dir/baselines/server_edf.cc.o.d"
  "librtvirt_baselines.a"
  "librtvirt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtvirt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

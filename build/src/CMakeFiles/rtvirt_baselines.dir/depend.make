# Empty dependencies file for rtvirt_baselines.
# This may be replaced when dependencies are built.

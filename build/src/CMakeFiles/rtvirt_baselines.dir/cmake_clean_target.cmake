file(REMOVE_RECURSE
  "librtvirt_baselines.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rtvirt_runner.dir/runner/experiment.cc.o"
  "CMakeFiles/rtvirt_runner.dir/runner/experiment.cc.o.d"
  "librtvirt_runner.a"
  "librtvirt_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtvirt_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

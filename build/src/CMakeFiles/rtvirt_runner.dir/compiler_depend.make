# Empty compiler generated dependencies file for rtvirt_runner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librtvirt_runner.a"
)

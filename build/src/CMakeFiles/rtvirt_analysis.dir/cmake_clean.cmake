file(REMOVE_RECURSE
  "CMakeFiles/rtvirt_analysis.dir/analysis/carts.cc.o"
  "CMakeFiles/rtvirt_analysis.dir/analysis/carts.cc.o.d"
  "CMakeFiles/rtvirt_analysis.dir/analysis/dmpr.cc.o"
  "CMakeFiles/rtvirt_analysis.dir/analysis/dmpr.cc.o.d"
  "CMakeFiles/rtvirt_analysis.dir/analysis/resource_model.cc.o"
  "CMakeFiles/rtvirt_analysis.dir/analysis/resource_model.cc.o.d"
  "librtvirt_analysis.a"
  "librtvirt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtvirt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

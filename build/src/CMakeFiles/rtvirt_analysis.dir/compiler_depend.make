# Empty compiler generated dependencies file for rtvirt_analysis.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/carts.cc" "src/CMakeFiles/rtvirt_analysis.dir/analysis/carts.cc.o" "gcc" "src/CMakeFiles/rtvirt_analysis.dir/analysis/carts.cc.o.d"
  "/root/repo/src/analysis/dmpr.cc" "src/CMakeFiles/rtvirt_analysis.dir/analysis/dmpr.cc.o" "gcc" "src/CMakeFiles/rtvirt_analysis.dir/analysis/dmpr.cc.o.d"
  "/root/repo/src/analysis/resource_model.cc" "src/CMakeFiles/rtvirt_analysis.dir/analysis/resource_model.cc.o" "gcc" "src/CMakeFiles/rtvirt_analysis.dir/analysis/resource_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtvirt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librtvirt_analysis.a"
)

file(REMOVE_RECURSE
  "librtvirt_sim.a"
)

# Empty compiler generated dependencies file for rtvirt_sim.
# This may be replaced when dependencies are built.

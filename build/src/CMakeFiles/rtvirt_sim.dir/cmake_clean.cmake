file(REMOVE_RECURSE
  "CMakeFiles/rtvirt_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/rtvirt_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/rtvirt_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/rtvirt_sim.dir/sim/simulator.cc.o.d"
  "CMakeFiles/rtvirt_sim.dir/sim/stats.cc.o"
  "CMakeFiles/rtvirt_sim.dir/sim/stats.cc.o.d"
  "librtvirt_sim.a"
  "librtvirt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtvirt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rtvirt_guest.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librtvirt_guest.a"
)

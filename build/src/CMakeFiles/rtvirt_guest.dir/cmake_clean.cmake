file(REMOVE_RECURSE
  "CMakeFiles/rtvirt_guest.dir/guest/guest_os.cc.o"
  "CMakeFiles/rtvirt_guest.dir/guest/guest_os.cc.o.d"
  "librtvirt_guest.a"
  "librtvirt_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtvirt_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

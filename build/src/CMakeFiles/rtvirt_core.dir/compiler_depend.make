# Empty compiler generated dependencies file for rtvirt_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librtvirt_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rtvirt_core.dir/rtvirt/dpwrap.cc.o"
  "CMakeFiles/rtvirt_core.dir/rtvirt/dpwrap.cc.o.d"
  "CMakeFiles/rtvirt_core.dir/rtvirt/guest_channel.cc.o"
  "CMakeFiles/rtvirt_core.dir/rtvirt/guest_channel.cc.o.d"
  "CMakeFiles/rtvirt_core.dir/rtvirt/wrap_layout.cc.o"
  "CMakeFiles/rtvirt_core.dir/rtvirt/wrap_layout.cc.o.d"
  "librtvirt_core.a"
  "librtvirt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtvirt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rtvirt_workloads.dir/workloads/churn.cc.o"
  "CMakeFiles/rtvirt_workloads.dir/workloads/churn.cc.o.d"
  "CMakeFiles/rtvirt_workloads.dir/workloads/memcached.cc.o"
  "CMakeFiles/rtvirt_workloads.dir/workloads/memcached.cc.o.d"
  "CMakeFiles/rtvirt_workloads.dir/workloads/periodic.cc.o"
  "CMakeFiles/rtvirt_workloads.dir/workloads/periodic.cc.o.d"
  "CMakeFiles/rtvirt_workloads.dir/workloads/sporadic.cc.o"
  "CMakeFiles/rtvirt_workloads.dir/workloads/sporadic.cc.o.d"
  "CMakeFiles/rtvirt_workloads.dir/workloads/vlc.cc.o"
  "CMakeFiles/rtvirt_workloads.dir/workloads/vlc.cc.o.d"
  "librtvirt_workloads.a"
  "librtvirt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtvirt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

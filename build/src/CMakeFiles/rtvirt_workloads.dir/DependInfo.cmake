
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/churn.cc" "src/CMakeFiles/rtvirt_workloads.dir/workloads/churn.cc.o" "gcc" "src/CMakeFiles/rtvirt_workloads.dir/workloads/churn.cc.o.d"
  "/root/repo/src/workloads/memcached.cc" "src/CMakeFiles/rtvirt_workloads.dir/workloads/memcached.cc.o" "gcc" "src/CMakeFiles/rtvirt_workloads.dir/workloads/memcached.cc.o.d"
  "/root/repo/src/workloads/periodic.cc" "src/CMakeFiles/rtvirt_workloads.dir/workloads/periodic.cc.o" "gcc" "src/CMakeFiles/rtvirt_workloads.dir/workloads/periodic.cc.o.d"
  "/root/repo/src/workloads/sporadic.cc" "src/CMakeFiles/rtvirt_workloads.dir/workloads/sporadic.cc.o" "gcc" "src/CMakeFiles/rtvirt_workloads.dir/workloads/sporadic.cc.o.d"
  "/root/repo/src/workloads/vlc.cc" "src/CMakeFiles/rtvirt_workloads.dir/workloads/vlc.cc.o" "gcc" "src/CMakeFiles/rtvirt_workloads.dir/workloads/vlc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtvirt_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtvirt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

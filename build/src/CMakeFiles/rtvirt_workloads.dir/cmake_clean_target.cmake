file(REMOVE_RECURSE
  "librtvirt_workloads.a"
)

# Empty compiler generated dependencies file for rtvirt_workloads.
# This may be replaced when dependencies are built.

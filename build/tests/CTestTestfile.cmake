# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bandwidth_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/wrap_layout_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/hv_test[1]_include.cmake")
include("/root/repo/build/tests/guest_test[1]_include.cmake")
include("/root/repo/build/tests/guest_gedf_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/dpwrap_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/shared_mem_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_ext_test[1]_include.cmake")
include("/root/repo/build/tests/cross_validation_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/runner_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")

# Empty dependencies file for baselines_ext_test.
# This may be replaced when dependencies are built.

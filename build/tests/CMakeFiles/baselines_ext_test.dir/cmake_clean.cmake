file(REMOVE_RECURSE
  "CMakeFiles/baselines_ext_test.dir/baselines_ext_test.cc.o"
  "CMakeFiles/baselines_ext_test.dir/baselines_ext_test.cc.o.d"
  "baselines_ext_test"
  "baselines_ext_test.pdb"
  "baselines_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

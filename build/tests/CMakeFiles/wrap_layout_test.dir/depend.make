# Empty dependencies file for wrap_layout_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wrap_layout_test.dir/wrap_layout_test.cc.o"
  "CMakeFiles/wrap_layout_test.dir/wrap_layout_test.cc.o.d"
  "wrap_layout_test"
  "wrap_layout_test.pdb"
  "wrap_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrap_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/guest_gedf_test.dir/guest_gedf_test.cc.o"
  "CMakeFiles/guest_gedf_test.dir/guest_gedf_test.cc.o.d"
  "guest_gedf_test"
  "guest_gedf_test.pdb"
  "guest_gedf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_gedf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

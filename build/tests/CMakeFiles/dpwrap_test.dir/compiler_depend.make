# Empty compiler generated dependencies file for dpwrap_test.
# This may be replaced when dependencies are built.

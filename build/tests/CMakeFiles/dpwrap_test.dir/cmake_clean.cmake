file(REMOVE_RECURSE
  "CMakeFiles/dpwrap_test.dir/dpwrap_test.cc.o"
  "CMakeFiles/dpwrap_test.dir/dpwrap_test.cc.o.d"
  "dpwrap_test"
  "dpwrap_test.pdb"
  "dpwrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpwrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

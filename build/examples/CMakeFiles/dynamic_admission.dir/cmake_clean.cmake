file(REMOVE_RECURSE
  "CMakeFiles/dynamic_admission.dir/dynamic_admission.cpp.o"
  "CMakeFiles/dynamic_admission.dir/dynamic_admission.cpp.o.d"
  "dynamic_admission"
  "dynamic_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cluster_placement.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/memcached_slo.dir/memcached_slo.cpp.o"
  "CMakeFiles/memcached_slo.dir/memcached_slo.cpp.o.d"
  "memcached_slo"
  "memcached_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memcached_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for memcached_slo.
# This may be replaced when dependencies are built.

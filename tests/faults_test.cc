// Fault-injection framework and degraded-mode recovery: deterministic fault
// traces, bounded retry, degraded fallback + virtual-time repair, VM crash
// semantics, the host watchdog, and shared-page staleness.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/faults/fault_injector.h"
#include "src/metrics/deadline_monitor.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

ExperimentConfig ResilientConfig(int pcpus) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(pcpus);
  cfg.channel.max_retries = 2;
  cfg.channel.degraded_fallback = true;
  return cfg;
}

// ---- Determinism (the acceptance criterion of the fault subsystem) ----

struct TraceSummary {
  uint64_t completed = 0;
  uint64_t misses = 0;
  uint64_t injected = 0;
  uint64_t spikes = 0;
  uint64_t retries = 0;
  uint64_t degraded = 0;
  uint64_t recoveries = 0;
  uint64_t crashes = 0;
  uint64_t reclaims = 0;

  auto Tie() const {
    return std::tie(completed, misses, injected, spikes, retries, degraded, recoveries,
                    crashes, reclaims);
  }
};

TraceSummary RunFaultedScenario(uint64_t fault_seed) {
  ExperimentConfig cfg = ResilientConfig(2);
  cfg.faults.seed = fault_seed;
  cfg.faults.hypercall_fail_prob = 0.2;
  cfg.faults.hypercall_drop_prob = 0.05;
  cfg.faults.hypercall_spike_prob = 0.1;
  cfg.faults.hypercall_spike_latency = Us(100);
  cfg.faults.hypercall_outages.push_back({Ms(300), Ms(350)});
  cfg.faults.shared_page_visibility_delay = Us(100);
  // Crash between churn boundaries so the anchor is registered when it dies.
  cfg.faults.vm_failures.push_back({/*vm_index=*/1, /*crash_at=*/Ms(520),
                                    /*restart_at=*/Ms(700)});
  cfg.dpwrap.watchdog.reclaim_crashed = true;
  cfg.dpwrap.watchdog.scan_period = Ms(10);

  Experiment exp(cfg);
  DeadlineMonitor mon;
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  for (int v = 0; v < 2; ++v) {
    GuestOs* g = exp.AddGuest("vm" + std::to_string(v), 1);
    // One long-lived anchor RTA per VM (drives completions and is the
    // reservation the watchdog reclaims when vm1 crashes)...
    auto anchor = std::make_unique<PeriodicRta>(g, "anchor" + std::to_string(v),
                                                RtaParams{Ms(2), Ms(10), false});
    mon.Watch(anchor->task());
    anchor->Start(0, Sec(2) - Ms(10));
    rtas.push_back(std::move(anchor));
    // ...plus a chain of short-lived RTAs whose register/unregister churn
    // generates enough hypercall volume for the fault draws to bite.
    for (int i = 0; i < 18; ++i) {
      auto churn = std::make_unique<PeriodicRta>(
          g, "churn" + std::to_string(v) + "." + std::to_string(i),
          RtaParams{Ms(1), Ms(10), false});
      mon.Watch(churn->task());
      churn->Start(Ms(50 * i + 5), Ms(50 * i + 45));
      rtas.push_back(std::move(churn));
    }
  }
  exp.Run(Sec(2));

  ResilienceCounters rc = exp.resilience();
  TraceSummary s;
  s.completed = mon.total_completed();
  s.misses = mon.total_misses();
  s.injected = rc.TotalInjected();
  s.spikes = rc.injected_spikes;
  s.retries = rc.retries;
  s.degraded = rc.degraded_entries;
  s.recoveries = rc.recoveries;
  s.crashes = rc.vm_crashes;
  s.reclaims = rc.watchdog_reclaims;
  return s;
}

TEST(FaultDeterminism, SameSeedSamePlanSameTrace) {
  TraceSummary a = RunFaultedScenario(/*fault_seed=*/123);
  TraceSummary b = RunFaultedScenario(/*fault_seed=*/123);
  EXPECT_EQ(a.Tie(), b.Tie());
  // Sanity: the scenario actually exercised the machinery.
  EXPECT_GT(a.completed, 0u);
  EXPECT_GT(a.injected, 0u);
  EXPECT_GT(a.retries, 0u);
  EXPECT_EQ(a.crashes, 1u);
  EXPECT_GE(a.reclaims, 1u);
}

TEST(FaultDeterminism, DifferentSeedDifferentFaultDraws) {
  TraceSummary a = RunFaultedScenario(/*fault_seed=*/123);
  TraceSummary b = RunFaultedScenario(/*fault_seed=*/987);
  // Hundreds of Bernoulli draws at p in [0.05, 0.2]: identical totals across
  // independent streams would be a one-in-many-thousands coincidence.
  EXPECT_NE(std::make_tuple(a.injected, a.spikes, a.retries),
            std::make_tuple(b.injected, b.spikes, b.retries));
}

// ---- Bounded retry ----

TEST(ChannelRetry, RetryRecoversSingleTransientFailure) {
  ExperimentConfig cfg = ResilientConfig(2);
  cfg.channel.retry_backoff = Us(50);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  int calls = 0;
  exp.machine().SetHypercallInterceptor([&calls](Vcpu*, const HypercallArgs&) {
    Machine::HypercallFault f;
    if (++calls == 1) {
      f.action = Machine::HypercallFault::Action::kFail;
    }
    return f;
  });
  Task* t = g->CreateTask("t");
  EXPECT_EQ(g->SchedSetAttr(t, RtaParams{Ms(2), Ms(10), false}), kGuestOk);
  const ChannelStats& st = exp.ChannelOf(g)->stats();
  EXPECT_EQ(st.transient_failures, 1u);
  EXPECT_EQ(st.retries, 1u);
  EXPECT_EQ(st.retry_successes, 1u);
  EXPECT_EQ(st.backoff_time, Us(50));
  // The backoff was charged to the machine's hypercall overhead account.
  EXPECT_EQ(exp.machine().overhead().hypercall_time, Us(50));
}

TEST(ChannelRetry, LegacyNoRetrySurfacesFirstFailure) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(2);  // Legacy channel: max_retries = 0.
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  exp.machine().SetHypercallInterceptor([](Vcpu*, const HypercallArgs&) {
    Machine::HypercallFault f;
    f.action = Machine::HypercallFault::Action::kFail;
    return f;
  });
  Task* t = g->CreateTask("t");
  EXPECT_EQ(g->SchedSetAttr(t, RtaParams{Ms(2), Ms(10), false}), kGuestErrBusy);
  EXPECT_FALSE(t->registered());
  const ChannelStats& st = exp.ChannelOf(g)->stats();
  EXPECT_EQ(st.retries, 0u);
  EXPECT_EQ(st.transient_failures, 1u);
  EXPECT_FALSE(exp.ChannelOf(g)->degraded(g->vm()->vcpu(0)));
}

// ---- Degraded mode ----

TEST(DegradedMode, LocalAdmissionWithinGrantThenRepair) {
  ExperimentConfig cfg = ResilientConfig(2);
  cfg.channel.max_retries = 1;
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* vcpu = g->vm()->vcpu(0);
  RtvirtGuestChannel* ch = exp.ChannelOf(g);

  bool fail_all = false;
  exp.machine().SetHypercallInterceptor([&fail_all](Vcpu*, const HypercallArgs&) {
    Machine::HypercallFault f;
    if (fail_all) {
      f.action = Machine::HypercallFault::Action::kFail;
    }
    return f;
  });

  // Healthy registration of two RTAs.
  Task* a = g->CreateTask("a");
  Task* b = g->CreateTask("b");
  ASSERT_EQ(g->SchedSetAttr(a, RtaParams{Ms(2), Ms(10), false}), kGuestOk);
  ASSERT_EQ(g->SchedSetAttr(b, RtaParams{Ms(1), Ms(10), false}), kGuestOk);
  Bandwidth granted = exp.dpwrap()->ReservedBw(vcpu);
  g->ReleaseJob(a, Ms(2), Ms(10));
  ASSERT_EQ(g->vm()->shared_page().next_deadline(0), Ms(10));

  // Channel dies. Unregistering b cannot reach the host (DEC is lost), so the
  // channel degrades: deadline sharing stops.
  fail_all = true;
  ASSERT_EQ(g->SchedUnregister(b), kGuestOk);
  EXPECT_TRUE(ch->degraded(vcpu));
  EXPECT_EQ(ch->stats().degraded_entries, 1u);
  EXPECT_EQ(g->vm()->shared_page().next_deadline(0), kTimeNever);
  // The host still holds the old (larger) reservation — safe, just stale.
  EXPECT_EQ(exp.dpwrap()->ReservedBw(vcpu), granted);

  // Local admission: re-admitting b fits inside the acknowledged grant, so it
  // succeeds without a channel round-trip. A larger task does not fit.
  EXPECT_EQ(g->SchedSetAttr(b, RtaParams{Ms(1), Ms(10), false}), kGuestOk);
  Task* c = g->CreateTask("c");
  EXPECT_EQ(g->SchedSetAttr(c, RtaParams{Ms(5), Ms(10), false}), kGuestErrBusy);

  // Channel heals: the repair loop installs the conservative standalone
  // reservation, recovers, and republishes the cached deadline. The first
  // repair tick fires 50 us after EnterDegraded; stop before job a completes
  // so the republished deadline is still on the page.
  fail_all = false;
  exp.Run(Us(100));
  EXPECT_FALSE(ch->degraded(vcpu));
  EXPECT_EQ(ch->stats().recoveries, 1u);
  EXPECT_GE(ch->stats().repair_attempts, 1u);
  Bandwidth rta_total = Bandwidth::FromSlicePeriod(Ms(3), Ms(10));  // a + b.
  EXPECT_EQ(exp.dpwrap()->ReservedBw(vcpu), ch->ConservativeBw(rta_total, Ms(10)));
  EXPECT_EQ(g->vm()->shared_page().next_deadline(0), Ms(10));
}

TEST(DegradedMode, ConservativeBwUsesFullSlack) {
  ExperimentConfig cfg = ResilientConfig(1);
  cfg.channel.budget_slack = Us(500);
  cfg.channel.max_slack_fraction = 0.1;
  Experiment exp(cfg);
  RtvirtGuestChannel ch(&exp.machine(), cfg.channel);
  // 500 us period: WithSlack trims the pad to 50 us, ConservativeBw does not.
  Bandwidth bw = Bandwidth::FromSlicePeriod(Us(100), Us(500));
  EXPECT_EQ(ch.WithSlack(bw, Us(500)) - bw, Bandwidth::FromSlicePeriod(Us(50), Us(500)));
  EXPECT_EQ(ch.ConservativeBw(bw, Us(500)), Bandwidth::One());  // 0.2 + 1.0, capped.
}

// ---- VM crash semantics ----

TEST(VmCrash, CrashBlocksVcpusDropsHypercallsAndRestartRevives) {
  ExperimentConfig cfg = ResilientConfig(2);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* v = g->vm()->vcpu(0);
  v->Wake();
  ASSERT_FALSE(v->blocked());

  exp.machine().CrashVm(g->vm());
  EXPECT_TRUE(g->vm()->crashed());
  EXPECT_TRUE(v->blocked());
  v->Wake();
  EXPECT_TRUE(v->blocked()) << "wake must be a no-op while the VM is crashed";

  HypercallArgs args;
  args.op = SchedOp::kIncBw;
  args.vcpu_a = v;
  args.bw_a = Bandwidth::FromDouble(0.1);
  args.period_a = Ms(10);
  EXPECT_EQ(exp.machine().Hypercall(v, args), kHypercallAgain);

  exp.machine().RestartVm(g->vm());
  EXPECT_FALSE(g->vm()->crashed());
  v->Wake();
  EXPECT_FALSE(v->blocked());
  EXPECT_EQ(exp.machine().Hypercall(v, args), kHypercallOk);
}

TEST(VmCrash, GuestResetDropsTasksAndJobReleasesAreLost) {
  ExperimentConfig cfg = ResilientConfig(2);
  cfg.faults.vm_failures.push_back({/*vm_index=*/0, /*crash_at=*/Ms(35),
                                    /*restart_at=*/kTimeNever});
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  DeadlineMonitor mon;
  PeriodicRta rta(g, "t", RtaParams{Ms(2), Ms(10), false});
  mon.Watch(rta.task());
  rta.Start(0, Sec(1));
  exp.Run(Ms(200));
  // ~3 jobs before the crash at 35 ms; releases after it are dropped.
  EXPECT_GT(mon.total_completed(), 0u);
  EXPECT_LE(mon.total_completed(), 4u);
  EXPECT_FALSE(rta.task()->registered());
  EXPECT_EQ(exp.resilience().vm_crashes, 1u);
}

// ---- Host watchdog ----

TEST(Watchdog, ReclaimsOrphanedReservationsOfCrashedVm) {
  ExperimentConfig cfg = ResilientConfig(2);
  cfg.faults.vm_failures.push_back({/*vm_index=*/0, /*crash_at=*/Ms(5),
                                    /*restart_at=*/kTimeNever});
  cfg.dpwrap.watchdog.reclaim_crashed = true;
  cfg.dpwrap.watchdog.scan_period = Ms(10);
  Experiment exp(cfg);
  GuestOs* doomed = exp.AddGuest("doomed", 1);
  GuestOs* healthy = exp.AddGuest("healthy", 1);
  Task* td = doomed->CreateTask("td");
  Task* th = healthy->CreateTask("th");
  ASSERT_EQ(doomed->SchedSetAttr(td, RtaParams{Ms(3), Ms(10), false}), kGuestOk);
  ASSERT_EQ(healthy->SchedSetAttr(th, RtaParams{Ms(2), Ms(10), false}), kGuestOk);
  Bandwidth healthy_bw = exp.dpwrap()->ReservedBw(healthy->vm()->vcpu(0));
  ASSERT_GT(exp.dpwrap()->ReservedBw(doomed->vm()->vcpu(0)), Bandwidth::Zero());

  exp.Run(Ms(100));
  // The crashed VM's reservation is gone, the healthy VM's is untouched.
  EXPECT_EQ(exp.dpwrap()->ReservedBw(doomed->vm()->vcpu(0)), Bandwidth::Zero());
  EXPECT_EQ(exp.dpwrap()->ReservedBw(healthy->vm()->vcpu(0)), healthy_bw);
  EXPECT_EQ(exp.dpwrap()->total_reserved(), healthy_bw);
  EXPECT_GE(exp.dpwrap()->watchdog_reclaims(), 1u);
}

TEST(Watchdog, FreshnessHorizonDistrustsStaleDeadlines) {
  ExperimentConfig cfg = ResilientConfig(2);
  cfg.dpwrap.watchdog.freshness_horizon = Ms(5);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* v = g->vm()->vcpu(0);
  HypercallArgs args;
  args.op = SchedOp::kIncBw;
  args.vcpu_a = v;
  args.bw_a = Bandwidth::FromDouble(0.5);
  args.period_a = Ms(10);
  ASSERT_EQ(exp.machine().Hypercall(v, args), kHypercallOk);
  // One publication at t=0, never refreshed: replans past the horizon must
  // fall back to the sporadic worst case instead of trusting it.
  g->vm()->shared_page().PublishNextDeadline(0, Ms(500));
  exp.Run(Ms(150));
  EXPECT_GE(exp.dpwrap()->stale_rejections(), 1u);
}

// ---- Shared-page staleness via the injector ----

TEST(Staleness, InjectorDelaysGuestPublicationVisibility) {
  ExperimentConfig cfg = ResilientConfig(1);
  cfg.faults.shared_page_visibility_delay = Us(200);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  exp.Run(Ms(1));  // Arms the injector (sets the delay on the VM's page).
  SharedSchedPage& page = g->vm()->shared_page();
  ASSERT_EQ(page.visibility_delay(), Us(200));

  page.PublishNextDeadline(0, Ms(9));
  EXPECT_EQ(page.next_deadline(0), kTimeNever) << "write still in the coherence window";
  EXPECT_EQ(page.last_publish_time(0), -1);
  exp.Run(Ms(1) + Us(200));
  EXPECT_EQ(page.next_deadline(0), Ms(9));
  EXPECT_EQ(page.last_publish_time(0), Ms(1));
}

// ---- Plan validation (trust-boundary PR) ----
//
// Every VM-indexed event class is bounds-checked against the machine's VM
// count, and the error names the offending entry — a misconfigured sweep
// fails at Arm() with a usable message instead of dereferencing a missing VM
// mid-run.

TEST(PlanValidation, AdversarialGuestVmIndexOutOfRangeNamesEntry) {
  FaultPlan plan;
  FaultPlan::AdversarialGuest ok;
  ok.kind = FaultPlan::AdversarialGuest::Kind::kDeadlineLies;
  ok.vm_index = 0;
  ok.start = Ms(1);
  ok.end = Ms(2);
  plan.adversarial_guests.push_back(ok);
  FaultPlan::AdversarialGuest bad = ok;
  bad.vm_index = 7;
  plan.adversarial_guests.push_back(bad);
  std::string err = plan.Validate(/*num_pcpus=*/4, /*num_vms=*/2);
  EXPECT_NE(err.find("adversarial_guests[1]"), std::string::npos) << err;
  EXPECT_NE(err.find("vm index out of range"), std::string::npos) << err;
  bad.vm_index = -1;
  plan.adversarial_guests.back() = bad;
  err = plan.Validate(/*num_pcpus=*/4, /*num_vms=*/-1);  // Unknown VM count.
  EXPECT_NE(err.find("adversarial_guests[1]"), std::string::npos)
      << "negative indices are rejected even when the VM count is unknown: " << err;
}

TEST(PlanValidation, VmFailureIndexOutOfRangeNamesEntry) {
  FaultPlan plan;
  plan.vm_failures.push_back({/*vm_index=*/3, /*crash_at=*/Ms(1), /*restart_at=*/Ms(2)});
  std::string err = plan.Validate(/*num_pcpus=*/4, /*num_vms=*/2);
  EXPECT_NE(err.find("vm_failures[0]"), std::string::npos) << err;
  EXPECT_NE(err.find("vm index out of range"), std::string::npos) << err;
}

TEST(PlanValidation, AdversarialCampaignShapeChecks) {
  FaultPlan plan;
  FaultPlan::AdversarialGuest a;
  a.kind = FaultPlan::AdversarialGuest::Kind::kHypercallStorm;
  a.vm_index = 0;
  a.start = Ms(5);
  a.end = Ms(5);  // Empty window.
  plan.adversarial_guests.push_back(a);
  EXPECT_NE(plan.Validate(4, 1).find("empty or negative campaign window"),
            std::string::npos);
  plan.adversarial_guests[0].end = Ms(10);
  plan.adversarial_guests[0].period = 0;  // No cadence.
  EXPECT_NE(plan.Validate(4, 1).find("non-positive event cadence"), std::string::npos);
  plan.adversarial_guests[0].period = Us(100);
  plan.adversarial_guests[0].kind = FaultPlan::AdversarialGuest::Kind::kBandwidthThrash;
  plan.adversarial_guests[0].thrash_low = Bandwidth::FromDouble(0.3);
  plan.adversarial_guests[0].thrash_high = Bandwidth::FromDouble(0.1);  // Out of order.
  EXPECT_NE(plan.Validate(4, 1).find("thrash bandwidths out of order"), std::string::npos);
  plan.adversarial_guests[0].thrash_high = Bandwidth::FromDouble(0.5);
  EXPECT_EQ(plan.Validate(4, 1), "");
}

// ---- In-call retry backoff saturation ----

// Regression: the synchronous retry loop used to double the charged backoff
// without bound — a long kHypercallAgain streak (a rate-limited or
// quarantined VM) with a generous retry budget would charge geometrically
// growing virtual time to the hypercall account. The loop now saturates at
// repair_backoff_max like the asynchronous repair path.
TEST(ChannelRetry, InCallBackoffSaturatesAtRepairMax) {
  ExperimentConfig cfg = ResilientConfig(2);
  cfg.channel.max_retries = 6;
  cfg.channel.retry_backoff = Us(50);
  cfg.channel.retry_backoff_mult = 2.0;
  cfg.channel.repair_backoff_max = Us(200);
  cfg.channel.degraded_fallback = false;  // Isolate the in-call retry loop.
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  exp.machine().SetHypercallInterceptor([](Vcpu*, const HypercallArgs&) {
    Machine::HypercallFault f;
    f.action = Machine::HypercallFault::Action::kFail;  // Every call: kAgain.
    return f;
  });
  Task* t = g->CreateTask("t");
  EXPECT_EQ(g->SchedSetAttr(t, RtaParams{Ms(2), Ms(10), false}), kGuestErrBusy);
  const ChannelStats& st = exp.ChannelOf(g)->stats();
  EXPECT_EQ(st.retries, 6u);
  // Charged intervals: 50 + 100 + 200 + 200 + 200 + 200 — capped, not 50<<k.
  EXPECT_EQ(st.backoff_time, Us(950));
}

}  // namespace
}  // namespace rtvirt

// SLO-control subsystem: the sliding-window quantile estimator (exactness,
// merge, eviction, determinism, zero-alloc steady state), the closed-loop
// controller's defensive behaviors (hysteresis, rate limiting, anti-windup,
// saturation handoff, fail-static freeze/re-engage), its interaction with
// guest_trust (a well-behaved controller is never quarantined), the
// controller-adversary FaultPlan entries, and the report byte-identity
// regression for default-path runs.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/control/slo_controller.h"
#include "src/control/windowed_quantile.h"
#include "src/faults/fault_injector.h"
#include "src/metrics/deadline_monitor.h"
#include "src/metrics/resilience.h"
#include "src/perf/alloc_hooks.h"
#include "src/runner/experiment.h"
#include "src/workloads/memcached.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

// ---- WindowedQuantile ----

WindowedQuantile::Options ExactOptions() {
  WindowedQuantile::Options o;
  o.num_slots = 4;
  o.slot_width = Ms(10);
  o.sub_bits = 5;     // Linear (exact) below 32.
  o.unit_shift = 0;   // 1 ns units: small values land in the linear range.
  o.max_octaves = 10;
  return o;
}

TEST(WindowedQuantile, ExactOnSmallWindows) {
  WindowedQuantile wq(ExactOptions());
  for (TimeNs v = 1; v <= 20; ++v) {
    wq.Add(v, 0);
  }
  EXPECT_EQ(wq.count(), 20u);
  // Rank ceil(q * 20) of {1..20} is exactly q * 20 for these q.
  EXPECT_EQ(wq.Quantile(0.05), 1);
  EXPECT_EQ(wq.Quantile(0.5), 10);
  EXPECT_EQ(wq.Quantile(0.75), 15);
  EXPECT_EQ(wq.Quantile(1.0), 20);
  // Between ranks, ceil rounds up: q=0.51 -> rank 11.
  EXPECT_EQ(wq.Quantile(0.51), 11);
}

TEST(WindowedQuantile, EmptyWindowReturnsZero) {
  WindowedQuantile wq(ExactOptions());
  EXPECT_EQ(wq.count(), 0u);
  EXPECT_EQ(wq.Quantile(0.999), 0);
}

TEST(WindowedQuantile, UpperEdgeIsConservative) {
  WindowedQuantile wq(ExactOptions());
  // 1000 is well above the linear range (32): the estimate must not
  // under-report it, and must stay within the 1/32 relative error bound.
  wq.Add(1000, 0);
  TimeNs q = wq.Quantile(1.0);
  EXPECT_GE(q, 1000);
  EXPECT_LE(q, static_cast<TimeNs>(1000.0 * (1.0 + 1.0 / 32.0)) + 1);
}

TEST(WindowedQuantile, RelativeErrorBoundAcrossOctaves) {
  WindowedQuantile::Options o = ExactOptions();
  o.max_octaves = 22;  // Top bucket far above the 1e6 values fed below.
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    TimeNs v = static_cast<TimeNs>(rng.Uniform(1.0, 1e6));
    WindowedQuantile one(o);
    one.Add(v, 0);
    TimeNs q = one.Quantile(1.0);
    EXPECT_GE(q, v);
    EXPECT_LE(static_cast<double>(q), static_cast<double>(v) * (1.0 + 1.0 / 32.0) + 1.0);
  }
}

TEST(WindowedQuantile, MonotoneAcrossRanks) {
  WindowedQuantile wq(ExactOptions());
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    wq.Add(static_cast<TimeNs>(rng.Uniform(1.0, 1e5)), 0);
  }
  TimeNs prev = 0;
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    TimeNs cur = wq.Quantile(q);
    EXPECT_GE(cur, prev) << "quantile not monotone at q=" << q;
    prev = cur;
  }
}

TEST(WindowedQuantile, MergeAddsCountsAndStaysMonotone) {
  WindowedQuantile a(ExactOptions());
  WindowedQuantile b(ExactOptions());
  for (TimeNs v = 1; v <= 10; ++v) {
    a.Add(v, 0);           // {1..10}
    b.Add(v + 10, 0);      // {11..20}
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 20u);
  // The merged window is exactly {1..20} (all in the linear range).
  EXPECT_EQ(a.Quantile(0.5), 10);
  EXPECT_EQ(a.Quantile(1.0), 20);
  // Merging can only move any quantile of `a` up (b's values all larger).
  EXPECT_GE(a.Quantile(0.25), 5);
}

TEST(WindowedQuantile, EvictsExpiredSlots) {
  WindowedQuantile::Options o = ExactOptions();  // 4 slots x 10 ms.
  WindowedQuantile wq(o);
  wq.Add(5, Ms(1));    // Slot 0.
  wq.Add(7, Ms(11));   // Slot 1.
  EXPECT_EQ(wq.count(), 2u);
  // Advancing to slot 4 evicts slot 0 (window is slots 1..4).
  wq.Advance(Ms(41));
  EXPECT_EQ(wq.count(), 1u);
  EXPECT_EQ(wq.Quantile(1.0), 7);
  // Advancing past every slot empties the window entirely.
  wq.Advance(Sec(1));
  EXPECT_EQ(wq.count(), 0u);
  EXPECT_EQ(wq.Quantile(0.5), 0);
}

TEST(WindowedQuantile, FullClearOnBigJump) {
  WindowedQuantile wq(ExactOptions());
  for (int i = 0; i < 100; ++i) {
    wq.Add(3, Ms(i / 10));
  }
  ASSERT_GT(wq.count(), 0u);
  wq.Add(9, Sec(100));  // Jump >> num_slots slots: everything old evicted.
  EXPECT_EQ(wq.count(), 1u);
  EXPECT_EQ(wq.Quantile(1.0), 9);
}

TEST(WindowedQuantile, SameSeedSamePercentileSeries) {
  auto run = [] {
    WindowedQuantile wq(ExactOptions());
    Rng rng(99);
    std::vector<TimeNs> series;
    TimeNs now = 0;
    for (int i = 0; i < 2000; ++i) {
      now += static_cast<TimeNs>(rng.Uniform(0.0, 1e5));
      wq.Add(static_cast<TimeNs>(rng.Uniform(1.0, 1e6)), now);
      if (i % 50 == 0) {
        series.push_back(wq.Quantile(0.999));
      }
    }
    return series;
  };
  EXPECT_EQ(run(), run());
}

TEST(WindowedQuantile, ZeroAllocationSteadyState) {
  WindowedQuantile wq(ExactOptions());
  wq.Add(1, 0);  // Construction done; arrays sized.
  perf::AllocSnapshot before = perf::AllocNow();
  TimeNs now = 0;
  for (int i = 0; i < 10000; ++i) {
    now += Us(50);
    wq.Add((i * 37) % 100000, now);
    if (i % 100 == 0) {
      (void)wq.Quantile(0.999);
    }
  }
  perf::AllocSnapshot after = perf::AllocNow();
  EXPECT_EQ(after.allocs, before.allocs) << "steady-state Add/Quantile allocated";
}

// ---- Controller integration ----
//
// One PCPU; a periodic hog pins most of the capacity so the memcached
// tenant's reservation is the real limit on its progress (DP-WRAP cannot
// hand it idle cycles that do not exist).

struct ControlRig {
  ExperimentConfig cfg;
  std::unique_ptr<Experiment> exp;
  GuestOs* tenant = nullptr;
  GuestOs* hog = nullptr;
  std::unique_ptr<MemcachedServer> server;
  std::unique_ptr<PeriodicRta> hog_rta;
  DeadlineMonitor monitor;
};

ControlConfig FastControl() {
  ControlConfig c;
  c.enabled = true;
  c.decision_period = Ms(10);
  c.min_samples = 16;
  c.window.num_slots = 8;
  c.window.slot_width = Ms(25);
  return c;
}

// qps chosen against a 1 ms SLO: demand ~48 us/request. DP-WRAP is
// work-conserving, so average-rate starvation is not enough to degrade the
// tail — the tenant coasts on idle cycles. What hurts is the hog's 6 ms
// burst: within a burst the tenant makes progress at its *guaranteed* rate
// only. At 6000 qps each burst accrues ~1.7 ms of tenant work while a 58 us
// reservation clears ~0.35 ms of it, so the tail blows through the 1 ms SLO
// until the controller INCs the reservation to burst-level parity (~220 us).
ControlRig MakeRig(double qps, ControlConfig control, FaultPlan faults = {}) {
  ControlRig rig;
  rig.cfg.framework = Framework::kRtvirt;
  rig.cfg.machine = ZeroCostMachine(1);
  rig.cfg.channel.max_retries = 2;
  rig.cfg.channel.degraded_fallback = true;
  rig.cfg.control = control;
  rig.cfg.faults = faults;
  rig.exp = std::make_unique<Experiment>(std::move(rig.cfg));
  rig.tenant = rig.exp->AddGuest("tenant", 1);
  rig.hog = rig.exp->AddGuest("hog", 1);

  MemcachedConfig mc;
  mc.qps = qps;
  mc.slo = Ms(1);
  mc.slice = Us(58);
  rig.server = std::make_unique<MemcachedServer>(rig.tenant, "mc", mc, Rng(5));
  rig.server->Start(0, Sec(10));
  EXPECT_EQ(rig.server->admission_result(), kGuestOk);
  rig.monitor.Watch(rig.server->task());

  // The hog reserves 60% of the core, leaving ~0.4 for the tenant to grow
  // into — enough for every INC the tests ask for, scarce enough that the
  // tenant cannot coast on idle capacity.
  RtaParams hp;
  hp.slice = Ms(6);
  hp.period = Ms(10);
  rig.hog_rta = std::make_unique<PeriodicRta>(rig.hog, "hog", hp);
  rig.hog_rta->Start(0, Sec(10));

  SloController::TenantOptions topts;
  topts.slo = Ms(1);
  // Host ceiling: the hog's padded reservation is 0.65 (6 ms + 500 us slack
  // over 10 ms) and the tenant's padding is 100 us, so slices above 250 us
  // cannot be admitted. 240 us keeps the whole INC chain inside capacity.
  topts.max_slice = Us(240);
  rig.exp->controller()->Watch(rig.tenant, rig.server->task(),
                               rig.exp->ChannelOf(rig.tenant), topts);
  return rig;
}

TEST(SloController, RaisesReservationUnderLoadAndMeetsSlo) {
  ControlRig rig = MakeRig(6000.0, FastControl());
  rig.exp->Run(Sec(5));
  const ControlStats& s = rig.exp->controller()->stats();
  EXPECT_GT(s.samples, 1000u);
  EXPECT_GT(s.inc_adjustments, 0u);
  EXPECT_GT(rig.exp->controller()->CurrentSlice(rig.server->task()), Us(58));
  EXPECT_EQ(s.actuation_failures, 0u);
  // With the raised reservation the tail must be healthy: a (generous)
  // end-state check that the loop actually converged rather than thrashed.
  EXPECT_LT(rig.monitor.TotalMissRatio(), 0.05);
  EXPECT_FALSE(rig.exp->controller()->Frozen(rig.server->task()));
  EXPECT_EQ(rig.exp->controller()->unresolved_saturations(), 0u);
}

TEST(SloController, HysteresisHoldsWhenComfortable) {
  // 500 qps needs ~0.024 CPU; the default 0.058 reservation is comfortable,
  // so the controller must sit inside the band and never adjust.
  ControlRig rig = MakeRig(500.0, FastControl());
  rig.exp->Run(Sec(5));
  const ControlStats& s = rig.exp->controller()->stats();
  EXPECT_GT(s.decisions, 0u);
  EXPECT_EQ(s.inc_adjustments, 0u);
  EXPECT_EQ(s.dec_adjustments, 0u);
  // A comfortable tail either sits in-band (hysteresis) or below band at
  // the floor (the slice is already minimal); both are holds, never a DEC.
  EXPECT_GT(s.hysteresis_holds + s.demand_floor_holds, 0u);
  EXPECT_EQ(rig.exp->controller()->CurrentSlice(rig.server->task()), Us(58));
}

TEST(SloController, RateLimitBoundsAdjustmentsPerWindow) {
  ControlConfig c = FastControl();
  c.decision_period = Ms(2);          // Ticks far faster than the budget.
  c.max_adjust_per_window = 2;
  c.rate_window = Ms(100);
  c.min_samples = 8;
  ControlRig rig = MakeRig(6000.0, c);
  rig.exp->Run(Sec(2));
  const ControlStats& s = rig.exp->controller()->stats();
  EXPECT_GT(s.rate_limit_holds, 0u);
  // <= 2 adjustments per 100 ms over 2 s -> hard ceiling of 40.
  EXPECT_LE(s.inc_adjustments + s.dec_adjustments, 40u);
}

TEST(SloController, WellBehavedControllerIsNeverQuarantined) {
  ControlConfig c = FastControl();
  ControlRig rig = MakeRig(6000.0, c);
  rig.exp->Run(Sec(5));
  // The controller acted...
  EXPECT_GT(rig.exp->controller()->stats().inc_adjustments, 0u);
  // ...and the guest_trust layer (enabled by default) saw nothing wrong.
  EXPECT_EQ(rig.exp->dpwrap()->quarantines(), 0u);
  EXPECT_EQ(rig.exp->dpwrap()->replan_budget_trips(), 0u);
  EXPECT_EQ(rig.exp->dpwrap()->hypercall_rate_rejections(), 0u);
  EXPECT_EQ(rig.exp->dpwrap()->bw_thrash_trips(), 0u);
}

TEST(SloController, FreezesOnChannelOutageAndReengages) {
  FaultPlan faults;
  // The controller only notices a dead channel while actuating, so the
  // outage must overlap the INC chain (first few hundred ms of the flash):
  // failed actuations degrade the VCPU, two strikes freeze the tenant, and
  // once the outage lifts the channel's own repair loop heals the VCPU so a
  // re-engage probe succeeds.
  faults.hypercall_outages.push_back({Ms(50), Ms(800)});
  ControlRig rig = MakeRig(6000.0, FastControl(), faults);
  rig.exp->Run(Sec(5));
  const ControlStats& s = rig.exp->controller()->stats();
  EXPECT_GT(s.freezes, 0u);
  EXPECT_GT(s.reengage_probes, 0u);
  EXPECT_GT(s.reengages, 0u);
  // Recovered by the end: not frozen, and the loop is steering again.
  EXPECT_FALSE(rig.exp->controller()->Frozen(rig.server->task()));
  EXPECT_GT(s.inc_adjustments, 0u);
}

TEST(SloController, SaturationHandsOffAndResolves) {
  // Cap the tenant barely above its starting slice: the flash demand
  // (6000 qps against the hog's bursts) cannot be met under 70 us / 1 ms,
  // so the controller must hit the cap and hand off instead of retrying
  // forever; when the flash ends the tail recovers and the handoff resolves.
  ControlConfig c = FastControl();
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(1);
  cfg.control = c;
  Experiment exp(std::move(cfg));
  GuestOs* tenant = exp.AddGuest("tenant", 1);
  MemcachedConfig mc;
  mc.qps = 400.0;
  mc.slo = Ms(1);
  mc.slice = Us(58);
  // Open-loop flash: 15x over [0, 2 s) = 6000 qps, then back to 400 qps,
  // which the capped reservation serves easily.
  mc.open_loop.enabled = true;
  mc.open_loop.phases.push_back({0, Sec(2), 15.0});
  MemcachedServer server(tenant, "mc", mc, Rng(5));
  server.Start(0, Sec(10));
  ASSERT_EQ(server.admission_result(), kGuestOk);
  GuestOs* hog = exp.AddGuest("hog", 1);
  RtaParams hp;
  hp.slice = Ms(6);
  hp.period = Ms(10);
  PeriodicRta hog_rta(hog, "hog", hp);
  hog_rta.Start(0, Sec(10));
  SloController::TenantOptions topts;
  topts.slo = Ms(1);
  topts.max_slice = Us(70);
  exp.controller()->Watch(tenant, server.task(), exp.ChannelOf(tenant), topts);

  exp.Run(Sec(2));
  EXPECT_GT(exp.controller()->stats().saturation_events, 0u);
  EXPECT_TRUE(exp.controller()->Saturated(server.task()));
  exp.Run(Sec(6));
  EXPECT_FALSE(exp.controller()->Saturated(server.task()));
  EXPECT_EQ(exp.controller()->unresolved_saturations(), 0u);
}

TEST(SloController, AntiWindupKeepsIntegratorBounded) {
  // Saturate hard (tiny cap, heavy load): the error stays large for
  // thousands of ticks, which must clamp rather than wind up — and once the
  // tenant is saturated the controller goes quiet instead of retrying.
  ControlConfig c = FastControl();
  c.integrator_clamp = 1.0;
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(1);
  cfg.control = c;
  Experiment exp(std::move(cfg));
  GuestOs* tenant = exp.AddGuest("tenant", 1);
  GuestOs* hog = exp.AddGuest("hog", 1);
  MemcachedConfig mc;
  mc.qps = 6000.0;
  mc.slo = Ms(1);
  mc.slice = Us(58);
  MemcachedServer server(tenant, "mc", mc, Rng(5));
  server.Start(0, Sec(5));
  ASSERT_EQ(server.admission_result(), kGuestOk);
  RtaParams hp;
  hp.slice = Ms(6);
  hp.period = Ms(10);
  PeriodicRta hog_rta(hog, "hog", hp);
  hog_rta.Start(0, Sec(5));
  SloController::TenantOptions topts;
  topts.slo = Ms(1);
  topts.max_slice = Us(60);
  exp.controller()->Watch(tenant, server.task(), exp.ChannelOf(tenant), topts);
  exp.Run(Sec(5));
  const ControlStats& s = exp.controller()->stats();
  EXPECT_GT(s.windup_clamps, 0u);
  EXPECT_GT(s.saturation_events, 0u);
  // Saturation quiesces the INC path: a bounded number of attempts, not one
  // per tick for five seconds.
  EXPECT_LE(s.inc_adjustments + s.actuation_failures, 20u);
}

// ---- Controller determinism ----

TEST(SloController, SameSeedByteIdenticalReport) {
  auto run = [] {
    ControlRig rig = MakeRig(6000.0, FastControl());
    rig.exp->Run(Sec(3));
    std::ostringstream os;
    rig.exp->PrintReport(os, "control determinism");
    return os.str();
  };
  EXPECT_EQ(run(), run());
}

// ---- Report regression (satellite: byte-identity of default-path runs) ----

TEST(ControlReport, DefaultPathPrintsNoControlSection) {
  // Control compiled in but disabled: the report must not contain a single
  // "control" row, keeping default-path outputs byte-identical to builds
  // that predate the subsystem.
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(2);
  Experiment exp(std::move(cfg));
  GuestOs* g = exp.AddGuest("g", 1);
  MemcachedConfig mc;
  MemcachedServer server(g, "mc", mc, Rng(3));
  server.Start(0, Ms(500));
  exp.Run(Ms(500));
  EXPECT_EQ(exp.controller(), nullptr);
  std::ostringstream os;
  exp.PrintReport(os, "default path");
  EXPECT_EQ(os.str().find("control"), std::string::npos);
}

TEST(ControlReport, ZeroCountersPrintNothingNonzeroPrintSection) {
  ResilienceCounters c;
  std::ostringstream quiet;
  PrintResilience(quiet, c);
  EXPECT_EQ(quiet.str().find("control"), std::string::npos);

  c.control_samples = 1;
  std::ostringstream loud;
  PrintResilience(loud, c);
  EXPECT_NE(loud.str().find("control"), std::string::npos);
  EXPECT_NE(loud.str().find("samples"), std::string::npos);
}

TEST(ControlReport, AccumulateSumsControlCounters) {
  ResilienceCounters a, b;
  a.control_inc_adjustments = 3;
  b.control_inc_adjustments = 4;
  b.control_freezes = 2;
  AccumulateResilience(a, b);
  EXPECT_EQ(a.control_inc_adjustments, 7u);
  EXPECT_EQ(a.control_freezes, 2u);
}

// ---- FaultPlan::ControlFault validation & injection ----

TEST(ControlFaults, ValidateNamesOffendingEntry) {
  FaultPlan plan;
  plan.control_faults.push_back({FaultPlan::ControlFault::Kind::kChannelOutage,
                                 /*vm_index=*/5, Ms(1), Ms(2), Us(200)});
  std::string err = plan.Validate(/*num_pcpus=*/2, /*num_vms=*/2);
  EXPECT_NE(err.find("control_faults[0]"), std::string::npos) << err;
  EXPECT_NE(err.find("vm index"), std::string::npos) << err;

  plan.control_faults.clear();
  plan.control_faults.push_back({FaultPlan::ControlFault::Kind::kChannelOutage,
                                 0, Ms(5), Ms(5), Us(200)});
  err = plan.Validate(2, 2);
  EXPECT_NE(err.find("control_faults[0]"), std::string::npos) << err;
  EXPECT_NE(err.find("window"), std::string::npos) << err;

  plan.control_faults.clear();
  plan.control_faults.push_back({FaultPlan::ControlFault::Kind::kStalePage,
                                 0, Ms(1), Ms(2), 0});
  err = plan.Validate(2, 2);
  EXPECT_NE(err.find("control_faults[0]"), std::string::npos) << err;
  EXPECT_NE(err.find("delay"), std::string::npos) << err;

  plan.control_faults.clear();
  plan.control_faults.push_back({FaultPlan::ControlFault::Kind::kChannelOutage,
                                 0, Ms(1), Ms(5), Us(200)});
  plan.control_faults.push_back({FaultPlan::ControlFault::Kind::kChannelOutage,
                                 0, Ms(4), Ms(6), Us(200)});
  err = plan.Validate(2, 2);
  EXPECT_NE(err.find("control_faults[1]"), std::string::npos) << err;
  EXPECT_NE(err.find("overlap"), std::string::npos) << err;

  // Same window on *different* VMs (or different kinds) is fine.
  plan.control_faults[1].vm_index = 1;
  EXPECT_EQ(plan.Validate(2, 2), "");
}

TEST(ControlFaults, PerVmOutageOnlyHitsTargetVm) {
  FaultPlan faults;
  faults.control_faults.push_back({FaultPlan::ControlFault::Kind::kChannelOutage,
                                   /*vm_index=*/0, Ms(50), Ms(800), Us(200)});
  ControlRig rig = MakeRig(6000.0, FastControl(), faults);
  rig.exp->Run(Sec(5));
  const FaultStats& fs = rig.exp->fault_injector()->stats();
  EXPECT_GT(fs.control_outage_failures, 0u);
  // The targeted tenant froze and re-engaged, exactly like a global outage.
  EXPECT_GT(rig.exp->controller()->stats().freezes, 0u);
  EXPECT_FALSE(rig.exp->controller()->Frozen(rig.server->task()));
  // Resilience plumbing carried the counters through.
  ResilienceCounters rc = rig.exp->resilience();
  EXPECT_EQ(rc.control_outage_failures, fs.control_outage_failures);
}

TEST(ControlFaults, StalePageWindowArmsAndRestores) {
  FaultPlan faults;
  faults.control_faults.push_back({FaultPlan::ControlFault::Kind::kStalePage,
                                   /*vm_index=*/0, Ms(100), Ms(600), Us(300)});
  ControlRig rig = MakeRig(6000.0, FastControl(), faults);
  rig.exp->Run(Sec(3));
  const FaultStats& fs = rig.exp->fault_injector()->stats();
  EXPECT_EQ(fs.control_stale_windows, 1u);
  // The run survives the stale window: controller still converges, no
  // quarantine, no freeze cascade.
  EXPECT_GT(rig.exp->controller()->stats().inc_adjustments, 0u);
  EXPECT_EQ(rig.exp->dpwrap()->quarantines(), 0u);
}

}  // namespace
}  // namespace rtvirt

// Unit tests for the src/perf measurement subsystem: allocation hooks,
// phase recorder, BENCH_*.json round-trip, and the gate comparator's
// tolerance/waive/missing semantics. These run in every CI build type —
// including sanitizers, which is the proof that the operator new/delete
// replacements in alloc_hooks.cc stay semantically transparent.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/perf/alloc_hooks.h"
#include "src/perf/perf_gate.h"
#include "src/perf/perf_recorder.h"
#include "src/perf/perf_report.h"

namespace rtvirt::perf {
namespace {

TEST(AllocHooks, CountsNewAndDelete) {
  if (!AllocHooksActive()) {
    GTEST_SKIP() << "allocation hooks not linked in this build";
  }
  AllocSnapshot before = AllocNow();
  auto p = std::make_unique<char[]>(4096);
  AllocSnapshot mid = AllocNow();
  EXPECT_GE(mid.allocs, before.allocs + 1);
  EXPECT_GE(mid.bytes, before.bytes + 4096);
  p.reset();
  AllocSnapshot after = AllocNow();
  EXPECT_GE(after.frees, mid.frees + 1);
}

TEST(PerfRecorder, PhaseBracketsTimeOpsAndAllocs) {
  PerfRecorder rec;
  rec.Begin("work");
  std::vector<std::unique_ptr<int>> keep;
  for (int i = 0; i < 100; ++i) {
    keep.push_back(std::make_unique<int>(i));
  }
  rec.Count("extra", 7.0);
  const PhaseResult& r = rec.End(100);
  EXPECT_EQ(r.name, "work");
  EXPECT_EQ(r.ops, 100u);
  EXPECT_GT(r.wall_ns, 0u);
  if (AllocHooksActive()) {
    EXPECT_GE(r.allocs, 100u);
  }
  EXPECT_DOUBLE_EQ(r.counters.at("extra"), 7.0);
  EXPECT_GT(r.NsPerOp(), 0.0);
  EXPECT_GT(r.OpsPerSec(), 0.0);
  ASSERT_NE(rec.Find("work"), nullptr);
  EXPECT_EQ(rec.Find("missing"), nullptr);
}

TEST(PerfRecorder, ZeroAllocPhaseMeasuresZeroDespiteCounters) {
  if (!AllocHooksActive()) {
    GTEST_SKIP() << "allocation hooks not linked in this build";
  }
  PerfRecorder rec;
  std::string counter_name(48, 'k');  // Long enough to defeat SSO.
  rec.Begin("idle");
  // Count() itself allocates (map node, key copy) but credits the cost back
  // to the phase baseline — a genuinely allocation-free workload must report
  // zero even when instrumented.
  rec.Count(counter_name, 1.0);
  const PhaseResult& r = rec.End(10);
  EXPECT_EQ(r.allocs, 0u) << "recorder bookkeeping leaked into the phase";
}

TEST(PerfRecorder, PeakRssIsReported) {
  EXPECT_GT(PeakRssKb(), 0u);
  EXPECT_GT(CurrentRssKb(), 0u);
  EXPECT_GE(PeakRssKb(), CurrentRssKb());
}

TEST(PerfReport, JsonRoundTripPreservesEverything) {
  PerfReport report;
  report.suite = "unit";
  report.meta["build"] = "Test";
  report.Add("a.events_per_sec", 1.25e7, "events/s", true, 0.4);
  report.Add("a.allocs_per_op", 0.0, "allocs/op", false, 0.0);
  report.Add("b.ns", 17.5, "ns", false, 0.25);
  std::stringstream buf;
  report.Write(buf);
  auto parsed = PerfReport::Parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->schema_version, kPerfSchemaVersion);
  EXPECT_EQ(parsed->suite, "unit");
  EXPECT_EQ(parsed->meta.at("build"), "Test");
  ASSERT_EQ(parsed->metrics.size(), 3u);
  const PerfMetric* m = parsed->Find("a.events_per_sec");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->value, 1.25e7);
  EXPECT_EQ(m->unit, "events/s");
  EXPECT_TRUE(m->higher_is_better);
  EXPECT_DOUBLE_EQ(m->tolerance, 0.4);
  const PerfMetric* z = parsed->Find("a.allocs_per_op");
  ASSERT_NE(z, nullptr);
  EXPECT_DOUBLE_EQ(z->value, 0.0);
  EXPECT_FALSE(z->higher_is_better);
}

TEST(PerfReport, ParseRejectsGarbageAndWrongSchema) {
  std::stringstream garbage("this is not json");
  EXPECT_FALSE(PerfReport::Parse(garbage).has_value());
  std::stringstream wrong(R"({"schema_version": 999, "suite": "x", "metrics": []})");
  EXPECT_FALSE(PerfReport::Parse(wrong).has_value());
  std::stringstream empty("");
  EXPECT_FALSE(PerfReport::Parse(empty).has_value());
}

PerfReport BaselineForGate() {
  PerfReport base;
  base.suite = "unit";
  base.Add("throughput", 100.0, "ops/s", true, 0.10);
  base.Add("latency", 50.0, "ns", false, 0.10);
  base.Add("allocs", 0.0, "allocs/op", false, 0.0);
  return base;
}

TEST(PerfGate, PassesWhenWithinTolerance) {
  PerfReport fresh = BaselineForGate();
  fresh.metrics[0].value = 95.0;  // -5% on a 10% band: fine.
  fresh.metrics[1].value = 54.0;  // +8%: fine.
  std::stringstream log;
  GateResult r = ComparePerf(BaselineForGate(), fresh, GateOptions{1.0}, log);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.checked, 3);
  EXPECT_EQ(r.regressed, 0);
}

TEST(PerfGate, FailsOnRegressionEitherDirection) {
  PerfReport fresh = BaselineForGate();
  fresh.metrics[0].value = 80.0;  // Throughput dropped 20% against 10% band.
  std::stringstream log;
  GateResult r = ComparePerf(BaselineForGate(), fresh, GateOptions{1.0}, log);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.regressed, 1);

  fresh = BaselineForGate();
  fresh.metrics[1].value = 70.0;  // Latency rose 40%.
  std::stringstream log2;
  r = ComparePerf(BaselineForGate(), fresh, GateOptions{1.0}, log2);
  EXPECT_FALSE(r.ok);
}

TEST(PerfGate, ScaleWidensBandButZeroBaselineStaysExact) {
  PerfReport fresh = BaselineForGate();
  fresh.metrics[0].value = 80.0;  // -20% passes a 10% band at 3x scale.
  std::stringstream log;
  GateResult r = ComparePerf(BaselineForGate(), fresh, GateOptions{3.0}, log);
  EXPECT_TRUE(r.ok);

  // One single allocation per op against a zero baseline must fail at any
  // scale: that is the hook keeping "steady state allocates nothing" honest.
  fresh = BaselineForGate();
  fresh.metrics[2].value = 1.0;
  std::stringstream log2;
  r = ComparePerf(BaselineForGate(), fresh, GateOptions{100.0}, log2);
  EXPECT_FALSE(r.ok);
}

TEST(PerfGate, MissingMetricFailsAndDegenerateBandWaives) {
  PerfReport fresh = BaselineForGate();
  fresh.metrics.erase(fresh.metrics.begin());
  std::stringstream log;
  GateResult r = ComparePerf(BaselineForGate(), fresh, GateOptions{1.0}, log);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.missing, 1);

  // At scale 100 a 10% higher-is-better band degenerates (floor <= 0): the
  // metric is waived, visibly, instead of being silently vacuous.
  PerfReport fresh2 = BaselineForGate();
  fresh2.metrics[0].value = 1.0;
  std::stringstream log2;
  r = ComparePerf(BaselineForGate(), fresh2, GateOptions{100.0}, log2);
  EXPECT_GE(r.waived, 1);
  EXPECT_NE(log2.str().find("waived"), std::string::npos);
}

}  // namespace
}  // namespace rtvirt::perf

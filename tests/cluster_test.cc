// Cross-host placement and the live-migration cost model (paper section 6).

#include <gtest/gtest.h>

#include <cmath>

#include "src/cluster/migration_model.h"
#include "src/cluster/placement.h"

namespace rtvirt {
namespace {

VmPlacementRequest Req(const std::string& name, double bw, double mem_gb = 4.0) {
  VmPlacementRequest r;
  r.name = name;
  r.bandwidth = Bandwidth::FromDouble(bw);
  r.migration.memory_gb = mem_gb;
  return r;
}

TEST(MigrationModel, ConvergentPrecopy) {
  MigrationCostModel m;
  m.memory_gb = 4.0;
  m.dirty_rate_gbps = 1.0;
  m.link_gbps = 10.0;
  auto est = m.Predict();
  EXPECT_GT(est.rounds, 1);
  EXPECT_GT(est.total_time, est.downtime);
  // First round alone is 4 GB over 10 Gbps = 3.2 s.
  EXPECT_GE(est.total_time, Sec(3));
  EXPECT_LT(est.total_time, Sec(5));
  // Downtime: residual below 0.05 GB over 10 Gbps = <= 40 ms.
  EXPECT_LE(est.downtime, Ms(40));
}

TEST(MigrationModel, HigherDirtyRateCostsMore) {
  MigrationCostModel slow;
  slow.dirty_rate_gbps = 0.5;
  MigrationCostModel fast;
  fast.dirty_rate_gbps = 5.0;
  EXPECT_LT(slow.Predict().total_time, fast.Predict().total_time);
  EXPECT_LE(slow.Predict().rounds, fast.Predict().rounds);
}

TEST(MigrationModel, NonConvergentFallsBackToStopAndCopy) {
  MigrationCostModel m;
  m.memory_gb = 2.0;
  m.dirty_rate_gbps = 12.0;
  m.link_gbps = 10.0;
  auto est = m.Predict();
  EXPECT_EQ(est.rounds, 0);
  EXPECT_EQ(est.total_time, est.downtime);
  EXPECT_NEAR(ToSec(est.downtime), 2.0 * 8 / 10, 0.01);
}

TEST(MigrationModel, BiggerMemoryLongerDowntimeBound) {
  MigrationCostModel small;
  small.memory_gb = 1.0;
  MigrationCostModel big;
  big.memory_gb = 64.0;
  EXPECT_LT(small.Predict().total_time, big.Predict().total_time);
}

TEST(ClusterPlacement, FirstFitConsolidates) {
  ClusterPlacer placer({{0, 4}, {1, 4}}, PlacementPolicy::kFirstFit);
  EXPECT_EQ(placer.Place(Req("a", 1.5)), 0);
  EXPECT_EQ(placer.Place(Req("b", 1.5)), 0);
  EXPECT_EQ(placer.Place(Req("c", 1.5)), 1);  // Host 0 is full at 4 CPUs - 3.
  EXPECT_EQ(placer.HostLoad(0), Bandwidth::FromDouble(3.0));
}

TEST(ClusterPlacement, WorstFitBalances) {
  ClusterPlacer placer({{0, 4}, {1, 4}}, PlacementPolicy::kWorstFit);
  EXPECT_EQ(placer.Place(Req("a", 1.0)), 0);
  EXPECT_EQ(placer.Place(Req("b", 1.0)), 1);  // Host 1 now has more free.
  EXPECT_EQ(placer.Place(Req("c", 1.0)), 0);
}

TEST(ClusterPlacement, BestFitPacks) {
  ClusterPlacer placer({{0, 2}, {1, 8}}, PlacementPolicy::kBestFit);
  EXPECT_EQ(placer.Place(Req("a", 1.5)), 0);  // Tighter fit on the small host.
  EXPECT_EQ(placer.Place(Req("b", 6.0)), 1);
}

TEST(ClusterPlacement, RejectsWhenFull) {
  ClusterPlacer placer({{0, 2}}, PlacementPolicy::kFirstFit);
  EXPECT_TRUE(placer.Place(Req("a", 1.9)).has_value());
  EXPECT_FALSE(placer.Place(Req("b", 0.5)).has_value());
}

TEST(ClusterPlacement, RemoveFreesCapacity) {
  ClusterPlacer placer({{0, 2}}, PlacementPolicy::kFirstFit);
  ASSERT_TRUE(placer.Place(Req("a", 1.9)).has_value());
  EXPECT_TRUE(placer.Remove("a"));
  EXPECT_FALSE(placer.Remove("a"));
  EXPECT_TRUE(placer.Place(Req("b", 1.9)).has_value());
}

TEST(ClusterPlacement, RebalanceMakesRoomViaCheapestMigration) {
  ClusterPlacer placer({{0, 4}, {1, 4}}, PlacementPolicy::kFirstFit);
  // Host 0: 3.0 used (small VM cheap to migrate, big VM expensive).
  ASSERT_TRUE(placer.Place(Req("cheap", 1.0, /*mem_gb=*/1.0)).has_value());
  ASSERT_TRUE(placer.Place(Req("expensive", 2.0, /*mem_gb=*/64.0)).has_value());
  // Host 1: 3.0 used.
  ASSERT_TRUE(placer.Place(Req("other", 3.0)).has_value());
  // A 1.5-CPU VM fits nowhere directly (free: 1.0 and 1.0)...
  VmPlacementRequest big = Req("newcomer", 1.5);
  ASSERT_FALSE(placer.Place(big).has_value());
  // ...but moving `cheap` (1.0) from host 0 to host 1 frees 2.0 on host 0.
  auto plan = placer.PlanRebalance(big);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->target_host, 0);
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_EQ(plan->steps[0].vm, "cheap");  // Cheapest-first, not the 64 GB VM.
  EXPECT_EQ(plan->steps[0].to, 1);
  EXPECT_GT(plan->total_migration_time, 0);
  // The plan is applied: newcomer lives on host 0 now.
  EXPECT_EQ(placer.HostLoad(0), Bandwidth::FromDouble(3.5));
  EXPECT_EQ(placer.HostLoad(1), Bandwidth::FromDouble(4.0));
}

TEST(ClusterPlacement, RebalanceRefusesWhenAggregateFull) {
  ClusterPlacer placer({{0, 2}, {1, 2}}, PlacementPolicy::kFirstFit);
  ASSERT_TRUE(placer.Place(Req("a", 1.8)).has_value());
  ASSERT_TRUE(placer.Place(Req("b", 1.8)).has_value());
  EXPECT_FALSE(placer.PlanRebalance(Req("c", 1.0)).has_value());
}

// Host-id accessors must fail loudly, naming the accessor and the offending
// id, instead of indexing out of bounds.
TEST(ClusterPlacementDeathTest, HostLoadBoundsChecksHostId) {
  ClusterPlacer placer({{0, 4}, {1, 4}}, PlacementPolicy::kFirstFit);
  EXPECT_DEATH(placer.HostLoad(2), "HostLoad: host id 2 out of range");
  EXPECT_DEATH(placer.HostLoad(-1), "HostLoad: host id -1 out of range");
}

TEST(ClusterPlacementDeathTest, HostFreeBoundsChecksHostId) {
  ClusterPlacer placer({{0, 4}, {1, 4}}, PlacementPolicy::kFirstFit);
  EXPECT_DEATH(placer.HostFree(7), "HostFree: host id 7 out of range");
  EXPECT_DEATH(placer.HostFree(-3), "HostFree: host id -3 out of range");
}

TEST(ClusterPlacement, RemoveUnknownVmIsDefinedNoOp) {
  ClusterPlacer placer({{0, 2}}, PlacementPolicy::kFirstFit);
  ASSERT_TRUE(placer.Place(Req("a", 1.0)).has_value());
  // Never-placed name: false, and nothing booked is disturbed.
  EXPECT_FALSE(placer.Remove("ghost"));
  EXPECT_EQ(placer.HostLoad(0), Bandwidth::FromDouble(1.0));
  EXPECT_FALSE(placer.Remove(""));
  EXPECT_EQ(placer.HostLoad(0), Bandwidth::FromDouble(1.0));
}

TEST(ClusterPlacement, ZeroBandwidthRequestPlacesAndConsumesNothing) {
  ClusterPlacer placer({{0, 2}, {1, 2}}, PlacementPolicy::kFirstFit);
  auto host = placer.Place(Req("idle", 0.0));
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(*host, 0);  // First-fit picks the first eligible host.
  EXPECT_EQ(placer.HostLoad(*host), Bandwidth());
  EXPECT_EQ(placer.HostFree(*host), Bandwidth::FromDouble(2.0));
  // The booking is real: it can be removed exactly once.
  EXPECT_TRUE(placer.Remove("idle"));
  EXPECT_FALSE(placer.Remove("idle"));
}

TEST(ClusterPlacement, ZeroBandwidthAvoidsUnavailableAndOverbookedHosts) {
  ClusterPlacer placer({{0, 2}, {1, 2}, {2, 2}}, PlacementPolicy::kFirstFit);
  placer.SetHostAvailable(0, false);
  // Overbook host 1 by degrading its capacity under its booked load: free
  // capacity goes negative, so even a zero-bandwidth VM must not land there.
  ASSERT_TRUE(placer.Place(Req("b", 1.5)).has_value());
  ASSERT_EQ(placer.HostLoad(1), Bandwidth::FromDouble(1.5));
  placer.SetHostCapacityFactor(1, 0.5);
  ASSERT_LT(placer.HostFree(1).ppb(), 0);
  auto host = placer.Place(Req("idle", 0.0));
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(*host, 2);
}

// Edge cases of the pre-copy model. Exactly non-convergent: a dirty rate
// equal to the link rate falls back to stop-and-copy, same as dirty > link.
TEST(MigrationModel, DirtyRateEqualToLinkFallsBackToStopAndCopy) {
  MigrationCostModel m;
  m.memory_gb = 4.0;
  m.dirty_rate_gbps = 10.0;
  m.link_gbps = 10.0;
  auto est = m.Predict();
  EXPECT_EQ(est.rounds, 0);
  EXPECT_EQ(est.total_time, est.downtime);
  EXPECT_NEAR(ToSec(est.downtime), 4.0 * 8 / 10, 0.01);
}

// In stop-and-copy the dirty rate no longer matters: the VM is paused, so
// the estimate depends only on memory and link.
TEST(MigrationModel, StopAndCopyDowntimeIndependentOfDirtyRate) {
  MigrationCostModel at_link;
  at_link.dirty_rate_gbps = 10.0;
  MigrationCostModel above_link;
  above_link.dirty_rate_gbps = 25.0;
  EXPECT_EQ(at_link.Predict().downtime, above_link.Predict().downtime);
  EXPECT_EQ(at_link.Predict().total_time, above_link.Predict().total_time);
}

// Convergent but slow: rho = 0.9 shrinks the residual by only 10% per
// round, so the 4 GB image still exceeds the 0.05 GB downtime target when
// max_rounds runs out, and the model stops the VM with the residual it has.
TEST(MigrationModel, MaxRoundsExhaustionBoundsThePrecopyPhase) {
  MigrationCostModel m;
  m.memory_gb = 4.0;
  m.dirty_rate_gbps = 9.0;
  m.link_gbps = 10.0;
  auto est = m.Predict();
  EXPECT_EQ(est.rounds, m.max_rounds);
  // Residual after 30 rounds: 4 * 0.9^30 ~= 0.170 GB, over 10 Gbps.
  EXPECT_NEAR(ToSec(est.downtime), 4.0 * std::pow(0.9, 30) * 8 / 10, 0.001);
  EXPECT_GT(est.total_time, est.downtime);
  // Tightening the budget can only lengthen the blackout.
  MigrationCostModel fewer = m;
  fewer.max_rounds = 10;
  EXPECT_GT(fewer.Predict().downtime, est.downtime);
  EXPECT_EQ(fewer.Predict().rounds, 10);
}

// Across the convergence boundary — from barely-convergent pre-copy through
// max_rounds exhaustion into the stop-and-copy fallback — downtime is
// monotone non-decreasing in the dirty rate: a dirtier VM can never promise
// a shorter blackout. (Globally the curve is not monotone: a faster-dirtying
// VM may give up pre-copy earlier and pay less total time, but the final
// blackout only grows.)
TEST(MigrationModel, DowntimeMonotoneInDirtyRateOnceRoundsAreCapped) {
  const double kDirty[] = {8.0, 8.5, 9.0, 9.5, 9.9, 10.0, 12.0};
  MigrationCostModel m;
  m.memory_gb = 4.0;
  m.link_gbps = 10.0;
  TimeNs prev = 0;
  for (double dirty : kDirty) {
    m.dirty_rate_gbps = dirty;
    auto est = m.Predict();
    EXPECT_LE(prev, est.downtime) << "downtime regressed at dirty rate " << dirty;
    prev = est.downtime;
  }
}

TEST(MigrationModel, DegenerateInputsYieldZeroEstimate) {
  MigrationCostModel m;
  m.memory_gb = 0.0;
  EXPECT_EQ(m.Predict().total_time, 0);
  m.memory_gb = 4.0;
  m.link_gbps = 0.0;
  EXPECT_EQ(m.Predict().total_time, 0);
}

}  // namespace
}  // namespace rtvirt

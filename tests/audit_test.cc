// Cross-layer invariant auditor tests: disabled by default, clean on a
// healthy run, and able to catch a seeded cross-layer inconsistency.

#include "src/audit/invariant_auditor.h"

#include <gtest/gtest.h>

#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

ExperimentConfig AuditedConfig(int pcpus) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(pcpus);
  cfg.audit.enabled = true;
  return cfg;
}

TEST(Auditor, DisabledByDefaultCreatesNoAuditor) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(1);
  Experiment exp(cfg);
  exp.AddGuest("vm", 1);
  exp.Run(Ms(50));
  EXPECT_EQ(exp.auditor(), nullptr);
}

TEST(Auditor, CleanRunHasZeroViolations) {
  Experiment exp(AuditedConfig(2));
  GuestOs* g = exp.AddGuest("vm", 2);
  PeriodicRta a(g, "a", RtaParams{Ms(2), Ms(10)});
  PeriodicRta b(g, "b", RtaParams{Ms(5), Ms(20), true});
  a.Start(0, Sec(1));
  b.Start(Ms(50), Sec(1));
  exp.Run(Sec(1));
  ASSERT_NE(exp.auditor(), nullptr);
  EXPECT_GT(exp.auditor()->checks_run(), 50u);
  EXPECT_EQ(exp.auditor()->total_violations(), 0u);
}

// Seed a cross-layer inconsistency: shrink the host reservation behind the
// channel's back (raw DEC_BW, as a buggy or malicious guest component
// might). The acknowledged grant now exceeds what the host serves — the
// auditor must flag it as a grant-host violation.
TEST(Auditor, DetectsHostReservationBelowAcknowledgedGrant) {
  Experiment exp(AuditedConfig(1));
  GuestOs* g = exp.AddGuest("vm", 1);
  PeriodicRta a(g, "a", RtaParams{Ms(4), Ms(10)});
  a.Start(0, Sec(1));
  exp.Run(Ms(100));
  ASSERT_EQ(a.admission_result(), kGuestOk);
  ASSERT_EQ(exp.auditor()->total_violations(), 0u);

  HypercallArgs dec;
  dec.op = SchedOp::kDecBw;
  dec.vcpu_a = g->vm()->vcpu(0);
  dec.bw_a = Bandwidth::FromDouble(0.01);
  dec.period_a = Ms(10);
  ASSERT_EQ(exp.machine().Hypercall(dec.vcpu_a, dec), kHypercallOk);
  exp.Run(Ms(150));  // Past the next audit tick.
  ASSERT_GT(exp.auditor()->total_violations(), 0u);
  EXPECT_EQ(exp.auditor()->violations().front().invariant, "grant-host");
}

}  // namespace
}  // namespace rtvirt

// Cross-validation of the analysis library against the simulator: CARTS'
// compositional schedulability verdicts must agree with what actually
// happens when the same task set runs on the same server interface under
// the server-EDF host — positive verdicts must produce zero misses, and
// interfaces CARTS rejects as minimal-minus-one must produce misses for
// always-active task sets.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/analysis/carts.h"
#include "src/metrics/deadline_monitor.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

// Simulates `tasks` on a dedicated server (budget, period) for `duration`
// and returns the number of deadline misses.
uint64_t SimulateMisses(const std::vector<RtaParams>& tasks, PeriodicResource iface,
                        TimeNs duration) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtXen;
  cfg.machine = ZeroCostMachine(2);
  cfg.server_edf.pick_cost = 0;
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  GuestOs* hog = exp.AddGuest("hog", 1);
  hog->CreateBackgroundTask("bg");  // Contends for the CPU outside the server.
  exp.SetVcpuServer(g->vm()->vcpu(0), ServerParams{iface.budget, iface.period});
  g->SetVcpuCapacity(0, Bandwidth::One());  // Admission handled by the test.
  DeadlineMonitor mon;
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  for (size_t i = 0; i < tasks.size(); ++i) {
    rtas.push_back(std::make_unique<PeriodicRta>(g, "t" + std::to_string(i), tasks[i]));
    rtas.back()->task()->set_observer(&mon);
    rtas.back()->Start(0, duration);
  }
  exp.Run(duration + Ms(500));
  EXPECT_GT(mon.total_completed(), 0u);
  return mon.total_misses();
}

struct CrossCase {
  std::vector<RtaParams> tasks;
};

class CsaCrossValidationTest : public ::testing::TestWithParam<int> {};

TEST_P(CsaCrossValidationTest, MinimalInterfaceSchedulesAndMinusOneMisses) {
  Rng rng(GetParam());
  // Random small task set with a hyperperiod-friendly period choice.
  std::vector<RtaParams> tasks;
  int n = static_cast<int>(rng.UniformInt(1, 3));
  double util_budget = 0.7;
  for (int i = 0; i < n; ++i) {
    TimeNs period = Ms(rng.UniformInt(4, 20));
    double u = rng.Uniform(0.1, util_budget / n);
    auto slice = std::max<TimeNs>(Ms(1), static_cast<TimeNs>(static_cast<double>(period) * u));
    tasks.push_back(RtaParams{slice, period, false});
  }

  auto iface = MinimalInterface(tasks, CartsOptions{Ms(1), 0, 0});
  ASSERT_TRUE(iface.has_value());

  // The verdict-positive interface must produce zero misses in simulation.
  EXPECT_EQ(SimulateMisses(tasks, *iface, Sec(10)), 0u)
      << "CARTS said schedulable on (" << iface->budget << "," << iface->period << ")";

  // One grid step below the minimal budget CARTS says unschedulable. (The
  // simulation may still get lucky — sbf assumes worst-case phasing — so
  // only the analytic verdict is asserted here.)
  if (iface->budget > Ms(1)) {
    PeriodicResource minus{iface->period, iface->budget - Ms(1)};
    EXPECT_FALSE(EdfSchedulableOn(tasks, minus));
  }

  // A supply *rate* below the task utilization guarantees misses in any
  // schedule: the backlog grows without bound.
  Bandwidth util = TotalUtilization(tasks);
  TimeNs starved_budget = util.SliceOf(iface->period) - Ms(1);
  if (starved_budget > 0) {
    PeriodicResource starved{iface->period, starved_budget};
    ASSERT_FALSE(EdfSchedulableOn(tasks, starved));
    EXPECT_GT(SimulateMisses(tasks, starved, Sec(10)), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsaCrossValidationTest,
                         ::testing::Values(3, 7, 12, 19, 42, 68, 95, 123));

// Published Table 2 interfaces: simulate each NH-Dec RTA on its published
// interface and verify zero misses end-to-end.
TEST(CsaCrossValidation, Table2InterfacesHoldInSimulation) {
  const struct {
    RtaParams rta;
    PeriodicResource iface;
  } cases[] = {
      {{Ms(23), Ms(30), false}, {Ms(5), Ms(4)}},
      {{Ms(13), Ms(20), false}, {Ms(4), Ms(3)}},
      {{Ms(5), Ms(10), false}, {Ms(3), Ms(2)}},
      {{Ms(10), Ms(100), false}, {Ms(9), Ms(1)}},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(SimulateMisses({c.rta}, c.iface, Sec(10)), 0u)
        << "(" << c.rta.slice << "," << c.rta.period << ")";
  }
}

}  // namespace
}  // namespace rtvirt

// Hypervisor machine-model tests with a minimal FIFO scheduler and client,
// exercising dispatch, wake/block, overhead charging and migration counting
// in isolation from the guest OS model.

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "src/hv/machine.h"

namespace rtvirt {
namespace {

// Round-robin over runnable VCPUs with a fixed quantum.
class FifoScheduler : public HostScheduler {
 public:
  explicit FifoScheduler(TimeNs quantum) : quantum_(quantum) {}

  std::string_view name() const override { return "fifo-test"; }
  void VcpuInserted(Vcpu* v) override { vcpus_.push_back(v); }
  void VcpuRemoved(Vcpu* v) override {
    vcpus_.erase(std::remove(vcpus_.begin(), vcpus_.end(), v), vcpus_.end());
  }
  void VcpuWake(Vcpu* v) override {
    (void)v;
    for (int i = 0; i < machine_->num_pcpus(); ++i) {
      if (machine_->pcpu(i)->idle()) {
        machine_->pcpu(i)->RequestReschedule();
        return;
      }
    }
  }
  void VcpuBlock(Vcpu* v) override { (void)v; }
  ScheduleDecision PickNext(Pcpu* pcpu) override {
    TimeNs now = machine_->sim()->Now();
    size_t n = vcpus_.size();
    for (size_t i = 0; i < n; ++i) {
      Vcpu* v = vcpus_[(cursor_ + i) % n];
      bool continuing = v->running() && v->pcpu() == pcpu;
      if (v->runnable() || continuing) {
        cursor_ = (cursor_ + i + 1) % n;
        return {v, now + quantum_};
      }
    }
    return {nullptr, kTimeNever};
  }
  void AccountRun(Vcpu* v, TimeNs ran) override {
    (void)v;
    accounted_ += ran;
  }
  TimeNs ScheduleCost(const Pcpu*) const override { return sched_cost_; }

  TimeNs accounted() const { return accounted_; }
  void set_sched_cost(TimeNs c) { sched_cost_ = c; }

 private:
  TimeNs quantum_;
  std::vector<Vcpu*> vcpus_;
  size_t cursor_ = 0;
  TimeNs accounted_ = 0;
  TimeNs sched_cost_ = 0;
};

// Client that runs forever once woken and records grant/revoke events.
class HogClient : public VcpuClient {
 public:
  void OnVcpuGranted(Vcpu*) override { ++grants_; }
  void OnVcpuRevoked(Vcpu*) override { ++revokes_; }
  int grants() const { return grants_; }
  int revokes() const { return revokes_; }

 private:
  int grants_ = 0;
  int revokes_ = 0;
};

MachineConfig ZeroCostConfig(int pcpus) {
  MachineConfig cfg;
  cfg.num_pcpus = pcpus;
  cfg.context_switch_cost = 0;
  cfg.migration_cost = 0;
  cfg.hypercall_cost = 0;
  return cfg;
}

struct Rig {
  explicit Rig(int pcpus, int vcpus, TimeNs quantum = Ms(1),
               MachineConfig cfg_in = MachineConfig{}) {
    cfg_in.num_pcpus = pcpus;
    machine = std::make_unique<Machine>(&sim, cfg_in);
    auto sched_owned = std::make_unique<FifoScheduler>(quantum);
    sched = sched_owned.get();
    machine->SetScheduler(std::move(sched_owned));
    vm = machine->AddVm("vm");
    clients.resize(vcpus);
    for (int i = 0; i < vcpus; ++i) {
      Vcpu* v = vm->AddVcpu();
      v->set_client(&clients[i]);
    }
    machine->Start();
  }

  Simulator sim;
  std::unique_ptr<Machine> machine;
  FifoScheduler* sched = nullptr;
  Vm* vm = nullptr;
  std::vector<HogClient> clients;
};

TEST(Machine, IdleUntilWake) {
  Rig rig(1, 1, Ms(1), ZeroCostConfig(1));
  rig.sim.RunUntil(Ms(5));
  EXPECT_EQ(rig.clients[0].grants(), 0);
  EXPECT_TRUE(rig.machine->pcpu(0)->idle());

  rig.vm->vcpu(0)->Wake();
  rig.sim.RunUntil(Ms(6));
  EXPECT_EQ(rig.clients[0].grants(), 1);
  EXPECT_EQ(rig.machine->pcpu(0)->current(), rig.vm->vcpu(0));
}

TEST(Machine, RuntimeAccountedWhileRunning) {
  Rig rig(1, 1, Ms(1), ZeroCostConfig(1));
  rig.vm->vcpu(0)->Wake();
  rig.sim.RunUntil(Ms(10));
  // Runs continuously once woken (single runnable vcpu).
  EXPECT_NEAR(static_cast<double>(rig.vm->vcpu(0)->total_runtime()),
              static_cast<double>(Ms(10)), static_cast<double>(Us(1)));
  EXPECT_EQ(rig.sched->accounted(), rig.vm->vcpu(0)->total_runtime());
}

TEST(Machine, BlockStopsExecutionAndRevokes) {
  Rig rig(1, 1, Ms(1), ZeroCostConfig(1));
  rig.vm->vcpu(0)->Wake();
  rig.sim.At(Ms(3), [&] { rig.vm->vcpu(0)->Block(); });
  rig.sim.RunUntil(Ms(10));
  EXPECT_EQ(rig.clients[0].revokes(), rig.clients[0].grants());
  EXPECT_EQ(rig.vm->vcpu(0)->total_runtime(), Ms(3));
  EXPECT_TRUE(rig.machine->pcpu(0)->idle());
  EXPECT_TRUE(rig.vm->vcpu(0)->blocked());
}

TEST(Machine, TwoVcpusShareOnePcpuRoundRobin) {
  Rig rig(1, 2, Ms(1), ZeroCostConfig(1));
  rig.vm->vcpu(0)->Wake();
  rig.vm->vcpu(1)->Wake();
  rig.sim.RunUntil(Ms(10));
  EXPECT_NEAR(static_cast<double>(rig.vm->vcpu(0)->total_runtime()),
              static_cast<double>(Ms(5)), static_cast<double>(Ms(1)));
  EXPECT_NEAR(static_cast<double>(rig.vm->vcpu(1)->total_runtime()),
              static_cast<double>(Ms(5)), static_cast<double>(Ms(1)));
}

TEST(Machine, ContextSwitchCostsDelayExecution) {
  MachineConfig cfg;
  cfg.context_switch_cost = Us(10);
  cfg.migration_cost = 0;
  Rig rig(1, 2, Ms(1), cfg);
  rig.vm->vcpu(0)->Wake();
  rig.vm->vcpu(1)->Wake();
  rig.sim.RunUntil(Ms(10));
  const OverheadStats& oh = rig.machine->overhead();
  EXPECT_GT(oh.context_switches, 5u);
  EXPECT_EQ(oh.context_switch_time, oh.context_switches * Us(10));
  // Useful runtime + overhead =~ wall time.
  TimeNs useful = rig.vm->vcpu(0)->total_runtime() + rig.vm->vcpu(1)->total_runtime();
  EXPECT_NEAR(static_cast<double>(useful + oh.TotalTime()), static_cast<double>(Ms(10)),
              static_cast<double>(Us(20)));
}

TEST(Machine, MigrationDetectedWhenVcpuMovesPcpu) {
  Rig rig(2, 3, Ms(1), ZeroCostConfig(2));
  for (int i = 0; i < 3; ++i) {
    rig.vm->vcpu(i)->Wake();
  }
  rig.sim.RunUntil(Ms(30));
  uint64_t migrations = 0;
  for (int i = 0; i < 3; ++i) {
    migrations += rig.vm->vcpu(i)->migrations();
  }
  EXPECT_GT(migrations, 0u);
  EXPECT_EQ(rig.machine->overhead().migrations, migrations);
}

TEST(Machine, ScheduleCostCharged) {
  Rig rig(1, 1, Ms(1), ZeroCostConfig(1));
  rig.sched->set_sched_cost(Us(2));
  rig.vm->vcpu(0)->Wake();
  rig.sim.RunUntil(Ms(10));
  const OverheadStats& oh = rig.machine->overhead();
  EXPECT_GT(oh.schedule_calls, 0u);
  EXPECT_EQ(oh.schedule_time, oh.schedule_calls * Us(2));
}

TEST(Machine, InjectOverheadStealsTime) {
  Rig rig(1, 1, Ms(1), ZeroCostConfig(1));
  rig.vm->vcpu(0)->Wake();
  rig.sim.At(Ms(2), [&] { rig.machine->pcpu(0)->InjectOverhead(Us(100)); });
  rig.sim.RunUntil(Ms(10));
  EXPECT_NEAR(static_cast<double>(rig.vm->vcpu(0)->total_runtime()),
              static_cast<double>(Ms(10) - Us(100)), static_cast<double>(Us(1)));
}

TEST(Machine, OverheadFraction) {
  OverheadStats oh;
  oh.schedule_time = Ms(1);
  oh.context_switch_time = Ms(1);
  EXPECT_DOUBLE_EQ(oh.Fraction(Ms(100), 2), 0.01);
  OverheadStats later = oh;
  later.schedule_time = Ms(3);
  OverheadStats d = later.Delta(oh);
  EXPECT_EQ(d.schedule_time, Ms(2));
  EXPECT_EQ(d.context_switch_time, 0);
}

TEST(Machine, HotplugVcpuMidRun) {
  Rig rig(2, 1, Ms(1), ZeroCostConfig(2));
  rig.vm->vcpu(0)->Wake();
  HogClient extra;
  rig.sim.At(Ms(5), [&] {
    Vcpu* v = rig.vm->AddVcpu();
    v->set_client(&extra);
    v->Wake();
  });
  rig.sim.RunUntil(Ms(10));
  ASSERT_EQ(rig.vm->num_vcpus(), 2);
  EXPECT_NEAR(static_cast<double>(rig.vm->vcpu(1)->total_runtime()),
              static_cast<double>(Ms(5)), static_cast<double>(Ms(1)));
}

}  // namespace
}  // namespace rtvirt

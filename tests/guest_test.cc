// Guest OS model tests: pEDF admission (first-fit, reshuffle, hotplug), EDF
// dispatch order, job accounting and cross-layer deadline publication —
// isolated from host policy by a dedicated-PCPU host scheduler.

#include "src/guest/guest_os.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/metrics/deadline_monitor.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

struct GuestRig {
  explicit GuestRig(int vcpus, GuestConfig gcfg = {}, int pcpus = 8) {
    machine = std::make_unique<Machine>(&sim, ZeroCostMachine(pcpus));
    machine->SetScheduler(std::make_unique<DedicatedScheduler>());
    vm = machine->AddVm("g");
    guest = std::make_unique<GuestOs>(vm, gcfg);
    for (int i = 0; i < vcpus; ++i) {
      guest->AddVcpu();
    }
    machine->Start();
  }

  Simulator sim;
  std::unique_ptr<Machine> machine;
  Vm* vm = nullptr;
  std::unique_ptr<GuestOs> guest;
};

RtaParams P(TimeNs slice, TimeNs period, bool sporadic = false) {
  return RtaParams{slice, period, sporadic};
}

TEST(GuestAdmission, RejectsInvalidParams) {
  GuestRig rig(1);
  Task* t = rig.guest->CreateTask("t");
  EXPECT_EQ(rig.guest->SchedSetAttr(t, P(0, Ms(10))), kGuestErrInvalid);
  EXPECT_EQ(rig.guest->SchedSetAttr(t, P(Ms(11), Ms(10))), kGuestErrInvalid);
  EXPECT_EQ(rig.guest->SchedSetAttr(t, P(Ms(1), 0)), kGuestErrInvalid);
}

TEST(GuestAdmission, FirstFitPinsToFirstVcpuWithRoom) {
  GuestRig rig(2);
  Task* a = rig.guest->CreateTask("a");
  Task* b = rig.guest->CreateTask("b");
  Task* c = rig.guest->CreateTask("c");
  EXPECT_EQ(rig.guest->SchedSetAttr(a, P(Ms(6), Ms(10))), kGuestOk);
  EXPECT_EQ(rig.guest->SchedSetAttr(b, P(Ms(3), Ms(10))), kGuestOk);
  EXPECT_EQ(rig.guest->SchedSetAttr(c, P(Ms(5), Ms(10))), kGuestOk);
  EXPECT_EQ(a->vcpu_index(), 0);
  EXPECT_EQ(b->vcpu_index(), 0);  // 0.6 + 0.3 fits on vcpu0.
  EXPECT_EQ(c->vcpu_index(), 1);  // 0.5 does not fit on vcpu0.
  EXPECT_EQ(rig.guest->VcpuReservedBw(0), P(Ms(9), Ms(10)).bandwidth());
}

TEST(GuestAdmission, RejectsWhenNoVcpuFits) {
  GuestRig rig(1);
  Task* a = rig.guest->CreateTask("a");
  Task* b = rig.guest->CreateTask("b");
  EXPECT_EQ(rig.guest->SchedSetAttr(a, P(Ms(7), Ms(10))), kGuestOk);
  EXPECT_EQ(rig.guest->SchedSetAttr(b, P(Ms(5), Ms(10))), kGuestErrBusy);
  EXPECT_FALSE(b->registered());
}

TEST(GuestAdmission, ReshuffleDefragments) {
  GuestRig rig(2);
  // vcpu0: 0.5, vcpu1: 0.5 -> a 0.6 task fits only after consolidating the
  // two 0.5 tasks onto one VCPU.
  Task* a = rig.guest->CreateTask("a");
  Task* b = rig.guest->CreateTask("b");
  Task* c = rig.guest->CreateTask("c");
  ASSERT_EQ(rig.guest->SchedSetAttr(a, P(Ms(5), Ms(10))), kGuestOk);
  ASSERT_EQ(rig.guest->SchedSetAttr(b, P(Ms(51), Ms(100))), kGuestOk);
  ASSERT_EQ(a->vcpu_index(), 0);
  ASSERT_EQ(b->vcpu_index(), 1);
  // 0.5 + 0.51 > 1 so they stay apart; 0.4 task triggers no reshuffle...
  EXPECT_EQ(rig.guest->SchedSetAttr(c, P(Ms(6), Ms(10))), kGuestErrBusy);
  // ...but a 0.49 task fits directly.
  EXPECT_EQ(rig.guest->SchedSetAttr(c, P(Ms(49), Ms(100))), kGuestOk);
}

TEST(GuestAdmission, ReshuffleMovesTasksWhenPackingExists) {
  GuestRig rig(2);
  Task* a = rig.guest->CreateTask("a");
  Task* b = rig.guest->CreateTask("b");
  Task* c = rig.guest->CreateTask("c");
  ASSERT_EQ(rig.guest->SchedSetAttr(a, P(Ms(3), Ms(10))), kGuestOk);   // 0.3 -> vcpu0
  ASSERT_EQ(rig.guest->SchedSetAttr(b, P(Ms(65), Ms(100))), kGuestOk);  // 0.65 -> vcpu0
  // 0.9 task: free space is 0.05 on vcpu0 and 1.0 on vcpu1 -> fits directly
  // on vcpu1. Then a 0.4 task: vcpu0 has 0.05, vcpu1 has 0.1 -> only a
  // reshuffle (0.9+0.05? no; FFD: 0.9,0.65,0.4,0.3 -> [0.9],[0.65+0.3]=0.95,
  // 0.4 does not fit) -> rejected.
  ASSERT_EQ(rig.guest->SchedSetAttr(c, P(Ms(9), Ms(10))), kGuestOk);
  EXPECT_EQ(c->vcpu_index(), 1);
  Task* d = rig.guest->CreateTask("d");
  EXPECT_EQ(rig.guest->SchedSetAttr(d, P(Ms(4), Ms(10))), kGuestErrBusy);
  // A 0.1 task packs after reshuffle: FFD 0.9,0.65,0.3,0.1 ->
  // [0.9,0.1][0.65,0.3].
  EXPECT_EQ(rig.guest->SchedSetAttr(d, P(Ms(1), Ms(10))), kGuestOk);
  Bandwidth total = rig.guest->VcpuReservedBw(0) + rig.guest->VcpuReservedBw(1);
  Bandwidth expected = P(Ms(3), Ms(10)).bandwidth() + P(Ms(65), Ms(100)).bandwidth() +
                       P(Ms(9), Ms(10)).bandwidth() + P(Ms(1), Ms(10)).bandwidth();
  EXPECT_EQ(total, expected);
}

TEST(GuestAdmission, HotplugAddsVcpuWhenAllowed) {
  GuestConfig gcfg;
  gcfg.allow_hotplug = true;
  gcfg.max_vcpus = 4;
  GuestRig rig(1, gcfg);
  Task* a = rig.guest->CreateTask("a");
  Task* b = rig.guest->CreateTask("b");
  ASSERT_EQ(rig.guest->SchedSetAttr(a, P(Ms(7), Ms(10))), kGuestOk);
  EXPECT_EQ(rig.guest->num_vcpus(), 1);
  EXPECT_EQ(rig.guest->SchedSetAttr(b, P(Ms(5), Ms(10))), kGuestOk);
  EXPECT_EQ(rig.guest->num_vcpus(), 2);
  EXPECT_EQ(b->vcpu_index(), 1);
}

TEST(GuestAdmission, VcpuCapacityLimitsAdmission) {
  GuestRig rig(1);
  rig.guest->SetVcpuCapacity(0, Bandwidth::FromDouble(0.5));
  Task* a = rig.guest->CreateTask("a");
  EXPECT_EQ(rig.guest->SchedSetAttr(a, P(Ms(6), Ms(10))), kGuestErrBusy);
  EXPECT_EQ(rig.guest->SchedSetAttr(a, P(Ms(4), Ms(10))), kGuestOk);
}

TEST(GuestDispatch, EdfOrderWithinVcpu) {
  GuestRig rig(1);
  DeadlineMonitor mon;
  Task* lo = rig.guest->CreateTask("long-period");
  Task* hi = rig.guest->CreateTask("short-period");
  ASSERT_EQ(rig.guest->SchedSetAttr(lo, P(Ms(2), Ms(20))), kGuestOk);
  ASSERT_EQ(rig.guest->SchedSetAttr(hi, P(Ms(2), Ms(10))), kGuestOk);
  mon.Watch(lo);
  mon.Watch(hi);
  // Release both at t=0; EDF must run `hi` (deadline 10ms) before `lo`.
  rig.guest->ReleaseJob(lo, Ms(2), Ms(20));
  rig.guest->ReleaseJob(hi, Ms(2), Ms(10));
  rig.sim.RunUntil(Ms(1));
  EXPECT_EQ(hi->QueuedJobs(), 1u);  // Still running its job.
  rig.sim.RunUntil(Ms(5));
  EXPECT_EQ(mon.total_completed(), 2u);
  EXPECT_EQ(mon.total_misses(), 0u);
  // hi completed at 2ms, lo at 4ms.
  EXPECT_DOUBLE_EQ(mon.response_times_us().Min(), 2000.0);
  EXPECT_DOUBLE_EQ(mon.response_times_us().Max(), 4000.0);
}

TEST(GuestDispatch, PreemptionByEarlierDeadline) {
  GuestRig rig(1);
  DeadlineMonitor mon;
  Task* lo = rig.guest->CreateTask("lo");
  Task* hi = rig.guest->CreateTask("hi");
  ASSERT_EQ(rig.guest->SchedSetAttr(lo, P(Ms(4), Ms(50))), kGuestOk);
  ASSERT_EQ(rig.guest->SchedSetAttr(hi, P(Ms(1), Ms(5))), kGuestOk);
  mon.Watch(lo);
  mon.Watch(hi);
  rig.guest->ReleaseJob(lo, Ms(4), Ms(50));
  rig.sim.At(Ms(1), [&] { rig.guest->ReleaseJob(hi, Ms(1), rig.sim.Now() + Ms(5)); });
  rig.sim.RunUntil(Ms(10));
  ASSERT_EQ(mon.total_completed(), 2u);
  // hi preempts at 1ms, finishes at 2ms; lo resumes and finishes at 5ms.
  EXPECT_DOUBLE_EQ(mon.per_task().at("hi").MissRatio(), 0.0);
  EXPECT_DOUBLE_EQ(mon.response_times_us().Max(), 5000.0);
}

TEST(GuestDispatch, BackgroundRunsOnlyWhenNoRtaPending) {
  GuestRig rig(1);
  Task* bg = rig.guest->CreateBackgroundTask("bg");
  (void)bg;
  Task* rta = rig.guest->CreateTask("rta");
  ASSERT_EQ(rig.guest->SchedSetAttr(rta, P(Ms(5), Ms(10))), kGuestOk);
  rig.sim.RunUntil(Ms(1));
  // Background hog keeps the VCPU busy.
  EXPECT_FALSE(rig.vm->vcpu(0)->blocked());
  TimeNs before = rig.vm->vcpu(0)->total_runtime();
  EXPECT_GT(before, 0);
  DeadlineMonitor mon;
  mon.Watch(rta);
  rig.guest->ReleaseJob(rta, Ms(5), rig.sim.Now() + Ms(10));
  rig.sim.RunUntil(Ms(7));
  EXPECT_EQ(mon.total_completed(), 1u);
  EXPECT_EQ(mon.total_misses(), 0u);
}

TEST(GuestDispatch, VcpuBlocksWhenIdleAndWakesOnRelease) {
  GuestRig rig(1);
  Task* rta = rig.guest->CreateTask("rta");
  ASSERT_EQ(rig.guest->SchedSetAttr(rta, P(Ms(1), Ms(10))), kGuestOk);
  rig.sim.RunUntil(Ms(1));
  EXPECT_TRUE(rig.vm->vcpu(0)->blocked());
  rig.guest->ReleaseJob(rta, Ms(1), rig.sim.Now() + Ms(10));
  rig.sim.RunUntil(Ms(3));
  EXPECT_TRUE(rig.vm->vcpu(0)->blocked());  // Done, idle again.
  EXPECT_EQ(rta->jobs_completed(), 1u);
}

TEST(GuestCrossLayer, PublishesEarliestPendingDeadline) {
  GuestRig rig(1);
  Task* a = rig.guest->CreateTask("a");
  Task* b = rig.guest->CreateTask("b");
  ASSERT_EQ(rig.guest->SchedSetAttr(a, P(Ms(1), Ms(40))), kGuestOk);
  ASSERT_EQ(rig.guest->SchedSetAttr(b, P(Ms(1), Ms(30))), kGuestOk);
  rig.guest->ReleaseJob(a, Ms(1), Ms(40));
  rig.guest->ReleaseJob(b, Ms(1), Ms(30));
  EXPECT_EQ(rig.guest->NextEarliestDeadline(0), Ms(30));
}

TEST(GuestCrossLayer, SporadicWorstCaseDeadline) {
  GuestRig rig(1);
  Task* s = rig.guest->CreateTask("sporadic");
  ASSERT_EQ(rig.guest->SchedSetAttr(s, P(Us(58), Us(500), true)), kGuestOk);
  rig.sim.RunUntil(Ms(2));
  // Idle sporadic: worst case now + period.
  EXPECT_EQ(rig.guest->NextEarliestDeadline(0), rig.sim.Now() + Us(500));
}

TEST(GuestCrossLayer, IdlePeriodicPublishesNextRelease) {
  GuestRig rig(1);
  Task* p = rig.guest->CreateTask("periodic");
  ASSERT_EQ(rig.guest->SchedSetAttr(p, P(Ms(1), Ms(10))), kGuestOk);
  p->set_next_release(Ms(25));
  EXPECT_EQ(rig.guest->NextEarliestDeadline(0), Ms(25));
}

TEST(GuestRegistration, UnregisterFreesBandwidthAndDropsJobs) {
  GuestRig rig(1);
  Task* a = rig.guest->CreateTask("a");
  ASSERT_EQ(rig.guest->SchedSetAttr(a, P(Ms(9), Ms(10))), kGuestOk);
  rig.guest->ReleaseJob(a, Ms(9), Ms(10));
  rig.sim.RunUntil(Ms(1));
  EXPECT_EQ(rig.guest->SchedUnregister(a), kGuestOk);
  EXPECT_EQ(rig.guest->VcpuReservedBw(0), Bandwidth::Zero());
  EXPECT_FALSE(a->HasPendingJob());
  // Freed bandwidth is reusable.
  Task* b = rig.guest->CreateTask("b");
  EXPECT_EQ(rig.guest->SchedSetAttr(b, P(Ms(9), Ms(10))), kGuestOk);
}

TEST(GuestRegistration, ParamChangeInPlace) {
  GuestRig rig(1);
  Task* a = rig.guest->CreateTask("a");
  ASSERT_EQ(rig.guest->SchedSetAttr(a, P(Ms(2), Ms(10))), kGuestOk);
  ASSERT_EQ(rig.guest->SchedSetAttr(a, P(Ms(8), Ms(10))), kGuestOk);
  EXPECT_EQ(rig.guest->VcpuReservedBw(0), P(Ms(8), Ms(10)).bandwidth());
  ASSERT_EQ(rig.guest->SchedSetAttr(a, P(Ms(1), Ms(10))), kGuestOk);
  EXPECT_EQ(rig.guest->VcpuReservedBw(0), P(Ms(1), Ms(10)).bandwidth());
}

TEST(GuestRegistration, ParamChangeMovesVcpuWhenNeeded) {
  GuestRig rig(2);
  Task* a = rig.guest->CreateTask("a");
  Task* b = rig.guest->CreateTask("b");
  ASSERT_EQ(rig.guest->SchedSetAttr(a, P(Ms(6), Ms(10))), kGuestOk);
  ASSERT_EQ(rig.guest->SchedSetAttr(b, P(Ms(3), Ms(10))), kGuestOk);
  ASSERT_EQ(b->vcpu_index(), 0);
  // b grows to 0.7: does not fit beside a (0.6); must move to vcpu1.
  ASSERT_EQ(rig.guest->SchedSetAttr(b, P(Ms(7), Ms(10))), kGuestOk);
  EXPECT_EQ(b->vcpu_index(), 1);
  EXPECT_EQ(rig.guest->VcpuReservedBw(0), P(Ms(6), Ms(10)).bandwidth());
  EXPECT_EQ(rig.guest->VcpuReservedBw(1), P(Ms(7), Ms(10)).bandwidth());
}

TEST(GuestRegistration, MinPeriodTracksPinnedTasks) {
  GuestRig rig(1);
  Task* a = rig.guest->CreateTask("a");
  Task* b = rig.guest->CreateTask("b");
  ASSERT_EQ(rig.guest->SchedSetAttr(a, P(Ms(1), Ms(40))), kGuestOk);
  EXPECT_EQ(rig.guest->VcpuMinPeriod(0), Ms(40));
  ASSERT_EQ(rig.guest->SchedSetAttr(b, P(Ms(1), Ms(10))), kGuestOk);
  EXPECT_EQ(rig.guest->VcpuMinPeriod(0), Ms(10));
  rig.guest->SchedUnregister(b);
  EXPECT_EQ(rig.guest->VcpuMinPeriod(0), Ms(40));
}

}  // namespace
}  // namespace rtvirt

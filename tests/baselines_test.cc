// Baseline host schedulers: deferrable-server gEDF (RT-Xen / vanilla EDF)
// and Credit (proportional share with boost).

#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/credit.h"
#include "src/baselines/server_edf.h"
#include "src/metrics/deadline_monitor.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

ExperimentConfig BaseConfig(Framework fw, int pcpus) {
  ExperimentConfig cfg;
  cfg.framework = fw;
  cfg.machine = ZeroCostMachine(pcpus);
  cfg.credit.tick_cost = 0;
  cfg.credit.dispatch_cost = 0;
  cfg.credit.pick_cost = 0;
  cfg.server_edf.pick_cost = 0;
  return cfg;
}

TEST(ServerEdf, ServerGetsConfiguredBandwidth) {
  Experiment exp(BaseConfig(Framework::kRtXen, 1));
  GuestOs* rt = exp.AddGuest("rt", 1);
  GuestOs* hog = exp.AddGuest("hog", 1);
  hog->CreateBackgroundTask("bg");
  rt->CreateBackgroundTask("rt-bg");  // Keep the server always runnable.
  exp.SetVcpuServer(rt->vm()->vcpu(0), ServerParams{Ms(3), Ms(10)});
  exp.Run(Sec(1));
  EXPECT_NEAR(static_cast<double>(rt->vm()->TotalRuntime()), static_cast<double>(Ms(300)),
              static_cast<double>(Ms(15)));
  EXPECT_NEAR(static_cast<double>(hog->vm()->TotalRuntime()), static_cast<double>(Ms(700)),
              static_cast<double>(Ms(15)));
}

TEST(ServerEdf, EdfOrderAmongServers) {
  // Two always-busy servers on one PCPU: the shorter-period server's jobs
  // must meet deadlines because EDF favors it each period.
  Experiment exp(BaseConfig(Framework::kRtXen, 1));
  GuestOs* a = exp.AddGuest("a", 1);
  GuestOs* b = exp.AddGuest("b", 1);
  exp.SetVcpuServer(a->vm()->vcpu(0), ServerParams{Ms(2), Ms(5)});
  exp.SetVcpuServer(b->vm()->vcpu(0), ServerParams{Ms(12), Ms(20)});
  DeadlineMonitor mon;
  PeriodicRta ra(a, "ra", RtaParams{Ms(2), Ms(5), false});
  PeriodicRta rb(b, "rb", RtaParams{Ms(12), Ms(20), false});
  ra.task()->set_observer(&mon);
  rb.task()->set_observer(&mon);
  ra.Start(0, Sec(1));
  rb.Start(0, Sec(1));
  exp.Run(Sec(1) + Ms(30));
  EXPECT_GE(mon.total_completed(), 245u);
  EXPECT_EQ(mon.total_misses(), 0u);
}

TEST(ServerEdf, DepletedServerWaitsForReplenishment) {
  Experiment exp(BaseConfig(Framework::kRtXen, 1));
  GuestOs* rt = exp.AddGuest("rt", 1);
  rt->CreateBackgroundTask("bg");
  exp.SetVcpuServer(rt->vm()->vcpu(0), ServerParams{Ms(1), Ms(100)});
  exp.Run(Ms(500));
  // Non-work-conserving: ~1ms per 100ms even with an idle machine.
  EXPECT_NEAR(static_cast<double>(rt->vm()->TotalRuntime()), static_cast<double>(Ms(5)),
              static_cast<double>(Ms(2)));
}

TEST(ServerEdf, DeferrableServerPreservesBudgetWhenIdle) {
  Experiment exp(BaseConfig(Framework::kRtXen, 1));
  GuestOs* rt = exp.AddGuest("rt", 1);
  GuestOs* hog = exp.AddGuest("hog", 1);
  hog->CreateBackgroundTask("bg");
  exp.SetVcpuServer(rt->vm()->vcpu(0), ServerParams{Ms(4), Ms(10)});
  Task* s = rt->CreateTask("late");
  ASSERT_EQ(rt->SchedSetAttr(s, RtaParams{Ms(3), Ms(10), true}), kGuestOk);
  DeadlineMonitor mon;
  mon.Watch(s);
  exp.Run(Ms(100));
  // Job arrives mid-period: the idle server kept its budget and serves it
  // immediately (deferrable behaviour).
  rt->ReleaseJob(s, Ms(3), exp.sim().Now() + Ms(10));
  exp.Run(Ms(200));
  ASSERT_EQ(mon.total_completed(), 1u);
  EXPECT_EQ(mon.total_misses(), 0u);
  EXPECT_LE(mon.response_times_us().Max(), 4000.0);
}

TEST(Credit, WeightsShareProportionally) {
  Experiment exp(BaseConfig(Framework::kCredit, 1));
  exp.config();
  GuestOs* a = exp.AddGuest("a", 1);
  GuestOs* b = exp.AddGuest("b", 1);
  a->vm()->set_weight(256);
  b->vm()->set_weight(768);
  a->CreateBackgroundTask("bga");
  b->CreateBackgroundTask("bgb");
  exp.Run(Sec(2));
  double ra = static_cast<double>(a->vm()->TotalRuntime());
  double rb = static_cast<double>(b->vm()->TotalRuntime());
  EXPECT_NEAR(rb / (ra + rb), 0.75, 0.05);
}

TEST(Credit, BoostServesWakingVmQuickly) {
  ExperimentConfig cfg = BaseConfig(Framework::kCredit, 1);
  cfg.credit.timeslice = Ms(30);
  Experiment exp(cfg);
  GuestOs* lat = exp.AddGuest("lat", 1);
  GuestOs* hog = exp.AddGuest("hog", 1);
  hog->CreateBackgroundTask("bg");
  Task* s = lat->CreateTask("svc");
  ASSERT_EQ(lat->SchedSetAttr(s, RtaParams{Us(100), Ms(5), true}), kGuestOk);
  DeadlineMonitor mon;
  mon.Watch(s);
  exp.Run(Ms(100));
  lat->ReleaseJob(s, Us(100), exp.sim().Now() + Ms(5));
  exp.Run(Ms(200));
  ASSERT_EQ(mon.total_completed(), 1u);
  // Without boost it would wait for the hog's 30ms quantum; with boost only
  // the ratelimit (500us) can delay it.
  EXPECT_LE(mon.response_times_us().Max(), 700.0);
}

TEST(Credit, RatelimitDelaysPreemption) {
  ExperimentConfig cfg = BaseConfig(Framework::kCredit, 1);
  cfg.credit.ratelimit = Us(500);
  Experiment exp(cfg);
  GuestOs* lat = exp.AddGuest("lat", 1);
  GuestOs* hog = exp.AddGuest("hog", 1);
  hog->CreateBackgroundTask("bg");
  Task* s = lat->CreateTask("svc");
  ASSERT_EQ(lat->SchedSetAttr(s, RtaParams{Us(10), Ms(5), true}), kGuestOk);
  DeadlineMonitor mon;
  mon.Watch(s);
  // First request: the hog ran a long quantum, so its ratelimit window has
  // expired and the boosted wake preempts immediately. After it completes,
  // the hog is re-dispatched; a second request 50us later falls inside the
  // hog's fresh ratelimit window and waits for the remainder of it.
  exp.Run(Ms(100));
  lat->ReleaseJob(s, Us(10), exp.sim().Now() + Ms(5));
  exp.Run(Ms(100) + Us(50));
  ASSERT_EQ(mon.total_completed(), 1u);
  EXPECT_LE(mon.response_times_us().Max(), 50.0);
  lat->ReleaseJob(s, Us(10), exp.sim().Now() + Ms(5));
  exp.Run(Ms(102));
  ASSERT_EQ(mon.total_completed(), 2u);
  EXPECT_GE(mon.response_times_us().Max(), 250.0);
  EXPECT_LE(mon.response_times_us().Max(), 600.0);
}

TEST(Credit, TickInterferenceChargesOverhead) {
  ExperimentConfig cfg = BaseConfig(Framework::kCredit, 1);
  cfg.credit.tick_cost = Us(40);
  cfg.credit.tick_period = Ms(10);
  Experiment exp(cfg);
  GuestOs* hog = exp.AddGuest("hog", 1);
  hog->CreateBackgroundTask("bg");
  exp.Run(Sec(1));
  // ~100 ticks of 40us each.
  EXPECT_NEAR(static_cast<double>(exp.machine().overhead().schedule_time),
              static_cast<double>(Ms(4)),
              static_cast<double>(Ms(1)));
  EXPECT_LT(hog->vm()->TotalRuntime(), Sec(1) - Ms(3));
}

TEST(VanillaEdf, SameSchedulerDifferentFrameworkLabel) {
  Experiment exp(BaseConfig(Framework::kVanillaEdf, 1));
  EXPECT_NE(exp.server_edf(), nullptr);
  EXPECT_EQ(exp.dpwrap(), nullptr);
  EXPECT_STREQ(FrameworkName(Framework::kVanillaEdf), "Vanilla-EDF");
}

}  // namespace
}  // namespace rtvirt

// Workload generators: periodic (rt-app), sporadic (TCP-triggered),
// memcached/Mutilate, VLC profiles, and the dynamic churn driver.

#include <gtest/gtest.h>

#include <memory>

#include "src/metrics/deadline_monitor.h"
#include "src/runner/experiment.h"
#include "src/workloads/churn.h"
#include "src/workloads/memcached.h"
#include "src/workloads/periodic.h"
#include "src/workloads/sporadic.h"
#include "src/workloads/vlc.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

ExperimentConfig RtvirtConfig(int pcpus) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(pcpus);
  return cfg;
}

TEST(PeriodicWorkload, ReleasesOneJobPerPeriod) {
  Experiment exp(RtvirtConfig(1));
  GuestOs* g = exp.AddGuest("vm", 1);
  DeadlineMonitor mon;
  PeriodicRta rta(g, "rta", RtaParams{Ms(2), Ms(10), false});
  rta.task()->set_observer(&mon);
  rta.Start(0, Ms(100));
  exp.Run(Ms(150));
  EXPECT_EQ(mon.total_completed(), 10u);
  EXPECT_EQ(mon.total_misses(), 0u);
  EXPECT_FALSE(rta.task()->registered());  // Unregistered at stop.
}

TEST(PeriodicWorkload, DeferredStart) {
  Experiment exp(RtvirtConfig(1));
  GuestOs* g = exp.AddGuest("vm", 1);
  PeriodicRta rta(g, "rta", RtaParams{Ms(2), Ms(10), false});
  rta.Start(Ms(50), Ms(100));
  exp.Run(Ms(10));
  EXPECT_FALSE(rta.task()->registered());
  exp.Run(Ms(60));
  EXPECT_TRUE(rta.task()->registered());
  exp.Run(Ms(150));
  EXPECT_EQ(rta.task()->jobs_completed(), 5u);
}

TEST(SporadicWorkload, SendsRequestedNumberOfRequests) {
  Experiment exp(RtvirtConfig(2));
  GuestOs* g = exp.AddGuest("vm", 1);
  DeadlineMonitor mon;
  SporadicRta rta(g, "sp", RtaParams{Ms(5), Ms(20), true}, exp.rng().Fork(), Ms(10), Ms(50));
  rta.task()->set_observer(&mon);
  rta.Start(0, 20);
  exp.Run(Sec(2));
  EXPECT_EQ(rta.requests_sent(), 20u);
  EXPECT_EQ(mon.total_completed(), 20u);
  EXPECT_EQ(mon.total_misses(), 0u);
}

TEST(SporadicWorkload, NetworkDelayIsSmall) {
  Rng rng(7);
  NetworkModel net;
  for (int i = 0; i < 1000; ++i) {
    TimeNs d = net.Sample(rng);
    EXPECT_GE(d, Us(8));
    EXPECT_LE(d, Us(14));
  }
}

TEST(VlcProfiles, MatchTable3) {
  EXPECT_EQ(VlcParams(24).slice, Ms(19));
  EXPECT_EQ(VlcParams(24).period, Ms(41));
  EXPECT_EQ(VlcParams(30).slice, Ms(18));
  EXPECT_EQ(VlcParams(30).period, Ms(33));
  EXPECT_EQ(VlcParams(48).slice, Ms(17));
  EXPECT_EQ(VlcParams(48).period, Ms(20));
  EXPECT_EQ(VlcParams(60).slice, Ms(15));
  EXPECT_EQ(VlcParams(60).period, Ms(16));
  // Bandwidth needs match the paper's Table 3 column within rounding.
  EXPECT_NEAR(VlcParams(24).bandwidth().ToDouble(), 0.463, 0.02);
  EXPECT_NEAR(VlcParams(60).bandwidth().ToDouble(), 0.938, 0.01);
}

TEST(Memcached, ServiceTimesWithinCalibratedRange) {
  Experiment exp(RtvirtConfig(1));
  GuestOs* g = exp.AddGuest("mc", 1);
  DeadlineMonitor mon;
  MemcachedConfig mcfg;
  mcfg.qps = 2000;  // Dense for the test.
  MemcachedServer server(g, "mc", mcfg, exp.rng().Fork());
  server.task()->set_observer(&mon);
  server.Start(0, Sec(1));
  exp.Run(Sec(1) + Ms(10));
  ASSERT_EQ(server.admission_result(), kGuestOk);
  EXPECT_GT(mon.total_completed(), 1500u);
  // On a dedicated CPU latency == service time plus queueing: clustered
  // arrivals at 2000 qps can stack a few ~50 us requests.
  EXPECT_GE(mon.response_times_us().Min(), ToUs(mcfg.service_min));
  EXPECT_LE(mon.response_times_us().Percentile(50), ToUs(mcfg.service_max));
  EXPECT_LE(mon.response_times_us().Max(), ToUs(mcfg.service_max) + 300.0);
}

TEST(Memcached, MeetsSloOnDedicatedCpuUnderRtvirt) {
  Experiment exp(RtvirtConfig(1));
  GuestOs* g = exp.AddGuest("mc", 1);
  DeadlineMonitor mon;
  MemcachedServer server(g, "mc", MemcachedConfig{}, exp.rng().Fork());
  server.task()->set_observer(&mon);
  server.Start(0, Sec(20));
  exp.Run(Sec(20) + Ms(10));
  ASSERT_GT(mon.total_completed(), 1900u);
  EXPECT_LE(mon.response_times_us().Percentile(99.9), 500.0);
}

TEST(Churn, SpawnsAndStopsRtasDynamically) {
  ExperimentConfig cfg = RtvirtConfig(8);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 4);
  DeadlineMonitor mon;
  ChurnConfig ccfg;
  ccfg.experiment_len = Sec(60);
  ccfg.min_episode = Sec(2);
  ccfg.max_episode = Sec(10);
  ccfg.max_gap = Sec(1);
  ChurnDriver churn(g, ccfg, exp.rng().Fork(), &mon);
  churn.Start();
  exp.Run(Sec(61));
  EXPECT_GT(churn.rtas_started(), 10);
  EXPECT_GT(mon.total_completed(), 100u);
  // Plenty of host bandwidth (8 PCPUs for <= 4 concurrent RTAs): no misses.
  EXPECT_EQ(mon.total_misses(), 0u);
  // All episodes ended: every RTA unregistered.
  for (const auto& rta : churn.rtas()) {
    EXPECT_FALSE(rta->task()->registered());
  }
}

TEST(Churn, RejectedEpisodesReleaseNoBandwidth) {
  // 3 VCPU slots demanding Table 3 streaming profiles (0.44-0.94 CPU each)
  // against a single PCPU: host admission must reject a good share of the
  // episodes, and rejected episodes must not leak reserved bandwidth.
  ExperimentConfig cfg = RtvirtConfig(1);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 3);
  DeadlineMonitor mon;
  ChurnConfig ccfg;
  ccfg.experiment_len = Sec(60);
  ccfg.min_episode = Sec(2);
  ccfg.max_episode = Sec(6);
  ccfg.max_gap = Sec(1);
  ccfg.idle_prob = 0.0;  // Every episode is a real streaming profile.
  ChurnDriver churn(g, ccfg, exp.rng().Fork(), &mon);
  churn.Start();
  // Mid-run invariant: admission control never over-commits the host.
  exp.sim().At(Sec(30), [&exp] {
    EXPECT_LE(exp.dpwrap()->total_reserved(), Bandwidth::Cpus(1));
  });
  exp.Run(Sec(70));

  EXPECT_GT(churn.rtas_started(), 0);
  EXPECT_GT(churn.rtas_rejected(), 0);
  for (const auto& rta : churn.rtas()) {
    EXPECT_FALSE(rta->task()->registered());
  }
  // Every admitted episode ended and released its reservation; rejected ones
  // never held one. Any residue here is a leak on the rejection path.
  EXPECT_EQ(exp.dpwrap()->total_reserved(), Bandwidth::Zero());
}

// The tier knobs (fixed profile, criticality, elastic minimum, staggered
// start, admission retry) propagate from ChurnConfig to every spawned RTA.
TEST(ChurnWorkload, TierKnobsPropagateToRtas) {
  Experiment exp(RtvirtConfig(2));
  GuestOs* g = exp.AddGuest("vm", 2);
  ChurnConfig ccfg;
  ccfg.experiment_len = Sec(2);
  ccfg.min_episode = Sec(5);  // One episode per slot, capped at the window.
  ccfg.max_episode = Sec(5);
  ccfg.max_gap = Ms(100);
  ccfg.idle_prob = 0.0;
  ccfg.start_at = Ms(200);
  ccfg.criticality = Criticality::kHigh;
  ccfg.elastic_min_fraction = 0.5;
  ccfg.profile = RtaParams{Ms(2), Ms(10)};
  ccfg.admission_retry = Ms(50);
  ChurnDriver churn(g, ccfg, exp.rng().Fork(), nullptr);
  churn.Start();
  exp.sim().At(Ms(150), [&churn] {
    // Staggering is offset by start_at: nothing registers before it.
    EXPECT_EQ(churn.rtas_started(), 0);
  });
  exp.Run(Sec(2) + Ms(100));
  ASSERT_GT(churn.rtas_started(), 0);
  for (const auto& rta : churn.rtas()) {
    EXPECT_EQ(rta->params().slice, Ms(2));
    EXPECT_EQ(rta->params().period, Ms(10));
    EXPECT_EQ(rta->params().criticality, Criticality::kHigh);
    EXPECT_EQ(rta->params().min_slice, Ms(1));
    EXPECT_GE(rta->admission_attempts(), 1);
  }
}

}  // namespace
}  // namespace rtvirt

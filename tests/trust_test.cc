// Host-side guest trust boundary (DpWrapConfig::guest_trust): the deadline
// sanitizer, the per-VM hypercall token bucket + oscillation detector, the
// reputation/quarantine state machine with hysteresis rehabilitation, and the
// end-to-end byzantine-isolation acceptance criterion the bench prints.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "src/faults/fault_injector.h"
#include "src/metrics/deadline_monitor.h"
#include "src/runner/experiment.h"
#include "src/workloads/churn.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

ExperimentConfig TrustedConfig(int pcpus) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(pcpus);
  cfg.dpwrap.guest_trust.enabled = true;
  return cfg;
}

HypercallArgs BwCall(SchedOp op, Vcpu* v, double bw, TimeNs period) {
  HypercallArgs args;
  args.op = op;
  args.vcpu_a = v;
  args.bw_a = Bandwidth::FromDouble(bw);
  args.period_a = period;
  return args;
}

// ---- Deadline sanitizer ----

TEST(DeadlineSanitizer, EgregiouslyStaleDeadlineScoresOneLiePerPublication) {
  ExperimentConfig cfg = TrustedConfig(1);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* v = g->vm()->vcpu(0);
  ASSERT_EQ(exp.machine().Hypercall(v, BwCall(SchedOp::kIncBw, v, 0.5, Ms(10))),
            kHypercallOk);
  exp.Run(Ms(100));
  // Stale by 50 ms at publish — far beyond the reservation's 10 ms period.
  g->vm()->shared_page().PublishNextDeadline(0, Ms(50));
  exp.Run(Ms(200));
  // Scored exactly once despite many replans rereading the same slot value:
  // re-counting a persisting publication would make rehabilitation impossible.
  EXPECT_EQ(exp.dpwrap()->deadline_lie_rejections(), 1u);
  EXPECT_FALSE(exp.dpwrap()->Quarantined(g->vm()));  // One lie is not a pattern.
}

TEST(DeadlineSanitizer, HonestTardinessWithinOnePeriodIsNotScored) {
  ExperimentConfig cfg = TrustedConfig(1);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* v = g->vm()->vcpu(0);
  ASSERT_EQ(exp.machine().Hypercall(v, BwCall(SchedOp::kIncBw, v, 0.5, Ms(10))),
            kHypercallOk);
  exp.Run(Ms(100));
  // A backlogged guest legitimately publishes its slightly-past pEDF head
  // deadline under transient overload; the sporadic fallback neutralizes the
  // value, but the guest must not be scored for being a victim.
  g->vm()->shared_page().PublishNextDeadline(0, Ms(100) - Ms(5));
  exp.Run(Ms(200));
  EXPECT_EQ(exp.dpwrap()->deadline_lie_rejections(), 0u);
  EXPECT_EQ(exp.dpwrap()->deadline_floor_clamps(), 0u);
}

TEST(DeadlineSanitizer, ShortHorizonFuturePublicationClampedNotScored) {
  ExperimentConfig cfg = TrustedConfig(1);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* v = g->vm()->vcpu(0);
  ASSERT_EQ(exp.machine().Hypercall(v, BwCall(SchedOp::kIncBw, v, 0.5, Ms(10))),
            kHypercallOk);
  exp.Run(Ms(100));
  // now + 100 us is below the 250 us min_global_slice floor: a completing job
  // publishing its imminent next release is normal — clamp, count, no score.
  // The reservation nudge forces a replan at the current instant, while the
  // published horizon is still in the future.
  g->vm()->shared_page().PublishNextDeadline(0, Ms(100) + Us(100));
  ASSERT_EQ(exp.machine().Hypercall(v, BwCall(SchedOp::kIncBw, v, 0.6, Ms(10))),
            kHypercallOk);
  exp.Run(Ms(100) + Ms(1));
  EXPECT_GE(exp.dpwrap()->deadline_floor_clamps(), 1u);
  EXPECT_EQ(exp.dpwrap()->deadline_lie_rejections(), 0u);
  EXPECT_FALSE(exp.dpwrap()->Quarantined(g->vm()));
}

TEST(DeadlineSanitizer, FloorBindingBudgetDistrustsReplanForcer) {
  ExperimentConfig cfg = TrustedConfig(1);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* v = g->vm()->vcpu(0);
  ASSERT_EQ(exp.machine().Hypercall(v, BwCall(SchedOp::kIncBw, v, 0.5, Ms(10))),
            kHypercallOk);
  // The attack shape from the bench: a fresh publication every 200 us whose
  // horizon (now + 300 us) is still in the future at every read, so each one
  // binds the global slice at its 250 us floor. Once the first replan reads
  // one (the initial quiet slice runs a full max_global_slice, 100 ms), the
  // planner is forced to replan at its maximum rate and the budget (128
  // fresh bindings per 100 ms window) trips well inside the second window.
  SharedSchedPage& page = g->vm()->shared_page();
  Simulator& sim = exp.sim();
  std::function<void()> pump = [&] {
    if (sim.Now() >= Ms(180)) {
      return;
    }
    page.PublishNextDeadline(0, sim.Now() + Us(300));
    sim.After(Us(200), pump);
  };
  sim.After(Us(200), pump);
  exp.Run(Ms(200));
  EXPECT_GE(exp.dpwrap()->replan_budget_trips(), 1u);
}

// ---- Hypercall rate limiting ----

TEST(RateLimiter, TokenBucketRejectsBeyondBurstWithAgain) {
  ExperimentConfig cfg = TrustedConfig(2);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* v = g->vm()->vcpu(0);
  // 100 back-to-back garbage calls (the storm injector's shape: a bandwidth
  // no VCPU can hold) against the default burst of 64. The bucket charges
  // the *call*, not its outcome, so nothing is ever reserved.
  int again = 0;
  for (int i = 0; i < 100; ++i) {
    int64_t rc = exp.machine().Hypercall(v, BwCall(SchedOp::kIncBw, v, 50.0, Ms(10)));
    if (rc == kHypercallAgain) {
      ++again;
    } else {
      EXPECT_EQ(rc, kHypercallInvalid);
    }
  }
  EXPECT_EQ(again, 36);
  EXPECT_EQ(exp.dpwrap()->hypercall_rate_rejections(), 36u);
  // kHypercallAgain is the existing transient-failure code: the channel's
  // retry/degraded machinery handles a throttled guest with no new ABI.
}

TEST(RateLimiter, IncDecOscillationTripsThrashDetector) {
  ExperimentConfig cfg = TrustedConfig(2);
  cfg.dpwrap.guest_trust.hypercall_burst = 256;  // Keep the bucket out of the way.
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* v = g->vm()->vcpu(0);
  // 70 alternating raise/shrink calls = 69 direction flips against the
  // default budget of 32 per window: a guest buying a replan per call without
  // ever holding the bandwidth.
  for (int i = 0; i < 70; ++i) {
    SchedOp op = i % 2 == 0 ? SchedOp::kIncBw : SchedOp::kDecBw;
    double bw = i % 2 == 0 ? 0.2 : 0.1;
    exp.machine().Hypercall(v, BwCall(op, v, bw, Ms(10)));
  }
  EXPECT_GE(exp.dpwrap()->bw_thrash_trips(), 1u);
}

// ---- Quarantine state machine ----

TEST(Quarantine, StormQuarantinesFreezesReservationsAndRehabilitates) {
  ExperimentConfig cfg = TrustedConfig(2);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* v = g->vm()->vcpu(0);
  ASSERT_EQ(exp.machine().Hypercall(v, BwCall(SchedOp::kIncBw, v, 0.3, Ms(10))),
            kHypercallOk);
  // Drain the bucket and keep hammering: every rejected call scores a
  // violation, and the score crosses the quarantine threshold mid-storm.
  for (int i = 0; i < 100; ++i) {
    exp.machine().Hypercall(v, BwCall(SchedOp::kIncBw, v, 50.0, Ms(10)));
  }
  EXPECT_TRUE(exp.dpwrap()->Quarantined(g->vm()));
  EXPECT_EQ(exp.dpwrap()->quarantines(), 1u);

  // Let the token bucket refill (50 ms at 2000/s) so the next call reaches
  // the quarantine check rather than the rate limiter; the score is still far
  // too high for the rehabilitation hysteresis to have released the VM.
  exp.Run(Ms(50));
  ASSERT_TRUE(exp.dpwrap()->Quarantined(g->vm()));

  // Bandwidth-only scheduling: ALL reservation mutations are held — even a
  // shrink, because every accepted change forces an immediate replan, so a
  // quarantined guest alternating cheap DEC calls could keep restarting the
  // global slice and starve its neighbors straight through the quarantine.
  EXPECT_EQ(exp.machine().Hypercall(v, BwCall(SchedOp::kDecBw, v, 0.1, Ms(10))),
            kHypercallAgain);
  EXPECT_GE(exp.dpwrap()->quarantine_holds(), 1u);
  EXPECT_EQ(exp.dpwrap()->ReservedBw(v), Bandwidth::FromDouble(0.3))
      << "the VM keeps exactly what admission already granted";

  // Hysteresis rehabilitation: the storm stops, the score decays, and after
  // enough consecutive clean scans the VM is released and served again.
  exp.Run(Sec(1));
  EXPECT_FALSE(exp.dpwrap()->Quarantined(g->vm()));
  EXPECT_EQ(exp.dpwrap()->quarantine_releases(), 1u);
  EXPECT_EQ(exp.machine().Hypercall(v, BwCall(SchedOp::kDecBw, v, 0.1, Ms(10))),
            kHypercallOk);
}

TEST(Quarantine, DisabledTrustLeavesEverythingUntouched) {
  ExperimentConfig cfg = TrustedConfig(2);
  cfg.dpwrap.guest_trust.enabled = false;  // The default.
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Vcpu* v = g->vm()->vcpu(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(exp.machine().Hypercall(v, BwCall(SchedOp::kIncBw, v, 50.0, Ms(10))),
              kHypercallInvalid);
  }
  g->vm()->shared_page().PublishNextDeadline(0, Ms(1));
  exp.Run(Ms(50));
  EXPECT_EQ(exp.dpwrap()->hypercall_rate_rejections(), 0u);
  EXPECT_EQ(exp.dpwrap()->deadline_lie_rejections(), 0u);
  EXPECT_EQ(exp.dpwrap()->quarantines(), 0u);
  EXPECT_FALSE(exp.dpwrap()->Quarantined(g->vm()));
}

// ---- End-to-end byzantine isolation (the bench's acceptance criterion) ----

struct AttackOutcome {
  uint64_t misses = 0;
  ResilienceCounters rc;
};

// Compressed bench/byzantine_isolation: two 6-VCPU HIGH-criticality victim
// VMs on lean slack, one adversarial VM running the full campaign repertoire
// (deadline lies + hypercall storm + bandwidth thrash) in [1 s, 3 s).
AttackOutcome RunCampaign(bool attack, bool hardened) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine.num_pcpus = 4;
  cfg.channel.budget_slack = Us(100);  // Lean consolidation margin.
  constexpr TimeNs kRun = Sec(4);
  if (hardened) {
    cfg.dpwrap.guest_trust.enabled = true;
    cfg.audit.enabled = true;
  }
  if (attack) {
    for (auto kind : {FaultPlan::AdversarialGuest::Kind::kDeadlineLies,
                      FaultPlan::AdversarialGuest::Kind::kHypercallStorm,
                      FaultPlan::AdversarialGuest::Kind::kBandwidthThrash}) {
      FaultPlan::AdversarialGuest a;
      a.kind = kind;
      a.vm_index = 2;
      a.start = Sec(1);
      a.end = Sec(3);
      a.period = kind == FaultPlan::AdversarialGuest::Kind::kHypercallStorm ? Us(100)
                 : kind == FaultPlan::AdversarialGuest::Kind::kDeadlineLies ? Us(200)
                                                                            : Us(500);
      a.thrash_high = Bandwidth::FromDouble(0.15);
      cfg.faults.adversarial_guests.push_back(a);
    }
  }

  Experiment exp(cfg);
  GuestOs* victim_a = exp.AddGuest("victim-a", 6);
  GuestOs* victim_b = exp.AddGuest("victim-b", 6);
  GuestOs* adversary = exp.AddGuest("adversary", 2);

  ChurnConfig tier;
  tier.experiment_len = kRun;
  tier.min_episode = kRun + Sec(10);
  tier.max_episode = kRun + Sec(10);
  tier.max_gap = Ms(100);
  tier.idle_prob = 0.0;
  tier.criticality = Criticality::kHigh;
  tier.profile = RtaParams{Us(3000), Ms(10)};
  tier.admission_retry = Ms(50);
  DeadlineMonitor victims;
  ChurnDriver churn_a(victim_a, tier, Rng(311), &victims);
  ChurnDriver churn_b(victim_b, tier, Rng(312), &victims);
  churn_a.Start();
  churn_b.Start();

  PeriodicRta cover(adversary, "cover", RtaParams{Ms(1), Ms(10)});
  cover.Start(0, kRun);
  adversary->CreateBackgroundTask("hog");

  exp.Run(kRun);
  AttackOutcome out;
  out.misses = victims.total_misses();
  out.rc = exp.resilience();
  return out;
}

TEST(ByzantineAcceptance, HardenedMatchesBaselineAndNaiveMeasurablySuffers) {
  AttackOutcome baseline = RunCampaign(/*attack=*/false, /*hardened=*/false);
  AttackOutcome naive = RunCampaign(/*attack=*/true, /*hardened=*/false);
  AttackOutcome hardened = RunCampaign(/*attack=*/true, /*hardened=*/true);

  // The no-attack profile is clean, and the boundary restores it exactly:
  // zero extra HIGH-tier victim misses under the full campaign.
  EXPECT_EQ(baseline.misses, 0u);
  EXPECT_EQ(hardened.misses, baseline.misses);

  // The same campaign without the boundary measurably hurts the victims.
  EXPECT_GT(naive.misses, 0u);

  // Every defense fired and the isolation invariant held on every audit scan.
  EXPECT_GT(hardened.rc.deadline_lie_rejections, 0u);
  EXPECT_GT(hardened.rc.hypercall_rate_rejections, 0u);
  EXPECT_GE(hardened.rc.quarantines, 1u);
  EXPECT_GT(hardened.rc.audit_checks, 0u);
  EXPECT_EQ(hardened.rc.isolation_violations, 0u);
  EXPECT_EQ(hardened.rc.audit_violations, 0u);
}

}  // namespace
}  // namespace rtvirt

// End-to-end integration tests: full stacks (guest pEDF + host scheduler +
// cross-layer channel + workloads) reproducing the paper's headline claims
// in miniature; the benches regenerate the full tables and figures.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/analysis/carts.h"
#include "src/metrics/deadline_monitor.h"
#include "src/rtvirt/guest_channel.h"
#include "src/runner/experiment.h"
#include "src/workloads/groups.h"
#include "src/workloads/memcached.h"
#include "src/workloads/periodic.h"
#include "src/workloads/sporadic.h"

namespace rtvirt {
namespace {

ExperimentConfig RealisticConfig(Framework fw, int pcpus) {
  ExperimentConfig cfg;
  cfg.framework = fw;
  cfg.machine.num_pcpus = pcpus;
  return cfg;  // Default (calibrated, non-zero) cost model.
}

// Table 1 groups under RTVirt with realistic overheads: every deadline met,
// using little more bandwidth than the RTAs request (Figure 3's claim).
class Table1RtvirtTest : public ::testing::TestWithParam<int> {};

TEST_P(Table1RtvirtTest, GroupMeetsAllDeadlines) {
  const RtaGroup& group = kTable1Groups[GetParam()];
  Experiment exp(RealisticConfig(Framework::kRtvirt, 15));
  DeadlineMonitor mon;
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  std::vector<std::unique_ptr<GuestOs>>* guests;  // Owned by exp.
  (void)guests;
  for (size_t i = 0; i < group.rtas.size(); ++i) {
    GuestOs* g = exp.AddGuest(std::string(group.name) + ".vm" + std::to_string(i), 1);
    auto rta = std::make_unique<PeriodicRta>(g, "rta" + std::to_string(i), group.rtas[i]);
    rta->task()->set_observer(&mon);
    rta->Start(0, Sec(10));
    rtas.push_back(std::move(rta));
  }
  // Sample the reservations mid-run (the RTAs unregister at the end).
  exp.Run(Sec(5));
  Bandwidth requested;
  for (const RtaParams& p : group.rtas) {
    requested += p.bandwidth();
  }
  Bandwidth reserved = exp.dpwrap()->total_reserved();
  EXPECT_GE(reserved, requested);
  EXPECT_LT((reserved - requested).ToDouble(), 0.12);  // 500us slack per VCPU.

  exp.Run(Sec(10) + Ms(200));
  for (const auto& rta : rtas) {
    EXPECT_EQ(rta->admission_result(), kGuestOk);
  }
  EXPECT_GT(mon.total_completed(), 500u);
  EXPECT_EQ(mon.total_misses(), 0u) << group.name;
}

INSTANTIATE_TEST_SUITE_P(AllGroups, Table1RtvirtTest, ::testing::Range(0, 6));

// The same groups under RT-Xen with CARTS interfaces: no misses either, but
// at visibly larger allocated bandwidth.
TEST(Table1RtXen, NhDecGroupSchedulesWithCartsInterfaces) {
  const RtaGroup& group = kTable1Groups[4];  // NH-Dec: the paper's Table 2.
  Experiment exp(RealisticConfig(Framework::kRtXen, 15));
  DeadlineMonitor mon;
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  Bandwidth allocated;
  for (size_t i = 0; i < group.rtas.size(); ++i) {
    GuestOs* g = exp.AddGuest("vm" + std::to_string(i), 1);
    std::vector<RtaParams> taskset{group.rtas[i]};
    auto iface = MinimalInterface(taskset, CartsOptions{Ms(1), 0, 0});
    ASSERT_TRUE(iface.has_value());
    exp.SetVcpuServer(g->vm()->vcpu(0), ServerParams{iface->budget, iface->period});
    g->SetVcpuCapacity(0, iface->bandwidth());
    allocated += iface->bandwidth();
    auto rta = std::make_unique<PeriodicRta>(g, "rta" + std::to_string(i), group.rtas[i]);
    rta->task()->set_observer(&mon);
    rta->Start(0, Sec(10));
    rtas.push_back(std::move(rta));
  }
  exp.Run(Sec(10) + Ms(200));
  EXPECT_EQ(mon.total_misses(), 0u);
  // Table 2: RT-Xen allocates ~2.33 CPUs for RTAs requiring ~2.02.
  EXPECT_NEAR(allocated.ToDouble(), 2.33, 0.02);
}

// Figure 1: two-level EDF *without* cross-layer awareness misses deadlines
// even though the VMs receive their full bandwidth.
// The motivational example is idealized (no overheads): the VM parameters
// use exactly 100% of the CPU, so any cost model would perturb it.
ExperimentConfig Fig1Config(Framework fw) {
  ExperimentConfig cfg;
  cfg.framework = fw;
  cfg.machine.num_pcpus = 1;
  cfg.machine.context_switch_cost = 0;
  cfg.machine.migration_cost = 0;
  cfg.machine.hypercall_cost = 0;
  cfg.server_edf.pick_cost = 0;
  cfg.dpwrap.pick_cost = 0;
  cfg.dpwrap.replan_cost_base = 0;
  cfg.dpwrap.replan_cost_per_log = 0;
  cfg.channel.budget_slack = 0;
  return cfg;
}

TEST(Fig1Motivation, VanillaTwoLevelEdfMissesDeadlines) {
  Experiment exp(Fig1Config(Framework::kVanillaEdf));
  // VM1 (5,15) hosting RTA1 (1,15) + RTA2 (4,15); VM2 (5,10); VM3 (5,30).
  GuestOs* vm1 = exp.AddGuest("vm1", 1);
  GuestOs* vm2 = exp.AddGuest("vm2", 1);
  GuestOs* vm3 = exp.AddGuest("vm3", 1);
  exp.SetVcpuServer(vm1->vm()->vcpu(0), ServerParams{Ms(5), Ms(15)});
  exp.SetVcpuServer(vm2->vm()->vcpu(0), ServerParams{Ms(5), Ms(10)});
  exp.SetVcpuServer(vm3->vm()->vcpu(0), ServerParams{Ms(5), Ms(30)});
  // Every VM also hosts background work (BGAs, section 3.1), so each VM
  // consumes its full EDF slice exactly as Figure 1a depicts.
  vm1->CreateBackgroundTask("busy1");
  vm2->CreateBackgroundTask("busy2");
  vm3->CreateBackgroundTask("busy3");
  DeadlineMonitor mon1;
  DeadlineMonitor mon2;
  PeriodicRta rta1(vm1, "rta1", RtaParams{Ms(1), Ms(15), false});
  PeriodicRta rta2(vm1, "rta2", RtaParams{Ms(4), Ms(15), false});
  rta1.task()->set_observer(&mon1);
  rta2.task()->set_observer(&mon2);
  rta1.Start(0, Sec(10));
  // RTA2 arrives right after VM1's slice each period (the paper's pattern).
  rta2.Start(Ms(11), Sec(10));
  exp.Run(Sec(10) + Ms(100));
  EXPECT_EQ(mon1.total_misses(), 0u);
  // RTA2 misses a large share of its deadlines (every other in the paper).
  EXPECT_GT(mon2.TotalMissRatio(), 0.3);
}

// ...and RTVirt schedules the identical scenario without any miss.
TEST(Fig1Motivation, RtvirtSchedulesTheSameScenario) {
  Experiment exp(Fig1Config(Framework::kRtvirt));
  GuestOs* vm1 = exp.AddGuest("vm1", 1);
  GuestOs* vm2 = exp.AddGuest("vm2", 1);
  GuestOs* vm3 = exp.AddGuest("vm3", 1);
  DeadlineMonitor mon;
  PeriodicRta rta1(vm1, "rta1", RtaParams{Ms(1), Ms(15), false});
  PeriodicRta rta2(vm1, "rta2", RtaParams{Ms(4), Ms(15), false});
  PeriodicRta rta3(vm2, "rta3", RtaParams{Ms(5), Ms(10), false});
  PeriodicRta rta4(vm3, "rta4", RtaParams{Ms(5), Ms(30), false});
  for (PeriodicRta* r : {&rta1, &rta2, &rta3, &rta4}) {
    r->task()->set_observer(&mon);
  }
  rta1.Start(0, Sec(10));
  rta2.Start(Ms(11), Sec(10));
  rta3.Start(0, Sec(10));
  rta4.Start(0, Sec(10));
  exp.Run(Sec(10) + Ms(100));
  EXPECT_GT(mon.total_completed(), 1500u);
  EXPECT_EQ(mon.total_misses(), 0u);
}

// Sporadic RTAs (4.2): TCP-triggered jobs, 100 requests each, no misses.
TEST(SporadicGroups, RtvirtMeetsAllSporadicDeadlines) {
  const RtaGroup& group = kTable1Groups[1];  // H-Dec.
  Experiment exp(RealisticConfig(Framework::kRtvirt, 15));
  DeadlineMonitor mon;
  std::vector<std::unique_ptr<SporadicRta>> rtas;
  for (size_t i = 0; i < group.rtas.size(); ++i) {
    GuestOs* g = exp.AddGuest("vm" + std::to_string(i), 1);
    RtaParams p = group.rtas[i];
    p.sporadic = true;
    auto rta = std::make_unique<SporadicRta>(g, "sp" + std::to_string(i), p,
                                             exp.rng().Fork(), Ms(100), Sec(1));
    rta->task()->set_observer(&mon);
    rta->Start(0, 25);
    rtas.push_back(std::move(rta));
  }
  exp.Run(Sec(30));
  EXPECT_EQ(mon.total_completed(), 100u);
  EXPECT_EQ(mon.total_misses(), 0u);
}

// memcached VM contending with CPU hogs on RTVirt meets its 500us SLO.
TEST(MemcachedContention, RtvirtMeetsSloUnderHogContention) {
  Experiment exp(RealisticConfig(Framework::kRtvirt, 2));
  GuestOs* mc = exp.AddGuest("mc", 1);
  {
    // Microsecond-period reservation: the 500 us slack would exceed the
    // period; use its small-period analogue.
    GuestChannelOptions opts = exp.config().channel;
    opts.budget_slack = Us(6);
    mc->SetCrossLayer(std::make_unique<RtvirtGuestChannel>(&exp.machine(), opts));
  }
  for (int i = 0; i < 19; ++i) {
    GuestOs* hog = exp.AddGuest("hog" + std::to_string(i), 1);
    hog->CreateBackgroundTask("bg");
  }
  DeadlineMonitor mon;
  MemcachedServer server(mc, "mc", MemcachedConfig{}, exp.rng().Fork());
  server.task()->set_observer(&mon);
  server.Start(0, Sec(30));
  exp.Run(Sec(1));
  ASSERT_EQ(server.admission_result(), kGuestOk);
  // The reservation must be the paper's ~0.116 CPUs plus the small slack,
  // not a slack-inflated full CPU.
  EXPECT_LT(exp.dpwrap()->total_reserved().ToDouble(), 0.2);
  exp.Run(Sec(30) + Ms(10));
  ASSERT_GT(mon.total_completed(), 2500u);
  EXPECT_LE(mon.response_times_us().Percentile(99.9), 500.0);
  // The hogs still consume the residual bandwidth (work conservation).
  TimeNs hog_time = 0;
  for (int i = 1; i < exp.machine().num_vms(); ++i) {
    hog_time += exp.machine().vm(i)->TotalRuntime();
  }
  EXPECT_GT(hog_time, Sec(30));  // >1 CPU-second per wall-second on 2 PCPUs.
}

}  // namespace
}  // namespace rtvirt

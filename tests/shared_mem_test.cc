// Shared scheduling page and hypercall ABI.

#include <gtest/gtest.h>

#include <memory>

#include "src/hv/shared_mem.h"
#include "src/runner/experiment.h"
#include "src/rtvirt/guest_channel.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

TEST(SharedSchedPage, DefaultsToNever) {
  SharedSchedPage page;
  EXPECT_EQ(page.next_deadline(0), kTimeNever);
  EXPECT_EQ(page.next_deadline(7), kTimeNever);
  EXPECT_EQ(page.next_deadline(-1), kTimeNever);
}

TEST(SharedSchedPage, PublishAndRead) {
  SharedSchedPage page;
  page.PublishNextDeadline(2, Ms(30));
  EXPECT_EQ(page.next_deadline(2), Ms(30));
  EXPECT_EQ(page.next_deadline(0), kTimeNever);  // Other slots untouched.
  page.PublishNextDeadline(2, Ms(10));
  EXPECT_EQ(page.next_deadline(2), Ms(10));  // Overwrites.
}

// Regression: a buggy or malicious guest passing a negative VCPU index used
// to index the slot vector out of bounds; writes must be ignored and reads
// must return the defaults.
TEST(SharedSchedPage, NegativeIndexAccessIsIgnored) {
  SharedSchedPage page;
  page.PublishNextDeadline(-5, Ms(1));
  page.PublishNextDeadline(-1, Ms(2));
  page.PublishAllocation(-1, Ms(5), Us(250));
  EXPECT_EQ(page.next_deadline(-5), kTimeNever);
  EXPECT_EQ(page.next_deadline(-1), kTimeNever);
  EXPECT_EQ(page.last_publish_time(-1), -1);
  EXPECT_EQ(page.allocation_start(-1), 0);
  EXPECT_EQ(page.allocation_length(-1), 0);
  // And the page is still fully functional for valid indices.
  page.PublishNextDeadline(0, Ms(3));
  EXPECT_EQ(page.next_deadline(0), Ms(3));
}

// The negative-index guard's mirror image (trust-boundary PR): an index at or
// beyond the one-page slot cap is ignored on both publish paths, so a
// corrupted or malicious index cannot grow the backing vector into an
// allocation attack.
TEST(SharedSchedPage, BeyondCapIndexAccessIsIgnored) {
  SharedSchedPage page;
  page.PublishNextDeadline(SharedSchedPage::kMaxSlots, Ms(1));
  page.PublishNextDeadline(SharedSchedPage::kMaxSlots + 123456789, Ms(2));
  page.PublishAllocation(SharedSchedPage::kMaxSlots, Ms(5), Us(250));
  EXPECT_EQ(page.next_deadline(SharedSchedPage::kMaxSlots), kTimeNever);
  EXPECT_EQ(page.last_publish_time(SharedSchedPage::kMaxSlots + 123456789), -1);
  EXPECT_EQ(page.allocation_length(SharedSchedPage::kMaxSlots), 0);
  // The last in-cap slot still works.
  page.PublishNextDeadline(SharedSchedPage::kMaxSlots - 1, Ms(3));
  EXPECT_EQ(page.next_deadline(SharedSchedPage::kMaxSlots - 1), Ms(3));
}

TEST(SharedSchedPage, LastPublishTimeTracksVisibleWrite) {
  SharedSchedPage page;
  EXPECT_EQ(page.last_publish_time(0), -1);  // Never written.
  page.PublishNextDeadline(0, Ms(3));
  EXPECT_EQ(page.last_publish_time(0), 0);  // No clock attached: stamped 0.
}

TEST(SharedSchedPage, VisibilityDelayHidesWritesUntilElapsed) {
  Simulator sim;
  SharedSchedPage page;
  page.AttachClock(&sim);
  page.SetVisibilityDelay(Us(200));

  page.PublishNextDeadline(0, Ms(9));
  EXPECT_EQ(page.next_deadline(0), kTimeNever) << "write inside coherence window";
  EXPECT_EQ(page.last_publish_time(0), -1);

  // A newer write supersedes a still-pending one (last write wins).
  sim.RunUntil(Us(100));
  page.PublishNextDeadline(0, Ms(7));
  sim.RunUntil(Us(250));
  EXPECT_EQ(page.next_deadline(0), kTimeNever) << "second write restarted the window";
  sim.RunUntil(Us(300));
  EXPECT_EQ(page.next_deadline(0), Ms(7));
  EXPECT_EQ(page.last_publish_time(0), Us(100));  // When the guest wrote it.

  // Zero delay restores instant visibility.
  page.SetVisibilityDelay(0);
  page.PublishNextDeadline(0, Ms(5));
  EXPECT_EQ(page.next_deadline(0), Ms(5));
}

TEST(SharedSchedPage, HostAllocationSlots) {
  SharedSchedPage page;
  page.PublishAllocation(1, Ms(5), Us(250));
  EXPECT_EQ(page.allocation_start(1), Ms(5));
  EXPECT_EQ(page.allocation_length(1), Us(250));
  EXPECT_EQ(page.allocation_length(0), 0);
}

TEST(HypercallAbi, StatusCodesAreErrnoLike) {
  EXPECT_EQ(kHypercallOk, 0);
  EXPECT_LT(kHypercallNoBandwidth, 0);
  EXPECT_LT(kHypercallInvalid, 0);
  EXPECT_LT(kHypercallNotSupported, 0);
}

TEST(HypercallAbi, NonCrossLayerSchedulersRejectHypercalls) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kCredit;
  cfg.machine = ZeroCostMachine(1);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  HypercallArgs args;
  args.op = SchedOp::kIncBw;
  args.vcpu_a = g->vm()->vcpu(0);
  args.bw_a = Bandwidth::FromDouble(0.5);
  args.period_a = Ms(10);
  EXPECT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallNotSupported);
}

TEST(HypercallAbi, CostChargedPerCall) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(2);
  cfg.machine.hypercall_cost = Us(10);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  HypercallArgs args;
  args.op = SchedOp::kIncBw;
  args.vcpu_a = g->vm()->vcpu(0);
  args.bw_a = Bandwidth::FromDouble(0.3);
  args.period_a = Ms(10);
  ASSERT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallOk);
  EXPECT_EQ(exp.machine().overhead().hypercalls, 1u);
  EXPECT_EQ(exp.machine().overhead().hypercall_time, Us(10));
}

TEST(GuestChannelTest, PublishesThroughSharedPage) {
  Simulator sim;
  Machine m(&sim, ZeroCostMachine(1));
  m.SetScheduler(std::make_unique<DedicatedScheduler>());
  Vm* vm = m.AddVm("vm");
  Vcpu* v = vm->AddVcpu();
  RtvirtGuestChannel channel(&m);
  channel.PublishNextDeadline(v, Ms(42));
  EXPECT_EQ(vm->shared_page().next_deadline(0), Ms(42));
}

TEST(GuestChannelTest, SlackCappedAtOneCpuAndFraction) {
  Simulator sim;
  Machine m(&sim, ZeroCostMachine(1));
  m.SetScheduler(std::make_unique<DedicatedScheduler>());
  GuestChannelOptions opts;
  opts.budget_slack = Us(500);
  opts.max_slack_fraction = 0.1;
  RtvirtGuestChannel channel(&m, opts);
  // ms-scale period: full 500 us slack applies.
  Bandwidth ms_task = Bandwidth::FromSlicePeriod(Ms(5), Ms(10));
  EXPECT_EQ(channel.WithSlack(ms_task, Ms(10)) - ms_task,
            Bandwidth::FromSlicePeriod(Us(500), Ms(10)));
  // us-scale period: capped to 10% of the period, not a full extra CPU.
  Bandwidth us_task = Bandwidth::FromSlicePeriod(Us(58), Us(500));
  Bandwidth padded = channel.WithSlack(us_task, Us(500));
  EXPECT_EQ(padded - us_task, Bandwidth::FromSlicePeriod(Us(50), Us(500)));
  // Near-saturated task: never exceeds one CPU.
  Bandwidth big = Bandwidth::FromDouble(0.99);
  EXPECT_EQ(channel.WithSlack(big, Ms(1)), Bandwidth::One());
  // Zero bandwidth passes through unchanged.
  EXPECT_EQ(channel.WithSlack(Bandwidth::Zero(), Ms(10)), Bandwidth::Zero());
}

}  // namespace
}  // namespace rtvirt

// DP-WRAP host scheduler tests: hypercall admission control, global-slice
// planning, migration bounds, best-effort backfill, and the DP-WRAP
// optimality property (no deadline misses whenever total bandwidth fits).

#include "src/rtvirt/dpwrap.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/metrics/deadline_monitor.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

ExperimentConfig PureConfig(int pcpus) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(pcpus);
  cfg.channel.budget_slack = 0;  // Pure DP-WRAP: exact reservations.
  cfg.dpwrap.pick_cost = 0;      // ...and a zero-cost scheduler model.
  cfg.dpwrap.replan_cost_base = 0;
  cfg.dpwrap.replan_cost_per_log = 0;
  return cfg;
}

TEST(DpWrapAdmission, AcceptsUpToCapacityThenRejects) {
  Experiment exp(PureConfig(2));
  GuestOs* g = exp.AddGuest("vm", 3);
  HypercallArgs args;
  args.op = SchedOp::kIncBw;
  args.vcpu_a = g->vm()->vcpu(0);
  args.bw_a = Bandwidth::One();
  args.period_a = Ms(10);
  EXPECT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallOk);
  args.vcpu_a = g->vm()->vcpu(1);
  EXPECT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallOk);
  args.vcpu_a = g->vm()->vcpu(2);
  args.bw_a = Bandwidth::FromDouble(0.01);
  EXPECT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallNoBandwidth);
  EXPECT_EQ(exp.dpwrap()->total_reserved(), Bandwidth::Cpus(2));
}

TEST(DpWrapAdmission, RejectsVcpuBandwidthAboveOneCpu) {
  Experiment exp(PureConfig(2));
  GuestOs* g = exp.AddGuest("vm", 1);
  HypercallArgs args;
  args.op = SchedOp::kIncBw;
  args.vcpu_a = g->vm()->vcpu(0);
  args.bw_a = Bandwidth::FromDouble(1.01);
  args.period_a = Ms(10);
  EXPECT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallInvalid);
}

TEST(DpWrapAdmission, DecBwFreesCapacity) {
  Experiment exp(PureConfig(1));
  GuestOs* g = exp.AddGuest("vm", 2);
  HypercallArgs args;
  args.op = SchedOp::kIncBw;
  args.vcpu_a = g->vm()->vcpu(0);
  args.bw_a = Bandwidth::FromDouble(0.9);
  args.period_a = Ms(10);
  ASSERT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallOk);
  HypercallArgs dec = args;
  dec.op = SchedOp::kDecBw;
  dec.bw_a = Bandwidth::FromDouble(0.2);
  ASSERT_EQ(exp.machine().Hypercall(dec.vcpu_a, dec), kHypercallOk);
  HypercallArgs inc = args;
  inc.vcpu_a = g->vm()->vcpu(1);
  inc.bw_a = Bandwidth::FromDouble(0.7);
  EXPECT_EQ(exp.machine().Hypercall(inc.vcpu_a, inc), kHypercallOk);
}

TEST(DpWrapAdmission, IncDecMovesAtomically) {
  Experiment exp(PureConfig(1));
  GuestOs* g = exp.AddGuest("vm", 2);
  Vcpu* a = g->vm()->vcpu(0);
  Vcpu* b = g->vm()->vcpu(1);
  HypercallArgs inc;
  inc.op = SchedOp::kIncBw;
  inc.vcpu_a = a;
  inc.bw_a = Bandwidth::FromDouble(0.8);
  inc.period_a = Ms(10);
  ASSERT_EQ(exp.machine().Hypercall(a, inc), kHypercallOk);
  // Move 0.5 from a to b.
  HypercallArgs move;
  move.op = SchedOp::kIncDecBw;
  move.vcpu_a = b;
  move.bw_a = Bandwidth::FromDouble(0.5);
  move.period_a = Ms(10);
  move.vcpu_b = a;
  move.bw_b = Bandwidth::FromDouble(0.3);
  move.period_b = Ms(10);
  EXPECT_EQ(exp.machine().Hypercall(b, move), kHypercallOk);
  EXPECT_EQ(exp.dpwrap()->ReservedBw(a), Bandwidth::FromDouble(0.3));
  EXPECT_EQ(exp.dpwrap()->ReservedBw(b), Bandwidth::FromDouble(0.5));
  // A move that would overflow is rolled back entirely.
  HypercallArgs bad = move;
  bad.bw_a = Bandwidth::One();
  bad.bw_b = Bandwidth::FromDouble(0.29);
  EXPECT_EQ(exp.machine().Hypercall(b, bad), kHypercallNoBandwidth);
  EXPECT_EQ(exp.dpwrap()->ReservedBw(a), Bandwidth::FromDouble(0.3));
  EXPECT_EQ(exp.dpwrap()->ReservedBw(b), Bandwidth::FromDouble(0.5));
}

TEST(DpWrap, ReservedVcpuGetsItsBandwidth) {
  Experiment exp(PureConfig(1));
  GuestOs* g = exp.AddGuest("vm", 1);
  // One RTA at 40% plus a background hog in the same guest: hog absorbs the
  // rest, but the RTA must still meet every deadline.
  g->CreateBackgroundTask("hog");
  DeadlineMonitor mon;
  PeriodicRta rta(g, "rta", RtaParams{Ms(4), Ms(10), false});
  rta.task()->set_observer(&mon);
  rta.Start(0, Sec(2));
  exp.Run(Sec(2) + Ms(20));
  ASSERT_EQ(rta.admission_result(), kGuestOk);
  EXPECT_GE(mon.total_completed(), 199u);
  EXPECT_EQ(mon.total_misses(), 0u);
}

TEST(DpWrap, BestEffortSharesResidualBandwidth) {
  Experiment exp(PureConfig(2));
  GuestOs* rt = exp.AddGuest("rt", 1);
  GuestOs* be1 = exp.AddGuest("be1", 1);
  GuestOs* be2 = exp.AddGuest("be2", 1);
  be1->CreateBackgroundTask("hog1");
  be2->CreateBackgroundTask("hog2");
  DeadlineMonitor mon;
  PeriodicRta rta(rt, "rta", RtaParams{Ms(5), Ms(10), false});
  rta.task()->set_observer(&mon);
  rta.Start(0, Sec(1));
  exp.Run(Sec(1));
  EXPECT_EQ(mon.total_misses(), 0u);
  // Residual ~1.5 CPUs split between the two hogs.
  TimeNs t1 = be1->vm()->TotalRuntime();
  TimeNs t2 = be2->vm()->TotalRuntime();
  EXPECT_NEAR(static_cast<double>(t1 + t2), static_cast<double>(Ms(1500)),
              static_cast<double>(Ms(100)));
  EXPECT_NEAR(static_cast<double>(t1), static_cast<double>(t2), static_cast<double>(Ms(150)));
}

TEST(DpWrap, MigrationsBoundedByMMinusOnePerSlice) {
  ExperimentConfig cfg = PureConfig(3);
  Experiment exp(cfg);
  // 5 RTAs of 0.55 each on 5 single-VCPU VMs: total 2.75 on 3 PCPUs, forces
  // wrapped (split) VCPUs every slice.
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  DeadlineMonitor mon;
  for (int i = 0; i < 5; ++i) {
    GuestOs* g = exp.AddGuest("vm" + std::to_string(i), 1);
    auto rta = std::make_unique<PeriodicRta>(g, "rta" + std::to_string(i),
                                             RtaParams{Ms(11), Ms(20), false});
    rta->task()->set_observer(&mon);
    rta->Start(0, Sec(1));
    rtas.push_back(std::move(rta));
  }
  exp.Run(Sec(1));
  EXPECT_EQ(mon.total_misses(), 0u);
  uint64_t replans = exp.dpwrap()->replans();
  uint64_t migrations = exp.machine().overhead().migrations;
  ASSERT_GT(replans, 0u);
  // DP-WRAP bound: at most m-1 = 2 VCPUs split per slice, each of which
  // migrates to its second piece and back at the next slice start.
  EXPECT_LE(migrations, replans * 2 * 2);
}

TEST(DpWrap, SporadicWakeReplansPromptly) {
  ExperimentConfig cfg = PureConfig(1);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  GuestOs* hog = exp.AddGuest("hog", 1);
  hog->CreateBackgroundTask("bg");
  Task* s = g->CreateTask("sporadic");
  DeadlineMonitor mon;
  mon.Watch(s);
  ASSERT_EQ(g->SchedSetAttr(s, RtaParams{Ms(2), Ms(10), true}), kGuestOk);
  exp.Run(Ms(50));
  // Request arrives mid-slice, long after the VCPU's segments passed.
  g->ReleaseJob(s, Ms(2), exp.sim().Now() + Ms(10));
  exp.Run(Ms(100));
  ASSERT_EQ(mon.total_completed(), 1u);
  EXPECT_EQ(mon.total_misses(), 0u);
  // With replan-on-wake the response is far below the period.
  EXPECT_LT(mon.response_times_us().Max(), 5000.0);
}

// DP-WRAP optimality: random task sets with total utilization <= m always
// meet all deadlines under zero-cost scheduling.
class DpWrapOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DpWrapOptimalityTest, NoMissesAtFullUtilization) {
  Rng rng(GetParam());
  int pcpus = static_cast<int>(rng.UniformInt(2, 4));
  ExperimentConfig cfg = PureConfig(pcpus);
  // Discrete time needs an epsilon over the fluid schedule: 1 us of slack
  // per VCPU period (the paper's prototype uses 500 us for real overheads).
  cfg.channel.budget_slack = Us(1);
  cfg.seed = GetParam();
  Experiment exp(cfg);

  DeadlineMonitor mon;
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  double budget = pcpus;  // Target utilization: fill to ~99%.
  int i = 0;
  while (budget > 0.05 && i < 40) {
    double u = std::min(budget, rng.Uniform(0.1, 0.9));
    TimeNs period = Ms(rng.UniformInt(4, 50));
    auto slice = static_cast<TimeNs>(static_cast<double>(period) * u);
    if (slice <= 0) {
      break;
    }
    GuestOs* g = exp.AddGuest("vm" + std::to_string(i), 1);
    auto rta = std::make_unique<PeriodicRta>(g, "rta" + std::to_string(i),
                                             RtaParams{slice, period, false});
    rta->task()->set_observer(&mon);
    rta->Start(0, Sec(1));
    rtas.push_back(std::move(rta));
    budget -= RtaParams{slice, period, false}.bandwidth().ToDouble();
    ++i;
  }
  exp.Run(Sec(1) + Ms(100));
  int admitted = 0;
  for (const auto& rta : rtas) {
    if (rta->admission_result() == kGuestOk) {
      ++admitted;
    }
  }
  ASSERT_GT(admitted, 0);
  EXPECT_GT(mon.total_completed(), 100u);
  EXPECT_EQ(mon.total_misses(), 0u)
      << "DP-WRAP must meet every deadline when utilization fits";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpWrapOptimalityTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 111));

// Admission boundary around the rounding epsilon: the check rejects only
// when the admitted total exceeds capacity + epsilon strictly, so a total
// landing exactly on the limit (or epsilon - 1 ppb above capacity) is
// admitted, and one more ppb is not.
class DpWrapEpsilonBoundary : public ::testing::Test {
 protected:
  // Fills capacity exactly, then requests `extra_ppb` more on a second VCPU.
  int64_t AdmitBeyondCapacity(int64_t extra_ppb) {
    Experiment exp(PureConfig(1));
    GuestOs* g = exp.AddGuest("vm", 2);
    HypercallArgs args;
    args.op = SchedOp::kIncBw;
    args.vcpu_a = g->vm()->vcpu(0);
    args.bw_a = Bandwidth::One();
    args.period_a = Ms(10);
    EXPECT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallOk);
    args.vcpu_a = g->vm()->vcpu(1);
    args.bw_a = Bandwidth::FromPpb(extra_ppb);
    return exp.machine().Hypercall(args.vcpu_a, args);
  }

  static inline const int64_t kEpsilon = DpWrapConfig{}.admission_epsilon_ppb;
};

TEST_F(DpWrapEpsilonBoundary, ExactlyAtCapacityPlusEpsilonAdmits) {
  EXPECT_EQ(AdmitBeyondCapacity(kEpsilon), kHypercallOk);
}

TEST_F(DpWrapEpsilonBoundary, OnePpbBelowTheLimitAdmits) {
  EXPECT_EQ(AdmitBeyondCapacity(kEpsilon - 1), kHypercallOk);
}

TEST_F(DpWrapEpsilonBoundary, OnePpbAboveTheLimitRejects) {
  EXPECT_EQ(AdmitBeyondCapacity(kEpsilon + 1), kHypercallNoBandwidth);
}

}  // namespace
}  // namespace rtvirt

// Tests for the paper's section 6 extensions: CPU affinity in DP-WRAP, the
// idle tax on over-claiming reservations, priority-proportional slack, and
// the occupied-chunk wrap layout that affinity builds on.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/metrics/deadline_monitor.h"
#include "src/rtvirt/guest_channel.h"
#include "src/rtvirt/wrap_layout.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

ExperimentConfig PureRtvirt(int pcpus) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(pcpus);
  cfg.dpwrap.pick_cost = 0;
  cfg.dpwrap.replan_cost_base = 0;
  cfg.dpwrap.replan_cost_per_log = 0;
  return cfg;
}

// ---- WrapAroundFrom ----

TEST(WrapAroundFrom, RespectsOccupiedPrefixes) {
  std::vector<WrapItem> items{{0, 50}, {1, 80}};
  std::vector<TimeNs> occupied{40, 20};
  auto segs = WrapAroundFrom(items, 100, occupied);
  std::map<int, TimeNs> per_item;
  for (const auto& s : segs) {
    EXPECT_GE(s.start, occupied[s.pcpu]);
    EXPECT_LE(s.end, 100);
    per_item[s.item_id] += s.end - s.start;
  }
  EXPECT_EQ(per_item[0], 50);
  EXPECT_EQ(per_item[1], 80);
}

TEST(WrapAroundFrom, SplitPiecesDoNotOverlapInTime) {
  // Item 1 must straddle; verify its pieces are disjoint in wall-clock time.
  std::vector<WrapItem> items{{0, 70}, {1, 50}};
  std::vector<TimeNs> occupied{0, 0, 0};
  auto segs = WrapAroundFrom(items, 100, occupied);
  std::vector<WrapSegment> item1;
  for (const auto& s : segs) {
    if (s.item_id == 1) {
      item1.push_back(s);
    }
  }
  for (size_t i = 0; i < item1.size(); ++i) {
    for (size_t j = i + 1; j < item1.size(); ++j) {
      bool disjoint = item1[i].end <= item1[j].start || item1[j].end <= item1[i].start;
      EXPECT_TRUE(disjoint);
    }
  }
}

TEST(WrapAroundFrom, MovesToNextChunkWhenStraddleWouldOverlap) {
  // Chunk0 free [90,100): an item of 40 starting there would straddle with
  // its second piece [60,90+...) on chunk1 overlapping [90,100)? piece2 is
  // [60,90) which touches 90 exactly -- unsafe if it extended past. Use
  // occupied{90, 75, 0}: rest 30 would occupy [75,105) > 90 -> unsafe, so
  // the item starts on chunk1 instead and still fits nowhere contiguously
  // -> ends on chunk2 cleanly.
  std::vector<WrapItem> items{{0, 40}};
  std::vector<TimeNs> occupied{90, 75, 0};
  auto segs = WrapAroundFrom(items, 100, occupied);
  TimeNs total = 0;
  for (const auto& s : segs) {
    total += s.end - s.start;
    for (const auto& t : segs) {
      if (&s != &t) {
        bool disjoint = s.end <= t.start || t.end <= s.start;
        EXPECT_TRUE(disjoint) << "self-overlap";
      }
    }
  }
  EXPECT_EQ(total, 40);
}

TEST(WrapAroundFrom, LastResortPlacesEverythingEvenWhenFragmented) {
  // Pathological: tight free space forces the second pass; all allocation
  // must still be placed (overlap allowed as a documented degradation).
  std::vector<WrapItem> items{{0, 11}, {1, 11}, {2, 11}, {3, 11}};
  std::vector<TimeNs> occupied{0, 0, 11};  // slice 20: free 20+20+9 = 49.
  auto segs = WrapAroundFrom(items, 20, occupied);
  std::map<int, TimeNs> per_item;
  for (const auto& s : segs) {
    per_item[s.item_id] += s.end - s.start;
    EXPECT_GE(s.start, 0);
    EXPECT_LE(s.end, 20);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(per_item[i], 11) << "item " << i;
  }
}

// ---- CPU affinity ----

TEST(DpWrapAffinity, PinnedVcpuNeverMigrates) {
  Experiment exp(PureRtvirt(3));
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  DeadlineMonitor mon;
  std::vector<GuestOs*> guests;
  for (int i = 0; i < 4; ++i) {
    GuestOs* g = exp.AddGuest("vm" + std::to_string(i), 1);
    guests.push_back(g);
    auto rta = std::make_unique<PeriodicRta>(g, "rta" + std::to_string(i),
                                             RtaParams{Ms(11), Ms(20), false});
    rta->task()->set_observer(&mon);
    rta->Start(0, Sec(1));
    rtas.push_back(std::move(rta));
  }
  // Pin VM0 to PCPU 2 (cache-sensitive); set before the reservation exists.
  exp.dpwrap()->SetAffinity(guests[0]->vm()->vcpu(0), 2);
  exp.Run(Sec(1));
  EXPECT_EQ(exp.dpwrap()->Affinity(guests[0]->vm()->vcpu(0)), 2);
  EXPECT_EQ(guests[0]->vm()->vcpu(0)->migrations(), 0u);
  EXPECT_EQ(guests[0]->vm()->vcpu(0)->last_pcpu(), exp.machine().pcpu(2));
  EXPECT_EQ(mon.total_misses(), 0u);  // Other VMs still meet deadlines.
}

TEST(DpWrapAffinity, AffinitySetAfterReservation) {
  Experiment exp(PureRtvirt(2));
  GuestOs* g = exp.AddGuest("vm", 1);
  PeriodicRta rta(g, "rta", RtaParams{Ms(5), Ms(10), false});
  rta.Start(0, Sec(1));
  exp.Run(Ms(100));
  exp.dpwrap()->SetAffinity(g->vm()->vcpu(0), 1);
  exp.Run(Ms(200));
  uint64_t migrations_at_pin = g->vm()->vcpu(0)->migrations();
  exp.Run(Sec(1));
  // At most the one migration onto PCPU 1; none afterwards.
  EXPECT_LE(g->vm()->vcpu(0)->migrations() - migrations_at_pin, 1u);
  EXPECT_EQ(g->vm()->vcpu(0)->last_pcpu(), exp.machine().pcpu(1));
}

// ---- Idle tax ----

TEST(IdleTax, IdleOverclaimIsTaxedAndBusyClaimIsNot) {
  ExperimentConfig cfg = PureRtvirt(1);
  cfg.dpwrap.idle_tax.enabled = true;
  cfg.dpwrap.idle_tax.window = Ms(100);
  Experiment exp(cfg);
  GuestOs* busy = exp.AddGuest("busy", 1);
  GuestOs* idle = exp.AddGuest("idle", 1);

  // Both claim 0.45 CPUs; `busy` uses it, `idle` never releases a job.
  DeadlineMonitor mon;
  PeriodicRta busy_rta(busy, "busy", RtaParams{Ms(45), Ms(100), false});
  busy_rta.task()->set_observer(&mon);
  busy_rta.Start(0, Sec(5));
  Task* idle_claim = idle->CreateTask("idle-claim");
  ASSERT_EQ(idle->SchedSetAttr(idle_claim, RtaParams{Ms(45), Ms(100), false}), kGuestOk);

  exp.Run(Sec(2));
  EXPECT_GT(exp.dpwrap()->TaxFactor(busy->vm()->vcpu(0)), 0.9);
  EXPECT_LT(exp.dpwrap()->TaxFactor(idle->vm()->vcpu(0)), 0.5);
  // The taxed total leaves room that raw claims would not.
  EXPECT_LT(exp.dpwrap()->total_effective(), exp.dpwrap()->total_reserved());
  EXPECT_EQ(mon.total_misses(), 0u);
}

TEST(IdleTax, FreedBandwidthBecomesAdmissible) {
  ExperimentConfig cfg = PureRtvirt(1);
  cfg.dpwrap.idle_tax.enabled = true;
  cfg.dpwrap.idle_tax.window = Ms(100);
  Experiment exp(cfg);
  GuestOs* hoarder = exp.AddGuest("hoarder", 1);
  GuestOs* tenant = exp.AddGuest("tenant", 1);
  Task* claim = hoarder->CreateTask("claim");
  ASSERT_EQ(hoarder->SchedSetAttr(claim, RtaParams{Ms(80), Ms(100), false}), kGuestOk);
  // Raw totals are full: a 0.5 tenant is rejected at t=0...
  Task* t = tenant->CreateTask("t");
  EXPECT_EQ(tenant->SchedSetAttr(t, RtaParams{Ms(50), Ms(100), false}), kGuestErrBusy);
  // ...but after a few idle windows the hoarder's claim is taxed down and
  // the tenant fits.
  exp.Run(Sec(1));
  EXPECT_EQ(tenant->SchedSetAttr(t, RtaParams{Ms(50), Ms(100), false}), kGuestOk);
}

TEST(IdleTax, TaxedReservationRecoversWhenItBecomesBusy) {
  ExperimentConfig cfg = PureRtvirt(1);
  cfg.dpwrap.idle_tax.enabled = true;
  cfg.dpwrap.idle_tax.window = Ms(100);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  Task* task = g->CreateTask("t");
  ASSERT_EQ(g->SchedSetAttr(task, RtaParams{Ms(60), Ms(100), false}), kGuestOk);
  exp.Run(Sec(1));  // Idle: taxed down.
  double taxed = exp.dpwrap()->TaxFactor(g->vm()->vcpu(0));
  ASSERT_LT(taxed, 0.5);
  // Becomes busy: jobs arrive every period for 2 s.
  for (int k = 0; k < 20; ++k) {
    exp.sim().At(Sec(1) + k * Ms(100) + 1, [&] {
      g->ReleaseJob(task, Ms(55), exp.sim().Now() + Ms(100));
    });
  }
  exp.Run(Sec(3));
  EXPECT_GT(exp.dpwrap()->TaxFactor(g->vm()->vcpu(0)), taxed);
  EXPECT_GT(exp.dpwrap()->TaxFactor(g->vm()->vcpu(0)), 0.8);
}

// ---- Priority-proportional slack ----

TEST(PrioritySlack, HigherPriorityGetsMoreSlack) {
  GuestChannelOptions base;   // priority_scale 1.0
  GuestChannelOptions high;
  high.priority_scale = 2.0;
  Simulator sim;
  Machine m(&sim, ZeroCostMachine(2));
  m.SetScheduler(std::make_unique<DedicatedScheduler>());
  RtvirtGuestChannel ch_base(&m, base);
  RtvirtGuestChannel ch_high(&m, high);
  Bandwidth bw = Bandwidth::FromSlicePeriod(Ms(5), Ms(10));
  EXPECT_GT(ch_high.WithSlack(bw, Ms(10)), ch_base.WithSlack(bw, Ms(10)));
  EXPECT_EQ(ch_base.WithSlack(bw, Ms(10)) - bw, Bandwidth::FromSlicePeriod(Us(500), Ms(10)));
  EXPECT_EQ(ch_high.WithSlack(bw, Ms(10)) - bw, Bandwidth::FromSlicePeriod(Ms(1), Ms(10)));
}

}  // namespace
}  // namespace rtvirt

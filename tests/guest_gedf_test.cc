// Global-EDF guest scheduling class (the SCHED_DEADLINE default the paper
// modifies away from; kept for the pEDF-vs-gEDF ablation).

#include <gtest/gtest.h>

#include <memory>

#include "src/guest/guest_os.h"
#include "src/metrics/deadline_monitor.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

GuestConfig GedfConfig() {
  GuestConfig cfg;
  cfg.sched_class = GuestSchedClass::kGlobalEdf;
  return cfg;
}

struct GedfRig {
  explicit GedfRig(int vcpus, int pcpus = 8) {
    machine = std::make_unique<Machine>(&sim, ZeroCostMachine(pcpus));
    machine->SetScheduler(std::make_unique<DedicatedScheduler>());
    vm = machine->AddVm("g");
    guest = std::make_unique<GuestOs>(vm, GedfConfig());
    for (int i = 0; i < vcpus; ++i) {
      guest->AddVcpu();
    }
    machine->Start();
  }

  Simulator sim;
  std::unique_ptr<Machine> machine;
  Vm* vm = nullptr;
  std::unique_ptr<GuestOs> guest;
};

TEST(GuestGedf, TasksAreNotPinned) {
  GedfRig rig(2);
  Task* a = rig.guest->CreateTask("a");
  ASSERT_EQ(rig.guest->SchedSetAttr(a, RtaParams{Ms(5), Ms(10), false}), kGuestOk);
  EXPECT_EQ(a->vcpu_index(), -1);
}

TEST(GuestGedf, AdmissionAgainstTotalCapacity) {
  GedfRig rig(2);
  Task* a = rig.guest->CreateTask("a");
  Task* b = rig.guest->CreateTask("b");
  Task* c = rig.guest->CreateTask("c");
  // 0.9 + 0.9 fits 2 VCPUs under gEDF (no bin packing constraint)...
  EXPECT_EQ(rig.guest->SchedSetAttr(a, RtaParams{Ms(9), Ms(10), false}), kGuestOk);
  EXPECT_EQ(rig.guest->SchedSetAttr(b, RtaParams{Ms(9), Ms(10), false}), kGuestOk);
  // ...but 0.3 more does not.
  EXPECT_EQ(rig.guest->SchedSetAttr(c, RtaParams{Ms(3), Ms(10), false}), kGuestErrBusy);
}

TEST(GuestGedf, GloballyEarliestDeadlineRunsFirst) {
  GedfRig rig(1);
  DeadlineMonitor mon;
  Task* lo = rig.guest->CreateTask("lo");
  Task* hi = rig.guest->CreateTask("hi");
  ASSERT_EQ(rig.guest->SchedSetAttr(lo, RtaParams{Ms(2), Ms(40), false}), kGuestOk);
  ASSERT_EQ(rig.guest->SchedSetAttr(hi, RtaParams{Ms(2), Ms(20), false}), kGuestOk);
  mon.Watch(lo);
  mon.Watch(hi);
  rig.guest->ReleaseJob(lo, Ms(2), Ms(40));
  rig.guest->ReleaseJob(hi, Ms(2), Ms(20));
  rig.sim.RunUntil(Ms(6));
  ASSERT_EQ(mon.total_completed(), 2u);
  // hi (deadline 20ms) completes at 2ms, lo at 4ms.
  EXPECT_DOUBLE_EQ(mon.per_task().at("hi").max_response / 1e6, 2.0);
  EXPECT_DOUBLE_EQ(mon.per_task().at("lo").max_response / 1e6, 4.0);
}

TEST(GuestGedf, TaskMigratesBetweenVcpus) {
  GedfRig rig(2);
  DeadlineMonitor mon;
  Task* big = rig.guest->CreateTask("big");
  Task* small = rig.guest->CreateTask("small");
  ASSERT_EQ(rig.guest->SchedSetAttr(big, RtaParams{Ms(8), Ms(20), false}), kGuestOk);
  ASSERT_EQ(rig.guest->SchedSetAttr(small, RtaParams{Ms(2), Ms(4), false}), kGuestOk);
  mon.Watch(big);
  mon.Watch(small);
  // big starts on some VCPU; small's stream of short-deadline jobs keeps
  // preempting; with two VCPUs both always meet deadlines.
  rig.guest->ReleaseJob(big, Ms(8), Ms(20));
  for (int k = 0; k < 4; ++k) {
    rig.sim.At(Ms(4 * k), [&] {
      rig.guest->ReleaseJob(small, Ms(2), rig.sim.Now() + Ms(4));
    });
  }
  rig.sim.RunUntil(Ms(30));
  EXPECT_EQ(mon.total_completed(), 5u);
  EXPECT_EQ(mon.total_misses(), 0u);
}

TEST(GuestGedf, PublishesGlobalEarliestOnAllVcpus) {
  GedfRig rig(2);
  Task* a = rig.guest->CreateTask("a");
  ASSERT_EQ(rig.guest->SchedSetAttr(a, RtaParams{Ms(1), Ms(30), false}), kGuestOk);
  rig.guest->ReleaseJob(a, Ms(1), Ms(30));
  EXPECT_EQ(rig.guest->NextEarliestDeadline(0), Ms(30));
  EXPECT_EQ(rig.guest->NextEarliestDeadline(1), Ms(30));
}

TEST(GuestGedf, UnregisterReleasesShares) {
  GedfRig rig(2);
  Task* a = rig.guest->CreateTask("a");
  ASSERT_EQ(rig.guest->SchedSetAttr(a, RtaParams{Ms(9), Ms(10), false}), kGuestOk);
  ASSERT_EQ(rig.guest->SchedUnregister(a), kGuestOk);
  Task* b = rig.guest->CreateTask("b");
  Task* c = rig.guest->CreateTask("c");
  EXPECT_EQ(rig.guest->SchedSetAttr(b, RtaParams{Ms(9), Ms(10), false}), kGuestOk);
  EXPECT_EQ(rig.guest->SchedSetAttr(c, RtaParams{Ms(9), Ms(10), false}), kGuestOk);
}

// End-to-end under the RTVirt host: gEDF guests still meet deadlines, at
// the price of more guest-level migrations (the paper's stated reason for
// pEDF).
TEST(GuestGedf, WorksUnderRtvirtHost) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(4);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 2, GedfConfig());
  DeadlineMonitor mon;
  PeriodicRta r1(g, "r1", RtaParams{Ms(4), Ms(10), false});
  PeriodicRta r2(g, "r2", RtaParams{Ms(6), Ms(20), false});
  r1.task()->set_observer(&mon);
  r2.task()->set_observer(&mon);
  r1.Start(0, Sec(2));
  r2.Start(0, Sec(2));
  exp.Run(Sec(2) + Ms(50));
  ASSERT_EQ(r1.admission_result(), kGuestOk);
  ASSERT_EQ(r2.admission_result(), kGuestOk);
  EXPECT_GT(mon.total_completed(), 250u);
  EXPECT_EQ(mon.total_misses(), 0u);
}

}  // namespace
}  // namespace rtvirt

// Checkpoint/restore (DESIGN.md §10): RNG state round-trip, corruption
// loudness (truncation / CRC / version / section count), byte-identical
// resumed continuation on both event-queue backends, sweep resumed-attempt
// reporting, federated snapshot round-trip, and the save-path rejections
// (non-checkpointable features, untagged events).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/cluster/federation.h"
#include "src/common/rng.h"
#include "src/runner/ckpt_scenario.h"
#include "src/sweep/sweep.h"
#include "src/workloads/periodic.h"

namespace rtvirt {
namespace {

// ---------------------------------------------------------------------------
// RNG save/restore accessors (the primitive everything else leans on).

TEST(CheckpointRngTest, SaveRestoreRoundTripsMidStream) {
  Rng a(42);
  for (int i = 0; i < 1000; ++i) {
    a.UniformInt(0, 1 << 20);
  }
  std::string state = a.SaveState();

  Rng b(7);  // Different seed, different position: restore must overwrite all.
  b.Uniform(0.0, 1.0);
  ASSERT_TRUE(b.RestoreState(state));
  EXPECT_TRUE(a == b);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30)) << "draw " << i;
  }
  EXPECT_TRUE(a == b);
}

TEST(CheckpointRngTest, RestoredCopyIsIndependentAndSeedsStayDecorrelated) {
  Rng a(42);
  a.UniformInt(0, 100);
  Rng b(7);
  ASSERT_TRUE(b.RestoreState(a.SaveState()));
  // Advancing the copy must not drag the original along (no aliasing).
  b.UniformInt(0, 100);
  EXPECT_FALSE(a == b);
  // Different seeds are different streams (decorrelation regression: a
  // restore bug that reset engines to a common default would collapse them).
  Rng s1(1), s2(2);
  int agree = 0;
  for (int i = 0; i < 64; ++i) {
    agree += s1.UniformInt(0, 1 << 30) == s2.UniformInt(0, 1 << 30) ? 1 : 0;
  }
  EXPECT_LT(agree, 4);
}

TEST(CheckpointRngTest, RestoreRejectsGarbageWithoutClobberingState) {
  Rng a(42);
  a.UniformInt(0, 100);
  Rng before(7);
  ASSERT_TRUE(before.RestoreState(a.SaveState()));
  EXPECT_FALSE(a.RestoreState("not a generator state"));
  EXPECT_FALSE(a.RestoreState(""));
  EXPECT_TRUE(a == before);  // Failed restore left the engine untouched.
}

// ---------------------------------------------------------------------------
// Container corruption: every failure is loud and names the offending part.

std::string SavedScenarioBytes(ckpt::Image* image_out = nullptr) {
  CkptScenarioOptions opt;
  opt.horizon = Ms(200);
  auto s = BuildCkptScenario(opt);
  s->Start();
  s->exp->Run(Ms(100));
  ckpt::Image image;
  std::string err = s->exp->SaveCheckpoint(&image);
  EXPECT_EQ(err, "");
  if (image_out != nullptr) {
    *image_out = image;
  }
  return image.Serialize();
}

TEST(CheckpointCorruptionTest, TruncationFailsLoudly) {
  std::string bytes = SavedScenarioBytes();
  ckpt::Image out;
  std::string err = ckpt::Image::Parse(bytes.substr(0, bytes.size() - 5), &out);
  EXPECT_NE(err.find("truncated"), std::string::npos) << err;
  err = ckpt::Image::Parse(bytes.substr(0, 10), &out);
  EXPECT_NE(err.find("truncated header"), std::string::npos) << err;
}

TEST(CheckpointCorruptionTest, CrcMismatchFailsLoudly) {
  std::string bytes = SavedScenarioBytes();
  ASSERT_GT(bytes.size(), 30u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  ckpt::Image out;
  std::string err = ckpt::Image::Parse(bytes, &out);
  EXPECT_NE(err.find("CRC mismatch"), std::string::npos) << err;
}

TEST(CheckpointCorruptionTest, UnknownSchemaVersionFailsLoudly) {
  std::string bytes = SavedScenarioBytes();
  // u32 version sits right after the 8-byte magic (little-endian).
  bytes[8] = 99;
  ckpt::Image out;
  std::string err = ckpt::Image::Parse(bytes, &out);
  EXPECT_NE(err.find("unknown schema version 99"), std::string::npos) << err;
}

TEST(CheckpointCorruptionTest, BadMagicFailsLoudly) {
  std::string bytes = SavedScenarioBytes();
  bytes[0] = 'X';
  ckpt::Image out;
  std::string err = ckpt::Image::Parse(bytes, &out);
  EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
}

TEST(CheckpointCorruptionTest, DroppedSectionFailsAsComponentCountMismatch) {
  ckpt::Image image;
  SavedScenarioBytes(&image);
  ASSERT_GT(image.sections.size(), 3u);
  image.sections.pop_back();
  auto fresh = BuildCkptScenario(CkptScenarioOptions{});
  std::string err = fresh->exp->RestoreCheckpoint(image);
  EXPECT_NE(err.find("component count mismatch"), std::string::npos) << err;
}

TEST(CheckpointCorruptionTest, TruncatedSectionNamesTheComponent) {
  ckpt::Image image;
  SavedScenarioBytes(&image);
  for (ckpt::Section& s : image.sections) {
    if (s.name == "rng") {
      ASSERT_GT(s.bytes.size(), 4u);
      s.bytes.resize(s.bytes.size() - 3);  // CRC is per-image, so this parses.
    }
  }
  auto fresh = BuildCkptScenario(CkptScenarioOptions{});
  std::string err = fresh->exp->RestoreCheckpoint(image);
  EXPECT_NE(err.find("'rng'"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Save-path rejections.

TEST(CheckpointRejectionTest, NonCheckpointableFeaturesAreRejectedAtSave) {
  ExperimentConfig cfg;
  cfg.audit.enabled = true;
  Experiment exp(std::move(cfg));
  exp.AddGuest("vm0", 1);
  exp.Run(Ms(1));
  ckpt::Image image;
  std::string err = exp.SaveCheckpoint(&image);
  EXPECT_NE(err.find("audit.enabled"), std::string::npos) << err;
}

TEST(CheckpointRejectionTest, UntaggedLiveEventIsRejectedAtSave) {
  CkptScenarioOptions opt;
  opt.horizon = Ms(200);
  auto s = BuildCkptScenario(opt);
  s->Start();
  s->exp->Run(Ms(50));
  // A schedule site outside the rebind registry: closure with no EventTag.
  s->exp->sim().After(Ms(10), [] {});
  ckpt::Image image;
  std::string err = s->exp->SaveCheckpoint(&image);
  EXPECT_NE(err.find("untagged live event"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Byte-identical continuation: run->save->continue vs restore->continue must
// serialize to the same bytes at the horizon, on both queue backends.

void RoundTripContinuation(EventQueueKind backend) {
  CkptScenarioOptions opt;
  opt.horizon = Ms(600);
  opt.sim.event_queue = backend;

  auto a = BuildCkptScenario(opt);
  a->Start();
  a->exp->Run(Ms(300));
  ckpt::Image mid;
  ASSERT_EQ(a->exp->SaveCheckpoint(&mid), "");
  a->exp->Run(Ms(600));
  ckpt::Image end_a;
  ASSERT_EQ(a->exp->SaveCheckpoint(&end_a), "");

  auto b = BuildCkptScenario(opt);  // NOT started: restore rebuilds the chains.
  ASSERT_EQ(b->exp->RestoreCheckpoint(mid), "");
  EXPECT_EQ(b->exp->sim().Now(), Ms(300));
  b->exp->Run(Ms(600));
  ckpt::Image end_b;
  ASSERT_EQ(b->exp->SaveCheckpoint(&end_b), "");

  EXPECT_EQ(end_a.Serialize(), end_b.Serialize());
  EXPECT_EQ(a->monitor.total_completed(), b->monitor.total_completed());
  EXPECT_EQ(a->monitor.total_misses(), b->monitor.total_misses());
  EXPECT_GT(a->monitor.total_completed(), 0u);
}

TEST(CheckpointRoundTripTest, CalendarBackendContinuesByteIdentical) {
  RoundTripContinuation(EventQueueKind::kCalendar);
}

TEST(CheckpointRoundTripTest, HeapBackendContinuesByteIdentical) {
  RoundTripContinuation(EventQueueKind::kHeap);
}

TEST(CheckpointRoundTripTest, RestoreRequiresFreshExperiment) {
  CkptScenarioOptions opt;
  opt.horizon = Ms(200);
  auto a = BuildCkptScenario(opt);
  a->Start();
  a->exp->Run(Ms(100));
  ckpt::Image image;
  ASSERT_EQ(a->exp->SaveCheckpoint(&image), "");
  std::string err = a->exp->RestoreCheckpoint(image);  // Already started.
  EXPECT_NE(err.find("freshly built"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Sweep resumed-attempt reporting.

TEST(CheckpointSweepTest, ResumedAttemptsAreDistinguishedFromColdRestarts) {
  char tmpl[] = "/tmp/rtvirt_ckpt_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);

  sweep::SweepConfig cfg;
  cfg.jobs = 1;
  cfg.isolation = sweep::Isolation::kThread;
  cfg.max_attempts = 2;
  cfg.backoff_initial_ms = 1;
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every_ms = 50;
  sweep::SweepReport rep =
      sweep::RunSweep(cfg, 1, [](const sweep::ShardContext& ctx) {
        CkptScenarioOptions opt;
        opt.seed = ctx.seed;
        opt.horizon = Ms(200);
        auto s = BuildCkptScenario(opt);
        sweep::ShardResult r;
        TimeNs start_t = 0;
        std::string bytes;
        if (ckpt::ReadFileToString(ctx.checkpoint_path, &bytes)) {
          ckpt::Image image;
          std::string err = ckpt::Image::Parse(bytes, &image);
          if (err.empty()) {
            err = s->exp->RestoreCheckpoint(image);
          }
          if (!err.empty()) {
            r.ok = false;
            r.reason = err;
            return r;
          }
          start_t = s->exp->sim().Now();
          r.resumed = true;
          r.resume_point_ns = start_t;
        } else {
          s->Start();
        }
        for (TimeNs b = Ms(50); b <= Ms(200); b += Ms(50)) {
          if (b <= start_t) {
            continue;
          }
          s->exp->Run(b);
          if (ctx.attempt == 1 && b == Ms(150)) {
            r.ok = false;
            r.reason = "injected failure";
            return r;  // Fails before persisting this boundary.
          }
          ckpt::Image image;
          std::string err = s->exp->SaveCheckpoint(&image);
          if (err.empty()) {
            err = ckpt::WriteFileAtomic(ctx.checkpoint_path, image.Serialize());
          }
          if (!err.empty()) {
            r.ok = false;
            r.reason = err;
            return r;
          }
        }
        r.report = "done t=" + std::to_string(s->exp->sim().Now()) + "\n";
        return r;
      });

  std::remove((std::string(dir) + "/shard.0.ckpt").c_str());
  ::rmdir(dir);

  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.recovered, 1);
  EXPECT_EQ(rep.resumed, 1);
  ASSERT_EQ(rep.shards.size(), 1u);
  EXPECT_TRUE(rep.shards[0].resumed);
  EXPECT_EQ(rep.shards[0].resume_point_ns, Ms(100));  // Last persisted boundary.
  std::string merged = rep.Merged();
  EXPECT_NE(merged.find("resumed@100000000ns"), std::string::npos) << merged;
  EXPECT_NE(merged.find("resumed=1"), std::string::npos) << merged;
}

// ---------------------------------------------------------------------------
// Federated snapshots: per-host checkpoints taken at the lock-step barrier
// restore into a rebuilt federation and continue byte-identically.

struct FedFixture {
  std::unique_ptr<Federation> fed;
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
};

std::unique_ptr<FedFixture> BuildFed() {
  auto f = std::make_unique<FedFixture>();
  FederationConfig config;
  config.num_hosts = 2;
  config.pcpus_per_host = 2;
  config.policy = PlacementPolicy::kFirstFit;
  ExperimentConfig tmpl;
  f->fed = std::make_unique<Federation>(config, tmpl);
  auto* rtas = &f->rtas;
  f->fed->SetLauncher([rtas](Experiment& exp, GuestOs* guest, const ClusterVmSpec& spec,
                             int /*host*/, int /*generation*/) {
    RtaParams params;
    params.slice = Ms(2);
    params.period = Ms(10);
    auto rta = std::make_unique<PeriodicRta>(guest, spec.name + ".rta", params);
    rta->Start(0, Sec(1));
    exp.RegisterCheckpointable(rta->ckpt_section(), rta.get());
    rtas->push_back(std::move(rta));
  });
  ClusterVmSpec a;
  a.name = "vma";
  a.vcpus = 1;
  a.bandwidth = Bandwidth::FromDouble(0.5);
  ClusterVmSpec b = a;
  b.name = "vmb";
  EXPECT_TRUE(f->fed->AdmitVm(a).has_value());
  EXPECT_TRUE(f->fed->AdmitVm(b).has_value());
  return f;
}

TEST(CheckpointFederationTest, BarrierSnapshotRestoresAndContinuesByteIdentical) {
  auto live = BuildFed();
  live->fed->Run(Ms(300));
  ckpt::Image mid;
  ASSERT_EQ(live->fed->SaveCheckpoint(&mid), "");
  live->fed->Run(Ms(600));
  ckpt::Image end_live;
  ASSERT_EQ(live->fed->SaveCheckpoint(&end_live), "");

  auto restored = BuildFed();  // Identical construction, never Run.
  ASSERT_EQ(restored->fed->RestoreCheckpoint(mid), "");
  EXPECT_EQ(restored->fed->now(), Ms(300));
  restored->fed->Run(Ms(600));
  ckpt::Image end_restored;
  ASSERT_EQ(restored->fed->SaveCheckpoint(&end_restored), "");

  EXPECT_EQ(end_live.Serialize(), end_restored.Serialize());
}

TEST(CheckpointFederationTest, RestoreRejectsMismatchedCluster) {
  auto live = BuildFed();
  live->fed->Run(Ms(300));
  ckpt::Image mid;
  ASSERT_EQ(live->fed->SaveCheckpoint(&mid), "");

  // A cluster with a different host count must refuse the image loudly.
  FederationConfig config;
  config.num_hosts = 3;
  config.pcpus_per_host = 2;
  ExperimentConfig tmpl;
  Federation other(config, tmpl);
  std::string err = other.RestoreCheckpoint(mid);
  EXPECT_NE(err.find("mismatch"), std::string::npos) << err;
}

}  // namespace
}  // namespace rtvirt

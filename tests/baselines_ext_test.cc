// Extended baseline-scheduler behaviour: Credit caps, Credit boost decay,
// and the quantum-driven server-EDF mode of section 4.5.

#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/credit.h"
#include "src/baselines/server_edf.h"
#include "src/metrics/deadline_monitor.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

ExperimentConfig CreditConfig0(int pcpus, TimeNs timeslice = Ms(30)) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kCredit;
  cfg.machine = ZeroCostMachine(pcpus);
  cfg.credit.timeslice = timeslice;
  cfg.credit.tick_cost = 0;
  cfg.credit.dispatch_cost = 0;
  cfg.credit.pick_cost = 0;
  return cfg;
}

TEST(CreditCaps, CapLimitsConsumptionEvenOnIdleHost) {
  Experiment exp(CreditConfig0(1));
  GuestOs* g = exp.AddGuest("capped", 1);
  g->CreateBackgroundTask("bg");
  exp.credit()->SetCap(g->vm()->vcpu(0), Bandwidth::FromDouble(0.25));
  exp.Run(Sec(3));
  // ~25% of one otherwise-idle CPU.
  EXPECT_NEAR(static_cast<double>(g->vm()->TotalRuntime()) / static_cast<double>(Sec(3)),
              0.25, 0.02);
}

TEST(CreditCaps, UncappedVcpuUnaffected) {
  Experiment exp(CreditConfig0(1));
  GuestOs* capped = exp.AddGuest("capped", 1);
  GuestOs* free_vm = exp.AddGuest("free", 1);
  capped->CreateBackgroundTask("bg1");
  free_vm->CreateBackgroundTask("bg2");
  exp.credit()->SetCap(capped->vm()->vcpu(0), Bandwidth::FromDouble(0.2));
  exp.Run(Sec(3));
  EXPECT_NEAR(static_cast<double>(capped->vm()->TotalRuntime()) / static_cast<double>(Sec(3)),
              0.2, 0.03);
  // The uncapped VM soaks up the rest.
  EXPECT_GT(free_vm->vm()->TotalRuntime(), Sec(3) * 7 / 10);
}

TEST(CreditCaps, CapEnforcedPerAccountingWindow) {
  // With a 30 ms window and a 50% cap, a busy VCPU runs ~15 ms then parks
  // until the next accounting: bursty service, the source of Figure 5b's
  // video deadline misses under Credit.
  Experiment exp(CreditConfig0(1, Ms(30)));
  GuestOs* g = exp.AddGuest("vm", 1);
  g->CreateBackgroundTask("bg");
  exp.credit()->SetCap(g->vm()->vcpu(0), Bandwidth::FromDouble(0.5));
  exp.Run(Ms(30) + Ms(1));
  TimeNs first_window = g->vm()->TotalRuntime();
  EXPECT_NEAR(static_cast<double>(first_window), static_cast<double>(Ms(15)),
              static_cast<double>(Ms(2)));
  // It ran contiguously at the window start, then parked.
  exp.Run(Ms(45));
  EXPECT_NEAR(static_cast<double>(g->vm()->TotalRuntime() - first_window),
              static_cast<double>(Ms(15)), static_cast<double>(Ms(2)));
}

TEST(CreditBoost, BoostDecaysAfterTickOfCpu) {
  ExperimentConfig cfg = CreditConfig0(1, Ms(30));
  cfg.credit.tick_period = Ms(10);
  Experiment exp(cfg);
  GuestOs* lat = exp.AddGuest("lat", 1);
  GuestOs* hog = exp.AddGuest("hog", 1);
  // A small weight: once the boost decays, the service VM has burnt its
  // modest credits and drops to OVER behind the hog until the next windows
  // trickle credits back.
  lat->vm()->set_weight(256);
  hog->vm()->set_weight(2560);
  hog->CreateBackgroundTask("bg");
  Task* s = lat->CreateTask("svc");
  ASSERT_EQ(lat->SchedSetAttr(s, RtaParams{Ms(15), Ms(100), true}), kGuestOk);
  DeadlineMonitor mon;
  mon.Watch(s);
  exp.Run(Ms(100));
  // A long (15 ms) job: boosted for the first tick (10 ms of CPU), then it
  // drops behind the heavyweight hog, so it takes longer than 15 ms wall
  // time to finish (boost is a short-burst mechanism, not a reservation).
  lat->ReleaseJob(s, Ms(15), exp.sim().Now() + Ms(100));
  exp.Run(Sec(2));
  ASSERT_EQ(mon.total_completed(), 1u);
  EXPECT_GT(mon.per_task().at("svc").max_response, Ms(15));
}

TEST(QuantumDriven, BudgetOverrunsRepaidAtReplenish) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtXen;
  cfg.machine = ZeroCostMachine(1);
  cfg.server_edf.pick_cost = 0;
  cfg.server_edf.quantum = Ms(1);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  GuestOs* hog = exp.AddGuest("hog", 1);
  hog->CreateBackgroundTask("bg");
  exp.SetVcpuServer(g->vm()->vcpu(0), ServerParams{Us(200), Ms(2)});
  // One 500 us job: with exact enforcement it would be chopped at 200 us per
  // period; quantum enforcement lets it run to completion in one go (the
  // 1 ms quantum exceeds the remaining budget), and the overrun is repaid
  // from later replenishments.
  Task* t = g->CreateTask("t");
  ASSERT_EQ(g->SchedSetAttr(t, RtaParams{Us(180), Ms(2), true}), kGuestOk);
  DeadlineMonitor mon;
  mon.Watch(t);
  exp.Run(Ms(10));
  g->ReleaseJob(t, Us(500), exp.sim().Now() + Ms(10));
  exp.Run(Ms(11));
  ASSERT_EQ(mon.total_completed(), 1u);
  // Ran through in one burst despite the 200 us budget.
  EXPECT_LE(mon.per_task().at("t").max_response, Us(520));
  // The debt throttles the server: a job right after waits for replenishment.
  g->ReleaseJob(t, Us(180), exp.sim().Now() + Ms(10));
  exp.Run(Ms(20));
  ASSERT_EQ(mon.total_completed(), 2u);
  EXPECT_GT(mon.per_task().at("t").max_response, Ms(1));
}

TEST(QuantumDriven, PeriodicTicksInflateScheduleCalls) {
  for (TimeNs quantum : {TimeNs{0}, Ms(1)}) {
    ExperimentConfig cfg;
    cfg.framework = Framework::kRtXen;
    cfg.machine = ZeroCostMachine(2);
    cfg.server_edf.quantum = quantum;
    Experiment exp(cfg);
    GuestOs* g = exp.AddGuest("vm", 1);
    g->CreateBackgroundTask("bg");
    exp.Run(Sec(1));
    uint64_t calls = exp.machine().overhead().schedule_calls;
    if (quantum > 0) {
      // >= 2 PCPUs x 1000 ticks.
      EXPECT_GT(calls, 1900u);
    } else {
      EXPECT_LT(calls, 1200u);  // Event-driven: ~1 per best-effort quantum.
    }
  }
}

TEST(ServerEdf, ReconfigureServerMidRun) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtXen;
  cfg.machine = ZeroCostMachine(1);
  cfg.server_edf.pick_cost = 0;
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  GuestOs* hog = exp.AddGuest("hog", 1);
  hog->CreateBackgroundTask("bg");
  g->CreateBackgroundTask("rt-bg");
  exp.SetVcpuServer(g->vm()->vcpu(0), ServerParams{Ms(2), Ms(10)});
  exp.Run(Sec(1));
  TimeNs at_1s = g->vm()->TotalRuntime();
  EXPECT_NEAR(static_cast<double>(at_1s), static_cast<double>(Ms(200)),
              static_cast<double>(Ms(15)));
  exp.SetVcpuServer(g->vm()->vcpu(0), ServerParams{Ms(6), Ms(10)});
  exp.Run(Sec(2));
  EXPECT_NEAR(static_cast<double>(g->vm()->TotalRuntime() - at_1s),
              static_cast<double>(Ms(600)), static_cast<double>(Ms(20)));
}

}  // namespace
}  // namespace rtvirt

// Multi-host federation: host fault state machine, failure-driven
// evacuation, migration retry/backoff, racing-failure abort, degraded-fit
// fallback, and byte-identical determinism (DESIGN.md section 7).

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/federation.h"
#include "src/workloads/periodic.h"

namespace rtvirt {
namespace {

// Fast-migration model for tests: 0.01 GB over 10 Gbps converges without
// pre-copy rounds, so every move costs an 8 ms blackout instead of seconds.
MigrationCostModel TinyImage() {
  MigrationCostModel m;
  m.memory_gb = 0.01;
  return m;
}

ClusterVmSpec Spec(const std::string& name, double bw, double min_bw = -1.0) {
  ClusterVmSpec spec;
  spec.name = name;
  spec.bandwidth = Bandwidth::FromDouble(bw);
  if (min_bw >= 0) {
    spec.min_bandwidth = Bandwidth::FromDouble(min_bw);
  }
  spec.migration = TinyImage();
  return spec;
}

FederationConfig TwoHosts(int pcpus, bool ft) {
  FederationConfig config;
  config.num_hosts = 2;
  config.pcpus_per_host = pcpus;
  config.policy = PlacementPolicy::kFirstFit;
  config.fault_tolerance.enabled = ft;
  return config;
}

TEST(FederationTest, HostFaultStateMachineDrivesMachineCapacity) {
  FederationConfig config = TwoHosts(/*pcpus=*/2, /*ft=*/false);
  ExperimentConfig tmpl;
  tmpl.faults.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kOutage, /*host=*/1, Sec(1), Sec(2)});
  tmpl.faults.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kDegrade, /*host=*/0, Sec(3), Sec(4), 0.5});
  tmpl.faults.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kCrash, /*host=*/1, Sec(5)});
  Federation fed(config, tmpl);

  const Bandwidth full = Bandwidth::FromDouble(2.0);
  EXPECT_EQ(fed.host(0).machine().EffectiveCapacity(), full);
  EXPECT_EQ(fed.host(1).machine().EffectiveCapacity(), full);

  fed.Run(Ms(1500));  // Inside the outage window.
  EXPECT_EQ(fed.host_state(1), HostState::kDown);
  EXPECT_EQ(fed.host(1).machine().EffectiveCapacity(), Bandwidth());

  fed.Run(Ms(2500));  // Healed.
  EXPECT_EQ(fed.host_state(1), HostState::kHealthy);
  EXPECT_EQ(fed.host(1).machine().EffectiveCapacity(), full);

  fed.Run(Ms(3500));  // Inside the degrade window: every core at 0.5.
  EXPECT_EQ(fed.host_state(0), HostState::kDegraded);
  EXPECT_EQ(fed.host(0).machine().EffectiveCapacity(), Bandwidth::FromDouble(1.0));

  fed.Run(Ms(4500));  // Degrade healed.
  EXPECT_EQ(fed.host_state(0), HostState::kHealthy);
  EXPECT_EQ(fed.host(0).machine().EffectiveCapacity(), full);

  fed.Run(Sec(6));  // Crash is permanent.
  EXPECT_EQ(fed.host_state(1), HostState::kCrashed);
  EXPECT_EQ(fed.host(1).machine().EffectiveCapacity(), Bandwidth());

  ResilienceCounters rc = fed.resilience();
  EXPECT_EQ(rc.host_crashes, 1u);
  EXPECT_EQ(rc.host_outages, 1u);
  EXPECT_EQ(rc.host_degrades, 1u);
  EXPECT_EQ(rc.host_heals, 2u);
  // No fault tolerance: nobody evacuated anything.
  EXPECT_EQ(rc.evacuations, 0u);
  EXPECT_EQ(rc.migration_attempts, 0u);
}

TEST(FederationTest, CrashEvacuatesAndRePlacesOnSurvivor) {
  FederationConfig config = TwoHosts(/*pcpus=*/4, /*ft=*/true);
  ExperimentConfig tmpl;
  tmpl.faults.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kCrash, /*host=*/0, Sec(1)});
  Federation fed(config, tmpl);

  std::vector<std::pair<std::string, int>> launches;  // (name@generation, host)
  fed.SetLauncher([&](Experiment&, GuestOs*, const ClusterVmSpec& spec, int host,
                      int generation) {
    launches.emplace_back(spec.name + "@" + std::to_string(generation), host);
  });
  std::vector<std::pair<std::string, int>> teardowns;
  fed.SetTeardown([&](const ClusterVmSpec& spec, int host) {
    teardowns.emplace_back(spec.name, host);
  });

  ASSERT_EQ(fed.AdmitVm(Spec("a", 2.0)), std::optional<int>(0));
  ASSERT_EQ(fed.AdmitVm(Spec("b", 1.0)), std::optional<int>(0));  // First-fit.
  EXPECT_EQ(fed.vm_status("a").host, 0);

  fed.Run(Sec(2));  // Crash + ~8 ms restore both well past.

  for (const char* name : {"a", "b"}) {
    Federation::VmStatus st = fed.vm_status(name);
    EXPECT_EQ(st.host, 1) << name;
    EXPECT_EQ(st.generation, 1) << name;
    EXPECT_FALSE(st.pending) << name;
    EXPECT_FALSE(st.lost) << name;
    EXPECT_FALSE(st.degraded) << name;
  }
  EXPECT_EQ(fed.placer().HostLoad(1), Bandwidth::FromDouble(3.0));

  // Launcher ran at admission (generation 0, host 0) and again per landing
  // (generation 1, host 1); teardown saw each VM on its failed host.
  ASSERT_EQ(launches.size(), 4u);
  EXPECT_EQ(launches[0], (std::pair<std::string, int>{"a@0", 0}));
  EXPECT_EQ(launches[1], (std::pair<std::string, int>{"b@0", 0}));
  EXPECT_EQ(launches[2], (std::pair<std::string, int>{"a@1", 1}));
  EXPECT_EQ(launches[3], (std::pair<std::string, int>{"b@1", 1}));
  ASSERT_EQ(teardowns.size(), 2u);
  EXPECT_EQ(teardowns[0], (std::pair<std::string, int>{"a", 0}));
  EXPECT_EQ(teardowns[1], (std::pair<std::string, int>{"b", 0}));

  ResilienceCounters rc = fed.resilience();
  EXPECT_EQ(rc.evacuations, 2u);
  EXPECT_EQ(rc.migration_successes, 2u);
  EXPECT_EQ(rc.evacuations_unresolved, 0u);
  // Each cold restore is charged at least the model's full copy time.
  EXPECT_GE(rc.vm_unavailable_ns, 2 * TinyImage().Predict().total_time);
}

TEST(FederationTest, EvacueeRetriesWithBackoffUntilRoomReturns) {
  FederationConfig config = TwoHosts(/*pcpus=*/2, /*ft=*/true);
  config.fault_tolerance.migration_deadline = kTimeNever;  // Never degrade.
  ExperimentConfig tmpl;
  tmpl.faults.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kOutage, /*host=*/0, Sec(1), Sec(2)});
  Federation fed(config, tmpl);

  ASSERT_EQ(fed.AdmitVm(Spec("a", 1.5)), std::optional<int>(0));
  ASSERT_EQ(fed.AdmitVm(Spec("b", 1.5)), std::optional<int>(1));
  fed.Run(Ms(1500));
  // Mid-outage: host 1 has no room for 1.5 on top of b, so `a` is dark and
  // hunting, burning retries under exponential backoff.
  {
    Federation::VmStatus st = fed.vm_status("a");
    EXPECT_EQ(st.host, -1);
    EXPECT_TRUE(st.pending);
    EXPECT_FALSE(st.lost);
  }
  EXPECT_GT(fed.resilience().migration_retries, 0u);

  fed.Run(Sec(4));  // Outage heals at 2 s; the next attempt lands home.
  Federation::VmStatus st = fed.vm_status("a");
  EXPECT_EQ(st.host, 0);
  EXPECT_EQ(st.generation, 1);
  EXPECT_FALSE(st.pending);
  EXPECT_FALSE(st.degraded);

  ResilienceCounters rc = fed.resilience();
  EXPECT_EQ(rc.migration_successes, 1u);
  EXPECT_EQ(rc.evacuations_unresolved, 0u);
  // Backoff doubles from 50 ms: attempts at ~1.00/1.05/1.15/1.35/1.75/2.55 s,
  // so the hunt takes several retries but far fewer than a fixed-interval poll.
  EXPECT_GE(rc.migration_retries, 4u);
  EXPECT_LE(rc.migration_retries, 8u);
  // The VM was dark from the outage until past the heal.
  EXPECT_GE(rc.vm_unavailable_ns, Sec(1));
}

TEST(FederationTest, ExhaustedAttemptBudgetMarksEvacuationUnresolved) {
  FederationConfig config = TwoHosts(/*pcpus=*/2, /*ft=*/true);
  config.fault_tolerance.max_attempts = 3;
  config.fault_tolerance.migration_deadline = kTimeNever;
  ExperimentConfig tmpl;
  tmpl.faults.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kCrash, /*host=*/0, Sec(1)});
  Federation fed(config, tmpl);

  ASSERT_EQ(fed.AdmitVm(Spec("a", 1.5)), std::optional<int>(0));
  ASSERT_EQ(fed.AdmitVm(Spec("b", 1.5)), std::optional<int>(1));
  fed.Run(Sec(5));  // Host 0 never returns; host 1 never has room.

  Federation::VmStatus st = fed.vm_status("a");
  EXPECT_TRUE(st.lost);
  EXPECT_EQ(st.host, -1);
  EXPECT_FALSE(st.pending);

  ResilienceCounters rc = fed.resilience();
  EXPECT_EQ(rc.evacuations, 1u);
  EXPECT_EQ(rc.evacuations_unresolved, 1u);
  EXPECT_EQ(rc.migration_attempts, 3u);
  EXPECT_EQ(rc.migration_retries, 2u);  // Attempts 1 and 2 retried; 3 gave up.
  EXPECT_EQ(rc.migration_successes, 0u);
  // The survivor is untouched.
  EXPECT_EQ(fed.vm_status("b").host, 1);
}

TEST(FederationTest, MigrationDeadlineFallsBackToDegradedFit) {
  FederationConfig config = TwoHosts(/*pcpus=*/2, /*ft=*/true);
  config.fault_tolerance.migration_deadline = Ms(200);
  ExperimentConfig tmpl;
  tmpl.faults.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kCrash, /*host=*/0, Sec(1)});
  Federation fed(config, tmpl);

  // Elastic incumbent on host 1: full 1.5, compressible to 0.5. The evacuee
  // (inelastic 1.5) can never full-fit next to it, but fits against the
  // compressed floors: 0.5 + 1.5 = 2.0 <= capacity.
  ASSERT_EQ(fed.AdmitVm(Spec("a", 1.5)), std::optional<int>(0));
  ASSERT_EQ(fed.AdmitVm(Spec("b", 1.5, /*min_bw=*/0.5)), std::optional<int>(1));
  fed.Run(Sec(2));

  Federation::VmStatus st = fed.vm_status("a");
  EXPECT_EQ(st.host, 1);
  EXPECT_TRUE(st.degraded);
  EXPECT_FALSE(st.pending);
  EXPECT_FALSE(st.lost);

  ResilienceCounters rc = fed.resilience();
  EXPECT_EQ(rc.degraded_placements, 1u);
  EXPECT_EQ(rc.migration_successes, 1u);
  EXPECT_GT(rc.migration_retries, 0u);  // Full fit was tried first.
  EXPECT_EQ(rc.evacuations_unresolved, 0u);
  // Dark for at least the deadline before the federation settled for less.
  EXPECT_GE(rc.vm_unavailable_ns, Ms(200));
}

TEST(FederationTest, InFlightCopyAbortsWhenTargetFails) {
  FederationConfig config = TwoHosts(/*pcpus=*/2, /*ft=*/true);
  ExperimentConfig tmpl;
  tmpl.faults.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kCrash, /*host=*/0, Sec(1)});
  tmpl.faults.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kOutage, /*host=*/1, Ms(1500), Sec(3)});
  Federation fed(config, tmpl);

  // A 2 GB image takes ~1.78 s to copy, so the restore launched at the 1 s
  // crash is still in flight when host 1 goes dark at 1.5 s.
  ClusterVmSpec slow = Spec("a", 1.5);
  slow.migration.memory_gb = 2.0;
  ASSERT_EQ(fed.AdmitVm(slow), std::optional<int>(0));

  fed.Run(Sec(2));  // Past the abort, before the heal.
  EXPECT_EQ(fed.resilience().migration_aborts, 1u);
  EXPECT_TRUE(fed.vm_status("a").pending);

  fed.Run(Sec(6));  // Host 1 heals at 3 s; the restarted copy lands.
  Federation::VmStatus st = fed.vm_status("a");
  EXPECT_EQ(st.host, 1);
  EXPECT_EQ(st.generation, 1);
  EXPECT_FALSE(st.pending);

  ResilienceCounters rc = fed.resilience();
  EXPECT_EQ(rc.migration_aborts, 1u);
  EXPECT_EQ(rc.migration_successes, 1u);
  EXPECT_EQ(rc.evacuations, 1u);
  // The blackout spans crash -> abort -> backoff -> heal -> full re-copy.
  EXPECT_GE(rc.vm_unavailable_ns, Sec(3));
}

TEST(FederationTest, FrozenBaselineTakesTheFaultWithoutResponding) {
  FederationConfig config = TwoHosts(/*pcpus=*/2, /*ft=*/false);
  ExperimentConfig tmpl;
  tmpl.faults.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kCrash, /*host=*/0, Sec(1)});
  Federation fed(config, tmpl);

  ASSERT_EQ(fed.AdmitVm(Spec("a", 1.5)), std::optional<int>(0));
  fed.Run(Sec(2));

  // The machine took the crash but nobody moved the VM: it is still booked
  // on the dead host, not pending, not lost — just gone dark with its host.
  EXPECT_EQ(fed.host_state(0), HostState::kCrashed);
  Federation::VmStatus st = fed.vm_status("a");
  EXPECT_EQ(st.host, 0);
  EXPECT_FALSE(st.pending);
  EXPECT_EQ(fed.placer().HostLoad(0), Bandwidth::FromDouble(1.5));

  ResilienceCounters rc = fed.resilience();
  EXPECT_EQ(rc.host_crashes, 1u);
  EXPECT_EQ(rc.evacuations, 0u);
  EXPECT_EQ(rc.migration_attempts, 0u);
}

TEST(FederationTest, AdmissionRejectsWhatTheClusterCannotHold) {
  FederationConfig config = TwoHosts(/*pcpus=*/2, /*ft=*/true);
  Federation fed(config, ExperimentConfig{});

  ASSERT_TRUE(fed.AdmitVm(Spec("a", 1.5)).has_value());
  ASSERT_TRUE(fed.AdmitVm(Spec("b", 1.5)).has_value());
  // 1.0 fits neither host directly nor via rebalance (aggregate full).
  EXPECT_FALSE(fed.AdmitVm(Spec("c", 1.0)).has_value());

  ResilienceCounters rc = fed.resilience();
  EXPECT_EQ(rc.cluster_vms_admitted, 2u);
  EXPECT_EQ(rc.cluster_vms_rejected, 1u);
}

TEST(FederationDeathTest, RejectsDuplicateVmNamesAndBadPlans) {
  FederationConfig config = TwoHosts(/*pcpus=*/4, /*ft=*/true);
  Federation fed(config, ExperimentConfig{});
  ASSERT_TRUE(fed.AdmitVm(Spec("a", 1.0)).has_value());
  EXPECT_DEATH(fed.AdmitVm(Spec("a", 1.0)), "duplicate federation VM name");
  EXPECT_DEATH(fed.vm_status("never-admitted"), "knows no VM named");

  // Host faults are validated against the cluster size at construction.
  ExperimentConfig bad;
  bad.faults.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kCrash, /*host=*/7, Sec(1)});
  EXPECT_DEATH(Federation(config, bad), "host id out of range");
}

TEST(FederationTest, HostFaultPlanValidation) {
  FaultPlan plan;
  plan.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kOutage, /*host=*/1, Sec(1), Sec(2)});
  EXPECT_EQ(plan.Validate(/*num_pcpus=*/4, /*num_vms=*/-1, /*num_hosts=*/2), "");
  // Host id bounds are only enforced when a cluster size is known.
  EXPECT_EQ(plan.Validate(4, -1, -1), "");
  EXPECT_NE(plan.Validate(4, -1, 1), "");

  FaultPlan empty_window;
  empty_window.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kOutage, /*host=*/0, Sec(2), Sec(2)});
  EXPECT_NE(empty_window.Validate(4, -1, 2), "");

  FaultPlan bad_factor;
  bad_factor.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kDegrade, /*host=*/0, Sec(1), Sec(2), 0.0});
  EXPECT_NE(bad_factor.Validate(4, -1, 2), "");

  // Nothing may follow a crash on the same host: a crash lasts forever.
  FaultPlan after_crash;
  after_crash.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kCrash, /*host=*/0, Sec(1)});
  after_crash.host_faults.push_back(
      {FaultPlan::HostFault::Kind::kOutage, /*host=*/0, Sec(2), Sec(3)});
  EXPECT_NE(after_crash.Validate(4, -1, 2), "");
  // The same window on another host is fine.
  after_crash.host_faults.back().host = 1;
  EXPECT_EQ(after_crash.Validate(4, -1, 2), "");
}

// Same seed + same plan => byte-identical report, with real workloads
// running on every host through a crash and an outage. This is the property
// the bench soak mode asserts at scale.
TEST(FederationTest, SameSeedAndPlanGiveByteIdenticalReports) {
  auto run_once = [] {
    FederationConfig config;
    config.num_hosts = 3;
    config.pcpus_per_host = 2;
    config.fault_tolerance.enabled = true;
    ExperimentConfig tmpl;
    tmpl.seed = 1234;
    tmpl.faults.host_faults.push_back(
        {FaultPlan::HostFault::Kind::kCrash, /*host=*/0, Sec(1)});
    tmpl.faults.host_faults.push_back(
        {FaultPlan::HostFault::Kind::kOutage, /*host=*/2, Ms(1500), Ms(2500)});
    Federation fed(config, tmpl);

    std::vector<std::unique_ptr<PeriodicRta>> rtas;
    fed.SetLauncher([&](Experiment& exp, GuestOs* guest, const ClusterVmSpec& spec,
                        int /*host*/, int generation) {
      RtaParams params;
      params.slice = Ms(2);
      params.period = Ms(10);
      auto rta = std::make_unique<PeriodicRta>(
          guest, spec.name + ".g" + std::to_string(generation), params);
      rta->Start(exp.sim().Now(), Sec(3));
      rtas.push_back(std::move(rta));
    });
    for (const char* name : {"a", "b", "c"}) {
      ClusterVmSpec spec = Spec(name, 0.8);
      if (!fed.AdmitVm(spec).has_value()) {
        ADD_FAILURE() << "admission rejected " << name;
      }
    }
    fed.Run(Sec(3));

    std::ostringstream out;
    fed.PrintReport(out, "determinism");
    return out.str();
  };

  std::string first = run_once();
  std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace rtvirt

// Determinism regression (robustness PR satellite): the same seed and the
// same fault plan must reproduce the exact same run — byte-identical metrics
// report and equal resilience counters across two fresh executions. Guards
// the whole recovery path (evacuation, capacity re-plans, pressure ladder,
// audit) against hidden nondeterminism: any wall-clock read, pointer-keyed
// iteration order, or uninitialized state in the new code shows up here as a
// report diff long before it corrupts an experiment sweep.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/metrics/deadline_monitor.h"
#include "src/runner/experiment.h"
#include "src/sim/event_queue.h"
#include "src/workloads/churn.h"
#include "src/workloads/periodic.h"

namespace rtvirt {
namespace {

constexpr TimeNs kRun = Sec(4);

// A recover-mode run with every new knob on and an eventful fault timeline:
// a mid-grant core loss, an overlapping throttle, and both heals.
ExperimentConfig FaultyConfig() {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine.num_pcpus = 4;
  cfg.dpwrap.pcpu_recovery.enabled = true;
  cfg.dpwrap.overload.enabled = true;
  cfg.audit.enabled = true;
  cfg.machine.evacuation_penalty = Us(150);

  FaultPlan::PcpuFault outage;
  outage.kind = FaultPlan::PcpuFault::Kind::kTransientOffline;
  outage.pcpu = 3;
  outage.at = Sec(1) + Us(700);  // Off the period grid: mid-grant.
  outage.until = Sec(3);
  cfg.faults.pcpu_faults.push_back(outage);
  FaultPlan::PcpuFault throttle;
  throttle.kind = FaultPlan::PcpuFault::Kind::kDegrade;
  throttle.pcpu = 2;
  throttle.at = Sec(2);
  throttle.until = Sec(3) + Ms(500);
  throttle.speed = 0.6;
  cfg.faults.pcpu_faults.push_back(throttle);
  return cfg;
}

struct RunResult {
  std::string report;
  ResilienceCounters rc;
  uint64_t events = 0;
};

RunResult RunOnce() {
  ExperimentConfig cfg = FaultyConfig();
  Experiment exp(cfg);
  GuestConfig gcfg;
  gcfg.overload.enabled = true;
  GuestOs* hi = exp.AddGuest("hi", 6, gcfg);
  GuestOs* lo = exp.AddGuest("lo", 4, gcfg);

  // Churned (seeded-random) demand in both tiers so the run exercises
  // admission, compression, shedding and resume — not just a static plan.
  ChurnConfig hi_cfg;
  hi_cfg.experiment_len = kRun;
  hi_cfg.criticality = Criticality::kHigh;
  hi_cfg.profile = RtaParams{Us(2250), Ms(10)};
  hi_cfg.admission_retry = Ms(50);
  ChurnConfig lo_cfg = hi_cfg;
  lo_cfg.criticality = Criticality::kLow;
  lo_cfg.profile = RtaParams{Us(4500), Ms(10)};
  lo_cfg.elastic_min_fraction = 0.5;
  DeadlineMonitor hi_mon, lo_mon;
  ChurnDriver hi_churn(hi, hi_cfg, Rng(977), &hi_mon);
  ChurnDriver lo_churn(lo, lo_cfg, Rng(978), &lo_mon);
  hi_churn.Start();
  lo_churn.Start();
  exp.Run(kRun);

  RunResult r;
  std::ostringstream out;
  exp.PrintReport(out, "determinism");
  out << "hi completed=" << hi_mon.total_completed() << " misses=" << hi_mon.total_misses()
      << "\nlo completed=" << lo_mon.total_completed() << " misses=" << lo_mon.total_misses()
      << "\n";
  r.report = out.str();
  r.rc = exp.resilience();
  r.events = exp.sim().events_processed();
  return r;
}

TEST(Determinism, SameSeedAndFaultPlanReproduceByteIdenticalReports) {
  RunResult a = RunOnce();
  RunResult b = RunOnce();
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.events, b.events);

  // The fault path itself fired (the test is vacuous otherwise)...
  EXPECT_EQ(a.rc.pcpu_offline_events, 1u);
  EXPECT_EQ(a.rc.pcpu_degrade_events, 1u);
  EXPECT_GT(a.rc.capacity_replans, 0u);
  EXPECT_GT(a.rc.audit_checks, 0u);
  EXPECT_EQ(a.rc.audit_violations, 0u);

  // ...and every counter in the recovery pipeline matches exactly.
  EXPECT_EQ(a.rc.pcpu_evacuations, b.rc.pcpu_evacuations);
  EXPECT_EQ(a.rc.capacity_replans, b.rc.capacity_replans);
  EXPECT_EQ(a.rc.sheds, b.rc.sheds);
  EXPECT_EQ(a.rc.resumes, b.rc.resumes);
  EXPECT_EQ(a.rc.compressions, b.rc.compressions);
  EXPECT_EQ(a.rc.expansions, b.rc.expansions);
  EXPECT_EQ(a.rc.audit_checks, b.rc.audit_checks);
}

// Trust-boundary PR: the adversarial-guest events draw no RNG and the trust
// state machine iterates VMs in machine index order, so the same seed and
// the same adversarial plan must reproduce byte-identical reports — lies,
// storms, thrash, quarantines, rehabilitations and all.
RunResult RunAdversarialOnce() {
  ExperimentConfig cfg = FaultyConfig();
  cfg.dpwrap.guest_trust.enabled = true;
  for (auto kind : {FaultPlan::AdversarialGuest::Kind::kDeadlineLies,
                    FaultPlan::AdversarialGuest::Kind::kHypercallStorm,
                    FaultPlan::AdversarialGuest::Kind::kBandwidthThrash}) {
    FaultPlan::AdversarialGuest a;
    a.kind = kind;
    a.vm_index = 2;
    a.start = Ms(500);
    a.end = Sec(3);
    a.period = kind == FaultPlan::AdversarialGuest::Kind::kHypercallStorm ? Us(100)
               : kind == FaultPlan::AdversarialGuest::Kind::kDeadlineLies ? Us(200)
                                                                          : Us(500);
    a.thrash_high = Bandwidth::FromDouble(0.15);
    cfg.faults.adversarial_guests.push_back(a);
  }

  Experiment exp(cfg);
  GuestConfig gcfg;
  gcfg.overload.enabled = true;
  GuestOs* hi = exp.AddGuest("hi", 6, gcfg);
  exp.AddGuest("lo", 4, gcfg);  // Fills VM index 1; the plan targets index 2.
  GuestOs* byz = exp.AddGuest("byz", 2);
  PeriodicRta cover(byz, "cover", RtaParams{Ms(1), Ms(10)});
  cover.Start(0, kRun);

  ChurnConfig hi_cfg;
  hi_cfg.experiment_len = kRun;
  hi_cfg.criticality = Criticality::kHigh;
  hi_cfg.profile = RtaParams{Us(2250), Ms(10)};
  hi_cfg.admission_retry = Ms(50);
  DeadlineMonitor hi_mon;
  ChurnDriver hi_churn(hi, hi_cfg, Rng(977), &hi_mon);
  hi_churn.Start();
  exp.Run(kRun);

  RunResult r;
  std::ostringstream out;
  exp.PrintReport(out, "determinism-adversarial");
  out << "hi completed=" << hi_mon.total_completed() << " misses=" << hi_mon.total_misses()
      << "\n";
  r.report = out.str();
  r.rc = exp.resilience();
  r.events = exp.sim().events_processed();
  return r;
}

TEST(Determinism, SameSeedAndAdversarialPlanReproduceByteIdenticalReports) {
  RunResult a = RunAdversarialOnce();
  RunResult b = RunAdversarialOnce();
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.events, b.events);

  // The attack and every defense actually fired (vacuity guard)...
  EXPECT_GT(a.rc.adversarial_deadline_lies, 0u);
  EXPECT_GT(a.rc.adversarial_storm_calls, 0u);
  EXPECT_GT(a.rc.adversarial_thrash_calls, 0u);
  EXPECT_GT(a.rc.deadline_lie_rejections, 0u);
  EXPECT_GT(a.rc.hypercall_rate_rejections, 0u);
  EXPECT_GE(a.rc.quarantines, 1u);

  // ...and the trust pipeline's counters match exactly across runs.
  EXPECT_EQ(a.rc.deadline_lie_rejections, b.rc.deadline_lie_rejections);
  EXPECT_EQ(a.rc.hypercall_rate_rejections, b.rc.hypercall_rate_rejections);
  EXPECT_EQ(a.rc.bw_thrash_trips, b.rc.bw_thrash_trips);
  EXPECT_EQ(a.rc.quarantines, b.rc.quarantines);
  EXPECT_EQ(a.rc.quarantine_releases, b.rc.quarantine_releases);
  EXPECT_EQ(a.rc.quarantine_holds, b.rc.quarantine_holds);
}

TEST(Determinism, DifferentWorkloadSeedStillRunsCleanUnderFaults) {
  // Not a reproducibility check — a robustness sweep in miniature: a second
  // seed through the same fault plan must also finish with a clean audit.
  ExperimentConfig cfg = FaultyConfig();
  Experiment exp(cfg);
  GuestConfig gcfg;
  gcfg.overload.enabled = true;
  GuestOs* g = exp.AddGuest("g", 6, gcfg);
  ChurnConfig ccfg;
  ccfg.experiment_len = kRun;
  ccfg.profile = RtaParams{Us(2500), Ms(10)};
  ccfg.elastic_min_fraction = 0.5;
  DeadlineMonitor mon;
  ChurnDriver churn(g, ccfg, Rng(31337), &mon);
  churn.Start();
  exp.Run(kRun);
  EXPECT_GT(exp.auditor()->checks_run(), 0u);
  EXPECT_EQ(exp.auditor()->total_violations(), 0u);
}

// Differential check of the two event-queue backends (perf PR satellite):
// 100k randomized schedule/cancel/pop operations driven through a calendar
// queue and a binary heap in lockstep. The backends implement the same
// (time, insertion-seq) total order, so at every step their sizes and next
// event times must agree, and the fired sequences must be identical. This is
// the test that lets the calendar be the default: any divergence under
// resizes, width retunes, node recycling, or tombstone compaction shows up
// here as a first-divergence step index.
TEST(Determinism, EventQueueBackendsAgreeOverRandomizedOps) {
  EventQueue cal(EventQueueKind::kCalendar);
  EventQueue heap(EventQueueKind::kHeap);
  Rng rng(0xEC0FFEEull);

  struct Pending {
    EventQueue::EventId cal_id;
    EventQueue::EventId heap_id;
    int tag;
  };
  std::vector<Pending> pending;
  std::vector<int> cal_fired;
  std::vector<int> heap_fired;

  TimeNs now = 0;
  int next_tag = 0;
  constexpr int kOps = 100000;
  for (int op = 0; op < kOps; ++op) {
    int roll = static_cast<int>(rng.UniformInt(0, 99));
    if (roll < 45 || pending.empty()) {
      // Schedule the same event in both queues. Mix of near and far times,
      // with occasional exact duplicates to exercise FIFO tie-breaking.
      TimeNs when = now + rng.UniformTime(0, roll % 5 == 0 ? 50 : 5000000);
      int tag = next_tag++;
      Pending p;
      p.tag = tag;
      p.cal_id = cal.Schedule(when, [&cal_fired, tag] { cal_fired.push_back(tag); });
      p.heap_id = heap.Schedule(when, [&heap_fired, tag] { heap_fired.push_back(tag); });
      pending.push_back(std::move(p));
    } else if (roll < 70) {
      // Cancel a random outstanding event in both (ids of already-fired
      // events are still in `pending`; cancelling those must be a no-op in
      // both backends equally).
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pending.size()) - 1));
      cal.Cancel(pending[pick].cal_id);
      heap.Cancel(pending[pick].heap_id);
      pending[pick] = std::move(pending.back());
      pending.pop_back();
    } else if (!cal.empty()) {
      ASSERT_EQ(cal.NextTime(), heap.NextTime()) << "step " << op;
      now = cal.NextTime();
      cal.PopNext().callback();
      heap.PopNext().callback();
      ASSERT_EQ(cal_fired.back(), heap_fired.back()) << "step " << op;
    }
    ASSERT_EQ(cal.size(), heap.size()) << "step " << op;
  }
  // Drain both completely and require identical fired sequences.
  while (!cal.empty()) {
    ASSERT_EQ(cal.NextTime(), heap.NextTime());
    cal.PopNext().callback();
    heap.PopNext().callback();
  }
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(cal_fired, heap_fired);
  EXPECT_GT(cal.stats().calendar_resizes, 0u);
}

}  // namespace
}  // namespace rtvirt

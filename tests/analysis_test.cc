#include <gtest/gtest.h>

#include <vector>

#include "src/analysis/carts.h"
#include "src/analysis/dmpr.h"
#include "src/analysis/resource_model.h"

namespace rtvirt {
namespace {

TEST(SupplyBound, DedicatedCpuSuppliesEverything) {
  PeriodicResource r{Ms(10), Ms(10)};
  for (TimeNs t : {Ms(1), Ms(7), Ms(10), Ms(25)}) {
    EXPECT_EQ(SupplyBound(r, t), t);
  }
}

TEST(SupplyBound, BlackoutThenLinear) {
  PeriodicResource r{Ms(10), Ms(4)};  // Blackout 2*(10-4)=12ms worst case.
  EXPECT_EQ(SupplyBound(r, Ms(6)), 0);
  EXPECT_EQ(SupplyBound(r, Ms(12)), 0);
  EXPECT_EQ(SupplyBound(r, Ms(16)), Ms(4));
  // Within the partial window supply accrues linearly.
  EXPECT_EQ(SupplyBound(r, Ms(13)), Ms(1));
}

TEST(SupplyBound, MonotoneInTimeAndBudget) {
  PeriodicResource small{Ms(5), Ms(2)};
  PeriodicResource big{Ms(5), Ms(3)};
  TimeNs prev = 0;
  for (TimeNs t = 0; t <= Ms(50); t += Us(500)) {
    TimeNs s = SupplyBound(small, t);
    EXPECT_GE(s, prev);
    EXPECT_LE(s, SupplyBound(big, t));
    prev = s;
  }
}

TEST(DemandBound, StepsAtPeriodMultiples) {
  std::vector<RtaParams> tasks{{Ms(2), Ms(10), false}, {Ms(3), Ms(15), false}};
  EXPECT_EQ(DemandBound(tasks, Ms(9)), 0);
  EXPECT_EQ(DemandBound(tasks, Ms(10)), Ms(2));
  EXPECT_EQ(DemandBound(tasks, Ms(15)), Ms(5));
  EXPECT_EQ(DemandBound(tasks, Ms(30)), Ms(6) + Ms(6));
}

TEST(EdfSchedulable, DedicatedCpuAtFullUtilization) {
  std::vector<RtaParams> tasks{{Ms(5), Ms(10), false}, {Ms(5), Ms(10), false}};
  EXPECT_TRUE(EdfSchedulableOn(tasks, PeriodicResource{Ms(10), Ms(10)}));
}

TEST(EdfSchedulable, RejectsOverload) {
  std::vector<RtaParams> tasks{{Ms(6), Ms(10), false}, {Ms(5), Ms(10), false}};
  EXPECT_FALSE(EdfSchedulableOn(tasks, PeriodicResource{Ms(10), Ms(10)}));
}

TEST(EdfSchedulable, PartialResourceNeedsHeadroom) {
  std::vector<RtaParams> tasks{{Ms(5), Ms(10), false}};
  // Same long-run rate but with blackout: not schedulable.
  EXPECT_FALSE(EdfSchedulableOn(tasks, PeriodicResource{Ms(10), Ms(5)}));
  EXPECT_TRUE(EdfSchedulableOn(tasks, PeriodicResource{Ms(2), Ms(2)}));
}

// The published Table 2 interfaces: CARTS on a 1 ms grid must reproduce the
// paper's NH-Dec VM configurations exactly.
struct Table2Case {
  RtaParams rta;
  PeriodicResource expected;  // (period, budget)
};

class CartsTable2Test : public ::testing::TestWithParam<Table2Case> {};

TEST_P(CartsTable2Test, ReproducesPublishedInterface) {
  const Table2Case& c = GetParam();
  std::vector<RtaParams> tasks{c.rta};
  auto best = MinimalInterface(tasks, CartsOptions{Ms(1), 0, 0});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->period, c.expected.period);
  EXPECT_EQ(best->budget, c.expected.budget);
}

INSTANTIATE_TEST_SUITE_P(
    NhDecGroup, CartsTable2Test,
    ::testing::Values(Table2Case{{Ms(23), Ms(30), false}, {Ms(5), Ms(4)}},
                      Table2Case{{Ms(13), Ms(20), false}, {Ms(4), Ms(3)}},
                      Table2Case{{Ms(5), Ms(10), false}, {Ms(3), Ms(2)}},
                      Table2Case{{Ms(10), Ms(100), false}, {Ms(9), Ms(1)}}));

TEST(Carts, InterfaceBandwidthAtLeastTaskUtilization) {
  std::vector<RtaParams> tasks{{Ms(11), Ms(21), false}, {Ms(13), Ms(100), false}};
  auto best = MinimalInterface(tasks, CartsOptions{Ms(1), 0, 0});
  ASSERT_TRUE(best.has_value());
  EXPECT_GE(best->bandwidth(), TotalUtilization(tasks));
  EXPECT_TRUE(EdfSchedulableOn(tasks, *best));
}

TEST(Carts, CandidatesSortedByBandwidth) {
  std::vector<RtaParams> tasks{{Ms(5), Ms(10), false}};
  auto candidates = InterfaceCandidates(tasks, CartsOptions{Ms(1), 0, 0});
  ASSERT_GE(candidates.size(), 2u);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].bandwidth(), candidates[i].bandwidth());
  }
}

TEST(Carts, MicrosecondGridForMemcached) {
  // The memcached RTA (s=66us, p=500us): CARTS on a 1 us grid finds a small
  // interface whose bandwidth beats the constrained large-period ones.
  std::vector<RtaParams> tasks{{Us(66), Us(500), false}};
  auto best = MinimalInterface(tasks, CartsOptions{Us(1), 0, 0});
  ASSERT_TRUE(best.has_value());
  EXPECT_LT(best->period, Us(50));
  auto constrained = MinimalBudget(tasks, Us(283), Us(1));
  ASSERT_TRUE(constrained.has_value());
  EXPECT_GE(Bandwidth::FromSlicePeriod(*constrained, Us(283)), best->bandwidth());
}

TEST(Dmpr, PacksPartialInterfaces) {
  // Bandwidths {0.72, 0.69, 0.66, 0.21} -> 3 bins (FFD), like the H-Equiv
  // group claiming 3 CPUs for 2.28 allocated.
  std::vector<PeriodicResource> ifs{
      {Ms(100), Ms(72)}, {Ms(100), Ms(69)}, {Ms(100), Ms(66)}, {Ms(100), Ms(21)}};
  DmprResult r = DmprPack(ifs);
  EXPECT_EQ(r.claimed_cpus, 3);
  EXPECT_EQ(r.full_vcpus, 0);
  EXPECT_NEAR(r.allocated.ToDouble(), 2.28, 0.01);
}

TEST(Dmpr, FullVcpusClaimDedicatedCpus) {
  std::vector<PeriodicResource> ifs{{Ms(10), Ms(10)}, {Ms(10), Ms(10)}, {Ms(10), Ms(3)}};
  DmprResult r = DmprPack(ifs);
  EXPECT_EQ(r.full_vcpus, 2);
  EXPECT_EQ(r.claimed_cpus, 3);
}

TEST(Dmpr, EmptyIsZero) {
  DmprResult r = DmprPack(std::vector<PeriodicResource>{});
  EXPECT_EQ(r.claimed_cpus, 0);
  EXPECT_EQ(r.allocated, Bandwidth::Zero());
}

}  // namespace
}  // namespace rtvirt

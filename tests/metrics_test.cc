// Metrics and reporting: deadline monitor, allocation tracker, table/CDF
// rendering, and the dispatch tracer.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "src/metrics/alloc_tracker.h"
#include "src/metrics/deadline_monitor.h"
#include "src/metrics/report.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

TEST(DeadlineMonitorTest, CountsMissesAndTardiness) {
  DeadlineMonitor mon;
  Task task("t", Task::Kind::kRta);
  Job on_time{0, Ms(10), Ms(2), 0};
  Job late{Ms(10), Ms(20), Ms(2), 0};
  mon.OnJobCompleted(task, on_time, Ms(9));
  mon.OnJobCompleted(task, late, Ms(23));
  EXPECT_EQ(mon.total_completed(), 2u);
  EXPECT_EQ(mon.total_misses(), 1u);
  EXPECT_EQ(mon.max_tardiness(), Ms(3));
  EXPECT_DOUBLE_EQ(mon.TotalMissRatio(), 0.5);
  EXPECT_EQ(mon.per_task().at("t").misses, 1u);
  EXPECT_EQ(mon.per_task().at("t").max_response, Ms(13));
  EXPECT_EQ(mon.TasksWithMisses(), 1);
}

TEST(DeadlineMonitorTest, ResponseTimesInMicroseconds) {
  DeadlineMonitor mon;
  Task task("t", Task::Kind::kRta);
  mon.OnJobCompleted(task, Job{Ms(5), Ms(15), Ms(1), 0}, Ms(7));
  EXPECT_DOUBLE_EQ(mon.response_times_us().Max(), 2000.0);
}

TEST(DeadlineMonitorTest, WorstTaskMissRatioAcrossTasks) {
  DeadlineMonitor mon;
  Task good("good", Task::Kind::kRta);
  Task bad("bad", Task::Kind::kRta);
  for (int i = 0; i < 10; ++i) {
    mon.OnJobCompleted(good, Job{0, Ms(10), 0, 0}, Ms(1));
  }
  mon.OnJobCompleted(bad, Job{0, Ms(10), 0, 0}, Ms(11));
  mon.OnJobCompleted(bad, Job{0, Ms(10), 0, 0}, Ms(1));
  EXPECT_DOUBLE_EQ(mon.WorstTaskMissRatio(), 0.5);
}

TEST(AllocTrackerTest, SamplesPerVmAllocation) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(2);
  Experiment exp(cfg);
  GuestOs* busy = exp.AddGuest("busy", 1);
  GuestOs* idle = exp.AddGuest("idle", 1);
  (void)idle;
  busy->CreateBackgroundTask("bg");
  AllocTracker tracker(&exp.machine(), Ms(100));
  tracker.Start(Sec(1));
  exp.Run(Sec(1) + Ms(1));
  ASSERT_GE(tracker.rows().size(), 9u);
  for (const AllocTracker::Row& row : tracker.rows()) {
    ASSERT_EQ(row.vm_pct.size(), 2u);
    EXPECT_NEAR(row.vm_pct[0], 100.0, 1.0);  // The hog owns one full CPU.
    EXPECT_NEAR(row.vm_pct[1], 0.0, 0.5);
  }
}

TEST(AllocTrackerTest, TracksDynamicChanges) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(1);
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 1);
  PeriodicRta rta(g, "rta", RtaParams{Ms(50), Ms(100), false});
  rta.Start(Ms(500), Sec(1));  // Active only in the second half.
  AllocTracker tracker(&exp.machine(), Ms(100));
  tracker.Start(Sec(1));
  exp.Run(Sec(1) + Ms(1));
  const auto& rows = tracker.rows();
  ASSERT_GE(rows.size(), 9u);
  EXPECT_NEAR(rows[1].vm_pct[0], 0.0, 1.0);   // Idle early.
  EXPECT_NEAR(rows[7].vm_pct[0], 50.0, 5.0);  // ~50% once running.
}

TEST(TablePrinterTest, AlignsColumnsAndPadsRows) {
  TablePrinter t({"a", "long-header", "c"});
  t.AddRow({"x", "y"});  // Short row: padded.
  t.AddRow({"wide-cell", "z", "w"});
  std::ostringstream out;
  t.Print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("wide-cell"), std::string::npos);
  // Header + separator + 2 rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Pct(0.5, 1), "50.0%");
}

TEST(ReportTest, PrintCdfAndPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  std::ostringstream out;
  PrintPercentiles(out, s, {50, 99}, "us");
  PrintCdf(out, s, 4, "us");
  std::string text = out.str();
  EXPECT_NE(text.find("p50: 50.00 us"), std::string::npos);
  EXPECT_NE(text.find("p99: 99.00 us"), std::string::npos);
  EXPECT_NE(text.find("1.0000"), std::string::npos);  // CDF reaches 1.
}

TEST(DispatchTracerTest, ObservesEveryDispatch) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(1);
  Experiment exp(cfg);
  GuestOs* a = exp.AddGuest("a", 1);
  GuestOs* b = exp.AddGuest("b", 1);
  a->CreateBackgroundTask("bga");
  b->CreateBackgroundTask("bgb");
  int dispatches = 0;
  TimeNs last = -1;
  exp.machine().SetDispatchTracer(
      [&](TimeNs t, const Pcpu& p, const Vcpu& v, bool) {
        ++dispatches;
        EXPECT_GE(t, last);
        EXPECT_EQ(p.id(), 0);
        EXPECT_TRUE(v.vm()->name() == "a" || v.vm()->name() == "b");
        last = t;
      });
  exp.Run(Ms(100));
  // Two hogs round-robin at the 1ms best-effort quantum.
  EXPECT_GT(dispatches, 50);
}

}  // namespace
}  // namespace rtvirt

#include "src/common/bandwidth.h"

#include <gtest/gtest.h>

#include "src/common/time.h"

namespace rtvirt {
namespace {

TEST(Bandwidth, FromSlicePeriodExact) {
  Bandwidth half = Bandwidth::FromSlicePeriod(Ms(5), Ms(10));
  EXPECT_EQ(half.ppb(), 500'000'000);
  EXPECT_DOUBLE_EQ(half.ToDouble(), 0.5);
}

TEST(Bandwidth, FromSlicePeriodRoundsUp) {
  // 1/3 is not representable; the reservation must not undershoot.
  Bandwidth third = Bandwidth::FromSlicePeriod(1, 3);
  EXPECT_GE(third.SliceOfCeil(3), 1);
  EXPECT_EQ(third.ppb(), 333'333'334);
}

TEST(Bandwidth, SliceOfFloorNeverExceedsProRata) {
  Bandwidth bw = Bandwidth::FromSlicePeriod(Ms(13), Ms(20));
  TimeNs slice = bw.SliceOf(Us(250));
  EXPECT_LE(slice, Us(250));
  EXPECT_GE(slice, Us(250) * 13 / 20 - 1);
}

TEST(Bandwidth, Arithmetic) {
  Bandwidth a = Bandwidth::FromSlicePeriod(1, 4);
  Bandwidth b = Bandwidth::FromSlicePeriod(1, 2);
  EXPECT_EQ((a + b).ppb(), 750'000'000);
  EXPECT_EQ((b - a).ppb(), 250'000'000);
  EXPECT_LT(a, b);
  EXPECT_GT(Bandwidth::One(), b);
  EXPECT_EQ(Bandwidth::Cpus(15).ppb(), 15 * Bandwidth::kUnit);
}

TEST(Bandwidth, SliceOfLargeDurationsNoOverflow) {
  Bandwidth bw = Bandwidth::FromSlicePeriod(Ms(999), Ms(1000));
  TimeNs day = Sec(86400);
  EXPECT_EQ(bw.SliceOf(day), day / 1000 * 999);
}

TEST(Bandwidth, CeilVsFloorDifferByAtMostOne) {
  Bandwidth bw = Bandwidth::FromPpb(123'456'789);
  for (TimeNs d : {TimeNs{1}, Us(1), Us(250), Ms(7), Sec(3)}) {
    EXPECT_LE(bw.SliceOfCeil(d) - bw.SliceOf(d), 1);
  }
}

class BandwidthSlicePropertyTest : public ::testing::TestWithParam<int64_t> {};

// Splitting any duration among proportional shares never exceeds the whole.
TEST_P(BandwidthSlicePropertyTest, ProportionalSplitConserves) {
  TimeNs duration = GetParam();
  Bandwidth parts[] = {
      Bandwidth::FromSlicePeriod(13, 20),
      Bandwidth::FromSlicePeriod(1, 7),
      Bandwidth::FromSlicePeriod(3, 100),
      Bandwidth::FromSlicePeriod(1, 9),
  };
  Bandwidth total;
  TimeNs sum = 0;
  for (Bandwidth p : parts) {
    total += p;
    sum += p.SliceOf(duration);
  }
  ASSERT_LE(total, Bandwidth::One());
  EXPECT_LE(sum, duration);
  // Floor rounding loses less than one ns per part.
  EXPECT_GE(sum, total.SliceOf(duration) - 4);
}

INSTANTIATE_TEST_SUITE_P(Durations, BandwidthSlicePropertyTest,
                         ::testing::Values(1, 999, Us(250), Us(333), Ms(1), Ms(15), Sec(1),
                                           Sec(100)));

}  // namespace
}  // namespace rtvirt

// PCPU fault & capacity-degradation model tests: machine-level hotplug and
// speed semantics, the speed<->wall conversions, the degraded DP-WRAP layout,
// FaultPlan structural validation, injector event scheduling, and the
// end-to-end recovery path (re-plan, evacuation, audit under degradation).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/bandwidth.h"
#include "src/faults/fault_injector.h"
#include "src/hv/machine.h"
#include "src/rtvirt/wrap_layout.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

// ---- Speed conversions ----

TEST(SpeedConversion, IdentityAtFullSpeed) {
  for (TimeNs w : {TimeNs{0}, TimeNs{1}, Us(7), Ms(3), Sec(11)}) {
    EXPECT_EQ(SpeedWorkToWall(w, Bandwidth::kUnit), w);
    EXPECT_EQ(SpeedWallToWork(w, Bandwidth::kUnit), w);
  }
}

TEST(SpeedConversion, WallCoversWorkAtAnySpeed) {
  // ceil up, floor down: a wall window sized for `work` always recovers at
  // least that much work — a throttled grant never silently shortchanges.
  for (int64_t s : {1LL, 3LL, 250000000LL, 600000000LL, 999999999LL}) {
    for (TimeNs w : {TimeNs{1}, TimeNs{17}, Us(1), Us(4500), Ms(10)}) {
      TimeNs wall = SpeedWorkToWall(w, s);
      EXPECT_GE(SpeedWallToWork(wall, s), w) << "speed=" << s << " work=" << w;
      // And not by much: one less wall ns must not still cover the work.
      if (wall > 0) {
        EXPECT_LT(SpeedWallToWork(wall - 1, s), w) << "speed=" << s << " work=" << w;
      }
    }
  }
}

TEST(SpeedConversion, SlowerMeansLonger) {
  EXPECT_EQ(SpeedWorkToWall(Ms(6), 600000000), Ms(10));  // 0.6x: 6 ms takes 10 ms.
  EXPECT_EQ(SpeedWallToWork(Ms(10), 600000000), Ms(6));
  EXPECT_EQ(SpeedWorkToWall(Ms(1), 500000000), Ms(2));
}

// ---- Machine-level hotplug / speed state ----

struct FaultRig {
  explicit FaultRig(int pcpus, int vcpus, MachineConfig cfg = MachineConfig{}) {
    cfg.num_pcpus = pcpus;
    cfg.context_switch_cost = 0;
    cfg.migration_cost = 0;
    machine = std::make_unique<Machine>(&sim, cfg);
    machine->SetScheduler(std::make_unique<DedicatedScheduler>());
    vm = machine->AddVm("vm");
    clients.resize(vcpus);
    for (int i = 0; i < vcpus; ++i) {
      vm->AddVcpu()->set_client(&clients[i]);
    }
    machine->Start();
  }

  struct CountingClient : public VcpuClient {
    void OnVcpuGranted(Vcpu*) override { ++grants; }
    void OnVcpuRevoked(Vcpu*) override { ++revokes; }
    int grants = 0;
    int revokes = 0;
  };

  Simulator sim;
  std::unique_ptr<Machine> machine;
  Vm* vm = nullptr;
  std::vector<CountingClient> clients;
};

TEST(PcpuFaults, OfflineEvacuatesTheRunningVcpu) {
  FaultRig rig(2, 2);
  rig.vm->vcpu(0)->Wake();
  rig.vm->vcpu(1)->Wake();
  rig.sim.RunUntil(Ms(1));
  ASSERT_EQ(rig.machine->pcpu(1)->current(), rig.vm->vcpu(1));

  rig.sim.At(Ms(2), [&] { rig.machine->SetPcpuOnline(1, false); });
  rig.sim.RunUntil(Ms(3));
  EXPECT_FALSE(rig.machine->pcpu(1)->online());
  EXPECT_EQ(rig.machine->pcpu(1)->current(), nullptr);
  EXPECT_EQ(rig.machine->pcpu(1)->run_until(), kTimeNever);
  EXPECT_EQ(rig.machine->pcpu_evacuations(), 1u);
  EXPECT_EQ(rig.vm->vcpu(1)->evacuations(), 1u);
  EXPECT_EQ(rig.clients[1].revokes, 1);
  EXPECT_EQ(rig.machine->num_online_pcpus(), 1);
  // The evacuated VCPU ran until the failure instant, not a tick longer.
  EXPECT_EQ(rig.vm->vcpu(1)->total_runtime(), Ms(2));
}

TEST(PcpuFaults, OfflineIdleCoreEvacuatesNobody) {
  FaultRig rig(2, 1);  // PCPU 1 never has anyone dispatched.
  rig.vm->vcpu(0)->Wake();
  rig.sim.At(Ms(1), [&] { rig.machine->SetPcpuOnline(1, false); });
  rig.sim.RunUntil(Ms(2));
  EXPECT_EQ(rig.machine->pcpu_evacuations(), 0u);
  EXPECT_EQ(rig.machine->num_online_pcpus(), 1);
}

TEST(PcpuFaults, ReOnlineRestoresDispatch) {
  FaultRig rig(1, 1);
  rig.vm->vcpu(0)->Wake();
  rig.sim.At(Ms(1), [&] { rig.machine->SetPcpuOnline(0, false); });
  rig.sim.At(Ms(5), [&] { rig.machine->SetPcpuOnline(0, true); });
  rig.sim.RunUntil(Ms(8));
  EXPECT_TRUE(rig.machine->pcpu(0)->online());
  EXPECT_EQ(rig.machine->pcpu(0)->current(), rig.vm->vcpu(0));
  // 1 ms before the outage + 3 ms after re-online; the 4 ms window is lost.
  EXPECT_EQ(rig.vm->vcpu(0)->total_runtime(), Ms(4));
}

TEST(PcpuFaults, EvacuationPenaltyChargedOnceOnNextDispatch) {
  MachineConfig cfg;
  cfg.evacuation_penalty = Us(300);
  FaultRig rig(2, 1, cfg);
  rig.vm->vcpu(0)->Wake();
  rig.sim.RunUntil(Ms(1));
  ASSERT_EQ(rig.machine->pcpu(0)->current(), rig.vm->vcpu(0));

  rig.sim.At(Ms(1), [&] { rig.machine->SetPcpuOnline(0, false); });
  rig.sim.RunUntil(Ms(2));
  EXPECT_EQ(rig.vm->vcpu(0)->pending_evacuation_penalty(), Us(300));
  TimeNs mig_before = rig.machine->overhead().migration_time;

  // The dedicated scheduler pins vcpu 0 to pcpu 0; re-onlining it brings the
  // evacuee back and the one-shot salvage cost is paid exactly once.
  rig.sim.At(Ms(2), [&] { rig.machine->SetPcpuOnline(0, true); });
  rig.sim.RunUntil(Ms(10));
  EXPECT_EQ(rig.vm->vcpu(0)->pending_evacuation_penalty(), 0);
  EXPECT_EQ(rig.machine->overhead().migration_time - mig_before, Us(300));
  // 1 ms before the fault, plus the window after re-online minus the penalty.
  EXPECT_EQ(rig.vm->vcpu(0)->total_runtime(), Ms(1) + Ms(8) - Us(300));
}

TEST(PcpuFaults, SpeedChangeRevokesAndUpdatesEffectiveCapacity) {
  FaultRig rig(2, 2);
  rig.vm->vcpu(0)->Wake();
  rig.sim.RunUntil(Ms(1));
  EXPECT_EQ(rig.machine->EffectiveCapacity(), Bandwidth::Cpus(2));

  rig.sim.At(Ms(1), [&] { rig.machine->SetPcpuSpeed(0, 0.5); });
  rig.sim.RunUntil(Ms(2));
  EXPECT_EQ(rig.machine->pcpu(0)->speed_ppb(), Bandwidth::kUnit / 2);
  EXPECT_EQ(rig.machine->EffectiveCapacity(), Bandwidth::FromPpb(Bandwidth::kUnit * 3 / 2));
  // Every grant runs at one constant speed: the change forced a revoke and a
  // fresh dispatch (the dedicated scheduler re-grants immediately).
  EXPECT_GE(rig.clients[0].revokes, 1);
  EXPECT_EQ(rig.machine->pcpu(0)->current(), rig.vm->vcpu(0));

  rig.sim.At(Ms(2), [&] { rig.machine->SetPcpuSpeed(0, 1.0); });
  rig.sim.RunUntil(Ms(3));
  EXPECT_EQ(rig.machine->EffectiveCapacity(), Bandwidth::Cpus(2));
}

// ---- Degraded wrap layout ----

TEST(WrapAroundDegraded, SkipsDeadCoresAndStretchesThrottledOnes) {
  // 3 cores: full, dead, half speed. 2 items of 1 ms effective each.
  std::vector<WrapItem> items{{0, Ms(1)}, {1, Ms(1)}};
  std::vector<TimeNs> occupied{0, 0, 0};
  std::vector<int64_t> speeds{Bandwidth::kUnit, 0, Bandwidth::kUnit / 2};
  std::vector<WrapSegment> segs = WrapAroundDegraded(items, Ms(2), occupied, speeds);

  std::vector<TimeNs> fill(3, 0);
  std::vector<TimeNs> eff(2, 0);
  for (const WrapSegment& s : segs) {
    ASSERT_NE(s.pcpu, 1) << "segment laid onto a dead core";
    ASSERT_GE(s.end, s.start);
    fill[s.pcpu] += s.end - s.start;
    eff[s.item_id] += SpeedWallToWork(s.end - s.start, speeds[s.pcpu]);
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_LE(fill[k], Ms(2));
  }
  // Each item's effective supply is within rounding slack of its allocation.
  for (int i = 0; i < 2; ++i) {
    EXPECT_GE(eff[i], Ms(1) - 8);
    EXPECT_LE(eff[i], Ms(1) + 8);
  }
}

TEST(WrapAroundDegraded, AllFullSpeedMatchesHomogeneousLayout) {
  std::vector<WrapItem> items{{0, Us(700)}, {1, Us(600)}, {2, Us(400)}};
  std::vector<TimeNs> occupied{Us(100), 0};
  std::vector<int64_t> speeds{Bandwidth::kUnit, Bandwidth::kUnit};
  std::vector<WrapSegment> a = WrapAroundDegraded(items, Ms(1), occupied, speeds);
  std::vector<WrapSegment> b = WrapAroundFrom(items, Ms(1), occupied);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item_id, b[i].item_id);
    EXPECT_EQ(a[i].pcpu, b[i].pcpu);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(WrapAroundDegraded, HeterogeneousSpeedsConserveEffectiveSupply) {
  // Demand sized to the surviving effective capacity of {1.0, 0.6, 0.3, dead}.
  TimeNs slice = Ms(10);
  std::vector<int64_t> speeds{Bandwidth::kUnit, 600000000, 300000000, 0};
  TimeNs eff_total = slice + SpeedWallToWork(slice, speeds[1]) +
                     SpeedWallToWork(slice, speeds[2]);
  std::vector<WrapItem> items;
  TimeNs each = eff_total / 5;
  for (int i = 0; i < 5; ++i) {
    items.push_back(WrapItem{i, each});
  }
  std::vector<TimeNs> occupied(4, 0);
  std::vector<WrapSegment> segs = WrapAroundDegraded(items, slice, occupied, speeds);

  std::vector<TimeNs> fill(4, 0);
  std::vector<TimeNs> eff(5, 0);
  for (const WrapSegment& s : segs) {
    ASSERT_NE(s.pcpu, 3);
    fill[s.pcpu] += s.end - s.start;
    eff[s.item_id] += SpeedWallToWork(s.end - s.start, speeds[s.pcpu]);
  }
  for (int k = 0; k < 4; ++k) {
    EXPECT_LE(fill[k], slice) << "pcpu " << k << " overfilled";
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_GE(eff[i], each - 16) << "item " << i << " shortchanged";
  }
}

// ---- FaultPlan validation ----

TEST(FaultPlanValidate, AcceptsAWellFormedPlan) {
  FaultPlan plan;
  plan.hypercall_outages.push_back({Sec(1), Sec(2)});
  plan.hypercall_outages.push_back({Sec(3), Sec(4)});
  plan.vm_failures.push_back({0, Sec(5), Sec(6)});
  FaultPlan::PcpuFault f;
  f.kind = FaultPlan::PcpuFault::Kind::kTransientOffline;
  f.pcpu = 1;
  f.at = Sec(1);
  f.until = Sec(2);
  plan.pcpu_faults.push_back(f);
  EXPECT_EQ(plan.Validate(4), "");
}

TEST(FaultPlanValidate, NamesTheOffendingEntry) {
  FaultPlan plan;
  plan.hypercall_outages.push_back({Sec(2), Sec(1)});
  EXPECT_NE(plan.Validate(4).find("hypercall_outages[0]"), std::string::npos);

  FaultPlan overlap;
  overlap.hypercall_outages.push_back({Sec(1), Sec(3)});
  overlap.hypercall_outages.push_back({Sec(2), Sec(4)});
  EXPECT_NE(overlap.Validate(4).find("overlaps"), std::string::npos);

  FaultPlan range;
  FaultPlan::PcpuFault f;
  f.pcpu = 4;
  f.at = Sec(1);
  range.pcpu_faults.push_back(f);
  EXPECT_NE(range.Validate(4).find("pcpu_faults[0]"), std::string::npos);
  EXPECT_NE(range.Validate(4).find("out of range"), std::string::npos);

  FaultPlan speed;
  FaultPlan::PcpuFault d;
  d.kind = FaultPlan::PcpuFault::Kind::kDegrade;
  d.pcpu = 0;
  d.at = Sec(1);
  d.until = Sec(2);
  d.speed = 1.5;
  speed.pcpu_faults.push_back(d);
  EXPECT_NE(speed.Validate(4).find("speed"), std::string::npos);
}

TEST(FaultPlanValidate, RejectsOverlappingWindowsOnTheSameCore) {
  FaultPlan plan;
  FaultPlan::PcpuFault dead;  // Permanent: occupies [at, forever).
  dead.kind = FaultPlan::PcpuFault::Kind::kPermanentFailure;
  dead.pcpu = 2;
  dead.at = Sec(5);
  plan.pcpu_faults.push_back(dead);
  FaultPlan::PcpuFault later;
  later.kind = FaultPlan::PcpuFault::Kind::kTransientOffline;
  later.pcpu = 2;
  later.at = Sec(7);
  later.until = Sec(8);
  plan.pcpu_faults.push_back(later);
  EXPECT_NE(plan.Validate(4).find("overlaps"), std::string::npos);

  // Same windows on different cores are fine.
  plan.pcpu_faults[1].pcpu = 3;
  EXPECT_EQ(plan.Validate(4), "");
}

TEST(FaultPlanValidate, ConstructionDiesOnInvalidPlan) {
  Simulator sim;
  MachineConfig mcfg;
  mcfg.num_pcpus = 2;
  Machine machine(&sim, mcfg);
  FaultPlan plan;
  FaultPlan::PcpuFault f;
  f.pcpu = 7;  // Machine only has 2.
  plan.pcpu_faults.push_back(f);
  EXPECT_DEATH(FaultInjector(&machine, plan), "invalid FaultPlan");
}

// ---- Injector event scheduling ----

TEST(FaultInjector, FiresPcpuEventsOnSchedule) {
  Simulator sim;
  MachineConfig mcfg;
  mcfg.num_pcpus = 3;
  Machine machine(&sim, mcfg);
  machine.SetScheduler(std::make_unique<DedicatedScheduler>());
  machine.Start();

  FaultPlan plan;
  FaultPlan::PcpuFault outage;
  outage.kind = FaultPlan::PcpuFault::Kind::kTransientOffline;
  outage.pcpu = 1;
  outage.at = Ms(10);
  outage.until = Ms(30);
  plan.pcpu_faults.push_back(outage);
  FaultPlan::PcpuFault throttle;
  throttle.kind = FaultPlan::PcpuFault::Kind::kDegrade;
  throttle.pcpu = 2;
  throttle.at = Ms(20);
  throttle.until = Ms(40);
  throttle.speed = 0.25;
  plan.pcpu_faults.push_back(throttle);
  FaultInjector injector(&machine, plan);
  injector.Arm();

  sim.RunUntil(Ms(15));
  EXPECT_FALSE(machine.pcpu(1)->online());
  EXPECT_EQ(injector.stats().pcpu_offline_events, 1u);

  sim.RunUntil(Ms(25));
  EXPECT_EQ(machine.pcpu(2)->speed_ppb(), Bandwidth::kUnit / 4);
  EXPECT_EQ(injector.stats().pcpu_degrade_events, 1u);

  sim.RunUntil(Ms(50));
  EXPECT_TRUE(machine.pcpu(1)->online());
  EXPECT_EQ(machine.pcpu(2)->speed_ppb(), Bandwidth::kUnit);
  EXPECT_EQ(injector.stats().pcpu_online_events, 1u);
  EXPECT_EQ(injector.stats().pcpu_heal_events, 1u);
}

// ---- End-to-end recovery ----

ExperimentConfig RecoveryConfig() {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine.num_pcpus = 4;
  cfg.dpwrap.pcpu_recovery.enabled = true;
  cfg.audit.enabled = true;
  return cfg;
}

TEST(PcpuRecovery, ReplansOffTheDeadCoreAndAuditsClean) {
  ExperimentConfig cfg = RecoveryConfig();
  FaultPlan::PcpuFault outage;
  outage.kind = FaultPlan::PcpuFault::Kind::kTransientOffline;
  outage.pcpu = 3;
  outage.at = Ms(50);
  outage.until = Ms(150);
  cfg.faults.pcpu_faults.push_back(outage);

  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("g", 3);
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  for (int i = 0; i < 3; ++i) {
    rtas.push_back(std::make_unique<PeriodicRta>(
        g, "t" + std::to_string(i), RtaParams{Ms(4), Ms(10)}));
    rtas.back()->Start(0, Ms(200));
  }
  exp.Run(Ms(200));

  EXPECT_GE(exp.dpwrap()->capacity_replans(), 2u);  // Offline + re-online.
  EXPECT_GT(exp.auditor()->checks_run(), 0u);
  EXPECT_EQ(exp.auditor()->total_violations(), 0u);
  ResilienceCounters rc = exp.resilience();
  EXPECT_EQ(rc.pcpu_offline_events, 1u);
  EXPECT_EQ(rc.pcpu_online_events, 1u);
  EXPECT_EQ(rc.capacity_replans, exp.dpwrap()->capacity_replans());
}

TEST(PcpuRecovery, DegradedPlanNeverExceedsEffectiveCapacity) {
  ExperimentConfig cfg = RecoveryConfig();
  FaultPlan::PcpuFault throttle;
  throttle.kind = FaultPlan::PcpuFault::Kind::kDegrade;
  throttle.pcpu = 0;
  throttle.at = Ms(30);
  throttle.speed = 0.5;  // Forever: the whole run past 30 ms is degraded.
  cfg.faults.pcpu_faults.push_back(throttle);

  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("g", 2);
  std::vector<std::unique_ptr<PeriodicRta>> rtas;
  for (int i = 0; i < 2; ++i) {
    rtas.push_back(std::make_unique<PeriodicRta>(
        g, "t" + std::to_string(i), RtaParams{Ms(3), Ms(10)}));
    rtas.back()->Start(0, Ms(200));
  }
  exp.Run(Ms(200));
  EXPECT_GT(exp.auditor()->checks_run(), 0u);
  EXPECT_EQ(exp.auditor()->total_violations(), 0u);
  EXPECT_EQ(exp.resilience().pcpu_degrade_events, 1u);
}

TEST(PcpuRecovery, FrozenLayoutKeepsNominalCapacity) {
  // Default (recovery off): capacity events change nothing scheduler-side.
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine.num_pcpus = 2;
  FaultPlan::PcpuFault outage;
  outage.kind = FaultPlan::PcpuFault::Kind::kPermanentFailure;
  outage.pcpu = 1;
  outage.at = Ms(20);
  cfg.faults.pcpu_faults.push_back(outage);

  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("g", 1);
  PeriodicRta rta(g, "t", RtaParams{Ms(2), Ms(10)});
  rta.Start(0, Ms(100));
  exp.Run(Ms(100));
  EXPECT_EQ(exp.dpwrap()->capacity_replans(), 0u);
  EXPECT_FALSE(exp.machine().pcpu(1)->online());
  EXPECT_EQ(exp.machine().EffectiveCapacity(), Bandwidth::Cpus(1));
}

}  // namespace
}  // namespace rtvirt

// Shared test helpers: trivial host schedulers that isolate guest-level
// logic from host-level scheduling policy.

#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "src/hv/machine.h"

namespace rtvirt {

// Pins VCPU k (in insertion order) to PCPU k: every VCPU effectively owns a
// dedicated processor, so guest behaviour is observable without host policy.
class DedicatedScheduler : public HostScheduler {
 public:
  std::string_view name() const override { return "dedicated-test"; }
  void VcpuInserted(Vcpu* v) override {
    slots_.push_back(v);
  }
  void VcpuRemoved(Vcpu* v) override {
    std::replace(slots_.begin(), slots_.end(), v, static_cast<Vcpu*>(nullptr));
  }
  void VcpuWake(Vcpu* v) override {
    int slot = SlotOf(v);
    if (slot >= 0 && slot < machine_->num_pcpus()) {
      machine_->pcpu(slot)->RequestReschedule();
    }
  }
  void VcpuBlock(Vcpu* v) override { (void)v; }
  ScheduleDecision PickNext(Pcpu* pcpu) override {
    if (pcpu->id() < static_cast<int>(slots_.size())) {
      Vcpu* v = slots_[pcpu->id()];
      if (v != nullptr && (v->runnable() || (v->running() && v->pcpu() == pcpu))) {
        return {v, kTimeNever};
      }
    }
    return {nullptr, kTimeNever};
  }

 private:
  int SlotOf(const Vcpu* v) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i] == v) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  std::vector<Vcpu*> slots_;
};

inline MachineConfig ZeroCostMachine(int pcpus) {
  MachineConfig cfg;
  cfg.num_pcpus = pcpus;
  cfg.context_switch_cost = 0;
  cfg.migration_cost = 0;
  cfg.hypercall_cost = 0;
  return cfg;
}

}  // namespace rtvirt

#endif  // TESTS_TEST_UTIL_H_

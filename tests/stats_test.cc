#include "src/sim/stats.h"

#include <gtest/gtest.h>

namespace rtvirt {
namespace {

TEST(Samples, BasicMoments) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_NEAR(s.Stddev(), 2.138, 0.001);
}

TEST(Samples, NearestRankPercentile) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99.9), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1), 1.0);
}

TEST(Samples, PercentileIsSmallestValueCoveringFraction) {
  Samples s;
  for (int i = 0; i < 999; ++i) {
    s.Add(1.0);
  }
  s.Add(100.0);
  // 99.9% of samples are <= 1.0.
  EXPECT_DOUBLE_EQ(s.Percentile(99.9), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99.95), 100.0);
}

TEST(Samples, FractionAtMost) {
  Samples s;
  for (int i = 1; i <= 10; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.FractionAtMost(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.FractionAtMost(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.FractionAtMost(10.0), 1.0);
}

TEST(Samples, CdfMonotone) {
  Samples s;
  for (int i = 100; i > 0; --i) {
    s.Add(i * 0.5);
  }
  auto cdf = s.Cdf(20);
  ASSERT_EQ(cdf.size(), 20u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].fraction, cdf[i].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 50.0);
}

TEST(Samples, EmptyIsSafe) {
  Samples s;
  EXPECT_EQ(s.Percentile(99), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_TRUE(s.Cdf(10).empty());
}

TEST(Samples, AddAfterQueryResorts) {
  Samples s;
  s.Add(5.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  s.Add(0.5);
  EXPECT_DOUBLE_EQ(s.Min(), 0.5);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 5; ++i) {
    h.Add(3.5);
  }
  h.Add(-1.0);
  h.Add(25.0);
  EXPECT_EQ(h.bucket(3), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.BucketLow(3), 3.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(3), 4.0);
  EXPECT_FALSE(h.Render(40).empty());
}

}  // namespace
}  // namespace rtvirt

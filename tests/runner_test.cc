// Experiment harness wiring: framework selection, scheduler installation,
// guest/channel setup, and run control.

#include "src/runner/experiment.h"

#include <gtest/gtest.h>

#include "src/metrics/deadline_monitor.h"
#include "src/workloads/periodic.h"

namespace rtvirt {
namespace {

TEST(ExperimentTest, InstallsTheMatchingScheduler) {
  {
    Experiment e(ExperimentConfig{});
    EXPECT_NE(e.dpwrap(), nullptr);
    EXPECT_EQ(e.server_edf(), nullptr);
    EXPECT_EQ(e.credit(), nullptr);
  }
  {
    ExperimentConfig cfg;
    cfg.framework = Framework::kRtXen;
    Experiment e(cfg);
    EXPECT_NE(e.server_edf(), nullptr);
    EXPECT_EQ(e.dpwrap(), nullptr);
  }
  {
    ExperimentConfig cfg;
    cfg.framework = Framework::kCredit;
    Experiment e(cfg);
    EXPECT_NE(e.credit(), nullptr);
  }
}

TEST(ExperimentTest, FrameworkNames) {
  EXPECT_STREQ(FrameworkName(Framework::kRtvirt), "RTVirt");
  EXPECT_STREQ(FrameworkName(Framework::kRtXen), "RT-Xen");
  EXPECT_STREQ(FrameworkName(Framework::kCredit), "Credit");
  EXPECT_STREQ(FrameworkName(Framework::kVanillaEdf), "Vanilla-EDF");
}

TEST(ExperimentTest, RtvirtGuestsGetTheCrossLayerChannel) {
  Experiment e(ExperimentConfig{});
  GuestOs* g = e.AddGuest("vm", 1);
  // The channel forwards an admission request to the DP-WRAP host; the inert
  // default policy would leave the host reservation at zero.
  Task* t = g->CreateTask("t");
  ASSERT_EQ(g->SchedSetAttr(t, RtaParams{Ms(2), Ms(10), false}), kGuestOk);
  EXPECT_GT(e.dpwrap()->total_reserved(), Bandwidth::Zero());
}

TEST(ExperimentTest, BaselineGuestsDoNot) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kCredit;
  Experiment e(cfg);
  GuestOs* g = e.AddGuest("vm", 1);
  Task* t = g->CreateTask("t");
  // Registration succeeds locally (host-unaware, traditional architecture).
  EXPECT_EQ(g->SchedSetAttr(t, RtaParams{Ms(2), Ms(10), false}), kGuestOk);
}

TEST(ExperimentTest, RunIsIdempotentAcrossSegments) {
  Experiment e(ExperimentConfig{});
  GuestOs* g = e.AddGuest("vm", 1);
  DeadlineMonitor mon;
  PeriodicRta rta(g, "rta", RtaParams{Ms(1), Ms(10), false});
  rta.task()->set_observer(&mon);
  rta.Start(0, Ms(100));
  e.Run(Ms(50));
  uint64_t mid = mon.total_completed();
  e.Run(Ms(150));
  EXPECT_GT(mid, 2u);
  EXPECT_EQ(mon.total_completed(), 10u);
  EXPECT_EQ(e.sim().Now(), Ms(150));
}

TEST(ExperimentTest, SeededRngIsDeterministic) {
  ExperimentConfig cfg;
  cfg.seed = 7;
  Experiment a(cfg);
  Experiment b(cfg);
  Rng ra = a.rng().Fork();
  Rng rb = b.rng().Fork();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ra.UniformInt(0, 1 << 30), rb.UniformInt(0, 1 << 30));
  }
}

}  // namespace
}  // namespace rtvirt

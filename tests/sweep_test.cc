// Supervised sweep runner (src/sweep): supervisor policy under a fake clock
// (backoff schedule, attempt budget + quarantine, watchdog deadline expiry,
// stale-attempt rejection), RTVIRT_CHECK capture, seed-stream derivation,
// and the threaded runner itself — merge determinism across jobs counts and
// completion orders, retry recovery, cooperative hang reclaim, serial
// fallback, and fork-per-shard containment of hard aborts and hangs.

#include <atomic>
#include <cstdlib>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/sweep/check_capture.h"
#include "src/sweep/proc_isolate.h"
#include "src/sweep/sweep.h"

namespace rtvirt::sweep {
namespace {

// Hand-driven clock: SleepMs advances time, so serial RunSweep backoffs are
// instantaneous and fully scripted.
class FakeClock : public Clock {
 public:
  int64_t NowMs() override { return now_ms_; }
  void SleepMs(int64_t ms) override { now_ms_ += ms; }
  void Advance(int64_t ms) { now_ms_ += ms; }

 private:
  int64_t now_ms_ = 0;
};

SweepConfig PolicyConfig() {
  SweepConfig cfg;
  cfg.max_attempts = 3;
  cfg.backoff_initial_ms = 10;
  cfg.backoff_factor = 2.0;
  cfg.backoff_cap_ms = 50;
  return cfg;
}

TEST(DeriveSeedTest, StreamsAreDistinctAndStable) {
  static_assert(DeriveSeed(1, 0) == DeriveSeed(1, 0));
  std::set<uint64_t> seen;
  for (uint64_t base : {1ull, 2ull, 42ull}) {
    for (uint64_t stream = 0; stream < 16; ++stream) {
      seen.insert(DeriveSeed(base, stream));
    }
  }
  EXPECT_EQ(seen.size(), 3u * 16u);  // No collisions across bases or streams.
  // Adjacent bases do not produce correlated low bits (the old seed*7919+17
  // style left neighboring seeds one small affine step apart).
  EXPECT_NE(DeriveSeed(1, 0) ^ DeriveSeed(2, 0), DeriveSeed(2, 0) ^ DeriveSeed(3, 0));
}

TEST(ShardSupervisorTest, BackoffScheduleGrowsAndSaturates) {
  ShardSupervisor sup(PolicyConfig(), 1);
  EXPECT_EQ(sup.BackoffDelayMs(1), 10);
  EXPECT_EQ(sup.BackoffDelayMs(2), 20);
  EXPECT_EQ(sup.BackoffDelayMs(3), 40);
  EXPECT_EQ(sup.BackoffDelayMs(4), 50);  // Capped.
  EXPECT_EQ(sup.BackoffDelayMs(9), 50);
}

TEST(ShardSupervisorTest, RetriesThenQuarantinesAtBudget) {
  ShardSupervisor sup(PolicyConfig(), 1);
  // Attempt 1 fails -> waiting with 10 ms backoff.
  ASSERT_EQ(sup.NextRunnable(0), 0);
  ShardSupervisor::AttemptTicket t = sup.BeginAttempt(0, 0);
  EXPECT_EQ(t.attempt, 1);
  EXPECT_TRUE(sup.RecordFailure(0, 1, AttemptKind::kFailed, "flaky", 5));
  EXPECT_FALSE(sup.AllDone());
  EXPECT_EQ(sup.NextRunnable(5), -1);  // Backoff not yet expired.
  EXPECT_EQ(sup.NextWakeMs(), 15);
  // Attempt 2 fails -> 20 ms backoff.
  ASSERT_EQ(sup.NextRunnable(15), 0);
  t = sup.BeginAttempt(0, 15);
  EXPECT_EQ(t.attempt, 2);
  EXPECT_TRUE(sup.RecordFailure(0, 2, AttemptKind::kFailed, "flaky", 16));
  EXPECT_EQ(sup.NextWakeMs(), 36);
  // Attempt 3 fails -> budget exhausted, quarantined: never runnable again.
  ASSERT_EQ(sup.NextRunnable(36), 0);
  t = sup.BeginAttempt(0, 36);
  EXPECT_EQ(t.attempt, 3);
  EXPECT_TRUE(sup.RecordFailure(0, 3, AttemptKind::kFailed, "flaky", 37));
  EXPECT_TRUE(sup.AllDone());
  EXPECT_EQ(sup.NextRunnable(1000), -1);

  SweepReport rep = sup.BuildReport();
  ASSERT_EQ(rep.shards.size(), 1u);
  EXPECT_EQ(rep.shards[0].outcome, Outcome::kExhausted);
  EXPECT_EQ(rep.shards[0].attempts, 3);
  EXPECT_EQ(rep.shards[0].reason, "flaky");
  EXPECT_EQ(rep.unresolved, 1);
  EXPECT_EQ(rep.retries, 2);
  EXPECT_FALSE(rep.ok());
}

TEST(ShardSupervisorTest, WatchdogDeadlineExpiryAndStaleResultRejection) {
  SweepConfig cfg = PolicyConfig();
  cfg.shard_deadline_ms = 100;
  ShardSupervisor sup(cfg, 2);
  ASSERT_EQ(sup.NextRunnable(0), 0);
  ShardSupervisor::AttemptTicket t = sup.BeginAttempt(0, 0);
  EXPECT_EQ(t.deadline_ms, 100);
  EXPECT_TRUE(sup.ExpiredAttempts(99).empty());
  std::vector<ShardSupervisor::AttemptTicket> expired = sup.ExpiredAttempts(101);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].shard, 0);

  // The watchdog times the attempt out; the stuck attempt's eventual result
  // and failure reports are both stale and must change nothing.
  EXPECT_TRUE(sup.RecordFailure(0, t.attempt, AttemptKind::kTimeout, "watchdog", 101));
  ShardResult late;
  late.report = "late";
  EXPECT_FALSE(sup.RecordResult(0, t.attempt, late, 150));
  EXPECT_FALSE(sup.RecordFailure(0, t.attempt, AttemptKind::kFailed, "late", 150));

  // The shard re-enters the queue after backoff and can still finish clean.
  ASSERT_EQ(sup.NextRunnable(111), 0);
  t = sup.BeginAttempt(0, 111);
  EXPECT_EQ(t.attempt, 2);
  ShardResult ok;
  ok.report = "r0";
  EXPECT_TRUE(sup.RecordResult(0, t.attempt, ok, 120));

  ASSERT_EQ(sup.NextRunnable(120), 1);
  t = sup.BeginAttempt(1, 120);
  EXPECT_TRUE(sup.RecordResult(1, t.attempt, ok, 130));
  EXPECT_TRUE(sup.AllDone());

  SweepReport rep = sup.BuildReport();
  EXPECT_EQ(rep.shards[0].outcome, Outcome::kClean);
  EXPECT_TRUE(rep.shards[0].recovered);
  EXPECT_EQ(rep.shards[0].last_failure, AttemptKind::kTimeout);
  EXPECT_EQ(rep.shards[0].report, "r0");
  EXPECT_EQ(rep.timeouts, 1);
  EXPECT_EQ(rep.clean, 2);
  EXPECT_EQ(rep.recovered, 1);
}

TEST(ShardSupervisorTest, SingleAttemptBudgetKeepsTerminalFailureNames) {
  SweepConfig cfg = PolicyConfig();
  cfg.max_attempts = 1;
  ShardSupervisor sup(cfg, 2);
  sup.BeginAttempt(sup.NextRunnable(0), 0);
  EXPECT_TRUE(sup.RecordFailure(0, 1, AttemptKind::kFailed, "bad", 1));
  sup.BeginAttempt(sup.NextRunnable(1), 1);
  EXPECT_TRUE(sup.RecordFailure(1, 1, AttemptKind::kTimeout, "hung", 2));
  SweepReport rep = sup.BuildReport();
  EXPECT_EQ(rep.shards[0].outcome, Outcome::kFailed);
  EXPECT_EQ(rep.shards[1].outcome, Outcome::kTimeout);
  EXPECT_EQ(rep.retries, 0);
}

TEST(CheckCaptureTest, CapturesDiagnosticAndRestoresHandler) {
  bool caught = false;
  {
    ScopedCheckCapture capture;
    try {
      RTVIRT_CHECK(1 + 1 == 3, "math is broken: %d", 42);
    } catch (const CheckFailure& f) {
      caught = true;
      EXPECT_NE(f.message.find("fatal invariant violation"), std::string::npos);
      EXPECT_NE(f.message.find("1 + 1 == 3"), std::string::npos);
      EXPECT_NE(f.message.find("math is broken: 42"), std::string::npos);
      EXPECT_NE(f.message.find("sweep_test.cc"), std::string::npos);
    }
  }
  EXPECT_TRUE(caught);
  // Outside the scope the handler is gone: a failure aborts again.
  EXPECT_DEATH(RTVIRT_CHECK(false, "uncaptured"), "fatal invariant violation");
}

TEST(CheckCaptureTest, NestedFailureDuringUnwindingAborts) {
  // The handler is cleared before it is invoked, so a second RTVIRT_CHECK
  // failure while the first is being handled cannot recurse — it aborts.
  EXPECT_DEATH(
      {
        ScopedCheckCapture capture;
        try {
          RTVIRT_CHECK(false, "first");
        } catch (const CheckFailure&) {
          RTVIRT_CHECK(false, "second, must abort");
        }
      },
      "second, must abort");
}

std::string DetReport(const ShardContext& ctx) {
  return "shard=" + std::to_string(ctx.shard) + " seed=" + std::to_string(ctx.seed);
}

TEST(RunSweepTest, MergedReportByteIdenticalAcrossJobsCounts) {
  // Completion order is shuffled by shard-dependent sleeps; the merged report
  // and every per-shard report must not care.
  const ShardFn fn = [](const ShardContext& ctx) {
    RealClock()->SleepMs((ctx.shard * 13) % 7);
    ShardResult r;
    r.report = DetReport(ctx);
    return r;
  };
  SweepConfig cfg;
  cfg.base_seed = 99;
  std::string merged_serial;
  std::vector<std::string> reports_serial;
  for (int jobs : {1, 4, 8}) {
    cfg.jobs = jobs;
    SweepReport rep = RunSweep(cfg, 9, fn);
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.serial_fallback, jobs == 1);
    std::vector<std::string> reports;
    for (const ShardOutcome& o : rep.shards) {
      reports.push_back(o.report);
    }
    if (jobs == 1) {
      merged_serial = rep.Merged();
      reports_serial = reports;
      // Shard seeds come from the centralized derivation.
      for (int s = 0; s < 9; ++s) {
        EXPECT_EQ(rep.shards[s].report,
                  "shard=" + std::to_string(s) +
                      " seed=" + std::to_string(DeriveSeed(99, s)));
      }
    } else {
      EXPECT_EQ(rep.Merged(), merged_serial) << "jobs=" << jobs;
      EXPECT_EQ(reports, reports_serial) << "jobs=" << jobs;
    }
  }
}

TEST(RunSweepTest, FlakyShardRecoversWithinBudget) {
  FakeClock clock;
  SweepConfig cfg;
  cfg.jobs = 1;
  cfg.max_attempts = 3;
  cfg.clock = &clock;
  SweepReport rep = RunSweep(cfg, 3, [](const ShardContext& ctx) {
    ShardResult r;
    if (ctx.shard == 1 && ctx.attempt < 3) {
      r.ok = false;
      r.reason = "flaky attempt " + std::to_string(ctx.attempt);
      return r;
    }
    r.report = DetReport(ctx);
    return r;
  });
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.clean, 3);
  EXPECT_EQ(rep.recovered, 1);
  EXPECT_EQ(rep.retries, 2);
  EXPECT_TRUE(rep.shards[1].recovered);
  EXPECT_EQ(rep.shards[1].attempts, 3);
  EXPECT_EQ(rep.shards[1].last_failure, AttemptKind::kFailed);
  EXPECT_EQ(rep.shards[1].reason, "flaky attempt 2");
}

TEST(RunSweepTest, ExhaustedShardIsCountedNotDropped) {
  FakeClock clock;
  SweepConfig cfg;
  cfg.jobs = 1;
  cfg.max_attempts = 2;
  cfg.clock = &clock;
  SweepReport rep = RunSweep(cfg, 2, [](const ShardContext& ctx) {
    ShardResult r;
    if (ctx.shard == 0) {
      r.ok = false;
      r.reason = "always broken";
    } else {
      r.report = DetReport(ctx);
    }
    return r;
  });
  EXPECT_FALSE(rep.ok());
  ASSERT_EQ(rep.shards.size(), 2u);
  EXPECT_EQ(rep.shards[0].outcome, Outcome::kExhausted);
  EXPECT_EQ(rep.shards[0].attempts, 2);
  EXPECT_EQ(rep.unresolved, 1);
  EXPECT_EQ(rep.clean, 1);
  EXPECT_NE(rep.Merged().find("exhausted"), std::string::npos);
}

TEST(RunSweepTest, CheckFailureInShardIsContainedInThreadMode) {
  SweepConfig cfg;
  cfg.jobs = 2;
  cfg.max_attempts = 2;
  SweepReport rep = RunSweep(cfg, 2, [](const ShardContext& ctx) {
    RTVIRT_CHECK(ctx.shard != 1 || ctx.attempt > 1, "invariant dies on shard %d",
                 ctx.shard);
    ShardResult r;
    r.report = DetReport(ctx);
    return r;
  });
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.check_failures, 1);
  EXPECT_TRUE(rep.shards[1].recovered);
  EXPECT_EQ(rep.shards[1].last_failure, AttemptKind::kCheckFailure);
  EXPECT_NE(rep.shards[1].reason.find("invariant dies on shard 1"), std::string::npos);
}

TEST(RunSweepTest, CooperativeHangIsReclaimedByWatchdog) {
  SweepConfig cfg;
  cfg.jobs = 2;
  cfg.max_attempts = 2;
  cfg.shard_deadline_ms = 1000;  // Headroom for sanitizer/shared-core runs.
  cfg.backoff_initial_ms = 1;
  SweepReport rep = RunSweep(cfg, 2, [](const ShardContext& ctx) {
    ShardResult r;
    if (ctx.shard == 0 && ctx.attempt == 1) {
      // Hang until the watchdog cancels this attempt (bounded for safety).
      for (int i = 0; i < 2000 && !ctx.Cancelled(); ++i) {
        RealClock()->SleepMs(5);
      }
      r.ok = false;
      r.reason = "cancelled";
      return r;
    }
    r.report = DetReport(ctx);
    return r;
  });
  EXPECT_TRUE(rep.ok()) << rep.Merged();
  EXPECT_GE(rep.timeouts, 1);
  EXPECT_TRUE(rep.shards[0].recovered);
  EXPECT_EQ(rep.shards[0].last_failure, AttemptKind::kTimeout);
  EXPECT_EQ(rep.leaked_threads, 0);  // The hung body honored the cancel flag.
}

TEST(RunSweepTest, ProcessIsolationRoundTripsResults) {
  if (!ProcessIsolationSupported()) {
    GTEST_SKIP() << "no fork() on this platform";
  }
  SweepConfig cfg;
  cfg.jobs = 2;
  cfg.isolation = Isolation::kProcess;
  cfg.max_attempts = 1;
  SweepReport rep = RunSweep(cfg, 3, [](const ShardContext& ctx) {
    ShardResult r;
    if (ctx.shard == 2) {
      r.ok = false;
      r.reason = "soft failure from child";
      return r;
    }
    r.report = DetReport(ctx);
    return r;
  });
  EXPECT_EQ(rep.clean, 2);
  EXPECT_EQ(rep.shards[0].report, "shard=0 seed=" + std::to_string(DeriveSeed(1, 0)));
  EXPECT_EQ(rep.shards[2].outcome, Outcome::kFailed);
  EXPECT_EQ(rep.shards[2].reason, "soft failure from child");
}

TEST(RunSweepTest, ProcessIsolationContainsHardAbort) {
  if (!ProcessIsolationSupported()) {
    GTEST_SKIP() << "no fork() on this platform";
  }
  SweepConfig cfg;
  cfg.jobs = 1;
  cfg.isolation = Isolation::kProcess;
  cfg.max_attempts = 2;
  cfg.backoff_initial_ms = 1;
  SweepReport rep = RunSweep(cfg, 1, [](const ShardContext& ctx) {
    if (ctx.attempt == 1) {
      std::abort();  // Runs in the forked child only.
    }
    ShardResult r;
    r.report = DetReport(ctx);
    return r;
  });
  EXPECT_TRUE(rep.ok()) << rep.Merged();
  EXPECT_EQ(rep.crashes, 1);
  EXPECT_TRUE(rep.shards[0].recovered);
  EXPECT_EQ(rep.shards[0].last_failure, AttemptKind::kCrash);
  EXPECT_NE(rep.shards[0].reason.find("signal"), std::string::npos);
}

TEST(RunSweepTest, ProcessIsolationKillsHardHang) {
  if (!ProcessIsolationSupported()) {
    GTEST_SKIP() << "no fork() on this platform";
  }
  SweepConfig cfg;
  cfg.jobs = 1;
  cfg.isolation = Isolation::kProcess;
  cfg.max_attempts = 2;
  cfg.shard_deadline_ms = 500;
  cfg.backoff_initial_ms = 1;
  SweepReport rep = RunSweep(cfg, 1, [](const ShardContext& ctx) {
    if (ctx.attempt == 1) {
      // A hang no cancel flag can reach — only SIGKILL reclaims it.
      for (int i = 0; i < 10000; ++i) {
        RealClock()->SleepMs(10);
      }
    }
    ShardResult r;
    r.report = DetReport(ctx);
    return r;
  });
  EXPECT_TRUE(rep.ok()) << rep.Merged();
  EXPECT_GE(rep.timeouts, 1);
  EXPECT_TRUE(rep.shards[0].recovered);
  EXPECT_NE(rep.shards[0].reason.find("watchdog"), std::string::npos);
}

}  // namespace
}  // namespace rtvirt::sweep

#include "src/rtvirt/wrap_layout.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/common/rng.h"

namespace rtvirt {
namespace {

// Checks all DP-WRAP layout invariants for a given item set.
void CheckInvariants(const std::vector<WrapItem>& items, TimeNs slice_len, int pcpus) {
  auto segments = WrapAround(items, slice_len, pcpus);

  // Per-item totals match allocations.
  std::map<int, TimeNs> per_item;
  std::map<int, std::vector<WrapSegment>> item_segments;
  for (const WrapSegment& s : segments) {
    EXPECT_LT(s.start, s.end);
    EXPECT_GE(s.start, 0);
    EXPECT_LE(s.end, slice_len);
    EXPECT_GE(s.pcpu, 0);
    EXPECT_LT(s.pcpu, pcpus);
    per_item[s.item_id] += s.end - s.start;
    item_segments[s.item_id].push_back(s);
  }
  for (const WrapItem& item : items) {
    EXPECT_EQ(per_item[item.id], item.alloc) << "item " << item.id;
  }

  // Per-PCPU segments are disjoint.
  std::map<int, std::vector<WrapSegment>> per_pcpu;
  for (const WrapSegment& s : segments) {
    per_pcpu[s.pcpu].push_back(s);
  }
  for (auto& [pcpu, segs] : per_pcpu) {
    std::sort(segs.begin(), segs.end(),
              [](const WrapSegment& a, const WrapSegment& b) { return a.start < b.start; });
    for (size_t i = 1; i < segs.size(); ++i) {
      EXPECT_LE(segs[i - 1].end, segs[i].start) << "overlap on pcpu " << pcpu;
    }
  }

  // Split items: at most pcpus-1, pieces on distinct PCPUs with no
  // wall-clock overlap.
  int splits = 0;
  for (auto& [id, segs] : item_segments) {
    if (segs.size() > 1) {
      ++splits;
      ASSERT_EQ(segs.size(), 2u) << "an item can straddle at most one cut";
      EXPECT_NE(segs[0].pcpu, segs[1].pcpu);
      const WrapSegment& a = segs[0].start <= segs[1].start ? segs[0] : segs[1];
      const WrapSegment& b = segs[0].start <= segs[1].start ? segs[1] : segs[0];
      EXPECT_LE(a.end, b.start) << "split pieces of item " << id << " overlap in time";
    }
  }
  EXPECT_LE(splits, pcpus - 1);
}

TEST(WrapLayout, EmptyItems) {
  EXPECT_TRUE(WrapAround(std::vector<WrapItem>{}, Us(250), 4).empty());
}

TEST(WrapLayout, ZeroAllocationProducesNoSegments) {
  std::vector<WrapItem> items{{0, 0}, {1, Us(100)}, {2, 0}};
  auto segs = WrapAround(items, Us(250), 2);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].item_id, 1);
}

TEST(WrapLayout, SingleItemFullSlice) {
  std::vector<WrapItem> items{{7, Us(250)}};
  auto segs = WrapAround(items, Us(250), 3);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].pcpu, 0);
  EXPECT_EQ(segs[0].start, 0);
  EXPECT_EQ(segs[0].end, Us(250));
}

TEST(WrapLayout, ExactPackNoSplits) {
  // Items exactly filling each chunk never split.
  std::vector<WrapItem> items{{0, 100}, {1, 100}, {2, 100}};
  auto segs = WrapAround(items, 100, 3);
  ASSERT_EQ(segs.size(), 3u);
  for (const auto& s : segs) {
    EXPECT_EQ(s.end - s.start, 100);
  }
  CheckInvariants(items, 100, 3);
}

TEST(WrapLayout, StraddlingItemSplitsWithoutTimeOverlap) {
  std::vector<WrapItem> items{{0, 70}, {1, 60}, {2, 40}};
  CheckInvariants(items, 100, 2);
  auto segs = WrapAround(items, 100, 2);
  // Item 1 straddles the cut: [70,100) on pcpu0 and [0,30) on pcpu1.
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[1].item_id, 1);
  EXPECT_EQ(segs[1].pcpu, 0);
  EXPECT_EQ(segs[1].start, 70);
  EXPECT_EQ(segs[2].item_id, 1);
  EXPECT_EQ(segs[2].pcpu, 1);
  EXPECT_EQ(segs[2].end, 30);
}

TEST(WrapLayout, FullUtilizationManyItems) {
  // 15 PCPUs fully utilized by 45 equal items.
  std::vector<WrapItem> items;
  for (int i = 0; i < 45; ++i) {
    items.push_back({i, 100});
  }
  CheckInvariants(items, 300, 15);
}

class WrapLayoutRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WrapLayoutRandomTest, InvariantsHoldOnRandomItemSets) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    int pcpus = static_cast<int>(rng.UniformInt(1, 16));
    TimeNs slice = rng.UniformInt(1000, 1000000);
    int n = static_cast<int>(rng.UniformInt(0, 40));
    std::vector<WrapItem> items;
    TimeNs budget = slice * pcpus;
    for (int i = 0; i < n && budget > 0; ++i) {
      TimeNs alloc = rng.UniformInt(0, std::min(slice, budget));
      items.push_back({i, alloc});
      budget -= alloc;
    }
    CheckInvariants(items, slice, pcpus);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WrapLayoutRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace rtvirt

// Mixed-criticality overload control tests: elastic compression (including
// backlog truncation), criticality-ordered shedding, the host pressure
// signal with reason-coded admissions, hysteresis-driven recovery (resume +
// re-inflation), and the inert-when-disabled guarantee.

#include <gtest/gtest.h>

#include "src/hv/hypercall.h"
#include "src/metrics/deadline_monitor.h"
#include "src/runner/experiment.h"
#include "src/rtvirt/dpwrap.h"
#include "src/workloads/periodic.h"
#include "tests/test_util.h"

namespace rtvirt {
namespace {

ExperimentConfig PureConfig(int pcpus) {
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine = ZeroCostMachine(pcpus);
  cfg.channel.budget_slack = 0;  // Exact reservations: admission math is exact.
  cfg.dpwrap.pick_cost = 0;
  cfg.dpwrap.replan_cost_base = 0;
  cfg.dpwrap.replan_cost_per_log = 0;
  return cfg;
}

GuestConfig OverloadGuest() {
  GuestConfig g;
  g.overload.enabled = true;
  return g;
}

RtaParams Elastic(TimeNs slice, TimeNs period, TimeNs min_slice, Criticality crit) {
  RtaParams p{slice, period};
  p.criticality = crit;
  p.min_slice = min_slice;
  return p;
}

// A HIGH newcomer that does not fit compresses an elastic LOW reservation to
// its minimum instead of being rejected.
TEST(OverloadAdmission, CompressesElasticLowerCriticality) {
  Experiment exp(PureConfig(1));
  GuestOs* g = exp.AddGuest("vm", 2, OverloadGuest());
  PeriodicRta lo(g, "lo", Elastic(Ms(8), Ms(10), Ms(4), Criticality::kLow));
  PeriodicRta hi(g, "hi", Elastic(Ms(5), Ms(10), 0, Criticality::kHigh));
  lo.Start(0, Sec(1));
  hi.Start(Ms(100), Sec(1));
  exp.Run(Ms(200));
  ASSERT_EQ(lo.admission_result(), kGuestOk);
  ASSERT_EQ(hi.admission_result(), kGuestOk);
  EXPECT_TRUE(lo.task()->compressed());
  EXPECT_EQ(lo.task()->EffectiveSlice(), Ms(4));
  EXPECT_GE(g->overload_stats().compressions, 1u);
  EXPECT_GE(g->overload_stats().overload_admissions, 1u);
}

// Compression truncates the queued backlog: jobs released at the full slice
// before the squeeze must not carry pre-compression work past it, or the
// compressed reservation (supply == compressed demand) could never drain
// them and every later job would inherit the tardiness.
TEST(OverloadAdmission, CompressionTruncatesQueuedWork) {
  Experiment exp(PureConfig(1));
  GuestOs* g = exp.AddGuest("vm", 2, OverloadGuest());
  DeadlineMonitor mon;
  PeriodicRta lo(g, "lo", Elastic(Ms(8), Ms(10), Ms(4), Criticality::kLow));
  PeriodicRta hi(g, "hi", Elastic(Ms(5), Ms(10), 0, Criticality::kHigh));
  lo.task()->set_observer(&mon);
  lo.Start(0, Sec(1));
  hi.Start(Ms(105), Sec(1));  // Mid-period: a full-slice LOW job is in flight.
  exp.Run(Sec(1));
  ASSERT_TRUE(lo.task()->compressed());
  // After the one transitional period the compressed task must be back to
  // meeting deadlines; allow the single in-flight job to be the only miss.
  EXPECT_GE(mon.total_completed(), 80u);
  EXPECT_LE(mon.total_misses(), 1u);
}

// When compression cannot free enough, the lowest-criticality task is shed
// (suspended, reservation released) and its job releases are dropped.
TEST(OverloadAdmission, ShedsLowestCriticalityWhenCompressionInsufficient) {
  Experiment exp(PureConfig(1));
  GuestOs* g = exp.AddGuest("vm", 2, OverloadGuest());
  PeriodicRta lo(g, "lo", Elastic(Ms(6), Ms(10), 0, Criticality::kLow));  // Inelastic.
  PeriodicRta hi(g, "hi", Elastic(Ms(8), Ms(10), 0, Criticality::kHigh));
  lo.Start(0, Sec(1));
  hi.Start(Ms(100), Sec(1));
  exp.Run(Ms(500));
  ASSERT_EQ(lo.admission_result(), kGuestOk);
  ASSERT_EQ(hi.admission_result(), kGuestOk);
  EXPECT_TRUE(lo.task()->shed());
  EXPECT_EQ(g->overload_stats().sheds, 1u);
  EXPECT_GT(g->overload_stats().shed_job_drops, 0u);
}

// Degradation at admission only sacrifices *strictly lower* criticality: a
// LOW newcomer cannot displace anything, and an equal-criticality newcomer
// cannot displace its peers.
TEST(OverloadAdmission, NeverSacrificesEqualOrHigherCriticality) {
  Experiment exp(PureConfig(1));
  GuestOs* g = exp.AddGuest("vm", 2, OverloadGuest());
  PeriodicRta a(g, "a", Elastic(Ms(6), Ms(10), Ms(3), Criticality::kMed));
  PeriodicRta b(g, "b", Elastic(Ms(8), Ms(10), 0, Criticality::kMed));
  a.Start(0, Sec(1));
  b.Start(Ms(100), Sec(1));
  exp.Run(Ms(200));
  ASSERT_EQ(a.admission_result(), kGuestOk);
  EXPECT_EQ(b.admission_result(), kGuestErrBusy);  // MED cannot squeeze MED.
  EXPECT_FALSE(a.task()->compressed());
  EXPECT_EQ(g->overload_stats().compressions, 0u);
  EXPECT_EQ(g->overload_stats().sheds, 0u);
}

// With every overload knob at its default (off), admission failure stays a
// plain rejection: nothing is compressed, shed, or counted.
TEST(OverloadAdmission, DisabledKnobsKeepBinaryAdmission) {
  Experiment exp(PureConfig(1));
  GuestOs* g = exp.AddGuest("vm", 2);  // Default GuestConfig: overload off.
  PeriodicRta lo(g, "lo", Elastic(Ms(8), Ms(10), Ms(4), Criticality::kLow));
  PeriodicRta hi(g, "hi", Elastic(Ms(5), Ms(10), 0, Criticality::kHigh));
  lo.Start(0, Sec(1));
  hi.Start(Ms(100), Sec(1));
  exp.Run(Ms(200));
  ASSERT_EQ(lo.admission_result(), kGuestOk);
  EXPECT_EQ(hi.admission_result(), kGuestErrBusy);
  EXPECT_FALSE(lo.task()->compressed());
  EXPECT_EQ(g->overload_stats().compressions, 0u);
  EXPECT_EQ(g->overload_stats().sheds, 0u);
}

// A rejected INC_BW tagged kBwReasonAdmission raises host pressure at the
// next overload scan; a rejected kBwReasonReinflate probe must not.
TEST(HostPressure, AdmissionRejectionRaisesPressureReinflateDoesNot) {
  for (int64_t reason : {kBwReasonAdmission, kBwReasonReinflate}) {
    ExperimentConfig cfg = PureConfig(1);
    cfg.dpwrap.overload.enabled = true;
    Experiment exp(cfg);
    GuestOs* g = exp.AddGuest("vm", 2);
    HypercallArgs args;
    args.op = SchedOp::kIncBw;
    args.vcpu_a = g->vm()->vcpu(0);
    // Below the high watermark, so only the rejection itself can raise
    // pressure — not the utilization.
    args.bw_a = Bandwidth::FromDouble(0.9);
    args.period_a = Ms(10);
    ASSERT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallOk);
    args.vcpu_a = g->vm()->vcpu(1);
    args.bw_a = Bandwidth::FromDouble(0.5);
    args.reason = reason;
    ASSERT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallNoBandwidth);
    exp.Run(Ms(20));  // Past the next overload scan.
    EXPECT_EQ(exp.dpwrap()->pressure(), reason == kBwReasonAdmission)
        << "reason=" << reason;
  }
}

// Re-inflation admissions are capped at the high watermark (new demand may
// use full capacity): a same-window race between two re-inflating guests is
// resolved by rejection instead of overshooting into a pressure/shed cycle.
TEST(HostPressure, ReinflateAdmissionCappedAtWatermark) {
  ExperimentConfig cfg = PureConfig(1);
  cfg.dpwrap.overload.enabled = true;
  cfg.dpwrap.overload.high_watermark = 0.9;
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 2);
  HypercallArgs args;
  args.op = SchedOp::kIncBw;
  args.vcpu_a = g->vm()->vcpu(0);
  args.bw_a = Bandwidth::FromDouble(0.85);
  args.period_a = Ms(10);
  ASSERT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallOk);
  args.vcpu_a = g->vm()->vcpu(1);
  args.bw_a = Bandwidth::FromDouble(0.1);  // 0.95 total: above the watermark.
  args.reason = kBwReasonReinflate;
  EXPECT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallNoBandwidth);
  args.reason = kBwReasonAdmission;  // New demand: full capacity applies.
  EXPECT_EQ(exp.machine().Hypercall(args.vcpu_a, args), kHypercallOk);
}

// Cross-layer recovery: host pressure sheds a LOW task for a HIGH newcomer;
// once the HIGH task leaves and pressure clears, the hysteresis loop resumes
// the shed task and re-inflates compressed reservations.
TEST(OverloadRecovery, ShedTaskResumesAndReinflatesAfterPressureClears) {
  ExperimentConfig cfg = PureConfig(1);
  cfg.dpwrap.overload.enabled = true;
  Experiment exp(cfg);
  GuestOs* g = exp.AddGuest("vm", 3, OverloadGuest());
  DeadlineMonitor mon;
  PeriodicRta lo(g, "lo", Elastic(Ms(3), Ms(10), Ms(2), Criticality::kLow));
  PeriodicRta lo2(g, "lo2", Elastic(Ms(3), Ms(10), 0, Criticality::kLow));
  PeriodicRta hi(g, "hi", Elastic(Ms(8), Ms(10), 0, Criticality::kHigh));
  lo.task()->set_observer(&mon);
  lo.Start(0, Sec(4));
  lo2.Start(0, Sec(4));
  hi.Start(Ms(500), Sec(2));  // Overloads, then leaves at t=2s.
  exp.Run(Sec(4));
  ASSERT_EQ(hi.admission_result(), kGuestOk);
  EXPECT_GE(g->overload_stats().sheds, 1u);
  EXPECT_GE(g->overload_stats().resumes, 1u);
  EXPECT_GE(g->overload_stats().expansions, 1u);
  // Fully recovered by the end: nothing still shed or compressed.
  EXPECT_FALSE(lo.task()->shed());
  EXPECT_FALSE(lo2.task()->shed());
  EXPECT_FALSE(lo.task()->compressed());
}

// Unregistering a shed task must not underflow the accounting or touch the
// host (its reservation was already released when it was shed).
TEST(OverloadRecovery, UnregisterWhileShedIsClean) {
  Experiment exp(PureConfig(1));
  GuestOs* g = exp.AddGuest("vm", 2, OverloadGuest());
  PeriodicRta lo(g, "lo", Elastic(Ms(6), Ms(10), 0, Criticality::kLow));
  PeriodicRta hi(g, "hi", Elastic(Ms(8), Ms(10), 0, Criticality::kHigh));
  lo.Start(0, Ms(300));  // Unregisters at t=300ms, while shed.
  hi.Start(Ms(100), Sec(1));
  exp.Run(Ms(500));
  ASSERT_TRUE(g->overload_stats().sheds == 1u);
  EXPECT_FALSE(lo.task()->shed());  // Unregister cleared the shed state.
  // The HIGH reservation is still the only one at the host.
  EXPECT_EQ(exp.dpwrap()->total_reserved(), Bandwidth::FromSlicePeriod(Ms(8), Ms(10)));
}

}  // namespace
}  // namespace rtvirt

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"

namespace rtvirt {
namespace {

// Both backends must honor the exact same (time, insertion-seq) contract, so
// every ordering/cancellation test runs against each of them.
class EventQueueBackends : public ::testing::TestWithParam<EventQueueKind> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, EventQueueBackends,
                         ::testing::Values(EventQueueKind::kCalendar,
                                           EventQueueKind::kHeap),
                         [](const auto& info) {
                           return info.param == EventQueueKind::kCalendar
                                      ? "Calendar"
                                      : "Heap";
                         });

TEST_P(EventQueueBackends, OrdersByTime) {
  EventQueue q(GetParam());
  std::vector<int> fired;
  q.Schedule(30, [&] { fired.push_back(3); });
  q.Schedule(10, [&] { fired.push_back(1); });
  q.Schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) {
    q.PopNext().callback();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueBackends, FifoWithinSameTimestamp) {
  EventQueue q(GetParam());
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(7, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) {
    q.PopNext().callback();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_P(EventQueueBackends, CancelPreventsFiring) {
  EventQueue q(GetParam());
  int fired = 0;
  auto id = q.Schedule(5, [&] { ++fired; });
  q.Schedule(6, [&] { ++fired; });
  q.Cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) {
    q.PopNext().callback();
  }
  EXPECT_EQ(fired, 1);
}

TEST_P(EventQueueBackends, CancelAfterFireIsNoop) {
  EventQueue q(GetParam());
  auto id = q.Schedule(1, [] {});
  q.PopNext().callback();
  q.Cancel(id);  // Must not corrupt the live count.
  EXPECT_TRUE(q.empty());
  q.Schedule(2, [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST_P(EventQueueBackends, DoubleCancelIsNoop) {
  EventQueue q(GetParam());
  auto id = q.Schedule(1, [] {});
  auto id2 = id;
  q.Cancel(id);
  q.Cancel(id2);
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueBackends, NextTimeSkipsCancelled) {
  EventQueue q(GetParam());
  auto id = q.Schedule(5, [] {});
  q.Schedule(9, [] {});
  q.Cancel(id);
  EXPECT_EQ(q.NextTime(), 9);
}

// Calendar arena nodes are recycled: an EventId held across its node's reuse
// by a later Schedule() must become inert, not cancel the new tenant. The
// generation stamp in the id is what makes this safe.
TEST(EventQueueCalendar, StaleCancelAfterNodeReuseIsNoop) {
  EventQueue q(EventQueueKind::kCalendar);
  auto stale = q.Schedule(1, [] {});
  q.PopNext().callback();  // Frees the node back to the arena.
  EXPECT_TRUE(q.empty());
  int fired = 0;
  q.Schedule(2, [&] { ++fired; });  // Reuses the freed node.
  q.Cancel(stale);                  // Generation mismatch: must be a no-op.
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) {
    q.PopNext().callback();
  }
  EXPECT_EQ(fired, 1);
}

// Growing through several calendar resizes (bucket-ring rebuilds with width
// retunes) must not perturb the (time, seq) total order.
TEST(EventQueueCalendar, OrderSurvivesResizes) {
  EventQueue q(EventQueueKind::kCalendar);
  // Deterministic scatter of timestamps with duplicates, far more entries
  // than the initial 64 buckets so the ring grows and retunes repeatedly.
  std::vector<int64_t> times;
  uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    times.push_back(static_cast<int64_t>(x >> 24) % 1000000);
  }
  std::vector<std::pair<int64_t, int>> fired;
  for (int i = 0; i < static_cast<int>(times.size()); ++i) {
    q.Schedule(times[i], [&fired, &times, i] {
      fired.push_back({times[i], i});
    });
  }
  EXPECT_GT(q.stats().calendar_resizes, 0u);
  int64_t last_time = -1;
  int last_seq = -1;
  while (!q.empty()) {
    q.PopNext().callback();
    auto [t, seq] = fired.back();
    if (t == last_time) {
      EXPECT_GT(seq, last_seq);  // FIFO among equal timestamps.
    } else {
      EXPECT_GT(t, last_time);
    }
    last_time = t;
    last_seq = seq;
  }
  EXPECT_EQ(fired.size(), times.size());
}

// Regression for the unbounded-tombstone leak: a workload that cancels far
// more than it pops (re-armed watchdogs) must not grow the heap without
// bound. Compaction keeps the backlog at O(live entries).
TEST(EventQueueHeap, CompactionBoundsMemoryUnderCancelChurn) {
  EventQueue q(EventQueueKind::kHeap);
  constexpr int kLive = 100;
  std::vector<EventQueue::EventId> ids(kLive);
  for (int i = 0; i < kLive; ++i) {
    ids[i] = q.Schedule(1000 + i, [] {});
  }
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < kLive; ++i) {
      q.Cancel(ids[i]);
      ids[i] = q.Schedule(100000 + round * kLive + i, [] {});
    }
  }
  const EventQueueStats& s = q.stats();
  EXPECT_EQ(q.size(), static_cast<size_t>(kLive));
  // 100k cancels happened; without compaction the backlog would be ~100k.
  EXPECT_GT(s.heap_compactions, 0u);
  EXPECT_LE(s.backlog, static_cast<size_t>(3 * kLive + 64));
}

// After warm-up, the calendar recycles everything: popping and rescheduling
// at the same population must not carve new arena chunks.
TEST(EventQueueCalendar, SteadyStateReusesArenaNodes) {
  EventQueue q(EventQueueKind::kCalendar);
  for (int i = 0; i < 2000; ++i) {
    q.Schedule(10 + i, [] {});
  }
  uint64_t warm_allocs = q.stats().node_allocs;
  int64_t t = 10;
  for (int i = 0; i < 50000; ++i) {
    t = q.NextTime();
    q.PopNext();
    q.Schedule(t + 2000, [] {});
  }
  EXPECT_EQ(q.stats().node_allocs, warm_allocs);
  EXPECT_EQ(q.size(), 2000u);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  TimeNs seen = -1;
  sim.At(100, [&] { seen = sim.Now(); });
  sim.RunUntil(1000);
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.At(100, [&] { ++fired; });
  sim.At(200, [&] { ++fired; });
  sim.RunUntil(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 150);
  sim.RunUntil(300);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> next = [&] {
    ++chain;
    if (chain < 10) {
      sim.After(10, next);
    }
  };
  sim.After(10, next);
  sim.RunAll();
  EXPECT_EQ(chain, 10);
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_EQ(sim.events_processed(), 10u);
}

// The event-ordering invariants are RTVIRT_CHECKs: active in every build
// type (not compiled out under NDEBUG), fatal on violation.
TEST(SimulatorDeathTest, SchedulingAnEventInThePastIsFatal) {
  Simulator sim;
  sim.At(100, [] {});
  sim.RunAll();
  ASSERT_EQ(sim.Now(), 100);
  EXPECT_DEATH(sim.At(50, [] {}), "event scheduled in the past");
}

TEST(SimulatorDeathTest, PoppingAnEmptyQueueIsFatal) {
  EventQueue q;
  EXPECT_DEATH(q.PopNext(), "empty event queue");
}

TEST(Simulator, AfterZeroRunsAtSameTimeInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(50, [&] {
    order.push_back(1);
    sim.After(0, [&] { order.push_back(3); });
    order.push_back(2);
  });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 50);
}

}  // namespace
}  // namespace rtvirt

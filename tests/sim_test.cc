#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"

namespace rtvirt {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(30, [&] { fired.push_back(3); });
  q.Schedule(10, [&] { fired.push_back(1); });
  q.Schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) {
    q.PopNext().callback();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoWithinSameTimestamp) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(7, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) {
    q.PopNext().callback();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  auto id = q.Schedule(5, [&] { ++fired; });
  q.Schedule(6, [&] { ++fired; });
  q.Cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) {
    q.PopNext().callback();
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  auto id = q.Schedule(1, [] {});
  q.PopNext().callback();
  q.Cancel(id);  // Must not corrupt the live count.
  EXPECT_TRUE(q.empty());
  q.Schedule(2, [] {});
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, DoubleCancelIsNoop) {
  EventQueue q;
  auto id = q.Schedule(1, [] {});
  auto id2 = id;
  q.Cancel(id);
  q.Cancel(id2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto id = q.Schedule(5, [] {});
  q.Schedule(9, [] {});
  q.Cancel(id);
  EXPECT_EQ(q.NextTime(), 9);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  TimeNs seen = -1;
  sim.At(100, [&] { seen = sim.Now(); });
  sim.RunUntil(1000);
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.At(100, [&] { ++fired; });
  sim.At(200, [&] { ++fired; });
  sim.RunUntil(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 150);
  sim.RunUntil(300);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> next = [&] {
    ++chain;
    if (chain < 10) {
      sim.After(10, next);
    }
  };
  sim.After(10, next);
  sim.RunAll();
  EXPECT_EQ(chain, 10);
  EXPECT_EQ(sim.Now(), 100);
  EXPECT_EQ(sim.events_processed(), 10u);
}

// The event-ordering invariants are RTVIRT_CHECKs: active in every build
// type (not compiled out under NDEBUG), fatal on violation.
TEST(SimulatorDeathTest, SchedulingAnEventInThePastIsFatal) {
  Simulator sim;
  sim.At(100, [] {});
  sim.RunAll();
  ASSERT_EQ(sim.Now(), 100);
  EXPECT_DEATH(sim.At(50, [] {}), "event scheduled in the past");
}

TEST(SimulatorDeathTest, PoppingAnEmptyQueueIsFatal) {
  EventQueue q;
  EXPECT_DEATH(q.PopNext(), "empty event queue");
}

TEST(Simulator, AfterZeroRunsAtSameTimeInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(50, [&] {
    order.push_back(1);
    sim.After(0, [&] { order.push_back(3); });
    order.push_back(2);
  });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 50);
}

}  // namespace
}  // namespace rtvirt

// Versioned, CRC-guarded checkpoint container + per-component serialization
// interface (DESIGN.md §10).
//
// A checkpoint is an Image: an ordered list of named sections, one per
// registered component plus the Experiment-owned "sim" / "rng" / "events"
// sections. Closures in the event queue are never serialized; instead every
// checkpointable schedule site tags its events with (owner, kind, payload),
// where owner = Fnv1a64(section name), and restore re-creates the callbacks
// by dispatching (kind, payload, when) back to the owning component's
// RebindEvent hook. The header stays dependency-free (header-only Writer /
// Reader / hashes) so hypervisor and guest components can implement
// Checkpointable without new link-time dependencies.

#ifndef SRC_CHECKPOINT_CHECKPOINT_H_
#define SRC_CHECKPOINT_CHECKPOINT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace rtvirt {
namespace ckpt {

// ---------------------------------------------------------------------------
// Hashes.

// FNV-1a 64-bit: the incremental state digest used by the divergence auditor.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t Fnv1a64(const void* data, size_t n, uint64_t h = kFnvOffset) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s, uint64_t h = kFnvOffset) {
  return Fnv1a64(s.data(), s.size(), h);
}

// CRC-32 (reflected, poly 0xEDB88320) guarding the serialized payload.
uint32_t Crc32(const void* data, size_t n);
inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

// ---------------------------------------------------------------------------
// Little-endian append buffer / sticky-error reader.

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

// Typed getters return zero values once the buffer under-runs; callers check
// ok() after a batch of reads instead of after every field. The error is
// sticky so partial state can never be mistaken for a complete section.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  bool Bool() { return U8() != 0; }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++])) << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++])) << (8 * i);
    }
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    uint64_t bits = U64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!Need(n)) return std::string();
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Component interface.

// One per stateful component. SaveState/RestoreState move the component's
// fields; RebindEvent re-creates one live event that this component had
// scheduled (identified by the kind/payload recorded in its EventTag) at
// virtual time `when`. Restore hooks return an empty string on success or a
// loud error naming what went wrong; they must not partially apply.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void SaveState(Writer& w) const = 0;
  virtual std::string RestoreState(Reader& r) = 0;
  virtual std::string RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) = 0;
};

// ---------------------------------------------------------------------------
// Container format.
//
//   magic "RTVCKPT1" | u32 version | u32 crc32(payload) | u64 payload_size |
//   payload = u32 section_count, then per section: str name, u64 size, bytes
//
// Parse verifies magic, version, size, and CRC before exposing any section,
// and every failure names the offending part (never a silent partial parse).

constexpr char kMagic[8] = {'R', 'T', 'V', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kVersion = 1;

struct Section {
  std::string name;
  std::string bytes;
};

struct Image {
  std::vector<Section> sections;

  std::string Serialize() const;
  // Returns "" on success, else a diagnostic naming the corrupt part.
  static std::string Parse(std::string_view bytes, Image* out);
  const Section* Find(std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Divergence digests.

struct DigestEntry {
  std::string name;
  uint64_t digest = 0;
};

struct StateDigest {
  uint64_t combined = 0;
  std::vector<DigestEntry> sections;

  // "digest interval=I t=T combined=HEX name=HEX ..." — one line per
  // checkpoint boundary; the recorded trail that --replay-verify replays.
  std::string ToLine(int interval, TimeNs t) const;
};

StateDigest DigestOf(const Image& image);

// ---------------------------------------------------------------------------
// File helpers (atomic persist for sweep shards).

bool ReadFileToString(const std::string& path, std::string* out);
// Write to path.tmp then rename; returns "" on success, else an error string.
std::string WriteFileAtomic(const std::string& path, std::string_view bytes);

}  // namespace ckpt
}  // namespace rtvirt

#endif  // SRC_CHECKPOINT_CHECKPOINT_H_

#include "src/checkpoint/checkpoint.h"

#include <cstdio>
#include <cstring>

namespace rtvirt {
namespace ckpt {

namespace {

const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

std::string Hex(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string Image::Serialize() const {
  Writer payload;
  payload.U32(static_cast<uint32_t>(sections.size()));
  for (const Section& s : sections) {
    payload.Str(s.name);
    payload.U64(s.bytes.size());
    payload.Str(s.bytes);  // Redundant u32 length inside, cheap and uniform.
  }
  const std::string& body = payload.data();
  Writer out;
  for (char c : kMagic) {
    out.U8(static_cast<uint8_t>(c));
  }
  out.U32(kVersion);
  out.U32(Crc32(body));
  out.U64(body.size());
  std::string result = out.Take();
  result += body;
  return result;
}

std::string Image::Parse(std::string_view bytes, Image* out) {
  constexpr size_t kHeader = sizeof(kMagic) + 4 + 4 + 8;
  if (bytes.size() < kHeader) {
    return "checkpoint: truncated header (" + std::to_string(bytes.size()) +
           " bytes, need " + std::to_string(kHeader) + ")";
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return "checkpoint: bad magic (not an RTVCKPT file)";
  }
  Reader hdr(bytes.substr(sizeof(kMagic)));
  uint32_t version = hdr.U32();
  uint32_t crc = hdr.U32();
  uint64_t payload_size = hdr.U64();
  if (version != kVersion) {
    return "checkpoint: unknown schema version " + std::to_string(version) +
           " (supported: " + std::to_string(kVersion) + ")";
  }
  std::string_view payload = bytes.substr(kHeader);
  if (payload.size() != payload_size) {
    return "checkpoint: truncated payload (" + std::to_string(payload.size()) +
           " bytes, header claims " + std::to_string(payload_size) + ")";
  }
  uint32_t actual_crc = Crc32(payload);
  if (actual_crc != crc) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "checkpoint: CRC mismatch (stored %08x, computed %08x)", crc,
                  actual_crc);
    return buf;
  }
  Reader r(payload);
  uint32_t count = r.U32();
  Image img;
  img.sections.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Section s;
    s.name = r.Str();
    uint64_t declared = r.U64();
    s.bytes = r.Str();
    if (!r.ok()) {
      return "checkpoint: truncated section[" + std::to_string(i) + "]" +
             (s.name.empty() ? "" : " '" + s.name + "'");
    }
    if (s.bytes.size() != declared) {
      return "checkpoint: section[" + std::to_string(i) + "] '" + s.name +
             "' size mismatch (declared " + std::to_string(declared) +
             ", got " + std::to_string(s.bytes.size()) + ")";
    }
    img.sections.push_back(std::move(s));
  }
  if (!r.AtEnd()) {
    return "checkpoint: trailing bytes after section[" +
           std::to_string(count == 0 ? 0 : count - 1) + "]";
  }
  *out = std::move(img);
  return "";
}

const Section* Image::Find(std::string_view name) const {
  for (const Section& s : sections) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

StateDigest DigestOf(const Image& image) {
  StateDigest d;
  uint64_t combined = kFnvOffset;
  for (const Section& s : image.sections) {
    uint64_t h = Fnv1a64(s.bytes);
    d.sections.push_back({s.name, h});
    combined = Fnv1a64(s.name, combined);
    combined = Fnv1a64(&h, sizeof(h), combined);
  }
  d.combined = combined;
  return d;
}

std::string StateDigest::ToLine(int interval, TimeNs t) const {
  std::string line = "digest interval=" + std::to_string(interval) +
                     " t=" + std::to_string(t) + " combined=" + Hex(combined);
  for (const DigestEntry& e : sections) {
    line += " " + e.name + "=" + Hex(e.digest);
  }
  return line;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  out->clear();
  char buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::string WriteFileAtomic(const std::string& path, std::string_view bytes) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return "checkpoint: cannot open '" + tmp + "' for writing";
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size() && std::fflush(f) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return "checkpoint: short write to '" + tmp + "'";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return "checkpoint: rename to '" + path + "' failed";
  }
  return "";
}

}  // namespace ckpt
}  // namespace rtvirt

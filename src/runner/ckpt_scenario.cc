#include "src/runner/ckpt_scenario.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>
#include <utility>

namespace rtvirt {

void CkptScenario::Start() {
  for (auto& rta : rtas) {
    rta->Start(0, options.horizon);
  }
}

std::unique_ptr<CkptScenario> BuildCkptScenario(const CkptScenarioOptions& options) {
  auto s = std::make_unique<CkptScenario>();
  s->options = options;

  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.sim = options.sim;
  cfg.machine.num_pcpus = 4;
  cfg.seed = options.seed;
  if (options.faults) {
    cfg.faults.seed = options.seed ^ 0xC2B2AE3D27D4EB4Full;
    cfg.faults.hypercall_fail_prob = 0.05;
    cfg.faults.hypercall_spike_prob = 0.02;
  }
  s->exp = std::make_unique<Experiment>(std::move(cfg));

  // Two guests, two VCPUs each, two RTAs per guest with coprime-ish periods
  // so releases interleave densely and every checkpoint boundary lands
  // mid-flight for some chain.
  struct TaskSpec {
    int guest;
    const char* name;
    TimeNs slice;
    TimeNs period;
  };
  const TaskSpec kTasks[] = {
      {0, "vm0.cam", Ms(2), Ms(10)},
      {0, "vm0.ctl", Ms(3), Ms(20)},
      {1, "vm1.dsp", Ms(2), Ms(14)},
      {1, "vm1.log", Ms(4), Ms(30)},
  };
  GuestOs* guests[2] = {
      s->exp->AddGuest("vm0", 2),
      s->exp->AddGuest("vm1", 2),
  };
  for (const TaskSpec& t : kTasks) {
    RtaParams params;
    params.slice = t.slice;
    params.period = t.period;
    auto rta = std::make_unique<PeriodicRta>(guests[t.guest], t.name, params);
    rta->set_admission_retry(Ms(5));  // Ride out transient hypercall faults.
    s->monitor.Watch(rta->task());
    s->rtas.push_back(std::move(rta));
  }
  // Canonical registry order: workloads in creation order, then the monitor.
  for (auto& rta : s->rtas) {
    s->exp->RegisterCheckpointable(rta->ckpt_section(), rta.get());
  }
  s->exp->RegisterCheckpointable(DeadlineMonitor::kCkptSection, &s->monitor);
  return s;
}

std::string RecordDigestTrail(CkptScenario& s, TimeNs interval_ns, int intervals,
                              std::vector<IntervalDigest>* out, ckpt::Image* image_out) {
  for (int i = 0; i < intervals; ++i) {
    TimeNs boundary = static_cast<TimeNs>(i + 1) * interval_ns;
    s.exp->Run(boundary);
    ckpt::Image image;
    std::string err = s.exp->SaveCheckpoint(&image);
    if (!err.empty()) {
      return "interval " + std::to_string(i) + " (t=" + std::to_string(boundary) +
             "ns): " + err;
    }
    out->push_back(IntervalDigest{i, boundary, ckpt::DigestOf(image)});
    if (image_out != nullptr && i == intervals - 1) {
      *image_out = std::move(image);
    }
  }
  return "";
}

std::string TrailToText(const std::vector<IntervalDigest>& trail) {
  std::string text;
  for (const IntervalDigest& d : trail) {
    text += d.digest.ToLine(d.interval, d.t);
    text += '\n';
  }
  return text;
}

namespace {

// "key=value" -> value, or "" when the token has no '='.
std::string_view ValueOf(std::string_view token) {
  size_t eq = token.find('=');
  return eq == std::string_view::npos ? std::string_view() : token.substr(eq + 1);
}

bool ParseHex64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 16) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

}  // namespace

std::string ParseTrail(const std::string& text, std::vector<IntervalDigest>* out) {
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    std::istringstream tokens(line);
    std::string token;
    IntervalDigest d;
    bool have_interval = false, have_t = false, have_combined = false;
    bool first = true;
    while (tokens >> token) {
      if (first) {
        first = false;
        if (token != "digest") {
          return "trail line " + std::to_string(lineno) + ": expected 'digest', got '" +
                 token + "'";
        }
        continue;
      }
      std::string_view value = ValueOf(token);
      if (token.rfind("interval=", 0) == 0) {
        d.interval = std::atoi(std::string(value).c_str());
        have_interval = true;
      } else if (token.rfind("t=", 0) == 0) {
        d.t = std::atoll(std::string(value).c_str());
        have_t = true;
      } else if (token.rfind("combined=", 0) == 0) {
        if (!ParseHex64(value, &d.digest.combined)) {
          return "trail line " + std::to_string(lineno) + ": bad combined digest '" +
                 std::string(value) + "'";
        }
        have_combined = true;
      } else {
        ckpt::DigestEntry e;
        size_t eq = token.find('=');
        if (eq == std::string::npos || !ParseHex64(value, &e.digest)) {
          return "trail line " + std::to_string(lineno) + ": bad section token '" + token +
                 "'";
        }
        e.name = token.substr(0, eq);
        d.digest.sections.push_back(std::move(e));
      }
    }
    if (!have_interval || !have_t || !have_combined) {
      return "trail line " + std::to_string(lineno) +
             ": missing interval=/t=/combined= field";
    }
    out->push_back(std::move(d));
  }
  return "";
}

DivergenceReport CompareTrails(const std::vector<IntervalDigest>& expected,
                               const std::vector<IntervalDigest>& actual) {
  DivergenceReport r;
  std::ostringstream os;
  size_t n = expected.size() < actual.size() ? expected.size() : actual.size();
  for (size_t i = 0; i < n; ++i) {
    const IntervalDigest& e = expected[i];
    const IntervalDigest& a = actual[i];
    if (e.digest.combined == a.digest.combined) {
      continue;
    }
    r.diverged = true;
    r.interval = e.interval;
    r.t = e.t;
    os << "replay-verify: FIRST DIVERGENCE at interval " << e.interval << " t=" << e.t
       << "ns\n";
    // Component-level breakdown: walk the expected section list; a section
    // missing on either side is itself a fork.
    for (const ckpt::DigestEntry& es : e.digest.sections) {
      const ckpt::DigestEntry* as = nullptr;
      for (const ckpt::DigestEntry& cand : a.digest.sections) {
        if (cand.name == es.name) {
          as = &cand;
          break;
        }
      }
      char expected_hex[20], actual_hex[20];
      std::snprintf(expected_hex, sizeof(expected_hex), "%016llx",
                    static_cast<unsigned long long>(es.digest));
      if (as == nullptr) {
        r.forked.push_back(es.name);
        os << "  " << es.name << ": expected=" << expected_hex
           << " actual=<missing>  <-- forked\n";
        continue;
      }
      std::snprintf(actual_hex, sizeof(actual_hex), "%016llx",
                    static_cast<unsigned long long>(as->digest));
      if (es.digest == as->digest) {
        os << "  " << es.name << ": " << expected_hex << " ok\n";
      } else {
        r.forked.push_back(es.name);
        os << "  " << es.name << ": expected=" << expected_hex << " actual=" << actual_hex
           << "  <-- forked\n";
      }
    }
    for (const ckpt::DigestEntry& as : a.digest.sections) {
      bool known = false;
      for (const ckpt::DigestEntry& es : e.digest.sections) {
        if (es.name == as.name) {
          known = true;
          break;
        }
      }
      if (!known) {
        r.forked.push_back(as.name);
        os << "  " << as.name << ": expected=<missing> actual=present  <-- forked\n";
      }
    }
    r.summary = os.str();
    return r;
  }
  if (expected.size() != actual.size()) {
    r.diverged = true;
    r.interval = static_cast<int>(n);
    r.t = n < expected.size() ? expected[n].t : actual[n].t;
    os << "replay-verify: trail length mismatch (expected " << expected.size()
       << " intervals, actual " << actual.size() << "); first missing interval " << n
       << "\n";
    r.summary = os.str();
    return r;
  }
  os << "replay-verify: " << expected.size() << " intervals byte-identical\n";
  r.summary = os.str();
  return r;
}

}  // namespace rtvirt

#include "src/runner/experiment.h"

#include <cassert>
#include <cstdlib>
#include <utility>

#include "src/metrics/report.h"
#include "src/perf/perf_recorder.h"

namespace rtvirt {

const char* FrameworkName(Framework framework) {
  switch (framework) {
    case Framework::kRtvirt:
      return "RTVirt";
    case Framework::kRtXen:
      return "RT-Xen";
    case Framework::kCredit:
      return "Credit";
    case Framework::kVanillaEdf:
      return "Vanilla-EDF";
  }
  return "?";
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)), sim_(config_.sim), rng_(config_.seed) {
  if (const char* env = std::getenv("RTVIRT_REPORT_ALLOC");
      env != nullptr && *env != '\0' && *env != '0') {
    config_.report_alloc = true;
  }
  ctor_alloc_ = perf::AllocNow();
  machine_ = std::make_unique<Machine>(&sim_, config_.machine);
  switch (config_.framework) {
    case Framework::kRtvirt: {
      auto sched = std::make_unique<DpWrapScheduler>(config_.dpwrap);
      dpwrap_ = sched.get();
      machine_->SetScheduler(std::move(sched));
      break;
    }
    case Framework::kRtXen:
    case Framework::kVanillaEdf: {
      auto sched = std::make_unique<ServerEdfScheduler>(config_.server_edf);
      server_edf_ = sched.get();
      machine_->SetScheduler(std::move(sched));
      break;
    }
    case Framework::kCredit: {
      auto sched = std::make_unique<CreditScheduler>(config_.credit);
      credit_ = sched.get();
      machine_->SetScheduler(std::move(sched));
      break;
    }
  }
  if (config_.faults.active()) {
    injector_ = std::make_unique<FaultInjector>(machine_.get(), config_.faults);
    // Guest-side crash semantics, registered before any bench-added handler:
    // the guest kernel's state dies with the VM, and the reborn kernel has
    // only runnable background work until workloads re-register their RTAs
    // through their own restart handlers.
    injector_->AddCrashHandler([this](Vm* vm) {
      if (GuestOs* g = GuestOf(vm)) {
        g->ResetAfterCrash();
      }
    });
    injector_->AddRestartHandler([this](Vm* vm) {
      if (GuestOs* g = GuestOf(vm)) {
        g->OnVmRestart();
      }
    });
  }
  if (config_.audit.enabled) {
    auditor_ = std::make_unique<InvariantAuditor>(machine_.get(), dpwrap_, config_.audit);
  }
  if (config_.control.enabled) {
    controller_ = std::make_unique<SloController>(&sim_, config_.control);
  }
}

Experiment::~Experiment() = default;

GuestOs* Experiment::AddGuest(const std::string& name, int vcpus, GuestConfig guest_config) {
  Vm* vm = machine_->AddVm(name);
  auto guest = std::make_unique<GuestOs>(vm, guest_config);
  for (int i = 0; i < vcpus; ++i) {
    guest->AddVcpu();
  }
  RtvirtGuestChannel* channel = nullptr;
  if (config_.framework == Framework::kRtvirt) {
    auto owned = std::make_unique<RtvirtGuestChannel>(machine_.get(), config_.channel);
    channel = owned.get();
    guest->SetCrossLayer(std::move(owned));
  }
  guests_.push_back(std::move(guest));
  channels_.push_back(channel);
  if (auditor_ != nullptr) {
    auditor_->WatchGuest(guests_.back().get(), channel);
  }
  return guests_.back().get();
}

GuestOs* Experiment::GuestOf(const Vm* vm) const {
  for (const auto& g : guests_) {
    if (g->vm() == vm) {
      return g.get();
    }
  }
  return nullptr;
}

void Experiment::CrashGuest(GuestOs* guest) {
  assert(guest != nullptr);
  Vm* vm = guest->vm();
  if (vm->crashed()) {
    return;
  }
  machine_->CrashVm(vm);
  guest->ResetAfterCrash();
}

RtvirtGuestChannel* Experiment::ChannelOf(const GuestOs* guest) const {
  for (size_t i = 0; i < guests_.size(); ++i) {
    if (guests_[i].get() == guest) {
      return channels_[i];
    }
  }
  return nullptr;
}

ResilienceCounters Experiment::resilience() const {
  ResilienceCounters c;
  if (injector_ != nullptr) {
    const FaultStats& f = injector_->stats();
    c.hypercall_attempts = f.hypercall_attempts;
    c.injected_failures = f.injected_failures;
    c.injected_drops = f.injected_drops;
    c.injected_spikes = f.injected_spikes;
    c.outage_failures = f.outage_failures;
    c.vm_crashes = f.vm_crashes;
    c.vm_restarts = f.vm_restarts;
    c.pcpu_offline_events = f.pcpu_offline_events;
    c.pcpu_online_events = f.pcpu_online_events;
    c.pcpu_degrade_events = f.pcpu_degrade_events;
    c.pcpu_heal_events = f.pcpu_heal_events;
    c.adversarial_deadline_lies = f.deadline_lies;
    c.adversarial_storm_calls = f.storm_calls;
    c.adversarial_thrash_calls = f.thrash_calls;
    c.control_outage_failures = f.control_outage_failures;
    c.control_stale_windows = f.control_stale_windows;
  }
  c.pcpu_evacuations = machine_->pcpu_evacuations();
  if (auditor_ != nullptr) {
    c.audit_checks = auditor_->checks_run();
    c.audit_violations = auditor_->total_violations();
    c.isolation_violations = auditor_->isolation_violations();
  }
  for (RtvirtGuestChannel* ch : channels_) {
    if (ch == nullptr) {
      continue;
    }
    const ChannelStats& s = ch->stats();
    c.transient_failures += s.transient_failures;
    c.retries += s.retries;
    c.retry_successes += s.retry_successes;
    c.degraded_entries += s.degraded_entries;
    c.recoveries += s.recoveries;
    c.repair_attempts += s.repair_attempts;
    c.backoff_time_ns += s.backoff_time;
  }
  if (dpwrap_ != nullptr) {
    c.watchdog_reclaims = dpwrap_->watchdog_reclaims();
    c.stale_rejections = dpwrap_->stale_rejections();
    c.capacity_replans = dpwrap_->capacity_replans();
    c.pressure_raises = dpwrap_->pressure_raises();
    c.pressure_clears = dpwrap_->pressure_clears();
    c.admission_rejections = dpwrap_->admission_rejections();
    c.shed_releases = dpwrap_->shed_releases();
    c.deadline_lie_rejections = dpwrap_->deadline_lie_rejections();
    c.deadline_floor_clamps = dpwrap_->deadline_floor_clamps();
    c.replan_budget_trips = dpwrap_->replan_budget_trips();
    c.hypercall_rate_rejections = dpwrap_->hypercall_rate_rejections();
    c.bw_thrash_trips = dpwrap_->bw_thrash_trips();
    c.quarantines = dpwrap_->quarantines();
    c.quarantine_releases = dpwrap_->quarantine_releases();
    c.quarantine_holds = dpwrap_->quarantine_holds();
  }
  if (controller_ != nullptr) {
    const ControlStats& s = controller_->stats();
    c.control_samples = s.samples;
    c.control_decisions = s.decisions;
    c.control_inc_adjustments = s.inc_adjustments;
    c.control_dec_adjustments = s.dec_adjustments;
    c.control_hysteresis_holds = s.hysteresis_holds;
    c.control_demand_floor_holds = s.demand_floor_holds;
    c.control_pressure_holds = s.pressure_holds;
    c.control_ladder_holds = s.ladder_holds;
    c.control_rate_limit_holds = s.rate_limit_holds;
    c.control_windup_clamps = s.windup_clamps;
    c.control_actuation_failures = s.actuation_failures;
    c.control_saturation_events = s.saturation_events;
    c.control_saturations_resolved = s.saturations_resolved;
    c.control_freezes = s.freezes;
    c.control_reengage_probes = s.reengage_probes;
    c.control_reengages = s.reengages;
  }
  for (const auto& g : guests_) {
    const GuestOverloadStats& s = g->overload_stats();
    c.compressions += s.compressions;
    c.expansions += s.expansions;
    c.sheds += s.sheds;
    c.resumes += s.resumes;
    c.shed_job_drops += s.shed_job_drops;
    c.overload_admissions += s.overload_admissions;
  }
  // Allocation attribution (perf subsystem): warm-up covers construction
  // through the end of the first Run(); everything after is steady state.
  c.alloc_section = config_.report_alloc;
  perf::AllocSnapshot now = perf::AllocNow();
  const perf::AllocSnapshot& split = warmup_recorded_ ? warmup_end_alloc_ : now;
  c.warmup_allocs = split.allocs - ctor_alloc_.allocs;
  c.warmup_alloc_bytes = split.bytes - ctor_alloc_.bytes;
  c.steady_allocs = now.allocs - split.allocs;
  c.steady_alloc_bytes = now.bytes - split.bytes;
  c.peak_rss_kb = perf::PeakRssKb();
  c.event_queue = sim_.queue_stats();
  return c;
}

void Experiment::PrintReport(std::ostream& out, const std::string& title) const {
  PrintExperimentReport(out, title, resilience());
}

void Experiment::SetVcpuServer(Vcpu* vcpu, ServerParams params) {
  assert(server_edf_ != nullptr && "server interfaces need the RT-Xen/vanilla-EDF host");
  server_edf_->SetServer(vcpu, params);
}

void Experiment::Run(TimeNs until) {
  if (!started_) {
    if (injector_ != nullptr) {
      injector_->Arm();  // All VMs exist by now.
    }
    if (auditor_ != nullptr) {
      auditor_->Arm();
    }
    if (controller_ != nullptr) {
      controller_->Arm();
    }
    machine_->Start();
    started_ = true;
  }
  sim_.RunUntil(until);
  if (!warmup_recorded_) {
    warmup_end_alloc_ = perf::AllocNow();
    warmup_recorded_ = true;
  }
}

}  // namespace rtvirt

#include "src/runner/experiment.h"

#include <cassert>
#include <utility>

namespace rtvirt {

const char* FrameworkName(Framework framework) {
  switch (framework) {
    case Framework::kRtvirt:
      return "RTVirt";
    case Framework::kRtXen:
      return "RT-Xen";
    case Framework::kCredit:
      return "Credit";
    case Framework::kVanillaEdf:
      return "Vanilla-EDF";
  }
  return "?";
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  machine_ = std::make_unique<Machine>(&sim_, config_.machine);
  switch (config_.framework) {
    case Framework::kRtvirt: {
      auto sched = std::make_unique<DpWrapScheduler>(config_.dpwrap);
      dpwrap_ = sched.get();
      machine_->SetScheduler(std::move(sched));
      break;
    }
    case Framework::kRtXen:
    case Framework::kVanillaEdf: {
      auto sched = std::make_unique<ServerEdfScheduler>(config_.server_edf);
      server_edf_ = sched.get();
      machine_->SetScheduler(std::move(sched));
      break;
    }
    case Framework::kCredit: {
      auto sched = std::make_unique<CreditScheduler>(config_.credit);
      credit_ = sched.get();
      machine_->SetScheduler(std::move(sched));
      break;
    }
  }
}

Experiment::~Experiment() = default;

GuestOs* Experiment::AddGuest(const std::string& name, int vcpus, GuestConfig guest_config) {
  Vm* vm = machine_->AddVm(name);
  auto guest = std::make_unique<GuestOs>(vm, guest_config);
  for (int i = 0; i < vcpus; ++i) {
    guest->AddVcpu();
  }
  if (config_.framework == Framework::kRtvirt) {
    guest->SetCrossLayer(std::make_unique<RtvirtGuestChannel>(machine_.get(), config_.channel));
  }
  guests_.push_back(std::move(guest));
  return guests_.back().get();
}

void Experiment::SetVcpuServer(Vcpu* vcpu, ServerParams params) {
  assert(server_edf_ != nullptr && "server interfaces need the RT-Xen/vanilla-EDF host");
  server_edf_->SetServer(vcpu, params);
}

void Experiment::Run(TimeNs until) {
  if (!started_) {
    machine_->Start();
    started_ = true;
  }
  sim_.RunUntil(until);
}

}  // namespace rtvirt

#include "src/runner/experiment.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/metrics/report.h"
#include "src/perf/perf_recorder.h"

namespace rtvirt {

const char* FrameworkName(Framework framework) {
  switch (framework) {
    case Framework::kRtvirt:
      return "RTVirt";
    case Framework::kRtXen:
      return "RT-Xen";
    case Framework::kCredit:
      return "Credit";
    case Framework::kVanillaEdf:
      return "Vanilla-EDF";
  }
  return "?";
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)), sim_(config_.sim), rng_(config_.seed) {
  if (const char* env = std::getenv("RTVIRT_REPORT_ALLOC");
      env != nullptr && *env != '\0' && *env != '0') {
    config_.report_alloc = true;
  }
  ctor_alloc_ = perf::AllocNow();
  machine_ = std::make_unique<Machine>(&sim_, config_.machine);
  switch (config_.framework) {
    case Framework::kRtvirt: {
      auto sched = std::make_unique<DpWrapScheduler>(config_.dpwrap);
      dpwrap_ = sched.get();
      machine_->SetScheduler(std::move(sched));
      break;
    }
    case Framework::kRtXen:
    case Framework::kVanillaEdf: {
      auto sched = std::make_unique<ServerEdfScheduler>(config_.server_edf);
      server_edf_ = sched.get();
      machine_->SetScheduler(std::move(sched));
      break;
    }
    case Framework::kCredit: {
      auto sched = std::make_unique<CreditScheduler>(config_.credit);
      credit_ = sched.get();
      machine_->SetScheduler(std::move(sched));
      break;
    }
  }
  if (config_.faults.active()) {
    injector_ = std::make_unique<FaultInjector>(machine_.get(), config_.faults);
    // Guest-side crash semantics, registered before any bench-added handler:
    // the guest kernel's state dies with the VM, and the reborn kernel has
    // only runnable background work until workloads re-register their RTAs
    // through their own restart handlers.
    injector_->AddCrashHandler([this](Vm* vm) {
      if (GuestOs* g = GuestOf(vm)) {
        g->ResetAfterCrash();
      }
    });
    injector_->AddRestartHandler([this](Vm* vm) {
      if (GuestOs* g = GuestOf(vm)) {
        g->OnVmRestart();
      }
    });
  }
  if (config_.audit.enabled) {
    auditor_ = std::make_unique<InvariantAuditor>(machine_.get(), dpwrap_, config_.audit);
  }
  if (config_.control.enabled) {
    controller_ = std::make_unique<SloController>(&sim_, config_.control);
  }
  // Built-in checkpoint registry entries, in serialization order. Guests and
  // channels join in AddGuest; workloads/monitors via RegisterCheckpointable.
  checkpointables_.emplace_back(Machine::kCkptSection, machine_.get());
  if (dpwrap_ != nullptr) {
    checkpointables_.emplace_back(DpWrapScheduler::kCkptSection, dpwrap_);
  }
  if (injector_ != nullptr) {
    checkpointables_.emplace_back(FaultInjector::kCkptSection, injector_.get());
  }
}

Experiment::~Experiment() = default;

GuestOs* Experiment::AddGuest(const std::string& name, int vcpus, GuestConfig guest_config) {
  Vm* vm = machine_->AddVm(name);
  auto guest = std::make_unique<GuestOs>(vm, guest_config);
  for (int i = 0; i < vcpus; ++i) {
    guest->AddVcpu();
  }
  RtvirtGuestChannel* channel = nullptr;
  if (config_.framework == Framework::kRtvirt) {
    auto owned = std::make_unique<RtvirtGuestChannel>(machine_.get(), config_.channel);
    channel = owned.get();
    guest->SetCrossLayer(std::move(owned));
  }
  guests_.push_back(std::move(guest));
  channels_.push_back(channel);
  if (auditor_ != nullptr) {
    auditor_->WatchGuest(guests_.back().get(), channel);
  }
  GuestOs* added = guests_.back().get();
  checkpointables_.emplace_back(added->ckpt_section(), added);
  if (channel != nullptr) {
    // Named here (not in the channel constructor) because the channel learns
    // its VM id only through the guest; no repair event can exist yet.
    channel->SetCkptSection("channel." + std::to_string(vm->id()));
    checkpointables_.emplace_back(channel->ckpt_section(), channel);
  }
  return added;
}

GuestOs* Experiment::GuestOf(const Vm* vm) const {
  for (const auto& g : guests_) {
    if (g->vm() == vm) {
      return g.get();
    }
  }
  return nullptr;
}

void Experiment::CrashGuest(GuestOs* guest) {
  assert(guest != nullptr);
  Vm* vm = guest->vm();
  if (vm->crashed()) {
    return;
  }
  machine_->CrashVm(vm);
  guest->ResetAfterCrash();
}

RtvirtGuestChannel* Experiment::ChannelOf(const GuestOs* guest) const {
  for (size_t i = 0; i < guests_.size(); ++i) {
    if (guests_[i].get() == guest) {
      return channels_[i];
    }
  }
  return nullptr;
}

ResilienceCounters Experiment::resilience() const {
  ResilienceCounters c;
  if (injector_ != nullptr) {
    const FaultStats& f = injector_->stats();
    c.hypercall_attempts = f.hypercall_attempts;
    c.injected_failures = f.injected_failures;
    c.injected_drops = f.injected_drops;
    c.injected_spikes = f.injected_spikes;
    c.outage_failures = f.outage_failures;
    c.vm_crashes = f.vm_crashes;
    c.vm_restarts = f.vm_restarts;
    c.pcpu_offline_events = f.pcpu_offline_events;
    c.pcpu_online_events = f.pcpu_online_events;
    c.pcpu_degrade_events = f.pcpu_degrade_events;
    c.pcpu_heal_events = f.pcpu_heal_events;
    c.adversarial_deadline_lies = f.deadline_lies;
    c.adversarial_storm_calls = f.storm_calls;
    c.adversarial_thrash_calls = f.thrash_calls;
    c.control_outage_failures = f.control_outage_failures;
    c.control_stale_windows = f.control_stale_windows;
  }
  c.pcpu_evacuations = machine_->pcpu_evacuations();
  if (auditor_ != nullptr) {
    c.audit_checks = auditor_->checks_run();
    c.audit_violations = auditor_->total_violations();
    c.isolation_violations = auditor_->isolation_violations();
  }
  for (RtvirtGuestChannel* ch : channels_) {
    if (ch == nullptr) {
      continue;
    }
    const ChannelStats& s = ch->stats();
    c.transient_failures += s.transient_failures;
    c.retries += s.retries;
    c.retry_successes += s.retry_successes;
    c.degraded_entries += s.degraded_entries;
    c.recoveries += s.recoveries;
    c.repair_attempts += s.repair_attempts;
    c.backoff_time_ns += s.backoff_time;
  }
  if (dpwrap_ != nullptr) {
    c.watchdog_reclaims = dpwrap_->watchdog_reclaims();
    c.stale_rejections = dpwrap_->stale_rejections();
    c.capacity_replans = dpwrap_->capacity_replans();
    c.pressure_raises = dpwrap_->pressure_raises();
    c.pressure_clears = dpwrap_->pressure_clears();
    c.admission_rejections = dpwrap_->admission_rejections();
    c.shed_releases = dpwrap_->shed_releases();
    c.deadline_lie_rejections = dpwrap_->deadline_lie_rejections();
    c.deadline_floor_clamps = dpwrap_->deadline_floor_clamps();
    c.replan_budget_trips = dpwrap_->replan_budget_trips();
    c.hypercall_rate_rejections = dpwrap_->hypercall_rate_rejections();
    c.bw_thrash_trips = dpwrap_->bw_thrash_trips();
    c.quarantines = dpwrap_->quarantines();
    c.quarantine_releases = dpwrap_->quarantine_releases();
    c.quarantine_holds = dpwrap_->quarantine_holds();
  }
  if (controller_ != nullptr) {
    const ControlStats& s = controller_->stats();
    c.control_samples = s.samples;
    c.control_decisions = s.decisions;
    c.control_inc_adjustments = s.inc_adjustments;
    c.control_dec_adjustments = s.dec_adjustments;
    c.control_hysteresis_holds = s.hysteresis_holds;
    c.control_demand_floor_holds = s.demand_floor_holds;
    c.control_pressure_holds = s.pressure_holds;
    c.control_ladder_holds = s.ladder_holds;
    c.control_rate_limit_holds = s.rate_limit_holds;
    c.control_windup_clamps = s.windup_clamps;
    c.control_actuation_failures = s.actuation_failures;
    c.control_saturation_events = s.saturation_events;
    c.control_saturations_resolved = s.saturations_resolved;
    c.control_freezes = s.freezes;
    c.control_reengage_probes = s.reengage_probes;
    c.control_reengages = s.reengages;
  }
  for (const auto& g : guests_) {
    const GuestOverloadStats& s = g->overload_stats();
    c.compressions += s.compressions;
    c.expansions += s.expansions;
    c.sheds += s.sheds;
    c.resumes += s.resumes;
    c.shed_job_drops += s.shed_job_drops;
    c.overload_admissions += s.overload_admissions;
  }
  // Allocation attribution (perf subsystem): warm-up covers construction
  // through the end of the first Run(); everything after is steady state.
  c.alloc_section = config_.report_alloc;
  perf::AllocSnapshot now = perf::AllocNow();
  const perf::AllocSnapshot& split = warmup_recorded_ ? warmup_end_alloc_ : now;
  c.warmup_allocs = split.allocs - ctor_alloc_.allocs;
  c.warmup_alloc_bytes = split.bytes - ctor_alloc_.bytes;
  c.steady_allocs = now.allocs - split.allocs;
  c.steady_alloc_bytes = now.bytes - split.bytes;
  c.peak_rss_kb = perf::PeakRssKb();
  c.event_queue = sim_.queue_stats();
  return c;
}

void Experiment::RegisterCheckpointable(const std::string& section,
                                        ckpt::Checkpointable* component) {
  assert(component != nullptr);
  for (const auto& [name, c] : checkpointables_) {
    assert(name != section && "duplicate checkpoint section name");
    (void)c;
  }
  checkpointables_.emplace_back(section, component);
}

namespace {

// Fixed sections every checkpoint carries besides the component registry:
// "sim" (clock), "rng" (experiment RNG), "events" (live event tags, last).
constexpr size_t kFixedSections = 3;

std::string HexOwner(uint64_t owner) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(owner));
  return buf;
}

}  // namespace

std::string Experiment::SaveCheckpoint(ckpt::Image* out) const {
  if (config_.framework != Framework::kRtvirt) {
    return std::string("checkpoint: framework ") + FrameworkName(config_.framework) +
           " is not checkpointable (RTVirt only)";
  }
  if (config_.audit.enabled) {
    return "checkpoint: audit.enabled is not checkpointable";
  }
  if (config_.control.enabled) {
    return "checkpoint: control.enabled is not checkpointable";
  }
  if (config_.report_alloc) {
    return "checkpoint: report_alloc is not checkpointable";
  }
  if (!started_) {
    return "checkpoint: experiment has not started (nothing to save)";
  }
  out->sections.clear();
  {
    ckpt::Writer w;
    w.I64(sim_.Now());
    w.U64(sim_.events_processed());
    out->sections.push_back({"sim", w.Take()});
  }
  {
    ckpt::Writer w;
    w.Str(rng_.SaveState());
    out->sections.push_back({"rng", w.Take()});
  }
  for (const auto& [name, component] : checkpointables_) {
    ckpt::Writer w;
    component->SaveState(w);
    out->sections.push_back({name, w.Take()});
  }
  // Live events go last: restore rebinds them only after every component has
  // its state back. Collected in (time, seq) order; rebinding in that order
  // onto a fresh queue assigns ascending sequence numbers, preserving the
  // relative order of same-instant events — the continuation stays
  // byte-identical.
  std::vector<EventQueue::LiveEvent> live;
  sim_.CollectLiveEvents(&live);
  ckpt::Writer w;
  w.U32(static_cast<uint32_t>(live.size()));
  for (const auto& e : live) {
    if (!e.tag.tagged()) {
      return "checkpoint: untagged live event at t=" + std::to_string(e.time) +
             "ns (a schedule site outside the rebind registry)";
    }
    bool known = false;
    for (const auto& [name, component] : checkpointables_) {
      if (ckpt::Fnv1a64(name) == e.tag.owner) {
        known = true;
        break;
      }
    }
    if (!known) {
      return "checkpoint: live event at t=" + std::to_string(e.time) +
             "ns has unregistered owner " + HexOwner(e.tag.owner);
    }
    w.U64(e.tag.owner);
    w.U32(e.tag.kind);
    w.U64(e.tag.payload);
    w.I64(e.time);
  }
  out->sections.push_back({"events", w.Take()});
  return "";
}

std::string Experiment::RestoreCheckpoint(const ckpt::Image& image) {
  if (config_.framework != Framework::kRtvirt) {
    return std::string("checkpoint: framework ") + FrameworkName(config_.framework) +
           " is not checkpointable (RTVirt only)";
  }
  if (config_.audit.enabled || config_.control.enabled || config_.report_alloc) {
    return "checkpoint: restore target enables a non-checkpointable feature "
           "(audit/control/report_alloc)";
  }
  if (started_) {
    return "checkpoint: restore requires a freshly built experiment (already started)";
  }
  const size_t expected = checkpointables_.size() + kFixedSections;
  if (image.sections.size() != expected) {
    return "checkpoint: component count mismatch (image has " +
           std::to_string(image.sections.size()) + " sections, this experiment expects " +
           std::to_string(expected) + ")";
  }
  const ckpt::Section* sim_section = image.Find("sim");
  if (sim_section == nullptr) {
    return "checkpoint: missing section 'sim'";
  }
  const ckpt::Section* rng_section = image.Find("rng");
  if (rng_section == nullptr) {
    return "checkpoint: missing section 'rng'";
  }
  const ckpt::Section* events_section = image.Find("events");
  if (events_section == nullptr) {
    return "checkpoint: missing section 'events'";
  }
  // Point of no return: from here on any failure leaves the experiment
  // unusable, so every path below returns a loud error rather than limping on
  // with partial state.
  sim_.ClearEventsForRestore();
  {
    ckpt::Reader r(sim_section->bytes);
    TimeNs now = r.I64();
    uint64_t processed = r.U64();
    if (!r.ok() || !r.AtEnd()) {
      return "checkpoint: malformed section 'sim'";
    }
    sim_.RestoreClock(now, processed);
  }
  {
    ckpt::Reader r(rng_section->bytes);
    std::string state = r.Str();
    if (!r.ok() || !r.AtEnd() || !rng_.RestoreState(state)) {
      return "checkpoint: malformed section 'rng'";
    }
  }
  for (const auto& [name, component] : checkpointables_) {
    const ckpt::Section* section = image.Find(name);
    if (section == nullptr) {
      return "checkpoint: missing section '" + name + "'";
    }
    ckpt::Reader r(section->bytes);
    std::string err = component->RestoreState(r);
    if (!err.empty()) {
      return "checkpoint: " + err;
    }
    if (!r.AtEnd()) {
      return "checkpoint: section '" + name + "' has trailing bytes";
    }
  }
  {
    ckpt::Reader r(events_section->bytes);
    uint32_t count = r.U32();
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t owner = r.U64();
      uint32_t kind = r.U32();
      uint64_t payload = r.U64();
      TimeNs when = r.I64();
      if (!r.ok()) {
        return "checkpoint: truncated section 'events' at event " + std::to_string(i);
      }
      ckpt::Checkpointable* target = nullptr;
      for (const auto& [name, component] : checkpointables_) {
        if (ckpt::Fnv1a64(name) == owner) {
          target = component;
          break;
        }
      }
      if (target == nullptr) {
        return "checkpoint: events[" + std::to_string(i) + "] has unknown owner " +
               HexOwner(owner);
      }
      std::string err = target->RebindEvent(kind, payload, when);
      if (!err.empty()) {
        return "checkpoint: " + err;
      }
    }
    if (!r.AtEnd()) {
      return "checkpoint: section 'events' has trailing bytes";
    }
  }
  // The restored components re-created their armed/started flags themselves
  // (machine started, injector interceptor installed), so the next Run() must
  // skip Arm()/Start() and go straight to RunUntil.
  started_ = true;
  warmup_recorded_ = true;
  warmup_end_alloc_ = perf::AllocNow();
  return "";
}

void Experiment::PrintReport(std::ostream& out, const std::string& title) const {
  PrintExperimentReport(out, title, resilience());
}

void Experiment::SetVcpuServer(Vcpu* vcpu, ServerParams params) {
  assert(server_edf_ != nullptr && "server interfaces need the RT-Xen/vanilla-EDF host");
  server_edf_->SetServer(vcpu, params);
}

void Experiment::Run(TimeNs until) {
  if (!started_) {
    if (injector_ != nullptr) {
      injector_->Arm();  // All VMs exist by now.
    }
    if (auditor_ != nullptr) {
      auditor_->Arm();
    }
    if (controller_ != nullptr) {
      controller_->Arm();
    }
    machine_->Start();
    started_ = true;
  }
  sim_.RunUntil(until);
  if (!warmup_recorded_) {
    warmup_end_alloc_ = perf::AllocNow();
    warmup_recorded_ = true;
  }
}

}  // namespace rtvirt

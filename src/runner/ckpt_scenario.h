// Canonical checkpointable scenario + digest-trail helpers (DESIGN.md §10).
//
// The scenario is the fixed workload the checkpoint tooling agrees on: the
// rtvirt_runner CLI, bench/checkpoint_resilience and tests/checkpoint_test
// all build the *same* seeded RTVirt experiment (2 VMs x 2 VCPUs, periodic
// RTAs under a DeadlineMonitor, optional hypercall faults), so a checkpoint
// written by any of them restores under any other. Determinism makes the
// whole scenario a pure function of (seed, options); the restore contract
// additionally requires the saving and restoring processes to register the
// same checkpointables in the same order, which BuildCkptScenario guarantees
// by construction.
//
// On top of the scenario, the digest-trail helpers drive the divergence
// auditor: run interval by interval, checkpoint at each boundary, keep the
// per-section FNV digests, and diff two trails (live vs live, or live vs a
// recorded file) down to the first forked interval and the component(s)
// whose digest broke first.

#ifndef SRC_RUNNER_CKPT_SCENARIO_H_
#define SRC_RUNNER_CKPT_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/metrics/deadline_monitor.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"

namespace rtvirt {

struct CkptScenarioOptions {
  uint64_t seed = 42;
  // Workload stop time; the simulation itself can run past it.
  TimeNs horizon = Sec(2);
  // Transient hypercall faults (exercises the injector's RNG + event state).
  bool faults = true;
  // Event-queue backend for the underlying simulator.
  SimConfig sim;
};

// The scenario bundle. Destruction order matters: workloads and the monitor
// reference tasks owned by the experiment, so `exp` is declared first (and
// destroyed last).
struct CkptScenario {
  CkptScenarioOptions options;
  std::unique_ptr<Experiment> exp;
  DeadlineMonitor monitor;
  std::vector<std::unique_ptr<PeriodicRta>> rtas;

  // Fresh path only: starts every RTA's register/release chain at t=0. A
  // restored scenario must NOT be started — its chains come back through the
  // checkpoint's event section.
  void Start();
};

// Builds (but does not start) the scenario: experiment, guests, workloads,
// monitor, and the checkpoint registry in its canonical order.
std::unique_ptr<CkptScenario> BuildCkptScenario(const CkptScenarioOptions& options);

// ---------------------------------------------------------------------------
// Digest trails.

struct IntervalDigest {
  int interval = 0;  // 0-based; boundary at t = (interval + 1) * interval_ns.
  TimeNs t = 0;      // Virtual time of the boundary.
  ckpt::StateDigest digest;
};

// Advances `s` interval by interval to `intervals * interval_ns`, saving a
// checkpoint at each boundary and appending its digest to `out`. When
// `image_out` is non-null it receives the final boundary's checkpoint image.
// Returns "" on success or the SaveCheckpoint error.
std::string RecordDigestTrail(CkptScenario& s, TimeNs interval_ns, int intervals,
                              std::vector<IntervalDigest>* out,
                              ckpt::Image* image_out = nullptr);

// One ToLine per boundary, newline-terminated — the --record-digests format.
std::string TrailToText(const std::vector<IntervalDigest>& trail);
// Parses TrailToText output (ignoring blank lines). Returns "" on success or
// an error naming the malformed line.
std::string ParseTrail(const std::string& text, std::vector<IntervalDigest>* out);

struct DivergenceReport {
  bool diverged = false;
  int interval = -1;  // First divergent interval.
  TimeNs t = 0;
  std::vector<std::string> forked;  // Sections whose digests differ there.
  std::string summary;              // Human-readable multi-line breakdown.
};

// Diffs two trails (expected vs actual) down to the first forked boundary.
// Trails of different lengths diverge at the first missing interval.
DivergenceReport CompareTrails(const std::vector<IntervalDigest>& expected,
                               const std::vector<IntervalDigest>& actual);

}  // namespace rtvirt

#endif  // SRC_RUNNER_CKPT_SCENARIO_H_

// Experiment harness shared by the benches, examples and integration tests:
// builds a machine with one of the four schedulers under comparison and
// wires guests to the matching cross-layer policy.

#ifndef SRC_RUNNER_EXPERIMENT_H_
#define SRC_RUNNER_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/audit/invariant_auditor.h"
#include "src/baselines/credit.h"
#include "src/checkpoint/checkpoint.h"
#include "src/common/rng.h"
#include "src/baselines/server_edf.h"
#include "src/control/slo_controller.h"
#include "src/faults/fault_injector.h"
#include "src/guest/guest_os.h"
#include "src/hv/machine.h"
#include "src/metrics/resilience.h"
#include "src/perf/alloc_hooks.h"
#include "src/rtvirt/dpwrap.h"
#include "src/rtvirt/guest_channel.h"
#include "src/sim/sim_config.h"
#include "src/sim/simulator.h"

namespace rtvirt {

enum class Framework {
  kRtvirt,      // pEDF guest + DP-WRAP host + cross-layer channel.
  kRtXen,       // pEDF guest + gEDF/deferrable-server host (CARTS interfaces).
  kCredit,      // Xen default: proportional share with boost.
  kVanillaEdf,  // Two-level EDF without cross-layer awareness (Figure 1).
};

const char* FrameworkName(Framework framework);

struct ExperimentConfig {
  Framework framework = Framework::kRtvirt;
  // Simulator core knobs (event-queue backend selection). The default
  // calendar queue is byte-identical in behavior to kHeap — see
  // src/sim/sim_config.h.
  SimConfig sim;
  MachineConfig machine;
  DpWrapConfig dpwrap;
  ServerEdfConfig server_edf;
  CreditConfig credit;
  GuestChannelOptions channel;
  // Fault-injection plan; an inactive (default) plan leaves the machine
  // untouched. When active, Run() arms the injector on first call and wires
  // crash/restart handling to the guests (ResetAfterCrash / OnVmRestart).
  FaultPlan faults;
  // Cross-layer invariant auditor; disabled by default (no auditor object is
  // even created, and no events are scheduled).
  AuditorConfig audit;
  // Closed-loop SLO controller (src/control); disabled by default (no
  // controller object is created and no events are scheduled, so default-path
  // reports stay byte-identical). Tenants are attached via
  // controller()->Watch(...); the decision tick is armed on first Run().
  ControlConfig control;
  // Print the allocation section (warm-up vs steady-state operator-new
  // counts, peak RSS) in the standard report. Off by default so existing
  // reports stay byte-identical; the RTVIRT_REPORT_ALLOC environment
  // variable force-enables it (used by the CI fault-soak job).
  bool report_alloc = false;
  uint64_t seed = 42;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();
  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  Simulator& sim() { return sim_; }
  Machine& machine() { return *machine_; }
  const ExperimentConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

  // Creates a VM with `vcpus` VCPUs under a guest OS; RTVirt guests get the
  // hypercall/shared-memory channel installed.
  GuestOs* AddGuest(const std::string& name, int vcpus, GuestConfig guest_config = {});

  // RT-Xen / vanilla-EDF: configure a VCPU's host-level server interface.
  void SetVcpuServer(Vcpu* vcpu, ServerParams params);

  // Scheduler access (null unless the matching framework is active).
  DpWrapScheduler* dpwrap() const { return dpwrap_; }
  ServerEdfScheduler* server_edf() const { return server_edf_; }
  CreditScheduler* credit() const { return credit_; }

  // Starts the machine (idempotent) and runs the simulation to `until`.
  void Run(TimeNs until);

  const std::vector<std::unique_ptr<GuestOs>>& guests() const { return guests_; }
  // The guest OS driving `vm`, or null for a VM not created via AddGuest.
  GuestOs* GuestOf(const Vm* vm) const;

  // Kills `guest`'s VM through the machine-level fault path and resets the
  // guest kernel, exactly as an injected VM crash does. Used by the cluster
  // federation to tear a VM down on its source host before re-placing it
  // (host failure evacuation / live rebalance move); safe without a fault
  // injector, and a no-op on an already-crashed VM.
  void CrashGuest(GuestOs* guest);

  bool started() const { return started_; }

  // Fault injection: null unless config.faults is active (armed on Run()).
  FaultInjector* fault_injector() const { return injector_.get(); }
  // Invariant auditor: null unless config.audit.enabled (armed on Run()).
  InvariantAuditor* auditor() const { return auditor_.get(); }
  // SLO controller: null unless config.control.enabled (armed on Run()).
  SloController* controller() const { return controller_.get(); }
  // The cross-layer channel of `guest` (null unless framework is RTVirt).
  RtvirtGuestChannel* ChannelOf(const GuestOs* guest) const;
  // Aggregates injector, per-guest channel, host watchdog/capacity, and
  // auditor counters.
  ResilienceCounters resilience() const;

  // ---- Checkpoint / restore (src/checkpoint, DESIGN.md §10) ----
  // Registers an externally owned component (workload driver, monitor) whose
  // state belongs in checkpoints of this experiment. Built-in components
  // (machine, scheduler, injector, guests, channels) are pre-registered.
  // Call before the first SaveCheckpoint/RestoreCheckpoint, in the same order
  // on the saving and the restoring build.
  void RegisterCheckpointable(const std::string& section, ckpt::Checkpointable* component);

  // Serializes the full simulation state (clock, live events via their tags,
  // RNG, every registered component) into `out`. Returns "" on success, else
  // an error naming the unsupported config or unregistered event. Requires a
  // started experiment on the default path: audit, control, report_alloc and
  // non-RTVirt frameworks are rejected (their components are not yet
  // checkpointable).
  std::string SaveCheckpoint(ckpt::Image* out) const;

  // Restores `image` onto this freshly built (never Run) experiment, which
  // must have been constructed by the same builder code as the saver. On
  // success the experiment behaves as if it had simulated to the checkpoint
  // instant: the next Run(until) continues byte-identically. Never partially
  // applies silently: any error is returned naming the offending section.
  std::string RestoreCheckpoint(const ckpt::Image& image);
  // The standard end-of-run report: resilience counters (including the PCPU
  // fault/recovery and audit sections when those fired) under a title line.
  void PrintReport(std::ostream& out, const std::string& title) const;

 private:
  ExperimentConfig config_;
  Simulator sim_;
  std::unique_ptr<Machine> machine_;
  DpWrapScheduler* dpwrap_ = nullptr;
  ServerEdfScheduler* server_edf_ = nullptr;
  CreditScheduler* credit_ = nullptr;
  std::vector<std::unique_ptr<GuestOs>> guests_;
  std::vector<RtvirtGuestChannel*> channels_;  // Parallel to guests_ (may hold nulls).
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<InvariantAuditor> auditor_;
  std::unique_ptr<SloController> controller_;
  Rng rng_;
  bool started_ = false;
  // Checkpoint registry, in serialization order. Owners are Fnv1a64(name);
  // rebind dispatches each live event's tag owner back to its component.
  std::vector<std::pair<std::string, ckpt::Checkpointable*>> checkpointables_;
  // Allocation attribution: everything up to the end of the first Run() call
  // (construction, guest/workload setup, machine start) is warm-up; the rest
  // is steady state. Snapshots of the global alloc_hooks counters.
  perf::AllocSnapshot ctor_alloc_;
  perf::AllocSnapshot warmup_end_alloc_;
  bool warmup_recorded_ = false;
};

}  // namespace rtvirt

#endif  // SRC_RUNNER_EXPERIMENT_H_

// rtvirt_runner: CLI front-end for the checkpoint/restore + divergence
// auditing machinery (DESIGN.md §10) over the canonical checkpoint scenario
// (src/runner/ckpt_scenario.h).
//
//   rtvirt_runner [--seed=N] [--horizon-ms=N] [--interval-ms=N] [--no-faults]
//                 [--record-digests=FILE]   write the digest trail to FILE
//                 [--replay-verify[=FILE]]  lock-step verify (live twin, or
//                                           against a recorded trail file)
//                 [--perturb=K]             deliberately fork the verified
//                                           instance at interval K (one extra
//                                           RNG draw) — auditor demo/test
//                 [--checkpoint=FILE --checkpoint-at-ms=N]
//                                           save a checkpoint at virtual N ms,
//                                           then keep running to the horizon
//                 [--resume=FILE]           restore FILE instead of starting
//                                           at t=0, then run to the horizon
//
// Exit codes: 0 success / no divergence; 1 usage or I/O or checkpoint error;
// 2 divergence detected (the report pinpoints the first forked interval and
// the component-level digests that broke).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/runner/ckpt_scenario.h"

namespace rtvirt {
namespace {

struct RunnerArgs {
  uint64_t seed = 42;
  int64_t horizon_ms = 1000;
  int64_t interval_ms = 50;
  bool faults = true;
  std::string record_digests;
  bool replay_verify = false;
  std::string replay_trail;  // Optional recorded-trail file.
  int perturb = -1;          // Interval to fork at; -1 = none.
  std::string checkpoint_path;
  int64_t checkpoint_at_ms = -1;
  std::string resume_path;
};

bool ParseArg(const std::string& arg, const char* name, std::string* out) {
  std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseArg(const std::string& arg, const char* name, int64_t* out) {
  std::string value;
  if (!ParseArg(arg, name, &value)) {
    return false;
  }
  *out = std::atoll(value.c_str());
  return true;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seed=N] [--horizon-ms=N] [--interval-ms=N] [--no-faults]\n"
               "  [--record-digests=FILE] [--replay-verify[=FILE]] [--perturb=K]\n"
               "  [--checkpoint=FILE --checkpoint-at-ms=N] [--resume=FILE]\n";
  return 1;
}

CkptScenarioOptions OptionsFor(const RunnerArgs& args) {
  CkptScenarioOptions opt;
  opt.seed = args.seed;
  opt.horizon = Ms(args.horizon_ms);
  opt.faults = args.faults;
  return opt;
}

// Runs one instance boundary-by-boundary, recording its trail; perturbs it
// with one extra RNG draw right after interval `perturb`'s boundary.
std::string RunTrail(const RunnerArgs& args, int perturb,
                     std::vector<IntervalDigest>* trail) {
  auto s = BuildCkptScenario(OptionsFor(args));
  s->Start();
  int intervals = static_cast<int>(args.horizon_ms / args.interval_ms);
  for (int i = 0; i < intervals; ++i) {
    TimeNs boundary = Ms(args.interval_ms) * (i + 1);
    s->exp->Run(boundary);
    ckpt::Image image;
    std::string err = s->exp->SaveCheckpoint(&image);
    if (!err.empty()) {
      return "interval " + std::to_string(i) + ": " + err;
    }
    trail->push_back(IntervalDigest{i, boundary, ckpt::DigestOf(image)});
    if (i == perturb) {
      s->exp->rng().UniformInt(0, 1);  // The deliberate fork: one stolen draw.
    }
  }
  return "";
}

int Main(int argc, char** argv) {
  RunnerArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    int64_t n = 0;
    std::string value;
    if (ParseArg(arg, "--seed", &n)) {
      args.seed = static_cast<uint64_t>(n);
    } else if (ParseArg(arg, "--horizon-ms", &args.horizon_ms) ||
               ParseArg(arg, "--interval-ms", &args.interval_ms) ||
               ParseArg(arg, "--checkpoint-at-ms", &args.checkpoint_at_ms) ||
               ParseArg(arg, "--record-digests", &args.record_digests) ||
               ParseArg(arg, "--checkpoint", &args.checkpoint_path) ||
               ParseArg(arg, "--resume", &args.resume_path)) {
    } else if (arg == "--no-faults") {
      args.faults = false;
    } else if (arg == "--replay-verify") {
      args.replay_verify = true;
    } else if (ParseArg(arg, "--replay-verify", &args.replay_trail)) {
      args.replay_verify = true;
    } else if (ParseArg(arg, "--perturb", &n)) {
      args.perturb = static_cast<int>(n);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return Usage(argv[0]);
    }
  }
  if (args.horizon_ms <= 0 || args.interval_ms <= 0 ||
      args.horizon_ms % args.interval_ms != 0) {
    std::cerr << "horizon-ms must be a positive multiple of interval-ms\n";
    return 1;
  }

  if (args.replay_verify) {
    std::vector<IntervalDigest> expected;
    if (!args.replay_trail.empty()) {
      std::string text;
      if (!ckpt::ReadFileToString(args.replay_trail, &text)) {
        std::cerr << "cannot read trail file " << args.replay_trail << "\n";
        return 1;
      }
      std::string err = ParseTrail(text, &expected);
      if (!err.empty()) {
        std::cerr << err << "\n";
        return 1;
      }
    } else {
      // Live twin: an unperturbed lock-step reference instance.
      std::string err = RunTrail(args, -1, &expected);
      if (!err.empty()) {
        std::cerr << err << "\n";
        return 1;
      }
    }
    std::vector<IntervalDigest> actual;
    std::string err = RunTrail(args, args.perturb, &actual);
    if (!err.empty()) {
      std::cerr << err << "\n";
      return 1;
    }
    DivergenceReport report = CompareTrails(expected, actual);
    std::cout << report.summary;
    return report.diverged ? 2 : 0;
  }

  if (args.perturb >= 0) {
    std::cerr << "--perturb only makes sense with --replay-verify\n";
    return 1;
  }

  // Plain run (optionally recording digests, saving a checkpoint mid-run, or
  // resuming from one).
  auto s = BuildCkptScenario(OptionsFor(args));
  TimeNs start_t = 0;
  if (!args.resume_path.empty()) {
    std::string bytes;
    if (!ckpt::ReadFileToString(args.resume_path, &bytes)) {
      std::cerr << "cannot read checkpoint " << args.resume_path << "\n";
      return 1;
    }
    ckpt::Image image;
    std::string err = ckpt::Image::Parse(bytes, &image);
    if (err.empty()) {
      err = s->exp->RestoreCheckpoint(image);
    }
    if (!err.empty()) {
      std::cerr << err << "\n";
      return 1;
    }
    start_t = s->exp->sim().Now();
    std::cout << "resumed from " << args.resume_path << " at t=" << start_t << "ns\n";
  } else {
    s->Start();
  }
  std::vector<IntervalDigest> trail;
  int intervals = static_cast<int>(args.horizon_ms / args.interval_ms);
  for (int i = 0; i < intervals; ++i) {
    TimeNs boundary = Ms(args.interval_ms) * (i + 1);
    if (boundary <= start_t) {
      continue;  // Already simulated before the resume point.
    }
    s->exp->Run(boundary);
    ckpt::Image image;
    std::string err = s->exp->SaveCheckpoint(&image);
    if (!err.empty()) {
      std::cerr << "interval " << i << ": " << err << "\n";
      return 1;
    }
    if (!args.record_digests.empty()) {
      trail.push_back(IntervalDigest{i, boundary, ckpt::DigestOf(image)});
    }
    if (!args.checkpoint_path.empty() && args.checkpoint_at_ms >= 0 &&
        boundary == Ms(args.checkpoint_at_ms)) {
      err = ckpt::WriteFileAtomic(args.checkpoint_path, image.Serialize());
      if (!err.empty()) {
        std::cerr << err << "\n";
        return 1;
      }
      std::cout << "checkpoint written to " << args.checkpoint_path << " at t=" << boundary
                << "ns\n";
    }
  }
  if (!args.record_digests.empty()) {
    std::string err = ckpt::WriteFileAtomic(args.record_digests, TrailToText(trail));
    if (!err.empty()) {
      std::cerr << err << "\n";
      return 1;
    }
    std::cout << "recorded " << trail.size() << " interval digests to "
              << args.record_digests << "\n";
  }
  std::cout << "completed=" << s->monitor.total_completed()
            << " misses=" << s->monitor.total_misses() << " t=" << s->exp->sim().Now()
            << "ns\n";
  return 0;
}

}  // namespace
}  // namespace rtvirt

int main(int argc, char** argv) { return rtvirt::Main(argc, argv); }

// CARTS-style interface search (paper 4.2).
//
// RT-Xen requires each VM's VCPU interface (budget, period) to be derived
// offline with compositional scheduling analysis. CARTS takes the VCPU's
// task set and a candidate resource period and emits the minimal budget that
// keeps the task set EDF-schedulable; because the resulting bandwidth varies
// non-monotonically with the period, the paper tries different periods and
// keeps the cheapest. MinimalInterface automates exactly that search on a
// granularity grid (the published Table 2 interfaces are reproduced with a
// 1 ms grid; the memcached interfaces with a 1 us grid).

#ifndef SRC_ANALYSIS_CARTS_H_
#define SRC_ANALYSIS_CARTS_H_

#include <optional>
#include <span>
#include <vector>

#include "src/analysis/resource_model.h"

namespace rtvirt {

struct CartsOptions {
  TimeNs granularity = Ms(1);   // Grid for both Π and Θ.
  TimeNs min_period = 0;        // Skip periods below this (0: granularity).
  TimeNs max_period = 0;        // 0: the task set's minimum period.
};

// Minimal budget (on the grid) making `tasks` EDF-schedulable on a resource
// with period `period`; nullopt if even a dedicated CPU does not suffice.
std::optional<TimeNs> MinimalBudget(std::span<const RtaParams> tasks, TimeNs period,
                                    TimeNs granularity);

// Searches periods on the grid and returns the interface with the smallest
// bandwidth (ties: larger period, fewer context switches).
std::optional<PeriodicResource> MinimalInterface(std::span<const RtaParams> tasks,
                                                 const CartsOptions& options = {});

// All candidate interfaces (one per feasible period), cheapest first — used
// to pick "the most efficient configurations that allow the VM to run"
// (section 4.4's RT-Xen A / RT-Xen B).
std::vector<PeriodicResource> InterfaceCandidates(std::span<const RtaParams> tasks,
                                                  const CartsOptions& options = {});

}  // namespace rtvirt

#endif  // SRC_ANALYSIS_CARTS_H_

// Deterministic Multiprocessor Resource periodic model (DMPR), used by the
// paper (4.2) to derive the minimum number of CPUs RT-Xen must *claim* to
// schedule a group of VMs whose VCPU interfaces came out of CARTS.
//
// Full-bandwidth VCPUs each claim a dedicated processor; partial VCPUs are
// packed first-fit-decreasing by bandwidth, each bin claiming one processor.
// The gap between claimed processors and the sum of allocated bandwidths is
// the CSA pessimism RTVirt eliminates (Figure 3's "RT-Xen: Claimed" bars).

#ifndef SRC_ANALYSIS_DMPR_H_
#define SRC_ANALYSIS_DMPR_H_

#include <span>
#include <vector>

#include "src/analysis/resource_model.h"

namespace rtvirt {

struct DmprResult {
  int claimed_cpus = 0;       // Processors that must be set aside.
  Bandwidth allocated;        // Sum of interface bandwidths.
  int full_vcpus = 0;         // Interfaces with bandwidth 1.0.
  int partial_bins = 0;       // Bins used for partial interfaces.
};

// Packs the given VCPU interfaces and returns the claimed-CPU count.
DmprResult DmprPack(std::span<const PeriodicResource> interfaces);

}  // namespace rtvirt

#endif  // SRC_ANALYSIS_DMPR_H_

#include "src/analysis/dmpr.h"

#include <algorithm>

namespace rtvirt {

DmprResult DmprPack(std::span<const PeriodicResource> interfaces) {
  DmprResult result;
  std::vector<Bandwidth> partials;
  for (const PeriodicResource& r : interfaces) {
    Bandwidth bw = r.bandwidth();
    result.allocated += bw;
    if (bw >= Bandwidth::One()) {
      ++result.full_vcpus;
    } else if (bw > Bandwidth::Zero()) {
      partials.push_back(bw);
    }
  }
  std::sort(partials.begin(), partials.end(),
            [](Bandwidth a, Bandwidth b) { return a > b; });
  std::vector<Bandwidth> bins;
  for (Bandwidth bw : partials) {
    bool placed = false;
    for (Bandwidth& bin : bins) {
      if (bin + bw <= Bandwidth::One()) {
        bin += bw;
        placed = true;
        break;
      }
    }
    if (!placed) {
      bins.push_back(bw);
    }
  }
  result.partial_bins = static_cast<int>(bins.size());
  result.claimed_cpus = result.full_vcpus + result.partial_bins;
  return result;
}

}  // namespace rtvirt

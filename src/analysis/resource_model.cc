#include "src/analysis/resource_model.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace rtvirt {

TimeNs SupplyBound(const PeriodicResource& r, TimeNs t) {
  assert(r.period > 0 && r.budget >= 0 && r.budget <= r.period);
  TimeNs blackout = r.period - r.budget;
  TimeNs tp = t - blackout;
  if (tp <= 0) {
    return 0;
  }
  TimeNs k = tp / r.period;
  TimeNs partial = tp - k * r.period - blackout;
  return k * r.budget + std::max<TimeNs>(0, partial);
}

TimeNs DemandBound(std::span<const RtaParams> tasks, TimeNs t) {
  TimeNs demand = 0;
  for (const RtaParams& task : tasks) {
    demand += (t / task.period) * task.slice;
  }
  return demand;
}

Bandwidth TotalUtilization(std::span<const RtaParams> tasks) {
  Bandwidth u;
  for (const RtaParams& task : tasks) {
    u += task.bandwidth();
  }
  return u;
}

bool EdfSchedulableOn(std::span<const RtaParams> tasks, const PeriodicResource& r) {
  if (tasks.empty()) {
    return true;
  }
  Bandwidth util = TotalUtilization(tasks);
  Bandwidth supply_rate = r.bandwidth();
  if (util > supply_rate) {
    return false;  // Long-run demand exceeds long-run supply.
  }

  // Past t*, sbf(t) >= (Θ/Π)(t − 2(Π−Θ)) dominates dbf(t) <= U·t whenever
  // (Θ/Π − U)·t >= (Θ/Π)·2(Π−Θ); checking dbf step points below that bound
  // (plus one extra hyper-step for the boundary case U == Θ/Π) is exact.
  double rate = supply_rate.ToDouble();
  double u = util.ToDouble();
  double blackout = static_cast<double>(2 * (r.period - r.budget));
  TimeNs horizon;
  if (rate - u > 1e-12) {
    horizon = static_cast<TimeNs>(rate * blackout / (rate - u)) + 1;
  } else {
    // Equal rates: demand can only meet supply where both are tight; the
    // hyperperiod of the task periods with the resource period bounds it.
    TimeNs h = r.period;
    for (const RtaParams& task : tasks) {
      h = std::max(h, task.period);
    }
    horizon = 4 * h + 2 * (r.period - r.budget);
  }

  // Check every dbf step (multiples of each task period) up to the horizon.
  std::set<TimeNs> points;
  for (const RtaParams& task : tasks) {
    for (TimeNs t = task.period; t <= horizon; t += task.period) {
      points.insert(t);
      if (points.size() > 200000) {
        break;  // Defensive cap; parameter sets in this repo stay tiny.
      }
    }
  }
  for (TimeNs t : points) {
    if (DemandBound(tasks, t) > SupplyBound(r, t)) {
      return false;
    }
  }
  return true;
}

}  // namespace rtvirt

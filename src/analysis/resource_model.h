// Compositional real-time analysis primitives (Shin & Lee periodic resource
// model), as used by the CARTS tool that configures RT-Xen (paper 4.2).
//
// A component scheduling task set T under EDF on a periodic resource
// Γ = (Π, Θ) is schedulable iff the demand bound function of T never exceeds
// the supply bound function of Γ.

#ifndef SRC_ANALYSIS_RESOURCE_MODEL_H_
#define SRC_ANALYSIS_RESOURCE_MODEL_H_

#include <span>
#include <vector>

#include "src/common/bandwidth.h"
#include "src/common/time.h"
#include "src/guest/task.h"

namespace rtvirt {

// Periodic resource: Θ units of CPU supplied every Π (budget, period).
struct PeriodicResource {
  TimeNs period = 0;  // Π
  TimeNs budget = 0;  // Θ

  Bandwidth bandwidth() const { return Bandwidth::FromSlicePeriod(budget, period); }
};

// Worst-case supply of (Π, Θ) in any interval of length t (the standard
// linear-blackout sbf: supply may stall for up to 2(Π−Θ)).
TimeNs SupplyBound(const PeriodicResource& r, TimeNs t);

// EDF demand of implicit-deadline tasks in any interval of length t:
// dbf(t) = sum_i floor(t / p_i) * s_i.
TimeNs DemandBound(std::span<const RtaParams> tasks, TimeNs t);

// Exact EDF schedulability of `tasks` on resource `r`: dbf(t) <= sbf(t) at
// every dbf step point up to the analysis bound.
bool EdfSchedulableOn(std::span<const RtaParams> tasks, const PeriodicResource& r);

// Total utilization of a task set.
Bandwidth TotalUtilization(std::span<const RtaParams> tasks);

}  // namespace rtvirt

#endif  // SRC_ANALYSIS_RESOURCE_MODEL_H_

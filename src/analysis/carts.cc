#include "src/analysis/carts.h"

#include <algorithm>
#include <cassert>

namespace rtvirt {

std::optional<TimeNs> MinimalBudget(std::span<const RtaParams> tasks, TimeNs period,
                                    TimeNs granularity) {
  assert(period > 0 && granularity > 0);
  // sbf is monotone in the budget, so binary-search the grid.
  TimeNs lo = 1;                     // In grid units.
  TimeNs hi = period / granularity;  // Budget == period: dedicated supply.
  if (hi * granularity < period) {
    return std::nullopt;  // Period off-grid; caller iterates grid periods only.
  }
  if (!EdfSchedulableOn(tasks, PeriodicResource{period, hi * granularity})) {
    return std::nullopt;
  }
  while (lo < hi) {
    TimeNs mid = lo + (hi - lo) / 2;
    if (EdfSchedulableOn(tasks, PeriodicResource{period, mid * granularity})) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo * granularity;
}

std::vector<PeriodicResource> InterfaceCandidates(std::span<const RtaParams> tasks,
                                                  const CartsOptions& options) {
  TimeNs g = options.granularity;
  TimeNs min_p = std::max(options.min_period, g);
  TimeNs max_p = options.max_period;
  if (max_p == 0) {
    max_p = kTimeNever;
    for (const RtaParams& t : tasks) {
      max_p = std::min(max_p, t.period);
    }
  }
  std::vector<PeriodicResource> out;
  for (TimeNs p = min_p; p <= max_p; p += g) {
    std::optional<TimeNs> budget = MinimalBudget(tasks, p, g);
    if (budget.has_value()) {
      out.push_back(PeriodicResource{p, *budget});
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const PeriodicResource& a,
                                              const PeriodicResource& b) {
    Bandwidth ba = a.bandwidth();
    Bandwidth bb = b.bandwidth();
    if (ba != bb) {
      return ba < bb;
    }
    return a.period > b.period;
  });
  return out;
}

std::optional<PeriodicResource> MinimalInterface(std::span<const RtaParams> tasks,
                                                 const CartsOptions& options) {
  std::vector<PeriodicResource> candidates = InterfaceCandidates(tasks, options);
  if (candidates.empty()) {
    return std::nullopt;
  }
  return candidates.front();
}

}  // namespace rtvirt

// McNaughton wrap-around layout used by DP-WRAP (Levin et al., DP-FAIR).
//
// Given per-item allocations within a global slice of length L and m
// processors, the allocations are laid end-to-end on a line of length m*L and
// cut every L: chunk k becomes processor k's schedule. An item straddling a
// cut is split across two processors; because each allocation is at most L,
// its two pieces never overlap in wall-clock time, and at most m-1 items are
// split — DP-WRAP's bound on migrations per global slice.

#ifndef SRC_RTVIRT_WRAP_LAYOUT_H_
#define SRC_RTVIRT_WRAP_LAYOUT_H_

#include <span>
#include <vector>

#include "src/common/time.h"

namespace rtvirt {

struct WrapItem {
  int id = 0;          // Caller-defined identity (e.g., VCPU index).
  TimeNs alloc = 0;    // Allocation within the slice; 0 <= alloc <= slice_len.
};

struct WrapSegment {
  int item_id = 0;
  int pcpu = 0;
  TimeNs start = 0;  // Offset within the slice, [0, slice_len).
  TimeNs end = 0;    // Offset within the slice, (start, slice_len].
};

// Lays `items` out over `pcpus` chunks of `slice_len`. Items with zero
// allocation produce no segments. Precondition: sum of allocations
// <= pcpus * slice_len and each allocation <= slice_len.
//
// Guarantees (enforced by the property tests):
//   * per item, the segment lengths sum to its allocation;
//   * per processor, segments are disjoint and within [0, slice_len];
//   * a split item's two segments do not overlap in wall-clock time;
//   * at most pcpus - 1 items are split.
std::vector<WrapSegment> WrapAround(std::span<const WrapItem> items, TimeNs slice_len,
                                    int pcpus);

// Like WrapAround, but chunk k is already occupied up to `occupied[k]`
// (e.g., by affinity-pinned allocations that must not migrate): wrapped
// items are laid out in the remaining space only. Precondition: sum of
// allocations <= sum of free space.
std::vector<WrapSegment> WrapAroundFrom(std::span<const WrapItem> items, TimeNs slice_len,
                                        std::span<const TimeNs> occupied);

// Heterogeneous-capacity variant for the PCPU fault/degradation model.
// Item allocations are in *effective* (full-speed-equivalent) ns; chunk k
// runs at speed_ppb[k] (Bandwidth::kUnit = full speed, <= 0 = offline — no
// capacity) and is pre-occupied up to occupied[k] wall-clock ns. Returned
// segments are wall-clock offsets within the slice: a piece of E effective
// ns on a chunk at speed s occupies ceil(E/s) wall ns there. Precondition:
// sum of allocations <= sum of per-chunk effective free space (the caller
// trims against Machine::EffectiveCapacity()); per-chunk floor rounding may
// strand < 1 effective ns per chunk visit, which the caller's epsilon slack
// absorbs. The straddle-safety and at-most-m-1-splits properties degrade to
// best-effort here: an item wider than any surviving chunk's effective
// capacity must overlap itself in wall-clock time, and the dispatcher
// serializes such pieces at runtime (bounded lag, nothing dropped).
std::vector<WrapSegment> WrapAroundDegraded(std::span<const WrapItem> items, TimeNs slice_len,
                                            std::span<const TimeNs> occupied,
                                            std::span<const int64_t> speed_ppb);

}  // namespace rtvirt

#endif  // SRC_RTVIRT_WRAP_LAYOUT_H_

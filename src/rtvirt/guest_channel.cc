#include "src/rtvirt/guest_channel.h"

#include <algorithm>

namespace rtvirt {

Bandwidth RtvirtGuestChannel::WithSlack(Bandwidth rta_bw, TimeNs period) const {
  if (rta_bw == Bandwidth::Zero() || period <= 0 || period >= kTimeNever) {
    return rta_bw;
  }
  auto slack = static_cast<TimeNs>(static_cast<double>(options_.budget_slack) *
                                   options_.priority_scale);
  slack = std::min(slack, static_cast<TimeNs>(static_cast<double>(period) *
                                              options_.max_slack_fraction));
  Bandwidth padded = rta_bw + Bandwidth::FromSlicePeriod(slack, period);
  return std::min(padded, Bandwidth::One());
}

int64_t RtvirtGuestChannel::RequestBandwidth(Vcpu* vcpu, Bandwidth rta_bw, TimeNs period) {
  HypercallArgs args;
  args.op = SchedOp::kIncBw;
  args.vcpu_a = vcpu;
  args.bw_a = WithSlack(rta_bw, period);
  args.period_a = period;
  return machine_->Hypercall(vcpu, args);
}

int64_t RtvirtGuestChannel::MoveBandwidth(Vcpu* to, Bandwidth to_bw, TimeNs to_period,
                                          Vcpu* from, Bandwidth from_bw,
                                          TimeNs from_period) {
  HypercallArgs args;
  args.op = SchedOp::kIncDecBw;
  args.vcpu_a = to;
  args.bw_a = WithSlack(to_bw, to_period);
  args.period_a = to_period;
  args.vcpu_b = from;
  args.bw_b = WithSlack(from_bw, from_period);
  args.period_b = from_period;
  return machine_->Hypercall(to, args);
}

void RtvirtGuestChannel::ReleaseBandwidth(Vcpu* vcpu, Bandwidth rta_bw, TimeNs period) {
  HypercallArgs args;
  args.op = SchedOp::kDecBw;
  args.vcpu_a = vcpu;
  args.bw_a = WithSlack(rta_bw, period);
  args.period_a = period;
  machine_->Hypercall(vcpu, args);
}

void RtvirtGuestChannel::PublishNextDeadline(Vcpu* vcpu, TimeNs deadline) {
  vcpu->vm()->shared_page().PublishNextDeadline(vcpu->index(), deadline);
}

}  // namespace rtvirt

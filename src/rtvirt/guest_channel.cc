#include "src/rtvirt/guest_channel.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace rtvirt {

Bandwidth RtvirtGuestChannel::WithSlack(Bandwidth rta_bw, TimeNs period) const {
  if (rta_bw == Bandwidth::Zero() || period <= 0 || period >= kTimeNever) {
    return rta_bw;
  }
  auto slack = static_cast<TimeNs>(static_cast<double>(options_.budget_slack) *
                                   options_.priority_scale);
  slack = std::min(slack, static_cast<TimeNs>(static_cast<double>(period) *
                                              options_.max_slack_fraction));
  Bandwidth padded = rta_bw + Bandwidth::FromSlicePeriod(slack, period);
  return std::min(padded, Bandwidth::One());
}

Bandwidth RtvirtGuestChannel::ConservativeBw(Bandwidth rta_bw, TimeNs period) const {
  if (rta_bw == Bandwidth::Zero() || period <= 0 || period >= kTimeNever) {
    return rta_bw;
  }
  // Full slack, deliberately not trimmed by max_slack_fraction: without
  // deadline sharing the host schedules this VCPU on bandwidth alone, so the
  // reservation must absorb worst-case dispatch latency the way a standalone
  // RT-Xen server would.
  auto slack = static_cast<TimeNs>(static_cast<double>(options_.budget_slack) *
                                   options_.priority_scale);
  Bandwidth padded = rta_bw + Bandwidth::FromSlicePeriod(slack, period);
  return std::min(padded, Bandwidth::One());
}

bool RtvirtGuestChannel::degraded(const Vcpu* vcpu) const {
  auto it = state_.find(vcpu);
  return it != state_.end() && it->second.degraded;
}

Bandwidth RtvirtGuestChannel::GrantedBw(const Vcpu* vcpu) const {
  auto it = state_.find(vcpu);
  return it != state_.end() ? it->second.granted : Bandwidth::Zero();
}

TimeNs RtvirtGuestChannel::GrantedPeriod(const Vcpu* vcpu) const {
  auto it = state_.find(vcpu);
  return it != state_.end() ? it->second.granted_period : 0;
}

int64_t RtvirtGuestChannel::TryHypercall(Vcpu* caller, const HypercallArgs& args) {
  int64_t rc = machine_->Hypercall(caller, args);
  if (rc != kHypercallAgain) {
    return rc;
  }
  ++stats_.transient_failures;
  TimeNs backoff = options_.retry_backoff;
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    ++stats_.retries;
    // The sim clock cannot advance inside a synchronous guest syscall, so the
    // backoff interval is charged to the hypercall overhead account: the
    // guest kernel burns that time on the channel, exactly like a spike.
    stats_.backoff_time += backoff;
    machine_->mutable_overhead().hypercall_time += backoff;
    rc = machine_->Hypercall(caller, args);
    if (rc != kHypercallAgain) {
      ++stats_.retry_successes;
      return rc;
    }
    ++stats_.transient_failures;
    // Same saturation as the repair loop: without the cap, a long kAgain
    // streak (e.g. a rate-limited or quarantined VM) grows the charged
    // backoff geometrically without bound.
    backoff = std::min(
        static_cast<TimeNs>(static_cast<double>(backoff) * options_.retry_backoff_mult),
        options_.repair_backoff_max);
  }
  return rc;
}

void RtvirtGuestChannel::EnterDegraded(VcpuState& st, Vcpu* vcpu) {
  if (st.degraded) {
    return;
  }
  st.degraded = true;
  ++stats_.degraded_entries;
  // Stop sharing deadlines: a deadline the guest can no longer refresh is
  // worse than none — the host falls back to period-based worst cases.
  vcpu->vm()->shared_page().PublishNextDeadline(vcpu->index(), kTimeNever);
  st.desired = ConservativeBw(st.rta_bw, st.rta_period);
  st.desired_period = st.rta_period;
  ScheduleRepair(st, vcpu);
}

void RtvirtGuestChannel::ScheduleRepair(VcpuState& st, Vcpu* vcpu) {
  if (st.repair_scheduled) {
    return;
  }
  st.repair_scheduled = true;
  if (st.repair_backoff <= 0) {
    st.repair_backoff = std::max<TimeNs>(options_.retry_backoff, 1);
  }
  uint64_t gen = generation_;
  machine_->sim()->After(st.repair_backoff, RepairTag(vcpu, gen),
                         [this, vcpu, gen] { RepairTick(vcpu, gen); });
  st.repair_backoff = std::min(
      static_cast<TimeNs>(static_cast<double>(st.repair_backoff) * options_.retry_backoff_mult),
      options_.repair_backoff_max);
}

void RtvirtGuestChannel::RepairTick(Vcpu* vcpu, uint64_t generation) {
  if (generation != generation_) {
    return;  // Scheduled before a Reset(): the state it targeted is gone.
  }
  auto it = state_.find(vcpu);
  if (it == state_.end() || !it->second.degraded) {
    return;
  }
  VcpuState& st = it->second;
  st.repair_scheduled = false;
  ++stats_.repair_attempts;

  // Single probe, no in-call retries: the loop itself is the retry, and its
  // exponential backoff keeps a long outage from flooding the channel.
  HypercallArgs args;
  args.op = SchedOp::kIncBw;
  args.vcpu_a = vcpu;
  args.bw_a = st.desired;
  args.period_a = st.desired_period;
  int64_t rc = machine_->Hypercall(vcpu, args);
  if (rc == kHypercallAgain) {
    ++stats_.transient_failures;
    ScheduleRepair(st, vcpu);
    return;
  }
  // The call was delivered: the channel is healthy again. kHypercallOk means
  // the conservative reservation is installed; kHypercallNoBandwidth means it
  // did not fit, but the previously granted reservation is still installed
  // and covers everything admitted while degraded (local admission only
  // accepted requests within it), so normal operation is safe either way and
  // the next guest request right-sizes the reservation.
  if (rc == kHypercallOk) {
    st.granted = st.desired;
    st.granted_period = st.desired_period;
  }
  st.degraded = false;
  st.repair_backoff = 0;
  ++stats_.recoveries;
  vcpu->vm()->shared_page().PublishNextDeadline(vcpu->index(), st.cached_deadline);
}

int64_t RtvirtGuestChannel::RequestBandwidth(Vcpu* vcpu, Bandwidth rta_bw, TimeNs period,
                                             int64_t reason) {
  VcpuState& st = StateOf(vcpu);
  Bandwidth padded = WithSlack(rta_bw, period);

  if (st.degraded) {
    // Local admission against the reservation the host last acknowledged:
    // the host still holds st.granted, so accepting anything within it needs
    // no channel round-trip and cannot over-commit the host.
    if (padded <= st.granted) {
      st.rta_bw = rta_bw;
      st.rta_period = period;
      st.desired = ConservativeBw(rta_bw, period);
      st.desired_period = period;
      return kHypercallOk;
    }
    return kHypercallAgain;
  }

  HypercallArgs args;
  args.op = SchedOp::kIncBw;
  args.vcpu_a = vcpu;
  args.bw_a = padded;
  args.period_a = period;
  args.reason = reason;
  int64_t rc = TryHypercall(vcpu, args);
  if (rc == kHypercallOk) {
    st.rta_bw = rta_bw;
    st.rta_period = period;
    st.granted = padded;
    st.granted_period = period;
    return rc;
  }
  if (rc == kHypercallAgain && options_.degraded_fallback) {
    EnterDegraded(st, vcpu);
    if (padded <= st.granted) {
      st.rta_bw = rta_bw;
      st.rta_period = period;
      st.desired = ConservativeBw(rta_bw, period);
      st.desired_period = period;
      return kHypercallOk;
    }
  }
  return rc;
}

int64_t RtvirtGuestChannel::MoveBandwidth(Vcpu* to, Bandwidth to_bw, TimeNs to_period,
                                          Vcpu* from, Bandwidth from_bw,
                                          TimeNs from_period) {
  // A move spans two reservations; while either endpoint is degraded its
  // host-side state is unknown, so refuse and let the guest keep the task
  // where it is (the revert path is the existing kGuestErrBusy handling).
  if (degraded(to) || degraded(from)) {
    return kHypercallAgain;
  }
  HypercallArgs args;
  args.op = SchedOp::kIncDecBw;
  args.vcpu_a = to;
  args.bw_a = WithSlack(to_bw, to_period);
  args.period_a = to_period;
  args.vcpu_b = from;
  args.bw_b = WithSlack(from_bw, from_period);
  args.period_b = from_period;
  int64_t rc = TryHypercall(to, args);
  if (rc == kHypercallOk) {
    VcpuState& st_to = StateOf(to);
    st_to.rta_bw = to_bw;
    st_to.rta_period = to_period;
    st_to.granted = args.bw_a;
    st_to.granted_period = to_period;
    VcpuState& st_from = StateOf(from);
    st_from.rta_bw = from_bw;
    st_from.rta_period = from_period;
    st_from.granted = args.bw_b;
    st_from.granted_period = from_period;
  }
  return rc;
}

void RtvirtGuestChannel::ReleaseBandwidth(Vcpu* vcpu, Bandwidth rta_bw, TimeNs period,
                                          int64_t reason) {
  VcpuState& st = StateOf(vcpu);
  st.rta_bw = rta_bw;
  st.rta_period = period;
  if (st.degraded) {
    // Channel is down; remember the smaller target and let the repair loop
    // hand the surplus back when the channel heals.
    st.desired = ConservativeBw(rta_bw, period);
    st.desired_period = period;
    return;
  }
  HypercallArgs args;
  args.op = SchedOp::kDecBw;
  args.vcpu_a = vcpu;
  args.bw_a = WithSlack(rta_bw, period);
  args.period_a = period;
  args.reason = reason;
  int64_t rc = TryHypercall(vcpu, args);
  if (rc == kHypercallOk) {
    st.granted = args.bw_a;
    st.granted_period = period;
  } else if (rc == kHypercallAgain && options_.degraded_fallback) {
    // The host kept the larger reservation (safe, merely wasteful); degrade
    // so the repair loop eventually shrinks it.
    EnterDegraded(st, vcpu);
  }
}

void RtvirtGuestChannel::PublishNextDeadline(Vcpu* vcpu, TimeNs deadline) {
  VcpuState& st = StateOf(vcpu);
  st.cached_deadline = deadline;
  if (st.degraded) {
    return;  // Republished on recovery; the slot stays at kTimeNever.
  }
  vcpu->vm()->shared_page().PublishNextDeadline(vcpu->index(), deadline);
}

void RtvirtGuestChannel::Reset() {
  state_.clear();
  ++generation_;
}

void RtvirtGuestChannel::SaveState(ckpt::Writer& w) const {
  w.U64(generation_);
  w.U64(stats_.transient_failures);
  w.U64(stats_.retries);
  w.U64(stats_.retry_successes);
  w.U64(stats_.degraded_entries);
  w.U64(stats_.recoveries);
  w.U64(stats_.repair_attempts);
  w.I64(stats_.backoff_time);
  std::vector<std::pair<const Vcpu*, const VcpuState*>> sorted;
  sorted.reserve(state_.size());
  for (const auto& [v, st] : state_) {
    sorted.push_back({v, &st});
  }
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.first->global_id() < b.first->global_id();
  });
  w.U32(static_cast<uint32_t>(sorted.size()));
  for (const auto& [v, st] : sorted) {
    w.U32(static_cast<uint32_t>(v->global_id()));
    w.I64(st->rta_bw.ppb());
    w.I64(st->rta_period);
    w.I64(st->granted.ppb());
    w.I64(st->granted_period);
    w.I64(st->desired.ppb());
    w.I64(st->desired_period);
    w.Bool(st->degraded);
    w.I64(st->cached_deadline);
    w.I64(st->repair_backoff);
    w.Bool(st->repair_scheduled);
  }
}

std::string RtvirtGuestChannel::RestoreState(ckpt::Reader& r) {
  generation_ = r.U64();
  stats_.transient_failures = r.U64();
  stats_.retries = r.U64();
  stats_.retry_successes = r.U64();
  stats_.degraded_entries = r.U64();
  stats_.recoveries = r.U64();
  stats_.repair_attempts = r.U64();
  stats_.backoff_time = r.I64();
  state_.clear();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    int gid = static_cast<int>(r.U32());
    Vcpu* v = machine_->VcpuByGlobalId(gid);
    if (v == nullptr) {
      return ckpt_section_ + ": entry[" + std::to_string(i) +
             "] references unknown VCPU global id " + std::to_string(gid);
    }
    VcpuState st;
    st.rta_bw = Bandwidth::FromPpb(r.I64());
    st.rta_period = r.I64();
    st.granted = Bandwidth::FromPpb(r.I64());
    st.granted_period = r.I64();
    st.desired = Bandwidth::FromPpb(r.I64());
    st.desired_period = r.I64();
    st.degraded = r.Bool();
    st.cached_deadline = r.I64();
    st.repair_backoff = r.I64();
    st.repair_scheduled = r.Bool();
    state_[v] = st;
  }
  return r.ok() ? "" : ckpt_section_ + ": truncated section";
}

std::string RtvirtGuestChannel::RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) {
  if (kind != kEvRepair) {
    return ckpt_section_ + ": unknown event kind " + std::to_string(kind);
  }
  int gid = static_cast<int>(payload >> 32);
  // Generations count VM crashes, so the low 32 bits recover the value
  // exactly; a stale pre-Reset() tick still compares unequal and is ignored.
  uint64_t gen = payload & 0xffffffffull;
  Vcpu* vcpu = machine_->VcpuByGlobalId(gid);
  if (vcpu == nullptr) {
    return ckpt_section_ + ": repair event references unknown VCPU global id " +
           std::to_string(gid);
  }
  // Fire-and-forget (the channel never cancels repair ticks); repair_backoff
  // was saved post-multiplication, so rebinding must not advance it again.
  machine_->sim()->At(when, RepairTag(vcpu, gen),
                      [this, vcpu, gen] { RepairTick(vcpu, gen); });
  return "";
}

}  // namespace rtvirt

// Guest-side implementation of the cross-layer channel (paper section 3.2):
// translates guest scheduler events into sched_rtvirt() hypercalls and
// shared-memory deadline publications.

#ifndef SRC_RTVIRT_GUEST_CHANNEL_H_
#define SRC_RTVIRT_GUEST_CHANNEL_H_

#include <cstdint>

#include "src/common/bandwidth.h"
#include "src/common/time.h"
#include "src/guest/cross_layer.h"
#include "src/hv/machine.h"

namespace rtvirt {

struct GuestChannelOptions {
  // Extra budget per VCPU period, compensating for guest- and VMM-level
  // scheduling overheads (paper: 500 us, empirically determined).
  TimeNs budget_slack = Us(500);
  // Priority-proportional slack (paper section 6): higher-priority VMs get
  // proportionally more slack, making their residual miss probability lower
  // than that of less important VMs. Effective slack = budget_slack * scale.
  double priority_scale = 1.0;
  // Upper bound on the slack as a fraction of the VCPU period, protecting
  // short-period reservations (e.g., a 500 us memcached SLO) from a slack
  // tuned for millisecond periods: 500 us of slack on a 500 us period would
  // otherwise double the reservation to a full CPU.
  double max_slack_fraction = 0.1;
};

class RtvirtGuestChannel : public CrossLayerPolicy {
 public:
  explicit RtvirtGuestChannel(Machine* machine, GuestChannelOptions options = {})
      : machine_(machine), options_(options) {}

  int64_t RequestBandwidth(Vcpu* vcpu, Bandwidth rta_bw, TimeNs period) override;
  int64_t MoveBandwidth(Vcpu* to, Bandwidth to_bw, TimeNs to_period, Vcpu* from,
                        Bandwidth from_bw, TimeNs from_period) override;
  void ReleaseBandwidth(Vcpu* vcpu, Bandwidth rta_bw, TimeNs period) override;
  void PublishNextDeadline(Vcpu* vcpu, TimeNs deadline) override;

  // The VCPU budget actually requested from the host: the RTAs' aggregate
  // bandwidth plus the slack, capped at one full CPU.
  Bandwidth WithSlack(Bandwidth rta_bw, TimeNs period) const;

 private:
  Machine* machine_;
  GuestChannelOptions options_;
};

}  // namespace rtvirt

#endif  // SRC_RTVIRT_GUEST_CHANNEL_H_

// Guest-side implementation of the cross-layer channel (paper section 3.2):
// translates guest scheduler events into sched_rtvirt() hypercalls and
// shared-memory deadline publications.
//
// Fault tolerance (degraded-mode cross-layer scheduling): the channel treats
// kHypercallAgain as a transient channel fault and retries the call up to
// `max_retries` times with exponential backoff (the backoff intervals are
// charged to the machine's hypercall overhead account — the guest kernel
// spins/sleeps through them). When retries are exhausted and
// `degraded_fallback` is set, the VCPU drops to a degraded mode that behaves
// like a traditional RT-Xen-style server instead of missing deadlines
// silently: requests are decided locally against the reservation the host
// last acknowledged, deadline sharing stops (the slot reads "no deadline",
// so the host schedules the VCPU on bandwidth alone), and a repair loop
// probes the channel in virtual time with exponential backoff until it can
// install a conservative standalone reservation (full slack, uncapped by
// max_slack_fraction). On success the VCPU returns to normal cross-layer
// operation and republishes its deadline.

#ifndef SRC_RTVIRT_GUEST_CHANNEL_H_
#define SRC_RTVIRT_GUEST_CHANNEL_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/checkpoint/checkpoint.h"
#include "src/common/bandwidth.h"
#include "src/common/time.h"
#include "src/guest/cross_layer.h"
#include "src/hv/machine.h"

namespace rtvirt {

struct GuestChannelOptions {
  // Extra budget per VCPU period, compensating for guest- and VMM-level
  // scheduling overheads (paper: 500 us, empirically determined).
  TimeNs budget_slack = Us(500);
  // Priority-proportional slack (paper section 6): higher-priority VMs get
  // proportionally more slack, making their residual miss probability lower
  // than that of less important VMs. Effective slack = budget_slack * scale.
  double priority_scale = 1.0;
  // Upper bound on the slack as a fraction of the VCPU period, protecting
  // short-period reservations (e.g., a 500 us memcached SLO) from a slack
  // tuned for millisecond periods: 500 us of slack on a 500 us period would
  // otherwise double the reservation to a full CPU.
  double max_slack_fraction = 0.1;

  // ---- Fault recovery ----
  // In-call retries after a transient (-EAGAIN) hypercall failure. 0 keeps
  // the legacy behavior: the first failure is surfaced to the guest.
  int max_retries = 0;
  // First retry backoff; multiplied by retry_backoff_mult per retry. Also
  // seeds the degraded-mode repair loop's probe interval.
  TimeNs retry_backoff = Us(50);
  double retry_backoff_mult = 2.0;
  // Enter degraded mode instead of failing when retries are exhausted.
  bool degraded_fallback = false;
  // Upper bound on both exponential backoffs: the repair loop's probe
  // interval and the in-call retry interval saturate here.
  TimeNs repair_backoff_max = Ms(100);
};

// Counters for the fault/recovery machinery (reported by the benches).
struct ChannelStats {
  uint64_t transient_failures = 0;  // -EAGAIN observations (incl. retries).
  uint64_t retries = 0;             // Re-issued attempts.
  uint64_t retry_successes = 0;     // Calls that recovered within the retry budget.
  uint64_t degraded_entries = 0;    // Transitions into degraded mode.
  uint64_t recoveries = 0;          // Degraded -> normal transitions.
  uint64_t repair_attempts = 0;     // Async repair probes issued.
  TimeNs backoff_time = 0;          // Virtual time spent backing off in-call.
};

class RtvirtGuestChannel : public CrossLayerPolicy, public ckpt::Checkpointable {
 public:
  explicit RtvirtGuestChannel(Machine* machine, GuestChannelOptions options = {})
      : machine_(machine), options_(options) {}

  int64_t RequestBandwidth(Vcpu* vcpu, Bandwidth rta_bw, TimeNs period,
                           int64_t reason = kBwReasonNone) override;
  int64_t MoveBandwidth(Vcpu* to, Bandwidth to_bw, TimeNs to_period, Vcpu* from,
                        Bandwidth from_bw, TimeNs from_period) override;
  void ReleaseBandwidth(Vcpu* vcpu, Bandwidth rta_bw, TimeNs period,
                        int64_t reason = kBwReasonNone) override;
  void PublishNextDeadline(Vcpu* vcpu, TimeNs deadline) override;
  void Reset() override;

  // The VCPU budget actually requested from the host: the RTAs' aggregate
  // bandwidth plus the slack, capped at one full CPU.
  Bandwidth WithSlack(Bandwidth rta_bw, TimeNs period) const;

  // Degraded-mode reservation: full slack (no max_slack_fraction trim), the
  // conservative RT-Xen-style over-provisioning the channel falls back to.
  Bandwidth ConservativeBw(Bandwidth rta_bw, TimeNs period) const;

  bool degraded(const Vcpu* vcpu) const;
  const ChannelStats& stats() const { return stats_; }

  // Reservation the host last acknowledged for `vcpu` (zero if the channel
  // never spoke for it). The invariant auditor compares this against both the
  // guest's local admission total and the host scheduler's reservation table.
  Bandwidth GrantedBw(const Vcpu* vcpu) const;
  TimeNs GrantedPeriod(const Vcpu* vcpu) const;

  // ---- Checkpointing (src/checkpoint) ----
  // The experiment names this channel's section ("channel.<vmid>") right
  // after construction, before any repair event can exist; until then the
  // owner is 0 and repair events would be untagged (SaveCheckpoint rejects
  // untagged events, so a mis-wired channel fails loudly, not silently).
  void SetCkptSection(const std::string& section) {
    ckpt_section_ = section;
    ckpt_owner_ = ckpt::Fnv1a64(section);
  }
  const std::string& ckpt_section() const { return ckpt_section_; }
  enum CkptEventKind : uint32_t {
    kEvRepair = 1,  // Payload = (vcpu global id << 32) | (generation & 0xffffffff).
  };
  void SaveState(ckpt::Writer& w) const override;
  std::string RestoreState(ckpt::Reader& r) override;
  std::string RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) override;

 private:
  struct VcpuState {
    // Raw RTA demand of the last request the channel accepted.
    Bandwidth rta_bw;
    TimeNs rta_period = 0;
    // Padded reservation the host last acknowledged.
    Bandwidth granted;
    TimeNs granted_period = 0;
    // Reservation the repair loop reconciles towards while degraded.
    Bandwidth desired;
    TimeNs desired_period = 0;
    bool degraded = false;
    TimeNs cached_deadline = kTimeNever;  // Republished on recovery.
    TimeNs repair_backoff = 0;
    bool repair_scheduled = false;
  };

  // One hypercall with the in-call bounded-retry loop.
  int64_t TryHypercall(Vcpu* caller, const HypercallArgs& args);
  void EnterDegraded(VcpuState& st, Vcpu* vcpu);
  void ScheduleRepair(VcpuState& st, Vcpu* vcpu);
  void RepairTick(Vcpu* vcpu, uint64_t generation);
  VcpuState& StateOf(Vcpu* vcpu) { return state_[vcpu]; }

  EventTag RepairTag(const Vcpu* vcpu, uint64_t gen) const {
    return EventTag{ckpt_owner_, kEvRepair,
                    (static_cast<uint64_t>(vcpu->global_id()) << 32) | (gen & 0xffffffffull)};
  }

  Machine* machine_;
  GuestChannelOptions options_;
  std::string ckpt_section_;
  uint64_t ckpt_owner_ = 0;
  std::unordered_map<const Vcpu*, VcpuState> state_;
  ChannelStats stats_;
  // Bumped by Reset(): pending repair events from before a VM crash are
  // recognized as stale and ignored.
  uint64_t generation_ = 0;
};

}  // namespace rtvirt

#endif  // SRC_RTVIRT_GUEST_CHANNEL_H_

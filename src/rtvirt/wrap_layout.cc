#include "src/rtvirt/wrap_layout.h"

#include <algorithm>
#include <cassert>

#include "src/common/bandwidth.h"

namespace rtvirt {

std::vector<WrapSegment> WrapAround(std::span<const WrapItem> items, TimeNs slice_len,
                                    int pcpus) {
  assert(slice_len > 0 && pcpus > 0);
  std::vector<WrapSegment> segments;
  segments.reserve(items.size() + pcpus);

  TimeNs cursor = 0;  // Position on the unrolled line of length pcpus * slice_len.
  for (const WrapItem& item : items) {
    assert(item.alloc >= 0 && item.alloc <= slice_len);
    TimeNs remaining = item.alloc;
    while (remaining > 0) {
      int chunk = static_cast<int>(cursor / slice_len);
      assert(chunk < pcpus && "allocations exceed pcpus * slice_len");
      TimeNs offset = cursor % slice_len;
      TimeNs piece = std::min(remaining, slice_len - offset);
      segments.push_back(WrapSegment{item.id, chunk, offset, offset + piece});
      cursor += piece;
      remaining -= piece;
    }
  }
  return segments;
}

std::vector<WrapSegment> WrapAroundFrom(std::span<const WrapItem> items, TimeNs slice_len,
                                        std::span<const TimeNs> occupied) {
  assert(slice_len > 0);
  int pcpus = static_cast<int>(occupied.size());
  std::vector<TimeNs> fill(occupied.begin(), occupied.end());
  std::vector<WrapSegment> segments;
  segments.reserve(items.size() + pcpus);

  // First pass: wrap greedily, refusing straddles whose two pieces would
  // overlap in wall-clock time (the item would run on two PCPUs at once).
  struct Leftover {
    int id;
    TimeNs alloc;
  };
  std::vector<Leftover> leftovers;
  int chunk = 0;
  for (const WrapItem& item : items) {
    TimeNs remaining = item.alloc;
    while (remaining > 0) {
      if (chunk >= pcpus) {
        // Fragmentation from skipped straddles: defer to the second pass.
        leftovers.push_back(Leftover{item.id, remaining});
        break;
      }
      TimeNs free_here = slice_len - fill[chunk];
      if (free_here <= 0) {
        ++chunk;
        continue;
      }
      TimeNs piece = std::min(remaining, free_here);
      if (piece < remaining && chunk + 1 < pcpus) {
        // Straddling: the second piece [occupied, occupied+rest) on the next
        // chunk must end before this piece starts, or the item would overlap
        // itself in wall-clock time. If unsafe, start the whole item on the
        // next chunk instead (trading a little fragmentation for the
        // no-parallel-self guarantee).
        TimeNs rest = remaining - piece;
        if (fill[chunk + 1] + rest > fill[chunk]) {
          ++chunk;
          continue;
        }
      }
      segments.push_back(WrapSegment{item.id, chunk, fill[chunk], fill[chunk] + piece});
      fill[chunk] += piece;
      remaining -= piece;
      if (fill[chunk] == slice_len) {
        ++chunk;
      }
    }
  }
  // Second pass (rare: heavy affinity pinning at near-full utilization):
  // place what is left into any remaining gaps, even if a piece overlaps a
  // sibling piece in time — the dispatcher serializes such pieces at
  // runtime, so this degrades (bounded) rather than drops the allocation.
  for (const Leftover& left : leftovers) {
    TimeNs remaining = left.alloc;
    for (int k = 0; k < pcpus && remaining > 0; ++k) {
      TimeNs free_here = slice_len - fill[k];
      if (free_here <= 0) {
        continue;
      }
      TimeNs piece = std::min(remaining, free_here);
      segments.push_back(WrapSegment{left.id, k, fill[k], fill[k] + piece});
      fill[k] += piece;
      remaining -= piece;
    }
    assert(remaining == 0 && "allocations exceed the free space");
  }
  return segments;
}

std::vector<WrapSegment> WrapAroundDegraded(std::span<const WrapItem> items, TimeNs slice_len,
                                            std::span<const TimeNs> occupied,
                                            std::span<const int64_t> speed_ppb) {
  assert(slice_len > 0);
  assert(occupied.size() == speed_ppb.size());
  int pcpus = static_cast<int>(occupied.size());
  std::vector<TimeNs> fill(occupied.begin(), occupied.end());
  std::vector<WrapSegment> segments;
  segments.reserve(items.size() + pcpus);

  // Effective capacity left on chunk k, floored: flooring under-counts by
  // < 1 effective ns, so a piece sized from it always fits back in wall time
  // (ceil(E * kUnit / s) <= free wall whenever E <= floor(free wall * s / kUnit)).
  auto eff_free = [&](int k) -> TimeNs {
    if (speed_ppb[k] <= 0 || fill[k] >= slice_len) {
      return 0;
    }
    return SpeedWallToWork(slice_len - fill[k], speed_ppb[k]);
  };

  // First pass mirrors WrapAroundFrom, walking in effective ns and emitting
  // in wall ns; straddles whose wall-clock pieces would overlap are deferred.
  struct Leftover {
    int id;
    TimeNs alloc;  // Effective ns.
  };
  std::vector<Leftover> leftovers;
  int chunk = 0;
  for (const WrapItem& item : items) {
    TimeNs remaining = item.alloc;
    while (remaining > 0) {
      if (chunk >= pcpus) {
        leftovers.push_back(Leftover{item.id, remaining});
        break;
      }
      TimeNs free_here = eff_free(chunk);
      if (free_here <= 0) {
        ++chunk;
        continue;
      }
      TimeNs piece = std::min(remaining, free_here);
      TimeNs wall_piece = SpeedWorkToWall(piece, speed_ppb[chunk]);
      if (piece < remaining && chunk + 1 < pcpus) {
        // Straddle safety in wall-clock terms: the continuation on the next
        // chunk must end before this piece starts. Best-effort — the rest is
        // measured against only the next chunk, as in WrapAroundFrom.
        TimeNs rest_eff = std::min(remaining - piece, eff_free(chunk + 1));
        TimeNs rest_wall = speed_ppb[chunk + 1] > 0
                               ? SpeedWorkToWall(rest_eff, speed_ppb[chunk + 1])
                               : 0;
        if (fill[chunk + 1] + rest_wall > fill[chunk]) {
          ++chunk;
          continue;
        }
      }
      segments.push_back(WrapSegment{item.id, chunk, fill[chunk], fill[chunk] + wall_piece});
      fill[chunk] += wall_piece;
      remaining -= piece;
      if (eff_free(chunk) == 0) {
        ++chunk;
      }
    }
  }
  // Second pass: place leftovers into any remaining gaps, tolerating
  // wall-clock self-overlap (the dispatcher serializes). Unlike the
  // homogeneous variant nothing is asserted away to zero: per-chunk floor
  // rounding can strand < 1 effective ns per visit, which the planner's
  // admission epsilon covers.
  for (const Leftover& left : leftovers) {
    TimeNs remaining = left.alloc;
    for (int k = 0; k < pcpus && remaining > 0; ++k) {
      TimeNs free_here = eff_free(k);
      if (free_here <= 0) {
        continue;
      }
      TimeNs piece = std::min(remaining, free_here);
      TimeNs wall_piece = SpeedWorkToWall(piece, speed_ppb[k]);
      segments.push_back(WrapSegment{left.id, k, fill[k], fill[k] + wall_piece});
      fill[k] += wall_piece;
      remaining -= piece;
    }
    assert(remaining <= 2 * static_cast<TimeNs>(pcpus) + 2 &&
           "stranded allocation beyond rounding slack");
  }
  return segments;
}

}  // namespace rtvirt

#include "src/rtvirt/wrap_layout.h"

#include <algorithm>
#include <cassert>

namespace rtvirt {

std::vector<WrapSegment> WrapAround(std::span<const WrapItem> items, TimeNs slice_len,
                                    int pcpus) {
  assert(slice_len > 0 && pcpus > 0);
  std::vector<WrapSegment> segments;
  segments.reserve(items.size() + pcpus);

  TimeNs cursor = 0;  // Position on the unrolled line of length pcpus * slice_len.
  for (const WrapItem& item : items) {
    assert(item.alloc >= 0 && item.alloc <= slice_len);
    TimeNs remaining = item.alloc;
    while (remaining > 0) {
      int chunk = static_cast<int>(cursor / slice_len);
      assert(chunk < pcpus && "allocations exceed pcpus * slice_len");
      TimeNs offset = cursor % slice_len;
      TimeNs piece = std::min(remaining, slice_len - offset);
      segments.push_back(WrapSegment{item.id, chunk, offset, offset + piece});
      cursor += piece;
      remaining -= piece;
    }
  }
  return segments;
}

std::vector<WrapSegment> WrapAroundFrom(std::span<const WrapItem> items, TimeNs slice_len,
                                        std::span<const TimeNs> occupied) {
  assert(slice_len > 0);
  int pcpus = static_cast<int>(occupied.size());
  std::vector<TimeNs> fill(occupied.begin(), occupied.end());
  std::vector<WrapSegment> segments;
  segments.reserve(items.size() + pcpus);

  // First pass: wrap greedily, refusing straddles whose two pieces would
  // overlap in wall-clock time (the item would run on two PCPUs at once).
  struct Leftover {
    int id;
    TimeNs alloc;
  };
  std::vector<Leftover> leftovers;
  int chunk = 0;
  for (const WrapItem& item : items) {
    TimeNs remaining = item.alloc;
    while (remaining > 0) {
      if (chunk >= pcpus) {
        // Fragmentation from skipped straddles: defer to the second pass.
        leftovers.push_back(Leftover{item.id, remaining});
        break;
      }
      TimeNs free_here = slice_len - fill[chunk];
      if (free_here <= 0) {
        ++chunk;
        continue;
      }
      TimeNs piece = std::min(remaining, free_here);
      if (piece < remaining && chunk + 1 < pcpus) {
        // Straddling: the second piece [occupied, occupied+rest) on the next
        // chunk must end before this piece starts, or the item would overlap
        // itself in wall-clock time. If unsafe, start the whole item on the
        // next chunk instead (trading a little fragmentation for the
        // no-parallel-self guarantee).
        TimeNs rest = remaining - piece;
        if (fill[chunk + 1] + rest > fill[chunk]) {
          ++chunk;
          continue;
        }
      }
      segments.push_back(WrapSegment{item.id, chunk, fill[chunk], fill[chunk] + piece});
      fill[chunk] += piece;
      remaining -= piece;
      if (fill[chunk] == slice_len) {
        ++chunk;
      }
    }
  }
  // Second pass (rare: heavy affinity pinning at near-full utilization):
  // place what is left into any remaining gaps, even if a piece overlaps a
  // sibling piece in time — the dispatcher serializes such pieces at
  // runtime, so this degrades (bounded) rather than drops the allocation.
  for (const Leftover& left : leftovers) {
    TimeNs remaining = left.alloc;
    for (int k = 0; k < pcpus && remaining > 0; ++k) {
      TimeNs free_here = slice_len - fill[k];
      if (free_here <= 0) {
        continue;
      }
      TimeNs piece = std::min(remaining, free_here);
      segments.push_back(WrapSegment{left.id, k, fill[k], fill[k] + piece});
      fill[k] += piece;
      remaining -= piece;
    }
    assert(remaining == 0 && "allocations exceed the free space");
  }
  return segments;
}

}  // namespace rtvirt

// RTVirt's host-level DP-WRAP scheduler (paper section 3.3).
//
// VCPUs with sched_rtvirt() reservations are scheduled with deadline
// partitioning: the host computes the next global deadline as the earliest
// next-deadline published (via shared memory) by any reserved VCPU, splits
// the global slice between consecutive global deadlines among the reserved
// VCPUs proportionally to their bandwidths, and lays the allocations onto
// PCPUs with McNaughton's wrap-around — at most m-1 migrations per slice.
// Remaining time runs best-effort VCPUs round-robin, which is how non-RTA
// VMs and background work receive the system's residual bandwidth.

#ifndef SRC_RTVIRT_DPWRAP_H_
#define SRC_RTVIRT_DPWRAP_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/common/bandwidth.h"
#include "src/common/time.h"
#include "src/hv/host_scheduler.h"
#include "src/sim/simulator.h"

namespace rtvirt {

class Vm;

struct DpWrapConfig {
  // Lower bound on the interval between global deadlines, bounding the
  // scheduling overhead (paper: 250 us, empirically set for the hardware).
  TimeNs min_global_slice = Us(250);
  // Horizon used when no reserved VCPU publishes a deadline.
  TimeNs max_global_slice = Ms(100);
  // Replan early when a reserved VCPU wakes after its segments in the
  // current slice have passed (dynamic adaptation, section 4.3).
  bool replan_on_wake = true;
  // Round-robin quantum for best-effort (non-reserved) VCPUs.
  TimeNs best_effort_quantum = Ms(1);
  // Virtual cost model for Table 6: one O(1) VCPU pick, and one global
  // deadline computation per slice costing base + per_log * log2(n_vcpus).
  TimeNs pick_cost = 300;          // ns
  TimeNs replan_cost_base = 800;   // ns
  TimeNs replan_cost_per_log = 200;  // ns
  // Admission tolerance in parts-per-billion. Bandwidths are rounded *up*
  // to whole ppb per reservation, so a task set using exactly 100% of the
  // host can exceed capacity by a few ppb; the tolerance covers that
  // rounding (the planner trims any over-allocation when slicing anyway).
  int64_t admission_epsilon_ppb = 64;

  // Idle tax (paper section 6): untrusted guests may claim more bandwidth
  // than they use. When enabled, each reservation's actual usage is observed
  // per window and its *effective* allocation shrinks towards its usage
  // (never below min_factor of the claim); admission is performed against
  // the taxed total, so hoarded-but-idle bandwidth becomes admissible again.
  struct IdleTax {
    bool enabled = false;
    TimeNs window = Sec(1);
    double headroom = 0.25;   // Grant this much above observed usage.
    double min_factor = 0.1;  // Never tax below 10% of the claim.
  };
  IdleTax idle_tax;

  // Overload pressure (cross-layer back-signal): a periodic scan compares
  // the admitted (effective) total against watermark fractions of capacity
  // and publishes a pressure level into every VM's shared page. Guests with
  // overload control poll it and compress/shed elastic reservations; the
  // hysteresis gap between the watermarks keeps reservations from
  // oscillating. Admission rejections observed since the previous scan also
  // raise pressure (the clearest overload signal there is).
  struct Overload {
    bool enabled = false;
    TimeNs scan_period = Ms(5);
    double high_watermark = 0.98;  // Raise pressure at util >= this.
    double low_watermark = 0.85;   // Clear pressure at util <= this.
    // After a new registration is rejected, its demand is withheld from the
    // published headroom for this long: the freed bandwidth is earmarked for
    // the retrying newcomer instead of being re-absorbed by guests
    // re-inflating compressed reservations. Must exceed the application's
    // admission-retry interval to be effective.
    TimeNs admission_hold = Ms(200);
  };
  Overload overload;

  // PCPU fault recovery (cross-layer capacity renegotiation): when enabled,
  // Machine::SetPcpuOnline / SetPcpuSpeed events re-plan the DP-WRAP layout
  // across the surviving *effective* capacity (offline cores get no
  // segments; throttled cores get wall-clock-stretched ones), and admission
  // plus the overload watermarks run against the degraded capacity — so a
  // failure that leaves total demand unfittable raises pressure through the
  // ordinary overload protocol and guests compress/shed, with the same
  // hysteresis reversing everything on re-online. When disabled (the
  // default) capacity events are ignored: the frozen layout keeps planning
  // against nominal capacity and whatever lands on dead or slowed cores is
  // simply lost (the no-protection baseline).
  struct PcpuRecovery {
    bool enabled = false;
  };
  PcpuRecovery pcpu_recovery;

  // Byzantine-guest containment (trust boundary for the cross-layer
  // interface): the paper's protocol has the host *trust* guest-published
  // deadlines and bandwidth requests. When enabled, three defenses keep one
  // adversarial VM from destroying co-resident guarantees:
  //   (1) a deadline sanitizer on shared-page reads — publications already in
  //       the past when written are distrusted and scored; publications whose
  //       horizon at publish time is below the floor are clamped (clamps are
  //       benign-common near period boundaries and are counted, not scored);
  //       a VM whose fresh publications bind the global slice at the floor
  //       more than max_floor_bindings times per rate_window loses deadline
  //       trust for the window remainder (replan-rate budget);
  //   (2) a per-VM hypercall token bucket returning kHypercallAgain on
  //       exhaustion (the guest channel's retry/degraded machinery already
  //       speaks that protocol), plus INC/DEC oscillation-abuse detection;
  //   (3) a per-VM reputation score with a quarantine state machine: scores
  //       decay every scan; crossing quarantine_threshold demotes the VM to
  //       bandwidth-only scheduling (deadline slots ignored, bandwidth raises
  //       admission-held) until rehab_clean_scans consecutive violation-free
  //       scans rehabilitate it (hysteresis, like the overload watermarks).
  struct GuestTrust {
    bool enabled = false;
    // Sanitizer floor on the publish-time horizon of a deadline; 0 derives
    // it from min_global_slice (the replan-rate bound it protects).
    TimeNs deadline_floor = 0;
    // Replan-rate budget: fresh publications from one VM binding the global
    // slice at/below the floor, per rate_window.
    TimeNs rate_window = Ms(100);
    int max_floor_bindings = 128;
    // Token bucket: sustained hypercalls/second and burst, per VM.
    double hypercall_rate = 2000.0;
    int hypercall_burst = 64;
    // INC_BW/DEC_BW direction flips tolerated per rate_window before an
    // oscillation-abuse violation is scored.
    int max_bw_flips = 32;
    // Reputation scan cadence, per-scan score decay factor, the score at
    // which a VM is quarantined (each violation adds 1), and how many
    // consecutive clean scans rehabilitate a quarantined VM.
    TimeNs scan_period = Ms(10);
    double score_decay = 0.8;
    double quarantine_threshold = 8.0;
    int rehab_clean_scans = 20;

    TimeNs floor(TimeNs min_global_slice) const {
      return deadline_floor > 0 ? deadline_floor : min_global_slice;
    }
  };
  GuestTrust guest_trust;

  // Watchdog (fault model): periodically reclaims the reservations of
  // crashed VMs (their guests cannot issue DEC_BW anymore — the bandwidth is
  // orphaned until the host takes it back) and optionally distrusts shared-
  // page deadlines that have not been refreshed within freshness_horizon.
  struct Watchdog {
    // Reclaim orphaned reservations of crashed VMs.
    bool reclaim_crashed = false;
    TimeNs scan_period = Ms(10);
    // Ignore a published deadline whose last write is older than this when
    // deriving the global deadline; the sporadic worst case (now + period)
    // applies instead. 0 disables the check. Must exceed the longest RTA
    // publication interval (roughly the largest RTA period), otherwise
    // healthy long-period publications get distrusted and over-served.
    TimeNs freshness_horizon = 0;

    bool enabled() const { return reclaim_crashed || freshness_horizon > 0; }
  };
  Watchdog watchdog;
};

class DpWrapScheduler : public HostScheduler, public ckpt::Checkpointable {
 public:
  explicit DpWrapScheduler(DpWrapConfig config = {});

  std::string_view name() const override { return "rtvirt-dpwrap"; }
  void Attach(Machine* machine) override;
  void VcpuInserted(Vcpu* vcpu) override;
  void VcpuRemoved(Vcpu* vcpu) override;
  void VcpuWake(Vcpu* vcpu) override;
  void VcpuBlock(Vcpu* vcpu) override;
  ScheduleDecision PickNext(Pcpu* pcpu) override;
  void PcpuCapacityChanged(Pcpu* pcpu) override;
  void AccountRun(Vcpu* vcpu, TimeNs ran) override;
  int64_t Hypercall(Vcpu* caller, const HypercallArgs& args) override;
  TimeNs ScheduleCost(const Pcpu* pcpu) const override;

  // CPU affinity (paper section 6): a reserved VCPU pinned to a PCPU is laid
  // out at the start of that PCPU's chunk every slice and excluded from the
  // m-1 migrating VCPUs. Pass -1 to clear. The combined bandwidth of the
  // VCPUs pinned to one PCPU must not exceed 1.0.
  void SetAffinity(Vcpu* vcpu, int pcpu);
  int Affinity(const Vcpu* vcpu) const;

  // Introspection.
  Bandwidth total_reserved() const { return total_; }
  Bandwidth capacity() const { return capacity_; }
  Bandwidth ReservedBw(const Vcpu* vcpu) const;
  uint64_t replans() const { return replans_; }
  TimeNs slice_start() const { return slice_start_; }
  TimeNs slice_end() const { return slice_end_; }
  // Taxed (effective) total and per-VCPU tax factor; equals the raw values
  // when the idle tax is disabled.
  Bandwidth total_effective() const;
  double TaxFactor(const Vcpu* vcpu) const;
  // Fault-model introspection: reservations reclaimed from crashed VMs and
  // stale publications overridden by the freshness horizon.
  uint64_t watchdog_reclaims() const { return watchdog_reclaims_; }
  uint64_t stale_rejections() const { return stale_rejections_; }
  // Re-plans triggered by PCPU capacity events (pcpu_recovery only).
  uint64_t capacity_replans() const { return capacity_replans_; }
  // Byzantine-guest containment introspection (guest_trust only).
  uint64_t deadline_lie_rejections() const { return deadline_lie_rejections_; }
  uint64_t deadline_floor_clamps() const { return deadline_floor_clamps_; }
  uint64_t replan_budget_trips() const { return replan_budget_trips_; }
  uint64_t hypercall_rate_rejections() const { return hypercall_rate_rejections_; }
  uint64_t bw_thrash_trips() const { return bw_thrash_trips_; }
  uint64_t quarantines() const { return quarantines_; }
  uint64_t quarantine_releases() const { return quarantine_releases_; }
  uint64_t quarantine_holds() const { return quarantine_holds_; }
  bool Quarantined(const Vm* vm) const;
  // Overload-pressure introspection.
  bool pressure() const { return pressure_; }
  uint64_t pressure_raises() const { return pressure_raises_; }
  uint64_t pressure_clears() const { return pressure_clears_; }
  uint64_t shed_releases() const { return shed_releases_; }
  uint64_t admission_rejections() const { return admission_rejections_; }

  // Auditor access: visits every reservation's owner, raw bandwidth, and
  // period (iteration order is unspecified).
  template <typename Fn>
  void ForEachReservation(Fn&& fn) const {
    for (const auto& [v, res] : reservations_) {
      fn(v, res.bw, res.period);
    }
  }

  // ---- Checkpoint support (src/checkpoint) ----
  static constexpr const char* kCkptSection = "dpwrap";
  enum CkptEventKind : uint32_t {
    kEvTax = 1,
    kEvWatchdog = 2,
    kEvOverload = 3,
    kEvTrust = 4,
    kEvReplan = 5,          // Slice-end replan timer.
    kEvEarlyReplan = 6,     // Deferred wake-triggered replan.
    kEvDeferredReplan = 7,  // Coalesced After(0) replan (replan_pending_).
  };
  void SaveState(ckpt::Writer& w) const override;
  std::string RestoreState(ckpt::Reader& r) override;
  std::string RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) override;

  // Self-check of the scheduler's bookkeeping and of the current plan
  // (segments in bounds and non-overlapping, per-VCPU supply within the
  // reservation plus carry backlog, carries bounded, totals consistent).
  // Returns human-readable violation descriptions; empty when consistent.
  std::vector<std::string> AuditPlan() const;

  // Isolation invariant (guest_trust only): every reservation owned by a
  // non-quarantined, non-crashed VM receives at least its fluid share of the
  // current slice — a quarantined (or any other) VM's behavior must never
  // depress a well-behaved VM's planned allocation. Complements AuditPlan's
  // upper bound. Empty when the knob is off, a replan is pending, or the
  // machine is degraded (capacity shortfalls are the pressure protocol's
  // business, not an isolation question).
  std::vector<std::string> AuditIsolation() const;

 private:
  struct Reservation {
    Vcpu* vcpu = nullptr;
    Bandwidth bw;
    TimeNs period = 0;
    uint64_t order = 0;  // Stable layout order: keeps segments at stable offsets.
    // Sub-ns remainder carried between slices so that the cumulative
    // allocation tracks the fluid schedule to within 1 ns over any window.
    int64_t carry_ppb = 0;
    int affinity = -1;  // PCPU this VCPU is pinned to; -1 = may migrate.
    // Idle tax state: observed usage in the current window and the factor
    // currently applied to the claimed bandwidth.
    TimeNs used_in_window = 0;
    double tax_factor = 1.0;
    // Trust sanitizer: publish timestamps already charged, so one bad
    // publication scores once, not once per replan that re-reads the slot.
    TimeNs last_lie_publish = -1;
    TimeNs last_floor_publish = -1;

    Bandwidth EffectiveBw() const {
      return tax_factor >= 1.0
                 ? bw
                 : Bandwidth::FromPpb(static_cast<int64_t>(
                       static_cast<double>(bw.ppb()) * tax_factor));
    }
  };
  struct PlanSegment {
    Vcpu* vcpu = nullptr;
    int pcpu = 0;
    TimeNs start = 0;  // Absolute.
    TimeNs end = 0;    // Absolute.
  };

  // Recomputes the global deadline and the per-PCPU plan, effective now.
  void Replan();
  // Coalesced deferred replan (multiple hypercalls in one instant).
  void ScheduleReplan();
  void TickleAll();
  Vcpu* PickBestEffort(TimeNs now, Pcpu* pcpu);
  bool HasActiveSegment(const Vcpu* vcpu, TimeNs now) const;
  int64_t ApplyReservation(Vcpu* vcpu, Bandwidth bw, TimeNs period, bool admit,
                           int64_t reason = kBwReasonNone);
  // Periodic idle-tax accounting: adjusts tax factors from observed usage.
  void TaxTick();
  // Periodic watchdog scan: reclaims crashed-VM reservations.
  void WatchdogTick();
  // Periodic overload scan: updates the pressure state from the watermarks
  // and recent admission rejections, publishing it to every VM's page.
  void OverloadTick();

  // ---- Byzantine-guest containment (guest_trust) ----
  // Per-VM trust state: token bucket, rate windows, reputation, quarantine.
  struct VmTrust {
    // Hypercall token bucket.
    double tokens = 0.0;
    TimeNs token_time = 0;
    bool bucket_init = false;
    // Sliding rate window (floor bindings, INC/DEC flips, window distrust).
    TimeNs window_start = 0;
    int floor_bindings = 0;
    int bw_flips = 0;
    int last_bw_dir = 0;  // +1 after INC_BW, -1 after DEC_BW, 0 unknown.
    bool deadlines_distrusted = false;  // Budget tripped; clears on window roll.
    // Reputation / quarantine state machine.
    double score = 0.0;
    bool quarantined = false;
    int clean_scans = 0;
    bool violated_since_scan = false;
  };
  VmTrust& TrustOf(const Vm* vm) { return trust_[vm]; }
  void RollTrustWindow(VmTrust& t, TimeNs now);
  // Scores one violation; crossing the threshold quarantines immediately
  // (containment latency is the whole point) and schedules a replan so the
  // attacker's deadline influence ends with this event, not the next scan.
  void TrustViolation(VmTrust& t);
  // Token bucket + oscillation detection + quarantine admission hold; called
  // at the top of Hypercall. kHypercallOk admits the call to the dispatcher.
  int64_t TrustAdmitHypercall(Vcpu* caller, const HypercallArgs& args);
  // Periodic reputation scan: decays scores and rehabilitates quarantined
  // VMs after enough consecutive clean scans.
  void TrustTick();

  EventTag Tag(uint32_t kind) const { return EventTag{ckpt_owner_, kind, 0}; }

  DpWrapConfig config_;
  Bandwidth capacity_;
  std::unordered_map<const Vcpu*, Reservation> reservations_;
  std::unordered_map<const Vcpu*, int> pending_affinity_;  // Pins set pre-reservation.
  std::vector<Vcpu*> all_vcpus_;
  Bandwidth total_;
  uint64_t next_order_ = 0;

  TimeNs slice_start_ = 0;
  TimeNs slice_end_ = 0;
  std::vector<std::vector<PlanSegment>> pcpu_plan_;                   // Per PCPU.
  std::unordered_map<const Vcpu*, std::vector<PlanSegment>> vcpu_segments_;
  Simulator::EventId replan_event_;
  Simulator::EventId early_replan_event_;
  Simulator::EventId tax_event_;
  Simulator::EventId watchdog_event_;
  bool replan_pending_ = false;

  size_t be_cursor_ = 0;
  int tickle_cursor_ = 0;
  uint64_t replans_ = 0;
  uint64_t watchdog_reclaims_ = 0;
  uint64_t stale_rejections_ = 0;
  uint64_t capacity_replans_ = 0;

  // Overload-pressure state.
  Simulator::EventId overload_event_;
  bool pressure_ = false;
  int64_t pressure_reason_ = 0;          // kPressure* while pressure_ is set.
  uint64_t rejections_since_tick_ = 0;   // Admission rejections since last scan.
  uint64_t pressure_raises_ = 0;
  uint64_t pressure_clears_ = 0;
  uint64_t shed_releases_ = 0;           // DEC_BW with kBwReasonOverloadShed.
  uint64_t admission_rejections_ = 0;    // Lifetime kHypercallNoBandwidth count.
  // Demand of recently rejected new registrations, withheld from the
  // published headroom until `expires` (FIFO — holds expire in push order).
  struct HeldDemand {
    TimeNs expires = 0;
    Bandwidth bw;
  };
  std::deque<HeldDemand> held_demand_;

  // Byzantine-guest containment state. Only ever iterated through the
  // machine's VM index order (TrustTick); map lookups are by pointer.
  std::unordered_map<const Vm*, VmTrust> trust_;
  Simulator::EventId trust_event_;
  uint64_t deadline_lie_rejections_ = 0;   // Past-at-publish publications scored.
  uint64_t deadline_floor_clamps_ = 0;     // Below-floor horizons clamped (not scored).
  uint64_t replan_budget_trips_ = 0;       // Floor-binding budget exhaustions.
  uint64_t hypercall_rate_rejections_ = 0; // Token-bucket kHypercallAgain returns.
  uint64_t bw_thrash_trips_ = 0;           // INC/DEC oscillation violations.
  uint64_t quarantines_ = 0;
  uint64_t quarantine_releases_ = 0;
  uint64_t quarantine_holds_ = 0;          // Bandwidth raises held while quarantined.
  uint64_t ckpt_owner_ = ckpt::Fnv1a64(kCkptSection);
};

}  // namespace rtvirt

#endif  // SRC_RTVIRT_DPWRAP_H_

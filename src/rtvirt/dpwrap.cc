#include "src/rtvirt/dpwrap.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "src/hv/machine.h"
#include "src/rtvirt/wrap_layout.h"

namespace rtvirt {

DpWrapScheduler::DpWrapScheduler(DpWrapConfig config) : config_(config) {}

void DpWrapScheduler::Attach(Machine* machine) {
  HostScheduler::Attach(machine);
  capacity_ = Bandwidth::Cpus(machine->num_pcpus());
  pcpu_plan_.resize(machine->num_pcpus());
  if (config_.idle_tax.enabled) {
    tax_event_ = machine_->sim()->After(config_.idle_tax.window, Tag(kEvTax), [this] { TaxTick(); });
  }
  if (config_.watchdog.reclaim_crashed) {
    watchdog_event_ = machine_->sim()->After(config_.watchdog.scan_period, Tag(kEvWatchdog),
                                             [this] { WatchdogTick(); });
  }
  if (config_.overload.enabled) {
    overload_event_ = machine_->sim()->After(config_.overload.scan_period, Tag(kEvOverload),
                                             [this] { OverloadTick(); });
  }
  if (config_.guest_trust.enabled) {
    trust_event_ = machine_->sim()->After(config_.guest_trust.scan_period, Tag(kEvTrust),
                                          [this] { TrustTick(); });
  }
}

void DpWrapScheduler::RollTrustWindow(VmTrust& t, TimeNs now) {
  if (now - t.window_start >= config_.guest_trust.rate_window) {
    t.window_start = now;
    t.floor_bindings = 0;
    t.bw_flips = 0;
    t.deadlines_distrusted = false;
  }
}

void DpWrapScheduler::TrustViolation(VmTrust& t) {
  t.score += 1.0;
  t.violated_since_scan = true;
  if (!t.quarantined && t.score >= config_.guest_trust.quarantine_threshold) {
    t.quarantined = true;
    t.clean_scans = 0;
    ++quarantines_;
    ScheduleReplan();
  }
}

void DpWrapScheduler::TrustTick() {
  const DpWrapConfig::GuestTrust& gt = config_.guest_trust;
  // Machine VM-index order, not map order: rehabilitation replans must fire
  // in a deterministic sequence.
  for (int i = 0; i < machine_->num_vms(); ++i) {
    auto it = trust_.find(machine_->vm(i));
    if (it == trust_.end()) {
      continue;
    }
    VmTrust& t = it->second;
    t.score *= gt.score_decay;
    if (t.score < 1e-6) {
      t.score = 0.0;
    }
    if (t.quarantined) {
      // Hysteresis-governed rehabilitation, mirroring the overload
      // watermarks and the PCPU heal path: release only after enough
      // consecutive scans with no violation and a mostly decayed score —
      // a still-attacking VM keeps resetting the counter itself.
      if (!t.violated_since_scan && t.score < gt.quarantine_threshold / 2) {
        if (++t.clean_scans >= gt.rehab_clean_scans) {
          t.quarantined = false;
          t.clean_scans = 0;
          t.score = 0.0;
          ++quarantine_releases_;
          ScheduleReplan();
        }
      } else {
        t.clean_scans = 0;
      }
    }
    t.violated_since_scan = false;
  }
  trust_event_ = machine_->sim()->After(gt.scan_period, Tag(kEvTrust), [this] { TrustTick(); });
}

bool DpWrapScheduler::Quarantined(const Vm* vm) const {
  auto it = trust_.find(vm);
  return it != trust_.end() && it->second.quarantined;
}

int64_t DpWrapScheduler::TrustAdmitHypercall(Vcpu* caller, const HypercallArgs& args) {
  const DpWrapConfig::GuestTrust& gt = config_.guest_trust;
  TimeNs now = machine_->sim()->Now();
  VmTrust& t = TrustOf(caller->vm());
  RollTrustWindow(t, now);
  if (!t.bucket_init) {
    t.bucket_init = true;
    t.tokens = static_cast<double>(gt.hypercall_burst);
  } else {
    t.tokens = std::min(static_cast<double>(gt.hypercall_burst),
                        t.tokens + static_cast<double>(now - t.token_time) *
                                       gt.hypercall_rate / 1e9);
  }
  t.token_time = now;
  if (t.tokens < 1.0) {
    // Exhausted bucket: the existing retry/degraded-fallback machinery
    // already speaks kHypercallAgain, so a throttled well-behaved guest
    // backs off and recovers while a storm keeps scoring violations.
    ++hypercall_rate_rejections_;
    TrustViolation(t);
    return kHypercallAgain;
  }
  t.tokens -= 1.0;
  // INC/DEC oscillation abuse: a guest thrashing its reservation up and down
  // buys a replan per call without ever holding the bandwidth. Direction
  // flips within the rate window beyond the budget score a violation; the
  // flip counter re-arms so each trip needs a fresh burst.
  int dir = args.op == SchedOp::kIncBw ? 1 : args.op == SchedOp::kDecBw ? -1 : 0;
  if (dir != 0) {
    if (t.last_bw_dir != 0 && dir != t.last_bw_dir &&
        ++t.bw_flips > gt.max_bw_flips) {
      t.bw_flips = 0;
      ++bw_thrash_trips_;
      TrustViolation(t);
    }
    t.last_bw_dir = dir;
  }
  if (t.quarantined) {
    // Bandwidth-only scheduling: the VM keeps exactly what it holds. Raises
    // are admission-held until rehabilitation, and even shrinks are frozen —
    // every accepted reservation change forces an immediate replan, so a
    // quarantined guest alternating cheap DEC calls could keep restarting
    // the global slice and starve its neighbors through the quarantine. The
    // held bandwidth is merely wasteful (bounded by what admission already
    // granted); the shrink retries and lands after release.
    ++quarantine_holds_;
    return kHypercallAgain;
  }
  return kHypercallOk;
}

void DpWrapScheduler::OverloadTick() {
  double util = capacity_.ppb() > 0
                    ? static_cast<double>(total_effective().ppb()) /
                          static_cast<double>(capacity_.ppb())
                    : 0.0;
  if (!pressure_) {
    // Admission rejections are the sharpest overload signal: a guest just
    // asked for bandwidth the host does not have. The watermark catches the
    // creeping case where everything was admitted but nothing is left.
    if (rejections_since_tick_ > 0 || util >= config_.overload.high_watermark) {
      pressure_ = true;
      pressure_reason_ =
          rejections_since_tick_ > 0 ? kPressureAdmission : kPressureWatermark;
      ++pressure_raises_;
    }
  } else if (util <= config_.overload.low_watermark && rejections_since_tick_ == 0) {
    pressure_ = false;
    pressure_reason_ = kPressureNone;
    ++pressure_clears_;
  }
  rejections_since_tick_ = 0;
  // Remaining admittable bandwidth, published so guest re-inflation can stay
  // below it instead of probing by hypercall (a failed probe would count as
  // an admission rejection and re-raise pressure). Demand of recently
  // rejected registrations is withheld: that bandwidth is earmarked for the
  // retrying newcomers, not for re-inflation — otherwise the re-inflating
  // guests (polling every scan) would always outrace an application retry
  // loop and the newcomer would never get in.
  TimeNs now = machine_->sim()->Now();
  while (!held_demand_.empty() && held_demand_.front().expires <= now) {
    held_demand_.pop_front();
  }
  Bandwidth held;
  for (const HeldDemand& h : held_demand_) {
    held += h.bw;
  }
  Bandwidth limit = capacity_ + Bandwidth::FromPpb(config_.admission_epsilon_ppb);
  // Advertise headroom against the *high watermark*, not the admission
  // limit: room the guests could legally take but that would immediately
  // re-raise pressure (util >= high_watermark) must not be advertised, or
  // resume -> watermark pressure -> shed becomes a steady limit cycle.
  Bandwidth watermark = Bandwidth::FromPpb(static_cast<int64_t>(
      config_.overload.high_watermark * static_cast<double>(capacity_.ppb())));
  limit = std::min(limit, watermark);
  Bandwidth eff = total_effective() + held;
  int64_t headroom_ppb = eff < limit ? (limit - eff).ppb() : 0;
  // Publish to every VM's page each scan (idempotent; guests poll).
  for (int i = 0; i < machine_->num_vms(); ++i) {
    machine_->vm(i)->shared_page().PublishPressure(pressure_ ? 1 : 0, pressure_reason_,
                                                   headroom_ppb);
  }
  overload_event_ = machine_->sim()->After(config_.overload.scan_period, Tag(kEvOverload),
                                           [this] { OverloadTick(); });
}

void DpWrapScheduler::WatchdogTick() {
  // A crashed VM's guest can never issue the DEC_BW that would free its
  // reservations; without the watchdog that bandwidth stays admitted forever
  // and blocks new tenants. Reclaim it host-side.
  bool changed = false;
  for (auto it = reservations_.begin(); it != reservations_.end();) {
    if (it->first->vm()->crashed()) {
      total_ -= it->second.bw;
      ++watchdog_reclaims_;
      it = reservations_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) {
    ScheduleReplan();
  }
  watchdog_event_ = machine_->sim()->After(config_.watchdog.scan_period, Tag(kEvWatchdog),
                                           [this] { WatchdogTick(); });
}

void DpWrapScheduler::AccountRun(Vcpu* vcpu, TimeNs ran) {
  auto it = reservations_.find(vcpu);
  if (it != reservations_.end()) {
    it->second.used_in_window += ran;
  }
}

void DpWrapScheduler::TaxTick() {
  // Settle in-flight runs so usage is attributed to this window.
  for (int i = 0; i < machine_->num_pcpus(); ++i) {
    machine_->pcpu(i)->SettleAccounting();
  }
  double window = static_cast<double>(config_.idle_tax.window);
  bool changed = false;
  for (auto& [v, res] : reservations_) {
    double granted = static_cast<double>(res.EffectiveBw().ppb()) / Bandwidth::kUnit * window;
    double u = granted > 0 ? static_cast<double>(res.used_in_window) / granted : 0.0;
    double next = std::clamp(res.tax_factor * std::min(u, 1.0) + config_.idle_tax.headroom,
                             config_.idle_tax.min_factor, 1.0);
    if (std::abs(next - res.tax_factor) > 1e-3) {
      res.tax_factor = next;
      changed = true;
    }
    res.used_in_window = 0;
  }
  tax_event_ = machine_->sim()->After(config_.idle_tax.window, Tag(kEvTax), [this] { TaxTick(); });
  if (changed) {
    ScheduleReplan();
  }
}

Bandwidth DpWrapScheduler::total_effective() const {
  if (!config_.idle_tax.enabled) {
    return total_;
  }
  Bandwidth total;
  for (const auto& [v, res] : reservations_) {
    total += res.EffectiveBw();
  }
  return total;
}

double DpWrapScheduler::TaxFactor(const Vcpu* vcpu) const {
  auto it = reservations_.find(vcpu);
  return it == reservations_.end() ? 1.0 : it->second.tax_factor;
}

void DpWrapScheduler::VcpuInserted(Vcpu* vcpu) { all_vcpus_.push_back(vcpu); }

void DpWrapScheduler::VcpuRemoved(Vcpu* vcpu) {
  all_vcpus_.erase(std::remove(all_vcpus_.begin(), all_vcpus_.end(), vcpu), all_vcpus_.end());
  auto it = reservations_.find(vcpu);
  if (it != reservations_.end()) {
    total_ -= it->second.bw;
    reservations_.erase(it);
    ScheduleReplan();
  }
  vcpu_segments_.erase(vcpu);
}

void DpWrapScheduler::SetAffinity(Vcpu* vcpu, int pcpu) {
  assert(pcpu >= -1 && pcpu < machine_->num_pcpus());
  // Persist the pin across reservation lifetimes (an RTA may unregister and
  // re-register; the VM's cache-locality preference does not change).
  pending_affinity_[vcpu] = pcpu;
  auto it = reservations_.find(vcpu);
  if (it != reservations_.end()) {
    it->second.affinity = pcpu;
    ScheduleReplan();
  }
}

int DpWrapScheduler::Affinity(const Vcpu* vcpu) const {
  auto it = reservations_.find(vcpu);
  if (it != reservations_.end()) {
    return it->second.affinity;
  }
  auto pending = pending_affinity_.find(vcpu);
  return pending == pending_affinity_.end() ? -1 : pending->second;
}

Bandwidth DpWrapScheduler::ReservedBw(const Vcpu* vcpu) const {
  auto it = reservations_.find(vcpu);
  return it == reservations_.end() ? Bandwidth::Zero() : it->second.bw;
}

bool DpWrapScheduler::HasActiveSegment(const Vcpu* vcpu, TimeNs now) const {
  auto it = vcpu_segments_.find(vcpu);
  if (it == vcpu_segments_.end()) {
    return false;
  }
  for (const PlanSegment& seg : it->second) {
    if (seg.start <= now && now < seg.end) {
      return true;
    }
  }
  return false;
}

void DpWrapScheduler::TickleAll() {
  for (int i = 0; i < machine_->num_pcpus(); ++i) {
    machine_->pcpu(i)->RequestReschedule();
  }
}

void DpWrapScheduler::ScheduleReplan() {
  if (replan_pending_) {
    return;
  }
  replan_pending_ = true;
  machine_->sim()->After(0, Tag(kEvDeferredReplan), [this] {
    replan_pending_ = false;
    Replan();
  });
}

void DpWrapScheduler::Replan() {
  Simulator* sim = machine_->sim();
  TimeNs now = sim->Now();
  sim->Cancel(replan_event_);
  sim->Cancel(early_replan_event_);
  ++replans_;

  // Cost model: the global deadline is derived on one PCPU in O(log n) from
  // the per-VCPU deadlines (section 4.5) and shared with the others.
  TimeNs cost = config_.replan_cost_base;
  for (size_t k = reservations_.size(); k > 1; k >>= 1) {
    cost += config_.replan_cost_per_log;
  }
  machine_->mutable_overhead().schedule_time += cost;

  slice_start_ = now;
  TimeNs next_gd = now + config_.max_global_slice;
  bool trust_on = config_.guest_trust.enabled;
  TimeNs floor = config_.guest_trust.floor(config_.min_global_slice);
  for (auto& [v, res] : reservations_) {
    const SharedSchedPage& page = v->vm()->shared_page();
    TimeNs cand = page.next_deadline(v->index());
    bool distrusted = false;
    if (trust_on && cand < kTimeNever) {
      VmTrust& t = TrustOf(v->vm());
      RollTrustWindow(t, now);
      TimeNs published = page.last_publish_time(v->index());
      // A deadline already stale by more than the reservation's own period
      // when it was published is a lie, not lateness: an honest backlogged
      // guest publishes its (slightly) past head deadline under transient
      // overload, but never one a whole period expired — scoring mild
      // staleness would quarantine exactly the victims an attack makes
      // tardy. Score once per publication — the slot value persists across
      // replans and must not be re-counted, or a VM could never
      // rehabilitate after the attack stops. The bogus value itself is
      // neutralized by the sporadic fallback below either way. Publications
      // merely *below the floor* are normal (a completing job publishes its
      // next release, which can be arbitrarily close): clamp + count, no
      // score.
      if (published >= 0 && cand < published - res.period &&
          published != res.last_lie_publish) {
        res.last_lie_publish = published;
        ++deadline_lie_rejections_;
        TrustViolation(t);
      } else if (published >= 0 && cand > now && cand - published < floor) {
        cand = std::max(cand, now + floor);
        ++deadline_floor_clamps_;
      }
      if (t.quarantined || t.deadlines_distrusted) {
        distrusted = true;
      } else if (cand <= now + floor && published >= 0 &&
                 published != res.last_floor_publish) {
        // Replan-rate budget: each *fresh* publication that binds the global
        // slice at the floor spends one of the window's floor bindings. A
        // guest oscillating fast enough to exhaust it is forcing the planner
        // to replan at the maximum rate — distrust its slots for the rest of
        // the window.
        res.last_floor_publish = published;
        if (++t.floor_bindings > config_.guest_trust.max_floor_bindings) {
          t.deadlines_distrusted = true;
          ++replan_budget_trips_;
          TrustViolation(t);
          distrusted = true;
        }
      }
    }
    if (!distrusted && config_.watchdog.freshness_horizon > 0 && cand < kTimeNever) {
      // Distrust a deadline the guest has not refreshed within the horizon:
      // the guest may be wedged (or its publication lost), and honoring an
      // ancient promise would let the host under-serve everyone else.
      TimeNs published = page.last_publish_time(v->index());
      if (published < 0 || now - published > config_.watchdog.freshness_horizon) {
        ++stale_rejections_;
        cand = 0;  // Forces the sporadic worst case below.
      }
    }
    if (distrusted) {
      cand = 0;  // Bandwidth-only scheduling: the slot gets the worst case.
    }
    if (cand <= now) {
      // Stale publication: apply the sporadic worst case — the VCPU's RTAs
      // may activate immediately with their minimum period.
      cand = now + res.period;
    }
    next_gd = std::min(next_gd, cand);
  }
  next_gd = std::max(next_gd, now + config_.min_global_slice);
  slice_end_ = next_gd;
  TimeNs slice_len = slice_end_ - slice_start_;

  // Proportional split of the global slice, laid out in stable order so a
  // VCPU's segment offsets stay put across slices unless reservations change.
  std::vector<Reservation*> ordered;
  ordered.reserve(reservations_.size());
  for (auto& [v, res] : reservations_) {
    ordered.push_back(&res);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Reservation* a, const Reservation* b) { return a->order < b->order; });

  // Proportional allocations with a per-reservation sub-ns carry, keeping the
  // cumulative supply within 1 ns of the fluid schedule over any window.
  auto take_alloc = [&](Reservation* res, TimeNs cap) {
    __int128 raw =
        static_cast<__int128>(res->EffectiveBw().ppb()) * slice_len + res->carry_ppb;
    TimeNs alloc = std::min(static_cast<TimeNs>(raw / Bandwidth::kUnit), cap);
    // Clipped share stays in the carry (bounded to one period of backlog).
    __int128 carry = raw - static_cast<__int128>(alloc) * Bandwidth::kUnit;
    __int128 carry_max = static_cast<__int128>(res->EffectiveBw().ppb()) * res->period;
    res->carry_ppb = static_cast<int64_t>(std::min(carry, carry_max));
    return alloc;
  };

  for (auto& plan : pcpu_plan_) {
    plan.clear();
  }
  vcpu_segments_.clear();
  auto emit = [&](Vcpu* v, int pcpu, TimeNs start, TimeNs end) {
    PlanSegment ps{v, pcpu, slice_start_ + start, slice_start_ + end};
    pcpu_plan_[pcpu].push_back(ps);
    vcpu_segments_[v].push_back(ps);
  };

  // Degraded machines (pcpu_recovery only) take the heterogeneous layout
  // path below; a healthy machine always takes the exact nominal path.
  bool degraded = false;
  if (config_.pcpu_recovery.enabled) {
    for (int k = 0; k < machine_->num_pcpus(); ++k) {
      const Pcpu* pc = machine_->pcpu(k);
      if (!pc->online() || pc->speed_ppb() != Bandwidth::kUnit) {
        degraded = true;
        break;
      }
    }
  }

  std::vector<TimeNs> occupied(machine_->num_pcpus(), 0);
  std::vector<Reservation*> wrapped;
  wrapped.reserve(ordered.size());
  if (!degraded) {
    // Affinity-pinned reservations first, at the head of their PCPU's chunk:
    // they never migrate and never split (paper section 6).
    for (Reservation* res : ordered) {
      if (res->affinity < 0) {
        wrapped.push_back(res);
        continue;
      }
      int pcpu = res->affinity;
      TimeNs alloc = take_alloc(res, slice_len - occupied[pcpu]);
      if (alloc > 0) {
        emit(res->vcpu, pcpu, occupied[pcpu], occupied[pcpu] + alloc);
        occupied[pcpu] += alloc;
      }
    }

    // Everything else wraps into the remaining space (McNaughton).
    TimeNs free_total = 0;
    for (TimeNs occ : occupied) {
      free_total += slice_len - occ;
    }
    std::vector<WrapItem> items;
    items.reserve(wrapped.size());
    TimeNs allocated = 0;
    for (size_t i = 0; i < wrapped.size(); ++i) {
      // The carries can overshoot capacity by < n ns; trim the tail.
      TimeNs alloc = take_alloc(wrapped[i], std::min(slice_len, free_total - allocated));
      allocated += alloc;
      items.push_back(WrapItem{static_cast<int>(i), alloc});
    }
    std::vector<WrapSegment> segments = WrapAroundFrom(items, slice_len, occupied);
    for (const WrapSegment& seg : segments) {
      emit(wrapped[seg.item_id]->vcpu, seg.pcpu, seg.start, seg.end);
    }
  } else {
    // Degraded layout: plan in *effective* (full-speed-equivalent) ns
    // against the surviving cores, then stretch back to wall-clock segments.
    // take_alloc stays in effective ns, so the carry accumulators keep
    // tracking the fluid schedule across healthy and degraded slices alike.
    std::vector<int64_t> speeds(machine_->num_pcpus(), 0);
    for (int k = 0; k < machine_->num_pcpus(); ++k) {
      const Pcpu* pc = machine_->pcpu(k);
      speeds[k] = pc->online() ? pc->speed_ppb() : 0;
    }
    auto eff_free = [&](int k) -> TimeNs {
      if (speeds[k] <= 0 || occupied[k] >= slice_len) {
        return 0;
      }
      return SpeedWallToWork(slice_len - occupied[k], speeds[k]);
    };
    for (Reservation* res : ordered) {
      int pcpu = res->affinity;
      if (pcpu < 0 || speeds[pcpu] <= 0) {
        // A pin to a dead core cannot hold: evacuate into the wrap. The pin
        // itself persists (res->affinity untouched) and re-applies on heal.
        wrapped.push_back(res);
        continue;
      }
      TimeNs alloc = take_alloc(res, eff_free(pcpu));
      if (alloc > 0) {
        TimeNs wall = SpeedWorkToWall(alloc, speeds[pcpu]);
        emit(res->vcpu, pcpu, occupied[pcpu], occupied[pcpu] + wall);
        occupied[pcpu] += wall;
      }
    }
    TimeNs free_total = 0;
    for (int k = 0; k < machine_->num_pcpus(); ++k) {
      free_total += eff_free(k);
    }
    std::vector<WrapItem> items;
    items.reserve(wrapped.size());
    TimeNs allocated = 0;
    for (size_t i = 0; i < wrapped.size(); ++i) {
      TimeNs alloc = take_alloc(wrapped[i], std::min(slice_len, free_total - allocated));
      allocated += alloc;
      items.push_back(WrapItem{static_cast<int>(i), alloc});
    }
    std::vector<WrapSegment> segments =
        WrapAroundDegraded(items, slice_len, occupied, speeds);
    for (const WrapSegment& seg : segments) {
      emit(wrapped[seg.item_id]->vcpu, seg.pcpu, seg.start, seg.end);
    }
  }
  // Host->guest notification of the slice allocation (Figure 2).
  for (const auto& [v, segs] : vcpu_segments_) {
    TimeNs alloc = 0;
    for (const PlanSegment& s : segs) {
      alloc += s.end - s.start;
    }
    v->vm()->shared_page().PublishAllocation(v->index(), segs.front().start, alloc);
  }

  replan_event_ = sim->At(slice_end_, Tag(kEvReplan), [this] { Replan(); });
  TickleAll();
}

Vcpu* DpWrapScheduler::PickBestEffort(TimeNs now, Pcpu* pcpu) {
  size_t n = all_vcpus_.size();
  for (size_t i = 0; i < n; ++i) {
    Vcpu* v = all_vcpus_[(be_cursor_ + i) % n];
    bool continuing = v->running() && v->pcpu() == pcpu;
    if (!v->runnable() && !continuing) {
      continue;
    }
    if (HasActiveSegment(v, now)) {
      continue;  // Its own segment's PCPU is about to pick it.
    }
    be_cursor_ = (be_cursor_ + i + 1) % n;
    return v;
  }
  return nullptr;
}

ScheduleDecision DpWrapScheduler::PickNext(Pcpu* pcpu) {
  TimeNs now = machine_->sim()->Now();
  if (now >= slice_end_) {
    Replan();
  }

  const std::vector<PlanSegment>& plan = pcpu_plan_[pcpu->id()];
  for (const PlanSegment& seg : plan) {
    if (seg.end <= now) {
      continue;
    }
    if (seg.start > now) {
      // Gap before the next reserved segment: best-effort fill.
      Vcpu* be = PickBestEffort(now, pcpu);
      if (be != nullptr) {
        return ScheduleDecision{be, std::min(seg.start, now + config_.best_effort_quantum)};
      }
      return ScheduleDecision{nullptr, seg.start};
    }
    // Active reserved segment.
    Vcpu* v = seg.vcpu;
    if (v->running() && v->pcpu() != pcpu) {
      Pcpu* holder = v->pcpu();
      bool holder_owns = false;
      auto own = vcpu_segments_.find(v);
      if (own != vcpu_segments_.end()) {
        for (const PlanSegment& s : own->second) {
          if (s.pcpu == holder->id() && s.start <= now && now < s.end) {
            holder_owns = true;
            break;
          }
        }
      }
      if (holder_owns) {
        // The plan gives this VCPU wall-clock-overlapping pieces (leftover
        // placement tolerates that) and the holder rightly keeps it, so a
        // re-tickle would spin forever at this instant. Serialize instead:
        // wait for the holder to release.
        return ScheduleDecision{nullptr, std::min(seg.end, holder->run_until())};
      }
      // The earlier piece of this (split) VCPU has not been descheduled yet
      // (its stop event is queued at this same instant), or the holder is on
      // a stale pre-replan grant. Re-tickle both sides.
      holder->RequestReschedule();
      pcpu->RequestReschedule();
      return ScheduleDecision{nullptr, seg.end};
    }
    if (v->runnable() || (v->running() && v->pcpu() == pcpu)) {
      return ScheduleDecision{v, seg.end};
    }
    // Reserved VCPU is blocked: backfill, but re-check at segment end.
    Vcpu* be = PickBestEffort(now, pcpu);
    if (be != nullptr) {
      return ScheduleDecision{be, std::min(seg.end, now + config_.best_effort_quantum)};
    }
    return ScheduleDecision{nullptr, seg.end};
  }
  // Trailing residual time up to the global deadline.
  Vcpu* be = PickBestEffort(now, pcpu);
  if (be != nullptr) {
    return ScheduleDecision{be, std::min(slice_end_, now + config_.best_effort_quantum)};
  }
  return ScheduleDecision{nullptr, slice_end_};
}

void DpWrapScheduler::VcpuWake(Vcpu* vcpu) {
  TimeNs now = machine_->sim()->Now();
  // How much of this VCPU's reserved time is still ahead in the current
  // slice, and which PCPU serves it next.
  TimeNs remaining_seg = 0;
  const PlanSegment* next_seg = nullptr;
  auto it = vcpu_segments_.find(vcpu);
  if (it != vcpu_segments_.end()) {
    for (const PlanSegment& seg : it->second) {
      if (seg.end > now) {
        remaining_seg += seg.end - std::max(seg.start, now);
        if (next_seg == nullptr) {
          next_seg = &seg;
        }
      }
    }
  }
  auto res = reservations_.find(vcpu);
  if (res != reservations_.end() && config_.replan_on_wake) {
    // Replan when the wake finds a substantial part of this slice's share
    // already gone (fully passed, or the wake landed mid-segment): the
    // arrival would otherwise wait most of a period for the next slice.
    // Never replan within min_global_slice of the last plan.
    TimeNs full_share = res->second.EffectiveBw().SliceOf(slice_end_ - slice_start_);
    if (remaining_seg + Us(1) < full_share) {
      TimeNs earliest = slice_start_ + config_.min_global_slice;
      if (now >= earliest) {
        Replan();
        return;
      }
      if (!early_replan_event_.valid()) {
        early_replan_event_ =
            machine_->sim()->At(earliest, Tag(kEvEarlyReplan), [this] { Replan(); });
      }
      // The deferral costs this reservation bw * (earliest - now) of supply
      // before its deadline; compensate through the carry accumulator so the
      // deferred slice hands the share back. Repeated wakes inside the same
      // deferral window must not stack compensation past one period of
      // backlog plus this deferral's worth — the bound the auditor checks.
      __int128 comp = static_cast<__int128>(res->second.carry_ppb) +
                      static_cast<__int128>(res->second.EffectiveBw().ppb()) *
                          (earliest - now);
      __int128 comp_max =
          static_cast<__int128>(res->second.EffectiveBw().ppb()) *
          (res->second.period + config_.min_global_slice);
      res->second.carry_ppb = static_cast<int64_t>(std::min(comp, comp_max));
      // Fall through: use whatever segment time remains until the replan.
    }
  }
  if (next_seg != nullptr) {
    machine_->pcpu(next_seg->pcpu)->RequestReschedule();
    return;
  }
  if (res != reservations_.end()) {
    return;  // replan_on_wake off: served from the next global slice on.
  }
  // Best-effort wake: grab an idle PCPU if there is one (round-robin so
  // simultaneous wakes tickle distinct PCPUs).
  int n = machine_->num_pcpus();
  for (int k = 0; k < n; ++k) {
    Pcpu* p = machine_->pcpu((tickle_cursor_ + k) % n);
    if (!p->online()) {
      continue;  // A dead core looks idle but will never dispatch anyone.
    }
    if (p->idle()) {
      tickle_cursor_ = (p->id() + 1) % n;
      p->RequestReschedule();
      return;
    }
  }
}

void DpWrapScheduler::VcpuBlock(Vcpu* vcpu) { (void)vcpu; }

void DpWrapScheduler::PcpuCapacityChanged(Pcpu* pcpu) {
  (void)pcpu;
  if (!config_.pcpu_recovery.enabled) {
    return;  // Frozen layout: keep planning against nominal capacity.
  }
  // Admission, the overload watermarks, and the published headroom all key
  // off capacity_; once it tracks the surviving effective supply, the
  // renegotiation with the guests rides the existing pressure protocol —
  // demand that no longer fits raises pressure at the next overload scan,
  // guests compress/shed, and the same hysteresis re-inflates after heal.
  capacity_ = machine_->EffectiveCapacity();
  ++capacity_replans_;
  ScheduleReplan();
}

TimeNs DpWrapScheduler::ScheduleCost(const Pcpu* pcpu) const {
  (void)pcpu;
  return config_.pick_cost;
}

int64_t DpWrapScheduler::ApplyReservation(Vcpu* vcpu, Bandwidth bw, TimeNs period,
                                          bool admit, int64_t reason) {
  if (bw > Bandwidth::One() || bw < Bandwidth::Zero()) {
    return kHypercallInvalid;
  }
  if (bw > Bandwidth::Zero() && period <= 0) {
    return kHypercallInvalid;
  }
  auto it = reservations_.find(vcpu);
  Bandwidth old = it == reservations_.end() ? Bandwidth::Zero() : it->second.bw;
  Bandwidth new_total = total_ - old + bw;
  if (admit) {
    // With the idle tax, admission runs against the *taxed* total: idle
    // over-claims do not block new tenants.
    Bandwidth old_eff =
        it == reservations_.end() ? Bandwidth::Zero() : it->second.EffectiveBw();
    Bandwidth admitted_total = total_effective() - old_eff + bw;
    Bandwidth limit = capacity_ + Bandwidth::FromPpb(config_.admission_epsilon_ppb);
    if (config_.overload.enabled &&
        (reason == kBwReasonReinflate || reason == kBwReasonSloControl)) {
      // Re-inflation and SLO-controller raises are only admitted up to the
      // high watermark; new demand may use the full capacity. Guests gate on
      // the published headroom, but two guests polling in the same scan
      // window can both claim the same advertised room — enforcing the
      // watermark here turns that race into a clean rejection instead of a
      // watermark-pressure/shed cycle.
      limit = std::min(limit, Bandwidth::FromPpb(static_cast<int64_t>(
                                  config_.overload.high_watermark *
                                  static_cast<double>(capacity_.ppb()))));
    }
    if (admitted_total > limit) {
      ++admission_rejections_;
      // Only *new* RTA demand counts toward pressure. The reason code is the
      // authoritative signal: guests pack several RTAs per VCPU, so a fresh
      // admission usually arrives here as a *raise* of an existing
      // reservation (old != 0), which a registration heuristic would miss.
      // kBwReasonReinflate (a recovery probe) never raises pressure, or the
      // probes and the pressure signal would chase each other in a loop.
      bool new_demand = reason == kBwReasonAdmission ||
                        (reason == kBwReasonNone && old == Bandwidth::Zero());
      if (new_demand) {
        ++rejections_since_tick_;
        if (config_.overload.enabled) {
          // Earmark the rejected *increment*: the published headroom
          // withholds it so re-inflation cannot swallow the bandwidth that
          // guests are about to shed for this newcomer. (Overlapping retries
          // of the same newcomer stack extra holds — conservative,
          // self-expiring.)
          TimeNs now = machine_->sim()->Now();
          while (!held_demand_.empty() && held_demand_.front().expires <= now) {
            held_demand_.pop_front();
          }
          Bandwidth delta = bw > old ? bw - old : Bandwidth::Zero();
          if (delta > Bandwidth::Zero()) {
            held_demand_.push_back(
                HeldDemand{now + config_.overload.admission_hold, delta});
          }
        }
      }
      return kHypercallNoBandwidth;
    }
  }
  total_ = new_total;
  TimeNs clamped_period = std::min(period, config_.max_global_slice);
  if (bw == Bandwidth::Zero()) {
    if (it != reservations_.end()) {
      reservations_.erase(it);
    }
  } else if (it != reservations_.end()) {
    it->second.bw = bw;
    it->second.period = clamped_period;
    // Supply-debt earned at the old rate does not survive a shrink: the
    // carry's backlog entitlement is one period at the *current* bandwidth
    // (the same bound take_alloc and the auditor enforce), or a compressed
    // reservation would keep claiming its pre-compression share.
    __int128 carry_max =
        static_cast<__int128>(it->second.EffectiveBw().ppb()) * clamped_period;
    if (static_cast<__int128>(it->second.carry_ppb) > carry_max) {
      it->second.carry_ppb = static_cast<int64_t>(carry_max);
    }
  } else {
    Reservation res;
    res.vcpu = vcpu;
    res.bw = bw;
    res.period = clamped_period;
    res.order = next_order_++;
    auto pending = pending_affinity_.find(vcpu);
    if (pending != pending_affinity_.end()) {
      res.affinity = pending->second;
    }
    reservations_[vcpu] = res;
  }
  return kHypercallOk;
}

int64_t DpWrapScheduler::Hypercall(Vcpu* caller, const HypercallArgs& args) {
  if (config_.guest_trust.enabled && caller != nullptr) {
    int64_t trc = TrustAdmitHypercall(caller, args);
    if (trc != kHypercallOk) {
      return trc;
    }
  }
  if (args.vcpu_a == nullptr) {
    return kHypercallInvalid;
  }
  int64_t rc = kHypercallInvalid;
  switch (args.op) {
    case SchedOp::kIncBw:
      rc = ApplyReservation(args.vcpu_a, args.bw_a, args.period_a, /*admit=*/true,
                            args.reason);
      break;
    case SchedOp::kDecBw:
      rc = ApplyReservation(args.vcpu_a, args.bw_a, args.period_a, /*admit=*/false);
      if (rc == kHypercallOk && args.reason == kBwReasonOverloadShed) {
        ++shed_releases_;  // Guest responded to pressure; observability only.
      }
      break;
    case SchedOp::kIncDecBw: {
      if (args.vcpu_b == nullptr) {
        return kHypercallInvalid;
      }
      auto itb = reservations_.find(args.vcpu_b);
      Bandwidth old_b = itb == reservations_.end() ? Bandwidth::Zero() : itb->second.bw;
      TimeNs old_period_b = itb == reservations_.end() ? 0 : itb->second.period;
      int64_t rc_b =
          ApplyReservation(args.vcpu_b, args.bw_b, args.period_b, /*admit=*/false);
      if (rc_b != kHypercallOk) {
        return rc_b;
      }
      rc = ApplyReservation(args.vcpu_a, args.bw_a, args.period_a, /*admit=*/true,
                            args.reason);
      if (rc != kHypercallOk) {
        // Roll the donor back.
        ApplyReservation(args.vcpu_b, old_b, old_period_b, /*admit=*/false);
        return rc;
      }
      break;
    }
  }
  if (rc == kHypercallOk) {
    ScheduleReplan();
  }
  return rc;
}

void DpWrapScheduler::SaveState(ckpt::Writer& w) const {
  w.I64(capacity_.ppb());
  w.I64(total_.ppb());
  w.U64(next_order_);
  w.I64(slice_start_);
  w.I64(slice_end_);
  w.Bool(replan_pending_);
  w.U64(be_cursor_);
  w.U32(static_cast<uint32_t>(tickle_cursor_));
  w.U64(replans_);
  w.U64(watchdog_reclaims_);
  w.U64(stale_rejections_);
  w.U64(capacity_replans_);
  w.Bool(pressure_);
  w.I64(pressure_reason_);
  w.U64(rejections_since_tick_);
  w.U64(pressure_raises_);
  w.U64(pressure_clears_);
  w.U64(shed_releases_);
  w.U64(admission_rejections_);
  w.U64(deadline_lie_rejections_);
  w.U64(deadline_floor_clamps_);
  w.U64(replan_budget_trips_);
  w.U64(hypercall_rate_rejections_);
  w.U64(bw_thrash_trips_);
  w.U64(quarantines_);
  w.U64(quarantine_releases_);
  w.U64(quarantine_holds_);

  // VCPU insertion order drives the best-effort round-robin; serialize the
  // global-id sequence so a restored scheduler validates it saw the same one.
  w.U32(static_cast<uint32_t>(all_vcpus_.size()));
  for (const Vcpu* v : all_vcpus_) {
    w.U32(static_cast<uint32_t>(v->global_id()));
  }

  // Pointer-keyed maps are serialized in id order so the byte stream (and
  // hence the divergence digest) is independent of hash-table layout.
  std::vector<std::pair<const Vcpu*, const Reservation*>> res_sorted;
  res_sorted.reserve(reservations_.size());
  for (const auto& [v, res] : reservations_) {
    res_sorted.push_back({v, &res});
  }
  std::sort(res_sorted.begin(), res_sorted.end(), [](const auto& a, const auto& b) {
    return a.first->global_id() < b.first->global_id();
  });
  w.U32(static_cast<uint32_t>(res_sorted.size()));
  for (const auto& [v, res] : res_sorted) {
    w.U32(static_cast<uint32_t>(v->global_id()));
    w.I64(res->bw.ppb());
    w.I64(res->period);
    w.U64(res->order);
    w.I64(res->carry_ppb);
    w.U32(static_cast<uint32_t>(res->affinity));
    w.I64(res->used_in_window);
    w.F64(res->tax_factor);
    w.I64(res->last_lie_publish);
    w.I64(res->last_floor_publish);
  }

  std::vector<std::pair<int, int>> pins;
  pins.reserve(pending_affinity_.size());
  for (const auto& [v, pin] : pending_affinity_) {
    pins.push_back({v->global_id(), pin});
  }
  std::sort(pins.begin(), pins.end());
  w.U32(static_cast<uint32_t>(pins.size()));
  for (const auto& [gid, pin] : pins) {
    w.U32(static_cast<uint32_t>(gid));
    w.U32(static_cast<uint32_t>(pin));
  }

  auto save_segment = [&w](const PlanSegment& seg) {
    w.U32(static_cast<uint32_t>(seg.vcpu->global_id()));
    w.U32(static_cast<uint32_t>(seg.pcpu));
    w.I64(seg.start);
    w.I64(seg.end);
  };
  w.U32(static_cast<uint32_t>(pcpu_plan_.size()));
  for (const auto& plan : pcpu_plan_) {
    w.U32(static_cast<uint32_t>(plan.size()));
    for (const PlanSegment& seg : plan) {
      save_segment(seg);
    }
  }
  std::vector<std::pair<const Vcpu*, const std::vector<PlanSegment>*>> segs_sorted;
  segs_sorted.reserve(vcpu_segments_.size());
  for (const auto& [v, segs] : vcpu_segments_) {
    segs_sorted.push_back({v, &segs});
  }
  std::sort(segs_sorted.begin(), segs_sorted.end(), [](const auto& a, const auto& b) {
    return a.first->global_id() < b.first->global_id();
  });
  w.U32(static_cast<uint32_t>(segs_sorted.size()));
  for (const auto& [v, segs] : segs_sorted) {
    w.U32(static_cast<uint32_t>(v->global_id()));
    w.U32(static_cast<uint32_t>(segs->size()));
    for (const PlanSegment& seg : *segs) {
      save_segment(seg);
    }
  }

  w.U32(static_cast<uint32_t>(held_demand_.size()));
  for (const HeldDemand& h : held_demand_) {
    w.I64(h.expires);
    w.I64(h.bw.ppb());
  }

  std::vector<std::pair<const Vm*, const VmTrust*>> trust_sorted;
  trust_sorted.reserve(trust_.size());
  for (const auto& [vm, t] : trust_) {
    trust_sorted.push_back({vm, &t});
  }
  std::sort(trust_sorted.begin(), trust_sorted.end(),
            [](const auto& a, const auto& b) { return a.first->id() < b.first->id(); });
  w.U32(static_cast<uint32_t>(trust_sorted.size()));
  for (const auto& [vm, t] : trust_sorted) {
    w.U32(static_cast<uint32_t>(vm->id()));
    w.F64(t->tokens);
    w.I64(t->token_time);
    w.Bool(t->bucket_init);
    w.I64(t->window_start);
    w.U32(static_cast<uint32_t>(t->floor_bindings));
    w.U32(static_cast<uint32_t>(t->bw_flips));
    w.U32(static_cast<uint32_t>(t->last_bw_dir + 1));
    w.Bool(t->deadlines_distrusted);
    w.F64(t->score);
    w.Bool(t->quarantined);
    w.U32(static_cast<uint32_t>(t->clean_scans));
    w.Bool(t->violated_since_scan);
  }
}

std::string DpWrapScheduler::RestoreState(ckpt::Reader& r) {
  capacity_ = Bandwidth::FromPpb(r.I64());
  total_ = Bandwidth::FromPpb(r.I64());
  next_order_ = r.U64();
  slice_start_ = r.I64();
  slice_end_ = r.I64();
  replan_pending_ = r.Bool();
  be_cursor_ = r.U64();
  tickle_cursor_ = static_cast<int>(r.U32());
  replans_ = r.U64();
  watchdog_reclaims_ = r.U64();
  stale_rejections_ = r.U64();
  capacity_replans_ = r.U64();
  pressure_ = r.Bool();
  pressure_reason_ = r.I64();
  rejections_since_tick_ = r.U64();
  pressure_raises_ = r.U64();
  pressure_clears_ = r.U64();
  shed_releases_ = r.U64();
  admission_rejections_ = r.U64();
  deadline_lie_rejections_ = r.U64();
  deadline_floor_clamps_ = r.U64();
  replan_budget_trips_ = r.U64();
  hypercall_rate_rejections_ = r.U64();
  bw_thrash_trips_ = r.U64();
  quarantines_ = r.U64();
  quarantine_releases_ = r.U64();
  quarantine_holds_ = r.U64();

  uint32_t n_vcpus = r.U32();
  if (!r.ok() || n_vcpus != all_vcpus_.size()) {
    return "dpwrap: VCPU insertion-order mismatch (checkpoint has " +
           std::to_string(n_vcpus) + ", scheduler has " +
           std::to_string(all_vcpus_.size()) + ")";
  }
  for (size_t i = 0; i < all_vcpus_.size(); ++i) {
    int gid = static_cast<int>(r.U32());
    if (gid != all_vcpus_[i]->global_id()) {
      return "dpwrap: VCPU insertion order diverges at position " + std::to_string(i);
    }
  }

  auto lookup = [this](int gid) -> Vcpu* {
    for (Vcpu* v : all_vcpus_) {
      if (v->global_id() == gid) {
        return v;
      }
    }
    return nullptr;
  };

  reservations_.clear();
  uint32_t n_res = r.U32();
  for (uint32_t i = 0; i < n_res && r.ok(); ++i) {
    int gid = static_cast<int>(r.U32());
    Vcpu* v = lookup(gid);
    if (v == nullptr) {
      return "dpwrap: reservation[" + std::to_string(i) +
             "] references unknown VCPU global id " + std::to_string(gid);
    }
    Reservation res;
    res.vcpu = v;
    res.bw = Bandwidth::FromPpb(r.I64());
    res.period = r.I64();
    res.order = r.U64();
    res.carry_ppb = r.I64();
    res.affinity = static_cast<int>(r.U32());
    res.used_in_window = r.I64();
    res.tax_factor = r.F64();
    res.last_lie_publish = r.I64();
    res.last_floor_publish = r.I64();
    reservations_[v] = res;
  }

  pending_affinity_.clear();
  uint32_t n_pins = r.U32();
  for (uint32_t i = 0; i < n_pins && r.ok(); ++i) {
    int gid = static_cast<int>(r.U32());
    int pin = static_cast<int>(r.U32());
    Vcpu* v = lookup(gid);
    if (v == nullptr) {
      return "dpwrap: pending affinity references unknown VCPU " + std::to_string(gid);
    }
    pending_affinity_[v] = pin;
  }

  auto load_segment = [&r, &lookup](PlanSegment* seg) -> bool {
    int gid = static_cast<int>(r.U32());
    seg->vcpu = lookup(gid);
    seg->pcpu = static_cast<int>(r.U32());
    seg->start = r.I64();
    seg->end = r.I64();
    return seg->vcpu != nullptr;
  };
  uint32_t n_plans = r.U32();
  if (!r.ok() || n_plans != pcpu_plan_.size()) {
    return "dpwrap: PCPU plan count mismatch";
  }
  for (auto& plan : pcpu_plan_) {
    plan.clear();
    uint32_t n_segs = r.U32();
    for (uint32_t i = 0; i < n_segs && r.ok(); ++i) {
      PlanSegment seg;
      if (!load_segment(&seg)) {
        return "dpwrap: plan segment references unknown VCPU";
      }
      plan.push_back(seg);
    }
  }
  vcpu_segments_.clear();
  uint32_t n_vseg = r.U32();
  for (uint32_t i = 0; i < n_vseg && r.ok(); ++i) {
    int gid = static_cast<int>(r.U32());
    Vcpu* v = lookup(gid);
    if (v == nullptr) {
      return "dpwrap: segment map references unknown VCPU " + std::to_string(gid);
    }
    uint32_t n_segs = r.U32();
    std::vector<PlanSegment>& segs = vcpu_segments_[v];
    for (uint32_t k = 0; k < n_segs && r.ok(); ++k) {
      PlanSegment seg;
      if (!load_segment(&seg)) {
        return "dpwrap: segment map entry references unknown VCPU";
      }
      segs.push_back(seg);
    }
  }

  held_demand_.clear();
  uint32_t n_held = r.U32();
  for (uint32_t i = 0; i < n_held && r.ok(); ++i) {
    HeldDemand h;
    h.expires = r.I64();
    h.bw = Bandwidth::FromPpb(r.I64());
    held_demand_.push_back(h);
  }

  trust_.clear();
  uint32_t n_trust = r.U32();
  for (uint32_t i = 0; i < n_trust && r.ok(); ++i) {
    int vm_id = static_cast<int>(r.U32());
    if (machine_ == nullptr || vm_id < 0 || vm_id >= machine_->num_vms()) {
      return "dpwrap: trust entry references unknown VM " + std::to_string(vm_id);
    }
    VmTrust t;
    t.tokens = r.F64();
    t.token_time = r.I64();
    t.bucket_init = r.Bool();
    t.window_start = r.I64();
    t.floor_bindings = static_cast<int>(r.U32());
    t.bw_flips = static_cast<int>(r.U32());
    t.last_bw_dir = static_cast<int>(r.U32()) - 1;
    t.deadlines_distrusted = r.Bool();
    t.score = r.F64();
    t.quarantined = r.Bool();
    t.clean_scans = static_cast<int>(r.U32());
    t.violated_since_scan = r.Bool();
    trust_[machine_->vm(vm_id)] = t;
  }
  return r.ok() ? "" : "dpwrap: truncated section";
}

std::string DpWrapScheduler::RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) {
  (void)payload;
  Simulator* sim = machine_->sim();
  switch (kind) {
    case kEvTax:
      tax_event_ = sim->At(when, Tag(kEvTax), [this] { TaxTick(); });
      return "";
    case kEvWatchdog:
      watchdog_event_ = sim->At(when, Tag(kEvWatchdog), [this] { WatchdogTick(); });
      return "";
    case kEvOverload:
      overload_event_ = sim->At(when, Tag(kEvOverload), [this] { OverloadTick(); });
      return "";
    case kEvTrust:
      trust_event_ = sim->At(when, Tag(kEvTrust), [this] { TrustTick(); });
      return "";
    case kEvReplan:
      replan_event_ = sim->At(when, Tag(kEvReplan), [this] { Replan(); });
      return "";
    case kEvEarlyReplan:
      early_replan_event_ = sim->At(when, Tag(kEvEarlyReplan), [this] { Replan(); });
      return "";
    case kEvDeferredReplan:
      // replan_pending_ was restored true; this is its coalescing event.
      sim->At(when, Tag(kEvDeferredReplan), [this] {
        replan_pending_ = false;
        Replan();
      });
      return "";
  }
  return "dpwrap: unknown event kind " + std::to_string(kind);
}

std::vector<std::string> DpWrapScheduler::AuditPlan() const {
  std::vector<std::string> violations;
  char buf[256];

  // Bookkeeping: the cached total must equal the sum of the reservations.
  Bandwidth sum;
  for (const auto& [v, res] : reservations_) {
    sum += res.bw;
  }
  if (sum != total_) {
    std::snprintf(buf, sizeof(buf),
                  "cached total %lld ppb != sum of reservations %lld ppb",
                  static_cast<long long>(total_.ppb()), static_cast<long long>(sum.ppb()));
    violations.emplace_back(buf);
  }

  // Conservation. Without the idle tax the admitted raw total must fit in
  // capacity (plus the rounding epsilon). With the tax, admission runs
  // against the taxed total, so the raw total may legitimately overcommit;
  // what must hold instead is taxed <= raw (the tax only ever shrinks).
  // With pcpu_recovery, admitted demand may transiently exceed a freshly
  // degraded capacity until the pressure protocol sheds it — what must hold
  // at every instant is that the *plan* promises no more than the surviving
  // cores can deliver: no segments on offline cores, and the laid-out
  // effective supply within the effective capacity of the slice. Skipped
  // while a replan is pending (the plan is mid-transition at this instant).
  if (config_.pcpu_recovery.enabled) {
    if (!replan_pending_) {
      __int128 planned_eff = 0;  // ns * ppb.
      for (size_t p = 0; p < pcpu_plan_.size(); ++p) {
        const Pcpu* pc = machine_->pcpu(static_cast<int>(p));
        TimeNs planned = 0;
        for (const PlanSegment& seg : pcpu_plan_[p]) {
          planned += seg.end - seg.start;
        }
        if (!pc->online() && planned > 0) {
          std::snprintf(buf, sizeof(buf), "pcpu %zu is offline but the plan lays %lld ns onto it",
                        p, static_cast<long long>(planned));
          violations.emplace_back(buf);
        } else if (pc->online()) {
          planned_eff += static_cast<__int128>(planned) * pc->speed_ppb();
        }
      }
      TimeNs len = slice_end_ - slice_start_;
      __int128 cap_eff = static_cast<__int128>(machine_->EffectiveCapacity().ppb()) * len;
      __int128 slack = static_cast<__int128>(config_.admission_epsilon_ppb) * len +
                       static_cast<__int128>(pcpu_plan_.size()) * Bandwidth::kUnit;
      if (planned_eff > cap_eff + slack) {
        std::snprintf(buf, sizeof(buf),
                      "planned effective supply %lld ppb*ns exceeds effective capacity %lld ppb*ns",
                      static_cast<long long>(planned_eff), static_cast<long long>(cap_eff));
        violations.emplace_back(buf);
      }
    }
  } else if (!config_.idle_tax.enabled) {
    if (total_ > capacity_ + Bandwidth::FromPpb(config_.admission_epsilon_ppb)) {
      std::snprintf(buf, sizeof(buf),
                    "reserved total %lld ppb exceeds capacity %lld ppb + epsilon %lld ppb",
                    static_cast<long long>(total_.ppb()),
                    static_cast<long long>(capacity_.ppb()),
                    static_cast<long long>(config_.admission_epsilon_ppb));
      violations.emplace_back(buf);
    }
  } else if (total_effective() > total_) {
    std::snprintf(buf, sizeof(buf), "taxed total %lld ppb exceeds raw total %lld ppb",
                  static_cast<long long>(total_effective().ppb()),
                  static_cast<long long>(total_.ppb()));
    violations.emplace_back(buf);
  }

  // Carry bounds: non-negative, and at most one period of backlog plus the
  // slack a deferred early replan may add (bounded by min_global_slice).
  for (const auto& [v, res] : reservations_) {
    __int128 carry_max = static_cast<__int128>(res.bw.ppb()) *
                         (res.period + config_.min_global_slice);
    if (res.carry_ppb < 0 || static_cast<__int128>(res.carry_ppb) > carry_max) {
      std::snprintf(buf, sizeof(buf), "vcpu %d carry %lld ppb*ns out of bounds [0, bw*period]",
                    v->index(), static_cast<long long>(res.carry_ppb));
      violations.emplace_back(buf);
    }
  }

  // Plan geometry: per-PCPU segments inside the slice, ordered, disjoint.
  TimeNs slice_len = slice_end_ - slice_start_;
  for (size_t p = 0; p < pcpu_plan_.size(); ++p) {
    TimeNs prev_end = slice_start_;
    for (const PlanSegment& seg : pcpu_plan_[p]) {
      if (seg.start < slice_start_ || seg.end > slice_end_ || seg.start > seg.end) {
        std::snprintf(buf, sizeof(buf),
                      "pcpu %zu segment [%lld, %lld) outside slice [%lld, %lld)", p,
                      static_cast<long long>(seg.start), static_cast<long long>(seg.end),
                      static_cast<long long>(slice_start_),
                      static_cast<long long>(slice_end_));
        violations.emplace_back(buf);
      }
      if (seg.start < prev_end) {
        std::snprintf(buf, sizeof(buf),
                      "pcpu %zu segments overlap: [%lld, %lld) starts before %lld", p,
                      static_cast<long long>(seg.start), static_cast<long long>(seg.end),
                      static_cast<long long>(prev_end));
        violations.emplace_back(buf);
      }
      prev_end = seg.end;
    }
  }

  // Per-VCPU supply: the slice allocation cannot exceed the reservation's
  // fluid share of the slice plus one period of carry backlog (+1 ns of
  // rounding).
  for (const auto& [v, segs] : vcpu_segments_) {
    auto it = reservations_.find(v);
    if (it == reservations_.end()) {
      // A reservation released mid-slice keeps its planned segments until
      // the next replan; nothing to bound it against.
      continue;
    }
    TimeNs alloc = 0;
    for (const PlanSegment& s : segs) {
      TimeNs len = s.end - s.start;
      if (config_.pcpu_recovery.enabled && !replan_pending_) {
        // Degraded plans hand out wall time; the reservation's promise is in
        // effective ns — compare like with like (identity at full speed).
        const Pcpu* pc = machine_->pcpu(s.pcpu);
        if (pc->online()) {
          len = SpeedWallToWork(len, pc->speed_ppb());
        }
      }
      alloc += len;
    }
    TimeNs bound = it->second.EffectiveBw().SliceOfCeil(slice_len + it->second.period) + 1;
    if (alloc > bound) {
      std::snprintf(buf, sizeof(buf),
                    "vcpu %d allocated %lld ns in a %lld ns slice, above bound %lld ns",
                    v->index(), static_cast<long long>(alloc),
                    static_cast<long long>(slice_len), static_cast<long long>(bound));
      violations.emplace_back(buf);
    }
  }
  return violations;
}

std::vector<std::string> DpWrapScheduler::AuditIsolation() const {
  std::vector<std::string> violations;
  if (!config_.guest_trust.enabled || replan_pending_) {
    // Nothing to isolate from without the trust boundary, and a plan that is
    // mid-transition cannot be judged.
    return violations;
  }
  for (int k = 0; k < machine_->num_pcpus(); ++k) {
    const Pcpu* pc = machine_->pcpu(k);
    if (!pc->online() || pc->speed_ppb() != Bandwidth::kUnit) {
      // Degraded capacity legitimately shrinks everyone's allocation; the
      // pcpu-recovery audit owns that regime.
      return violations;
    }
  }
  // Isolation lower bound: every reservation owned by a well-behaved
  // (non-quarantined, non-crashed) VM must receive at least its fluid share
  // of the current slice, regardless of what the quarantined VM does. The
  // tolerance covers the per-reservation carry trimming (< 1 ns each) plus
  // the floor division of SliceOf.
  TimeNs slice_len = slice_end_ - slice_start_;
  TimeNs tolerance = static_cast<TimeNs>(reservations_.size()) + 1;
  char buf[256];
  for (const auto& [v, res] : reservations_) {
    if (v->vm()->crashed() || Quarantined(v->vm())) {
      continue;
    }
    TimeNs alloc = 0;
    auto segs = vcpu_segments_.find(v);
    if (segs != vcpu_segments_.end()) {
      for (const PlanSegment& s : segs->second) {
        alloc += s.end - s.start;
      }
    }
    TimeNs bound = res.EffectiveBw().SliceOf(slice_len);
    if (alloc + tolerance < bound) {
      std::snprintf(buf, sizeof(buf),
                    "vcpu %d (well-behaved VM) planned %lld ns of a %lld ns slice, "
                    "below its fluid share %lld ns",
                    v->index(), static_cast<long long>(alloc),
                    static_cast<long long>(slice_len), static_cast<long long>(bound));
      violations.emplace_back(buf);
    }
  }
  return violations;
}

}  // namespace rtvirt

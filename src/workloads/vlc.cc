#include "src/workloads/vlc.h"

#include <cassert>

namespace rtvirt {

RtaParams VlcParams(int fps) {
  for (const VlcProfile& p : kVlcProfiles) {
    if (p.fps == fps) {
      return p.params;
    }
  }
  assert(false && "unsupported frame rate; Table 3 lists 24/30/48/60");
  return {};
}

double VlcCpuNeed(int fps) {
  for (const VlcProfile& p : kVlcProfiles) {
    if (p.fps == fps) {
      return p.cpu_need;
    }
  }
  assert(false && "unsupported frame rate; Table 3 lists 24/30/48/60");
  return 0;
}

}  // namespace rtvirt

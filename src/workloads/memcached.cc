#include "src/workloads/memcached.h"

#include <algorithm>
#include <utility>

namespace rtvirt {

MemcachedServer::MemcachedServer(GuestOs* guest, std::string name, MemcachedConfig config,
                                 Rng rng)
    : guest_(guest),
      task_(guest->CreateTask(std::move(name))),
      config_(config),
      rng_(rng) {}

void MemcachedServer::Start(TimeNs start, TimeNs stop) {
  stop_ = stop;
  Simulator* sim = guest_->vm()->machine()->sim();
  if (start <= sim->Now()) {
    Register();
  } else {
    sim->At(start, [this] { Register(); });
  }
}

void MemcachedServer::Register() {
  RtaParams params;
  params.slice = config_.slice;
  params.period = config_.slo;
  params.sporadic = true;
  admission_result_ = guest_->SchedSetAttr(task_, params);
  if (admission_result_ != kGuestOk) {
    return;
  }
  ClientSend();
}

TimeNs MemcachedServer::SampleService() {
  double s = rng_.LogNormal(static_cast<double>(config_.service_median),
                            config_.service_sigma);
  return std::clamp(static_cast<TimeNs>(s), config_.service_min, config_.service_max);
}

void MemcachedServer::ClientSend() {
  Simulator* sim = guest_->vm()->machine()->sim();
  TimeNs now = sim->Now();
  if (now >= stop_) {
    return;
  }
  ++requests_sent_;
  // Request arrives at Dom0 "now" (the client network delay is outside the
  // measured NIC-to-NIC window); the job's deadline is the SLO.
  guest_->ReleaseJob(task_, SampleService(), now + config_.slo);

  double mean_gap = kNsPerSec / config_.qps;
  double gap = rng_.NormalAtLeast(mean_gap, mean_gap * config_.interarrival_sigma_frac,
                                  mean_gap * 0.05);
  sim->After(static_cast<TimeNs>(gap), [this] { ClientSend(); });
}

}  // namespace rtvirt

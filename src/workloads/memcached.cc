#include "src/workloads/memcached.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace rtvirt {

MemcachedServer::MemcachedServer(GuestOs* guest, std::string name, MemcachedConfig config,
                                 Rng rng)
    : guest_(guest),
      task_(guest->CreateTask(std::move(name))),
      config_(config),
      rng_(rng) {}

void MemcachedServer::Start(TimeNs start, TimeNs stop) {
  stop_ = stop;
  Simulator* sim = guest_->vm()->machine()->sim();
  if (start <= sim->Now()) {
    Register();
  } else {
    sim->At(start, [this] { Register(); });
  }
}

void MemcachedServer::Register() {
  RtaParams params;
  params.slice = config_.slice;
  params.period = config_.slo;
  params.sporadic = true;
  admission_result_ = guest_->SchedSetAttr(task_, params);
  if (admission_result_ != kGuestOk) {
    return;
  }
  ClientSend();
}

TimeNs MemcachedServer::SampleService() {
  double s = rng_.LogNormal(static_cast<double>(config_.service_median),
                            config_.service_sigma);
  return std::clamp(static_cast<TimeNs>(s), config_.service_min, config_.service_max);
}

double MemcachedServer::RateAt(TimeNs now) const {
  const MemcachedConfig::OpenLoop& ol = config_.open_loop;
  double rate = config_.qps;
  if (ol.diurnal_amplitude > 0.0 && ol.diurnal_period > 0) {
    // Starts at the trough so a run that begins "overnight" ramps into its
    // peak instead of opening on one.
    double phase = 2.0 * M_PI * static_cast<double>(now % ol.diurnal_period) /
                   static_cast<double>(ol.diurnal_period);
    rate *= 1.0 - ol.diurnal_amplitude * std::cos(phase);
  }
  for (const MemcachedConfig::OpenLoop::Phase& p : ol.phases) {
    if (now >= p.start && now < p.end) {
      rate *= p.multiplier;
    }
  }
  return rate;
}

void MemcachedServer::ClientSend() {
  Simulator* sim = guest_->vm()->machine()->sim();
  TimeNs now = sim->Now();
  if (now >= stop_) {
    return;
  }
  ++requests_sent_;
  // Request arrives at Dom0 "now" (the client network delay is outside the
  // measured NIC-to-NIC window); the job's deadline is the SLO.
  guest_->ReleaseJob(task_, SampleService(), now + config_.slo);

  TimeNs gap;
  if (config_.open_loop.enabled) {
    // Open loop: Poisson arrivals at the traced instantaneous rate, never
    // modulated by server progress. Floor of 1 ns keeps the event strictly
    // in the future even at flash-crowd peaks.
    double mean_gap = kNsPerSec / RateAt(now);
    gap = std::max<TimeNs>(1, static_cast<TimeNs>(rng_.Exponential(mean_gap)));
  } else {
    double mean_gap = kNsPerSec / config_.qps;
    gap = static_cast<TimeNs>(rng_.NormalAtLeast(
        mean_gap, mean_gap * config_.interarrival_sigma_frac, mean_gap * 0.05));
  }
  sim->After(gap, [this] { ClientSend(); });
}

}  // namespace rtvirt

// Sporadic RTA driver (paper 4.2): a CPU-bound job triggered by an external
// TCP request from a client on another host. The client's inter-arrival
// times are uniform in [ia_lo, ia_hi]; the network adds a small delay which
// the paper measures at 19 us at the 99.9th percentile and excludes from the
// reported latencies (we model it but measure from guest-side arrival).

#ifndef SRC_WORKLOADS_SPORADIC_H_
#define SRC_WORKLOADS_SPORADIC_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/guest/guest_os.h"
#include "src/sim/simulator.h"

namespace rtvirt {

struct NetworkModel {
  TimeNs base_delay = Us(8);
  TimeNs jitter = Us(6);  // Uniform extra delay in [0, jitter].

  TimeNs Sample(Rng& rng) const { return base_delay + rng.UniformTime(0, jitter); }
};

class SporadicRta {
 public:
  SporadicRta(GuestOs* guest, std::string name, RtaParams params, Rng rng,
              TimeNs ia_lo = Ms(100), TimeNs ia_hi = Sec(1), NetworkModel net = {});

  // Registers at `start` and lets the client send `max_requests` requests.
  void Start(TimeNs start, uint64_t max_requests);

  Task* task() const { return task_; }
  int admission_result() const { return admission_result_; }
  uint64_t requests_sent() const { return requests_sent_; }

 private:
  void Register();
  void ClientSend();

  GuestOs* guest_;
  Task* task_;
  RtaParams params_;
  Rng rng_;
  TimeNs ia_lo_;
  TimeNs ia_hi_;
  NetworkModel net_;
  uint64_t max_requests_ = 0;
  uint64_t requests_sent_ = 0;
  int admission_result_ = kGuestErrInvalid;
};

}  // namespace rtvirt

#endif  // SRC_WORKLOADS_SPORADIC_H_

// Periodic RTA driver, modelling rt-app (paper 4.2): a task that consumes
// `slice` of CPU every `period`, with a deadline at the end of the period.

#ifndef SRC_WORKLOADS_PERIODIC_H_
#define SRC_WORKLOADS_PERIODIC_H_

#include <string>

#include "src/checkpoint/checkpoint.h"
#include "src/guest/guest_os.h"
#include "src/sim/simulator.h"

namespace rtvirt {

class PeriodicRta : public ckpt::Checkpointable {
 public:
  // Creates the task in `guest`; it is registered and started by Start().
  PeriodicRta(GuestOs* guest, std::string name, RtaParams params);

  // Registers the RTA at `start` (sched_setattr) and releases jobs every
  // period until `stop`, then unregisters. Returns immediately; everything
  // is event-driven.
  void Start(TimeNs start, TimeNs stop);

  Task* task() const { return task_; }
  // kGuestOk once registration succeeded; meaningful after `start`.
  int admission_result() const { return admission_result_; }
  const RtaParams& params() const { return params_; }

  // When > 0, a failed registration is retried every `interval` until it
  // succeeds or `stop` passes (modelling an application that keeps knocking
  // under overload instead of giving up). Default 0: fail once, stay out.
  void set_admission_retry(TimeNs interval) { admission_retry_ = interval; }
  // Actual per-job execution demand, <= the reserved slice. Default 0: each
  // job consumes the full slice — a task provisioned at its exact WCET with
  // zero laxity, which turns any transient service shortfall into permanent
  // tardiness (a reservation can only serve at the release rate). Real RTAs
  // reserve WCET but usually run under it; setting work < slice models that
  // and gives the task per-period headroom to drain a backlog.
  void set_job_work(TimeNs work) { job_work_ = work; }
  // Registration attempts made (1 for an immediate success).
  int admission_attempts() const { return admission_attempts_; }
  // Time of the first successful registration; kTimeNever if never admitted.
  TimeNs admitted_at() const { return admitted_at_; }

  // ---- Checkpointing (src/checkpoint) ----
  // Section "wl.<task name>". The task's own fields live in the guest
  // section; this one carries the driver's release chain.
  const std::string& ckpt_section() const { return ckpt_section_; }
  enum CkptEventKind : uint32_t {
    kEvRegister = 1,  // Initial or retried sched_setattr.
    kEvRelease = 2,   // Periodic job release.
  };
  void SaveState(ckpt::Writer& w) const override;
  std::string RestoreState(ckpt::Reader& r) override;
  std::string RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) override;

 private:
  void Register();
  void ReleaseOne();

  EventTag Tag(uint32_t kind) const { return EventTag{ckpt_owner_, kind, 0}; }

  GuestOs* guest_;
  Task* task_;
  RtaParams params_;
  TimeNs stop_ = 0;
  TimeNs job_work_ = 0;  // 0 = full slice.
  int admission_result_ = kGuestErrInvalid;
  TimeNs admission_retry_ = 0;
  int admission_attempts_ = 0;
  TimeNs admitted_at_ = kTimeNever;
  Simulator::EventId release_event_;
  std::string ckpt_section_;
  uint64_t ckpt_owner_ = 0;
};

}  // namespace rtvirt

#endif  // SRC_WORKLOADS_PERIODIC_H_

#include "src/workloads/churn.h"

#include <string>

#include "src/workloads/vlc.h"

namespace rtvirt {

ChurnDriver::ChurnDriver(GuestOs* guest, ChurnConfig config, Rng rng, JobObserver* observer)
    : guest_(guest), config_(config), rng_(rng), observer_(observer) {}

void ChurnDriver::Start() {
  Simulator* sim = guest_->vm()->machine()->sim();
  for (int slot = 0; slot < guest_->num_vcpus(); ++slot) {
    // Stagger chain starts so registrations don't all land at t=0.
    sim->After(config_.start_at + rng_.UniformTime(0, config_.max_gap),
               [this, slot] { NextEpisode(slot); });
  }
}

void ChurnDriver::NextEpisode(int slot) {
  Simulator* sim = guest_->vm()->machine()->sim();
  TimeNs now = sim->Now();
  if (now >= config_.experiment_len) {
    return;
  }
  TimeNs duration = rng_.UniformTime(config_.min_episode, config_.max_episode);
  TimeNs stop = std::min(now + duration, config_.experiment_len);
  std::string name =
      guest_->vm()->name() + ".churn" + std::to_string(slot) + "." + std::to_string(name_seq_++);

  if (rng_.Bernoulli(config_.idle_prob)) {
    // Idle interval with a 10% standing reservation and no job releases.
    Task* idle = guest_->CreateTask(name + ".idle");
    RtaParams params{config_.idle_slice, config_.idle_period, false};
    if (guest_->SchedSetAttr(idle, params) == kGuestOk) {
      sim->At(stop, [this, idle] { guest_->SchedUnregister(idle); });
    }
    idle_tasks_.push_back(idle);
  } else {
    int fps = kVlcProfiles[rng_.UniformInt(0, kVlcProfiles.size() - 1)].fps;
    RtaParams params = config_.profile.has_value() ? *config_.profile : VlcParams(fps);
    params.criticality = config_.criticality;
    if (config_.elastic_min_fraction < 1.0) {
      params.min_slice = std::max<TimeNs>(
          1, static_cast<TimeNs>(static_cast<double>(params.slice) *
                                 config_.elastic_min_fraction));
    }
    auto rta = std::make_unique<PeriodicRta>(guest_, name, params);
    rta->task()->set_observer(observer_);
    rta->set_admission_retry(config_.admission_retry);
    rta->Start(now, stop);
    ++rtas_started_;
    // Admission happens synchronously for an immediate start.
    if (rta->admission_result() != kGuestOk) {
      ++rtas_rejected_;
      --rtas_started_;
    }
    rtas_.push_back(std::move(rta));
  }
  sim->At(stop, [this, slot] {
    Simulator* s = guest_->vm()->machine()->sim();
    s->After(rng_.UniformTime(0, config_.max_gap), [this, slot] { NextEpisode(slot); });
  });
}

}  // namespace rtvirt

// Dynamic RTA churn generator for the video-streaming experiment (paper 4.3,
// Figure 4): per VCPU, a chain of episodes is generated where each episode is
// either an RTA with one of the Table 3 streaming profiles or an idle
// reservation of 10% bandwidth, with durations uniform in [10 s, 6 min].
// RTAs dynamically register on episode start and unregister on episode end,
// exercising RTVirt's online admission and bandwidth adaptation.

#ifndef SRC_WORKLOADS_CHURN_H_
#define SRC_WORKLOADS_CHURN_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/guest/guest_os.h"
#include "src/workloads/periodic.h"

namespace rtvirt {

struct ChurnConfig {
  TimeNs experiment_len = Min(10);
  TimeNs min_episode = Sec(10);
  TimeNs max_episode = Sec(360);
  TimeNs max_gap = Sec(10);     // Random pause between episodes on a VCPU slot.
  double idle_prob = 0.2;       // Probability an episode is an idle reservation.
  TimeNs idle_slice = Ms(1);    // Idle reservation: 10% of a CPU.
  TimeNs idle_period = Ms(10);

  // ---- Overload-experiment knobs (defaults leave behavior unchanged) ----
  // Delay before the per-slot episode chains start (on top of the random
  // stagger); lets a bench ramp demand up in waves.
  TimeNs start_at = 0;
  // Criticality stamped onto every spawned RTA.
  Criticality criticality = Criticality::kMed;
  // < 1.0 makes spawned RTAs elastic: min_slice = slice * fraction.
  double elastic_min_fraction = 1.0;
  // Fixed RTA parameters instead of the randomized VLC profiles.
  std::optional<RtaParams> profile;
  // Passed through to PeriodicRta::set_admission_retry (0 = fail once).
  TimeNs admission_retry = 0;
};

class ChurnDriver {
 public:
  // Drives one episode chain per VCPU of `guest`. All spawned RTA tasks get
  // `observer` attached (deadline monitoring).
  ChurnDriver(GuestOs* guest, ChurnConfig config, Rng rng, JobObserver* observer);

  void Start();

  int rtas_started() const { return rtas_started_; }
  int rtas_rejected() const { return rtas_rejected_; }
  const std::vector<std::unique_ptr<PeriodicRta>>& rtas() const { return rtas_; }

 private:
  void NextEpisode(int slot);

  GuestOs* guest_;
  ChurnConfig config_;
  Rng rng_;
  JobObserver* observer_;
  std::vector<std::unique_ptr<PeriodicRta>> rtas_;
  std::vector<Task*> idle_tasks_;
  int rtas_started_ = 0;
  int rtas_rejected_ = 0;
  int name_seq_ = 0;
};

}  // namespace rtvirt

#endif  // SRC_WORKLOADS_CHURN_H_

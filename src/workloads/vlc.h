// VLC video-streaming transcoding-thread model (paper Table 3): rt-app
// parameters measured from VLC transcoding at each frame rate.

#ifndef SRC_WORKLOADS_VLC_H_
#define SRC_WORKLOADS_VLC_H_

#include <array>

#include "src/guest/task.h"

namespace rtvirt {

struct VlcProfile {
  int fps = 0;
  RtaParams params;
  double cpu_need = 0;  // Table 3 "CPU Bandwidth Need" column (measured).
};

// The four profiles of Table 3: fps -> (slice, period); the period is the
// floor of the frame interval, the slice the observed CPU use per frame.
inline constexpr std::array<VlcProfile, 4> kVlcProfiles = {{
    {24, {Ms(19), Ms(41), false}, 0.445},
    {30, {Ms(18), Ms(33), false}, 0.541},
    {48, {Ms(17), Ms(20), false}, 0.845},
    {60, {Ms(15), Ms(16), false}, 0.936},
}};

// Returns the Table 3 parameters for a frame rate (must be one of 24/30/48/60).
RtaParams VlcParams(int fps);

// Returns Table 3's measured CPU bandwidth need for a frame rate.
double VlcCpuNeed(int fps);

}  // namespace rtvirt

#endif  // SRC_WORKLOADS_VLC_H_

#include "src/workloads/sporadic.h"

#include <utility>

namespace rtvirt {

SporadicRta::SporadicRta(GuestOs* guest, std::string name, RtaParams params, Rng rng,
                         TimeNs ia_lo, TimeNs ia_hi, NetworkModel net)
    : guest_(guest),
      task_(guest->CreateTask(std::move(name))),
      params_(params),
      rng_(rng),
      ia_lo_(ia_lo),
      ia_hi_(ia_hi),
      net_(net) {
  params_.sporadic = true;
}

void SporadicRta::Start(TimeNs start, uint64_t max_requests) {
  max_requests_ = max_requests;
  Simulator* sim = guest_->vm()->machine()->sim();
  if (start <= sim->Now()) {
    Register();
  } else {
    sim->At(start, [this] { Register(); });
  }
}

void SporadicRta::Register() {
  admission_result_ = guest_->SchedSetAttr(task_, params_);
  if (admission_result_ != kGuestOk) {
    return;
  }
  ClientSend();
}

void SporadicRta::ClientSend() {
  if (requests_sent_ >= max_requests_) {
    return;
  }
  ++requests_sent_;
  Simulator* sim = guest_->vm()->machine()->sim();
  TimeNs delay = net_.Sample(rng_);
  sim->After(delay, [this] {
    TimeNs now = guest_->vm()->machine()->sim()->Now();
    guest_->ReleaseJob(task_, params_.slice, now + params_.period);
  });
  sim->After(rng_.UniformTime(ia_lo_, ia_hi_), [this] { ClientSend(); });
}

}  // namespace rtvirt

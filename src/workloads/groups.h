// The paper's published RTA parameter groups: Table 1 (harmonic and
// non-harmonic periodic groups) and Table 5 (scalability groups).

#ifndef SRC_WORKLOADS_GROUPS_H_
#define SRC_WORKLOADS_GROUPS_H_

#include <array>
#include <string_view>
#include <vector>

#include "src/guest/task.h"

namespace rtvirt {

struct RtaGroup {
  std::string_view name;
  std::array<RtaParams, 4> rtas;
};

// Table 1: parameters in ms, one RTA per VM.
inline const std::array<RtaGroup, 6> kTable1Groups = {{
    {"H-Equiv", {{{Ms(13), Ms(20)}, {Ms(25), Ms(40)}, {Ms(49), Ms(80)}, {Ms(19), Ms(100)}}}},
    {"H-Dec", {{{Ms(7), Ms(10)}, {Ms(13), Ms(20)}, {Ms(18), Ms(40)}, {Ms(13), Ms(100)}}}},
    {"H-Inc", {{{Ms(5), Ms(10)}, {Ms(13), Ms(20)}, {Ms(31), Ms(40)}, {Ms(10), Ms(100)}}}},
    {"NH-Equiv", {{{Ms(13), Ms(20)}, {Ms(26), Ms(40)}, {Ms(39), Ms(60)}, {Ms(13), Ms(100)}}}},
    {"NH-Dec", {{{Ms(23), Ms(30)}, {Ms(13), Ms(20)}, {Ms(5), Ms(10)}, {Ms(10), Ms(100)}}}},
    {"NH-Inc", {{{Ms(11), Ms(21)}, {Ms(26), Ms(43)}, {Ms(40), Ms(60)}, {Ms(13), Ms(100)}}}},
}};

// Table 5: groups of RTAs used in the scalability experiments (4.5).
inline const std::array<RtaParams, 10> kTable5Groups = {{
    {Ms(6), Ms(75)},
    {Ms(7), Ms(92)},
    {Ms(46), Ms(188)},
    {Ms(12), Ms(102)},
    {Ms(19), Ms(139)},
    {Ms(13), Ms(124)},
    {Ms(36), Ms(260)},
    {Ms(21), Ms(159)},
    {Ms(9), Ms(103)},
    {Ms(62), Ms(208)},
}};

}  // namespace rtvirt

#endif  // SRC_WORKLOADS_GROUPS_H_

// memcached + Mutilate model (paper 4.4).
//
// A memcached VM hosts one sporadic RTA servicing GET requests; a Mutilate
// client on another host issues requests with normally distributed
// inter-arrival times at an average rate (paper: 100 qps, Facebook-like GETs
// of 200 B values). Each request triggers a one-shot CPU-bound job whose
// service time follows a log-normal distribution calibrated so that a VM on
// a dedicated CPU reproduces the Table 4 percentiles (99.9th-percentile
// processing time ~= 55 us before scheduler effects); the SLO (500 us at the
// 99.9th percentile) doubles as the RTA's period/deadline. Latency is
// measured NIC-to-NIC style: from guest-side arrival to response completion,
// excluding the client network round trip, exactly as the paper measures.

#ifndef SRC_WORKLOADS_MEMCACHED_H_
#define SRC_WORKLOADS_MEMCACHED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/guest/guest_os.h"
#include "src/sim/simulator.h"

namespace rtvirt {

struct MemcachedConfig {
  double qps = 100.0;
  double interarrival_sigma_frac = 0.3;  // Sigma as a fraction of the mean gap.
  // Per-request service time: LogNormal(median, sigma), clipped below.
  TimeNs service_median = Us(48);
  double service_sigma = 0.035;
  TimeNs service_min = Us(40);
  TimeNs service_max = Us(90);  // Rare slow path (hash collisions, TCP slow path).
  // SLO / RTA period: complete requests within this deadline.
  TimeNs slo = Us(500);
  // RTA slice (the per-framework reservation; Table 4 derivation).
  TimeNs slice = Us(58);

  // Open-loop trace-driven arrivals (SLO-controller evaluation). When
  // enabled, the client issues Poisson arrivals whose instantaneous rate is
  // qps scaled by a diurnal sinusoid and any flash-crowd phase covering the
  // current time — requests keep arriving at the traced rate regardless of
  // how far the server has fallen behind, so an under-reserved tenant
  // builds a real queue instead of silently back-pressuring the client.
  // Default off: the classic closed-ish NormalAtLeast arrival stream (and
  // every existing bench output) is untouched.
  struct OpenLoop {
    bool enabled = false;
    // Rate multiplier swings between (1 - amplitude) and (1 + amplitude)
    // over one diurnal_period, starting at the trough.
    double diurnal_amplitude = 0.0;
    TimeNs diurnal_period = Sec(20);
    // Flash-crowd phases: rate is further multiplied by `multiplier` while
    // now is in [start, end). Overlapping phases compound.
    struct Phase {
      TimeNs start = 0;
      TimeNs end = 0;
      double multiplier = 1.0;
    };
    std::vector<Phase> phases;
  };
  OpenLoop open_loop;
};

class MemcachedServer {
 public:
  MemcachedServer(GuestOs* guest, std::string name, MemcachedConfig config, Rng rng);

  // Registers the RTA and starts the Mutilate client, which sends until `stop`.
  void Start(TimeNs start, TimeNs stop);

  Task* task() const { return task_; }
  int admission_result() const { return admission_result_; }
  uint64_t requests_sent() const { return requests_sent_; }

 private:
  void Register();
  void ClientSend();
  TimeNs SampleService();
  // Instantaneous open-loop request rate at `now` (qps when open_loop is
  // off): base qps x diurnal sinusoid x the product of covering phases.
  double RateAt(TimeNs now) const;

  GuestOs* guest_;
  Task* task_;
  MemcachedConfig config_;
  Rng rng_;
  TimeNs stop_ = 0;
  uint64_t requests_sent_ = 0;
  int admission_result_ = kGuestErrInvalid;
};

}  // namespace rtvirt

#endif  // SRC_WORKLOADS_MEMCACHED_H_

// memcached + Mutilate model (paper 4.4).
//
// A memcached VM hosts one sporadic RTA servicing GET requests; a Mutilate
// client on another host issues requests with normally distributed
// inter-arrival times at an average rate (paper: 100 qps, Facebook-like GETs
// of 200 B values). Each request triggers a one-shot CPU-bound job whose
// service time follows a log-normal distribution calibrated so that a VM on
// a dedicated CPU reproduces the Table 4 percentiles (99.9th-percentile
// processing time ~= 55 us before scheduler effects); the SLO (500 us at the
// 99.9th percentile) doubles as the RTA's period/deadline. Latency is
// measured NIC-to-NIC style: from guest-side arrival to response completion,
// excluding the client network round trip, exactly as the paper measures.

#ifndef SRC_WORKLOADS_MEMCACHED_H_
#define SRC_WORKLOADS_MEMCACHED_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/guest/guest_os.h"
#include "src/sim/simulator.h"

namespace rtvirt {

struct MemcachedConfig {
  double qps = 100.0;
  double interarrival_sigma_frac = 0.3;  // Sigma as a fraction of the mean gap.
  // Per-request service time: LogNormal(median, sigma), clipped below.
  TimeNs service_median = Us(48);
  double service_sigma = 0.035;
  TimeNs service_min = Us(40);
  TimeNs service_max = Us(90);  // Rare slow path (hash collisions, TCP slow path).
  // SLO / RTA period: complete requests within this deadline.
  TimeNs slo = Us(500);
  // RTA slice (the per-framework reservation; Table 4 derivation).
  TimeNs slice = Us(58);
};

class MemcachedServer {
 public:
  MemcachedServer(GuestOs* guest, std::string name, MemcachedConfig config, Rng rng);

  // Registers the RTA and starts the Mutilate client, which sends until `stop`.
  void Start(TimeNs start, TimeNs stop);

  Task* task() const { return task_; }
  int admission_result() const { return admission_result_; }
  uint64_t requests_sent() const { return requests_sent_; }

 private:
  void Register();
  void ClientSend();
  TimeNs SampleService();

  GuestOs* guest_;
  Task* task_;
  MemcachedConfig config_;
  Rng rng_;
  TimeNs stop_ = 0;
  uint64_t requests_sent_ = 0;
  int admission_result_ = kGuestErrInvalid;
};

}  // namespace rtvirt

#endif  // SRC_WORKLOADS_MEMCACHED_H_

#include "src/workloads/periodic.h"

#include <utility>

namespace rtvirt {

PeriodicRta::PeriodicRta(GuestOs* guest, std::string name, RtaParams params)
    : guest_(guest), task_(guest->CreateTask(std::move(name))), params_(params) {
  params_.sporadic = false;
}

void PeriodicRta::Start(TimeNs start, TimeNs stop) {
  stop_ = stop;
  Simulator* sim = guest_->vm()->machine()->sim();
  if (start <= sim->Now()) {
    Register();
  } else {
    sim->At(start, [this] { Register(); });
  }
}

void PeriodicRta::Register() {
  Simulator* sim = guest_->vm()->machine()->sim();
  ++admission_attempts_;
  admission_result_ = guest_->SchedSetAttr(task_, params_);
  if (admission_result_ != kGuestOk) {
    if (admission_retry_ > 0 && sim->Now() + admission_retry_ < stop_) {
      sim->After(admission_retry_, [this] { Register(); });
    }
    return;
  }
  admitted_at_ = sim->Now();
  task_->set_next_release(sim->Now());
  ReleaseOne();
}

void PeriodicRta::ReleaseOne() {
  Simulator* sim = guest_->vm()->machine()->sim();
  TimeNs now = sim->Now();
  if (now >= stop_) {
    guest_->SchedUnregister(task_);
    return;
  }
  // Publish the next arrival before releasing so the guest's deadline
  // publication sees it.
  task_->set_next_release(now + params_.period);
  guest_->ReleaseJob(task_, job_work_ > 0 ? job_work_ : params_.slice, now + params_.period);
  release_event_ = sim->After(params_.period, [this] { ReleaseOne(); });
}

}  // namespace rtvirt

#include "src/workloads/periodic.h"

#include <string>
#include <utility>

namespace rtvirt {

PeriodicRta::PeriodicRta(GuestOs* guest, std::string name, RtaParams params)
    : guest_(guest), task_(guest->CreateTask(std::move(name))), params_(params),
      ckpt_section_("wl." + task_->name()),
      ckpt_owner_(ckpt::Fnv1a64(ckpt_section_)) {
  params_.sporadic = false;
}

void PeriodicRta::Start(TimeNs start, TimeNs stop) {
  stop_ = stop;
  Simulator* sim = guest_->vm()->machine()->sim();
  if (start <= sim->Now()) {
    Register();
  } else {
    sim->At(start, Tag(kEvRegister), [this] { Register(); });
  }
}

void PeriodicRta::Register() {
  Simulator* sim = guest_->vm()->machine()->sim();
  ++admission_attempts_;
  admission_result_ = guest_->SchedSetAttr(task_, params_);
  if (admission_result_ != kGuestOk) {
    if (admission_retry_ > 0 && sim->Now() + admission_retry_ < stop_) {
      sim->After(admission_retry_, Tag(kEvRegister), [this] { Register(); });
    }
    return;
  }
  admitted_at_ = sim->Now();
  task_->set_next_release(sim->Now());
  ReleaseOne();
}

void PeriodicRta::ReleaseOne() {
  Simulator* sim = guest_->vm()->machine()->sim();
  TimeNs now = sim->Now();
  if (now >= stop_) {
    guest_->SchedUnregister(task_);
    return;
  }
  // Publish the next arrival before releasing so the guest's deadline
  // publication sees it.
  task_->set_next_release(now + params_.period);
  guest_->ReleaseJob(task_, job_work_ > 0 ? job_work_ : params_.slice, now + params_.period);
  release_event_ = sim->After(params_.period, Tag(kEvRelease), [this] { ReleaseOne(); });
}

void PeriodicRta::SaveState(ckpt::Writer& w) const {
  w.I64(stop_);
  w.I64(job_work_);
  w.I64(admission_retry_);
  w.U32(static_cast<uint32_t>(admission_result_));
  w.U32(static_cast<uint32_t>(admission_attempts_));
  w.I64(admitted_at_);
}

std::string PeriodicRta::RestoreState(ckpt::Reader& r) {
  stop_ = r.I64();
  job_work_ = r.I64();
  admission_retry_ = r.I64();
  admission_result_ = static_cast<int>(r.U32());
  admission_attempts_ = static_cast<int>(r.U32());
  admitted_at_ = r.I64();
  return r.ok() ? "" : ckpt_section_ + ": truncated section";
}

std::string PeriodicRta::RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) {
  (void)payload;
  Simulator* sim = guest_->vm()->machine()->sim();
  switch (kind) {
    case kEvRegister:
      sim->At(when, Tag(kEvRegister), [this] { Register(); });
      return "";
    case kEvRelease:
      release_event_ = sim->At(when, Tag(kEvRelease), [this] { ReleaseOne(); });
      return "";
  }
  return ckpt_section_ + ": unknown event kind " + std::to_string(kind);
}

}  // namespace rtvirt

#include "src/hv/machine.h"

#include <cassert>
#include <utility>

namespace rtvirt {

Machine::Machine(Simulator* sim, MachineConfig config) : sim_(sim), config_(config) {
  assert(config_.num_pcpus > 0);
  pcpus_.reserve(config_.num_pcpus);
  for (int i = 0; i < config_.num_pcpus; ++i) {
    pcpus_.push_back(std::make_unique<Pcpu>(this, i));
  }
}

Machine::~Machine() = default;

void Machine::SetScheduler(std::unique_ptr<HostScheduler> scheduler) {
  assert(scheduler_ == nullptr && scheduler != nullptr);
  scheduler_ = std::move(scheduler);
  scheduler_->Attach(this);
}

Vm* Machine::AddVm(std::string name) {
  vms_.push_back(std::make_unique<Vm>(this, static_cast<int>(vms_.size()), std::move(name)));
  return vms_.back().get();
}

Vcpu* Machine::RegisterVcpu(Vm* vm, int index) {
  auto vcpu = std::make_unique<Vcpu>(vm, index, next_vcpu_global_id_++);
  Vcpu* raw = vcpu.get();
  vm->vcpus_.push_back(std::move(vcpu));
  assert(scheduler_ != nullptr && "install the host scheduler before adding VCPUs");
  scheduler_->VcpuInserted(raw);
  return raw;
}

void Machine::Start() {
  assert(!started_ && scheduler_ != nullptr);
  started_ = true;
  for (auto& p : pcpus_) {
    p->RequestReschedule();
  }
}

int64_t Machine::Hypercall(Vcpu* caller, const HypercallArgs& args) {
  ++overhead_.hypercalls;
  overhead_.hypercall_time += config_.hypercall_cost;
  if (caller != nullptr && caller->vm()->crashed()) {
    // The caller VM died mid-call: the request never reaches the scheduler.
    return kHypercallAgain;
  }
  if (hypercall_interceptor_) {
    HypercallFault fault = hypercall_interceptor_(caller, args);
    overhead_.hypercall_time += fault.extra_latency;
    if (fault.action != HypercallFault::Action::kNone) {
      return kHypercallAgain;
    }
  }
  return scheduler_->Hypercall(caller, args);
}

void Machine::SetPcpuOnline(int pcpu, bool online) {
  Pcpu* p = pcpus_[pcpu].get();
  if (p->online_ == online) {
    return;
  }
  if (!online) {
    // Mark dead first: any reschedule the revocation callbacks request on
    // this core collapses into a no-op instead of re-dispatching onto it.
    p->online_ = false;
    Vcpu* evacuated = p->current();
    p->StopCurrent();
    if (evacuated != nullptr) {
      ++pcpu_evacuations_;
      ++evacuated->evacuations_;
      evacuated->evacuation_penalty_ += config_.evacuation_penalty;
    }
    if (scheduler_ != nullptr) {
      scheduler_->PcpuCapacityChanged(p);
    }
    // The evacuated (and any planned-but-stranded) VCPUs need a new home;
    // physically this is the offline IPI every survivor observes.
    for (auto& q : pcpus_) {
      if (q->online_) {
        q->RequestReschedule();
      }
    }
    return;
  }
  p->online_ = true;
  if (scheduler_ != nullptr) {
    scheduler_->PcpuCapacityChanged(p);
  }
  p->RequestReschedule();
}

void Machine::SetPcpuSpeed(int pcpu, double speed) {
  assert(speed > 0.0 && speed <= 1.0);
  Pcpu* p = pcpus_[pcpu].get();
  int64_t ppb = static_cast<int64_t>(speed * static_cast<double>(Bandwidth::kUnit) + 0.5);
  if (ppb == p->speed_ppb_) {
    return;
  }
  // Revoke before switching so every grant executes at one constant speed —
  // the guest banks its progress at the rate the work actually ran at.
  p->StopCurrent();
  p->speed_ppb_ = ppb;
  if (scheduler_ != nullptr) {
    scheduler_->PcpuCapacityChanged(p);
  }
  if (p->online_) {
    p->RequestReschedule();
  }
}

Bandwidth Machine::EffectiveCapacity() const {
  int64_t ppb = 0;
  for (const auto& p : pcpus_) {
    if (p->online_) {
      ppb += p->speed_ppb_;
    }
  }
  return Bandwidth::FromPpb(ppb);
}

int Machine::num_online_pcpus() const {
  int n = 0;
  for (const auto& p : pcpus_) {
    n += p->online_ ? 1 : 0;
  }
  return n;
}

void Machine::CrashVm(Vm* vm) {
  if (vm->crashed_) {
    return;
  }
  vm->crashed_ = true;
  for (auto& v : vm->vcpus_) {
    v->Block();
  }
}

void Machine::RestartVm(Vm* vm) { vm->crashed_ = false; }

void Machine::NotifyWake(Vcpu* vcpu) { scheduler_->VcpuWake(vcpu); }

void Machine::NotifyBlock(Vcpu* vcpu) { scheduler_->VcpuBlock(vcpu); }

Vcpu* Machine::VcpuByGlobalId(int global_id) const {
  for (const auto& vm : vms_) {
    for (const auto& v : vm->vcpus_) {
      if (v->global_id() == global_id) {
        return v.get();
      }
    }
  }
  return nullptr;
}

void Machine::SaveState(ckpt::Writer& w) const {
  w.U64(overhead_.schedule_calls);
  w.I64(overhead_.schedule_time);
  w.U64(overhead_.context_switches);
  w.I64(overhead_.context_switch_time);
  w.U64(overhead_.migrations);
  w.I64(overhead_.migration_time);
  w.U64(overhead_.hypercalls);
  w.I64(overhead_.hypercall_time);
  w.U64(pcpu_evacuations_);
  w.U32(static_cast<uint32_t>(next_vcpu_global_id_));
  w.U32(static_cast<uint32_t>(pcpus_.size()));
  for (const auto& p : pcpus_) {
    w.Bool(p->online_);
    w.I64(p->speed_ppb_);
    w.U32(static_cast<uint32_t>(p->current_ != nullptr ? p->current_->global_id() : -1));
    w.Bool(p->granted_);
    w.I64(p->granted_at_);
    w.Bool(p->resched_pending_);
    w.I64(p->run_until_);
    w.I64(p->busy_time_);
  }
  w.U32(static_cast<uint32_t>(vms_.size()));
  for (const auto& vm : vms_) {
    w.Str(vm->name_);
    w.Bool(vm->crashed_);
    w.U32(static_cast<uint32_t>(vm->weight_));
    w.U32(static_cast<uint32_t>(vm->vcpus_.size()));
    for (const auto& v : vm->vcpus_) {
      w.U8(static_cast<uint8_t>(v->state_));
      w.U32(static_cast<uint32_t>(v->pcpu_ != nullptr ? v->pcpu_->id() : -1));
      w.U32(static_cast<uint32_t>(v->last_pcpu_ != nullptr ? v->last_pcpu_->id() : -1));
      w.I64(v->total_runtime_);
      w.U64(v->migrations_);
      w.U64(v->evacuations_);
      w.I64(v->evacuation_penalty_);
    }
    vm->shared_page_.SaveState(w);
  }
}

std::string Machine::RestoreState(ckpt::Reader& r) {
  overhead_.schedule_calls = r.U64();
  overhead_.schedule_time = r.I64();
  overhead_.context_switches = r.U64();
  overhead_.context_switch_time = r.I64();
  overhead_.migrations = r.U64();
  overhead_.migration_time = r.I64();
  overhead_.hypercalls = r.U64();
  overhead_.hypercall_time = r.I64();
  pcpu_evacuations_ = r.U64();
  int global_ids = static_cast<int>(r.U32());
  if (global_ids != next_vcpu_global_id_) {
    return "machine: VCPU count mismatch (checkpoint has " +
           std::to_string(global_ids) + " global ids, this machine has " +
           std::to_string(next_vcpu_global_id_) + ")";
  }
  uint32_t num_pcpus = r.U32();
  if (!r.ok() || num_pcpus != pcpus_.size()) {
    return "machine: PCPU count mismatch (checkpoint has " +
           std::to_string(num_pcpus) + ", this machine has " +
           std::to_string(pcpus_.size()) + ")";
  }
  for (auto& p : pcpus_) {
    p->online_ = r.Bool();
    p->speed_ppb_ = r.I64();
    int current_id = static_cast<int>(r.U32());
    p->current_ = current_id < 0 ? nullptr : VcpuByGlobalId(current_id);
    if (current_id >= 0 && p->current_ == nullptr) {
      return "machine: pcpu " + std::to_string(p->id()) +
             " references unknown VCPU global id " + std::to_string(current_id);
    }
    p->granted_ = r.Bool();
    p->granted_at_ = r.I64();
    p->resched_pending_ = r.Bool();
    p->run_until_ = r.I64();
    p->busy_time_ = r.I64();
  }
  uint32_t num_vms = r.U32();
  if (!r.ok() || num_vms != vms_.size()) {
    return "machine: VM count mismatch (checkpoint has " +
           std::to_string(num_vms) + ", this machine has " +
           std::to_string(vms_.size()) + ")";
  }
  for (auto& vm : vms_) {
    std::string name = r.Str();
    if (name != vm->name_) {
      return "machine: VM " + std::to_string(vm->id()) + " name mismatch (got '" +
             name + "', this machine has '" + vm->name_ + "')";
    }
    vm->crashed_ = r.Bool();
    vm->weight_ = static_cast<int>(r.U32());
    uint32_t num_vcpus = r.U32();
    if (!r.ok() || num_vcpus != vm->vcpus_.size()) {
      return "machine: VM '" + vm->name_ + "' VCPU count mismatch";
    }
    for (auto& v : vm->vcpus_) {
      uint8_t state = r.U8();
      if (state > static_cast<uint8_t>(VcpuState::kRunning)) {
        return "machine: VCPU " + v->name() + " has invalid state " +
               std::to_string(state);
      }
      v->state_ = static_cast<VcpuState>(state);
      int pcpu_id = static_cast<int>(r.U32());
      int last_id = static_cast<int>(r.U32());
      if (pcpu_id >= static_cast<int>(pcpus_.size()) ||
          last_id >= static_cast<int>(pcpus_.size())) {
        return "machine: VCPU " + v->name() + " references invalid PCPU";
      }
      v->pcpu_ = pcpu_id < 0 ? nullptr : pcpus_[pcpu_id].get();
      v->last_pcpu_ = last_id < 0 ? nullptr : pcpus_[last_id].get();
      v->total_runtime_ = r.I64();
      v->migrations_ = r.U64();
      v->evacuations_ = r.U64();
      v->evacuation_penalty_ = r.I64();
    }
    std::string err = vm->shared_page_.RestoreState(r);
    if (!err.empty()) {
      return "machine: VM '" + vm->name_ + "' " + err;
    }
  }
  // The checkpoint was taken from a started machine; suppress the fresh
  // Start() kick (the rebound events carry the live schedule).
  started_ = true;
  return r.ok() ? "" : "machine: truncated section";
}

std::string Machine::RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) {
  if (payload >= pcpus_.size()) {
    return "machine: event references invalid pcpu " + std::to_string(payload);
  }
  Pcpu* p = pcpus_[payload].get();
  switch (kind) {
    case kEvResched:
      p->CkptRebindResched(when);
      return "";
    case kEvSliceEnd:
      p->CkptRebindSliceEnd(when);
      return "";
    case kEvGrant:
      p->CkptRebindGrant(when);
      return "";
  }
  return "machine: unknown event kind " + std::to_string(kind);
}

}  // namespace rtvirt

#include "src/hv/machine.h"

#include <cassert>
#include <utility>

namespace rtvirt {

Machine::Machine(Simulator* sim, MachineConfig config) : sim_(sim), config_(config) {
  assert(config_.num_pcpus > 0);
  pcpus_.reserve(config_.num_pcpus);
  for (int i = 0; i < config_.num_pcpus; ++i) {
    pcpus_.push_back(std::make_unique<Pcpu>(this, i));
  }
}

Machine::~Machine() = default;

void Machine::SetScheduler(std::unique_ptr<HostScheduler> scheduler) {
  assert(scheduler_ == nullptr && scheduler != nullptr);
  scheduler_ = std::move(scheduler);
  scheduler_->Attach(this);
}

Vm* Machine::AddVm(std::string name) {
  vms_.push_back(std::make_unique<Vm>(this, static_cast<int>(vms_.size()), std::move(name)));
  return vms_.back().get();
}

Vcpu* Machine::RegisterVcpu(Vm* vm, int index) {
  auto vcpu = std::make_unique<Vcpu>(vm, index, next_vcpu_global_id_++);
  Vcpu* raw = vcpu.get();
  vm->vcpus_.push_back(std::move(vcpu));
  assert(scheduler_ != nullptr && "install the host scheduler before adding VCPUs");
  scheduler_->VcpuInserted(raw);
  return raw;
}

void Machine::Start() {
  assert(!started_ && scheduler_ != nullptr);
  started_ = true;
  for (auto& p : pcpus_) {
    p->RequestReschedule();
  }
}

int64_t Machine::Hypercall(Vcpu* caller, const HypercallArgs& args) {
  ++overhead_.hypercalls;
  overhead_.hypercall_time += config_.hypercall_cost;
  if (caller != nullptr && caller->vm()->crashed()) {
    // The caller VM died mid-call: the request never reaches the scheduler.
    return kHypercallAgain;
  }
  if (hypercall_interceptor_) {
    HypercallFault fault = hypercall_interceptor_(caller, args);
    overhead_.hypercall_time += fault.extra_latency;
    if (fault.action != HypercallFault::Action::kNone) {
      return kHypercallAgain;
    }
  }
  return scheduler_->Hypercall(caller, args);
}

void Machine::SetPcpuOnline(int pcpu, bool online) {
  Pcpu* p = pcpus_[pcpu].get();
  if (p->online_ == online) {
    return;
  }
  if (!online) {
    // Mark dead first: any reschedule the revocation callbacks request on
    // this core collapses into a no-op instead of re-dispatching onto it.
    p->online_ = false;
    Vcpu* evacuated = p->current();
    p->StopCurrent();
    if (evacuated != nullptr) {
      ++pcpu_evacuations_;
      ++evacuated->evacuations_;
      evacuated->evacuation_penalty_ += config_.evacuation_penalty;
    }
    if (scheduler_ != nullptr) {
      scheduler_->PcpuCapacityChanged(p);
    }
    // The evacuated (and any planned-but-stranded) VCPUs need a new home;
    // physically this is the offline IPI every survivor observes.
    for (auto& q : pcpus_) {
      if (q->online_) {
        q->RequestReschedule();
      }
    }
    return;
  }
  p->online_ = true;
  if (scheduler_ != nullptr) {
    scheduler_->PcpuCapacityChanged(p);
  }
  p->RequestReschedule();
}

void Machine::SetPcpuSpeed(int pcpu, double speed) {
  assert(speed > 0.0 && speed <= 1.0);
  Pcpu* p = pcpus_[pcpu].get();
  int64_t ppb = static_cast<int64_t>(speed * static_cast<double>(Bandwidth::kUnit) + 0.5);
  if (ppb == p->speed_ppb_) {
    return;
  }
  // Revoke before switching so every grant executes at one constant speed —
  // the guest banks its progress at the rate the work actually ran at.
  p->StopCurrent();
  p->speed_ppb_ = ppb;
  if (scheduler_ != nullptr) {
    scheduler_->PcpuCapacityChanged(p);
  }
  if (p->online_) {
    p->RequestReschedule();
  }
}

Bandwidth Machine::EffectiveCapacity() const {
  int64_t ppb = 0;
  for (const auto& p : pcpus_) {
    if (p->online_) {
      ppb += p->speed_ppb_;
    }
  }
  return Bandwidth::FromPpb(ppb);
}

int Machine::num_online_pcpus() const {
  int n = 0;
  for (const auto& p : pcpus_) {
    n += p->online_ ? 1 : 0;
  }
  return n;
}

void Machine::CrashVm(Vm* vm) {
  if (vm->crashed_) {
    return;
  }
  vm->crashed_ = true;
  for (auto& v : vm->vcpus_) {
    v->Block();
  }
}

void Machine::RestartVm(Vm* vm) { vm->crashed_ = false; }

void Machine::NotifyWake(Vcpu* vcpu) { scheduler_->VcpuWake(vcpu); }

void Machine::NotifyBlock(Vcpu* vcpu) { scheduler_->VcpuBlock(vcpu); }

}  // namespace rtvirt

#include "src/hv/vm.h"

#include <utility>

#include "src/hv/machine.h"

namespace rtvirt {

Vm::Vm(Machine* machine, int id, std::string name)
    : machine_(machine), id_(id), name_(std::move(name)) {
  shared_page_.AttachClock(machine_->sim());
}

Vcpu* Vm::AddVcpu() {
  return machine_->RegisterVcpu(this, static_cast<int>(vcpus_.size()));
}

TimeNs Vm::TotalRuntime() const {
  TimeNs total = 0;
  for (const auto& v : vcpus_) {
    total += v->total_runtime();
  }
  return total;
}

}  // namespace rtvirt

#include "src/hv/pcpu.h"

#include <cassert>

#include "src/hv/machine.h"
#include "src/hv/vcpu.h"

namespace rtvirt {

Pcpu::Pcpu(Machine* machine, int id) : machine_(machine), id_(id) {}

TimeNs Pcpu::idle_time(TimeNs now) const { return now - busy_time_; }

EventTag Pcpu::ReschedTag() const {
  return EventTag{machine_->ckpt_owner(), Machine::kEvResched,
                  static_cast<uint64_t>(id_)};
}

EventTag Pcpu::SliceEndTag() const {
  return EventTag{machine_->ckpt_owner(), Machine::kEvSliceEnd,
                  static_cast<uint64_t>(id_)};
}

EventTag Pcpu::GrantTag() const {
  return EventTag{machine_->ckpt_owner(), Machine::kEvGrant,
                  static_cast<uint64_t>(id_)};
}

void Pcpu::CkptRebindResched(TimeNs when) {
  // resched_pending_ was restored true; this re-creates the coalescing event.
  machine_->sim()->At(when, ReschedTag(), [this] {
    resched_pending_ = false;
    Reschedule();
  });
}

void Pcpu::CkptRebindSliceEnd(TimeNs when) {
  slice_end_event_ = machine_->sim()->At(when, SliceEndTag(), [this] { Reschedule(); });
}

void Pcpu::CkptRebindGrant(TimeNs when) {
  grant_event_ = machine_->sim()->At(when, GrantTag(), [this] { GrantCurrent(); });
}

void Pcpu::RequestReschedule() {
  if (resched_pending_) {
    return;
  }
  resched_pending_ = true;
  machine_->sim()->After(0, ReschedTag(), [this] {
    resched_pending_ = false;
    Reschedule();
  });
}

void Pcpu::StopCurrent() {
  Simulator* sim = machine_->sim();
  sim->Cancel(grant_event_);
  sim->Cancel(slice_end_event_);
  if (current_ == nullptr) {
    return;
  }
  Vcpu* v = current_;
  bool was_granted = granted_;
  if (granted_) {
    TimeNs ran = sim->Now() - granted_at_;
    v->total_runtime_ += ran;
    busy_time_ += ran;
    machine_->scheduler()->AccountRun(v, ran);
    granted_ = false;
  }
  // Complete all state mutation before the client callback: the guest may
  // legitimately call Block() from OnVcpuRevoked (e.g., the revocation
  // landed exactly at its last job's completion).
  v->pcpu_ = nullptr;
  v->last_pcpu_ = this;
  if (v->state_ == VcpuState::kRunning) {
    v->state_ = VcpuState::kRunnable;
  }
  current_ = nullptr;
  if (was_granted) {
    v->client()->OnVcpuRevoked(v);
  }
}

void Pcpu::Reschedule() {
  Simulator* sim = machine_->sim();
  HostScheduler* sched = machine_->scheduler();
  assert(sched != nullptr);
  const MachineConfig& cfg = machine_->config();
  OverheadStats& overhead = machine_->mutable_overhead();

  if (!online_) {
    // A failed/offlined core executes nothing: revoke whatever is here and
    // schedule no further events. Machine::SetPcpuOnline(true) re-arms us.
    StopCurrent();
    return;
  }

  // We are re-deciding; the previous slice-end timer (if any) is obsolete.
  sim->Cancel(slice_end_event_);

  // Bring the current VCPU's budget accounting up to date before asking the
  // scheduler, without revoking it yet: the scheduler may let it continue.
  Vcpu* prev = current_;
  SettleAccounting();

  TimeNs sched_cost = sched->ScheduleCost(this);
  ++overhead.schedule_calls;
  overhead.schedule_time += sched_cost;

  ScheduleDecision d = sched->PickNext(this);

  if (d.next == prev && prev != nullptr) {
    // Same VCPU continues: no context switch. The schedule cost is charged
    // to the overhead accounts but does not interrupt execution (in a real
    // kernel the decision happens on the same CPU inside the softirq; the
    // error is bounded by sched_cost and absorbed by the slack budget).
    run_until_ = d.run_until;
    if (d.run_until < kTimeNever) {
      slice_end_event_ = sim->At(d.run_until, SliceEndTag(), [this] { Reschedule(); });
    }
    return;
  }

  StopCurrent();

  if (d.next == nullptr) {
    if (d.run_until < kTimeNever) {
      slice_end_event_ = sim->At(d.run_until, SliceEndTag(), [this] { Reschedule(); });
    }
    return;
  }

  assert(d.next->state() == VcpuState::kRunnable);
  TimeNs dispatch_cost = cfg.context_switch_cost + sched->DispatchCost(d.next);
  TimeNs delay = sched_cost + dispatch_cost;
  ++overhead.context_switches;
  overhead.context_switch_time += dispatch_cost;
  bool migrated = d.next->last_pcpu() != nullptr && d.next->last_pcpu() != this;
  if (migrated) {
    ++overhead.migrations;
    overhead.migration_time += cfg.migration_cost;
    delay += cfg.migration_cost;
    ++d.next->migrations_;
  }
  if (d.next->evacuation_penalty_ > 0) {
    // One-shot salvage cost for a VCPU whose core died under it (state
    // reconstruction on the rescuing core), charged on top of the ordinary
    // migration cost.
    overhead.migration_time += d.next->evacuation_penalty_;
    delay += d.next->evacuation_penalty_;
    d.next->evacuation_penalty_ = 0;
  }
  if (machine_->dispatch_tracer()) {
    machine_->dispatch_tracer()(sim->Now(), *this, *d.next, migrated);
  }
  Dispatch(d.next, delay, d.run_until);
}

void Pcpu::SettleAccounting() {
  if (current_ == nullptr || !granted_) {
    return;
  }
  TimeNs now = machine_->sim()->Now();
  TimeNs ran = now - granted_at_;
  if (ran > 0) {
    current_->total_runtime_ += ran;
    busy_time_ += ran;
    machine_->scheduler()->AccountRun(current_, ran);
    granted_at_ = now;
  }
}

TimeNs Pcpu::LiveRunNs(const Vcpu* vcpu) const {
  if (current_ != vcpu || !granted_) {
    return 0;
  }
  return machine_->sim()->Now() - granted_at_;
}

void Pcpu::InjectOverhead(TimeNs duration) {
  OverheadStats& overhead = machine_->mutable_overhead();
  overhead.schedule_time += duration;
  if (current_ == nullptr || !granted_) {
    return;  // Idle or mid-switch: the interrupt overlaps existing overhead.
  }
  Vcpu* v = current_;
  TimeNs until = run_until_;
  StopCurrent();
  if (v->runnable()) {  // The revoke may have completed its last job.
    Dispatch(v, duration, until);
  }
}

void Pcpu::Dispatch(Vcpu* vcpu, TimeNs overhead_delay, TimeNs run_until) {
  assert(current_ == nullptr);
  Simulator* sim = machine_->sim();
  run_until_ = run_until;
  current_ = vcpu;
  vcpu->state_ = VcpuState::kRunning;
  vcpu->pcpu_ = this;
  granted_ = false;
  grant_event_ = sim->After(overhead_delay, GrantTag(), [this] { GrantCurrent(); });
  if (run_until < kTimeNever) {
    slice_end_event_ = sim->At(run_until, SliceEndTag(), [this] { Reschedule(); });
  }
}

void Pcpu::GrantCurrent() {
  assert(current_ != nullptr && !granted_);
  granted_ = true;
  granted_at_ = machine_->sim()->Now();
  current_->client()->OnVcpuGranted(current_);
}

}  // namespace rtvirt

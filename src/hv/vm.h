// Virtual machine: a named collection of VCPUs plus the shared scheduling
// page used by the cross-layer interface.

#ifndef SRC_HV_VM_H_
#define SRC_HV_VM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hv/shared_mem.h"
#include "src/hv/vcpu.h"

namespace rtvirt {

class Machine;

class Vm {
 public:
  Vm(Machine* machine, int id, std::string name);
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  Machine* machine() const { return machine_; }

  // Adds a VCPU (also usable mid-simulation: CPU hotplug, paper section 3.2).
  Vcpu* AddVcpu();

  int num_vcpus() const { return static_cast<int>(vcpus_.size()); }
  Vcpu* vcpu(int index) const { return vcpus_[index].get(); }

  SharedSchedPage& shared_page() { return shared_page_; }
  const SharedSchedPage& shared_page() const { return shared_page_; }

  // Fault model: a crashed VM executes nothing — its VCPUs are blocked, its
  // wakes are ignored and its hypercalls fail — until the machine restarts
  // it. Reservations it held at the host stay installed (orphaned) until the
  // host watchdog reclaims them. Set via Machine::CrashVm / RestartVm.
  bool crashed() const { return crashed_; }

  // Proportional-share weight for non-time-sensitive (best-effort) CPU time.
  int weight() const { return weight_; }
  void set_weight(int weight) { weight_ = weight; }

  // Total guest execution time across this VM's VCPUs.
  TimeNs TotalRuntime() const;

 private:
  friend class Machine;

  Machine* machine_;
  int id_;
  std::string name_;
  std::vector<std::unique_ptr<Vcpu>> vcpus_;
  SharedSchedPage shared_page_;
  int weight_ = 256;
  bool crashed_ = false;
};

}  // namespace rtvirt

#endif  // SRC_HV_VM_H_

// Virtual-cost accounting for scheduler overhead (paper Table 6).
//
// Every schedule() invocation, context switch, VCPU migration and hypercall
// charges a cost to the machine. The costs delay useful execution (they are
// inserted before the next VCPU starts running), so overhead is not merely
// bookkeeping: too-expensive scheduling genuinely causes deadline misses.

#ifndef SRC_HV_OVERHEAD_H_
#define SRC_HV_OVERHEAD_H_

#include <cstdint>

#include "src/common/time.h"

namespace rtvirt {

struct OverheadStats {
  uint64_t schedule_calls = 0;
  TimeNs schedule_time = 0;
  uint64_t context_switches = 0;
  TimeNs context_switch_time = 0;
  uint64_t migrations = 0;
  TimeNs migration_time = 0;
  uint64_t hypercalls = 0;
  TimeNs hypercall_time = 0;

  TimeNs TotalTime() const {
    return schedule_time + context_switch_time + migration_time + hypercall_time;
  }

  // Overhead as a fraction of total machine CPU time over `wall` ns on
  // `pcpus` processors (the "Total Overhead (%)" column of Table 6).
  double Fraction(TimeNs wall, int pcpus) const {
    if (wall <= 0 || pcpus <= 0) {
      return 0.0;
    }
    return static_cast<double>(TotalTime()) / static_cast<double>(wall * pcpus);
  }

  OverheadStats Delta(const OverheadStats& earlier) const {
    OverheadStats d;
    d.schedule_calls = schedule_calls - earlier.schedule_calls;
    d.schedule_time = schedule_time - earlier.schedule_time;
    d.context_switches = context_switches - earlier.context_switches;
    d.context_switch_time = context_switch_time - earlier.context_switch_time;
    d.migrations = migrations - earlier.migrations;
    d.migration_time = migration_time - earlier.migration_time;
    d.hypercalls = hypercalls - earlier.hypercalls;
    d.hypercall_time = hypercall_time - earlier.hypercall_time;
    return d;
  }
};

}  // namespace rtvirt

#endif  // SRC_HV_OVERHEAD_H_

// Virtual CPU: the schedulable entity at the host level.

#ifndef SRC_HV_VCPU_H_
#define SRC_HV_VCPU_H_

#include <cstdint>
#include <string>

#include "src/common/time.h"

namespace rtvirt {

class Machine;
class Pcpu;
class Vcpu;
class Vm;

enum class VcpuState {
  kBlocked,   // No runnable work in the guest.
  kRunnable,  // Has work, waiting for a PCPU.
  kRunning,   // Currently holds a PCPU.
};

// Implemented by the guest OS model: notified when its VCPU gains or loses a
// physical CPU so it can dispatch or suspend guest tasks.
class VcpuClient {
 public:
  virtual ~VcpuClient() = default;
  // The VCPU starts executing guest code now (overheads already elapsed).
  virtual void OnVcpuGranted(Vcpu* vcpu) = 0;
  // The VCPU stops executing guest code now.
  virtual void OnVcpuRevoked(Vcpu* vcpu) = 0;
};

class Vcpu {
 public:
  Vcpu(Vm* vm, int index, int global_id);
  Vcpu(const Vcpu&) = delete;
  Vcpu& operator=(const Vcpu&) = delete;

  Vm* vm() const { return vm_; }
  int index() const { return index_; }  // Index within the VM.
  int global_id() const { return global_id_; }
  const std::string& name() const { return name_; }

  VcpuState state() const { return state_; }
  bool running() const { return state_ == VcpuState::kRunning; }
  bool runnable() const { return state_ == VcpuState::kRunnable; }
  bool blocked() const { return state_ == VcpuState::kBlocked; }

  Pcpu* pcpu() const { return pcpu_; }           // Non-null iff running.
  Pcpu* last_pcpu() const { return last_pcpu_; }  // For migration detection.

  void set_client(VcpuClient* client) { client_ = client; }
  VcpuClient* client() const { return client_; }

  // Guest-side state transitions. Wake() is a no-op unless blocked; Block()
  // is a no-op if already blocked. Both route through the host scheduler.
  void Wake();
  void Block();

  // Cumulative guest execution time (excludes scheduling overheads),
  // including the still-running dispatch, if any.
  TimeNs total_runtime() const;
  uint64_t migrations() const { return migrations_; }

  // Fault model: times this VCPU was forcibly removed from a PCPU that went
  // offline under it (Machine::SetPcpuOnline), and the one-shot penalty still
  // owed on its next dispatch (charged then cleared by the dispatcher).
  uint64_t evacuations() const { return evacuations_; }
  TimeNs pending_evacuation_penalty() const { return evacuation_penalty_; }

  // Host-scheduler private data (Xen keeps an analogous per-vcpu priv ptr).
  void set_sched_data(void* data) { sched_data_ = data; }
  void* sched_data() const { return sched_data_; }

 private:
  friend class Pcpu;
  friend class Machine;

  Vm* vm_;
  int index_;
  int global_id_;
  std::string name_;
  VcpuState state_ = VcpuState::kBlocked;
  Pcpu* pcpu_ = nullptr;
  Pcpu* last_pcpu_ = nullptr;
  VcpuClient* client_ = nullptr;
  void* sched_data_ = nullptr;
  TimeNs total_runtime_ = 0;
  uint64_t migrations_ = 0;
  uint64_t evacuations_ = 0;
  TimeNs evacuation_penalty_ = 0;
};

}  // namespace rtvirt

#endif  // SRC_HV_VCPU_H_

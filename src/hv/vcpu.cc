#include "src/hv/vcpu.h"

#include "src/hv/machine.h"
#include "src/hv/pcpu.h"
#include "src/hv/vm.h"

namespace rtvirt {

Vcpu::Vcpu(Vm* vm, int index, int global_id)
    : vm_(vm),
      index_(index),
      global_id_(global_id),
      name_(vm->name() + ".vcpu" + std::to_string(index)) {}

TimeNs Vcpu::total_runtime() const {
  TimeNs total = total_runtime_;
  if (pcpu_ != nullptr) {
    total += pcpu_->LiveRunNs(this);
  }
  return total;
}

void Vcpu::Wake() {
  if (state_ != VcpuState::kBlocked) {
    return;
  }
  if (vm_->crashed()) {
    return;  // A crashed VM executes nothing until the machine restarts it.
  }
  state_ = VcpuState::kRunnable;
  vm_->machine()->NotifyWake(this);
}

void Vcpu::Block() {
  if (state_ == VcpuState::kBlocked) {
    return;
  }
  Pcpu* p = pcpu_;
  if (p != nullptr) {
    p->StopCurrent();
    if (state_ == VcpuState::kBlocked) {
      // The guest already blocked us inside the revoke callback; the PCPU
      // still needs to pick new work.
      p->RequestReschedule();
      return;
    }
  }
  state_ = VcpuState::kBlocked;
  vm_->machine()->NotifyBlock(this);
  if (p != nullptr) {
    p->RequestReschedule();
  }
}

}  // namespace rtvirt

// The sched_rtvirt() hypercall ABI (paper section 3.2).
//
// A guest kernel uses this call to request host-level CPU bandwidth changes
// for its VCPUs when RTAs register, change their requirements, move between
// VCPUs, or unregister. The host scheduler performs admission control and
// returns one of the status codes below.

#ifndef SRC_HV_HYPERCALL_H_
#define SRC_HV_HYPERCALL_H_

#include <cstdint>

#include "src/common/bandwidth.h"
#include "src/common/time.h"

namespace rtvirt {

class Vcpu;

// Flags of the sched_rtvirt() hypercall.
enum class SchedOp {
  kIncBw,     // Raise one VCPU's bandwidth reservation (RTA register / growth).
  kDecBw,     // Lower one VCPU's bandwidth reservation (RTA shrink / unregister).
  kIncDecBw,  // Atomically move bandwidth between two VCPUs (RTA re-pinned).
};

struct HypercallArgs {
  SchedOp op = SchedOp::kIncBw;
  // Primary VCPU: the one whose reservation grows (kIncBw, kIncDecBw) or
  // shrinks (kDecBw). `bw_a`/`period_a` are the VCPU's new *total* parameters,
  // not deltas, so the call is idempotent.
  Vcpu* vcpu_a = nullptr;
  Bandwidth bw_a;
  TimeNs period_a = 0;
  // Secondary VCPU for kIncDecBw: the one giving bandwidth up.
  Vcpu* vcpu_b = nullptr;
  Bandwidth bw_b;
  TimeNs period_b = 0;
};

// Hypercall status codes (mirroring negative-errno kernel conventions).
constexpr int64_t kHypercallOk = 0;
constexpr int64_t kHypercallAgain = -11;         // -EAGAIN: transient failure, retry.
constexpr int64_t kHypercallNoBandwidth = -28;   // -ENOSPC: admission rejected.
constexpr int64_t kHypercallInvalid = -22;       // -EINVAL.
constexpr int64_t kHypercallNotSupported = -38;  // -ENOSYS: scheduler lacks cross-layer support.

}  // namespace rtvirt

#endif  // SRC_HV_HYPERCALL_H_

// The sched_rtvirt() hypercall ABI (paper section 3.2).
//
// A guest kernel uses this call to request host-level CPU bandwidth changes
// for its VCPUs when RTAs register, change their requirements, move between
// VCPUs, or unregister. The host scheduler performs admission control and
// returns one of the status codes below.

#ifndef SRC_HV_HYPERCALL_H_
#define SRC_HV_HYPERCALL_H_

#include <cstdint>

#include "src/common/bandwidth.h"
#include "src/common/time.h"

namespace rtvirt {

class Vcpu;

// Flags of the sched_rtvirt() hypercall.
enum class SchedOp {
  kIncBw,     // Raise one VCPU's bandwidth reservation (RTA register / growth).
  kDecBw,     // Lower one VCPU's bandwidth reservation (RTA shrink / unregister).
  kIncDecBw,  // Atomically move bandwidth between two VCPUs (RTA re-pinned).
};

// Reason code carried by a bandwidth-change hypercall.
//   kBwReasonOverloadShed — a DEC_BW issued because the guest compressed or
//     shed reservations in response to host overload pressure (as opposed to
//     a voluntary shrink when an RTA unregisters); the host counts these to
//     observe how fast the guests are responding to a pressure signal.
//   kBwReasonAdmission — an INC_BW carrying *new* RTA demand (registration or
//     a parameter raise). A rejection of these is the overload signal: the
//     host raises pressure and withholds the rejected demand from the
//     published headroom so the retrying application gets the bandwidth the
//     guests are about to free.
//   kBwReasonReinflate — an INC_BW undoing an earlier overload degradation
//     (re-inflating a compressed reservation or resuming a shed task). A
//     rejection of these must NOT read as fresh overload, or recovery probes
//     and the pressure signal would chase each other in a loop.
//   kBwReasonSloControl — an INC_BW/DEC_BW issued by the closed-loop SLO
//     controller (src/control) tracking a tenant's tail latency. Handled like
//     kBwReasonReinflate: admitted only up to the high watermark and never
//     counted as fresh overload pressure, so a controller probing for
//     headroom cannot trigger the compress/shed ladder it would then fight.
constexpr int64_t kBwReasonNone = 0;
constexpr int64_t kBwReasonOverloadShed = 1;
constexpr int64_t kBwReasonAdmission = 2;
constexpr int64_t kBwReasonReinflate = 3;
constexpr int64_t kBwReasonSloControl = 4;

struct HypercallArgs {
  SchedOp op = SchedOp::kIncBw;
  // Primary VCPU: the one whose reservation grows (kIncBw, kIncDecBw) or
  // shrinks (kDecBw). `bw_a`/`period_a` are the VCPU's new *total* parameters,
  // not deltas, so the call is idempotent.
  Vcpu* vcpu_a = nullptr;
  Bandwidth bw_a;
  TimeNs period_a = 0;
  // Secondary VCPU for kIncDecBw: the one giving bandwidth up.
  Vcpu* vcpu_b = nullptr;
  Bandwidth bw_b;
  TimeNs period_b = 0;
  // Why the change was requested (kBwReason*); informational.
  int64_t reason = kBwReasonNone;
};

// Host overload-pressure reason codes published in the shared page.
constexpr int64_t kPressureNone = 0;
constexpr int64_t kPressureWatermark = 1;   // Reserved total above high watermark.
constexpr int64_t kPressureAdmission = 2;   // Recent admission rejections.

// Hypercall status codes (mirroring negative-errno kernel conventions).
constexpr int64_t kHypercallOk = 0;
constexpr int64_t kHypercallAgain = -11;         // -EAGAIN: transient failure, retry.
constexpr int64_t kHypercallNoBandwidth = -28;   // -ENOSPC: admission rejected.
constexpr int64_t kHypercallInvalid = -22;       // -EINVAL.
constexpr int64_t kHypercallNotSupported = -38;  // -ENOSYS: scheduler lacks cross-layer support.

}  // namespace rtvirt

#endif  // SRC_HV_HYPERCALL_H_

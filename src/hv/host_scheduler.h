// Pluggable host-level (VMM) scheduler interface.
//
// Mirrors the hook set of Xen's `struct scheduler`: VCPU insertion/removal,
// wake/block notifications, and a do_schedule-style PickNext that returns the
// next VCPU and the time at which the scheduler wants to be re-invoked.
// RTVirt's DP-WRAP scheduler, RT-Xen's gEDF/deferrable-server scheduler, the
// Credit scheduler and the plain EDF-server scheduler all implement this.

#ifndef SRC_HV_HOST_SCHEDULER_H_
#define SRC_HV_HOST_SCHEDULER_H_

#include <cstdint>
#include <string_view>

#include "src/common/time.h"
#include "src/hv/hypercall.h"

namespace rtvirt {

class Machine;
class Pcpu;
class Vcpu;

struct ScheduleDecision {
  Vcpu* next = nullptr;          // nullptr: idle.
  TimeNs run_until = kTimeNever;  // Absolute time to re-invoke PickNext.
};

class HostScheduler {
 public:
  virtual ~HostScheduler() = default;

  virtual std::string_view name() const = 0;

  // Called once when installed into a machine.
  virtual void Attach(Machine* machine) { machine_ = machine; }

  // VCPU lifecycle (also used for CPU hotplug).
  virtual void VcpuInserted(Vcpu* vcpu) = 0;
  virtual void VcpuRemoved(Vcpu* vcpu) = 0;

  // A blocked VCPU became runnable / a VCPU ran out of work.
  virtual void VcpuWake(Vcpu* vcpu) = 0;
  virtual void VcpuBlock(Vcpu* vcpu) = 0;

  // Pick what `pcpu` runs next, starting now. The machine re-invokes this at
  // `run_until`, or earlier if the PCPU is tickled. Never called for an
  // offline PCPU.
  virtual ScheduleDecision PickNext(Pcpu* pcpu) = 0;

  // A PCPU's capacity just changed: it went offline/online or its speed
  // factor moved (Machine::SetPcpuOnline / SetPcpuSpeed). Invoked after the
  // machine state is updated and any dispatched VCPU was revoked, before the
  // survivors are tickled. Capacity-aware schedulers re-plan here; the
  // default ignores the event (a frozen-layout scheduler keeps planning
  // against nominal capacity and simply loses whatever it lays onto dead or
  // slowed cores).
  virtual void PcpuCapacityChanged(Pcpu* pcpu) { (void)pcpu; }

  // Notification that `vcpu` just executed for `ran` ns (budget accounting).
  virtual void AccountRun(Vcpu* vcpu, TimeNs ran) { (void)vcpu, (void)ran; }

  // sched_rtvirt() handler; only cross-layer-capable schedulers override it.
  virtual int64_t Hypercall(Vcpu* caller, const HypercallArgs& args) {
    (void)caller, (void)args;
    return kHypercallNotSupported;
  }

  // Virtual cost of one PickNext invocation, charged as overhead before the
  // chosen VCPU starts (algorithm-dependent; see Table 6 discussion).
  virtual TimeNs ScheduleCost(const Pcpu* pcpu) const {
    (void)pcpu;
    return 0;
  }

  // Extra per-dispatch cost when switching to `next` (e.g., Credit's
  // softirq/timer wake path), charged on top of the context-switch cost.
  virtual TimeNs DispatchCost(const Vcpu* next) const {
    (void)next;
    return 0;
  }

 protected:
  Machine* machine_ = nullptr;
};

}  // namespace rtvirt

#endif  // SRC_HV_HOST_SCHEDULER_H_

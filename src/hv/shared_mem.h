// Per-VM shared scheduling page (paper sections 3.1/3.3).
//
// The guest publishes, for each of its VCPUs, the next earliest deadline of
// the RTAs assigned to that VCPU (8 bytes per VCPU, as the paper notes). The
// host scheduler reads these slots when computing the next global deadline.
// The host side publishes its most recent per-VCPU allocation so the guest
// can observe scheduling decisions. On real hardware this is a granted memory
// page read via cache coherence with no explicit synchronization; in the
// simulator it is plain shared state, optionally with a configurable
// guest->host visibility delay that models the coherence window (fault
// injection: a write becomes host-visible only `visibility_delay` ns after it
// was issued; until then the host reads the previous value). Each slot also
// records when its visible deadline was published, so the host can apply a
// freshness horizon and distrust slots a crashed or wedged guest stopped
// updating.

#ifndef SRC_HV_SHARED_MEM_H_
#define SRC_HV_SHARED_MEM_H_

#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace rtvirt {

class SharedSchedPage {
 public:
  // A real granted page is one page: 8 bytes per VCPU bounds the slot count
  // far below this. The cap keeps a corrupted or malicious index from turning
  // the backing vector into an allocation attack (the negative-index guard's
  // mirror image; see tests/shared_mem_test.cc).
  static constexpr int kMaxSlots = 4096;

  // Wires the simulator clock used for publish timestamps and the staleness
  // model. Without a clock every write is timestamped 0 and immediately
  // visible (standalone unit tests).
  void AttachClock(const Simulator* sim) { sim_ = sim; }

  // Fault injection: guest-side deadline writes become host-visible only
  // `delay` ns after they are issued (0 restores instant visibility).
  void SetVisibilityDelay(TimeNs delay) { visibility_delay_ = delay; }
  TimeNs visibility_delay() const { return visibility_delay_; }

  // Guest side: publish the next earliest deadline among the RTAs pinned to
  // VCPU `vcpu_index`. kTimeNever means "no time-sensitive work". Negative
  // and beyond-page indices are ignored (a buggy or malicious guest must not
  // corrupt the page or grow it without bound; see the regression tests in
  // tests/shared_mem_test.cc).
  void PublishNextDeadline(int vcpu_index, TimeNs deadline) {
    if (vcpu_index < 0 || vcpu_index >= kMaxSlots) {
      return;
    }
    Ensure(vcpu_index);
    Slot& s = slots_[vcpu_index];
    TimeNs now = Now();
    Promote(s, now);
    if (visibility_delay_ > 0) {
      // The write sits in the coherence window; the previously visible value
      // keeps being served until `visible_at`. A newer write supersedes a
      // still-pending one (last write wins, as on real shared memory).
      s.pending_deadline = deadline;
      s.pending_published_at = now;
      s.pending_visible_at = now + visibility_delay_;
      s.has_pending = true;
    } else {
      s.next_deadline = deadline;
      s.published_at = now;
    }
  }

  // Host side: read the guest-published deadline (promotes any pending write
  // whose coherence window has elapsed).
  TimeNs next_deadline(int vcpu_index) const {
    if (!Valid(vcpu_index)) {
      return kTimeNever;
    }
    Slot& s = slots_[vcpu_index];
    Promote(s, Now());
    return s.next_deadline;
  }

  // Host side: when the visible deadline of `vcpu_index` was published by the
  // guest; -1 if the slot was never written. The host watchdog compares this
  // against its freshness horizon.
  TimeNs last_publish_time(int vcpu_index) const {
    if (!Valid(vcpu_index)) {
      return -1;
    }
    Slot& s = slots_[vcpu_index];
    Promote(s, Now());
    return s.published_at;
  }

  // Host side: publish the CPU time allocated to the VCPU in the current
  // global slice so the guest can align its decisions with the host's.
  // (Host->guest writes are not subject to the staleness model: the host
  // wrote them on the PCPU that will next run the VCPU.)
  // The same index guards apply: the host plans from validated VCPU objects,
  // but a hardened boundary does not assume its own side is bug-free.
  void PublishAllocation(int vcpu_index, TimeNs slice_start, TimeNs slice_len) {
    if (vcpu_index < 0 || vcpu_index >= kMaxSlots) {
      return;
    }
    Ensure(vcpu_index);
    slots_[vcpu_index].alloc_start = slice_start;
    slots_[vcpu_index].alloc_len = slice_len;
  }

  TimeNs allocation_start(int vcpu_index) const {
    return Valid(vcpu_index) ? slots_[vcpu_index].alloc_start : 0;
  }
  TimeNs allocation_length(int vcpu_index) const {
    return Valid(vcpu_index) ? slots_[vcpu_index].alloc_len : 0;
  }

  // Host side: publish overload-pressure state for the whole VM (one word per
  // page, not per VCPU — pressure is a property of the host scheduler). Level
  // 0 means no pressure; higher levels ask the guest to compress / shed
  // elastic reservations. `reason` is one of kPressure* (informational).
  // `headroom_ppb` is the host's remaining admittable bandwidth: guests gate
  // re-inflation on it so recovery probes do not turn into admission
  // rejections (which would read as fresh pressure and oscillate). It is
  // advisory — the host still enforces admission; a stale value merely costs
  // one rejected hypercall. Host->guest writes are not subject to the
  // staleness model.
  void PublishPressure(int level, int64_t reason, int64_t headroom_ppb) {
    pressure_level_ = level;
    pressure_reason_ = reason;
    pressure_headroom_ppb_ = headroom_ppb;
    pressure_published_at_ = Now();
  }

  // Guest side: poll the host's pressure signal.
  int pressure_level() const { return pressure_level_; }
  int64_t pressure_reason() const { return pressure_reason_; }
  int64_t pressure_headroom_ppb() const { return pressure_headroom_ppb_; }
  TimeNs pressure_published_at() const { return pressure_published_at_; }

  // Checkpoint support: the page is plain data, serialized inside the
  // machine section (src/checkpoint).
  void SaveState(ckpt::Writer& w) const {
    w.I64(visibility_delay_);
    w.U32(static_cast<uint32_t>(pressure_level_));
    w.I64(pressure_reason_);
    w.I64(pressure_headroom_ppb_);
    w.I64(pressure_published_at_);
    w.U32(static_cast<uint32_t>(slots_.size()));
    for (const Slot& s : slots_) {
      w.I64(s.next_deadline);
      w.I64(s.published_at);
      w.I64(s.alloc_start);
      w.I64(s.alloc_len);
      w.Bool(s.has_pending);
      w.I64(s.pending_deadline);
      w.I64(s.pending_published_at);
      w.I64(s.pending_visible_at);
    }
  }
  std::string RestoreState(ckpt::Reader& r) {
    visibility_delay_ = r.I64();
    pressure_level_ = static_cast<int>(r.U32());
    pressure_reason_ = r.I64();
    pressure_headroom_ppb_ = r.I64();
    pressure_published_at_ = r.I64();
    uint32_t n = r.U32();
    if (!r.ok() || n > kMaxSlots) {
      return "shared page: bad slot count";
    }
    slots_.assign(n, Slot{});
    for (Slot& s : slots_) {
      s.next_deadline = r.I64();
      s.published_at = r.I64();
      s.alloc_start = r.I64();
      s.alloc_len = r.I64();
      s.has_pending = r.Bool();
      s.pending_deadline = r.I64();
      s.pending_published_at = r.I64();
      s.pending_visible_at = r.I64();
    }
    return r.ok() ? "" : "shared page: truncated slots";
  }

 private:
  struct Slot {
    TimeNs next_deadline = kTimeNever;
    TimeNs published_at = -1;  // When `next_deadline` was written; -1 = never.
    TimeNs alloc_start = 0;
    TimeNs alloc_len = 0;
    // In-flight guest write not yet host-visible (staleness model).
    bool has_pending = false;
    TimeNs pending_deadline = kTimeNever;
    TimeNs pending_published_at = -1;
    TimeNs pending_visible_at = 0;
  };

  TimeNs Now() const { return sim_ != nullptr ? sim_->Now() : 0; }

  static void Promote(Slot& s, TimeNs now) {
    if (s.has_pending && now >= s.pending_visible_at) {
      s.next_deadline = s.pending_deadline;
      s.published_at = s.pending_published_at;
      s.has_pending = false;
    }
  }

  bool Valid(int vcpu_index) const {
    return vcpu_index >= 0 && static_cast<size_t>(vcpu_index) < slots_.size();
  }
  void Ensure(int vcpu_index) {
    if (static_cast<size_t>(vcpu_index) >= slots_.size()) {
      slots_.resize(vcpu_index + 1);
    }
  }

  const Simulator* sim_ = nullptr;
  TimeNs visibility_delay_ = 0;
  int pressure_level_ = 0;
  int64_t pressure_reason_ = 0;
  int64_t pressure_headroom_ppb_ = 0;
  TimeNs pressure_published_at_ = -1;  // -1 = never published.
  // Mutable: host-side reads promote pending writes in place (the page is
  // shared memory; reads observing time passing is not logical mutation).
  mutable std::vector<Slot> slots_;
};

}  // namespace rtvirt

#endif  // SRC_HV_SHARED_MEM_H_

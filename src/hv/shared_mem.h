// Per-VM shared scheduling page (paper sections 3.1/3.3).
//
// The guest publishes, for each of its VCPUs, the next earliest deadline of
// the RTAs assigned to that VCPU (8 bytes per VCPU, as the paper notes). The
// host scheduler reads these slots when computing the next global deadline.
// The host side publishes its most recent per-VCPU allocation so the guest
// can observe scheduling decisions. On real hardware this is a granted memory
// page read via cache coherence with no explicit synchronization; in the
// simulator it is plain shared state.

#ifndef SRC_HV_SHARED_MEM_H_
#define SRC_HV_SHARED_MEM_H_

#include <vector>

#include "src/common/time.h"

namespace rtvirt {

class SharedSchedPage {
 public:
  // Guest side: publish the next earliest deadline among the RTAs pinned to
  // VCPU `vcpu_index`. kTimeNever means "no time-sensitive work".
  void PublishNextDeadline(int vcpu_index, TimeNs deadline) {
    Ensure(vcpu_index);
    slots_[vcpu_index].next_deadline = deadline;
  }

  // Host side: read the guest-published deadline.
  TimeNs next_deadline(int vcpu_index) const {
    if (vcpu_index < 0 || static_cast<size_t>(vcpu_index) >= slots_.size()) {
      return kTimeNever;
    }
    return slots_[vcpu_index].next_deadline;
  }

  // Host side: publish the CPU time allocated to the VCPU in the current
  // global slice so the guest can align its decisions with the host's.
  void PublishAllocation(int vcpu_index, TimeNs slice_start, TimeNs slice_len) {
    Ensure(vcpu_index);
    slots_[vcpu_index].alloc_start = slice_start;
    slots_[vcpu_index].alloc_len = slice_len;
  }

  TimeNs allocation_start(int vcpu_index) const {
    return Valid(vcpu_index) ? slots_[vcpu_index].alloc_start : 0;
  }
  TimeNs allocation_length(int vcpu_index) const {
    return Valid(vcpu_index) ? slots_[vcpu_index].alloc_len : 0;
  }

 private:
  struct Slot {
    TimeNs next_deadline = kTimeNever;
    TimeNs alloc_start = 0;
    TimeNs alloc_len = 0;
  };

  bool Valid(int vcpu_index) const {
    return vcpu_index >= 0 && static_cast<size_t>(vcpu_index) < slots_.size();
  }
  void Ensure(int vcpu_index) {
    if (static_cast<size_t>(vcpu_index) >= slots_.size()) {
      slots_.resize(vcpu_index + 1);
    }
  }

  std::vector<Slot> slots_;
};

}  // namespace rtvirt

#endif  // SRC_HV_SHARED_MEM_H_

// The physical host: PCPUs, VMs, the installed host scheduler, and the
// machine-wide cost model.

#ifndef SRC_HV_MACHINE_H_
#define SRC_HV_MACHINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/common/time.h"
#include "src/hv/host_scheduler.h"
#include "src/hv/hypercall.h"
#include "src/hv/overhead.h"
#include "src/hv/pcpu.h"
#include "src/hv/vm.h"
#include "src/sim/simulator.h"

namespace rtvirt {

struct MachineConfig {
  // Schedulable PCPUs. The paper's testbed has 16 cores with one dedicated
  // to Dom0, leaving 15 for DomUs; Dom0 is not modelled beyond that.
  int num_pcpus = 15;
  // Cost of one VCPU context switch on a PCPU.
  TimeNs context_switch_cost = 1500;  // 1.5 us.
  // Extra cost when a VCPU resumes on a different PCPU than it last ran on
  // (cold caches); charged on top of the context switch.
  TimeNs migration_cost = 3000;  // 3 us.
  // Cost of one sched_rtvirt() hypercall (paper section 4.5: ~10 us).
  TimeNs hypercall_cost = 10000;
  // One-shot penalty charged (on top of the migration cost) when a VCPU is
  // next dispatched after its PCPU failed under it: register/lazy-FPU state
  // salvage and cold everything on the rescuing core. Benches derive it from
  // cluster/migration_model's stop-and-copy estimate for the VCPU's hot
  // working set. 0 (the default) keeps evacuations at plain migration cost.
  TimeNs evacuation_penalty = 0;
};

class Machine : public ckpt::Checkpointable {
 public:
  Machine(Simulator* sim, MachineConfig config);
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Simulator* sim() const { return sim_; }
  const MachineConfig& config() const { return config_; }

  // Must be called before Start(); the machine owns the scheduler.
  void SetScheduler(std::unique_ptr<HostScheduler> scheduler);
  HostScheduler* scheduler() const { return scheduler_.get(); }

  Vm* AddVm(std::string name);
  int num_vms() const { return static_cast<int>(vms_.size()); }
  Vm* vm(int index) const { return vms_[index].get(); }

  int num_pcpus() const { return static_cast<int>(pcpus_.size()); }
  Pcpu* pcpu(int index) const { return pcpus_[index].get(); }

  // ---- PCPU fault & capacity-degradation model ----
  // Takes a core offline (fault/hotplug-remove) or brings it back. Going
  // offline forcibly revokes the dispatched VCPU (which becomes runnable
  // again and is owed MachineConfig::evacuation_penalty on its next
  // dispatch), notifies the host scheduler via PcpuCapacityChanged, and
  // tickles the surviving cores so stranded VCPUs find a new home.
  void SetPcpuOnline(int pcpu, bool online);
  // Sets a core's frequency-scaling factor in (0, 1]: guest work on it
  // progresses at `speed` useful ns per wall-clock ns. The dispatched VCPU
  // is revoked first so every grant runs at a single constant speed, then
  // the scheduler is notified and the core re-dispatches.
  void SetPcpuSpeed(int pcpu, double speed);
  // Sum of online PCPU speed factors: the machine's real supply. Equals
  // Bandwidth::Cpus(num_pcpus()) on a healthy machine.
  Bandwidth EffectiveCapacity() const;
  int num_online_pcpus() const;
  // VCPUs forcibly revoked by SetPcpuOnline(pcpu, false) so far.
  uint64_t pcpu_evacuations() const { return pcpu_evacuations_; }

  // Kicks every PCPU's scheduler once; call after creating VMs and workloads
  // (additional VMs/VCPUs may still be added later).
  void Start();

  // Guest-initiated hypercall; charges the configured cost and dispatches to
  // the host scheduler. Transient conditions on the channel itself (a crashed
  // caller VM, or an injected fault — see SetHypercallInterceptor) return
  // kHypercallAgain without reaching the scheduler.
  int64_t Hypercall(Vcpu* caller, const HypercallArgs& args);

  // Fault injection on the hypercall path. The interceptor runs before the
  // call is dispatched and decides whether it proceeds, transiently fails
  // (-EAGAIN), or is dropped (the guest observes a timeout, then -EAGAIN);
  // `extra_latency` is charged to the hypercall overhead account either way.
  struct HypercallFault {
    enum class Action {
      kNone,  // Deliver normally.
      kFail,  // Transient failure: return kHypercallAgain.
      kDrop,  // Lost call: never dispatched, caller times out to kHypercallAgain.
    };
    Action action = Action::kNone;
    TimeNs extra_latency = 0;
  };
  using HypercallInterceptor = std::function<HypercallFault(Vcpu*, const HypercallArgs&)>;
  void SetHypercallInterceptor(HypercallInterceptor interceptor) {
    hypercall_interceptor_ = std::move(interceptor);
  }

  // Fault model: kills / revives a whole VM. Crashing forcibly blocks every
  // VCPU (revoking any held PCPUs through the normal scheduler path); the
  // VM's host-side reservations are deliberately left installed — they are
  // orphaned until a watchdog reclaims them. Restart only clears the crashed
  // flag; the guest OS model is responsible for rebuilding its own state.
  void CrashVm(Vm* vm);
  void RestartVm(Vm* vm);

  const OverheadStats& overhead() const { return overhead_; }
  OverheadStats& mutable_overhead() { return overhead_; }

  // Notifications from Vcpu wake/block; also used by guests.
  void NotifyWake(Vcpu* vcpu);
  void NotifyBlock(Vcpu* vcpu);

  // Optional dispatch tracer: called on every VCPU dispatch with the target
  // PCPU, the VCPU, and whether the dispatch was counted as a migration.
  // Used by the schedule-trace tooling (Figure 1) and by tests.
  using DispatchTracer = std::function<void(TimeNs, const Pcpu&, const Vcpu&, bool migrated)>;
  void SetDispatchTracer(DispatchTracer tracer) { dispatch_tracer_ = std::move(tracer); }
  const DispatchTracer& dispatch_tracer() const { return dispatch_tracer_; }

  // ---- Checkpoint support (src/checkpoint) ----
  // The machine section covers PCPUs (incl. their pending dispatch events),
  // VMs, VCPUs, shared pages, and overhead accounts. Pcpu tags its events
  // with ckpt_owner() so the machine rebinds them after a restore.
  static constexpr const char* kCkptSection = "machine";
  uint64_t ckpt_owner() const { return ckpt_owner_; }
  enum CkptEventKind : uint32_t {
    kEvResched = 1,   // payload = pcpu id; the coalesced reschedule softirq.
    kEvSliceEnd = 2,  // payload = pcpu id; dispatch horizon timer.
    kEvGrant = 3,     // payload = pcpu id; end of context-switch overhead.
  };
  void SaveState(ckpt::Writer& w) const override;
  std::string RestoreState(ckpt::Reader& r) override;
  std::string RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) override;
  // Resolves a serialized VCPU reference; nullptr if no such id.
  Vcpu* VcpuByGlobalId(int global_id) const;

 private:
  friend class Vm;
  friend class Pcpu;

  Vcpu* RegisterVcpu(Vm* vm, int index);

  Simulator* sim_;
  MachineConfig config_;
  std::unique_ptr<HostScheduler> scheduler_;
  std::vector<std::unique_ptr<Pcpu>> pcpus_;
  std::vector<std::unique_ptr<Vm>> vms_;
  int next_vcpu_global_id_ = 0;
  uint64_t pcpu_evacuations_ = 0;
  OverheadStats overhead_;
  DispatchTracer dispatch_tracer_;
  HypercallInterceptor hypercall_interceptor_;
  bool started_ = false;
  uint64_t ckpt_owner_ = ckpt::Fnv1a64(kCkptSection);
};

}  // namespace rtvirt

#endif  // SRC_HV_MACHINE_H_

// Physical CPU: runs one VCPU at a time under the host scheduler's control.

#ifndef SRC_HV_PCPU_H_
#define SRC_HV_PCPU_H_

#include <cstdint>

#include "src/common/bandwidth.h"
#include "src/common/time.h"
#include "src/sim/simulator.h"

namespace rtvirt {

class Machine;
class Vcpu;

class Pcpu {
 public:
  Pcpu(Machine* machine, int id);
  Pcpu(const Pcpu&) = delete;
  Pcpu& operator=(const Pcpu&) = delete;

  int id() const { return id_; }
  Machine* machine() const { return machine_; }

  // Fault/capacity model (set via Machine::SetPcpuOnline / SetPcpuSpeed).
  // An offline PCPU executes nothing: its scheduler is never consulted and a
  // reschedule only revokes whatever was dispatched here. A throttled PCPU
  // (speed < 1.0) still executes, but guest work progresses at `speed` useful
  // ns per wall-clock ns — consumed CPU time is stretched by 1/speed.
  bool online() const { return online_; }
  int64_t speed_ppb() const { return speed_ppb_; }  // Bandwidth::kUnit = full speed.
  double speed() const {
    return static_cast<double>(speed_ppb_) / static_cast<double>(Bandwidth::kUnit);
  }

  // The VCPU currently dispatched here (nullptr when idle). A dispatched
  // VCPU may still be paying context-switch overhead and not yet granted.
  Vcpu* current() const { return current_; }
  bool idle() const { return current_ == nullptr; }
  // When the current dispatch expires (kTimeNever when idle or open-ended).
  // Lets a scheduler that finds its VCPU held by another PCPU distinguish a
  // stop event queued at this very instant from a genuinely longer grant.
  TimeNs run_until() const { return current_ == nullptr ? kTimeNever : run_until_; }

  // Tickle: request a (coalesced) re-invocation of the scheduler now.
  // Mirrors raising SCHEDULE_SOFTIRQ on the target CPU in Xen.
  void RequestReschedule();

  // Steals `duration` ns from whatever is currently executing here (timer
  // ticks, accounting interrupts). The running VCPU is suspended and resumes
  // after the delay; the time is charged to the machine's schedule overhead.
  void InjectOverhead(TimeNs duration);

  // Brings run-time accounting up to date without a reschedule: credits the
  // elapsed run to the VCPU and the scheduler's AccountRun. Schedulers call
  // this before budget replenishments so consumption is never charged
  // against a fresh budget.
  void SettleAccounting();

  // Live execution time of `vcpu` in its current dispatch (0 if not here).
  TimeNs LiveRunNs(const Vcpu* vcpu) const;

  TimeNs busy_time() const { return busy_time_; }
  TimeNs idle_time(TimeNs now) const;

 private:
  friend class Machine;
  friend class Vcpu;

  // Runs the scheduling pipeline: stop current, charge costs, pick next,
  // dispatch. Only ever invoked from a simulator event.
  void Reschedule();

  // Stops the currently dispatched VCPU (accounting its run time) and leaves
  // the PCPU idle. Safe to call when already idle.
  void StopCurrent();

  void Dispatch(Vcpu* vcpu, TimeNs overhead_delay, TimeNs run_until);
  void GrantCurrent();

  // Checkpoint identities of this PCPU's events (owner = machine section) and
  // the restore-time hooks that re-create them (src/checkpoint).
  EventTag ReschedTag() const;
  EventTag SliceEndTag() const;
  EventTag GrantTag() const;
  void CkptRebindResched(TimeNs when);
  void CkptRebindSliceEnd(TimeNs when);
  void CkptRebindGrant(TimeNs when);

  Machine* machine_;
  int id_;
  bool online_ = true;
  int64_t speed_ppb_ = Bandwidth::kUnit;
  Vcpu* current_ = nullptr;
  bool granted_ = false;       // Guest notified that it is running.
  TimeNs granted_at_ = 0;      // Start of useful execution.
  bool resched_pending_ = false;
  TimeNs run_until_ = kTimeNever;  // Current dispatch horizon.
  Simulator::EventId grant_event_;
  Simulator::EventId slice_end_event_;
  TimeNs busy_time_ = 0;  // Cumulative useful (granted) VCPU time.
};

}  // namespace rtvirt

#endif  // SRC_HV_PCPU_H_

#include "src/sweep/proc_isolate.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define RTVIRT_SWEEP_HAS_FORK 1
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define RTVIRT_SWEEP_HAS_FORK 0
#endif

namespace rtvirt::sweep {

bool ProcessIsolationSupported() { return RTVIRT_SWEEP_HAS_FORK != 0; }

#if RTVIRT_SWEEP_HAS_FORK

namespace {

// Result wire format, child -> parent: a fixed magic byte (so a child that
// dies mid-write is distinguishable from one that never reported), the ok
// flag, then length-prefixed reason and report. All writes are raw write(2):
// the child _exit()s without flushing stdio.
constexpr uint8_t kMagic = 0xA7;

bool WriteAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

void WriteString(int fd, const std::string& s, bool& ok) {
  uint64_t len = s.size();
  ok = ok && WriteAll(fd, &len, sizeof(len));
  ok = ok && WriteAll(fd, s.data(), s.size());
}

bool ReadString(const std::string& buf, size_t& off, std::string& out) {
  if (buf.size() - off < sizeof(uint64_t)) {
    return false;
  }
  uint64_t len = 0;
  std::memcpy(&len, buf.data() + off, sizeof(len));
  off += sizeof(len);
  if (buf.size() - off < len) {
    return false;
  }
  out.assign(buf.data() + off, len);
  off += len;
  return true;
}

// First non-empty line of the child's captured stderr — for an RTVIRT_CHECK
// abort this is the single-write diagnostic line (see src/common/check.h).
std::string FirstStderrLine(const std::string& err) {
  size_t begin = err.find_first_not_of('\n');
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = err.find('\n', begin);
  std::string line = err.substr(begin, end == std::string::npos ? end : end - begin);
  constexpr size_t kMaxLine = 240;
  if (line.size() > kMaxLine) {
    line.resize(kMaxLine);
  }
  return line;
}

std::string DescribeExit(int status, const std::string& child_stderr) {
  char buf[64];
  if (WIFSIGNALED(status)) {
    std::snprintf(buf, sizeof(buf), "crash: signal %d", WTERMSIG(status));
  } else if (WIFEXITED(status)) {
    std::snprintf(buf, sizeof(buf), "crash: exit status %d without result",
                  WEXITSTATUS(status));
  } else {
    std::snprintf(buf, sizeof(buf), "crash: unknown wait status");
  }
  std::string reason = buf;
  std::string line = FirstStderrLine(child_stderr);
  if (!line.empty()) {
    reason += ": " + line;
  }
  return reason;
}

[[noreturn]] void ChildMain(const ShardFn& fn, const ShardContext& ctx, int data_fd,
                            int err_fd) {
  // Route the shard's stderr (RTVIRT_CHECK diagnostics, sanitizer reports)
  // to the capture pipe; stdout is silenced so a chatty shard body cannot
  // corrupt the parent's merged report.
  ::dup2(err_fd, 2);
  int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    ::dup2(devnull, 1);
  }
  // Close every other inherited descriptor. Concurrent attempts fork in
  // parallel, so this child may hold other shards' pipe write-ends; leaving
  // one open would hold that shard's parent read loop past its own child's
  // death — a spurious watchdog timeout for a shard that exited instantly.
  long max_fd = ::sysconf(_SC_OPEN_MAX);
  if (max_fd < 0 || max_fd > 65536) {
    max_fd = 65536;
  }
  for (int fd = 3; fd < static_cast<int>(max_fd); ++fd) {
    if (fd != data_fd) {
      ::close(fd);
    }
  }
  ShardResult r = fn(ctx);
  bool ok = WriteAll(data_fd, &kMagic, 1);
  uint8_t okbyte = r.ok ? 1 : 0;
  ok = ok && WriteAll(data_fd, &okbyte, 1);
  uint8_t resumed = r.resumed ? 1 : 0;
  ok = ok && WriteAll(data_fd, &resumed, 1);
  int64_t resume_point = r.resume_point_ns;
  ok = ok && WriteAll(data_fd, &resume_point, sizeof(resume_point));
  WriteString(data_fd, r.reason, ok);
  WriteString(data_fd, r.report, ok);
  // _exit, not exit: no atexit handlers or static destructors in the child,
  // and no double-flush of stdio buffers inherited from the parent.
  ::_exit(ok ? 0 : 3);
}

}  // namespace

ProcAttemptOutcome RunShardAttemptInProcess(const ShardFn& fn, const ShardContext& ctx,
                                            int64_t deadline_ms) {
  ProcAttemptOutcome out;
  int data_pipe[2];
  int err_pipe[2];
  if (::pipe(data_pipe) != 0) {
    out.reason = "process isolation: pipe() failed";
    return out;
  }
  if (::pipe(err_pipe) != 0) {
    ::close(data_pipe[0]);
    ::close(data_pipe[1]);
    out.reason = "process isolation: pipe() failed";
    return out;
  }
  // Flush before fork so buffered output is not emitted twice.
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t pid = ::fork();
  if (pid < 0) {
    for (int fd : {data_pipe[0], data_pipe[1], err_pipe[0], err_pipe[1]}) {
      ::close(fd);
    }
    out.reason = "process isolation: fork() failed";
    return out;
  }
  if (pid == 0) {
    ::close(data_pipe[0]);
    ::close(err_pipe[0]);
    ChildMain(fn, ctx, data_pipe[1], err_pipe[1]);
  }
  ::close(data_pipe[1]);
  ::close(err_pipe[1]);

  std::string data;
  std::string child_stderr;
  bool timed_out = false;
  Clock* clock = RealClock();
  int64_t start_ms = clock->NowMs();
  struct pollfd fds[2] = {{data_pipe[0], POLLIN, 0}, {err_pipe[0], POLLIN, 0}};
  int open_fds = 2;
  while (open_fds > 0) {
    int timeout = -1;
    if (deadline_ms > 0) {
      int64_t left = deadline_ms - (clock->NowMs() - start_ms);
      if (left <= 0) {
        timed_out = true;
        break;
      }
      timeout = static_cast<int>(left > 1000 ? 1000 : left);
    }
    int n = ::poll(fds, 2, timeout);
    if (n < 0 && errno != EINTR) {
      break;
    }
    for (auto& p : fds) {
      if (p.fd < 0 || (p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      char buf[4096];
      ssize_t got = ::read(p.fd, buf, sizeof(buf));
      if (got > 0) {
        (p.fd == data_pipe[0] ? data : child_stderr).append(buf, static_cast<size_t>(got));
      } else if (got == 0 || (got < 0 && errno != EINTR)) {
        ::close(p.fd);
        p.fd = -1;
        --open_fds;
      }
    }
  }
  if (timed_out) {
    ::kill(pid, SIGKILL);
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  // Drain whatever the child managed to write before it died.
  for (auto& p : fds) {
    if (p.fd < 0) {
      continue;
    }
    char buf[4096];
    ssize_t got;
    while ((got = ::read(p.fd, buf, sizeof(buf))) > 0) {
      (p.fd == data_pipe[0] ? data : child_stderr).append(buf, static_cast<size_t>(got));
    }
    ::close(p.fd);
  }

  if (timed_out) {
    out.kind = AttemptKind::kTimeout;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "watchdog: exceeded %lld ms shard deadline (killed)",
                  static_cast<long long>(deadline_ms));
    out.reason = buf;
    return out;
  }
  // A complete record requires the magic byte, the ok and resumed flags, the
  // resume point, and both length-prefixed strings.
  if (data.size() >= 3 + sizeof(int64_t) && static_cast<uint8_t>(data[0]) == kMagic) {
    size_t off = 3;
    ShardResult r;
    r.ok = data[1] != 0;
    r.resumed = data[2] != 0;
    std::memcpy(&r.resume_point_ns, data.data() + off, sizeof(r.resume_point_ns));
    off += sizeof(r.resume_point_ns);
    if (ReadString(data, off, r.reason) && ReadString(data, off, r.report)) {
      out.kind = r.ok ? AttemptKind::kClean : AttemptKind::kFailed;
      out.result = std::move(r);
      return out;
    }
  }
  out.kind = AttemptKind::kCrash;
  out.reason = DescribeExit(status, child_stderr);
  return out;
}

#else  // !RTVIRT_SWEEP_HAS_FORK

ProcAttemptOutcome RunShardAttemptInProcess(const ShardFn&, const ShardContext&,
                                            int64_t) {
  ProcAttemptOutcome out;
  out.reason = "process isolation unsupported on this platform";
  return out;
}

#endif  // RTVIRT_SWEEP_HAS_FORK

}  // namespace rtvirt::sweep

// Scoped containment of RTVIRT_CHECK failures for sweep shard workers.
//
// While a ScopedCheckCapture is alive on a thread, an RTVIRT_CHECK violation
// on that thread throws CheckFailure (carrying the formatted diagnostic)
// instead of writing to stderr and aborting the process. The sweep runner
// wraps each kThread-isolation shard attempt in one so a shard's invariant
// violation unwinds that shard only and becomes a recorded, retryable
// failure.
//
// Containment is best-effort by design: stack unwinding runs destructors of
// the failed shard's half-torn-down simulation, and a *second* check failure
// raised from one of those destructors aborts outright (the handler is
// cleared before it throws). Shards that must survive arbitrary aborts run
// under kProcess isolation instead, where the fork boundary is the handler.

#ifndef SRC_SWEEP_CHECK_CAPTURE_H_
#define SRC_SWEEP_CHECK_CAPTURE_H_

#include <string>

#include "src/common/check.h"

namespace rtvirt::sweep {

struct CheckFailure {
  std::string message;  // The full formatted RTVIRT_CHECK diagnostic.
};

namespace capture_internal {

[[noreturn]] inline void Throw(const char* message) { throw CheckFailure{message}; }

}  // namespace capture_internal

class ScopedCheckCapture {
 public:
  ScopedCheckCapture() : previous_(SetCheckFailureHandler(&capture_internal::Throw)) {}
  ~ScopedCheckCapture() { SetCheckFailureHandler(previous_); }
  ScopedCheckCapture(const ScopedCheckCapture&) = delete;
  ScopedCheckCapture& operator=(const ScopedCheckCapture&) = delete;

 private:
  CheckFailureHandler previous_;
};

}  // namespace rtvirt::sweep

#endif  // SRC_SWEEP_CHECK_CAPTURE_H_

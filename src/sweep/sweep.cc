#include "src/sweep/sweep.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <system_error>
#include <thread>
#include <utility>

#include "src/common/rng.h"
#include "src/sweep/check_capture.h"
#include "src/sweep/proc_isolate.h"

namespace rtvirt::sweep {

namespace {

class MonotonicClock : public Clock {
 public:
  int64_t NowMs() override {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void SleepMs(int64_t ms) override {
    if (ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  }
};

std::string FirstLine(const std::string& s) {
  size_t end = s.find('\n');
  std::string line = end == std::string::npos ? s : s.substr(0, end);
  constexpr size_t kMaxLine = 240;
  if (line.size() > kMaxLine) {
    line.resize(kMaxLine);
  }
  return line;
}

}  // namespace

Clock* RealClock() {
  static MonotonicClock clock;
  return &clock;
}

const char* AttemptKindName(AttemptKind kind) {
  switch (kind) {
    case AttemptKind::kClean:
      return "clean";
    case AttemptKind::kFailed:
      return "failed";
    case AttemptKind::kCheckFailure:
      return "check-failure";
    case AttemptKind::kCrash:
      return "crash";
    case AttemptKind::kTimeout:
      return "timeout";
  }
  return "?";
}

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kClean:
      return "clean";
    case Outcome::kFailed:
      return "failed";
    case Outcome::kTimeout:
      return "timeout";
    case Outcome::kExhausted:
      return "exhausted";
  }
  return "?";
}

std::string SweepReport::Merged() const {
  std::ostringstream os;
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardOutcome& s = shards[i];
    os << "shard " << i << ": " << OutcomeName(s.outcome) << " attempts=" << s.attempts;
    if (s.recovered) {
      os << " recovered";
    }
    if (s.resumed) {
      os << " resumed@" << s.resume_point_ns << "ns";
    }
    if (!s.reason.empty()) {
      os << " [" << (s.outcome == Outcome::kClean ? "last failure: " : "") << s.reason
         << "]";
    }
    os << "\n";
  }
  os << "sweep: shards=" << shards.size() << " clean=" << clean
     << " recovered=" << recovered << " unresolved=" << unresolved
     << " retries=" << retries << " timeouts=" << timeouts
     << " check_failures=" << check_failures << " crashes=" << crashes;
  if (resumed > 0) {
    // Only with checkpointing enabled, so default-path reports keep their
    // exact historical bytes.
    os << " resumed=" << resumed;
  }
  os << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// ShardSupervisor

ShardSupervisor::ShardSupervisor(const SweepConfig& config, int num_shards)
    : config_(config), shards_(static_cast<size_t>(num_shards < 0 ? 0 : num_shards)) {
  if (config_.max_attempts < 1) {
    config_.max_attempts = 1;
  }
  if (config_.backoff_initial_ms < 0) {
    config_.backoff_initial_ms = 0;
  }
  if (config_.backoff_factor < 1.0) {
    config_.backoff_factor = 1.0;
  }
  if (config_.backoff_cap_ms < config_.backoff_initial_ms) {
    config_.backoff_cap_ms = config_.backoff_initial_ms;
  }
}

int ShardSupervisor::NextRunnable(int64_t now_ms) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = shards_[i];
    if (s.state == State::kPending ||
        (s.state == State::kWaiting && s.not_before_ms <= now_ms)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int64_t ShardSupervisor::NextWakeMs() const {
  int64_t wake = kNoWake;
  for (const Shard& s : shards_) {
    if (s.state == State::kPending) {
      return 0;
    }
    if (s.state == State::kWaiting && s.not_before_ms < wake) {
      wake = s.not_before_ms;
    }
  }
  return wake;
}

bool ShardSupervisor::AllDone() const {
  return terminal_ == static_cast<int>(shards_.size());
}

ShardSupervisor::AttemptTicket ShardSupervisor::BeginAttempt(int shard, int64_t now_ms) {
  Shard& s = shards_[static_cast<size_t>(shard)];
  if (s.attempts > 0) {
    ++retries_;
  }
  ++s.attempts;
  s.state = State::kRunning;
  s.deadline_ms =
      config_.shard_deadline_ms > 0 ? now_ms + config_.shard_deadline_ms : kNoWake;
  return AttemptTicket{shard, s.attempts, s.deadline_ms};
}

int64_t ShardSupervisor::BackoffDelayMs(int failures) const {
  double delay = static_cast<double>(config_.backoff_initial_ms);
  for (int i = 1; i < failures; ++i) {
    delay *= config_.backoff_factor;
    if (delay >= static_cast<double>(config_.backoff_cap_ms)) {
      return config_.backoff_cap_ms;
    }
  }
  int64_t ms = static_cast<int64_t>(delay);
  return ms > config_.backoff_cap_ms ? config_.backoff_cap_ms : ms;
}

void ShardSupervisor::Terminalize(Shard& s, Outcome outcome) {
  s.state = State::kTerminal;
  s.out.outcome = outcome;
  s.out.attempts = s.attempts;
  ++terminal_;
}

void ShardSupervisor::FailOrRetry(Shard& s, AttemptKind kind, const std::string& reason,
                                  int64_t now_ms) {
  s.out.last_failure = kind;
  s.out.reason = FirstLine(reason);
  switch (kind) {
    case AttemptKind::kTimeout:
      ++timeouts_;
      break;
    case AttemptKind::kCheckFailure:
      ++check_failures_;
      break;
    case AttemptKind::kCrash:
      ++crashes_;
      break;
    default:
      break;
  }
  if (s.attempts >= config_.max_attempts) {
    // Budget exhausted: the shard is quarantined — never re-dispatched — and
    // reported as a counted unresolved outcome. With a single-attempt budget
    // the outcome keeps the failure's own name (failed/timeout); with
    // retries it is kExhausted, the last failure preserved in reason.
    Outcome terminal = Outcome::kExhausted;
    if (config_.max_attempts == 1) {
      terminal = kind == AttemptKind::kTimeout ? Outcome::kTimeout : Outcome::kFailed;
    }
    Terminalize(s, terminal);
    return;
  }
  s.state = State::kWaiting;
  s.not_before_ms = now_ms + BackoffDelayMs(s.attempts);
}

bool ShardSupervisor::RecordResult(int shard, int attempt, const ShardResult& result,
                                   int64_t now_ms) {
  Shard& s = shards_[static_cast<size_t>(shard)];
  if (s.state != State::kRunning || s.attempts != attempt) {
    return false;  // Stale: a watchdog timeout already superseded this attempt.
  }
  if (!result.ok) {
    FailOrRetry(s, AttemptKind::kFailed, result.reason, now_ms);
    return true;
  }
  s.out.recovered = s.attempts > 1;
  s.out.report = result.report;
  s.out.resumed = result.resumed;
  s.out.resume_point_ns = result.resume_point_ns;
  Terminalize(s, Outcome::kClean);
  return true;
}

bool ShardSupervisor::RecordFailure(int shard, int attempt, AttemptKind kind,
                                    const std::string& reason, int64_t now_ms) {
  Shard& s = shards_[static_cast<size_t>(shard)];
  if (s.state != State::kRunning || s.attempts != attempt) {
    return false;
  }
  FailOrRetry(s, kind, reason, now_ms);
  return true;
}

std::vector<ShardSupervisor::AttemptTicket> ShardSupervisor::ExpiredAttempts(
    int64_t now_ms) const {
  std::vector<AttemptTicket> expired;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = shards_[i];
    if (s.state == State::kRunning && s.deadline_ms != kNoWake &&
        s.deadline_ms <= now_ms) {
      expired.push_back(AttemptTicket{static_cast<int>(i), s.attempts, s.deadline_ms});
    }
  }
  return expired;
}

SweepReport ShardSupervisor::BuildReport() const {
  SweepReport r;
  r.shards.reserve(shards_.size());
  for (const Shard& s : shards_) {
    r.shards.push_back(s.out);
    if (s.out.outcome == Outcome::kClean) {
      ++r.clean;
      if (s.out.recovered) {
        ++r.recovered;
      }
      if (s.out.resumed) {
        ++r.resumed;
      }
    } else {
      ++r.unresolved;
    }
  }
  r.retries = retries_;
  r.timeouts = timeouts_;
  r.check_failures = check_failures_;
  r.crashes = crashes_;
  return r;
}

// ---------------------------------------------------------------------------
// Attempt execution (shared by the serial path and the pool workers)

namespace {

struct AttemptOutcome {
  AttemptKind kind = AttemptKind::kFailed;
  ShardResult result;
  std::string reason;
};

ShardContext MakeContext(const SweepConfig& config, int shard, int attempt,
                         const std::atomic<bool>* cancel) {
  ShardContext ctx;
  ctx.shard = shard;
  ctx.attempt = attempt;
  ctx.seed = DeriveSeed(config.base_seed, static_cast<uint64_t>(shard));
  ctx.cancel = cancel;
  if (!config.checkpoint_dir.empty() && config.checkpoint_every_ms > 0) {
    ctx.checkpoint_path =
        config.checkpoint_dir + "/shard." + std::to_string(shard) + ".ckpt";
    ctx.checkpoint_every_ms = config.checkpoint_every_ms;
  }
  return ctx;
}

AttemptOutcome RunAttempt(const SweepConfig& config, const ShardFn& fn,
                          const ShardContext& ctx) {
  AttemptOutcome out;
  if (config.isolation == Isolation::kProcess && ProcessIsolationSupported()) {
    ProcAttemptOutcome p = RunShardAttemptInProcess(
        fn, ctx, config.shard_deadline_ms > 0 ? config.shard_deadline_ms : 0);
    out.kind = p.kind;
    out.result = std::move(p.result);
    out.reason = std::move(p.reason);
    return out;
  }
  // kThread (or fork-less platform): run in place with RTVIRT_CHECK failures
  // captured and rethrown as CheckFailure so one shard's invariant violation
  // does not take the harness down.
  try {
    ScopedCheckCapture capture;
    out.result = fn(ctx);
    out.kind = out.result.ok ? AttemptKind::kClean : AttemptKind::kFailed;
    out.reason = out.result.reason;
  } catch (const CheckFailure& f) {
    out.kind = AttemptKind::kCheckFailure;
    // The diagnostic is two lines (location+expr, then the formatted
    // message); flatten so the whole thing survives FirstLine in the report.
    out.reason = f.message;
    while (!out.reason.empty() && out.reason.back() == '\n') {
      out.reason.pop_back();
    }
    for (char& c : out.reason) {
      if (c == '\n') {
        c = ' ';
      }
    }
    out.result.ok = false;
  } catch (const std::exception& e) {
    out.kind = AttemptKind::kFailed;
    out.reason = std::string("exception: ") + e.what();
    out.result.ok = false;
    out.result.reason = out.reason;
  }
  return out;
}

// Feed a finished attempt into the supervisor (caller holds the pool lock,
// or is the single serial thread).
void RecordOutcome(ShardSupervisor& sup, int shard, int attempt, AttemptOutcome out,
                   int64_t now_ms) {
  if (out.kind == AttemptKind::kClean || out.kind == AttemptKind::kFailed) {
    sup.RecordResult(shard, attempt, out.result, now_ms);
  } else {
    sup.RecordFailure(shard, attempt, out.kind, out.reason, now_ms);
  }
}

// ---------------------------------------------------------------------------
// Serial execution: jobs<=1, or the degradation path when no worker thread
// could be spawned. The watchdog can still fire in kProcess isolation (the
// child is killed from the parent's wait loop); in kThread isolation a
// serial shard cannot be preempted, so deadlines are inert there.

SweepReport RunSerial(const SweepConfig& config, int num_shards, const ShardFn& fn,
                      Clock* clock) {
  ShardSupervisor sup(config, num_shards);
  std::atomic<bool> cancel{false};
  while (!sup.AllDone()) {
    int64_t now = clock->NowMs();
    int shard = sup.NextRunnable(now);
    if (shard < 0) {
      int64_t wake = sup.NextWakeMs();
      clock->SleepMs(wake == kNoWake ? 1 : wake - now);
      continue;
    }
    ShardSupervisor::AttemptTicket t = sup.BeginAttempt(shard, now);
    cancel.store(false, std::memory_order_relaxed);
    AttemptOutcome out =
        RunAttempt(config, fn, MakeContext(config, shard, t.attempt, &cancel));
    RecordOutcome(sup, shard, t.attempt, std::move(out), clock->NowMs());
  }
  SweepReport r = sup.BuildReport();
  r.serial_fallback = true;
  return r;
}

// ---------------------------------------------------------------------------
// Threaded execution

struct Pool {
  Pool(const SweepConfig& cfg, int num_shards, const ShardFn& shard_fn)
      : config(cfg), sup(cfg, num_shards), fn(shard_fn) {}

  const SweepConfig config;
  std::mutex mu;
  std::condition_variable work_cv;  // Workers + watchdog wait here.
  std::condition_variable done_cv;  // RunSweep waits here.
  ShardSupervisor sup;
  const ShardFn& fn;
  bool shutdown = false;
  int live_workers = 0;    // Worker threads that have not exited yet.
  int abandoned_live = 0;  // Subset: abandoned (timed-out) and still running.

  struct WorkerSlot {
    int shard = -1;  // Shard of the in-flight attempt, -1 when idle.
    int attempt = 0;
    std::shared_ptr<std::atomic<bool>> cancel;
    bool abandoned = false;
    std::thread thread;
  };
  // Append-only so abandoned workers can still reach their slot safely.
  std::vector<std::unique_ptr<WorkerSlot>> slots;

  void NotifyAllLocked() {
    work_cv.notify_all();
    done_cv.notify_all();
  }
};

void WorkerLoop(const std::shared_ptr<Pool>& pool, Pool::WorkerSlot* slot) {
  std::unique_lock<std::mutex> lock(pool->mu);
  while (!pool->shutdown && !slot->abandoned) {
    int64_t now = pool->config.clock->NowMs();
    int shard = pool->sup.NextRunnable(now);
    if (shard < 0) {
      if (pool->sup.AllDone()) {
        pool->shutdown = true;
        pool->NotifyAllLocked();
        break;
      }
      // Sleep until the earliest backoff expiry — capped, so clock drift or
      // a missed notify cannot strand the pool — or until work is posted.
      int64_t wake = pool->sup.NextWakeMs();
      int64_t wait_ms = wake == kNoWake ? 100 : wake - now;
      if (wait_ms < 1) {
        wait_ms = 1;
      } else if (wait_ms > 100) {
        wait_ms = 100;
      }
      pool->work_cv.wait_for(lock, std::chrono::milliseconds(wait_ms));
      continue;
    }
    ShardSupervisor::AttemptTicket t = pool->sup.BeginAttempt(shard, now);
    slot->shard = shard;
    slot->attempt = t.attempt;
    slot->cancel = std::make_shared<std::atomic<bool>>(false);
    std::shared_ptr<std::atomic<bool>> cancel = slot->cancel;
    lock.unlock();
    AttemptOutcome out = RunAttempt(
        pool->config, pool->fn, MakeContext(pool->config, shard, t.attempt, cancel.get()));
    lock.lock();
    if (slot->abandoned) {
      // The watchdog recorded a timeout for this attempt and replaced this
      // worker; the late result is stale (RecordResult would reject it too).
      break;
    }
    slot->shard = -1;
    RecordOutcome(pool->sup, shard, t.attempt, std::move(out),
                  pool->config.clock->NowMs());
    if (pool->sup.AllDone()) {
      pool->shutdown = true;
    }
    pool->NotifyAllLocked();
  }
  --pool->live_workers;
  if (slot->abandoned) {
    --pool->abandoned_live;
  }
  pool->done_cv.notify_all();
}

// Caller holds pool->mu.
bool SpawnWorkerLocked(const std::shared_ptr<Pool>& pool) {
  auto slot = std::make_unique<Pool::WorkerSlot>();
  Pool::WorkerSlot* raw = slot.get();
  pool->slots.push_back(std::move(slot));
  try {
    raw->thread = std::thread(WorkerLoop, pool, raw);
  } catch (const std::system_error&) {
    pool->slots.pop_back();
    return false;
  }
  ++pool->live_workers;
  return true;
}

// Wall-clock watchdog (kThread isolation only; kProcess deadlines are
// enforced by the forking parent). Marks expired attempts timed out, tells
// the body to cancel, abandons the stuck worker and spawns a replacement.
void WatchdogLoop(const std::shared_ptr<Pool>& pool) {
  std::unique_lock<std::mutex> lock(pool->mu);
  int64_t poll_ms = pool->config.shard_deadline_ms / 4;
  if (poll_ms < 5) {
    poll_ms = 5;
  } else if (poll_ms > 250) {
    poll_ms = 250;
  }
  while (!pool->shutdown) {
    pool->work_cv.wait_for(lock, std::chrono::milliseconds(poll_ms));
    if (pool->shutdown) {
      break;
    }
    int64_t now = pool->config.clock->NowMs();
    for (const ShardSupervisor::AttemptTicket& t : pool->sup.ExpiredAttempts(now)) {
      char reason[96];
      std::snprintf(reason, sizeof(reason), "watchdog: exceeded %lld ms shard deadline",
                    static_cast<long long>(pool->config.shard_deadline_ms));
      if (!pool->sup.RecordFailure(t.shard, t.attempt, AttemptKind::kTimeout, reason,
                                   now)) {
        continue;
      }
      for (auto& s : pool->slots) {
        if (!s->abandoned && s->shard == t.shard && s->attempt == t.attempt) {
          s->cancel->store(true, std::memory_order_relaxed);
          s->abandoned = true;
          ++pool->abandoned_live;
          s->thread.detach();
          if (!pool->shutdown && !pool->sup.AllDone()) {
            SpawnWorkerLocked(pool);
          }
          break;
        }
      }
      if (pool->sup.AllDone()) {
        pool->shutdown = true;
      }
      pool->NotifyAllLocked();
    }
  }
}

}  // namespace

SweepReport RunSweep(const SweepConfig& user_config, int num_shards, const ShardFn& fn) {
  SweepConfig config = user_config;
  if (config.clock == nullptr) {
    config.clock = RealClock();
  }
  if (num_shards <= 0) {
    return ShardSupervisor(config, 0).BuildReport();
  }
  if (config.isolation == Isolation::kProcess && !ProcessIsolationSupported()) {
    config.isolation = Isolation::kThread;
  }
  int jobs = config.jobs;
  if (jobs > num_shards) {
    jobs = num_shards;
  }
  if (jobs <= 1) {
    return RunSerial(config, num_shards, fn, config.clock);
  }

  auto pool = std::make_shared<Pool>(config, num_shards, fn);
  {
    std::lock_guard<std::mutex> lock(pool->mu);
    int spawned = 0;
    for (int i = 0; i < jobs; ++i) {
      if (SpawnWorkerLocked(pool)) {
        ++spawned;
      }
    }
    if (spawned == 0) {
      // Thread creation failed outright: degrade to serial in the caller.
      return RunSerial(config, num_shards, fn, config.clock);
    }
  }
  std::thread watchdog;
  bool have_watchdog =
      config.shard_deadline_ms > 0 && config.isolation == Isolation::kThread;
  if (have_watchdog) {
    try {
      watchdog = std::thread(WatchdogLoop, pool);
    } catch (const std::system_error&) {
      have_watchdog = false;
    }
  }

  SweepReport report;
  {
    std::unique_lock<std::mutex> lock(pool->mu);
    while (!pool->shutdown) {
      pool->done_cv.wait_for(lock, std::chrono::milliseconds(50));
      if (!pool->shutdown && pool->live_workers - pool->abandoned_live == 0) {
        // Every worker died or was abandoned and no replacement could be
        // spawned: drain the remaining shards serially instead of hanging.
        while (!pool->sup.AllDone()) {
          int64_t now = pool->config.clock->NowMs();
          int shard = pool->sup.NextRunnable(now);
          if (shard < 0) {
            int64_t wake = pool->sup.NextWakeMs();
            lock.unlock();
            config.clock->SleepMs(wake == kNoWake ? 1 : wake - now);
            lock.lock();
            continue;
          }
          ShardSupervisor::AttemptTicket t = pool->sup.BeginAttempt(shard, now);
          std::atomic<bool> cancel{false};
          lock.unlock();
          AttemptOutcome out =
              RunAttempt(config, fn, MakeContext(config, shard, t.attempt, &cancel));
          lock.lock();
          RecordOutcome(pool->sup, shard, t.attempt, std::move(out),
                        pool->config.clock->NowMs());
        }
        pool->shutdown = true;
        pool->NotifyAllLocked();
      }
    }
    // Give abandoned-but-cooperative bodies a moment to observe their cancel
    // flag and exit; anything still running past the grace period is leaked
    // (and reported) — hard hangs belong under kProcess isolation.
    auto grace_end = std::chrono::steady_clock::now() + std::chrono::milliseconds(1000);
    while (pool->abandoned_live > 0 && std::chrono::steady_clock::now() < grace_end) {
      pool->done_cv.wait_until(lock, grace_end);
    }
    report = pool->sup.BuildReport();
    report.leaked_threads = pool->abandoned_live;
  }
  // Join everything that was not abandoned (abandoned threads are detached
  // and keep the pool alive through their shared_ptr).
  for (auto& slot : pool->slots) {
    if (!slot->abandoned && slot->thread.joinable()) {
      slot->thread.join();
    }
  }
  if (have_watchdog) {
    {
      std::lock_guard<std::mutex> lock(pool->mu);
      pool->NotifyAllLocked();
    }
    watchdog.join();
  }
  return report;
}

}  // namespace rtvirt::sweep

// fork()-per-shard attempt execution (POSIX) for the sweep runner.
//
// The child runs the shard body, serializes its ShardResult over a pipe and
// _exit()s; the parent polls the pipe under the attempt deadline. A child
// that aborts (hard RTVIRT_CHECK, ASan error, segfault) or is SIGKILLed by
// the deadline becomes a recorded attempt failure with the terminating
// signal — and the first line of its captured stderr, which for an
// RTVIRT_CHECK abort is the formatted diagnostic — as the reason. This is
// the isolation mode that makes even non-cooperating hangs and hard aborts
// reclaimable; kThread containment (check_capture.h) is the cheap path.

#ifndef SRC_SWEEP_PROC_ISOLATE_H_
#define SRC_SWEEP_PROC_ISOLATE_H_

#include <cstdint>
#include <string>

#include "src/sweep/sweep.h"

namespace rtvirt::sweep {

// True when fork-based isolation is compiled in (POSIX).
bool ProcessIsolationSupported();

struct ProcAttemptOutcome {
  AttemptKind kind = AttemptKind::kCrash;
  ShardResult result;  // Valid when kind is kClean or kFailed.
  std::string reason;  // Failure description for kCrash/kTimeout.
};

// Runs one shard attempt in a forked child. `deadline_ms` is a wall-clock
// budget for the attempt (0 = unlimited); on expiry the child is SIGKILLed
// and the attempt reported as kTimeout. Must not be called on unsupported
// platforms (returns a kCrash outcome there).
ProcAttemptOutcome RunShardAttemptInProcess(const ShardFn& fn, const ShardContext& ctx,
                                            int64_t deadline_ms);

}  // namespace rtvirt::sweep

#endif  // SRC_SWEEP_PROC_ISOLATE_H_

// Supervised parallel shard runner (DESIGN.md §8).
//
// Runs N independent shards — typically one seeded Experiment/Federation
// each — on a fixed pool of worker threads, under a shard supervisor that
// treats the harness itself as a fallible layer:
//
//   * crash containment — in kThread isolation an RTVIRT_CHECK failure
//     inside a shard is captured (scoped thread-local handler, see
//     check_capture.h) and recorded as a shard failure instead of killing
//     the whole sweep; kProcess isolation forks per shard so even hard
//     aborts and real hangs become a recorded outcome;
//   * watchdog — a per-shard wall-clock deadline; expired shards are marked
//     timed out, the stuck worker is reclaimed (cancel flag + replacement
//     thread in kThread mode, SIGKILL in kProcess mode) and the shard
//     re-enters the retry queue;
//   * bounded retry — exponential backoff between attempts with a per-shard
//     attempt budget; a shard that exhausts its budget is quarantined (never
//     re-dispatched) and reported as an unresolved outcome, never silently
//     dropped;
//   * graceful degradation — jobs<=1, or every thread-creation attempt
//     failing, falls back to in-caller serial execution;
//   * deterministic merge — results are keyed by shard index and the merged
//     report is assembled in shard order after the sweep completes, so it is
//     byte-identical for any jobs count and any completion order.
//
// The retry/deadline/quarantine *policy* lives in ShardSupervisor, which is
// single-threaded and clock-injected so the watchdog and backoff schedules
// are unit-testable with a fake clock; RunSweep adds the threads.

#ifndef SRC_SWEEP_SWEEP_H_
#define SRC_SWEEP_SWEEP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace rtvirt::sweep {

// Wall-clock abstraction so supervisor policy tests can drive time by hand.
// Milliseconds since an arbitrary epoch; only differences are used.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowMs() = 0;
  virtual void SleepMs(int64_t ms) = 0;
};

// The process-wide monotonic clock (CLOCK_MONOTONIC granularity).
Clock* RealClock();

enum class Isolation {
  kThread,   // Shards share the process; RTVIRT_CHECK failures are captured.
  kProcess,  // fork() per shard attempt (POSIX): hard aborts and hangs too.
};

// What a shard body hands back on a completed attempt.
struct ShardResult {
  bool ok = true;      // false = contained, retryable failure (see reason).
  std::string reason;  // Failure description when !ok.
  std::string report;  // Shard-local report text, merged in shard order.
  // Crash-resume reporting (DESIGN.md §10): bodies that continued from a
  // persisted checkpoint instead of simulating from t=0 set resumed and the
  // virtual instant the checkpoint restored to, so the merged report
  // distinguishes resumed attempts from cold restarts.
  bool resumed = false;
  int64_t resume_point_ns = -1;
};

// Handed to the shard body on each attempt.
struct ShardContext {
  int shard = 0;
  int attempt = 1;    // 1-based.
  uint64_t seed = 0;  // DeriveSeed(config.base_seed, shard).
  // Set by the watchdog when this attempt's deadline expires (kThread mode).
  // Long-running shard bodies should poll it and bail out; bodies that
  // cannot are only hard-reclaimable under kProcess isolation.
  const std::atomic<bool>* cancel = nullptr;
  // Crash-resume plumbing: empty unless SweepConfig::checkpoint_dir is set,
  // then "<dir>/shard.<idx>.ckpt" — the same path on every attempt of a
  // shard, so a retry can pick up the previous attempt's last good
  // checkpoint. The sweep only carries the path; the body owns the file
  // (persist cadence below, atomic writes via ckpt::WriteFileAtomic).
  std::string checkpoint_path;
  // Suggested persist cadence in *virtual* milliseconds, from
  // SweepConfig::checkpoint_every_ms (0 = checkpointing off).
  int64_t checkpoint_every_ms = 0;

  bool Cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
};

using ShardFn = std::function<ShardResult(const ShardContext&)>;

// How one attempt ended (supervisor input).
enum class AttemptKind {
  kClean,         // ShardResult.ok.
  kFailed,        // ShardResult.ok == false.
  kCheckFailure,  // Captured RTVIRT_CHECK violation (kThread mode).
  kCrash,         // Child died on a signal / bad exit (kProcess mode).
  kTimeout,       // Watchdog deadline expired.
};
const char* AttemptKindName(AttemptKind kind);

// Terminal per-shard outcome. kFailed/kTimeout are terminal only when the
// budget is a single attempt; with retries the terminal failure outcome is
// kExhausted (the last failure's kind/reason is preserved alongside).
enum class Outcome { kClean, kFailed, kTimeout, kExhausted };
const char* OutcomeName(Outcome outcome);

struct ShardOutcome {
  Outcome outcome = Outcome::kFailed;
  int attempts = 0;
  bool recovered = false;        // Clean after at least one failed attempt.
  AttemptKind last_failure = AttemptKind::kClean;  // kClean = never failed.
  std::string reason;            // Last failure reason ("" if never failed).
  std::string report;            // From the successful attempt ("" if none).
  // From the successful attempt's ShardResult: it continued from a persisted
  // checkpoint (vs a cold restart from t=0), and from which virtual instant.
  bool resumed = false;
  int64_t resume_point_ns = -1;
};

struct SweepReport {
  std::vector<ShardOutcome> shards;  // Indexed by shard id.
  int clean = 0;       // Terminal kClean (includes recovered).
  int recovered = 0;
  int unresolved = 0;  // Terminal kFailed/kTimeout/kExhausted.
  int retries = 0;     // Dispatches beyond each shard's first attempt.
  int resumed = 0;     // Clean shards whose winning attempt resumed from a checkpoint.
  int timeouts = 0;        // Watchdog firings (any attempt).
  int check_failures = 0;  // Captured RTVIRT_CHECK failures (any attempt).
  int crashes = 0;         // Hard child deaths (any attempt).
  bool serial_fallback = false;  // Ran serial (jobs<=1 or no thread spawned).
  // Threads abandoned to a non-cooperating hung shard body at exit (kThread
  // mode only; always 0 when hung bodies honor ShardContext::cancel).
  // Timing-dependent, deliberately excluded from Merged().
  int leaked_threads = 0;

  bool ok() const { return unresolved == 0; }
  // Deterministic merged text: per-shard outcome lines in shard index order
  // followed by aggregate counters. Byte-identical across jobs counts and
  // completion orders for a deterministic shard function.
  std::string Merged() const;
};

struct SweepConfig {
  int jobs = 1;  // Worker threads; <=1 runs serial in the caller.
  Isolation isolation = Isolation::kThread;
  int max_attempts = 3;           // Per-shard attempt budget (>=1).
  int64_t shard_deadline_ms = 0;  // Watchdog deadline per attempt; 0 = off.
  int64_t backoff_initial_ms = 10;  // Delay after the first failure...
  double backoff_factor = 2.0;      // ...growing by this factor per retry...
  int64_t backoff_cap_ms = 1000;    // ...saturating here.
  uint64_t base_seed = 1;  // ShardContext::seed = DeriveSeed(base_seed, shard).
  Clock* clock = nullptr;  // Null = RealClock(). Injected by policy tests.
  // Crash-resume (DESIGN.md §10). When checkpoint_dir is non-empty, every
  // attempt of shard i receives ShardContext::checkpoint_path =
  // "<dir>/shard.<i>.ckpt" (the directory must exist; the caller owns its
  // lifecycle — stale files from a previous sweep will be resumed from).
  // checkpoint_every_ms asks the shard body to persist its latest checkpoint
  // every that many virtual milliseconds; 0 disables checkpointing even with
  // a directory set.
  std::string checkpoint_dir;
  int64_t checkpoint_every_ms = 0;
};

inline constexpr int64_t kNoWake = std::numeric_limits<int64_t>::max();

// Retry/watchdog/quarantine policy state machine. Not thread-safe: RunSweep
// guards it with the pool mutex; tests drive it directly with a fake clock.
class ShardSupervisor {
 public:
  ShardSupervisor(const SweepConfig& config, int num_shards);

  // Pops the lowest-indexed shard that is ready to run at `now_ms` (pending,
  // or waiting with an expired backoff). Returns -1 if none.
  int NextRunnable(int64_t now_ms);
  // Earliest backoff expiry among waiting shards, or kNoWake.
  int64_t NextWakeMs() const;
  bool AllDone() const;

  struct AttemptTicket {
    int shard = -1;
    int attempt = 0;        // 1-based.
    int64_t deadline_ms = kNoWake;  // Watchdog deadline for this attempt.
  };
  // Marks `shard` (previously returned by NextRunnable) running.
  AttemptTicket BeginAttempt(int shard, int64_t now_ms);

  // Records a finished attempt. Returns false (and changes nothing) if the
  // attempt is stale — superseded by a watchdog timeout for that shard.
  bool RecordResult(int shard, int attempt, const ShardResult& result, int64_t now_ms);
  bool RecordFailure(int shard, int attempt, AttemptKind kind, const std::string& reason,
                     int64_t now_ms);

  // Running attempts whose deadline has passed at `now_ms`.
  std::vector<AttemptTicket> ExpiredAttempts(int64_t now_ms) const;

  // Backoff delay scheduled after failure number `failures` (1-based).
  int64_t BackoffDelayMs(int failures) const;

  // Valid once AllDone(); shard outcomes are final from then on.
  SweepReport BuildReport() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  enum class State { kPending, kWaiting, kRunning, kTerminal };
  struct Shard {
    State state = State::kPending;
    int attempts = 0;            // Attempts started.
    int64_t not_before_ms = 0;   // kWaiting: backoff expiry.
    int64_t deadline_ms = kNoWake;  // kRunning: watchdog deadline.
    ShardOutcome out;
  };

  void Terminalize(Shard& s, Outcome outcome);
  void FailOrRetry(Shard& s, AttemptKind kind, const std::string& reason,
                   int64_t now_ms);

  SweepConfig config_;
  std::vector<Shard> shards_;
  int terminal_ = 0;
  int retries_ = 0;
  int timeouts_ = 0;
  int check_failures_ = 0;
  int crashes_ = 0;
};

// Runs `fn` over shards [0, num_shards) under supervision. Blocks until all
// shards are terminal (clean, or failed with their budget exhausted).
SweepReport RunSweep(const SweepConfig& config, int num_shards, const ShardFn& fn);

}  // namespace rtvirt::sweep

#endif  // SRC_SWEEP_SWEEP_H_

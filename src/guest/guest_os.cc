#include "src/guest/guest_os.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

namespace rtvirt {

GuestOs::GuestOs(Vm* vm, GuestConfig config)
    : vm_(vm), config_(config), cross_layer_(std::make_unique<CrossLayerPolicy>()),
      ckpt_section_("guest." + std::to_string(vm->id())),
      ckpt_owner_(ckpt::Fnv1a64(ckpt_section_)) {
  for (int i = 0; i < vm_->num_vcpus(); ++i) {
    Vcpu* v = vm_->vcpu(i);
    v->set_client(this);
    VcpuRun vr;
    vr.vcpu = v;
    vcpus_.push_back(std::move(vr));
  }
  if (config_.overload.enabled) {
    sim()->After(config_.overload.pressure_poll, PressureTag(), [this] { PressureTick(); });
  }
}

GuestOs::~GuestOs() = default;

Vcpu* GuestOs::AddVcpu() {
  Vcpu* v = vm_->AddVcpu();
  v->set_client(this);
  VcpuRun vr;
  vr.vcpu = v;
  vcpus_.push_back(std::move(vr));
  return v;
}

void GuestOs::SetCrossLayer(std::unique_ptr<CrossLayerPolicy> policy) {
  assert(policy != nullptr);
  cross_layer_ = std::move(policy);
}

void GuestOs::SetVcpuCapacity(int vcpu_index, Bandwidth capacity) {
  vcpus_[vcpu_index].capacity = capacity;
}

Task* GuestOs::CreateTask(std::string name) {
  tasks_.push_back(std::make_unique<Task>(std::move(name), Task::Kind::kRta));
  return tasks_.back().get();
}

Task* GuestOs::CreateBackgroundTask(std::string name) {
  tasks_.push_back(std::make_unique<Task>(std::move(name), Task::Kind::kBackground));
  Task* t = tasks_.back().get();
  background_.push_back(t);
  // Background work exists immediately: wake any idle VCPU to pick it up.
  for (auto& vr : vcpus_) {
    if (vr.vcpu->blocked()) {
      vr.vcpu->Wake();
    }
  }
  return t;
}

Bandwidth GuestOs::TotalReservedBw() const {
  Bandwidth total;
  for (const auto& vr : vcpus_) {
    total += vr.reserved;
  }
  return total;
}

TimeNs GuestOs::NextEarliestDeadline(int vcpu_index) const {
  if (global_edf()) {
    return GlobalEarliestDeadline();
  }
  const VcpuRun& vr = vcpus_[vcpu_index];
  TimeNs now = vm_->machine()->sim()->Now();
  TimeNs d = kTimeNever;
  for (const Task* t : vr.rtas) {
    TimeNs cand = kTimeNever;
    if (t->HasPendingJob()) {
      cand = t->FrontJob().deadline;
    } else if (t->params().sporadic) {
      // Worst case (paper section 3.3): a sporadic RTA with minimum period p
      // may be activated immediately and re-activated every p.
      cand = now + t->params().period;
    } else if (t->next_release() < kTimeNever) {
      // Idle periodic RTA: its next release is the next point at which host
      // allocation starts to matter.
      cand = t->next_release();
    }
    d = std::min(d, cand);
  }
  return d;
}

// ---- Dispatch ----

void GuestOs::OnVcpuGranted(Vcpu* vcpu) {
  VcpuRun& vr = RunOf(vcpu);
  vr.on_cpu = true;
  Redispatch(vr);
}

void GuestOs::OnVcpuRevoked(Vcpu* vcpu) {
  VcpuRun& vr = RunOf(vcpu);
  SuspendRunning(vr);
  vr.on_cpu = false;
  // If the revocation coincided with the last job's completion, the VCPU has
  // nothing left to run: block it so the host doesn't re-dispatch it idle.
  if (vcpu->runnable() && PickTask(vr) == nullptr) {
    vcpu->Block();
  }
}

bool GuestOs::BackgroundRunningElsewhere(const Task* task, const VcpuRun& except) const {
  for (const auto& vr : vcpus_) {
    if (&vr != &except && vr.running == task) {
      return true;
    }
  }
  return false;
}

Task* GuestOs::PickTaskGlobal(VcpuRun& vr) {
  Task* best = nullptr;
  for (Task* t : global_rtas_) {
    if (!t->HasPendingJob()) {
      continue;
    }
    bool running_elsewhere = false;
    for (const auto& other : vcpus_) {
      if (&other != &vr && other.running == t) {
        running_elsewhere = true;
        break;
      }
    }
    if (running_elsewhere) {
      continue;
    }
    if (best == nullptr || t->FrontJob().deadline < best->FrontJob().deadline) {
      best = t;
    }
  }
  return best;
}

Task* GuestOs::PickTask(VcpuRun& vr) {
  Task* best = nullptr;
  if (global_edf()) {
    best = PickTaskGlobal(vr);
  } else {
    for (Task* t : vr.rtas) {
      if (t->HasPendingJob() &&
          (best == nullptr || t->FrontJob().deadline < best->FrontJob().deadline)) {
        best = t;
      }
    }
  }
  if (best != nullptr) {
    return best;
  }
  // No time-sensitive work: round-robin over background tasks not already
  // running on a sibling VCPU.
  for (size_t i = 0; i < background_.size(); ++i) {
    Task* bg = background_[(bg_cursor_ + i) % background_.size()];
    if (!BackgroundRunningElsewhere(bg, vr)) {
      bg_cursor_ = (bg_cursor_ + i + 1) % background_.size();
      return bg;
    }
  }
  return nullptr;
}

void GuestOs::Redispatch(VcpuRun& vr) {
  if (!vr.on_cpu) {
    return;
  }
  Task* next = PickTask(vr);
  if (next == nullptr) {
    SuspendRunning(vr);
    vr.vcpu->Block();
    return;
  }
  if (next == vr.running) {
    return;
  }
  SuspendRunning(vr);
  StartRunning(vr, next);
}

void GuestOs::StartRunning(VcpuRun& vr, Task* task) {
  assert(vr.on_cpu && vr.running == nullptr);
  vr.running = task;
  vr.run_start = sim()->Now();
  Pcpu* p = vr.vcpu->pcpu();
  vr.run_speed_ppb = p != nullptr ? p->speed_ppb() : Bandwidth::kUnit;
  if (task->is_rta()) {
    Vcpu* v = vr.vcpu;
    vr.completion_event =
        sim()->After(SpeedWorkToWall(task->FrontJob().remaining, vr.run_speed_ppb),
                     CompletionTag(v->index()), [this, v] { OnJobCompletion(RunOf(v)); });
  }
  // Background tasks have unbounded work: no completion event.
}

void GuestOs::SuspendRunning(VcpuRun& vr) {
  if (vr.running == nullptr) {
    return;
  }
  sim()->Cancel(vr.completion_event);
  Task* t = vr.running;
  vr.running = nullptr;
  if (!t->is_rta()) {
    return;
  }
  TimeNs ran = sim()->Now() - vr.run_start;
  Job& job = t->MutableFrontJob();
  job.remaining -= SpeedWallToWork(ran, vr.run_speed_ppb);
  assert(job.remaining >= 0);
  if (job.remaining == 0) {
    // The revocation landed exactly at job completion (e.g., the host slice
    // ends with the job): finalize now rather than on the next dispatch.
    FinishFrontJob(vr, t);
  }
}

void GuestOs::FinishFrontJob(VcpuRun& vr, Task* t) {
  TimeNs now = sim()->Now();
  Job job = t->FrontJob();
  t->jobs_.pop_front();
  ++t->jobs_completed_;
  if (t->observer() != nullptr) {
    t->observer()->OnJobCompleted(*t, job, now);
  }
  PublishDeadline(vr);
}

void GuestOs::OnJobCompletion(VcpuRun& vr) {
  Task* t = vr.running;
  assert(t != nullptr && t->is_rta());
  Job& job = t->MutableFrontJob();
  job.remaining -= SpeedWallToWork(sim()->Now() - vr.run_start, vr.run_speed_ppb);
  assert(job.remaining == 0);
  vr.running = nullptr;
  vr.completion_event = Simulator::EventId();
  FinishFrontJob(vr, t);
  Redispatch(vr);
}

TimeNs GuestOs::GlobalEarliestDeadline() const {
  TimeNs now = vm_->machine()->sim()->Now();
  TimeNs d = kTimeNever;
  for (const Task* t : global_rtas_) {
    TimeNs cand = kTimeNever;
    if (t->HasPendingJob()) {
      cand = t->FrontJob().deadline;
    } else if (t->params().sporadic) {
      cand = now + t->params().period;
    } else if (t->next_release() < kTimeNever) {
      cand = t->next_release();
    }
    d = std::min(d, cand);
  }
  return d;
}

void GuestOs::PublishGlobalDeadline() {
  // gEDF cannot attribute deadlines to VCPUs (any VCPU may run any task), so
  // every VCPU publishes the global earliest — one of the sources of
  // cross-layer complexity the paper cites for preferring pEDF.
  TimeNs d = GlobalEarliestDeadline();
  for (auto& vr : vcpus_) {
    cross_layer_->PublishNextDeadline(vr.vcpu, d);
  }
}

void GuestOs::PublishDeadline(VcpuRun& vr) {
  if (global_edf()) {
    PublishGlobalDeadline();
    return;
  }
  cross_layer_->PublishNextDeadline(vr.vcpu, NextEarliestDeadline(vr.vcpu->index()));
}

void GuestOs::ReleaseJob(Task* task, TimeNs work, TimeNs deadline) {
  assert(task->is_rta());
  if (vm_->crashed() || !task->registered()) {
    // Crashed VM, or a task dropped by ResetAfterCrash whose release chain
    // is still ticking: the release is lost with the VM.
    return;
  }
  if (task->shed()) {
    // Suspended by overload control: the task holds no reservation, so its
    // releases are dropped (counted, not silently) until it is resumed.
    ++overload_stats_.shed_job_drops;
    return;
  }
  assert(work > 0);
  if (task->compressed() && work > task->EffectiveSlice()) {
    // Elastic-task model: a compressed RTA adapts its per-period work to the
    // budget it actually holds (e.g., a video decoder dropping quality).
    work = task->EffectiveSlice();
  }
  TimeNs now = sim()->Now();
  task->jobs_.push_back(Job{now, deadline, work, work});

  if (global_edf()) {
    PublishGlobalDeadline();
    // Wake an idle VCPU if there is one...
    for (auto& vr : vcpus_) {
      if (vr.running == task) {
        return;  // Already being served; the new job queues behind.
      }
    }
    for (auto& vr : vcpus_) {
      if (vr.vcpu->blocked()) {
        vr.vcpu->Wake();
        return;
      }
    }
    // ...else preempt the VCPU running background work or the latest
    // deadline (gEDF).
    VcpuRun* victim = nullptr;
    for (auto& vr : vcpus_) {
      if (!vr.on_cpu || vr.running == nullptr) {
        continue;
      }
      if (!vr.running->is_rta()) {
        victim = &vr;  // Background work always loses.
        break;
      }
      if (vr.running->FrontJob().deadline > deadline &&
          (victim == nullptr ||
           vr.running->FrontJob().deadline > victim->running->FrontJob().deadline)) {
        victim = &vr;
      }
    }
    if (victim != nullptr) {
      Redispatch(*victim);
    }
    return;
  }

  VcpuRun& vr = vcpus_[task->vcpu_index()];
  PublishDeadline(vr);
  if (vr.vcpu->blocked()) {
    vr.vcpu->Wake();
    return;
  }
  if (vr.on_cpu &&
      (vr.running == nullptr || !vr.running->is_rta() ||
       vr.running->FrontJob().deadline > deadline)) {
    Redispatch(vr);
  }
}

// ---- Registration / admission ----

void GuestOs::RecomputeVcpu(VcpuRun& vr) {
  vr.reserved = Bandwidth::Zero();
  vr.min_period = kTimeNever;
  for (const Task* t : vr.rtas) {
    // Effective = compressed bandwidth when overload control squeezed the
    // task; identical to params().bandwidth() otherwise.
    vr.reserved += t->EffectiveBandwidth();
    vr.min_period = std::min(vr.min_period, t->params().period);
  }
}

TimeNs GuestOs::MinPeriodWith(const VcpuRun& vr, TimeNs extra_period) const {
  TimeNs p = extra_period;
  for (const Task* t : vr.rtas) {
    p = std::min(p, t->params().period);
  }
  return p;
}

int GuestOs::FindFirstFit(Bandwidth bw, int exclude_index) const {
  for (size_t i = 0; i < vcpus_.size(); ++i) {
    if (static_cast<int>(i) == exclude_index) {
      continue;
    }
    if (vcpus_[i].reserved + bw <= vcpus_[i].capacity) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void GuestOs::PinTask(Task* task, int vcpu_index, const RtaParams& params) {
  task->params_ = params;
  task->registered_ = true;
  task->vcpu_index_ = vcpu_index;
  VcpuRun& vr = vcpus_[vcpu_index];
  vr.rtas.push_back(task);
  RecomputeVcpu(vr);
  PublishDeadline(vr);
}

void GuestOs::UnpinTask(Task* task) {
  VcpuRun& vr = vcpus_[task->vcpu_index()];
  if (vr.running == task) {
    SuspendRunning(vr);
  }
  vr.rtas.erase(std::remove(vr.rtas.begin(), vr.rtas.end(), task), vr.rtas.end());
  RecomputeVcpu(vr);
  task->vcpu_index_ = -1;
}

int64_t GuestOs::RequestGlobalShares(Bandwidth total, TimeNs min_period) {
  // Every VCPU carries an equal share (rounded up) of the total bandwidth.
  int n = static_cast<int>(vcpus_.size());
  Bandwidth share = Bandwidth::FromPpb((total.ppb() + n - 1) / n);
  Bandwidth old_share = Bandwidth::FromPpb((global_total_.ppb() + n - 1) / n);
  for (int i = 0; i < n; ++i) {
    int64_t rc = cross_layer_->RequestBandwidth(vcpus_[i].vcpu, share, min_period);
    if (rc != kHypercallOk) {
      for (int j = 0; j < i; ++j) {  // Roll back to the previous shares.
        cross_layer_->RequestBandwidth(vcpus_[j].vcpu, old_share, global_min_period_);
      }
      return rc;
    }
  }
  return kHypercallOk;
}

int GuestOs::SchedSetAttrGlobal(Task* task, const RtaParams& params) {
  Bandwidth nbw = params.bandwidth();
  Bandwidth old = task->registered() ? task->params().bandwidth() : Bandwidth::Zero();
  Bandwidth new_total = global_total_ - old + nbw;
  Bandwidth capacity;
  for (const auto& vr : vcpus_) {
    capacity += vr.capacity;
  }
  if (new_total > capacity) {
    return kGuestErrBusy;
  }
  TimeNs new_min_period = params.period;
  for (const Task* t : global_rtas_) {
    if (t != task) {
      new_min_period = std::min(new_min_period, t->params().period);
    }
  }
  if (RequestGlobalShares(new_total, new_min_period) != kHypercallOk) {
    return kGuestErrBusy;
  }
  if (!task->registered()) {
    global_rtas_.push_back(task);
  }
  task->params_ = params;
  task->registered_ = true;
  task->vcpu_index_ = -1;  // Unpinned: any VCPU may run it.
  global_total_ = new_total;
  global_min_period_ = new_min_period;
  PublishGlobalDeadline();
  return kGuestOk;
}

int GuestOs::SchedUnregisterGlobal(Task* task) {
  global_rtas_.erase(std::remove(global_rtas_.begin(), global_rtas_.end(), task),
                     global_rtas_.end());
  for (auto& vr : vcpus_) {
    if (vr.running == task) {
      SuspendRunning(vr);
      task->jobs_.clear();
      Redispatch(vr);
      break;
    }
  }
  task->jobs_.clear();
  task->registered_ = false;
  global_total_ -= task->params().bandwidth();
  global_min_period_ = kTimeNever;
  for (const Task* t : global_rtas_) {
    global_min_period_ = std::min(global_min_period_, t->params().period);
  }
  RequestGlobalShares(global_total_, global_min_period_);
  PublishGlobalDeadline();
  return kGuestOk;
}

int GuestOs::SchedSetAttr(Task* task, const RtaParams& params, int64_t bw_reason) {
  if (!task->is_rta() || params.period <= 0 || params.slice <= 0 ||
      params.slice > params.period) {
    return kGuestErrInvalid;
  }
  if (vm_->crashed()) {
    return kGuestErrBusy;  // No guest kernel to run the syscall.
  }
  if (global_edf()) {
    return SchedSetAttrGlobal(task, params);
  }
  Bandwidth nbw = params.bandwidth();

  if (task->registered() && task->shed()) {
    // Changing the parameters of a shed task re-admits it from scratch: it
    // holds no pin or reservation, so forget it and fall into registration.
    shed_.erase(std::remove(shed_.begin(), shed_.end(), task), shed_.end());
    task->shed_ = false;
    task->compressed_slice_ = 0;
    task->registered_ = false;
    task->jobs_.clear();
  }

  if (!task->registered()) {
    bool via_overload = false;
    while (true) {
      int idx = FindFirstFit(nbw, /*exclude_index=*/-1);
      if (idx < 0) {
        idx = ReshuffleFor(nbw);
      }
      if (idx < 0 && config_.allow_hotplug &&
          static_cast<int>(vcpus_.size()) < config_.max_vcpus) {
        AddVcpu();
        idx = static_cast<int>(vcpus_.size()) - 1;
      }
      if (idx < 0 && config_.overload.enabled) {
        // Mixed-criticality admission: degrade strictly-lower-criticality
        // reservations until the newcomer fits, instead of rejecting it.
        idx = AdmitViaOverload(params);
        via_overload = idx >= 0;
      }
      if (idx < 0) {
        return kGuestErrBusy;
      }
      VcpuRun& vr = vcpus_[idx];
      // Hypercall before assigning the RTA to the candidate VCPU (section 3.2).
      int64_t rc = cross_layer_->RequestBandwidth(vr.vcpu, vr.reserved + nbw,
                                                  MinPeriodWith(vr, params.period),
                                                  kBwReasonAdmission);
      if (rc == kHypercallOk) {
        if (via_overload) {
          ++overload_stats_.overload_admissions;
        }
        PinTask(task, idx, params);
        Redispatch(vr);
        return kGuestOk;
      }
      // Host-level rejection. Under overload control a degradation step
      // releases host bandwidth (DEC_BW), so retry after one; each step
      // compresses or sheds something, so the loop terminates.
      if (rc != kHypercallNoBandwidth || !config_.overload.enabled ||
          !DegradeStepFor(params.criticality)) {
        return kGuestErrBusy;
      }
      via_overload = true;
    }
  }

  // Parameter change for an already-registered RTA. The new parameters are a
  // new contract: any overload compression of the old ones is forgotten.
  VcpuRun& cur = vcpus_[task->vcpu_index()];
  Bandwidth obw = task->EffectiveBandwidth();
  Bandwidth in_place = cur.reserved - obw + nbw;
  if (in_place <= cur.capacity) {
    // Recompute the period as if the task already had the new parameters.
    TimeNs new_period = params.period;
    for (const Task* t : cur.rtas) {
      if (t != task) {
        new_period = std::min(new_period, t->params().period);
      }
    }
    if (nbw > obw) {
      int64_t rc = cross_layer_->RequestBandwidth(cur.vcpu, in_place, new_period, bw_reason);
      if (rc != kHypercallOk) {
        return kGuestErrBusy;
      }
      task->params_ = params;
      task->compressed_slice_ = 0;
      RecomputeVcpu(cur);
    } else {
      task->params_ = params;
      task->compressed_slice_ = 0;
      RecomputeVcpu(cur);
      cross_layer_->ReleaseBandwidth(cur.vcpu, cur.reserved, cur.min_period, bw_reason);
    }
    PublishDeadline(cur);
    Redispatch(cur);
    return kGuestOk;
  }

  // Must move to a different VCPU: INC_DEC_BW (section 3.2, case 2).
  int idx = FindFirstFit(nbw, task->vcpu_index());
  if (idx < 0) {
    return kGuestErrBusy;
  }
  VcpuRun& to = vcpus_[idx];
  Bandwidth from_bw = cur.reserved - obw;
  TimeNs from_period = kTimeNever;
  for (const Task* t : cur.rtas) {
    if (t != task) {
      from_period = std::min(from_period, t->params().period);
    }
  }
  int64_t rc =
      cross_layer_->MoveBandwidth(to.vcpu, to.reserved + nbw, MinPeriodWith(to, params.period),
                                  cur.vcpu, from_bw, from_period);
  if (rc != kHypercallOk) {
    return kGuestErrBusy;
  }
  UnpinTask(task);
  PublishDeadline(cur);
  Redispatch(cur);
  task->compressed_slice_ = 0;
  PinTask(task, idx, params);
  Redispatch(to);
  return kGuestOk;
}

int GuestOs::SchedUnregister(Task* task) {
  if (!task->registered()) {
    return kGuestErrInvalid;
  }
  if (vm_->crashed()) {
    return kGuestErrBusy;
  }
  if (global_edf()) {
    return SchedUnregisterGlobal(task);
  }
  if (task->shed()) {
    // A shed task holds no pin or host reservation: forgetting it is a
    // purely local operation.
    shed_.erase(std::remove(shed_.begin(), shed_.end(), task), shed_.end());
    task->shed_ = false;
    task->compressed_slice_ = 0;
    task->registered_ = false;
    task->jobs_.clear();
    return kGuestOk;
  }
  VcpuRun& vr = vcpus_[task->vcpu_index()];
  UnpinTask(task);
  task->registered_ = false;
  task->jobs_.clear();
  cross_layer_->ReleaseBandwidth(vr.vcpu, vr.reserved, vr.min_period);
  PublishDeadline(vr);
  Redispatch(vr);
  return kGuestOk;
}

void GuestOs::ResetAfterCrash() {
  for (auto& vr : vcpus_) {
    sim()->Cancel(vr.completion_event);
    vr.completion_event = Simulator::EventId();
    vr.running = nullptr;
    vr.on_cpu = false;
    vr.rtas.clear();
    vr.reserved = Bandwidth::Zero();
    vr.min_period = kTimeNever;
  }
  for (auto& t : tasks_) {
    t->jobs_.clear();
    t->registered_ = false;
    t->vcpu_index_ = -1;
    t->shed_ = false;
    t->compressed_slice_ = 0;
  }
  shed_.clear();
  pressure_ticks_under_ = 0;
  pressure_clear_ticks_ = 0;
  global_rtas_.clear();
  global_total_ = Bandwidth::Zero();
  global_min_period_ = kTimeNever;
  // The host-side reservations this guest held are orphaned, not released:
  // a crashed kernel issues no DEC_BW. The host watchdog reclaims them.
  cross_layer_->Reset();
}

void GuestOs::OnVmRestart() {
  for (auto& vr : vcpus_) {
    if (vr.vcpu->blocked() && PickTask(vr) != nullptr) {
      vr.vcpu->Wake();
    }
  }
}

int GuestOs::ReshuffleFor(Bandwidth bw) {
  // First-fit-decreasing over all registered RTAs plus a virtual item of
  // bandwidth `bw` representing the incoming RTA.
  struct Item {
    Task* task;  // nullptr: the virtual item.
    Bandwidth bw;
  };
  std::vector<Item> items;
  items.push_back(Item{nullptr, bw});
  for (const auto& vr : vcpus_) {
    for (Task* t : vr.rtas) {
      items.push_back(Item{t, t->EffectiveBandwidth()});
    }
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.bw > b.bw; });

  std::vector<Bandwidth> load(vcpus_.size());
  std::vector<int> bin(items.size(), -1);
  for (size_t k = 0; k < items.size(); ++k) {
    for (size_t i = 0; i < vcpus_.size(); ++i) {
      if (load[i] + items[k].bw <= vcpus_[i].capacity) {
        load[i] += items[k].bw;
        bin[k] = static_cast<int>(i);
        break;
      }
    }
    if (bin[k] < 0) {
      return -1;  // No packing: fall back to hotplug or rejection.
    }
  }

  // Desired post-reshuffle per-VCPU reservations, *excluding* the virtual
  // item (the caller issues the INC_BW for the new RTA itself).
  int target = -1;
  std::vector<std::vector<Task*>> assign(vcpus_.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (items[k].task == nullptr) {
      target = bin[k];
    } else {
      assign[bin[k]].push_back(items[k].task);
    }
  }

  std::vector<Bandwidth> new_bw(vcpus_.size());
  std::vector<TimeNs> new_period(vcpus_.size(), kTimeNever);
  for (size_t i = 0; i < vcpus_.size(); ++i) {
    for (const Task* t : assign[i]) {
      new_bw[i] += t->EffectiveBandwidth();
      new_period[i] = std::min(new_period[i], t->params().period);
    }
  }

  // Hypercall order: decreases first, then increases, so the host's total
  // never transiently exceeds what it already admitted.
  for (size_t i = 0; i < vcpus_.size(); ++i) {
    if (new_bw[i] < vcpus_[i].reserved) {
      cross_layer_->ReleaseBandwidth(vcpus_[i].vcpu, new_bw[i], new_period[i]);
    }
  }
  for (size_t i = 0; i < vcpus_.size(); ++i) {
    if (new_bw[i] > vcpus_[i].reserved) {
      int64_t rc = cross_layer_->RequestBandwidth(vcpus_[i].vcpu, new_bw[i], new_period[i]);
      // The total reservation did not grow, so the host must accept.
      assert(rc == kHypercallOk);
      (void)rc;
    }
  }

  // Apply the task moves.
  for (size_t i = 0; i < vcpus_.size(); ++i) {
    VcpuRun& vr = vcpus_[i];
    for (Task* t : std::vector<Task*>(vr.rtas)) {
      // Keep tasks already in the right bin.
      bool stays = std::find(assign[i].begin(), assign[i].end(), t) != assign[i].end();
      if (!stays && vr.running == t) {
        SuspendRunning(vr);
      }
    }
  }
  for (size_t i = 0; i < vcpus_.size(); ++i) {
    vcpus_[i].rtas = assign[i];
    for (Task* t : assign[i]) {
      t->vcpu_index_ = static_cast<int>(i);
    }
    RecomputeVcpu(vcpus_[i]);
    PublishDeadline(vcpus_[i]);
    Redispatch(vcpus_[i]);
  }
  return target;
}

// ---- Overload control (mixed-criticality elastic degradation) ----

bool GuestOs::CompressUpTo(int max_level) {
  bool any = false;
  for (auto& vr : vcpus_) {
    bool changed = false;
    for (Task* t : vr.rtas) {
      if (CritLevel(t) <= max_level && t->params().elastic() && !t->compressed()) {
        t->compressed_slice_ = t->params().min_slice;
        ++overload_stats_.compressions;
        // The elastic task adapts immediately: queued jobs (including the
        // running one) truncate their remaining work to the compressed
        // budget. Without this the pre-compression backlog can never drain
        // — supply now equals per-period demand — and every later job
        // inherits the tardiness.
        if (vr.running == t) {
          SuspendRunning(vr);  // Banks progress; may finish an exact job.
        }
        for (Job& j : t->jobs_) {
          TimeNs done = j.work - j.remaining;
          TimeNs target = std::max(done, t->EffectiveSlice());
          if (j.work > target) {
            j.work = target;
            j.remaining = target - done;
          }
        }
        changed = true;
      }
    }
    if (changed) {
      RecomputeVcpu(vr);
      cross_layer_->ReleaseBandwidth(vr.vcpu, vr.reserved, vr.min_period,
                                     kBwReasonOverloadShed);
      PublishDeadline(vr);
      Redispatch(vr);
      any = true;
    }
  }
  return any;
}

bool GuestOs::ShedOneUpTo(int max_level) {
  Task* victim = nullptr;
  for (auto& vr : vcpus_) {
    for (Task* t : vr.rtas) {
      if (CritLevel(t) > max_level) {
        continue;
      }
      if (victim == nullptr || CritLevel(t) < CritLevel(victim) ||
          (CritLevel(t) == CritLevel(victim) &&
           t->EffectiveBandwidth() > victim->EffectiveBandwidth())) {
        victim = t;
      }
    }
  }
  if (victim == nullptr) {
    return false;
  }
  VcpuRun& vr = vcpus_[victim->vcpu_index()];
  UnpinTask(victim);  // Suspends it if running; drops it from the pin set.
  victim->shed_ = true;
  victim->jobs_.clear();
  shed_.push_back(victim);
  ++overload_stats_.sheds;
  cross_layer_->ReleaseBandwidth(vr.vcpu, vr.reserved, vr.min_period,
                                 kBwReasonOverloadShed);
  PublishDeadline(vr);
  Redispatch(vr);
  return true;
}

bool GuestOs::DegradeStepFor(Criticality crit) {
  // Admission-time degradation only sacrifices strictly lower criticality:
  // a LOW newcomer can displace nothing, HIGH can displace LOW and MED.
  int below = static_cast<int>(crit) - 1;
  if (CompressUpTo(below)) {
    return true;
  }
  return ShedOneUpTo(below);
}

int GuestOs::AdmitViaOverload(const RtaParams& params) {
  Bandwidth nbw = params.bandwidth();
  while (DegradeStepFor(params.criticality)) {
    int idx = FindFirstFit(nbw, /*exclude_index=*/-1);
    if (idx < 0) {
      idx = ReshuffleFor(nbw);
    }
    if (idx >= 0) {
      return idx;
    }
  }
  return -1;
}

void GuestOs::PressureTick() {
  // Fixed cadence regardless of what this tick does.
  sim()->After(config_.overload.pressure_poll, PressureTag(), [this] { PressureTick(); });
  if (vm_->crashed() || global_edf()) {
    return;
  }
  if (vm_->shared_page().pressure_level() > 0) {
    pressure_clear_ticks_ = 0;
    if (CompressUpTo(static_cast<int>(config_.overload.compress_ceiling))) {
      // Compression just released bandwidth; give the host a tick to react
      // before escalating to shedding.
      pressure_ticks_under_ = 0;
      return;
    }
    if (pressure_ticks_under_ < config_.overload.shed_after_ticks) {
      ++pressure_ticks_under_;
    }
    if (pressure_ticks_under_ >= config_.overload.shed_after_ticks) {
      ShedOneUpTo(static_cast<int>(config_.overload.shed_ceiling));
    }
    return;
  }
  pressure_ticks_under_ = 0;
  if (pressure_clear_ticks_ < config_.overload.reinflate_hold_ticks) {
    ++pressure_clear_ticks_;
    return;
  }
  // Pressure has been clear long enough (hysteresis): undo one degradation
  // step per tick — resume a shed task first, else re-inflate one compressed
  // reservation. Gradual re-inflation avoids compress/expand oscillation.
  if (!TryResumeShed()) {
    TryExpandOne();
  }
}

bool GuestOs::HostHeadroomCovers(Bandwidth delta) const {
  const SharedSchedPage& page = vm_->shared_page();
  if (page.pressure_published_at() < 0) {
    // No host pressure publisher (host-side overload scan off): fall back to
    // probing by hypercall; the host still enforces admission.
    return true;
  }
  // The channel pads requests with slack, so leave the slack's worth of
  // margin by requiring strictly-covering headroom.
  return delta.ppb() <= page.pressure_headroom_ppb();
}

bool GuestOs::TryResumeShed() {
  Task* best = nullptr;
  for (Task* t : shed_) {
    if (best == nullptr || CritLevel(t) > CritLevel(best)) {
      best = t;
    }
  }
  if (best == nullptr) {
    return false;
  }
  // A task shed while compressed resumes compressed; TryExpandOne restores
  // its full budget later if room appears.
  Bandwidth bw = best->EffectiveBandwidth();
  if (!HostHeadroomCovers(bw)) {
    return false;  // Host advertises no room; wait, don't probe.
  }
  int idx = FindFirstFit(bw, /*exclude_index=*/-1);
  if (idx < 0) {
    return false;  // No local room yet; retry next tick.
  }
  VcpuRun& vr = vcpus_[idx];
  int64_t rc = cross_layer_->RequestBandwidth(vr.vcpu, vr.reserved + bw,
                                              MinPeriodWith(vr, best->params().period),
                                              kBwReasonReinflate);
  if (rc != kHypercallOk) {
    // Lost a race for the advertised headroom (another guest took it).
    // Restart the hysteresis window rather than re-probing every tick.
    pressure_clear_ticks_ = 0;
    return false;
  }
  shed_.erase(std::remove(shed_.begin(), shed_.end(), best), shed_.end());
  best->shed_ = false;
  ++overload_stats_.resumes;
  PinTask(best, idx, best->params_);
  Redispatch(vr);
  return true;
}

bool GuestOs::TryExpandOne() {
  Task* best = nullptr;
  for (auto& vr : vcpus_) {
    for (Task* t : vr.rtas) {
      if (t->compressed() && (best == nullptr || CritLevel(t) > CritLevel(best))) {
        best = t;
      }
    }
  }
  if (best == nullptr) {
    return false;
  }
  VcpuRun& vr = vcpus_[best->vcpu_index()];
  Bandwidth expanded = vr.reserved - best->EffectiveBandwidth() + best->params().bandwidth();
  if (expanded > vr.capacity) {
    return false;  // In-place only; a later tick may free local room.
  }
  if (!HostHeadroomCovers(expanded - vr.reserved)) {
    return false;  // Host advertises no room; wait, don't probe.
  }
  int64_t rc =
      cross_layer_->RequestBandwidth(vr.vcpu, expanded, vr.min_period, kBwReasonReinflate);
  if (rc != kHypercallOk) {
    pressure_clear_ticks_ = 0;  // Lost the headroom race; back off one hold.
    return false;
  }
  best->compressed_slice_ = 0;
  RecomputeVcpu(vr);
  ++overload_stats_.expansions;
  PublishDeadline(vr);
  return true;
}

void GuestOs::SaveState(ckpt::Writer& w) const {
  w.I64(global_total_.ppb());
  w.I64(global_min_period_);
  w.U64(bg_cursor_);
  w.U32(static_cast<uint32_t>(pressure_ticks_under_));
  w.U32(static_cast<uint32_t>(pressure_clear_ticks_));
  w.U64(overload_stats_.compressions);
  w.U64(overload_stats_.expansions);
  w.U64(overload_stats_.sheds);
  w.U64(overload_stats_.resumes);
  w.U64(overload_stats_.shed_job_drops);
  w.U64(overload_stats_.overload_admissions);

  // Tasks are created by the experiment builder in a fixed order; the restore
  // target has the same tasks_ vector, so indices are stable identifiers.
  auto index_of = [this](const Task* t) -> uint32_t {
    for (size_t i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i].get() == t) {
        return static_cast<uint32_t>(i);
      }
    }
    return static_cast<uint32_t>(-1);
  };
  w.U32(static_cast<uint32_t>(tasks_.size()));
  for (const auto& t : tasks_) {
    w.Str(t->name_);
    w.U8(static_cast<uint8_t>(t->kind_));
    w.I64(t->params_.slice);
    w.I64(t->params_.period);
    w.Bool(t->params_.sporadic);
    w.U8(static_cast<uint8_t>(t->params_.criticality));
    w.I64(t->params_.min_slice);
    w.Bool(t->registered_);
    w.U32(static_cast<uint32_t>(t->vcpu_index_));
    w.Bool(t->shed_);
    w.I64(t->compressed_slice_);
    w.I64(t->next_release_);
    w.U64(t->jobs_completed_);
    w.U32(static_cast<uint32_t>(t->jobs_.size()));
    for (const Job& j : t->jobs_) {
      w.I64(j.release);
      w.I64(j.deadline);
      w.I64(j.work);
      w.I64(j.remaining);
    }
  }

  w.U32(static_cast<uint32_t>(vcpus_.size()));
  for (const auto& vr : vcpus_) {
    w.U32(static_cast<uint32_t>(vr.rtas.size()));
    for (const Task* t : vr.rtas) {
      w.U32(index_of(t));
    }
    w.I64(vr.reserved.ppb());
    w.I64(vr.capacity.ppb());
    w.I64(vr.min_period);
    w.Bool(vr.on_cpu);
    w.U32(vr.running != nullptr ? index_of(vr.running) : static_cast<uint32_t>(-1));
    w.I64(vr.run_start);
    w.I64(vr.run_speed_ppb);
  }

  w.U32(static_cast<uint32_t>(global_rtas_.size()));
  for (const Task* t : global_rtas_) {
    w.U32(index_of(t));
  }
  w.U32(static_cast<uint32_t>(shed_.size()));
  for (const Task* t : shed_) {
    w.U32(index_of(t));
  }
}

std::string GuestOs::RestoreState(ckpt::Reader& r) {
  global_total_ = Bandwidth::FromPpb(r.I64());
  global_min_period_ = r.I64();
  bg_cursor_ = r.U64();
  pressure_ticks_under_ = static_cast<int>(r.U32());
  pressure_clear_ticks_ = static_cast<int>(r.U32());
  overload_stats_.compressions = r.U64();
  overload_stats_.expansions = r.U64();
  overload_stats_.sheds = r.U64();
  overload_stats_.resumes = r.U64();
  overload_stats_.shed_job_drops = r.U64();
  overload_stats_.overload_admissions = r.U64();

  uint32_t n_tasks = r.U32();
  if (!r.ok() || n_tasks != tasks_.size()) {
    return ckpt_section_ + ": task count mismatch (checkpoint has " +
           std::to_string(n_tasks) + ", this guest has " +
           std::to_string(tasks_.size()) + ")";
  }
  for (size_t i = 0; i < tasks_.size(); ++i) {
    Task* t = tasks_[i].get();
    std::string name = r.Str();
    if (name != t->name_) {
      return ckpt_section_ + ": task[" + std::to_string(i) + "] name mismatch (got '" +
             name + "', this guest has '" + t->name_ + "')";
    }
    uint8_t kind = r.U8();
    if (kind != static_cast<uint8_t>(t->kind_)) {
      return ckpt_section_ + ": task '" + t->name_ + "' kind mismatch";
    }
    t->params_.slice = r.I64();
    t->params_.period = r.I64();
    t->params_.sporadic = r.Bool();
    t->params_.criticality = static_cast<Criticality>(r.U8());
    t->params_.min_slice = r.I64();
    t->registered_ = r.Bool();
    t->vcpu_index_ = static_cast<int>(r.U32());
    t->shed_ = r.Bool();
    t->compressed_slice_ = r.I64();
    t->next_release_ = r.I64();
    t->jobs_completed_ = r.U64();
    t->jobs_.clear();
    uint32_t n_jobs = r.U32();
    for (uint32_t k = 0; k < n_jobs && r.ok(); ++k) {
      Job j;
      j.release = r.I64();
      j.deadline = r.I64();
      j.work = r.I64();
      j.remaining = r.I64();
      t->jobs_.push_back(j);
    }
  }

  auto task_at = [this](uint32_t idx) -> Task* {
    return idx < tasks_.size() ? tasks_[idx].get() : nullptr;
  };
  uint32_t n_vcpus = r.U32();
  if (!r.ok() || n_vcpus != vcpus_.size()) {
    // A count mismatch here (after the machine section already validated the
    // global VCPU census) means runtime hotplug grew the guest mid-run;
    // such a guest cannot be restored onto a fresh build.
    return ckpt_section_ + ": VCPU count mismatch (checkpoint has " +
           std::to_string(n_vcpus) + ", this guest has " +
           std::to_string(vcpus_.size()) + ")";
  }
  for (size_t i = 0; i < vcpus_.size(); ++i) {
    VcpuRun& vr = vcpus_[i];
    vr.rtas.clear();
    uint32_t n_rtas = r.U32();
    for (uint32_t k = 0; k < n_rtas && r.ok(); ++k) {
      Task* t = task_at(r.U32());
      if (t == nullptr) {
        return ckpt_section_ + ": vcpu " + std::to_string(i) +
               " pin set references unknown task";
      }
      vr.rtas.push_back(t);
    }
    vr.reserved = Bandwidth::FromPpb(r.I64());
    vr.capacity = Bandwidth::FromPpb(r.I64());
    vr.min_period = r.I64();
    vr.on_cpu = r.Bool();
    uint32_t running = r.U32();
    vr.running = running == static_cast<uint32_t>(-1) ? nullptr : task_at(running);
    if (running != static_cast<uint32_t>(-1) && vr.running == nullptr) {
      return ckpt_section_ + ": vcpu " + std::to_string(i) +
             " running references unknown task";
    }
    vr.run_start = r.I64();
    vr.run_speed_ppb = r.I64();
  }

  global_rtas_.clear();
  uint32_t n_global = r.U32();
  for (uint32_t k = 0; k < n_global && r.ok(); ++k) {
    Task* t = task_at(r.U32());
    if (t == nullptr) {
      return ckpt_section_ + ": gEDF list references unknown task";
    }
    global_rtas_.push_back(t);
  }
  shed_.clear();
  uint32_t n_shed = r.U32();
  for (uint32_t k = 0; k < n_shed && r.ok(); ++k) {
    Task* t = task_at(r.U32());
    if (t == nullptr) {
      return ckpt_section_ + ": shed list references unknown task";
    }
    shed_.push_back(t);
  }
  return r.ok() ? "" : ckpt_section_ + ": truncated section";
}

std::string GuestOs::RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) {
  switch (kind) {
    case kEvPressure:
      sim()->At(when, PressureTag(), [this] { PressureTick(); });
      return "";
    case kEvCompletion: {
      if (payload >= vcpus_.size()) {
        return ckpt_section_ + ": completion event references invalid vcpu " +
               std::to_string(payload);
      }
      VcpuRun& vr = vcpus_[payload];
      Vcpu* v = vr.vcpu;
      vr.completion_event = sim()->At(when, CompletionTag(v->index()),
                                      [this, v] { OnJobCompletion(RunOf(v)); });
      return "";
    }
  }
  return ckpt_section_ + ": unknown event kind " + std::to_string(kind);
}

std::vector<std::string> GuestOs::AuditInvariants() const {
  std::vector<std::string> violations;
  char buf[256];
  if (global_edf()) {
    Bandwidth total;
    for (const Task* t : global_rtas_) {
      total += t->params().bandwidth();
    }
    if (total != global_total_) {
      std::snprintf(buf, sizeof(buf),
                    "gEDF total %lld ppb != sum of registered RTA bandwidths %lld ppb",
                    static_cast<long long>(global_total_.ppb()),
                    static_cast<long long>(total.ppb()));
      violations.emplace_back(buf);
    }
    return violations;
  }
  for (size_t i = 0; i < vcpus_.size(); ++i) {
    const VcpuRun& vr = vcpus_[i];
    Bandwidth sum;
    for (const Task* t : vr.rtas) {
      sum += t->EffectiveBandwidth();
      if (t->vcpu_index() != static_cast<int>(i)) {
        std::snprintf(buf, sizeof(buf), "task %s pinned to vcpu %zu but vcpu_index=%d",
                      t->name().c_str(), i, t->vcpu_index());
        violations.emplace_back(buf);
      }
      if (!t->registered() || t->shed()) {
        std::snprintf(buf, sizeof(buf), "task %s in vcpu %zu pin set but %s",
                      t->name().c_str(), i,
                      t->shed() ? "marked shed" : "not registered");
        violations.emplace_back(buf);
      }
    }
    if (sum != vr.reserved) {
      std::snprintf(buf, sizeof(buf),
                    "vcpu %zu reserved %lld ppb != sum of pinned effective bandwidths %lld ppb",
                    i, static_cast<long long>(vr.reserved.ppb()),
                    static_cast<long long>(sum.ppb()));
      violations.emplace_back(buf);
    }
    if (vr.reserved > vr.capacity) {
      std::snprintf(buf, sizeof(buf), "vcpu %zu reserved %lld ppb exceeds capacity %lld ppb",
                    i, static_cast<long long>(vr.reserved.ppb()),
                    static_cast<long long>(vr.capacity.ppb()));
      violations.emplace_back(buf);
    }
  }
  for (const Task* t : shed_) {
    if (!t->shed() || !t->registered() || t->vcpu_index() != -1 || t->HasPendingJob()) {
      std::snprintf(buf, sizeof(buf),
                    "shed task %s inconsistent (shed=%d registered=%d vcpu=%d jobs=%zu)",
                    t->name().c_str(), t->shed() ? 1 : 0, t->registered() ? 1 : 0,
                    t->vcpu_index(), t->QueuedJobs());
      violations.emplace_back(buf);
    }
  }
  return violations;
}

}  // namespace rtvirt

// Guest operating system model: pEDF process scheduling with cross-layer
// cooperation (paper section 3.2).
//
// The guest schedules RTAs with partitioned EDF: each registered RTA is
// pinned to one VCPU and every VCPU runs the earliest-deadline pending job
// among its pinned RTAs. Registration performs guest-level admission control
// (first-fit, with reshuffling when bandwidth is fragmented and CPU hotplug
// when the VM has too few VCPUs) and drives the installed CrossLayerPolicy,
// which under RTVirt issues sched_rtvirt() hypercalls and publishes next
// earliest deadlines via shared memory. Background tasks run in leftover
// time at the lowest priority.

#ifndef SRC_GUEST_GUEST_OS_H_
#define SRC_GUEST_GUEST_OS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/common/bandwidth.h"
#include "src/common/time.h"
#include "src/guest/cross_layer.h"
#include "src/guest/task.h"
#include "src/hv/machine.h"
#include "src/hv/vcpu.h"
#include "src/hv/vm.h"
#include "src/sim/simulator.h"

namespace rtvirt {

// Guest syscall status codes.
constexpr int kGuestOk = 0;
constexpr int kGuestErrBusy = -16;    // -EBUSY: admission failed.
constexpr int kGuestErrInvalid = -22;  // -EINVAL.

// Guest real-time scheduling class. The paper (3.2) modifies Linux's
// SCHED_DEADLINE from gEDF to pEDF so that per-VCPU parameters can be
// derived cheaply; gEDF is kept for the design-choice ablation.
enum class GuestSchedClass {
  kPartitionedEdf,  // pEDF: RTAs pinned to VCPUs (RTVirt's choice).
  kGlobalEdf,       // gEDF: RTAs migrate freely between VCPUs.
};

struct GuestConfig {
  GuestSchedClass sched_class = GuestSchedClass::kPartitionedEdf;
  // Whether registration may add VCPUs online when the existing ones cannot
  // fit a new RTA (paper: "RTVirt uses CPU hotplug to add additional VCPUs").
  bool allow_hotplug = false;
  int max_vcpus = 64;

  // Mixed-criticality overload control (pEDF only). When enabled, admission
  // failures degrade lower-criticality reservations instead of rejecting the
  // newcomer — elastic reservations are compressed toward min_slice and, if
  // that is not enough, the lowest-criticality RTAs are shed (suspended) —
  // and a periodic poll of the host's shared-page pressure signal degrades
  // proactively under host overload and re-inflates when pressure clears.
  // When disabled (the default) no events are scheduled and behavior is
  // identical to the classic binary admission test.
  struct OverloadControl {
    bool enabled = false;
    // Cadence of the host-pressure poll (and of re-inflation steps).
    TimeNs pressure_poll = Ms(5);
    // Consecutive pressured polls with nothing left to compress before a
    // task is shed; more ticks = more tolerance for transient pressure.
    int shed_after_ticks = 2;
    // Consecutive pressure-free polls before the first re-inflation step
    // (hysteresis against compress/expand oscillation).
    int reinflate_hold_ticks = 4;
    // Only tasks at or below these levels may be shed / compressed by the
    // pressure poll. (Admission-time degradation is stricter still: it only
    // touches tasks of strictly lower criticality than the newcomer.)
    Criticality shed_ceiling = Criticality::kLow;
    Criticality compress_ceiling = Criticality::kMed;
  };
  OverloadControl overload;
};

// Counters for the overload-control machinery (reported by the benches).
struct GuestOverloadStats {
  uint64_t compressions = 0;        // Elastic reservations squeezed to min.
  uint64_t expansions = 0;          // Compressed reservations re-inflated.
  uint64_t sheds = 0;               // Tasks suspended by overload control.
  uint64_t resumes = 0;             // Shed tasks re-admitted.
  uint64_t shed_job_drops = 0;      // Job releases dropped while shed.
  uint64_t overload_admissions = 0; // Registrations admitted only via degradation.
};

class GuestOs : public VcpuClient, public ckpt::Checkpointable {
 public:
  explicit GuestOs(Vm* vm, GuestConfig config = {});
  ~GuestOs() override;
  GuestOs(const GuestOs&) = delete;
  GuestOs& operator=(const GuestOs&) = delete;

  Vm* vm() const { return vm_; }

  // Adds a VCPU to the VM and places it under this guest's control.
  Vcpu* AddVcpu();
  int num_vcpus() const { return static_cast<int>(vcpus_.size()); }

  // Installs the cross-layer policy (RTVirt guests) — defaults to the inert
  // policy (traditional, host-unaware guests).
  void SetCrossLayer(std::unique_ptr<CrossLayerPolicy> policy);
  CrossLayerPolicy* cross_layer() const { return cross_layer_.get(); }

  // Caps the RTA bandwidth admitted on a VCPU (baselines: the CARTS-derived
  // interface Θ/Π; RTVirt: the default of one full CPU).
  void SetVcpuCapacity(int vcpu_index, Bandwidth capacity);

  // ---- Task surface ----
  Task* CreateTask(std::string name);
  // Creates an always-runnable CPU-bound background task.
  Task* CreateBackgroundTask(std::string name);

  // sched_setattr(): registers `task` as an RTA or changes its parameters.
  // Returns kGuestOk or kGuestErrBusy if admission fails at either level.
  // `bw_reason` is the kBwReason* code carried by the resulting hypercall for
  // an in-place parameter change of a registered RTA (the SLO controller
  // passes kBwReasonSloControl so its raises are watermark-limited and never
  // read as fresh overload); registration always uses kBwReasonAdmission.
  int SchedSetAttr(Task* task, const RtaParams& params,
                   int64_t bw_reason = kBwReasonAdmission);
  // RTA unregisters (terminates or becomes non-time-sensitive).
  int SchedUnregister(Task* task);

  // Releases one job of `work` CPU time due at `deadline` for a registered
  // RTA (driven by the workload generators). Dropped silently while the VM
  // is crashed or the task is unregistered (fault model: the reborn guest
  // has not re-registered it yet).
  void ReleaseJob(Task* task, TimeNs work, TimeNs deadline);

  // Fault model: rebuilds the guest scheduler state after a VM crash. Every
  // task is unregistered and its queued jobs dropped (workloads re-register
  // on restart), per-VCPU run state is cleared, and the cross-layer policy
  // forgets its channel state — the host-side leftovers are the watchdog's
  // problem, not the reborn guest's.
  void ResetAfterCrash();

  // Fault model: called after the VM restarts. Wakes any VCPU that already
  // has runnable work (background tasks survive the crash as code, and
  // nothing else would wake them until the next job release).
  void OnVmRestart();

  // ---- Introspection (tests, benches) ----
  Bandwidth VcpuReservedBw(int vcpu_index) const { return vcpus_[vcpu_index].reserved; }
  TimeNs VcpuMinPeriod(int vcpu_index) const { return vcpus_[vcpu_index].min_period; }
  Bandwidth TotalReservedBw() const;
  TimeNs NextEarliestDeadline(int vcpu_index) const;
  GuestSchedClass sched_class() const { return config_.sched_class; }
  const GuestOverloadStats& overload_stats() const { return overload_stats_; }
  // Tasks currently suspended by overload control (registered, no pin).
  const std::vector<Task*>& shed_tasks() const { return shed_; }

  // Self-check of the guest scheduler's bookkeeping invariants (used by the
  // cross-layer invariant auditor). Returns human-readable violation
  // descriptions; empty when consistent.
  std::vector<std::string> AuditInvariants() const;

  // VcpuClient:
  void OnVcpuGranted(Vcpu* vcpu) override;
  void OnVcpuRevoked(Vcpu* vcpu) override;

  // ---- Checkpointing (src/checkpoint) ----
  // Section name "guest.<vmid>"; the owner id doubles as the EventTag owner
  // for the pressure-poll tick and per-VCPU job-completion events.
  const std::string& ckpt_section() const { return ckpt_section_; }
  enum CkptEventKind : uint32_t {
    kEvPressure = 1,    // Overload-control pressure poll (recurring).
    kEvCompletion = 2,  // Job completion; payload = VCPU index.
  };
  void SaveState(ckpt::Writer& w) const override;
  std::string RestoreState(ckpt::Reader& r) override;
  std::string RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) override;

 private:
  struct VcpuRun {
    Vcpu* vcpu = nullptr;
    std::vector<Task*> rtas;  // Pinned RTAs (pEDF).
    Bandwidth reserved;       // Sum of pinned RTA bandwidths.
    Bandwidth capacity = Bandwidth::One();
    TimeNs min_period = kTimeNever;
    bool on_cpu = false;  // Granted a PCPU right now.
    Task* running = nullptr;
    TimeNs run_start = 0;
    // Speed factor of the PCPU this run started on (capacity-degradation
    // model). The host revokes before any speed change, so it is constant for
    // the whole run: wall time stretches by 1/speed, progress banks at speed.
    int64_t run_speed_ppb = Bandwidth::kUnit;
    Simulator::EventId completion_event;
  };

  Simulator* sim() const { return vm_->machine()->sim(); }
  VcpuRun& RunOf(Vcpu* vcpu) { return vcpus_[vcpu->index()]; }

  // EDF pick: earliest-deadline pending RTA job, else a background task.
  Task* PickTask(VcpuRun& vr);
  void Redispatch(VcpuRun& vr);
  void StartRunning(VcpuRun& vr, Task* task);
  void SuspendRunning(VcpuRun& vr);
  void FinishFrontJob(VcpuRun& vr, Task* task);
  void OnJobCompletion(VcpuRun& vr);
  void PublishDeadline(VcpuRun& vr);
  bool BackgroundRunningElsewhere(const Task* task, const VcpuRun& except) const;

  // gEDF variants: tasks are not pinned; every VCPU carries an equal share
  // of the total bandwidth and publishes the globally earliest deadline.
  bool global_edf() const { return config_.sched_class == GuestSchedClass::kGlobalEdf; }
  Task* PickTaskGlobal(VcpuRun& vr);
  int SchedSetAttrGlobal(Task* task, const RtaParams& params);
  int SchedUnregisterGlobal(Task* task);
  // Re-requests every VCPU's equal share after a change of `total`; returns
  // kHypercallOk if all requests were granted (rolls back on failure).
  int64_t RequestGlobalShares(Bandwidth total, TimeNs min_period);
  void PublishGlobalDeadline();
  TimeNs GlobalEarliestDeadline() const;

  // Admission helpers.
  int FindFirstFit(Bandwidth bw, int exclude_index) const;
  void PinTask(Task* task, int vcpu_index, const RtaParams& params);
  void UnpinTask(Task* task);
  void RecomputeVcpu(VcpuRun& vr);
  TimeNs MinPeriodWith(const VcpuRun& vr, TimeNs extra_period) const;
  // Attempts to re-partition all RTAs (plus a new one of bandwidth `bw`)
  // first-fit-decreasing; applies the moves and returns the target VCPU for
  // the new RTA, or -1 if no packing exists.
  int ReshuffleFor(Bandwidth bw);

  // ---- Overload control (mixed-criticality elastic degradation) ----
  static int CritLevel(const Task* t) {
    return static_cast<int>(t->params().criticality);
  }
  // Periodic poll of the host's shared-page pressure signal.
  void PressureTick();
  // Compresses every elastic pinned task at or below `max_level` to its
  // min_slice; returns whether anything changed.
  bool CompressUpTo(int max_level);
  // Sheds the worst victim at or below `max_level` (lowest criticality
  // first, largest effective bandwidth within a level); false if none.
  bool ShedOneUpTo(int max_level);
  // One admission-time degradation step touching only tasks of strictly
  // lower criticality than `crit`; false when nothing is left to degrade.
  bool DegradeStepFor(Criticality crit);
  // Degrades until a VCPU can fit `params`; returns the target index or -1.
  int AdmitViaOverload(const RtaParams& params);
  bool TryResumeShed();   // Re-admit the highest-criticality shed task.
  bool TryExpandOne();    // Re-inflate one compressed reservation in place.
  // Whether the host's published headroom covers adding `delta` bandwidth
  // (true when the host never published — fall back to probing).
  bool HostHeadroomCovers(Bandwidth delta) const;

  EventTag PressureTag() const { return EventTag{ckpt_owner_, kEvPressure, 0}; }
  EventTag CompletionTag(int vcpu_index) const {
    return EventTag{ckpt_owner_, kEvCompletion, static_cast<uint64_t>(vcpu_index)};
  }

  Vm* vm_;
  GuestConfig config_;
  std::string ckpt_section_;
  uint64_t ckpt_owner_ = 0;
  std::unique_ptr<CrossLayerPolicy> cross_layer_;
  std::vector<VcpuRun> vcpus_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Task*> background_;
  std::vector<Task*> global_rtas_;  // gEDF: the unpinned registered RTAs.
  Bandwidth global_total_;          // gEDF: sum of registered bandwidths.
  TimeNs global_min_period_ = kTimeNever;
  size_t bg_cursor_ = 0;
  std::vector<Task*> shed_;  // Suspended by overload control.
  GuestOverloadStats overload_stats_;
  int pressure_ticks_under_ = 0;   // Consecutive pressured polls (clamped).
  int pressure_clear_ticks_ = 0;   // Consecutive pressure-free polls (clamped).
};

}  // namespace rtvirt

#endif  // SRC_GUEST_GUEST_OS_H_

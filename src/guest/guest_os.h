// Guest operating system model: pEDF process scheduling with cross-layer
// cooperation (paper section 3.2).
//
// The guest schedules RTAs with partitioned EDF: each registered RTA is
// pinned to one VCPU and every VCPU runs the earliest-deadline pending job
// among its pinned RTAs. Registration performs guest-level admission control
// (first-fit, with reshuffling when bandwidth is fragmented and CPU hotplug
// when the VM has too few VCPUs) and drives the installed CrossLayerPolicy,
// which under RTVirt issues sched_rtvirt() hypercalls and publishes next
// earliest deadlines via shared memory. Background tasks run in leftover
// time at the lowest priority.

#ifndef SRC_GUEST_GUEST_OS_H_
#define SRC_GUEST_GUEST_OS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/bandwidth.h"
#include "src/common/time.h"
#include "src/guest/cross_layer.h"
#include "src/guest/task.h"
#include "src/hv/machine.h"
#include "src/hv/vcpu.h"
#include "src/hv/vm.h"
#include "src/sim/simulator.h"

namespace rtvirt {

// Guest syscall status codes.
constexpr int kGuestOk = 0;
constexpr int kGuestErrBusy = -16;    // -EBUSY: admission failed.
constexpr int kGuestErrInvalid = -22;  // -EINVAL.

// Guest real-time scheduling class. The paper (3.2) modifies Linux's
// SCHED_DEADLINE from gEDF to pEDF so that per-VCPU parameters can be
// derived cheaply; gEDF is kept for the design-choice ablation.
enum class GuestSchedClass {
  kPartitionedEdf,  // pEDF: RTAs pinned to VCPUs (RTVirt's choice).
  kGlobalEdf,       // gEDF: RTAs migrate freely between VCPUs.
};

struct GuestConfig {
  GuestSchedClass sched_class = GuestSchedClass::kPartitionedEdf;
  // Whether registration may add VCPUs online when the existing ones cannot
  // fit a new RTA (paper: "RTVirt uses CPU hotplug to add additional VCPUs").
  bool allow_hotplug = false;
  int max_vcpus = 64;
};

class GuestOs : public VcpuClient {
 public:
  explicit GuestOs(Vm* vm, GuestConfig config = {});
  ~GuestOs() override;
  GuestOs(const GuestOs&) = delete;
  GuestOs& operator=(const GuestOs&) = delete;

  Vm* vm() const { return vm_; }

  // Adds a VCPU to the VM and places it under this guest's control.
  Vcpu* AddVcpu();
  int num_vcpus() const { return static_cast<int>(vcpus_.size()); }

  // Installs the cross-layer policy (RTVirt guests) — defaults to the inert
  // policy (traditional, host-unaware guests).
  void SetCrossLayer(std::unique_ptr<CrossLayerPolicy> policy);
  CrossLayerPolicy* cross_layer() const { return cross_layer_.get(); }

  // Caps the RTA bandwidth admitted on a VCPU (baselines: the CARTS-derived
  // interface Θ/Π; RTVirt: the default of one full CPU).
  void SetVcpuCapacity(int vcpu_index, Bandwidth capacity);

  // ---- Task surface ----
  Task* CreateTask(std::string name);
  // Creates an always-runnable CPU-bound background task.
  Task* CreateBackgroundTask(std::string name);

  // sched_setattr(): registers `task` as an RTA or changes its parameters.
  // Returns kGuestOk or kGuestErrBusy if admission fails at either level.
  int SchedSetAttr(Task* task, const RtaParams& params);
  // RTA unregisters (terminates or becomes non-time-sensitive).
  int SchedUnregister(Task* task);

  // Releases one job of `work` CPU time due at `deadline` for a registered
  // RTA (driven by the workload generators). Dropped silently while the VM
  // is crashed or the task is unregistered (fault model: the reborn guest
  // has not re-registered it yet).
  void ReleaseJob(Task* task, TimeNs work, TimeNs deadline);

  // Fault model: rebuilds the guest scheduler state after a VM crash. Every
  // task is unregistered and its queued jobs dropped (workloads re-register
  // on restart), per-VCPU run state is cleared, and the cross-layer policy
  // forgets its channel state — the host-side leftovers are the watchdog's
  // problem, not the reborn guest's.
  void ResetAfterCrash();

  // Fault model: called after the VM restarts. Wakes any VCPU that already
  // has runnable work (background tasks survive the crash as code, and
  // nothing else would wake them until the next job release).
  void OnVmRestart();

  // ---- Introspection (tests, benches) ----
  Bandwidth VcpuReservedBw(int vcpu_index) const { return vcpus_[vcpu_index].reserved; }
  TimeNs VcpuMinPeriod(int vcpu_index) const { return vcpus_[vcpu_index].min_period; }
  Bandwidth TotalReservedBw() const;
  TimeNs NextEarliestDeadline(int vcpu_index) const;

  // VcpuClient:
  void OnVcpuGranted(Vcpu* vcpu) override;
  void OnVcpuRevoked(Vcpu* vcpu) override;

 private:
  struct VcpuRun {
    Vcpu* vcpu = nullptr;
    std::vector<Task*> rtas;  // Pinned RTAs (pEDF).
    Bandwidth reserved;       // Sum of pinned RTA bandwidths.
    Bandwidth capacity = Bandwidth::One();
    TimeNs min_period = kTimeNever;
    bool on_cpu = false;  // Granted a PCPU right now.
    Task* running = nullptr;
    TimeNs run_start = 0;
    Simulator::EventId completion_event;
  };

  Simulator* sim() const { return vm_->machine()->sim(); }
  VcpuRun& RunOf(Vcpu* vcpu) { return vcpus_[vcpu->index()]; }

  // EDF pick: earliest-deadline pending RTA job, else a background task.
  Task* PickTask(VcpuRun& vr);
  void Redispatch(VcpuRun& vr);
  void StartRunning(VcpuRun& vr, Task* task);
  void SuspendRunning(VcpuRun& vr);
  void FinishFrontJob(VcpuRun& vr, Task* task);
  void OnJobCompletion(VcpuRun& vr);
  void PublishDeadline(VcpuRun& vr);
  bool BackgroundRunningElsewhere(const Task* task, const VcpuRun& except) const;

  // gEDF variants: tasks are not pinned; every VCPU carries an equal share
  // of the total bandwidth and publishes the globally earliest deadline.
  bool global_edf() const { return config_.sched_class == GuestSchedClass::kGlobalEdf; }
  Task* PickTaskGlobal(VcpuRun& vr);
  int SchedSetAttrGlobal(Task* task, const RtaParams& params);
  int SchedUnregisterGlobal(Task* task);
  // Re-requests every VCPU's equal share after a change of `total`; returns
  // kHypercallOk if all requests were granted (rolls back on failure).
  int64_t RequestGlobalShares(Bandwidth total, TimeNs min_period);
  void PublishGlobalDeadline();
  TimeNs GlobalEarliestDeadline() const;

  // Admission helpers.
  int FindFirstFit(Bandwidth bw, int exclude_index) const;
  void PinTask(Task* task, int vcpu_index, const RtaParams& params);
  void UnpinTask(Task* task);
  void RecomputeVcpu(VcpuRun& vr);
  TimeNs MinPeriodWith(const VcpuRun& vr, TimeNs extra_period) const;
  // Attempts to re-partition all RTAs (plus a new one of bandwidth `bw`)
  // first-fit-decreasing; applies the moves and returns the target VCPU for
  // the new RTA, or -1 if no packing exists.
  int ReshuffleFor(Bandwidth bw);

  Vm* vm_;
  GuestConfig config_;
  std::unique_ptr<CrossLayerPolicy> cross_layer_;
  std::vector<VcpuRun> vcpus_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Task*> background_;
  std::vector<Task*> global_rtas_;  // gEDF: the unpinned registered RTAs.
  Bandwidth global_total_;          // gEDF: sum of registered bandwidths.
  TimeNs global_min_period_ = kTimeNever;
  size_t bg_cursor_ = 0;
};

}  // namespace rtvirt

#endif  // SRC_GUEST_GUEST_OS_H_

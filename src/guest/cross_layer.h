// Guest-side cross-layer policy hook (paper section 3.2).
//
// The guest OS scheduler calls these hooks when RTA registration events
// change a VCPU's aggregate bandwidth need or the next earliest deadline of
// the RTAs pinned to a VCPU. The RTVirt implementation translates them into
// sched_rtvirt() hypercalls and shared-memory publications; baseline guests
// (RT-Xen, Credit) install the default policy, which grants everything
// locally and publishes nothing — exactly the traditional architecture where
// the host is unaware of guest scheduling.

#ifndef SRC_GUEST_CROSS_LAYER_H_
#define SRC_GUEST_CROSS_LAYER_H_

#include <cstdint>

#include "src/common/bandwidth.h"
#include "src/common/time.h"
#include "src/hv/hypercall.h"

namespace rtvirt {

class Vcpu;

class CrossLayerPolicy {
 public:
  virtual ~CrossLayerPolicy() = default;

  // Request the host reserve `rta_bw` (sum of the VCPU's RTA bandwidths,
  // before any slack the policy adds) with the given period. Returns a
  // hypercall status; on failure the guest reverts the triggering change.
  // `reason` is one of the kBwReason* codes — kBwReasonAdmission marks new
  // RTA demand, kBwReasonReinflate an overload-recovery probe.
  virtual int64_t RequestBandwidth(Vcpu* vcpu, Bandwidth rta_bw, TimeNs period,
                                   int64_t reason = kBwReasonNone) {
    (void)vcpu, (void)rta_bw, (void)period, (void)reason;
    return kHypercallOk;
  }

  // Atomically grow `to` and shrink `from` (INC_DEC_BW), used when an RTA is
  // re-pinned to a different VCPU.
  virtual int64_t MoveBandwidth(Vcpu* to, Bandwidth to_bw, TimeNs to_period, Vcpu* from,
                                Bandwidth from_bw, TimeNs from_period) {
    (void)to, (void)to_bw, (void)to_period, (void)from, (void)from_bw, (void)from_period;
    return kHypercallOk;
  }

  // Shrink a VCPU's reservation (DEC_BW); cannot fail. `reason` is one of the
  // kBwReason* codes — kBwReasonOverloadShed tells the host the shrink is the
  // guest responding to overload pressure rather than a voluntary unregister.
  virtual void ReleaseBandwidth(Vcpu* vcpu, Bandwidth rta_bw, TimeNs period,
                                int64_t reason = kBwReasonNone) {
    (void)vcpu, (void)rta_bw, (void)period, (void)reason;
  }

  // Publish the next earliest deadline among the RTAs pinned to `vcpu`.
  virtual void PublishNextDeadline(Vcpu* vcpu, TimeNs deadline) { (void)vcpu, (void)deadline; }

  // Forget all per-VCPU channel state (granted reservations, degraded-mode
  // flags). Called when the guest OS rebuilds after a VM crash: whatever the
  // host still holds for this VM is orphaned and will be reclaimed by the
  // host watchdog, not released by the reborn guest.
  virtual void Reset() {}
};

}  // namespace rtvirt

#endif  // SRC_GUEST_CROSS_LAYER_H_

// Guest-level tasks and jobs.
//
// An RTA (real-time application, paper terminology) is a task with a (slice,
// period) reservation: each activation releases a job of `slice` CPU work due
// `period` after its release. Periodic RTAs are released every period;
// sporadic RTAs are released by external events at least `period` apart.
// Background tasks (BGAs) model non-time-sensitive CPU hogs.

#ifndef SRC_GUEST_TASK_H_
#define SRC_GUEST_TASK_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/common/bandwidth.h"
#include "src/common/time.h"

namespace rtvirt {

class Task;

// Mixed-criticality level of an RTA. Under overload the guest degrades
// strictly bottom-up: LOW reservations are compressed and shed before MED,
// and HIGH reservations are never sacrificed for a lower level.
enum class Criticality {
  kLow = 0,
  kMed = 1,
  kHigh = 2,
};

const char* CriticalityName(Criticality c);

struct RtaParams {
  TimeNs slice = 0;
  TimeNs period = 0;
  bool sporadic = false;
  Criticality criticality = Criticality::kMed;
  // Elastic-task model: the smallest budget per period this RTA can tolerate.
  // 0 (the default) means inelastic — the reservation is never compressed.
  // Must be <= slice when set.
  TimeNs min_slice = 0;

  Bandwidth bandwidth() const { return Bandwidth::FromSlicePeriod(slice, period); }
  bool elastic() const { return min_slice > 0 && min_slice < slice; }
  Bandwidth min_bandwidth() const {
    return Bandwidth::FromSlicePeriod(elastic() ? min_slice : slice, period);
  }
};

struct Job {
  TimeNs release = 0;
  TimeNs deadline = 0;
  TimeNs work = 0;
  TimeNs remaining = 0;
};

// Receives job completions (deadline-miss monitors, latency recorders).
class JobObserver {
 public:
  virtual ~JobObserver() = default;
  virtual void OnJobCompleted(const Task& task, const Job& job, TimeNs completion) = 0;
};

class Task {
 public:
  enum class Kind {
    kRta,
    kBackground,  // Infinite work, no deadlines, lowest priority.
  };

  Task(std::string name, Kind kind) : name_(std::move(name)), kind_(kind) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  const std::string& name() const { return name_; }
  Kind kind() const { return kind_; }
  bool is_rta() const { return kind_ == Kind::kRta; }

  const RtaParams& params() const { return params_; }
  bool registered() const { return registered_; }
  // VCPU this task is pinned to under pEDF; -1 if unassigned.
  int vcpu_index() const { return vcpu_index_; }

  // ---- Overload state (guest elastic compression / shedding) ----
  // Shed: registered but suspended by overload control — it holds no
  // reservation and its job releases are dropped until the guest resumes it.
  bool shed() const { return shed_; }
  // Compressed: the reservation was squeezed toward min_slice; the effective
  // slice is what the scheduler reserves (and what released jobs are clamped
  // to, modelling the elastic task adapting its per-period work).
  bool compressed() const { return compressed_slice_ > 0; }
  TimeNs EffectiveSlice() const {
    return compressed_slice_ > 0 ? compressed_slice_ : params_.slice;
  }
  Bandwidth EffectiveBandwidth() const {
    return Bandwidth::FromSlicePeriod(EffectiveSlice(), params_.period);
  }

  bool HasPendingJob() const { return !jobs_.empty(); }
  const Job& FrontJob() const { return jobs_.front(); }
  Job& MutableFrontJob() { return jobs_.front(); }
  size_t QueuedJobs() const { return jobs_.size(); }

  // Next known release time of a periodic RTA (kTimeNever if unknown); used
  // by the guest to publish upcoming deadlines to the host.
  TimeNs next_release() const { return next_release_; }
  void set_next_release(TimeNs t) { next_release_ = t; }

  void set_observer(JobObserver* observer) { observer_ = observer; }
  JobObserver* observer() const { return observer_; }

  uint64_t jobs_completed() const { return jobs_completed_; }

 private:
  friend class GuestOs;

  std::string name_;
  Kind kind_;
  RtaParams params_;
  bool registered_ = false;
  int vcpu_index_ = -1;
  bool shed_ = false;
  TimeNs compressed_slice_ = 0;  // 0 = not compressed.
  std::deque<Job> jobs_;
  TimeNs next_release_ = kTimeNever;
  JobObserver* observer_ = nullptr;
  uint64_t jobs_completed_ = 0;
};

inline const char* CriticalityName(Criticality c) {
  switch (c) {
    case Criticality::kLow:
      return "LOW";
    case Criticality::kMed:
      return "MED";
    case Criticality::kHigh:
      return "HIGH";
  }
  return "?";
}

}  // namespace rtvirt

#endif  // SRC_GUEST_TASK_H_

#include "src/metrics/alloc_tracker.h"

namespace rtvirt {

void AllocTracker::Start(TimeNs stop) {
  last_runtime_.assign(machine_->num_vms(), 0);
  for (int i = 0; i < machine_->num_vms(); ++i) {
    last_runtime_[i] = machine_->vm(i)->TotalRuntime();
  }
  machine_->sim()->After(window_, [this, stop] { Sample(stop); });
}

void AllocTracker::Sample(TimeNs stop) {
  TimeNs now = machine_->sim()->Now();
  Row row;
  row.time = now;
  last_runtime_.resize(machine_->num_vms(), 0);  // VMs may appear mid-run.
  for (int i = 0; i < machine_->num_vms(); ++i) {
    TimeNs total = machine_->vm(i)->TotalRuntime();
    row.vm_pct.push_back(100.0 * static_cast<double>(total - last_runtime_[i]) /
                         static_cast<double>(window_));
    last_runtime_[i] = total;
  }
  rows_.push_back(std::move(row));
  if (now < stop) {
    machine_->sim()->After(window_, [this, stop] { Sample(stop); });
  }
}

}  // namespace rtvirt

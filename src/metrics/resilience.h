// Aggregated fault/recovery counters for the resilience experiments: what
// the fault injector did, how the guest channel coped, and what the host
// watchdog reclaimed. Kept as plain counters so the metrics layer does not
// depend on the faults/rtvirt subsystems; the runner fills it in.

#ifndef SRC_METRICS_RESILIENCE_H_
#define SRC_METRICS_RESILIENCE_H_

#include <cstdint>
#include <iosfwd>

#include "src/sim/event_queue.h"

namespace rtvirt {

struct ResilienceCounters {
  // Injected faults (FaultInjector).
  uint64_t hypercall_attempts = 0;
  uint64_t injected_failures = 0;
  uint64_t injected_drops = 0;
  uint64_t injected_spikes = 0;
  uint64_t outage_failures = 0;
  uint64_t vm_crashes = 0;
  uint64_t vm_restarts = 0;

  // Guest-channel recovery (summed over all RTVirt guests).
  uint64_t transient_failures = 0;
  uint64_t retries = 0;
  uint64_t retry_successes = 0;
  uint64_t degraded_entries = 0;
  uint64_t recoveries = 0;
  uint64_t repair_attempts = 0;
  int64_t backoff_time_ns = 0;

  // Host watchdog (DP-WRAP).
  uint64_t watchdog_reclaims = 0;
  uint64_t stale_rejections = 0;

  // Overload control: host pressure signal (DP-WRAP) and guest-side
  // mixed-criticality degradation (summed over all guests).
  uint64_t pressure_raises = 0;
  uint64_t pressure_clears = 0;
  uint64_t admission_rejections = 0;
  uint64_t shed_releases = 0;
  uint64_t compressions = 0;
  uint64_t expansions = 0;
  uint64_t sheds = 0;
  uint64_t resumes = 0;
  uint64_t shed_job_drops = 0;
  uint64_t overload_admissions = 0;

  // PCPU fault & capacity-degradation model: injected capacity events
  // (FaultInjector), forced VCPU evacuations (Machine), and capacity-driven
  // host re-plans (DP-WRAP pcpu_recovery).
  uint64_t pcpu_offline_events = 0;
  uint64_t pcpu_online_events = 0;
  uint64_t pcpu_degrade_events = 0;
  uint64_t pcpu_heal_events = 0;
  uint64_t pcpu_evacuations = 0;
  uint64_t capacity_replans = 0;

  // Byzantine-guest containment: adversarial events issued (FaultInjector)
  // and the guest_trust defenses they ran into (DP-WRAP sanitizer, rate
  // limiter, quarantine) plus the auditor's isolation-invariant verdict.
  uint64_t adversarial_deadline_lies = 0;
  uint64_t adversarial_storm_calls = 0;
  uint64_t adversarial_thrash_calls = 0;
  uint64_t deadline_lie_rejections = 0;
  uint64_t deadline_floor_clamps = 0;
  uint64_t replan_budget_trips = 0;
  uint64_t hypercall_rate_rejections = 0;
  uint64_t bw_thrash_trips = 0;
  uint64_t quarantines = 0;
  uint64_t quarantine_releases = 0;
  uint64_t quarantine_holds = 0;
  uint64_t isolation_violations = 0;

  // Invariant auditor (zero when no auditor was armed).
  uint64_t audit_checks = 0;
  uint64_t audit_violations = 0;

  // Closed-loop SLO controller (src/control): decision/adjustment traffic and
  // every defensive hold (hysteresis, pressure, ladder, rate limit,
  // anti-windup), plus saturation handoffs and fail-static freeze/re-engage
  // cycles. The injected pair counts controller-adversary fault events
  // (FaultPlan::ControlFault). All-zero — and unprinted — when no controller
  // was armed.
  uint64_t control_samples = 0;
  uint64_t control_decisions = 0;
  uint64_t control_inc_adjustments = 0;
  uint64_t control_dec_adjustments = 0;
  uint64_t control_hysteresis_holds = 0;
  uint64_t control_demand_floor_holds = 0;
  uint64_t control_pressure_holds = 0;
  uint64_t control_ladder_holds = 0;
  uint64_t control_rate_limit_holds = 0;
  uint64_t control_windup_clamps = 0;
  uint64_t control_actuation_failures = 0;
  uint64_t control_saturation_events = 0;
  uint64_t control_saturations_resolved = 0;
  uint64_t control_freezes = 0;
  uint64_t control_reengage_probes = 0;
  uint64_t control_reengages = 0;
  uint64_t control_outage_failures = 0;  // Injected controller-path outages.
  uint64_t control_stale_windows = 0;    // Injected stale-shared-page windows.

  // Cluster federation (multi-host): host-level fault events, failure-driven
  // evacuation, and the migration retry/backoff/degradation machinery.
  // Filled by the Federation (src/cluster/federation.h), summed over all
  // hosts' counters; all-zero — and unprinted — for single-host runs.
  uint64_t host_crashes = 0;
  uint64_t host_outages = 0;
  uint64_t host_degrades = 0;
  uint64_t host_heals = 0;
  uint64_t cluster_vms_admitted = 0;
  uint64_t cluster_vms_rejected = 0;
  uint64_t evacuations = 0;
  uint64_t migration_attempts = 0;
  uint64_t migration_retries = 0;
  uint64_t migration_rebalances = 0;
  uint64_t rebalance_moves = 0;
  uint64_t migration_aborts = 0;      // In-flight target died; re-routed.
  uint64_t migration_successes = 0;
  uint64_t degraded_placements = 0;   // Landed via the compress/shed floors.
  uint64_t evacuations_unresolved = 0;
  int64_t vm_unavailable_ns = 0;      // Blackout charged across all moves.

  uint64_t TotalHostFaultEvents() const {
    return host_crashes + host_outages + host_degrades + host_heals;
  }

  // Allocation profile (perf subsystem, alloc_hooks): operator-new counts
  // split between warm-up (construction through the end of the first Run)
  // and steady state, plus event-queue node-storage allocations. Always
  // filled by the runner; printed only when `alloc_section` is set
  // (ExperimentConfig::report_alloc / RTVIRT_REPORT_ALLOC), so reports from
  // runs that did not opt in stay byte-identical.
  bool alloc_section = false;
  uint64_t warmup_allocs = 0;
  uint64_t warmup_alloc_bytes = 0;
  uint64_t steady_allocs = 0;
  uint64_t steady_alloc_bytes = 0;
  uint64_t peak_rss_kb = 0;
  EventQueueStats event_queue;

  uint64_t TotalInjected() const {
    return injected_failures + injected_drops + outage_failures;
  }

  uint64_t TotalAdversarial() const {
    return adversarial_deadline_lies + adversarial_storm_calls + adversarial_thrash_calls;
  }
};

// Two-column "counter  value" dump, one section per layer.
void PrintResilience(std::ostream& out, const ResilienceCounters& c);

// Sums every per-run counter of `from` into `into` (cluster reports
// aggregate one ResilienceCounters per host). alloc_section is OR-ed; the
// event-queue stats are summed field-wise.
void AccumulateResilience(ResilienceCounters& into, const ResilienceCounters& from);

}  // namespace rtvirt

#endif  // SRC_METRICS_RESILIENCE_H_

// Deadline-miss and response-time monitoring for RTAs.

#ifndef SRC_METRICS_DEADLINE_MONITOR_H_
#define SRC_METRICS_DEADLINE_MONITOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/guest/task.h"
#include "src/sim/stats.h"

namespace rtvirt {

class DeadlineMonitor : public JobObserver, public ckpt::Checkpointable {
 public:
  struct TaskStats {
    uint64_t completed = 0;
    uint64_t misses = 0;
    TimeNs max_tardiness = 0;
    TimeNs max_response = 0;  // Worst completion - release.

    double MissRatio() const {
      return completed == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(completed);
    }
  };

  // Convenience: sets this monitor as the task's observer.
  void Watch(Task* task) { task->set_observer(this); }

  void OnJobCompleted(const Task& task, const Job& job, TimeNs completion) override;

  uint64_t total_completed() const { return total_.completed; }
  uint64_t total_misses() const { return total_.misses; }
  double TotalMissRatio() const { return total_.MissRatio(); }
  TimeNs max_tardiness() const { return total_.max_tardiness; }

  // Response times (completion - release) in microseconds, across all tasks.
  const Samples& response_times_us() const { return response_us_; }

  const std::map<std::string, TaskStats>& per_task() const { return per_task_; }
  // Worst per-task miss ratio (tasks with at least one completion).
  double WorstTaskMissRatio() const;
  // Number of watched tasks that missed at least one deadline.
  int TasksWithMisses() const;

  // ---- Checkpointing (src/checkpoint) ----
  // Section "monitor". Purely an accumulator: it owns no simulator events, so
  // RebindEvent is always an error.
  static constexpr const char* kCkptSection = "monitor";
  void SaveState(ckpt::Writer& w) const override;
  std::string RestoreState(ckpt::Reader& r) override;
  std::string RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) override;

 private:
  TaskStats total_;
  std::map<std::string, TaskStats> per_task_;
  Samples response_us_;
};

}  // namespace rtvirt

#endif  // SRC_METRICS_DEADLINE_MONITOR_H_

#include "src/metrics/resilience.h"

#include <ostream>

#include "src/metrics/report.h"

namespace rtvirt {

void PrintResilience(std::ostream& out, const ResilienceCounters& c) {
  TablePrinter table({"layer", "counter", "value"});
  auto row = [&](const char* layer, const char* name, uint64_t v) {
    table.AddRow({layer, name, std::to_string(v)});
  };
  row("injected", "hypercall_attempts", c.hypercall_attempts);
  row("injected", "transient_failures", c.injected_failures);
  row("injected", "dropped_calls", c.injected_drops);
  row("injected", "latency_spikes", c.injected_spikes);
  row("injected", "outage_failures", c.outage_failures);
  row("injected", "vm_crashes", c.vm_crashes);
  row("injected", "vm_restarts", c.vm_restarts);
  row("guest", "transient_failures_seen", c.transient_failures);
  row("guest", "retries", c.retries);
  row("guest", "retry_successes", c.retry_successes);
  row("guest", "degraded_entries", c.degraded_entries);
  row("guest", "recoveries", c.recoveries);
  row("guest", "repair_attempts", c.repair_attempts);
  row("guest", "backoff_time_us", static_cast<uint64_t>(c.backoff_time_ns / 1000));
  row("host", "watchdog_reclaims", c.watchdog_reclaims);
  row("host", "stale_deadline_rejections", c.stale_rejections);
  // Overload-control counters only appear when that machinery fired, so
  // reports from overload-free runs are unchanged by this feature.
  uint64_t overload_any = c.pressure_raises + c.pressure_clears + c.admission_rejections +
                          c.shed_releases + c.compressions + c.expansions + c.sheds +
                          c.resumes + c.shed_job_drops + c.overload_admissions;
  if (overload_any > 0) {
    row("overload", "pressure_raises", c.pressure_raises);
    row("overload", "pressure_clears", c.pressure_clears);
    row("overload", "admission_rejections", c.admission_rejections);
    row("overload", "shed_releases", c.shed_releases);
    row("overload", "compressions", c.compressions);
    row("overload", "expansions", c.expansions);
    row("overload", "sheds", c.sheds);
    row("overload", "resumes", c.resumes);
    row("overload", "shed_job_drops", c.shed_job_drops);
    row("overload", "overload_admissions", c.overload_admissions);
  }
  // PCPU fault and audit sections likewise only appear when those subsystems
  // fired / were armed, keeping prior reports byte-identical.
  uint64_t pcpu_any = c.pcpu_offline_events + c.pcpu_online_events + c.pcpu_degrade_events +
                      c.pcpu_heal_events + c.pcpu_evacuations + c.capacity_replans;
  if (pcpu_any > 0) {
    row("pcpu", "offline_events", c.pcpu_offline_events);
    row("pcpu", "online_events", c.pcpu_online_events);
    row("pcpu", "degrade_events", c.pcpu_degrade_events);
    row("pcpu", "heal_events", c.pcpu_heal_events);
    row("pcpu", "vcpu_evacuations", c.pcpu_evacuations);
    row("pcpu", "capacity_replans", c.capacity_replans);
  }
  // Trust-boundary section: appears when adversarial traffic was injected or
  // any guest_trust defense fired (same byte-identical-when-idle convention).
  uint64_t trust_any = c.TotalAdversarial() + c.deadline_lie_rejections +
                       c.deadline_floor_clamps + c.replan_budget_trips +
                       c.hypercall_rate_rejections + c.bw_thrash_trips + c.quarantines +
                       c.quarantine_releases + c.quarantine_holds + c.isolation_violations;
  if (trust_any > 0) {
    row("trust", "adversarial_deadline_lies", c.adversarial_deadline_lies);
    row("trust", "adversarial_storm_calls", c.adversarial_storm_calls);
    row("trust", "adversarial_thrash_calls", c.adversarial_thrash_calls);
    row("trust", "deadline_lie_rejections", c.deadline_lie_rejections);
    row("trust", "deadline_floor_clamps", c.deadline_floor_clamps);
    row("trust", "replan_budget_trips", c.replan_budget_trips);
    row("trust", "hypercall_rate_rejections", c.hypercall_rate_rejections);
    row("trust", "bw_thrash_trips", c.bw_thrash_trips);
    row("trust", "quarantines", c.quarantines);
    row("trust", "quarantine_releases", c.quarantine_releases);
    row("trust", "quarantine_holds", c.quarantine_holds);
    row("trust", "isolation_violations", c.isolation_violations);
  }
  if (c.audit_checks > 0) {
    row("audit", "checks_run", c.audit_checks);
    row("audit", "violations", c.audit_violations);
  }
  // SLO-controller section: appears only when a controller was armed (it
  // counts samples/decisions as soon as it runs) or controller-adversary
  // faults were injected, so default-path reports stay byte-identical even
  // with the subsystem compiled in.
  uint64_t control_any = c.control_samples + c.control_decisions +
                         c.control_inc_adjustments + c.control_dec_adjustments +
                         c.control_hysteresis_holds + c.control_demand_floor_holds +
                         c.control_pressure_holds +
                         c.control_ladder_holds + c.control_rate_limit_holds +
                         c.control_windup_clamps + c.control_actuation_failures +
                         c.control_saturation_events + c.control_freezes +
                         c.control_reengage_probes + c.control_outage_failures +
                         c.control_stale_windows;
  if (control_any > 0) {
    row("control", "samples", c.control_samples);
    row("control", "decisions", c.control_decisions);
    row("control", "inc_adjustments", c.control_inc_adjustments);
    row("control", "dec_adjustments", c.control_dec_adjustments);
    row("control", "hysteresis_holds", c.control_hysteresis_holds);
    row("control", "demand_floor_holds", c.control_demand_floor_holds);
    row("control", "pressure_holds", c.control_pressure_holds);
    row("control", "ladder_holds", c.control_ladder_holds);
    row("control", "rate_limit_holds", c.control_rate_limit_holds);
    row("control", "windup_clamps", c.control_windup_clamps);
    row("control", "actuation_failures", c.control_actuation_failures);
    row("control", "saturation_events", c.control_saturation_events);
    row("control", "saturations_resolved", c.control_saturations_resolved);
    row("control", "freezes", c.control_freezes);
    row("control", "reengage_probes", c.control_reengage_probes);
    row("control", "reengages", c.control_reengages);
    row("control", "injected_outage_failures", c.control_outage_failures);
    row("control", "injected_stale_windows", c.control_stale_windows);
  }
  // Cluster federation section: only multi-host runs with host faults or
  // admissions fire these, so single-host reports stay byte-identical.
  uint64_t cluster_any = c.TotalHostFaultEvents() + c.cluster_vms_admitted +
                         c.cluster_vms_rejected + c.evacuations + c.migration_attempts +
                         c.migration_aborts + c.evacuations_unresolved;
  if (cluster_any > 0) {
    row("cluster", "host_crashes", c.host_crashes);
    row("cluster", "host_outages", c.host_outages);
    row("cluster", "host_degrades", c.host_degrades);
    row("cluster", "host_heals", c.host_heals);
    row("cluster", "vms_admitted", c.cluster_vms_admitted);
    row("cluster", "vms_rejected", c.cluster_vms_rejected);
    row("cluster", "evacuations", c.evacuations);
    row("cluster", "migration_attempts", c.migration_attempts);
    row("cluster", "migration_retries", c.migration_retries);
    row("cluster", "migration_rebalances", c.migration_rebalances);
    row("cluster", "rebalance_moves", c.rebalance_moves);
    row("cluster", "migration_aborts", c.migration_aborts);
    row("cluster", "migration_successes", c.migration_successes);
    row("cluster", "degraded_placements", c.degraded_placements);
    row("cluster", "evacuations_unresolved", c.evacuations_unresolved);
    row("cluster", "vm_unavailable_ms", static_cast<uint64_t>(c.vm_unavailable_ns / 1000000));
  }
  // Allocation profile: opt-in (ExperimentConfig::report_alloc /
  // RTVIRT_REPORT_ALLOC) because RSS and warm-up counts vary across builds
  // and would break byte-identical report comparisons.
  if (c.alloc_section) {
    row("alloc", "warmup_allocs", c.warmup_allocs);
    row("alloc", "warmup_alloc_kb", c.warmup_alloc_bytes / 1024);
    row("alloc", "steady_allocs", c.steady_allocs);
    row("alloc", "steady_alloc_kb", c.steady_alloc_bytes / 1024);
    row("alloc", "peak_rss_kb", c.peak_rss_kb);
    row("alloc", "eq_schedules", c.event_queue.schedules);
    row("alloc", "eq_cancels", c.event_queue.cancels);
    row("alloc", "eq_pops", c.event_queue.pops);
    row("alloc", "eq_node_allocs", c.event_queue.node_allocs);
    row("alloc", "eq_calendar_resizes", c.event_queue.calendar_resizes);
    row("alloc", "eq_heap_compactions", c.event_queue.heap_compactions);
  }
  table.Print(out);
}

void AccumulateResilience(ResilienceCounters& into, const ResilienceCounters& from) {
  into.hypercall_attempts += from.hypercall_attempts;
  into.injected_failures += from.injected_failures;
  into.injected_drops += from.injected_drops;
  into.injected_spikes += from.injected_spikes;
  into.outage_failures += from.outage_failures;
  into.vm_crashes += from.vm_crashes;
  into.vm_restarts += from.vm_restarts;
  into.transient_failures += from.transient_failures;
  into.retries += from.retries;
  into.retry_successes += from.retry_successes;
  into.degraded_entries += from.degraded_entries;
  into.recoveries += from.recoveries;
  into.repair_attempts += from.repair_attempts;
  into.backoff_time_ns += from.backoff_time_ns;
  into.watchdog_reclaims += from.watchdog_reclaims;
  into.stale_rejections += from.stale_rejections;
  into.pressure_raises += from.pressure_raises;
  into.pressure_clears += from.pressure_clears;
  into.admission_rejections += from.admission_rejections;
  into.shed_releases += from.shed_releases;
  into.compressions += from.compressions;
  into.expansions += from.expansions;
  into.sheds += from.sheds;
  into.resumes += from.resumes;
  into.shed_job_drops += from.shed_job_drops;
  into.overload_admissions += from.overload_admissions;
  into.pcpu_offline_events += from.pcpu_offline_events;
  into.pcpu_online_events += from.pcpu_online_events;
  into.pcpu_degrade_events += from.pcpu_degrade_events;
  into.pcpu_heal_events += from.pcpu_heal_events;
  into.pcpu_evacuations += from.pcpu_evacuations;
  into.capacity_replans += from.capacity_replans;
  into.adversarial_deadline_lies += from.adversarial_deadline_lies;
  into.adversarial_storm_calls += from.adversarial_storm_calls;
  into.adversarial_thrash_calls += from.adversarial_thrash_calls;
  into.deadline_lie_rejections += from.deadline_lie_rejections;
  into.deadline_floor_clamps += from.deadline_floor_clamps;
  into.replan_budget_trips += from.replan_budget_trips;
  into.hypercall_rate_rejections += from.hypercall_rate_rejections;
  into.bw_thrash_trips += from.bw_thrash_trips;
  into.quarantines += from.quarantines;
  into.quarantine_releases += from.quarantine_releases;
  into.quarantine_holds += from.quarantine_holds;
  into.isolation_violations += from.isolation_violations;
  into.audit_checks += from.audit_checks;
  into.audit_violations += from.audit_violations;
  into.control_samples += from.control_samples;
  into.control_decisions += from.control_decisions;
  into.control_inc_adjustments += from.control_inc_adjustments;
  into.control_dec_adjustments += from.control_dec_adjustments;
  into.control_hysteresis_holds += from.control_hysteresis_holds;
  into.control_demand_floor_holds += from.control_demand_floor_holds;
  into.control_pressure_holds += from.control_pressure_holds;
  into.control_ladder_holds += from.control_ladder_holds;
  into.control_rate_limit_holds += from.control_rate_limit_holds;
  into.control_windup_clamps += from.control_windup_clamps;
  into.control_actuation_failures += from.control_actuation_failures;
  into.control_saturation_events += from.control_saturation_events;
  into.control_saturations_resolved += from.control_saturations_resolved;
  into.control_freezes += from.control_freezes;
  into.control_reengage_probes += from.control_reengage_probes;
  into.control_reengages += from.control_reengages;
  into.control_outage_failures += from.control_outage_failures;
  into.control_stale_windows += from.control_stale_windows;
  into.host_crashes += from.host_crashes;
  into.host_outages += from.host_outages;
  into.host_degrades += from.host_degrades;
  into.host_heals += from.host_heals;
  into.cluster_vms_admitted += from.cluster_vms_admitted;
  into.cluster_vms_rejected += from.cluster_vms_rejected;
  into.evacuations += from.evacuations;
  into.migration_attempts += from.migration_attempts;
  into.migration_retries += from.migration_retries;
  into.migration_rebalances += from.migration_rebalances;
  into.rebalance_moves += from.rebalance_moves;
  into.migration_aborts += from.migration_aborts;
  into.migration_successes += from.migration_successes;
  into.degraded_placements += from.degraded_placements;
  into.evacuations_unresolved += from.evacuations_unresolved;
  into.vm_unavailable_ns += from.vm_unavailable_ns;
  into.alloc_section = into.alloc_section || from.alloc_section;
  into.warmup_allocs += from.warmup_allocs;
  into.warmup_alloc_bytes += from.warmup_alloc_bytes;
  into.steady_allocs += from.steady_allocs;
  into.steady_alloc_bytes += from.steady_alloc_bytes;
  into.peak_rss_kb = into.peak_rss_kb > from.peak_rss_kb ? into.peak_rss_kb : from.peak_rss_kb;
  into.event_queue.schedules += from.event_queue.schedules;
  into.event_queue.cancels += from.event_queue.cancels;
  into.event_queue.pops += from.event_queue.pops;
  into.event_queue.node_allocs += from.event_queue.node_allocs;
  into.event_queue.calendar_resizes += from.event_queue.calendar_resizes;
  into.event_queue.heap_compactions += from.event_queue.heap_compactions;
  into.event_queue.backlog += from.event_queue.backlog;
  into.event_queue.free_nodes += from.event_queue.free_nodes;
}

}  // namespace rtvirt

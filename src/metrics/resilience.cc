#include "src/metrics/resilience.h"

#include <ostream>

#include "src/metrics/report.h"

namespace rtvirt {

void PrintResilience(std::ostream& out, const ResilienceCounters& c) {
  TablePrinter table({"layer", "counter", "value"});
  auto row = [&](const char* layer, const char* name, uint64_t v) {
    table.AddRow({layer, name, std::to_string(v)});
  };
  row("injected", "hypercall_attempts", c.hypercall_attempts);
  row("injected", "transient_failures", c.injected_failures);
  row("injected", "dropped_calls", c.injected_drops);
  row("injected", "latency_spikes", c.injected_spikes);
  row("injected", "outage_failures", c.outage_failures);
  row("injected", "vm_crashes", c.vm_crashes);
  row("injected", "vm_restarts", c.vm_restarts);
  row("guest", "transient_failures_seen", c.transient_failures);
  row("guest", "retries", c.retries);
  row("guest", "retry_successes", c.retry_successes);
  row("guest", "degraded_entries", c.degraded_entries);
  row("guest", "recoveries", c.recoveries);
  row("guest", "repair_attempts", c.repair_attempts);
  row("guest", "backoff_time_us", static_cast<uint64_t>(c.backoff_time_ns / 1000));
  row("host", "watchdog_reclaims", c.watchdog_reclaims);
  row("host", "stale_deadline_rejections", c.stale_rejections);
  // Overload-control counters only appear when that machinery fired, so
  // reports from overload-free runs are unchanged by this feature.
  uint64_t overload_any = c.pressure_raises + c.pressure_clears + c.admission_rejections +
                          c.shed_releases + c.compressions + c.expansions + c.sheds +
                          c.resumes + c.shed_job_drops + c.overload_admissions;
  if (overload_any > 0) {
    row("overload", "pressure_raises", c.pressure_raises);
    row("overload", "pressure_clears", c.pressure_clears);
    row("overload", "admission_rejections", c.admission_rejections);
    row("overload", "shed_releases", c.shed_releases);
    row("overload", "compressions", c.compressions);
    row("overload", "expansions", c.expansions);
    row("overload", "sheds", c.sheds);
    row("overload", "resumes", c.resumes);
    row("overload", "shed_job_drops", c.shed_job_drops);
    row("overload", "overload_admissions", c.overload_admissions);
  }
  // PCPU fault and audit sections likewise only appear when those subsystems
  // fired / were armed, keeping prior reports byte-identical.
  uint64_t pcpu_any = c.pcpu_offline_events + c.pcpu_online_events + c.pcpu_degrade_events +
                      c.pcpu_heal_events + c.pcpu_evacuations + c.capacity_replans;
  if (pcpu_any > 0) {
    row("pcpu", "offline_events", c.pcpu_offline_events);
    row("pcpu", "online_events", c.pcpu_online_events);
    row("pcpu", "degrade_events", c.pcpu_degrade_events);
    row("pcpu", "heal_events", c.pcpu_heal_events);
    row("pcpu", "vcpu_evacuations", c.pcpu_evacuations);
    row("pcpu", "capacity_replans", c.capacity_replans);
  }
  // Trust-boundary section: appears when adversarial traffic was injected or
  // any guest_trust defense fired (same byte-identical-when-idle convention).
  uint64_t trust_any = c.TotalAdversarial() + c.deadline_lie_rejections +
                       c.deadline_floor_clamps + c.replan_budget_trips +
                       c.hypercall_rate_rejections + c.bw_thrash_trips + c.quarantines +
                       c.quarantine_releases + c.quarantine_holds + c.isolation_violations;
  if (trust_any > 0) {
    row("trust", "adversarial_deadline_lies", c.adversarial_deadline_lies);
    row("trust", "adversarial_storm_calls", c.adversarial_storm_calls);
    row("trust", "adversarial_thrash_calls", c.adversarial_thrash_calls);
    row("trust", "deadline_lie_rejections", c.deadline_lie_rejections);
    row("trust", "deadline_floor_clamps", c.deadline_floor_clamps);
    row("trust", "replan_budget_trips", c.replan_budget_trips);
    row("trust", "hypercall_rate_rejections", c.hypercall_rate_rejections);
    row("trust", "bw_thrash_trips", c.bw_thrash_trips);
    row("trust", "quarantines", c.quarantines);
    row("trust", "quarantine_releases", c.quarantine_releases);
    row("trust", "quarantine_holds", c.quarantine_holds);
    row("trust", "isolation_violations", c.isolation_violations);
  }
  if (c.audit_checks > 0) {
    row("audit", "checks_run", c.audit_checks);
    row("audit", "violations", c.audit_violations);
  }
  // Allocation profile: opt-in (ExperimentConfig::report_alloc /
  // RTVIRT_REPORT_ALLOC) because RSS and warm-up counts vary across builds
  // and would break byte-identical report comparisons.
  if (c.alloc_section) {
    row("alloc", "warmup_allocs", c.warmup_allocs);
    row("alloc", "warmup_alloc_kb", c.warmup_alloc_bytes / 1024);
    row("alloc", "steady_allocs", c.steady_allocs);
    row("alloc", "steady_alloc_kb", c.steady_alloc_bytes / 1024);
    row("alloc", "peak_rss_kb", c.peak_rss_kb);
    row("alloc", "eq_schedules", c.event_queue.schedules);
    row("alloc", "eq_cancels", c.event_queue.cancels);
    row("alloc", "eq_pops", c.event_queue.pops);
    row("alloc", "eq_node_allocs", c.event_queue.node_allocs);
    row("alloc", "eq_calendar_resizes", c.event_queue.calendar_resizes);
    row("alloc", "eq_heap_compactions", c.event_queue.heap_compactions);
  }
  table.Print(out);
}

}  // namespace rtvirt

// Periodic sampling of per-VM (and per-VCPU) CPU allocation, producing the
// time series of Figure 4.

#ifndef SRC_METRICS_ALLOC_TRACKER_H_
#define SRC_METRICS_ALLOC_TRACKER_H_

#include <vector>

#include "src/hv/machine.h"
#include "src/sim/simulator.h"

namespace rtvirt {

class AllocTracker {
 public:
  struct Row {
    TimeNs time = 0;
    // CPU fraction consumed in the window, per VM (index = VM id), as a
    // percentage of one CPU (can exceed 100 for multi-VCPU VMs).
    std::vector<double> vm_pct;
  };

  AllocTracker(Machine* machine, TimeNs window) : machine_(machine), window_(window) {}

  // Samples every `window` until `stop`.
  void Start(TimeNs stop);

  const std::vector<Row>& rows() const { return rows_; }

 private:
  void Sample(TimeNs stop);

  Machine* machine_;
  TimeNs window_;
  std::vector<TimeNs> last_runtime_;
  std::vector<Row> rows_;
};

}  // namespace rtvirt

#endif  // SRC_METRICS_ALLOC_TRACKER_H_

// Text-report helpers: aligned tables and CDF/percentile dumps matching the
// rows and series the paper's tables and figures present.

#ifndef SRC_METRICS_REPORT_H_
#define SRC_METRICS_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/metrics/resilience.h"
#include "src/sim/stats.h"

namespace rtvirt {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& out) const;

  static std::string Fmt(double v, int precision = 2);
  static std::string Pct(double fraction, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints "pXX  value" lines for the given percentiles (values as-is, caller
// chooses the unit).
void PrintPercentiles(std::ostream& out, const Samples& samples,
                      const std::vector<double>& percentiles, const std::string& unit);

// Prints a CDF like Figure 5: `points` (value, fraction) rows.
void PrintCdf(std::ostream& out, const Samples& samples, size_t points,
              const std::string& unit);

// The standard end-of-run experiment report: a titled header followed by the
// full resilience counter table (which includes the PCPU fault/recovery and
// invariant-audit sections when those subsystems fired). Benches print this
// instead of hand-rolling their own counter dumps; Experiment::PrintReport
// fills it from the live harness.
void PrintExperimentReport(std::ostream& out, const std::string& title,
                           const ResilienceCounters& counters);

}  // namespace rtvirt

#endif  // SRC_METRICS_REPORT_H_

#include "src/metrics/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

namespace rtvirt {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::Pct(double fraction, int precision) {
  return Fmt(fraction * 100.0, precision) + "%";
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "  ";
    for (size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    out << "\n";
  };
  print_row(headers_);
  size_t total = 2;
  for (size_t w : width) {
    total += w + 2;
  }
  out << "  " << std::string(total - 2, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintPercentiles(std::ostream& out, const Samples& samples,
                      const std::vector<double>& percentiles, const std::string& unit) {
  for (double p : percentiles) {
    out << "  p" << p << ": " << TablePrinter::Fmt(samples.Percentile(p)) << " " << unit
        << "\n";
  }
}

void PrintCdf(std::ostream& out, const Samples& samples, size_t points,
              const std::string& unit) {
  out << "  value(" << unit << ")  cumulative_fraction\n";
  for (const Samples::CdfPoint& pt : samples.Cdf(points)) {
    out << "  " << TablePrinter::Fmt(pt.value) << "  " << TablePrinter::Fmt(pt.fraction, 4)
        << "\n";
  }
}

void PrintExperimentReport(std::ostream& out, const std::string& title,
                           const ResilienceCounters& counters) {
  out << "== experiment report: " << title << " ==\n";
  PrintResilience(out, counters);
}

}  // namespace rtvirt

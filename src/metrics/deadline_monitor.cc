#include "src/metrics/deadline_monitor.h"

#include <algorithm>
#include <utility>

namespace rtvirt {

void DeadlineMonitor::OnJobCompleted(const Task& task, const Job& job, TimeNs completion) {
  TaskStats& ts = per_task_[task.name()];
  ++ts.completed;
  ++total_.completed;
  ts.max_response = std::max(ts.max_response, completion - job.release);
  total_.max_response = std::max(total_.max_response, completion - job.release);
  if (completion > job.deadline) {
    ++ts.misses;
    ++total_.misses;
    ts.max_tardiness = std::max(ts.max_tardiness, completion - job.deadline);
    total_.max_tardiness = std::max(total_.max_tardiness, completion - job.deadline);
  }
  response_us_.Add(ToUs(completion - job.release));
}

double DeadlineMonitor::WorstTaskMissRatio() const {
  double worst = 0.0;
  for (const auto& [name, ts] : per_task_) {
    worst = std::max(worst, ts.MissRatio());
  }
  return worst;
}

int DeadlineMonitor::TasksWithMisses() const {
  int n = 0;
  for (const auto& [name, ts] : per_task_) {
    if (ts.misses > 0) {
      ++n;
    }
  }
  return n;
}

namespace {

void SaveTaskStats(ckpt::Writer& w, const DeadlineMonitor::TaskStats& ts) {
  w.U64(ts.completed);
  w.U64(ts.misses);
  w.I64(ts.max_tardiness);
  w.I64(ts.max_response);
}

void RestoreTaskStats(ckpt::Reader& r, DeadlineMonitor::TaskStats* ts) {
  ts->completed = r.U64();
  ts->misses = r.U64();
  ts->max_tardiness = r.I64();
  ts->max_response = r.I64();
}

}  // namespace

void DeadlineMonitor::SaveState(ckpt::Writer& w) const {
  SaveTaskStats(w, total_);
  // std::map iterates in key order: deterministic across processes.
  w.U32(static_cast<uint32_t>(per_task_.size()));
  for (const auto& [name, ts] : per_task_) {
    w.Str(name);
    SaveTaskStats(w, ts);
  }
  const std::vector<double>& samples = response_us_.raw_values();
  w.U32(static_cast<uint32_t>(samples.size()));
  for (double v : samples) {
    w.F64(v);
  }
}

std::string DeadlineMonitor::RestoreState(ckpt::Reader& r) {
  RestoreTaskStats(r, &total_);
  per_task_.clear();
  uint32_t n_tasks = r.U32();
  for (uint32_t i = 0; i < n_tasks && r.ok(); ++i) {
    std::string name = r.Str();
    RestoreTaskStats(r, &per_task_[name]);
  }
  uint32_t n_samples = r.U32();
  std::vector<double> samples;
  samples.reserve(n_samples);
  for (uint32_t i = 0; i < n_samples && r.ok(); ++i) {
    samples.push_back(r.F64());
  }
  response_us_.RestoreValues(std::move(samples));
  return r.ok() ? "" : "monitor: truncated section";
}

std::string DeadlineMonitor::RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) {
  (void)payload;
  (void)when;
  return "monitor: owns no events but checkpoint carries event kind " +
         std::to_string(kind);
}

}  // namespace rtvirt

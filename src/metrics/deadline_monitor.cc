#include "src/metrics/deadline_monitor.h"

#include <algorithm>

namespace rtvirt {

void DeadlineMonitor::OnJobCompleted(const Task& task, const Job& job, TimeNs completion) {
  TaskStats& ts = per_task_[task.name()];
  ++ts.completed;
  ++total_.completed;
  ts.max_response = std::max(ts.max_response, completion - job.release);
  total_.max_response = std::max(total_.max_response, completion - job.release);
  if (completion > job.deadline) {
    ++ts.misses;
    ++total_.misses;
    ts.max_tardiness = std::max(ts.max_tardiness, completion - job.deadline);
    total_.max_tardiness = std::max(total_.max_tardiness, completion - job.deadline);
  }
  response_us_.Add(ToUs(completion - job.release));
}

double DeadlineMonitor::WorstTaskMissRatio() const {
  double worst = 0.0;
  for (const auto& [name, ts] : per_task_) {
    worst = std::max(worst, ts.MissRatio());
  }
  return worst;
}

int DeadlineMonitor::TasksWithMisses() const {
  int n = 0;
  for (const auto& [name, ts] : per_task_) {
    if (ts.misses > 0) {
      ++n;
    }
  }
  return n;
}

}  // namespace rtvirt

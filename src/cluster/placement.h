// Cross-host VM placement (paper section 6): extends RTVirt's admission to
// a cluster. Each host runs its own DP-WRAP scheduler, so a host can accept
// any set of VMs whose total RTA bandwidth fits its processor count; the
// placer chooses hosts for arriving VMs and, when fragmentation blocks an
// arrival that would fit in aggregate, plans a minimal set of live
// migrations (costed with MigrationCostModel) to make room.
//
// The federation layer (src/cluster/federation.h) adds host-level fault
// tolerance on top: hosts can be marked unavailable (crashed / dark) or
// capacity-degraded, and evacuated VMs may be re-placed in "degraded fit"
// mode, where feasibility is tested against the compressed floors of the
// mixed-criticality reservations (the PR 2 compress/shed ladder squeezes the
// incumbents physically) instead of their full bandwidths.

#ifndef SRC_CLUSTER_PLACEMENT_H_
#define SRC_CLUSTER_PLACEMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "src/cluster/migration_model.h"
#include "src/common/bandwidth.h"

namespace rtvirt {

enum class PlacementPolicy {
  kFirstFit,  // Lowest host id with room (consolidating).
  kWorstFit,  // Most free bandwidth (load balancing).
  kBestFit,   // Least free bandwidth that still fits (packing).
};

struct ClusterHost {
  int id = 0;
  int pcpus = 0;

  Bandwidth capacity() const { return Bandwidth::Cpus(pcpus); }
};

struct VmPlacementRequest {
  std::string name;
  Bandwidth bandwidth;            // Aggregate RTA reservation of the VM.
  // Compressed floor of that reservation: what the VM's elastic LOW tasks
  // shrink to at min_slice under host pressure. Degraded-fit placement tests
  // feasibility against floors. The -1 ppb sentinel means "inelastic"
  // (floor == bandwidth), so existing call sites are unchanged.
  Bandwidth min_bandwidth = Bandwidth::FromPpb(-1);
  MigrationCostModel migration;   // Cost of moving this VM once placed.

  Bandwidth MinBandwidth() const {
    return min_bandwidth.ppb() < 0 ? bandwidth : min_bandwidth;
  }
};

struct PlacedVm {
  VmPlacementRequest request;
  int host = -1;
};

struct MigrationStep {
  std::string vm;
  int from = 0;
  int to = 0;
  MigrationCostModel::Estimate cost;
};

class ClusterPlacer {
 public:
  explicit ClusterPlacer(std::vector<ClusterHost> hosts,
                         PlacementPolicy policy = PlacementPolicy::kWorstFit);

  // Places a VM; returns the chosen host id or nullopt if no host has room
  // (use PlanRebalance to try migrations). A zero-bandwidth request is
  // valid: it lands on the policy's pick among available hosts with
  // non-negative free capacity and consumes nothing. With degraded_fit set,
  // feasibility and policy scoring use compressed floors (MinBandwidth) on
  // both sides — the surviving hosts' overload ladders are trusted to
  // squeeze the incumbents down to their floors.
  std::optional<int> Place(const VmPlacementRequest& request, bool degraded_fit = false);

  // Removes a VM (it left the system). Removing a name that was never
  // placed — or was already removed — is a defined no-op returning false.
  bool Remove(const std::string& name);

  // When Place fails but the aggregate free capacity would fit the request,
  // plans a greedy minimal-disruption migration sequence that frees room on
  // one host: candidate VMs are considered in increasing predicted
  // total-migration-time order. Returns the steps and the target host, or
  // nullopt if no plan exists. The plan is applied to the placer's state.
  // Honors degraded_fit the same way Place does (floors on both sides).
  struct RebalancePlan {
    int target_host = -1;
    std::vector<MigrationStep> steps;
    TimeNs total_migration_time = 0;
  };
  std::optional<RebalancePlan> PlanRebalance(const VmPlacementRequest& request,
                                             bool degraded_fit = false);

  // Host fault state, driven by the federation. An unavailable host is
  // skipped by Place/PlanRebalance (as target and as migration destination);
  // any placements still booked on it are the caller's to Remove (the
  // federation evacuates them one by one). A capacity factor in (0, 1]
  // scales the host's effective capacity for all feasibility tests,
  // mirroring Machine::SetPcpuSpeed one level up.
  void SetHostAvailable(int host, bool available);
  void SetHostCapacityFactor(int host, double factor);
  bool HostAvailable(int host) const;

  Bandwidth HostLoad(int host) const;     // Sum of full bandwidths booked.
  Bandwidth HostMinLoad(int host) const;  // Sum of compressed floors booked.
  // Effective capacity minus full load; negative when a degraded-fit
  // placement overbooked the host (the ladder keeps it physically feasible).
  Bandwidth HostFree(int host) const;
  Bandwidth TotalFree() const;  // Over available hosts only.
  const std::vector<PlacedVm>& placements() const { return vms_; }
  int num_hosts() const { return static_cast<int>(hosts_.size()); }

 private:
  Bandwidth EffectiveCapacity(int host) const;
  Bandwidth LoadFor(int host, bool degraded_fit) const;
  int ChooseHost(const VmPlacementRequest& request, bool degraded_fit) const;
  void CheckHostId(int host, const char* who) const;

  std::vector<ClusterHost> hosts_;
  PlacementPolicy policy_;
  std::vector<PlacedVm> vms_;
  std::vector<bool> available_;
  std::vector<double> capacity_factor_;
};

}  // namespace rtvirt

#endif  // SRC_CLUSTER_PLACEMENT_H_

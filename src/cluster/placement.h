// Cross-host VM placement (paper section 6): extends RTVirt's admission to
// a cluster. Each host runs its own DP-WRAP scheduler, so a host can accept
// any set of VMs whose total RTA bandwidth fits its processor count; the
// placer chooses hosts for arriving VMs and, when fragmentation blocks an
// arrival that would fit in aggregate, plans a minimal set of live
// migrations (costed with MigrationCostModel) to make room.

#ifndef SRC_CLUSTER_PLACEMENT_H_
#define SRC_CLUSTER_PLACEMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "src/cluster/migration_model.h"
#include "src/common/bandwidth.h"

namespace rtvirt {

enum class PlacementPolicy {
  kFirstFit,  // Lowest host id with room (consolidating).
  kWorstFit,  // Most free bandwidth (load balancing).
  kBestFit,   // Least free bandwidth that still fits (packing).
};

struct ClusterHost {
  int id = 0;
  int pcpus = 0;

  Bandwidth capacity() const { return Bandwidth::Cpus(pcpus); }
};

struct VmPlacementRequest {
  std::string name;
  Bandwidth bandwidth;            // Aggregate RTA reservation of the VM.
  MigrationCostModel migration;   // Cost of moving this VM once placed.
};

struct PlacedVm {
  VmPlacementRequest request;
  int host = -1;
};

struct MigrationStep {
  std::string vm;
  int from = 0;
  int to = 0;
  MigrationCostModel::Estimate cost;
};

class ClusterPlacer {
 public:
  explicit ClusterPlacer(std::vector<ClusterHost> hosts,
                         PlacementPolicy policy = PlacementPolicy::kWorstFit);

  // Places a VM; returns the chosen host id or nullopt if no host has room
  // (use PlanRebalance to try migrations).
  std::optional<int> Place(const VmPlacementRequest& request);

  // Removes a VM (it left the system).
  bool Remove(const std::string& name);

  // When Place fails but the aggregate free capacity would fit the request,
  // plans a greedy minimal-disruption migration sequence that frees room on
  // one host: candidate VMs are considered in increasing predicted
  // total-migration-time order. Returns the steps and the target host, or
  // nullopt if no plan exists. The plan is applied to the placer's state.
  struct RebalancePlan {
    int target_host = -1;
    std::vector<MigrationStep> steps;
    TimeNs total_migration_time = 0;
  };
  std::optional<RebalancePlan> PlanRebalance(const VmPlacementRequest& request);

  Bandwidth HostLoad(int host) const;
  Bandwidth HostFree(int host) const { return hosts_[host].capacity() - HostLoad(host); }
  Bandwidth TotalFree() const;
  const std::vector<PlacedVm>& placements() const { return vms_; }

 private:
  int ChooseHost(Bandwidth bw) const;

  std::vector<ClusterHost> hosts_;
  PlacementPolicy policy_;
  std::vector<PlacedVm> vms_;
};

}  // namespace rtvirt

#endif  // SRC_CLUSTER_PLACEMENT_H_

// Multi-host federation with host-level fault tolerance.
//
// Promotes the cluster layer (paper section 6) from a placement stub to a
// federated simulation: N hosts, each a full single-host Experiment (one
// Machine + DP-WRAP instance + guests), under a global admission/placement
// service that packs CARTS interfaces with the ClusterPlacer policies. The
// structure mirrors a static partition-management table (one configuration
// record per guest, owned by the manager, never by the guests): the
// federation holds the authoritative ClusterVmSpec per VM and re-instantiates
// guests from it after every move.
//
// Host-level fault events come from FaultPlan::host_faults (crash / outage
// window / capacity degradation) and are driven through the same machine
// knobs the PCPU fault model uses — SetPcpuOnline / SetPcpuSpeed on every
// core of the affected host — so the frozen baseline and the hardened path
// see the identical hardware timeline. With fault_tolerance enabled the
// federation additionally runs the recovery response:
//
//   * evacuation — every VM on a failed host is torn down (the machine-level
//     crash path, same as an injected VM crash) and queued for re-placement;
//   * re-placement — Place, then PlanRebalance (live-migrating incumbents to
//     make room, charged their predicted downtime as a blackout);
//   * retry with bounded exponential backoff when the cluster is full, and a
//     deadline-aware timeout after which the evacuee is re-placed in
//     degraded fit: feasibility against the compressed floors of the mixed-
//     criticality reservations, trusting the PR 2 compress/shed ladder on
//     the surviving host to squeeze the incumbents physically (graceful
//     degradation instead of drop);
//   * migration abort — an in-flight copy whose target host fails is
//     re-routed and the copy restarted;
//   * blackout accounting — every move charges the MigrationCostModel
//     copy/warm-up penalty as a reservation-unavailability window (full
//     total_time for a cold restore off a failed host, downtime only for a
//     live rebalance move).
//
// Determinism: hosts interact only through federation actions, so the N
// simulators advance in lock-step to the next federation event time and
// stay independent in between. Same seed + plan => byte-identical report
// (asserted by tests/federation_test.cc and the bench soak mode).

#ifndef SRC_CLUSTER_FEDERATION_H_
#define SRC_CLUSTER_FEDERATION_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/cluster/placement.h"
#include "src/metrics/resilience.h"
#include "src/runner/experiment.h"

namespace rtvirt {

// The federation's authoritative per-VM record: everything needed to
// instantiate (and re-instantiate, after a migration) the guest anywhere.
struct ClusterVmSpec {
  std::string name;
  int vcpus = 1;
  Bandwidth bandwidth;      // Full CARTS interface of the VM.
  // Compressed floor under the guest's overload ladder; -1 ppb = inelastic.
  Bandwidth min_bandwidth = Bandwidth::FromPpb(-1);
  GuestConfig guest;
  MigrationCostModel migration;
  // Per-VM cap on how long an evacuee may wait for a full-bandwidth home
  // before degraded-fit placement kicks in (the federation-wide
  // fault_tolerance.migration_deadline still applies; the tighter wins).
  TimeNs evacuation_deadline = kTimeNever;
};

enum class HostState {
  kHealthy,
  kDegraded,  // Throttled capacity; still serving.
  kDown,      // Transient outage; will heal.
  kCrashed,   // Permanent; never heals.
};

struct FederationConfig {
  int num_hosts = 2;
  int pcpus_per_host = 4;
  PlacementPolicy policy = PlacementPolicy::kWorstFit;

  // Host-failure recovery. Disabled by default: host faults then still hit
  // the machines (frozen baseline), but nobody evacuates or re-places.
  struct FaultTolerance {
    bool enabled = false;
    // Bounded exponential backoff between placement attempts for an evacuee
    // the cluster currently has no room for.
    TimeNs backoff_initial = Ms(50);
    double backoff_factor = 2.0;
    TimeNs backoff_cap = Sec(2);
    // Attempt budget per evacuation; exhausting it marks the evacuation
    // unresolved (counted, reported) instead of retrying forever.
    int max_attempts = 16;
    // How long an evacuee may chase a full-bandwidth home before the
    // federation falls back to degraded fit (compress/shed floors).
    TimeNs migration_deadline = Sec(1);
  };
  FaultTolerance fault_tolerance;
};

class Federation {
 public:
  // Workload hook, called every time a VM instance comes up: at admission
  // and again after every migration landing (generation increments per
  // landing). The callback re-creates the VM's tasks/RTAs on the new host.
  using Launcher = std::function<void(Experiment& exp, GuestOs* guest,
                                      const ClusterVmSpec& spec, int host, int generation)>;
  // Called just before a VM instance is torn down (evacuation or rebalance
  // move), while its guest still exists on `host`.
  using Teardown = std::function<void(const ClusterVmSpec& spec, int host)>;

  // `host_template` seeds every per-host Experiment: machine.num_pcpus is
  // overridden with pcpus_per_host, the seed is decorrelated per host, and
  // faults.host_faults is stripped from the per-host plans (those events are
  // the federation's to drive; everything else in the plan — hypercall
  // faults, PCPU faults, ... — replays identically on every host).
  Federation(FederationConfig config, ExperimentConfig host_template);
  ~Federation();
  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  void SetLauncher(Launcher launcher) { launcher_ = std::move(launcher); }
  void SetTeardown(Teardown teardown) { teardown_ = std::move(teardown); }

  // Global admission: places the VM (Place, then PlanRebalance) and creates
  // its guest on the chosen host. Returns the host id, or nullopt when the
  // cluster rejects the interface. VM names must be unique.
  std::optional<int> AdmitVm(const ClusterVmSpec& spec);

  // Advances every host in lock-step to `until`, firing host fault events
  // and the evacuation/migration machinery at their planned instants.
  void Run(TimeNs until);

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  Experiment& host(int i) { return *hosts_[i].exp; }
  HostState host_state(int i) const { return hosts_[i].state; }
  TimeNs now() const { return now_; }
  const ClusterPlacer& placer() const { return placer_; }

  // Where a VM currently runs: host id, or -1 while dark (evacuating,
  // in-flight, or lost). Name must have been admitted.
  struct VmStatus {
    int host = -1;
    int generation = 0;
    bool degraded = false;  // Last landing used degraded fit.
    bool lost = false;      // Evacuation exhausted its attempt budget.
    bool pending = false;   // Queued or in-flight right now.
  };
  VmStatus vm_status(const std::string& name) const;

  // Aggregated counters: the sum of every host's ResilienceCounters plus
  // the federation's own cluster section.
  ResilienceCounters resilience() const;
  void PrintReport(std::ostream& out, const std::string& title) const;

  // ---- Checkpoint / restore (DESIGN.md §10) ----
  // Snapshots the whole federation at the lock-step barrier: one nested
  // per-host image ("host.<i>") per Experiment plus a "federation" section
  // (clock, host states, VM table, fault cursor, cluster counters). Only
  // callable between Run() calls (every host at now_), with no in-flight
  // migrations and no VM that has ever landed a move — those change the
  // per-host guest census, which a rebuilt federation cannot reproduce.
  // Returns "" on success, else a loud error naming the blocker.
  std::string SaveCheckpoint(ckpt::Image* out) const;

  // Restores onto a freshly built federation (same config, same AdmitVm
  // sequence, never Run). Re-applies host availability/capacity to the
  // placer from the restored host states. Never partially applies silently.
  std::string RestoreCheckpoint(const ckpt::Image& image);

 private:
  struct Host {
    std::unique_ptr<Experiment> exp;
    HostState state = HostState::kHealthy;
    // Last applied capacity factor (kThrottle edge); checkpointed so a
    // restore can re-seed the placer's capacity bookkeeping.
    double factor = 1.0;
  };

  struct ClusterVm {
    ClusterVmSpec spec;
    int host = -1;            // -1 while dark.
    GuestOs* guest = nullptr; // Current instance (null while dark).
    int generation = 0;
    bool degraded = false;
    bool lost = false;
  };

  // One expanded host fault edge (an Outage contributes kDown + kUp, a
  // Degrade kThrottle + optional kHeal).
  struct HostEvent {
    enum class Kind { kCrash, kDown, kUp, kThrottle, kHeal };
    TimeNs at = 0;
    Kind kind = Kind::kCrash;
    int host = 0;
    double factor = 1.0;
  };

  // An evacuation or rebalance move in progress. target < 0: still hunting
  // for a home (due = next placement attempt); target >= 0: copy in flight
  // (due = arrival time).
  struct PendingMigration {
    size_t vm = 0;
    TimeNs due = 0;
    TimeNs started = 0;  // When the VM went dark.
    int attempts = 0;
    int target = -1;
    bool degraded = false;
    uint64_t seq = 0;
  };

  static std::vector<ClusterHost> MakeHosts(const FederationConfig& config);
  size_t IndexOf(const std::string& name) const;
  PendingMigration* PendingFor(size_t vm_index);
  VmPlacementRequest RequestFor(const ClusterVmSpec& spec) const;
  TimeNs NextWakeup() const;
  void ProcessDue();
  void ApplyHostEvent(const HostEvent& e);
  void SetHostOnline(int host, bool online);
  void SetHostSpeed(int host, double factor);
  // Tears down the landed instance of vms_[i] (teardown hook, machine-level
  // crash, guest reset); the placer booking is the caller's business.
  void TakeDown(size_t i);
  // Re-routes in-flight copies whose target just failed.
  void AbortInFlightTo(int host);
  void MoveVm(const MigrationStep& step);
  // One step of pendings_[idx]: land an arrived copy, or hunt for a home
  // (place / rebalance / degrade after deadline / backoff / give up).
  void StepPending(size_t idx);
  void Land(size_t idx);
  void TryPlace(size_t idx);

  FederationConfig config_;
  ClusterPlacer placer_;
  std::vector<Host> hosts_;
  std::vector<ClusterVm> vms_;
  std::vector<HostEvent> events_;  // Time-ordered; cursor_ is the next to fire.
  size_t cursor_ = 0;
  std::vector<PendingMigration> pendings_;
  uint64_t seq_ = 0;
  TimeNs now_ = 0;
  Launcher launcher_;
  Teardown teardown_;
  // The federation's slice of ResilienceCounters (cluster section only).
  ResilienceCounters counters_;
};

}  // namespace rtvirt

#endif  // SRC_CLUSTER_FEDERATION_H_

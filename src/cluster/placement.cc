#include "src/cluster/placement.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rtvirt {

ClusterPlacer::ClusterPlacer(std::vector<ClusterHost> hosts, PlacementPolicy policy)
    : hosts_(std::move(hosts)), policy_(policy) {
  for (size_t i = 0; i < hosts_.size(); ++i) {
    assert(hosts_[i].id == static_cast<int>(i) && "host ids must be dense and ordered");
  }
}

Bandwidth ClusterPlacer::HostLoad(int host) const {
  Bandwidth load;
  for (const PlacedVm& vm : vms_) {
    if (vm.host == host) {
      load += vm.request.bandwidth;
    }
  }
  return load;
}

Bandwidth ClusterPlacer::TotalFree() const {
  Bandwidth free;
  for (const ClusterHost& h : hosts_) {
    free += h.capacity() - HostLoad(h.id);
  }
  return free;
}

int ClusterPlacer::ChooseHost(Bandwidth bw) const {
  int best = -1;
  Bandwidth best_free;
  for (const ClusterHost& h : hosts_) {
    Bandwidth free = h.capacity() - HostLoad(h.id);
    if (free < bw) {
      continue;
    }
    switch (policy_) {
      case PlacementPolicy::kFirstFit:
        return h.id;
      case PlacementPolicy::kWorstFit:
        if (best < 0 || free > best_free) {
          best = h.id;
          best_free = free;
        }
        break;
      case PlacementPolicy::kBestFit:
        if (best < 0 || free < best_free) {
          best = h.id;
          best_free = free;
        }
        break;
    }
  }
  return best;
}

std::optional<int> ClusterPlacer::Place(const VmPlacementRequest& request) {
  int host = ChooseHost(request.bandwidth);
  if (host < 0) {
    return std::nullopt;
  }
  vms_.push_back(PlacedVm{request, host});
  return host;
}

bool ClusterPlacer::Remove(const std::string& name) {
  auto it = std::find_if(vms_.begin(), vms_.end(),
                         [&](const PlacedVm& vm) { return vm.request.name == name; });
  if (it == vms_.end()) {
    return false;
  }
  vms_.erase(it);
  return true;
}

std::optional<ClusterPlacer::RebalancePlan> ClusterPlacer::PlanRebalance(
    const VmPlacementRequest& request) {
  if (TotalFree() < request.bandwidth) {
    return std::nullopt;  // Not a fragmentation problem: genuinely full.
  }
  // Try to free room on each candidate target host, cheapest-first: move its
  // cheapest-to-migrate VMs to other hosts until the request fits.
  struct Candidate {
    size_t vm_index;
    TimeNs cost;
  };
  std::optional<RebalancePlan> best;
  for (const ClusterHost& target : hosts_) {
    Bandwidth need = request.bandwidth - (target.capacity() - HostLoad(target.id));
    if (need <= Bandwidth::Zero()) {
      continue;  // Would have been placed directly.
    }
    // Candidates on this host, cheapest migration first.
    std::vector<Candidate> candidates;
    for (size_t i = 0; i < vms_.size(); ++i) {
      if (vms_[i].host == target.id) {
        candidates.push_back(Candidate{i, vms_[i].request.migration.Predict().total_time});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });

    // Tentatively move candidates to other hosts (first-fit among the rest).
    RebalancePlan plan;
    plan.target_host = target.id;
    std::vector<std::pair<size_t, int>> moves;  // (vm index, new host)
    std::vector<Bandwidth> free(hosts_.size());
    for (const ClusterHost& h : hosts_) {
      free[h.id] = h.capacity() - HostLoad(h.id);
    }
    Bandwidth freed;
    for (const Candidate& c : candidates) {
      if (freed >= need) {
        break;
      }
      const PlacedVm& vm = vms_[c.vm_index];
      int dest = -1;
      for (const ClusterHost& h : hosts_) {
        if (h.id != target.id && free[h.id] >= vm.request.bandwidth) {
          dest = h.id;
          break;
        }
      }
      if (dest < 0) {
        continue;  // This VM cannot move anywhere; try the next candidate.
      }
      free[dest] -= vm.request.bandwidth;
      freed += vm.request.bandwidth;
      MigrationStep step;
      step.vm = vm.request.name;
      step.from = target.id;
      step.to = dest;
      step.cost = vm.request.migration.Predict();
      plan.total_migration_time += step.cost.total_time;
      plan.steps.push_back(step);
      moves.emplace_back(c.vm_index, dest);
    }
    if (freed < need) {
      continue;  // Could not free enough on this target.
    }
    if (!best.has_value() || plan.total_migration_time < best->total_migration_time) {
      best = plan;
      // Remember the moves of the best plan by re-deriving them at apply
      // time below (indices are stable: we have not mutated vms_ yet).
    }
  }
  if (!best.has_value()) {
    return std::nullopt;
  }
  // Apply the winning plan.
  for (const MigrationStep& step : best->steps) {
    for (PlacedVm& vm : vms_) {
      if (vm.request.name == step.vm) {
        vm.host = step.to;
        break;
      }
    }
  }
  vms_.push_back(PlacedVm{request, best->target_host});
  return best;
}

}  // namespace rtvirt

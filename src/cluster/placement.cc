#include "src/cluster/placement.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/check.h"

namespace rtvirt {

ClusterPlacer::ClusterPlacer(std::vector<ClusterHost> hosts, PlacementPolicy policy)
    : hosts_(std::move(hosts)), policy_(policy) {
  for (size_t i = 0; i < hosts_.size(); ++i) {
    assert(hosts_[i].id == static_cast<int>(i) && "host ids must be dense and ordered");
  }
  available_.assign(hosts_.size(), true);
  capacity_factor_.assign(hosts_.size(), 1.0);
}

void ClusterPlacer::CheckHostId(int host, const char* who) const {
  RTVIRT_CHECK(host >= 0 && host < static_cast<int>(hosts_.size()),
               "%s: host id %d out of range (cluster has %zu hosts)", who, host,
               hosts_.size());
}

Bandwidth ClusterPlacer::EffectiveCapacity(int host) const {
  double factor = capacity_factor_[host];
  if (factor == 1.0) {
    return hosts_[host].capacity();
  }
  return Bandwidth::FromPpb(
      static_cast<int64_t>(static_cast<double>(hosts_[host].capacity().ppb()) * factor + 0.5));
}

Bandwidth ClusterPlacer::HostLoad(int host) const {
  CheckHostId(host, "HostLoad");
  Bandwidth load;
  for (const PlacedVm& vm : vms_) {
    if (vm.host == host) {
      load += vm.request.bandwidth;
    }
  }
  return load;
}

Bandwidth ClusterPlacer::HostMinLoad(int host) const {
  CheckHostId(host, "HostMinLoad");
  Bandwidth load;
  for (const PlacedVm& vm : vms_) {
    if (vm.host == host) {
      load += vm.request.MinBandwidth();
    }
  }
  return load;
}

Bandwidth ClusterPlacer::HostFree(int host) const {
  CheckHostId(host, "HostFree");
  return EffectiveCapacity(host) - HostLoad(host);
}

Bandwidth ClusterPlacer::LoadFor(int host, bool degraded_fit) const {
  return degraded_fit ? HostMinLoad(host) : HostLoad(host);
}

void ClusterPlacer::SetHostAvailable(int host, bool available) {
  CheckHostId(host, "SetHostAvailable");
  available_[host] = available;
}

void ClusterPlacer::SetHostCapacityFactor(int host, double factor) {
  CheckHostId(host, "SetHostCapacityFactor");
  RTVIRT_CHECK(factor > 0.0 && factor <= 1.0,
               "SetHostCapacityFactor: host %d factor outside (0, 1]", host);
  capacity_factor_[host] = factor;
}

bool ClusterPlacer::HostAvailable(int host) const {
  CheckHostId(host, "HostAvailable");
  return available_[host];
}

Bandwidth ClusterPlacer::TotalFree() const {
  Bandwidth free;
  for (const ClusterHost& h : hosts_) {
    if (!available_[h.id]) {
      continue;
    }
    free += EffectiveCapacity(h.id) - HostLoad(h.id);
  }
  return free;
}

int ClusterPlacer::ChooseHost(const VmPlacementRequest& request, bool degraded_fit) const {
  Bandwidth bw = degraded_fit ? request.MinBandwidth() : request.bandwidth;
  int best = -1;
  Bandwidth best_free;
  for (const ClusterHost& h : hosts_) {
    if (!available_[h.id]) {
      continue;
    }
    Bandwidth free = EffectiveCapacity(h.id) - LoadFor(h.id, degraded_fit);
    if (free < bw) {
      continue;
    }
    switch (policy_) {
      case PlacementPolicy::kFirstFit:
        return h.id;
      case PlacementPolicy::kWorstFit:
        if (best < 0 || free > best_free) {
          best = h.id;
          best_free = free;
        }
        break;
      case PlacementPolicy::kBestFit:
        if (best < 0 || free < best_free) {
          best = h.id;
          best_free = free;
        }
        break;
    }
  }
  return best;
}

std::optional<int> ClusterPlacer::Place(const VmPlacementRequest& request, bool degraded_fit) {
  int host = ChooseHost(request, degraded_fit);
  if (host < 0) {
    return std::nullopt;
  }
  vms_.push_back(PlacedVm{request, host});
  return host;
}

bool ClusterPlacer::Remove(const std::string& name) {
  auto it = std::find_if(vms_.begin(), vms_.end(),
                         [&](const PlacedVm& vm) { return vm.request.name == name; });
  if (it == vms_.end()) {
    return false;
  }
  vms_.erase(it);
  return true;
}

std::optional<ClusterPlacer::RebalancePlan> ClusterPlacer::PlanRebalance(
    const VmPlacementRequest& request, bool degraded_fit) {
  Bandwidth req_bw = degraded_fit ? request.MinBandwidth() : request.bandwidth;
  Bandwidth total_free;
  for (const ClusterHost& h : hosts_) {
    if (available_[h.id]) {
      total_free += EffectiveCapacity(h.id) - LoadFor(h.id, degraded_fit);
    }
  }
  if (total_free < req_bw) {
    return std::nullopt;  // Not a fragmentation problem: genuinely full.
  }
  // Try to free room on each candidate target host, cheapest-first: move its
  // cheapest-to-migrate VMs to other hosts until the request fits.
  struct Candidate {
    size_t vm_index;
    TimeNs cost;
  };
  auto vm_bw = [&](const PlacedVm& vm) {
    return degraded_fit ? vm.request.MinBandwidth() : vm.request.bandwidth;
  };
  std::optional<RebalancePlan> best;
  for (const ClusterHost& target : hosts_) {
    if (!available_[target.id]) {
      continue;
    }
    Bandwidth need = req_bw - (EffectiveCapacity(target.id) - LoadFor(target.id, degraded_fit));
    if (need <= Bandwidth::Zero()) {
      continue;  // Would have been placed directly.
    }
    // Candidates on this host, cheapest migration first.
    std::vector<Candidate> candidates;
    for (size_t i = 0; i < vms_.size(); ++i) {
      if (vms_[i].host == target.id) {
        candidates.push_back(Candidate{i, vms_[i].request.migration.Predict().total_time});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) { return a.cost < b.cost; });

    // Tentatively move candidates to other hosts (first-fit among the rest).
    RebalancePlan plan;
    plan.target_host = target.id;
    std::vector<std::pair<size_t, int>> moves;  // (vm index, new host)
    std::vector<Bandwidth> free(hosts_.size());
    for (const ClusterHost& h : hosts_) {
      free[h.id] = EffectiveCapacity(h.id) - LoadFor(h.id, degraded_fit);
    }
    Bandwidth freed;
    for (const Candidate& c : candidates) {
      if (freed >= need) {
        break;
      }
      const PlacedVm& vm = vms_[c.vm_index];
      int dest = -1;
      for (const ClusterHost& h : hosts_) {
        if (h.id != target.id && available_[h.id] && free[h.id] >= vm_bw(vm)) {
          dest = h.id;
          break;
        }
      }
      if (dest < 0) {
        continue;  // This VM cannot move anywhere; try the next candidate.
      }
      free[dest] -= vm_bw(vm);
      freed += vm_bw(vm);
      MigrationStep step;
      step.vm = vm.request.name;
      step.from = target.id;
      step.to = dest;
      step.cost = vm.request.migration.Predict();
      plan.total_migration_time += step.cost.total_time;
      plan.steps.push_back(step);
      moves.emplace_back(c.vm_index, dest);
    }
    if (freed < need) {
      continue;  // Could not free enough on this target.
    }
    if (!best.has_value() || plan.total_migration_time < best->total_migration_time) {
      best = plan;
      // Remember the moves of the best plan by re-deriving them at apply
      // time below (indices are stable: we have not mutated vms_ yet).
    }
  }
  if (!best.has_value()) {
    return std::nullopt;
  }
  // Apply the winning plan.
  for (const MigrationStep& step : best->steps) {
    for (PlacedVm& vm : vms_) {
      if (vm.request.name == step.vm) {
        vm.host = step.to;
        break;
      }
    }
  }
  vms_.push_back(PlacedVm{request, best->target_host});
  return best;
}

}  // namespace rtvirt

#include "src/cluster/federation.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/metrics/report.h"

namespace rtvirt {

std::vector<ClusterHost> Federation::MakeHosts(const FederationConfig& config) {
  RTVIRT_CHECK(config.num_hosts > 0, "federation needs at least one host (got %d)",
               config.num_hosts);
  RTVIRT_CHECK(config.pcpus_per_host > 0, "hosts need at least one pcpu (got %d)",
               config.pcpus_per_host);
  std::vector<ClusterHost> hosts;
  hosts.reserve(static_cast<size_t>(config.num_hosts));
  for (int i = 0; i < config.num_hosts; ++i) {
    hosts.push_back(ClusterHost{i, config.pcpus_per_host});
  }
  return hosts;
}

Federation::Federation(FederationConfig config, ExperimentConfig host_template)
    : config_(std::move(config)), placer_(MakeHosts(config_), config_.policy) {
  std::string err =
      host_template.faults.Validate(config_.pcpus_per_host, -1, config_.num_hosts);
  RTVIRT_CHECK(err.empty(), "invalid federation FaultPlan: %s", err.c_str());
  std::vector<FaultPlan::HostFault> host_faults = host_template.faults.host_faults;
  host_template.faults.host_faults.clear();
  host_template.machine.num_pcpus = config_.pcpus_per_host;
  uint64_t base_seed = host_template.seed;
  for (int i = 0; i < config_.num_hosts; ++i) {
    ExperimentConfig cfg = host_template;
    // Decorrelate the per-host seeds (workload + fault RNG streams) while
    // keeping the whole cluster a pure function of the template seed.
    cfg.seed = base_seed + 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(i);
    cfg.faults.seed = cfg.seed ^ 0xC2B2AE3D27D4EB4Full;
    hosts_.push_back(Host{std::make_unique<Experiment>(std::move(cfg)), HostState::kHealthy});
  }
  // Expand the host fault plan into time-ordered state-change edges.
  for (const FaultPlan::HostFault& f : host_faults) {
    switch (f.kind) {
      case FaultPlan::HostFault::Kind::kCrash:
        events_.push_back(HostEvent{f.at, HostEvent::Kind::kCrash, f.host, 1.0});
        break;
      case FaultPlan::HostFault::Kind::kOutage:
        events_.push_back(HostEvent{f.at, HostEvent::Kind::kDown, f.host, 1.0});
        events_.push_back(HostEvent{f.until, HostEvent::Kind::kUp, f.host, 1.0});
        break;
      case FaultPlan::HostFault::Kind::kDegrade:
        events_.push_back(HostEvent{f.at, HostEvent::Kind::kThrottle, f.host, f.factor});
        if (f.until < kTimeNever) {
          events_.push_back(HostEvent{f.until, HostEvent::Kind::kHeal, f.host, 1.0});
        }
        break;
    }
  }
  // Stable: simultaneous edges fire in plan order, deterministically.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const HostEvent& a, const HostEvent& b) { return a.at < b.at; });
}

Federation::~Federation() = default;

size_t Federation::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < vms_.size(); ++i) {
    if (vms_[i].spec.name == name) {
      return i;
    }
  }
  RTVIRT_CHECK(false, "federation knows no VM named '%s'", name.c_str());
  return vms_.size();
}

Federation::PendingMigration* Federation::PendingFor(size_t vm_index) {
  for (PendingMigration& pm : pendings_) {
    if (pm.vm == vm_index) {
      return &pm;
    }
  }
  return nullptr;
}

VmPlacementRequest Federation::RequestFor(const ClusterVmSpec& spec) const {
  VmPlacementRequest req;
  req.name = spec.name;
  req.bandwidth = spec.bandwidth;
  req.min_bandwidth = spec.min_bandwidth;
  req.migration = spec.migration;
  return req;
}

std::optional<int> Federation::AdmitVm(const ClusterVmSpec& spec) {
  for (const ClusterVm& vm : vms_) {
    RTVIRT_CHECK(vm.spec.name != spec.name, "duplicate federation VM name '%s'",
                 spec.name.c_str());
  }
  RTVIRT_CHECK(spec.min_bandwidth.ppb() < 0 || (spec.min_bandwidth > Bandwidth::Zero() &&
                                                spec.min_bandwidth <= spec.bandwidth),
               "VM '%s': min_bandwidth must be in (0, bandwidth]", spec.name.c_str());
  VmPlacementRequest req = RequestFor(spec);
  std::optional<int> host = placer_.Place(req);
  if (!host.has_value()) {
    if (auto plan = placer_.PlanRebalance(req); plan.has_value()) {
      ++counters_.migration_rebalances;
      for (const MigrationStep& step : plan->steps) {
        MoveVm(step);
      }
      host = plan->target_host;
    }
  }
  if (!host.has_value()) {
    ++counters_.cluster_vms_rejected;
    return std::nullopt;
  }
  ++counters_.cluster_vms_admitted;
  vms_.push_back(ClusterVm{spec});
  size_t idx = vms_.size() - 1;
  vms_[idx].host = *host;
  vms_[idx].guest = hosts_[*host].exp->AddGuest(spec.name, spec.vcpus, spec.guest);
  if (launcher_) {
    launcher_(*hosts_[*host].exp, vms_[idx].guest, vms_[idx].spec, *host, 0);
  }
  return host;
}

TimeNs Federation::NextWakeup() const {
  TimeNs next = kTimeNever;
  if (cursor_ < events_.size()) {
    next = std::min(next, events_[cursor_].at);
  }
  for (const PendingMigration& pm : pendings_) {
    next = std::min(next, pm.due);
  }
  return next;
}

void Federation::Run(TimeNs until) {
  RTVIRT_CHECK(until >= now_, "federation time cannot go backwards");
  while (true) {
    TimeNs next = std::min(until, NextWakeup());
    // Lock-step advance: hosts interact only through federation actions, so
    // between federation events the N simulators are independent.
    for (Host& h : hosts_) {
      h.exp->Run(next);
    }
    now_ = next;
    ProcessDue();
    if (now_ >= until) {
      break;
    }
  }
}

void Federation::ProcessDue() {
  bool progress = true;
  while (progress) {
    progress = false;
    while (cursor_ < events_.size() && events_[cursor_].at <= now_) {
      ApplyHostEvent(events_[cursor_]);
      ++cursor_;
      progress = true;
    }
    // Due pendings fire in (due, seq) order, one at a time: a step may
    // mutate the queue (retry reschedules itself, a rebalance adds moves).
    size_t best = pendings_.size();
    for (size_t i = 0; i < pendings_.size(); ++i) {
      const PendingMigration& pm = pendings_[i];
      if (pm.due > now_) {
        continue;
      }
      if (best == pendings_.size() || pm.due < pendings_[best].due ||
          (pm.due == pendings_[best].due && pm.seq < pendings_[best].seq)) {
        best = i;
      }
    }
    if (best < pendings_.size()) {
      StepPending(best);
      progress = true;
    }
  }
}

void Federation::SetHostOnline(int host, bool online) {
  Machine& m = hosts_[host].exp->machine();
  for (int p = 0; p < m.num_pcpus(); ++p) {
    m.SetPcpuOnline(p, online);
  }
}

void Federation::SetHostSpeed(int host, double factor) {
  Machine& m = hosts_[host].exp->machine();
  for (int p = 0; p < m.num_pcpus(); ++p) {
    m.SetPcpuSpeed(p, factor);
  }
}

void Federation::TakeDown(size_t i) {
  ClusterVm& vm = vms_[i];
  if (teardown_) {
    teardown_(vm.spec, vm.host);
  }
  hosts_[vm.host].exp->CrashGuest(vm.guest);
  vm.guest = nullptr;
  vm.host = -1;
}

void Federation::AbortInFlightTo(int host) {
  for (PendingMigration& pm : pendings_) {
    if (pm.target != host) {
      continue;
    }
    // The copy raced the target's failure: drop the booking, restart the
    // hunt immediately (the backoff clock restarts with the new attempt).
    placer_.Remove(vms_[pm.vm].spec.name);
    pm.target = -1;
    pm.due = now_;
    ++counters_.migration_aborts;
  }
}

void Federation::ApplyHostEvent(const HostEvent& e) {
  const bool ft = config_.fault_tolerance.enabled;
  Host& h = hosts_[e.host];
  switch (e.kind) {
    case HostEvent::Kind::kCrash:
    case HostEvent::Kind::kDown: {
      bool crash = e.kind == HostEvent::Kind::kCrash;
      h.state = crash ? HostState::kCrashed : HostState::kDown;
      if (crash) {
        ++counters_.host_crashes;
      } else {
        ++counters_.host_outages;
      }
      SetHostOnline(e.host, false);
      if (!ft) {
        break;  // Frozen: the hardware fails, nobody responds.
      }
      placer_.SetHostAvailable(e.host, false);
      AbortInFlightTo(e.host);
      for (size_t i = 0; i < vms_.size(); ++i) {
        if (vms_[i].host != e.host) {
          continue;
        }
        TakeDown(i);
        placer_.Remove(vms_[i].spec.name);
        ++counters_.evacuations;
        pendings_.push_back(PendingMigration{i, now_, now_, 0, -1, false, seq_++});
      }
      break;
    }
    case HostEvent::Kind::kUp:
      h.state = HostState::kHealthy;
      ++counters_.host_heals;
      SetHostOnline(e.host, true);
      if (ft) {
        placer_.SetHostAvailable(e.host, true);
      }
      break;
    case HostEvent::Kind::kThrottle:
      h.state = HostState::kDegraded;
      h.factor = e.factor;
      ++counters_.host_degrades;
      SetHostSpeed(e.host, e.factor);
      if (ft) {
        placer_.SetHostCapacityFactor(e.host, e.factor);
      }
      break;
    case HostEvent::Kind::kHeal:
      h.state = HostState::kHealthy;
      h.factor = 1.0;
      ++counters_.host_heals;
      SetHostSpeed(e.host, 1.0);
      if (ft) {
        placer_.SetHostCapacityFactor(e.host, 1.0);
      }
      break;
  }
}

void Federation::MoveVm(const MigrationStep& step) {
  size_t i = IndexOf(step.vm);
  ClusterVm& vm = vms_[i];
  ++counters_.rebalance_moves;
  if (PendingMigration* pm = PendingFor(i)) {
    // The rebalancer relocated a booking whose copy is still in flight:
    // redirect the copy; the blackout already being paid keeps running.
    pm->target = step.to;
    return;
  }
  // Live move of a landed VM: blackout is the predicted stop-and-copy
  // downtime only (pre-copy rounds overlap with execution).
  TakeDown(i);
  TimeNs blackout = std::max<TimeNs>(step.cost.downtime, 1);
  pendings_.push_back(
      PendingMigration{i, now_ + blackout, now_, 0, step.to, vm.degraded, seq_++});
}

void Federation::StepPending(size_t idx) {
  if (pendings_[idx].target >= 0) {
    Land(idx);
  } else {
    TryPlace(idx);
  }
}

void Federation::Land(size_t idx) {
  PendingMigration pm = pendings_[idx];
  pendings_.erase(pendings_.begin() + static_cast<ptrdiff_t>(idx));
  ClusterVm& vm = vms_[pm.vm];
  vm.host = pm.target;
  ++vm.generation;
  vm.degraded = pm.degraded;
  vm.guest = hosts_[vm.host].exp->AddGuest(vm.spec.name, vm.spec.vcpus, vm.spec.guest);
  ++counters_.migration_successes;
  if (pm.degraded) {
    ++counters_.degraded_placements;
  }
  counters_.vm_unavailable_ns += now_ - pm.started;
  if (launcher_) {
    launcher_(*hosts_[vm.host].exp, vm.guest, vm.spec, vm.host, vm.generation);
  }
}

void Federation::TryPlace(size_t idx) {
  PendingMigration& pm = pendings_[idx];
  ClusterVm& vm = vms_[pm.vm];
  const FederationConfig::FaultTolerance& ft = config_.fault_tolerance;
  TimeNs deadline = std::min(ft.migration_deadline, vm.spec.evacuation_deadline);
  if (!pm.degraded && now_ - pm.started >= deadline) {
    pm.degraded = true;
  }
  ++counters_.migration_attempts;
  VmPlacementRequest req = RequestFor(vm.spec);
  std::optional<int> host = placer_.Place(req, pm.degraded);
  if (!host.has_value()) {
    if (auto plan = placer_.PlanRebalance(req, pm.degraded); plan.has_value()) {
      ++counters_.migration_rebalances;
      for (const MigrationStep& step : plan->steps) {
        MoveVm(step);
      }
      host = plan->target_host;
    }
  }
  if (host.has_value()) {
    // Home found; start the copy. A cold restore off a failed host pays the
    // full predicted migration time (every pre-copy round plus stop-and-
    // copy) as its reservation-unavailability window.
    pm.target = *host;
    pm.due = now_ + std::max<TimeNs>(vm.spec.migration.Predict().total_time, 1);
    return;
  }
  ++pm.attempts;
  if (pm.attempts >= ft.max_attempts) {
    ++counters_.evacuations_unresolved;
    vm.lost = true;
    pendings_.erase(pendings_.begin() + static_cast<ptrdiff_t>(idx));
    return;
  }
  ++counters_.migration_retries;
  TimeNs backoff = ft.backoff_initial;
  for (int i = 1; i < pm.attempts && backoff < ft.backoff_cap; ++i) {
    backoff = static_cast<TimeNs>(static_cast<double>(backoff) * ft.backoff_factor);
  }
  backoff = std::min(backoff, ft.backoff_cap);
  backoff = std::max<TimeNs>(backoff, 1);
  pm.due = now_ + backoff;
}

Federation::VmStatus Federation::vm_status(const std::string& name) const {
  size_t i = IndexOf(name);
  const ClusterVm& vm = vms_[i];
  VmStatus s;
  s.host = vm.host;
  s.generation = vm.generation;
  s.degraded = vm.degraded;
  s.lost = vm.lost;
  for (const PendingMigration& pm : pendings_) {
    if (pm.vm == i) {
      s.pending = true;
    }
  }
  return s;
}

ResilienceCounters Federation::resilience() const {
  ResilienceCounters total = counters_;
  for (const Host& h : hosts_) {
    AccumulateResilience(total, h.exp->resilience());
  }
  return total;
}

void Federation::PrintReport(std::ostream& out, const std::string& title) const {
  PrintExperimentReport(out, title, resilience());
}

namespace {

// The cluster slice of ResilienceCounters, in declaration order.
void SaveClusterCounters(ckpt::Writer& w, const ResilienceCounters& c) {
  w.U64(c.host_crashes);
  w.U64(c.host_outages);
  w.U64(c.host_degrades);
  w.U64(c.host_heals);
  w.U64(c.cluster_vms_admitted);
  w.U64(c.cluster_vms_rejected);
  w.U64(c.evacuations);
  w.U64(c.migration_attempts);
  w.U64(c.migration_retries);
  w.U64(c.migration_rebalances);
  w.U64(c.rebalance_moves);
  w.U64(c.migration_aborts);
  w.U64(c.migration_successes);
  w.U64(c.degraded_placements);
  w.U64(c.evacuations_unresolved);
  w.I64(c.vm_unavailable_ns);
}

void RestoreClusterCounters(ckpt::Reader& r, ResilienceCounters* c) {
  c->host_crashes = r.U64();
  c->host_outages = r.U64();
  c->host_degrades = r.U64();
  c->host_heals = r.U64();
  c->cluster_vms_admitted = r.U64();
  c->cluster_vms_rejected = r.U64();
  c->evacuations = r.U64();
  c->migration_attempts = r.U64();
  c->migration_retries = r.U64();
  c->migration_rebalances = r.U64();
  c->rebalance_moves = r.U64();
  c->migration_aborts = r.U64();
  c->migration_successes = r.U64();
  c->degraded_placements = r.U64();
  c->evacuations_unresolved = r.U64();
  c->vm_unavailable_ns = r.I64();
}

}  // namespace

std::string Federation::SaveCheckpoint(ckpt::Image* out) const {
  if (!pendings_.empty()) {
    return "federation: checkpoint requires no in-flight migrations (" +
           std::to_string(pendings_.size()) + " pending)";
  }
  for (const ClusterVm& vm : vms_) {
    // A landed move changed a host's guest census, which a rebuilt
    // federation (same AdmitVm sequence) cannot reproduce; a dark VM would
    // additionally leave the placer's bookings unreconstructable.
    if (vm.generation != 0 || vm.lost || vm.host < 0 || vm.guest == nullptr) {
      return "federation: checkpoint after a VM move is unsupported (vm '" + vm.spec.name +
             "': generation " + std::to_string(vm.generation) +
             (vm.lost ? ", lost" : vm.host < 0 ? ", dark" : "") + ")";
    }
  }
  for (size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].exp->sim().Now() != now_) {
      return "federation: host " + std::to_string(i) +
             " is not at the lock-step barrier (host t=" +
             std::to_string(hosts_[i].exp->sim().Now()) + "ns, federation t=" +
             std::to_string(now_) + "ns)";
    }
  }
  out->sections.clear();
  {
    ckpt::Writer w;
    w.I64(now_);
    w.U64(cursor_);
    w.U64(seq_);
    w.U32(static_cast<uint32_t>(hosts_.size()));
    for (const Host& h : hosts_) {
      w.U32(static_cast<uint32_t>(h.state));
      w.F64(h.factor);
    }
    w.U32(static_cast<uint32_t>(vms_.size()));
    for (const ClusterVm& vm : vms_) {
      w.Str(vm.spec.name);
      w.I64(vm.host);
      w.Bool(vm.degraded);
    }
    SaveClusterCounters(w, counters_);
    out->sections.push_back({"federation", w.Take()});
  }
  for (size_t i = 0; i < hosts_.size(); ++i) {
    ckpt::Image host_image;
    std::string err = hosts_[i].exp->SaveCheckpoint(&host_image);
    if (!err.empty()) {
      return "federation: host " + std::to_string(i) + ": " + err;
    }
    out->sections.push_back({"host." + std::to_string(i), host_image.Serialize()});
  }
  return "";
}

std::string Federation::RestoreCheckpoint(const ckpt::Image& image) {
  if (image.sections.size() != hosts_.size() + 1) {
    return "federation: component count mismatch (image has " +
           std::to_string(image.sections.size()) + " sections, this federation expects " +
           std::to_string(hosts_.size() + 1) + ")";
  }
  const ckpt::Section* fed = image.Find("federation");
  if (fed == nullptr) {
    return "federation: missing section 'federation'";
  }
  ckpt::Reader r(fed->bytes);
  TimeNs saved_now = r.I64();
  uint64_t saved_cursor = r.U64();
  uint64_t saved_seq = r.U64();
  uint32_t n_hosts = r.U32();
  if (!r.ok() || n_hosts != hosts_.size()) {
    return "federation: host count mismatch (image has " + std::to_string(n_hosts) +
           ", this federation has " + std::to_string(hosts_.size()) + ")";
  }
  std::vector<HostState> states(hosts_.size());
  std::vector<double> factors(hosts_.size());
  for (size_t i = 0; i < hosts_.size(); ++i) {
    uint32_t s = r.U32();
    if (s > static_cast<uint32_t>(HostState::kCrashed)) {
      return "federation: host[" + std::to_string(i) + "] has invalid state " +
             std::to_string(s);
    }
    states[i] = static_cast<HostState>(s);
    factors[i] = r.F64();
  }
  uint32_t n_vms = r.U32();
  if (!r.ok() || n_vms != vms_.size()) {
    return "federation: VM count mismatch (image has " + std::to_string(n_vms) +
           ", this federation admitted " + std::to_string(vms_.size()) + ")";
  }
  std::vector<bool> degraded(vms_.size());
  for (size_t i = 0; i < vms_.size(); ++i) {
    std::string name = r.Str();
    TimeNs host = r.I64();
    degraded[i] = r.Bool();
    if (!r.ok()) {
      return "federation: truncated section 'federation' at vm " + std::to_string(i);
    }
    if (name != vms_[i].spec.name) {
      return "federation: vm[" + std::to_string(i) + "] name mismatch (image '" + name +
             "', this federation '" + vms_[i].spec.name +
             "') — AdmitVm order diverged from the saving build";
    }
    if (host != vms_[i].host) {
      return "federation: vm '" + name + "' placement mismatch (image host " +
             std::to_string(host) + ", rebuilt host " + std::to_string(vms_[i].host) + ")";
    }
  }
  RestoreClusterCounters(r, &counters_);
  if (!r.ok() || !r.AtEnd()) {
    return "federation: malformed section 'federation'";
  }
  for (size_t i = 0; i < hosts_.size(); ++i) {
    const std::string name = "host." + std::to_string(i);
    const ckpt::Section* section = image.Find(name);
    if (section == nullptr) {
      return "federation: missing section '" + name + "'";
    }
    ckpt::Image host_image;
    std::string err = ckpt::Image::Parse(section->bytes, &host_image);
    if (!err.empty()) {
      return "federation: host " + std::to_string(i) + ": " + err;
    }
    err = hosts_[i].exp->RestoreCheckpoint(host_image);
    if (!err.empty()) {
      return "federation: host " + std::to_string(i) + ": " + err;
    }
  }
  now_ = saved_now;
  cursor_ = saved_cursor;
  seq_ = saved_seq;
  const bool ft = config_.fault_tolerance.enabled;
  for (size_t i = 0; i < hosts_.size(); ++i) {
    hosts_[i].state = states[i];
    hosts_[i].factor = factors[i];
    // The machines restored their own PCPU online/speed state; only the
    // placer's availability/capacity view needs re-seeding here.
    if (ft) {
      bool online = states[i] == HostState::kHealthy || states[i] == HostState::kDegraded;
      placer_.SetHostAvailable(static_cast<int>(i), online);
      placer_.SetHostCapacityFactor(static_cast<int>(i), factors[i]);
    }
  }
  for (size_t i = 0; i < vms_.size(); ++i) {
    vms_[i].degraded = degraded[i];
  }
  return "";
}

}  // namespace rtvirt

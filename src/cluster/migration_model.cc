#include "src/cluster/migration_model.h"

#include <algorithm>

namespace rtvirt {

MigrationCostModel::Estimate MigrationCostModel::Predict() const {
  Estimate est;
  if (memory_gb <= 0 || link_gbps <= 0) {
    return est;
  }
  auto seconds_to_ns = [](double s) { return static_cast<TimeNs>(s * kNsPerSec); };

  if (dirty_rate_gbps >= link_gbps) {
    // Pre-copy cannot converge: one stop-and-copy of everything.
    est.downtime = seconds_to_ns(memory_gb * 8 / (link_gbps));
    est.total_time = est.downtime;
    est.rounds = 0;
    return est;
  }

  double rho = dirty_rate_gbps / link_gbps;
  double remaining_gb = memory_gb;
  double total_seconds = 0;
  int round = 0;
  while (remaining_gb > downtime_target_gb && round < max_rounds) {
    total_seconds += remaining_gb * 8 / link_gbps;  // Gb over Gbps.
    remaining_gb *= rho;  // Pages dirtied while this round transferred.
    ++round;
  }
  est.rounds = round;
  est.downtime = seconds_to_ns(remaining_gb * 8 / link_gbps);
  est.total_time = seconds_to_ns(total_seconds) + est.downtime;
  return est;
}

}  // namespace rtvirt

// Live VM migration cost model (paper section 6, citing Wu & Zhao,
// "Performance modeling of virtual machine live migration", CLOUD 2011).
//
// Pre-copy live migration transfers the VM's memory iteratively: round 0
// copies everything; each later round copies the pages dirtied during the
// previous round. With dirty rate D and link bandwidth B, each round shrinks
// the remaining data by a factor rho = D/B (for D < B); the final stop-and-
// copy round is the downtime. The placement layer uses this model to decide
// whether a rebalancing migration is worth its disruption.

#ifndef SRC_CLUSTER_MIGRATION_MODEL_H_
#define SRC_CLUSTER_MIGRATION_MODEL_H_

#include "src/common/time.h"

namespace rtvirt {

struct MigrationCostModel {
  double memory_gb = 4.0;       // VM memory footprint.
  double dirty_rate_gbps = 1.0;  // Rate at which the guest dirties memory.
  double link_gbps = 10.0;       // Migration link bandwidth.
  double downtime_target_gb = 0.05;  // Stop-and-copy when the residual is below this.
  int max_rounds = 30;

  struct Estimate {
    TimeNs total_time = 0;  // First byte to resume on the target.
    TimeNs downtime = 0;    // Stop-and-copy pause.
    int rounds = 0;         // Pre-copy iterations (excluding stop-and-copy).
  };

  // Predicts the migration cost. If the link cannot outrun the dirty rate,
  // pre-copy never converges and the model falls back to a single
  // stop-and-copy of the full memory (maximal downtime).
  Estimate Predict() const;
};

}  // namespace rtvirt

#endif  // SRC_CLUSTER_MIGRATION_MODEL_H_

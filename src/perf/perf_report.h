// Schema-versioned BENCH_*.json perf reports.
//
// A PerfReport is a flat list of named metrics, each carrying its unit, its
// regression direction (higher- or lower-is-better) and a per-metric
// relative tolerance. The JSON layout (schema_version 1):
//
//   {
//     "schema_version": 1,
//     "suite": "perf_suite",
//     "meta": {"build": "Release"},
//     "metrics": [
//       {"name": "tab6_shape.calendar.events_per_sec", "value": 1.2e7,
//        "unit": "events/s", "higher_is_better": true, "tolerance": 0.4}
//     ]
//   }
//
// The same code parses the files back (a minimal JSON subset reader — just
// enough for this schema plus whitespace), so the perf_gate comparator can
// diff a fresh run against the committed baseline without third-party JSON
// dependencies.

#ifndef SRC_PERF_PERF_REPORT_H_
#define SRC_PERF_PERF_REPORT_H_

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rtvirt::perf {

inline constexpr int kPerfSchemaVersion = 1;

struct PerfMetric {
  std::string name;
  double value = 0;
  std::string unit;
  bool higher_is_better = false;
  // Relative tolerance the gate allows in the regressing direction before it
  // fails; the gate multiplies it by a caller-chosen scale (3x in CI).
  double tolerance = 0.35;
};

struct PerfReport {
  int schema_version = kPerfSchemaVersion;
  std::string suite;
  std::map<std::string, std::string> meta;  // Freeform context, sorted.
  std::vector<PerfMetric> metrics;

  void Add(const std::string& name, double value, const std::string& unit,
           bool higher_is_better, double tolerance);
  const PerfMetric* Find(const std::string& name) const;

  void Write(std::ostream& out) const;
  // Returns false (and reports on stderr) when the file cannot be written.
  bool WriteFile(const std::string& path) const;

  static std::optional<PerfReport> Parse(std::istream& in);
  static std::optional<PerfReport> ParseFile(const std::string& path);
};

}  // namespace rtvirt::perf

#endif  // SRC_PERF_PERF_REPORT_H_

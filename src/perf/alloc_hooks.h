// Process-wide allocation counters.
//
// alloc_hooks.cc replaces the global operator new/delete family with thin
// wrappers over malloc/free that bump relaxed atomic counters, so any phase
// of a run can be bracketed with two snapshots to get its exact allocation
// count — the mechanism behind the perf suite's "steady state allocates
// nothing" assertion and the warm-up vs steady split in ResilienceCounters.
// The hooks are semantically transparent (ASan still intercepts the
// underlying malloc) and cost one relaxed increment per allocation.

#ifndef SRC_PERF_ALLOC_HOOKS_H_
#define SRC_PERF_ALLOC_HOOKS_H_

#include <cstdint>

namespace rtvirt::perf {

struct AllocSnapshot {
  uint64_t allocs = 0;  // operator new calls since process start
  uint64_t frees = 0;   // operator delete calls on non-null pointers
  uint64_t bytes = 0;   // bytes requested through operator new

  uint64_t Live() const { return allocs - frees; }
};

// Current counter values. All zeros if the hooks did not get linked in
// (see AllocHooksActive()).
AllocSnapshot AllocNow();

// True when the replacement operators are actually the ones in use. Callers
// that assert on allocation counts should check this first instead of
// silently passing on zero deltas.
bool AllocHooksActive();

}  // namespace rtvirt::perf

#endif  // SRC_PERF_ALLOC_HOOKS_H_

// Baseline-vs-fresh perf comparison: the logic behind the perf_gate tool.
//
// Every metric in the baseline must exist in the fresh report and stay
// within its tolerance band, widened by a caller-chosen scale (CI uses 3x
// for runner noise; local re-runs use 1x):
//
//   higher_is_better:  fresh >= base * (1 - tolerance * scale)
//   lower_is_better:   fresh <= base * (1 + tolerance * scale)
//
// A zero baseline on a lower-is-better metric is an exact gate at every
// scale — that is how "steady-state allocations/op == 0" stays enforced even
// under the generous CI scale. When the widened band degenerates (lower
// bound <= 0 on a higher-is-better metric), the metric is waived and
// reported as such rather than silently passed off as checked.

#ifndef SRC_PERF_PERF_GATE_H_
#define SRC_PERF_PERF_GATE_H_

#include <iosfwd>

#include "src/perf/perf_report.h"

namespace rtvirt::perf {

struct GateOptions {
  double tolerance_scale = 1.0;
};

struct GateResult {
  bool ok = true;
  int checked = 0;
  int regressed = 0;
  int waived = 0;   // Tolerance band degenerated at this scale.
  int missing = 0;  // Baseline metric absent from the fresh report.
};

// Prints a per-metric verdict table to `log` and returns the totals.
GateResult ComparePerf(const PerfReport& baseline, const PerfReport& fresh,
                       const GateOptions& options, std::ostream& log);

}  // namespace rtvirt::perf

#endif  // SRC_PERF_PERF_GATE_H_

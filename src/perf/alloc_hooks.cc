#include "src/perf/alloc_hooks.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Constant-initialized so counting is safe from the very first allocation,
// including ones made before main() by static initializers.
constinit std::atomic<uint64_t> g_allocs{0};
constinit std::atomic<uint64_t> g_frees{0};
constinit std::atomic<uint64_t> g_bytes{0};

void* CountedAlloc(std::size_t size) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  return p;
}

void* CountedAllocAligned(std::size_t size, std::size_t align) noexcept {
  // aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align);
  if (p != nullptr) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  return p;
}

void* AllocOrHandler(std::size_t size) {
  for (;;) {
    void* p = CountedAlloc(size);
    if (p != nullptr) {
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      throw std::bad_alloc();
    }
    handler();
  }
}

void* AllocOrHandlerAligned(std::size_t size, std::size_t align) {
  for (;;) {
    void* p = CountedAllocAligned(size, align);
    if (p != nullptr) {
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      throw std::bad_alloc();
    }
    handler();
  }
}

void CountedFree(void* p) noexcept {
  if (p != nullptr) {
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
  }
}

}  // namespace

void* operator new(std::size_t size) { return AllocOrHandler(size); }
void* operator new[](std::size_t size) { return AllocOrHandler(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return AllocOrHandlerAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return AllocOrHandlerAligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { CountedFree(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { CountedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  CountedFree(p);
}

namespace rtvirt::perf {

AllocSnapshot AllocNow() {
  AllocSnapshot s;
  s.allocs = g_allocs.load(std::memory_order_relaxed);
  s.frees = g_frees.load(std::memory_order_relaxed);
  s.bytes = g_bytes.load(std::memory_order_relaxed);
  return s;
}

bool AllocHooksActive() {
  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  delete[] new char[1];
  return g_allocs.load(std::memory_order_relaxed) > before;
}

}  // namespace rtvirt::perf

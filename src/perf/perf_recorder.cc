#include "src/perf/perf_recorder.h"

#include <ctime>
#include <fstream>
#include <sstream>
#include <utility>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "src/common/check.h"

namespace rtvirt::perf {

uint64_t MonotonicNowNs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

uint64_t CycleCount() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return MonotonicNowNs();
#endif
}

namespace {

// Reads one "Vm...: <n> kB" row out of /proc/self/status.
uint64_t ProcStatusKb(const char* key) {
  std::ifstream status("/proc/self/status");
  if (!status.is_open()) {
    return 0;
  }
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) == 0) {
      std::istringstream row(line.substr(std::string(key).size() + 1));
      uint64_t kb = 0;
      row >> kb;
      return kb;
    }
  }
  return 0;
}

}  // namespace

uint64_t PeakRssKb() { return ProcStatusKb("VmHWM"); }

uint64_t CurrentRssKb() { return ProcStatusKb("VmRSS"); }

void PerfRecorder::Begin(const std::string& phase) {
  RTVIRT_CHECK(!open_, "perf phase \"%s\" opened while \"%s\" is still open",
               phase.c_str(), current_.name.c_str());
  current_ = PhaseResult{};
  current_.name = phase;
  open_ = true;
  start_alloc_ = AllocNow();
  start_cycles_ = CycleCount();
  start_wall_ = MonotonicNowNs();
}

const PhaseResult& PerfRecorder::End(uint64_t ops) {
  uint64_t end_wall = MonotonicNowNs();
  uint64_t end_cycles = CycleCount();
  AllocSnapshot end_alloc = AllocNow();
  RTVIRT_CHECK(open_, "perf End() with no open phase (%llu phases recorded)",
               static_cast<unsigned long long>(phases_.size()));
  current_.ops = ops;
  current_.wall_ns = end_wall - start_wall_;
  current_.cycles = end_cycles - start_cycles_;
  current_.allocs = end_alloc.allocs - start_alloc_.allocs;
  current_.alloc_bytes = end_alloc.bytes - start_alloc_.bytes;
  open_ = false;
  phases_.push_back(std::move(current_));
  return phases_.back();
}

void PerfRecorder::Count(const std::string& name, double value) {
  RTVIRT_CHECK(open_, "perf Count(\"%s\") with no open phase", name.c_str());
  AllocSnapshot before = AllocNow();
  current_.counters[name] = value;
  AllocSnapshot after = AllocNow();
  // The recorder's own bookkeeping (map node, key copy) is not part of the
  // workload under measurement: credit it back to the phase baseline.
  start_alloc_.allocs += after.allocs - before.allocs;
  start_alloc_.bytes += after.bytes - before.bytes;
}

const PhaseResult* PerfRecorder::Find(const std::string& name) const {
  for (const PhaseResult& p : phases_) {
    if (p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

}  // namespace rtvirt::perf

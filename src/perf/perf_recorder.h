// Phase-structured performance measurement.
//
// A PerfRecorder brackets named phases of a run with monotonic + cycle
// timers and the process-wide allocation counters (alloc_hooks), and lets
// the driver attach named counters (events popped, schedule ops, replans…)
// to each phase. PhaseResults feed a PerfReport (perf_report.h), which
// serializes them into the committed BENCH_*.json schema the perf_gate
// comparator enforces.

#ifndef SRC_PERF_PERF_RECORDER_H_
#define SRC_PERF_PERF_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/perf/alloc_hooks.h"

namespace rtvirt::perf {

// Wall clock (CLOCK_MONOTONIC) in nanoseconds.
uint64_t MonotonicNowNs();

// CPU cycle counter (rdtsc on x86-64); falls back to monotonic nanoseconds
// on other architectures, so it is always usable as a relative measure.
uint64_t CycleCount();

// Peak resident set size (VmHWM from /proc/self/status) in KiB; 0 when the
// proc file is unavailable.
uint64_t PeakRssKb();

// Current resident set size (VmRSS) in KiB; 0 when unavailable.
uint64_t CurrentRssKb();

struct PhaseResult {
  std::string name;
  uint64_t ops = 0;       // Work items the caller declared for the phase.
  uint64_t wall_ns = 0;
  uint64_t cycles = 0;
  uint64_t allocs = 0;       // operator new calls during the phase.
  uint64_t alloc_bytes = 0;  // Bytes requested during the phase.
  std::map<std::string, double> counters;  // Named extras (sorted for output).

  double NsPerOp() const { return ops == 0 ? 0 : static_cast<double>(wall_ns) / ops; }
  double OpsPerSec() const {
    return wall_ns == 0 ? 0 : static_cast<double>(ops) * 1e9 / static_cast<double>(wall_ns);
  }
  double AllocsPerOp() const {
    return ops == 0 ? 0 : static_cast<double>(allocs) / static_cast<double>(ops);
  }
};

class PerfRecorder {
 public:
  // Opens a phase; at most one phase is open at a time.
  void Begin(const std::string& phase);

  // Closes the open phase with the number of work items it performed and
  // returns the finished result (also kept in phases()).
  const PhaseResult& End(uint64_t ops);

  // Attaches a named counter to the currently open phase.
  void Count(const std::string& name, double value);

  const std::vector<PhaseResult>& phases() const { return phases_; }
  const PhaseResult* Find(const std::string& name) const;

 private:
  std::vector<PhaseResult> phases_;
  bool open_ = false;
  PhaseResult current_;
  uint64_t start_wall_ = 0;
  uint64_t start_cycles_ = 0;
  AllocSnapshot start_alloc_;
};

}  // namespace rtvirt::perf

#endif  // SRC_PERF_PERF_RECORDER_H_

#include "src/perf/perf_report.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

namespace rtvirt::perf {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FmtDouble(double v) {
  char buf[64];
  // %.17g round-trips doubles exactly; trim to %.12g for readability — more
  // precision than any perf tolerance can resolve.
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

// --- Minimal JSON subset reader (objects, arrays, strings, numbers, bools,
// null) — just enough to read back what Write() emits, with whitespace and
// field reordering tolerated.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* Get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::istream& in) {
    std::ostringstream all;
    all << in.rdbuf();
    text_ = all.str();
  }

  std::optional<JsonValue> Parse() {
    std::optional<JsonValue> v = ParseValue();
    SkipWs();
    if (!v.has_value() || pos_ != text_.size()) {
      return std::nullopt;  // Trailing garbage is a malformed report.
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool EatWord(const char* w) {
    SkipWs();
    size_t n = std::string(w).size();
    if (text_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<std::string> ParseString() {
    if (!Eat('"')) {
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            out += e;  // \" \\ \/ and anything else: literal.
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) {
      return std::nullopt;
    }
    ++pos_;  // Closing quote.
    return out;
  }

  std::optional<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return std::nullopt;
    }
    char c = text_[pos_];
    JsonValue v;
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      SkipWs();
      if (Eat('}')) {
        return v;
      }
      for (;;) {
        std::optional<std::string> key = ParseString();
        if (!key.has_value() || !Eat(':')) {
          return std::nullopt;
        }
        std::optional<JsonValue> val = ParseValue();
        if (!val.has_value()) {
          return std::nullopt;
        }
        v.obj.emplace_back(*key, std::move(*val));
        if (Eat(',')) {
          continue;
        }
        if (Eat('}')) {
          return v;
        }
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      SkipWs();
      if (Eat(']')) {
        return v;
      }
      for (;;) {
        std::optional<JsonValue> val = ParseValue();
        if (!val.has_value()) {
          return std::nullopt;
        }
        v.arr.push_back(std::move(*val));
        if (Eat(',')) {
          continue;
        }
        if (Eat(']')) {
          return v;
        }
        return std::nullopt;
      }
    }
    if (c == '"') {
      std::optional<std::string> s = ParseString();
      if (!s.has_value()) {
        return std::nullopt;
      }
      v.kind = JsonValue::Kind::kString;
      v.str = std::move(*s);
      return v;
    }
    if (EatWord("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.b = true;
      return v;
    }
    if (EatWord("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.b = false;
      return v;
    }
    if (EatWord("null")) {
      return v;
    }
    // Number.
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return std::nullopt;
    }
    try {
      v.num = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return std::nullopt;
    }
    v.kind = JsonValue::Kind::kNumber;
    return v;
  }

  std::string text_;
  size_t pos_ = 0;
};

}  // namespace

void PerfReport::Add(const std::string& name, double value, const std::string& unit,
                     bool higher_is_better, double tolerance) {
  PerfMetric m;
  m.name = name;
  m.value = value;
  m.unit = unit;
  m.higher_is_better = higher_is_better;
  m.tolerance = tolerance;
  metrics.push_back(std::move(m));
}

const PerfMetric* PerfReport::Find(const std::string& name) const {
  for (const PerfMetric& m : metrics) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

void PerfReport::Write(std::ostream& out) const {
  out << "{\n";
  out << "  \"schema_version\": " << schema_version << ",\n";
  out << "  \"suite\": \"" << EscapeJson(suite) << "\",\n";
  out << "  \"meta\": {";
  bool first = true;
  for (const auto& [k, v] : meta) {
    out << (first ? "" : ", ") << "\"" << EscapeJson(k) << "\": \"" << EscapeJson(v)
        << "\"";
    first = false;
  }
  out << "},\n";
  out << "  \"metrics\": [";
  for (size_t i = 0; i < metrics.size(); ++i) {
    const PerfMetric& m = metrics[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << EscapeJson(m.name) << "\", \"value\": "
        << FmtDouble(m.value) << ", \"unit\": \"" << EscapeJson(m.unit)
        << "\", \"higher_is_better\": " << (m.higher_is_better ? "true" : "false")
        << ", \"tolerance\": " << FmtDouble(m.tolerance) << "}";
  }
  out << "\n  ]\n}\n";
}

bool PerfReport::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) {
    std::cerr << "perf: cannot write " << path << "\n";
    return false;
  }
  Write(out);
  return out.good();
}

std::optional<PerfReport> PerfReport::Parse(std::istream& in) {
  std::optional<JsonValue> root = JsonParser(in).Parse();
  if (!root.has_value() || root->kind != JsonValue::Kind::kObject) {
    return std::nullopt;
  }
  PerfReport report;
  const JsonValue* version = root->Get("schema_version");
  const JsonValue* suite = root->Get("suite");
  const JsonValue* metrics = root->Get("metrics");
  if (version == nullptr || version->kind != JsonValue::Kind::kNumber ||
      suite == nullptr || suite->kind != JsonValue::Kind::kString ||
      metrics == nullptr || metrics->kind != JsonValue::Kind::kArray) {
    return std::nullopt;
  }
  report.schema_version = static_cast<int>(version->num);
  if (report.schema_version != kPerfSchemaVersion) {
    return std::nullopt;  // Unknown schema: refuse rather than misread.
  }
  report.suite = suite->str;
  if (const JsonValue* meta = root->Get("meta");
      meta != nullptr && meta->kind == JsonValue::Kind::kObject) {
    for (const auto& [k, v] : meta->obj) {
      if (v.kind == JsonValue::Kind::kString) {
        report.meta[k] = v.str;
      }
    }
  }
  for (const JsonValue& entry : metrics->arr) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return std::nullopt;
    }
    const JsonValue* name = entry.Get("name");
    const JsonValue* value = entry.Get("value");
    if (name == nullptr || name->kind != JsonValue::Kind::kString || value == nullptr ||
        value->kind != JsonValue::Kind::kNumber) {
      return std::nullopt;
    }
    PerfMetric m;
    m.name = name->str;
    m.value = value->num;
    if (const JsonValue* unit = entry.Get("unit");
        unit != nullptr && unit->kind == JsonValue::Kind::kString) {
      m.unit = unit->str;
    }
    if (const JsonValue* dir = entry.Get("higher_is_better");
        dir != nullptr && dir->kind == JsonValue::Kind::kBool) {
      m.higher_is_better = dir->b;
    }
    if (const JsonValue* tol = entry.Get("tolerance");
        tol != nullptr && tol->kind == JsonValue::Kind::kNumber) {
      m.tolerance = tol->num;
    }
    report.metrics.push_back(std::move(m));
  }
  return report;
}

std::optional<PerfReport> PerfReport::ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return std::nullopt;
  }
  return Parse(in);
}

}  // namespace rtvirt::perf

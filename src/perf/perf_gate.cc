#include "src/perf/perf_gate.h"

#include <cstdio>
#include <ostream>
#include <string>

namespace rtvirt::perf {
namespace {

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

GateResult ComparePerf(const PerfReport& baseline, const PerfReport& fresh,
                       const GateOptions& options, std::ostream& log) {
  GateResult result;
  if (baseline.schema_version != fresh.schema_version) {
    log << "perf_gate: schema_version mismatch (baseline " << baseline.schema_version
        << ", fresh " << fresh.schema_version << ") — re-baseline required\n";
    result.ok = false;
    return result;
  }
  if (baseline.suite != fresh.suite) {
    log << "perf_gate: suite mismatch (baseline \"" << baseline.suite << "\", fresh \""
        << fresh.suite << "\")\n";
    result.ok = false;
    return result;
  }
  log << "perf_gate: suite " << baseline.suite << ", tolerance scale x"
      << Fmt(options.tolerance_scale) << "\n";
  for (const PerfMetric& base : baseline.metrics) {
    const PerfMetric* now = fresh.Find(base.name);
    ++result.checked;
    if (now == nullptr) {
      log << "  MISSING  " << base.name << " (baseline " << Fmt(base.value) << " "
          << base.unit << ")\n";
      ++result.missing;
      result.ok = false;
      continue;
    }
    double tol = base.tolerance * options.tolerance_scale;
    if (base.higher_is_better) {
      double floor = base.value * (1.0 - tol);
      if (base.value > 0 && floor <= 0) {
        log << "  waived   " << base.name << ": tolerance x" << Fmt(options.tolerance_scale)
            << " swallows the whole range (now " << Fmt(now->value) << ", base "
            << Fmt(base.value) << ")\n";
        ++result.waived;
        continue;
      }
      if (now->value < floor) {
        log << "  REGRESS  " << base.name << ": " << Fmt(now->value) << " " << base.unit
            << " < floor " << Fmt(floor) << " (base " << Fmt(base.value) << ")\n";
        ++result.regressed;
        result.ok = false;
      } else {
        log << "  ok       " << base.name << ": " << Fmt(now->value) << " " << base.unit
            << " (base " << Fmt(base.value) << ", floor " << Fmt(floor) << ")\n";
      }
    } else {
      double ceiling = base.value * (1.0 + tol);
      if (now->value > ceiling) {
        log << "  REGRESS  " << base.name << ": " << Fmt(now->value) << " " << base.unit
            << " > ceiling " << Fmt(ceiling) << " (base " << Fmt(base.value) << ")\n";
        ++result.regressed;
        result.ok = false;
      } else {
        log << "  ok       " << base.name << ": " << Fmt(now->value) << " " << base.unit
            << " (base " << Fmt(base.value) << ", ceiling " << Fmt(ceiling) << ")\n";
      }
    }
  }
  log << "perf_gate: " << result.checked << " checked, " << result.regressed
      << " regressed, " << result.missing << " missing, " << result.waived
      << " waived — " << (result.ok ? "PASS" : "FAIL") << "\n";
  return result;
}

}  // namespace rtvirt::perf

#include "src/faults/fault_injector.h"

#include <utility>

namespace rtvirt {

FaultInjector::FaultInjector(Machine* machine, FaultPlan plan)
    : machine_(machine), plan_(std::move(plan)), rng_(plan_.seed) {}

bool FaultInjector::InOutage(TimeNs now) const {
  for (const FaultPlan::Outage& o : plan_.hypercall_outages) {
    if (now >= o.start && now < o.end) {
      return true;
    }
  }
  return false;
}

Machine::HypercallFault FaultInjector::OnHypercall(Vcpu* caller, const HypercallArgs& args) {
  (void)caller, (void)args;
  ++stats_.hypercall_attempts;
  Machine::HypercallFault fault;
  // Outage windows are checked first and draw no randomness: adding or
  // removing an outage does not shift the RNG stream of the random faults
  // outside the window.
  if (InOutage(machine_->sim()->Now())) {
    ++stats_.outage_failures;
    fault.action = Machine::HypercallFault::Action::kFail;
    return fault;
  }
  if (plan_.hypercall_drop_prob > 0 && rng_.Bernoulli(plan_.hypercall_drop_prob)) {
    ++stats_.injected_drops;
    fault.action = Machine::HypercallFault::Action::kDrop;
    fault.extra_latency = plan_.hypercall_drop_timeout;
    return fault;
  }
  if (plan_.hypercall_fail_prob > 0 && rng_.Bernoulli(plan_.hypercall_fail_prob)) {
    ++stats_.injected_failures;
    fault.action = Machine::HypercallFault::Action::kFail;
    return fault;
  }
  if (plan_.hypercall_spike_prob > 0 && rng_.Bernoulli(plan_.hypercall_spike_prob)) {
    ++stats_.injected_spikes;
    fault.extra_latency = plan_.hypercall_spike_latency;
  }
  return fault;
}

void FaultInjector::Arm() {
  if (armed_) {
    return;
  }
  armed_ = true;
  machine_->SetHypercallInterceptor(
      [this](Vcpu* caller, const HypercallArgs& args) { return OnHypercall(caller, args); });
  if (plan_.shared_page_visibility_delay > 0) {
    for (int i = 0; i < machine_->num_vms(); ++i) {
      machine_->vm(i)->shared_page().SetVisibilityDelay(plan_.shared_page_visibility_delay);
    }
  }
  Simulator* sim = machine_->sim();
  for (const FaultPlan::VmFailure& f : plan_.vm_failures) {
    if (f.vm_index < 0 || f.vm_index >= machine_->num_vms()) {
      continue;
    }
    Vm* vm = machine_->vm(f.vm_index);
    sim->At(f.crash_at, [this, vm] {
      machine_->CrashVm(vm);
      ++stats_.vm_crashes;
      for (const VmHandler& h : crash_handlers_) {
        h(vm);
      }
    });
    if (f.restart_at < kTimeNever) {
      sim->At(f.restart_at, [this, vm] {
        machine_->RestartVm(vm);
        ++stats_.vm_restarts;
        for (const VmHandler& h : restart_handlers_) {
          h(vm);
        }
      });
    }
  }
}

}  // namespace rtvirt

#include "src/faults/fault_injector.h"

#include <cstdio>
#include <utility>

#include "src/common/check.h"

namespace rtvirt {

namespace {

std::string Entry(const char* field, size_t i, const char* what, long long a, long long b) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s[%zu]: %s (%lld, %lld)", field, i, what, a, b);
  return buf;
}

}  // namespace

std::string FaultPlan::Validate(int num_pcpus, int num_vms, int num_hosts) const {
  for (size_t i = 0; i < hypercall_outages.size(); ++i) {
    const Outage& o = hypercall_outages[i];
    if (o.start < 0 || o.end <= o.start) {
      return Entry("hypercall_outages", i, "empty or negative duration", o.start, o.end);
    }
    for (size_t j = 0; j < i; ++j) {
      const Outage& p = hypercall_outages[j];
      if (o.start < p.end && p.start < o.end) {
        return Entry("hypercall_outages", i, "overlaps earlier window at index",
                     static_cast<long long>(j), p.end);
      }
    }
  }
  for (size_t i = 0; i < vm_failures.size(); ++i) {
    const VmFailure& f = vm_failures[i];
    if (f.vm_index < 0 || (num_vms >= 0 && f.vm_index >= num_vms)) {
      return Entry("vm_failures", i, "vm index out of range for machine size",
                   f.vm_index, num_vms);
    }
    if (f.crash_at < 0 || f.restart_at <= f.crash_at) {
      return Entry("vm_failures", i, "restart precedes crash or negative crash time",
                   f.crash_at, f.restart_at);
    }
  }
  for (size_t i = 0; i < adversarial_guests.size(); ++i) {
    const AdversarialGuest& a = adversarial_guests[i];
    if (a.vm_index < 0 || (num_vms >= 0 && a.vm_index >= num_vms)) {
      return Entry("adversarial_guests", i, "vm index out of range for machine size",
                   a.vm_index, num_vms);
    }
    if (a.start < 0 || a.end <= a.start) {
      return Entry("adversarial_guests", i, "empty or negative campaign window",
                   a.start, a.end);
    }
    if (a.period <= 0) {
      return Entry("adversarial_guests", i, "non-positive event cadence", a.period, 0);
    }
    if (a.kind == AdversarialGuest::Kind::kBandwidthThrash) {
      if (a.thrash_low > a.thrash_high || a.thrash_high > Bandwidth::One() ||
          a.thrash_low <= Bandwidth::Zero()) {
        return Entry("adversarial_guests", i, "thrash bandwidths out of order or range (ppb)",
                     a.thrash_low.ppb(), a.thrash_high.ppb());
      }
      if (a.thrash_period <= 0) {
        return Entry("adversarial_guests", i, "non-positive thrash reservation period",
                     a.thrash_period, 0);
      }
    }
  }
  for (size_t i = 0; i < pcpu_faults.size(); ++i) {
    const PcpuFault& f = pcpu_faults[i];
    if (f.pcpu < 0 || f.pcpu >= num_pcpus) {
      return Entry("pcpu_faults", i, "pcpu id out of range for machine size",
                   f.pcpu, num_pcpus);
    }
    bool windowed = f.kind != PcpuFault::Kind::kPermanentFailure;
    if (f.at < 0 || (windowed && f.until <= f.at)) {
      return Entry("pcpu_faults", i, "empty or negative duration", f.at, f.until);
    }
    if (f.kind == PcpuFault::Kind::kDegrade && (f.speed <= 0.0 || f.speed > 1.0)) {
      return Entry("pcpu_faults", i, "degrade speed outside (0, 1] (speed*1e6, _)",
                   static_cast<long long>(f.speed * 1e6), 0);
    }
    // Two events on the same core must not overlap in time: a permanent
    // failure extends to forever, so nothing may follow it on that core.
    TimeNs end_i = f.kind == PcpuFault::Kind::kPermanentFailure ? kTimeNever : f.until;
    for (size_t j = 0; j < i; ++j) {
      const PcpuFault& p = pcpu_faults[j];
      if (p.pcpu != f.pcpu) {
        continue;
      }
      TimeNs end_j = p.kind == PcpuFault::Kind::kPermanentFailure ? kTimeNever : p.until;
      if (f.at < end_j && p.at < end_i) {
        return Entry("pcpu_faults", i, "overlaps earlier fault on same pcpu at index",
                     static_cast<long long>(j), p.at);
      }
    }
  }
  for (size_t i = 0; i < control_faults.size(); ++i) {
    const ControlFault& f = control_faults[i];
    if (f.vm_index < 0 || (num_vms >= 0 && f.vm_index >= num_vms)) {
      return Entry("control_faults", i, "vm index out of range for machine size",
                   f.vm_index, num_vms);
    }
    if (f.at < 0 || f.until <= f.at) {
      return Entry("control_faults", i, "empty or negative window", f.at, f.until);
    }
    if (f.kind == ControlFault::Kind::kStalePage && f.delay <= 0) {
      return Entry("control_faults", i, "non-positive stale-page delay", f.delay, 0);
    }
    // Two windows of the same kind on the same VM must not overlap — the
    // stale-page restore of an earlier window would otherwise cancel a live
    // later one, and overlapping outages are almost certainly a plan typo.
    for (size_t j = 0; j < i; ++j) {
      const ControlFault& p = control_faults[j];
      if (p.vm_index != f.vm_index || p.kind != f.kind) {
        continue;
      }
      if (f.at < p.until && p.at < f.until) {
        return Entry("control_faults", i, "overlaps earlier window on same vm at index",
                     static_cast<long long>(j), p.at);
      }
    }
  }
  for (size_t i = 0; i < host_faults.size(); ++i) {
    const HostFault& f = host_faults[i];
    if (f.host < 0 || (num_hosts >= 0 && f.host >= num_hosts)) {
      return Entry("host_faults", i, "host id out of range for cluster size",
                   f.host, num_hosts);
    }
    bool windowed = f.kind != HostFault::Kind::kCrash;
    if (f.at < 0 || (windowed && f.until <= f.at)) {
      return Entry("host_faults", i, "empty or negative duration", f.at, f.until);
    }
    if (f.kind == HostFault::Kind::kDegrade && (f.factor <= 0.0 || f.factor > 1.0)) {
      return Entry("host_faults", i, "degrade factor outside (0, 1] (factor*1e6, _)",
                   static_cast<long long>(f.factor * 1e6), 0);
    }
    // Same per-resource overlap rule as pcpu_faults: a crash lasts forever,
    // so nothing may follow it on that host.
    TimeNs end_i = f.kind == HostFault::Kind::kCrash ? kTimeNever : f.until;
    for (size_t j = 0; j < i; ++j) {
      const HostFault& p = host_faults[j];
      if (p.host != f.host) {
        continue;
      }
      TimeNs end_j = p.kind == HostFault::Kind::kCrash ? kTimeNever : p.until;
      if (f.at < end_j && p.at < end_i) {
        return Entry("host_faults", i, "overlaps earlier fault on same host at index",
                     static_cast<long long>(j), p.at);
      }
    }
  }
  return std::string();
}

FaultInjector::FaultInjector(Machine* machine, FaultPlan plan)
    : machine_(machine), plan_(std::move(plan)), rng_(plan_.seed) {
  std::string err = plan_.Validate(machine_->num_pcpus());
  RTVIRT_CHECK(err.empty(), "invalid FaultPlan: %s", err.c_str());
}

bool FaultInjector::InOutage(TimeNs now) const {
  for (const FaultPlan::Outage& o : plan_.hypercall_outages) {
    if (now >= o.start && now < o.end) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::InControlOutage(const Vcpu* caller, TimeNs now) const {
  if (caller == nullptr) {
    return false;
  }
  for (const FaultPlan::ControlFault& f : plan_.control_faults) {
    if (f.kind == FaultPlan::ControlFault::Kind::kChannelOutage &&
        caller->vm() == machine_->vm(f.vm_index) && now >= f.at && now < f.until) {
      return true;
    }
  }
  return false;
}

Machine::HypercallFault FaultInjector::OnHypercall(Vcpu* caller, const HypercallArgs& args) {
  (void)args;
  ++stats_.hypercall_attempts;
  Machine::HypercallFault fault;
  // Outage windows (global and per-VM) are checked first and draw no
  // randomness: adding or removing an outage does not shift the RNG stream
  // of the random faults outside the window.
  if (InOutage(machine_->sim()->Now())) {
    ++stats_.outage_failures;
    fault.action = Machine::HypercallFault::Action::kFail;
    return fault;
  }
  if (InControlOutage(caller, machine_->sim()->Now())) {
    ++stats_.control_outage_failures;
    fault.action = Machine::HypercallFault::Action::kFail;
    return fault;
  }
  if (plan_.hypercall_drop_prob > 0 && rng_.Bernoulli(plan_.hypercall_drop_prob)) {
    ++stats_.injected_drops;
    fault.action = Machine::HypercallFault::Action::kDrop;
    fault.extra_latency = plan_.hypercall_drop_timeout;
    return fault;
  }
  if (plan_.hypercall_fail_prob > 0 && rng_.Bernoulli(plan_.hypercall_fail_prob)) {
    ++stats_.injected_failures;
    fault.action = Machine::HypercallFault::Action::kFail;
    return fault;
  }
  if (plan_.hypercall_spike_prob > 0 && rng_.Bernoulli(plan_.hypercall_spike_prob)) {
    ++stats_.injected_spikes;
    fault.extra_latency = plan_.hypercall_spike_latency;
  }
  return fault;
}

void FaultInjector::Arm() {
  if (armed_) {
    return;
  }
  armed_ = true;
  // The constructor may run before the VMs exist; now they all do, so
  // re-validate with the real count. A plan naming a VM the machine does not
  // have is a harness bug — failing loudly beats silently skipping the fault
  // and reporting a clean run that injected nothing.
  std::string err = plan_.Validate(machine_->num_pcpus(), machine_->num_vms());
  RTVIRT_CHECK(err.empty(), "invalid FaultPlan at Arm(): %s", err.c_str());
  machine_->SetHypercallInterceptor(
      [this](Vcpu* caller, const HypercallArgs& args) { return OnHypercall(caller, args); });
  if (plan_.shared_page_visibility_delay > 0) {
    for (int i = 0; i < machine_->num_vms(); ++i) {
      machine_->vm(i)->shared_page().SetVisibilityDelay(plan_.shared_page_visibility_delay);
    }
  }
  Simulator* sim = machine_->sim();
  for (size_t i = 0; i < plan_.vm_failures.size(); ++i) {
    const FaultPlan::VmFailure& f = plan_.vm_failures[i];
    sim->At(f.crash_at, Tag(kEvVmCrash, i), [this, i] { FireVmCrash(i); });
    if (f.restart_at < kTimeNever) {
      sim->At(f.restart_at, Tag(kEvVmRestart, i), [this, i] { FireVmRestart(i); });
    }
  }
  for (size_t i = 0; i < plan_.pcpu_faults.size(); ++i) {
    const FaultPlan::PcpuFault& f = plan_.pcpu_faults[i];
    sim->At(f.at, Tag(kEvPcpuFaultStart, i), [this, i] { FirePcpuFaultStart(i); });
    bool has_end = f.kind == FaultPlan::PcpuFault::Kind::kTransientOffline ||
                   (f.kind == FaultPlan::PcpuFault::Kind::kDegrade && f.until < kTimeNever);
    if (has_end) {
      sim->At(f.until, Tag(kEvPcpuFaultEnd, i), [this, i] { FirePcpuFaultEnd(i); });
    }
  }
  for (size_t i = 0; i < plan_.adversarial_guests.size(); ++i) {
    sim->At(plan_.adversarial_guests[i].start,
            Tag(kEvAdversaryTick, static_cast<uint64_t>(i) << 32),
            [this, i] { AdversaryTick(i, 0); });
  }
  for (size_t i = 0; i < plan_.control_faults.size(); ++i) {
    const FaultPlan::ControlFault& f = plan_.control_faults[i];
    if (f.kind != FaultPlan::ControlFault::Kind::kStalePage) {
      continue;  // kChannelOutage is evaluated per call in OnHypercall.
    }
    sim->At(f.at, Tag(kEvControlStaleStart, i), [this, i] { FireControlStaleStart(i); });
    sim->At(f.until, Tag(kEvControlStaleEnd, i), [this, i] { FireControlStaleEnd(i); });
  }
}

void FaultInjector::FireVmCrash(size_t i) {
  Vm* vm = machine_->vm(plan_.vm_failures[i].vm_index);
  machine_->CrashVm(vm);
  ++stats_.vm_crashes;
  for (const VmHandler& h : crash_handlers_) {
    h(vm);
  }
}

void FaultInjector::FireVmRestart(size_t i) {
  Vm* vm = machine_->vm(plan_.vm_failures[i].vm_index);
  machine_->RestartVm(vm);
  ++stats_.vm_restarts;
  for (const VmHandler& h : restart_handlers_) {
    h(vm);
  }
}

void FaultInjector::FirePcpuFaultStart(size_t i) {
  const FaultPlan::PcpuFault& f = plan_.pcpu_faults[i];
  switch (f.kind) {
    case FaultPlan::PcpuFault::Kind::kPermanentFailure:
    case FaultPlan::PcpuFault::Kind::kTransientOffline:
      machine_->SetPcpuOnline(f.pcpu, false);
      ++stats_.pcpu_offline_events;
      break;
    case FaultPlan::PcpuFault::Kind::kDegrade:
      machine_->SetPcpuSpeed(f.pcpu, f.speed);
      ++stats_.pcpu_degrade_events;
      break;
  }
}

void FaultInjector::FirePcpuFaultEnd(size_t i) {
  const FaultPlan::PcpuFault& f = plan_.pcpu_faults[i];
  if (f.kind == FaultPlan::PcpuFault::Kind::kTransientOffline) {
    machine_->SetPcpuOnline(f.pcpu, true);
    ++stats_.pcpu_online_events;
  } else {
    machine_->SetPcpuSpeed(f.pcpu, 1.0);
    ++stats_.pcpu_heal_events;
  }
}

void FaultInjector::FireControlStaleStart(size_t i) {
  const FaultPlan::ControlFault& f = plan_.control_faults[i];
  machine_->vm(f.vm_index)->shared_page().SetVisibilityDelay(f.delay);
  ++stats_.control_stale_windows;
}

void FaultInjector::FireControlStaleEnd(size_t i) {
  // Closing the window restores the plan-wide baseline delay, so a global
  // shared_page_visibility_delay composes with a targeted stale window.
  const FaultPlan::ControlFault& f = plan_.control_faults[i];
  machine_->vm(f.vm_index)->shared_page().SetVisibilityDelay(
      plan_.shared_page_visibility_delay);
}

void FaultInjector::AdversaryTick(size_t idx, uint64_t step) {
  const FaultPlan::AdversarialGuest& a = plan_.adversarial_guests[idx];
  Simulator* sim = machine_->sim();
  TimeNs now = sim->Now();
  if (now >= a.end) {
    return;  // Campaign over; no reschedule.
  }
  Vm* vm = machine_->vm(a.vm_index);
  if (!vm->crashed() && vm->num_vcpus() > 0) {
    switch (a.kind) {
      case FaultPlan::AdversarialGuest::Kind::kDeadlineLies: {
        // Hostile writes land on VCPU 0, the slot the host actually reads
        // (it carries the VM's legitimate reservation). Even steps publish a
        // deadline half the clock in the past — stale by far more than any
        // reservation period, so the sanitizer scores it as a lie rather
        // than honest tardiness; odd steps publish now + 1.5 cadences —
        // with the cadence at or below the planner's minimum slice, that
        // horizon is still in the future at every read, so it pins the
        // global slice at its floor and maximizes replan + dispatch
        // overhead. Sprinkled in are out-of-range indices poking the
        // shared-page guards (hardening regression: these must be no-ops,
        // not crashes or allocations).
        SharedSchedPage& page = vm->shared_page();
        TimeNs lie = step % 2 == 0 ? now / 2 : now + a.period + a.period / 2;
        page.PublishNextDeadline(0, lie);
        if (step % 7 == 3) {
          page.PublishNextDeadline(-1 - static_cast<int>(step % 5), lie);
        }
        if (step % 11 == 5) {
          page.PublishNextDeadline(SharedSchedPage::kMaxSlots + static_cast<int>(step), lie);
        }
        ++stats_.deadline_lies;
        break;
      }
      case FaultPlan::AdversarialGuest::Kind::kHypercallStorm: {
        // Garbage requests (zero period is always invalid) from VCPU 0: the
        // point is call volume, not state change — each one still burns the
        // host's hypercall cost and, hardened, a rate-limiter token.
        HypercallArgs args;
        args.op = SchedOp::kIncBw;
        args.vcpu_a = vm->vcpu(0);
        args.bw_a = Bandwidth::FromDouble(0.01);
        args.period_a = 0;
        machine_->Hypercall(vm->vcpu(0), args);
        ++stats_.storm_calls;
        break;
      }
      case FaultPlan::AdversarialGuest::Kind::kBandwidthThrash: {
        // Oscillation abuse on the VM's *last* VCPU — one no guest channel
        // manages, so host-held bandwidth the channel does not know about
        // stays within the audited contract. Every accepted call forces a
        // full replan.
        Vcpu* target = vm->vcpu(vm->num_vcpus() - 1);
        HypercallArgs args;
        args.vcpu_a = target;
        args.period_a = a.thrash_period;
        if (step % 2 == 0) {
          args.op = SchedOp::kIncBw;
          args.bw_a = a.thrash_high;
        } else {
          args.op = SchedOp::kDecBw;
          args.bw_a = a.thrash_low;
        }
        machine_->Hypercall(target, args);
        ++stats_.thrash_calls;
        break;
      }
    }
  }
  sim->After(a.period,
             Tag(kEvAdversaryTick, (static_cast<uint64_t>(idx) << 32) | (step + 1)),
             [this, idx, step] { AdversaryTick(idx, step + 1); });
}

void FaultInjector::SaveState(ckpt::Writer& w) const {
  w.Str(rng_.SaveState());
  w.U64(stats_.hypercall_attempts);
  w.U64(stats_.injected_failures);
  w.U64(stats_.injected_drops);
  w.U64(stats_.injected_spikes);
  w.U64(stats_.outage_failures);
  w.U64(stats_.vm_crashes);
  w.U64(stats_.vm_restarts);
  w.U64(stats_.pcpu_offline_events);
  w.U64(stats_.pcpu_online_events);
  w.U64(stats_.pcpu_degrade_events);
  w.U64(stats_.pcpu_heal_events);
  w.U64(stats_.deadline_lies);
  w.U64(stats_.storm_calls);
  w.U64(stats_.thrash_calls);
  w.U64(stats_.control_outage_failures);
  w.U64(stats_.control_stale_windows);
}

std::string FaultInjector::RestoreState(ckpt::Reader& r) {
  if (!rng_.RestoreState(r.Str())) {
    return "faults: malformed RNG state";
  }
  stats_.hypercall_attempts = r.U64();
  stats_.injected_failures = r.U64();
  stats_.injected_drops = r.U64();
  stats_.injected_spikes = r.U64();
  stats_.outage_failures = r.U64();
  stats_.vm_crashes = r.U64();
  stats_.vm_restarts = r.U64();
  stats_.pcpu_offline_events = r.U64();
  stats_.pcpu_online_events = r.U64();
  stats_.pcpu_degrade_events = r.U64();
  stats_.pcpu_heal_events = r.U64();
  stats_.deadline_lies = r.U64();
  stats_.storm_calls = r.U64();
  stats_.thrash_calls = r.U64();
  stats_.control_outage_failures = r.U64();
  stats_.control_stale_windows = r.U64();
  if (!r.ok()) {
    return "faults: truncated section";
  }
  // Re-arm the synchronous paths only: the interceptor is per-process state
  // the checkpoint cannot carry, while the planned events come back through
  // rebind and the page visibility delay through the machine section (so the
  // Arm()-time SetVisibilityDelay must NOT run again — it would clobber an
  // in-progress stale-page window).
  machine_->SetHypercallInterceptor(
      [this](Vcpu* caller, const HypercallArgs& args) { return OnHypercall(caller, args); });
  armed_ = true;
  return "";
}

std::string FaultInjector::RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) {
  Simulator* sim = machine_->sim();
  switch (kind) {
    case kEvVmCrash:
    case kEvVmRestart: {
      size_t i = payload;
      if (i >= plan_.vm_failures.size()) {
        return "faults: event references unknown vm_failures entry " + std::to_string(i);
      }
      if (kind == kEvVmCrash) {
        sim->At(when, Tag(kEvVmCrash, i), [this, i] { FireVmCrash(i); });
      } else {
        sim->At(when, Tag(kEvVmRestart, i), [this, i] { FireVmRestart(i); });
      }
      return "";
    }
    case kEvPcpuFaultStart:
    case kEvPcpuFaultEnd: {
      size_t i = payload;
      if (i >= plan_.pcpu_faults.size()) {
        return "faults: event references unknown pcpu_faults entry " + std::to_string(i);
      }
      if (kind == kEvPcpuFaultStart) {
        sim->At(when, Tag(kEvPcpuFaultStart, i), [this, i] { FirePcpuFaultStart(i); });
      } else {
        sim->At(when, Tag(kEvPcpuFaultEnd, i), [this, i] { FirePcpuFaultEnd(i); });
      }
      return "";
    }
    case kEvAdversaryTick: {
      size_t idx = payload >> 32;
      uint64_t step = payload & 0xffffffffull;
      if (idx >= plan_.adversarial_guests.size()) {
        return "faults: event references unknown adversarial campaign " +
               std::to_string(idx);
      }
      sim->At(when, Tag(kEvAdversaryTick, payload),
              [this, idx, step] { AdversaryTick(idx, step); });
      return "";
    }
    case kEvControlStaleStart:
    case kEvControlStaleEnd: {
      size_t i = payload;
      if (i >= plan_.control_faults.size()) {
        return "faults: event references unknown control_faults entry " + std::to_string(i);
      }
      if (kind == kEvControlStaleStart) {
        sim->At(when, Tag(kEvControlStaleStart, i), [this, i] { FireControlStaleStart(i); });
      } else {
        sim->At(when, Tag(kEvControlStaleEnd, i), [this, i] { FireControlStaleEnd(i); });
      }
      return "";
    }
  }
  return "faults: unknown event kind " + std::to_string(kind);
}

}  // namespace rtvirt

// Deterministic fault injection for the cross-layer channel.
//
// The paper's evaluation assumes a perfectly reliable substrate: every
// sched_rtvirt() hypercall succeeds after a fixed cost and every published
// deadline is instantly host-visible. Related work (arXiv:2206.00258,
// arXiv:2506.09825) argues hypervisor-layer timing perturbations and
// imperfections are first-class behaviors, so this subsystem makes them
// schedulable events: a seeded FaultPlan drives a FaultInjector from the
// existing Simulator event queue, and the same seed + plan reproduces the
// exact same fault trace (asserted by tests/faults_test.cc).
//
// Three fault classes:
//   (a) hypercall faults — per-attempt transient failures (-EAGAIN), dropped
//       calls (timeout, then -EAGAIN), latency spikes, and hard outage
//       windows during which every call fails;
//   (b) shared-memory staleness — guest-published deadlines become host-
//       visible only after a configurable coherence-window delay;
//   (c) VM failures — a VM crashes at a planned instant (its in-flight
//       host reservations are orphaned) and optionally restarts later.

#ifndef SRC_FAULTS_FAULT_INJECTOR_H_
#define SRC_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/common/bandwidth.h"
#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/hv/machine.h"

namespace rtvirt {

struct FaultPlan {
  // Seed of the injector's private RNG stream; independent of the workload
  // RNG so enabling faults does not perturb workload generation.
  uint64_t seed = 1;

  // ---- (a) hypercall faults (per delivery attempt; retries re-roll) ----
  double hypercall_fail_prob = 0.0;   // Transient -EAGAIN.
  double hypercall_drop_prob = 0.0;   // Lost call: timeout, then -EAGAIN.
  double hypercall_spike_prob = 0.0;  // Latency spike on a delivered call.
  TimeNs hypercall_spike_latency = Us(100);
  TimeNs hypercall_drop_timeout = Ms(1);  // What the caller waits before giving up.
  // Hard outages: every hypercall issued in [start, end) fails. This is what
  // exhausts bounded retries and forces the guest channel into degraded mode.
  struct Outage {
    TimeNs start = 0;
    TimeNs end = 0;
  };
  std::vector<Outage> hypercall_outages;

  // ---- (b) shared-memory staleness ----
  // Guest deadline publications become host-visible only after this delay.
  TimeNs shared_page_visibility_delay = 0;

  // ---- (c) VM failures ----
  struct VmFailure {
    int vm_index = 0;
    TimeNs crash_at = 0;
    TimeNs restart_at = kTimeNever;  // kTimeNever: never restarts.
  };
  std::vector<VmFailure> vm_failures;

  // ---- (d) PCPU faults (capacity-degradation model) ----
  // Seeded, deterministic host-core events driven through
  // Machine::SetPcpuOnline / SetPcpuSpeed. Whether anyone *recovers* from
  // them is the scheduler's business (DpWrapConfig::pcpu_recovery); the
  // injector only makes the hardware misbehave on schedule.
  struct PcpuFault {
    enum class Kind {
      kPermanentFailure,  // Core offline at `at`, never returns (until ignored).
      kTransientOffline,  // Hotplug window: offline over [at, until).
      kDegrade,           // Frequency throttle to `speed` over [at, until);
                          // until = kTimeNever keeps it throttled forever.
    };
    Kind kind = Kind::kPermanentFailure;
    int pcpu = 0;
    TimeNs at = 0;
    TimeNs until = kTimeNever;
    double speed = 0.5;  // kDegrade only; must be in (0, 1].
  };
  std::vector<PcpuFault> pcpu_faults;

  // ---- (e) adversarial guests (Byzantine behavior, not random faults) ----
  // A scheduled campaign of deliberately hostile cross-layer traffic from one
  // VM, exercising the DpWrapConfig::guest_trust defenses. Every event is
  // clock-driven with deterministic alternation (no RNG draws), so adding a
  // campaign never shifts the random-fault stream and the same seed + plan
  // reproduces the same trace.
  struct AdversarialGuest {
    enum class Kind {
      kDeadlineLies,     // Publishes past / sub-floor deadlines to its slot,
                         // with occasional out-of-range indices poking the
                         // shared-page guards.
      kHypercallStorm,   // Floods sched_rtvirt() with garbage requests.
      kBandwidthThrash,  // Alternates INC_BW/DEC_BW on an unused VCPU to
                         // force a replan per call (oscillation abuse).
    };
    Kind kind = Kind::kDeadlineLies;
    int vm_index = 0;
    TimeNs start = 0;
    TimeNs end = kTimeNever;   // Campaign window [start, end).
    TimeNs period = Us(500);   // Event cadence inside the window.
    // kBandwidthThrash only: the two reservations it flips between.
    Bandwidth thrash_low = Bandwidth::FromDouble(0.05);
    Bandwidth thrash_high = Bandwidth::FromDouble(0.25);
    TimeNs thrash_period = Ms(10);  // Reservation period used in the calls.
  };
  std::vector<AdversarialGuest> adversarial_guests;

  // ---- (f) host-level faults (cluster federation) ----
  // Whole-host events one level above the PCPU model: a host crashes for
  // good, goes dark for a window, or loses a fraction of its capacity. These
  // are consumed by the cluster Federation (src/cluster/federation.h), which
  // drives them through Machine::SetPcpuOnline / SetPcpuSpeed on the
  // affected host and runs the evacuation / re-placement response; the
  // per-host FaultInjector ignores them (and they do not count toward
  // active()), so a single-host experiment handed a plan with host faults
  // simply never sees them fire.
  struct HostFault {
    enum class Kind {
      kCrash,   // Host dies at `at` and never returns (until ignored).
      kOutage,  // Host dark over [at, until), then heals.
      kDegrade, // Every core throttled to `factor` over [at, until);
                // until = kTimeNever keeps it degraded forever.
    };
    Kind kind = Kind::kCrash;
    int host = 0;
    TimeNs at = 0;
    TimeNs until = kTimeNever;
    double factor = 0.5;  // kDegrade only; must be in (0, 1].
  };
  std::vector<HostFault> host_faults;

  // ---- (g) controller-adversary interaction events (SLO controller) ----
  // Targeted windows stressing the src/control feedback path at its worst
  // moments: a per-VM channel outage (every hypercall from that VM fails —
  // e.g. mid flash-crowd, right after the controller raised the tenant's
  // reservation, forcing the fail-static freeze to hold last-good state) and
  // a stale-shared-page window (the VM's deadline publications go host-
  // visible late — e.g. during a DEC, so the host briefly schedules against
  // deadlines from the pre-shrink reservation). Both are clock-driven and
  // draw no randomness, so adding them never shifts the random-fault stream.
  struct ControlFault {
    enum class Kind {
      kChannelOutage,  // Every hypercall from vm_index fails over [at, until).
      kStalePage,      // vm_index's page publications delayed over [at, until).
    };
    Kind kind = Kind::kChannelOutage;
    int vm_index = 0;
    TimeNs at = 0;
    TimeNs until = 0;
    TimeNs delay = Us(200);  // kStalePage only: added visibility delay.
  };
  std::vector<ControlFault> control_faults;

  bool active() const {
    return hypercall_fail_prob > 0 || hypercall_drop_prob > 0 ||
           hypercall_spike_prob > 0 || !hypercall_outages.empty() ||
           shared_page_visibility_delay > 0 || !vm_failures.empty() ||
           !pcpu_faults.empty() || !adversarial_guests.empty() ||
           !control_faults.empty();
  }

  // Structural validation, run by the FaultInjector constructor (which
  // RTVIRT_CHECKs the result): rejects overlapping outage windows, negative
  // or empty durations, out-of-range PCPU ids, bad degrade speeds, VM
  // restarts that precede their crash, and out-of-range or malformed
  // VM-indexed entries (vm_failures, adversarial_guests). Returns an empty
  // string when valid, else a message naming the offending entry. Pass the
  // machine's VM count as num_vms to bounds-check VM indices; -1 skips those
  // checks (plan built before the VMs exist — Arm() re-validates with the
  // real count). Pass the cluster size as num_hosts to check host_faults
  // (host ids, per-host window overlap, degrade factors); -1 skips the host
  // id bounds check but still rejects structurally malformed entries — the
  // Federation constructor re-validates with the real host count.
  std::string Validate(int num_pcpus, int num_vms = -1, int num_hosts = -1) const;
};

struct FaultStats {
  uint64_t hypercall_attempts = 0;   // Calls seen by the injector.
  uint64_t injected_failures = 0;    // Random transient -EAGAIN.
  uint64_t injected_drops = 0;       // Random dropped calls.
  uint64_t injected_spikes = 0;      // Random latency spikes.
  uint64_t outage_failures = 0;      // Calls failed inside an outage window.
  uint64_t vm_crashes = 0;
  uint64_t vm_restarts = 0;
  // PCPU fault events actually fired (paired per transient/degrade window).
  uint64_t pcpu_offline_events = 0;  // Permanent failures + transient offlines.
  uint64_t pcpu_online_events = 0;   // Re-onlines closing transient windows.
  uint64_t pcpu_degrade_events = 0;  // Throttle applications.
  uint64_t pcpu_heal_events = 0;     // Full speed restored.
  // Adversarial-guest events actually issued.
  uint64_t deadline_lies = 0;   // Hostile shared-page publications.
  uint64_t storm_calls = 0;     // Hypercall-storm calls issued.
  uint64_t thrash_calls = 0;    // Bandwidth-thrash calls issued.
  // Controller-adversary events (ControlFault).
  uint64_t control_outage_failures = 0;  // Calls failed in a per-VM outage.
  uint64_t control_stale_windows = 0;    // Stale-page windows opened.

  uint64_t TotalHypercallFaults() const {
    return injected_failures + injected_drops + outage_failures;
  }

  uint64_t TotalAdversarialEvents() const {
    return deadline_lies + storm_calls + thrash_calls;
  }
};

class FaultInjector : public ckpt::Checkpointable {
 public:
  FaultInjector(Machine* machine, FaultPlan plan);

  // Installs the hypercall interceptor, arms the shared-page staleness on
  // every VM currently in the machine and schedules the planned VM failures.
  // Call after all VMs exist (Experiment arms on Run()). Idempotent.
  void Arm();
  bool armed() const { return armed_; }

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  // Crash/restart observers, run after the machine-level state change. The
  // experiment harness registers a guest-OS reset on crash; workloads
  // register re-registration of their RTAs on restart.
  using VmHandler = std::function<void(Vm*)>;
  void AddCrashHandler(VmHandler handler) { crash_handlers_.push_back(std::move(handler)); }
  void AddRestartHandler(VmHandler handler) { restart_handlers_.push_back(std::move(handler)); }

  // ---- Checkpointing (src/checkpoint) ----
  // Every planned event is identified by its index into the (identical-by-
  // construction) FaultPlan, so restore re-creates the exact callback from
  // the plan rather than serializing closures.
  static constexpr const char* kCkptSection = "faults";
  uint64_t ckpt_owner() const { return ckpt_owner_; }
  enum CkptEventKind : uint32_t {
    kEvVmCrash = 1,           // Payload = vm_failures index.
    kEvVmRestart = 2,         // Payload = vm_failures index.
    kEvPcpuFaultStart = 3,    // Payload = pcpu_faults index.
    kEvPcpuFaultEnd = 4,      // Payload = pcpu_faults index.
    kEvAdversaryTick = 5,     // Payload = (campaign index << 32) | step.
    kEvControlStaleStart = 6, // Payload = control_faults index.
    kEvControlStaleEnd = 7,   // Payload = control_faults index.
  };
  void SaveState(ckpt::Writer& w) const override;
  std::string RestoreState(ckpt::Reader& r) override;
  std::string RebindEvent(uint32_t kind, uint64_t payload, TimeNs when) override;

 private:
  Machine::HypercallFault OnHypercall(Vcpu* caller, const HypercallArgs& args);
  bool InOutage(TimeNs now) const;
  // True when `caller`'s VM sits inside a kChannelOutage window.
  bool InControlOutage(const Vcpu* caller, TimeNs now) const;
  // One event of adversarial campaign `idx`; `step` drives the deterministic
  // alternation (lie flavors, thrash direction) without touching the RNG.
  void AdversaryTick(size_t idx, uint64_t step);

  // Planned-event bodies, indexed into the FaultPlan (shared by Arm() and
  // checkpoint rebind).
  void FireVmCrash(size_t i);
  void FireVmRestart(size_t i);
  void FirePcpuFaultStart(size_t i);
  void FirePcpuFaultEnd(size_t i);
  void FireControlStaleStart(size_t i);
  void FireControlStaleEnd(size_t i);

  EventTag Tag(uint32_t kind, uint64_t payload) const {
    return EventTag{ckpt_owner_, kind, payload};
  }

  Machine* machine_;
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  std::vector<VmHandler> crash_handlers_;
  std::vector<VmHandler> restart_handlers_;
  bool armed_ = false;
  uint64_t ckpt_owner_ = ckpt::Fnv1a64(kCkptSection);
};

}  // namespace rtvirt

#endif  // SRC_FAULTS_FAULT_INJECTOR_H_

// Closed-loop per-tenant SLO controller (DESIGN.md §9).
//
// Watches each tenant RTA's response-time tail through a sliding-window
// quantile estimator and adjusts its reservation through the ordinary guest
// syscall surface — GuestOs::SchedSetAttr with kBwReasonSloControl — so every
// adjustment exercises guest admission, the cross-layer channel (slack
// padding, bounded retry, degraded fallback) and host-side trust accounting
// exactly like an application's own parameter change would.
//
// A feedback controller on this path is itself a failure mode, so the design
// is defensive first:
//   * hysteresis — INC above the SLO band, DEC only well below it; inside
//     the band the controller holds, so it cannot oscillate against the
//     PR 2 compress/shed ladder (and never touches a task that ladder has
//     shed or compressed);
//   * anti-windup — the PI integrator is clamped, and a tick whose action is
//     withheld (pressure, rate limit, ladder) rolls its integration back, so
//     error accumulated while the controller *cannot* act never discharges
//     as a burst of adjustments when it can;
//   * rate limiting — at most max_adjust_per_window adjustments per tenant
//     per rate window, sized well inside the PR 4 token bucket and replan
//     budget: a well-behaved controller must never be quarantined;
//   * saturation handoff — when the host rejects INC saturation_after times
//     in a row (or the slice cap is reached with the SLO still missed) the
//     tenant is marked saturated and the controller stops retrying; the
//     pressure/degradation ladder owns the overload until the tail recovers;
//   * fail-static — when the channel degrades (outage/drops starving the
//     feedback path) the controller freezes the last-good reservation and
//     probes for re-engagement with bounded exponential backoff.

#ifndef SRC_CONTROL_SLO_CONTROLLER_H_
#define SRC_CONTROL_SLO_CONTROLLER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/control/windowed_quantile.h"
#include "src/guest/guest_os.h"
#include "src/guest/task.h"
#include "src/rtvirt/guest_channel.h"
#include "src/sim/simulator.h"

namespace rtvirt {

struct ControlConfig {
  // Master switch: when false the Experiment creates no controller object
  // and schedules no events (default-path reports stay byte-identical).
  bool enabled = false;

  // Decision cadence. Every tick evaluates each watched tenant in
  // registration order (deterministic).
  TimeNs decision_period = Ms(100);

  // Tail quantile tracked against the SLO.
  double target_quantile = 0.999;

  // Hysteresis band, as fractions of the tenant SLO: INC when the tracked
  // quantile exceeds inc_band * slo, DEC only when it falls below
  // dec_band * slo. Between the two the controller holds.
  double inc_band = 0.9;
  double dec_band = 0.45;

  // PI controller on the normalized error (quantile - inc_band*slo) / slo.
  // The integrator only accumulates while the tail is *outside* the
  // hysteresis band (conditional integration); in-band it decays toward
  // zero, so a long healthy stretch cannot wind up a reserve of negative
  // error that would later delay the INC response to a flash crowd.
  double kp = 0.5;
  double ki = 0.2;
  // Anti-windup clamp on the integrator magnitude.
  double integrator_clamp = 2.0;

  // Demand floor: DEC never shrinks the slice below the observed work rate
  // times this headroom factor. The work rate comes from an EMA over the
  // completed jobs' execution demand (alpha per decision tick), which is
  // what prevents INC/DEC oscillation under sustained load: once the tail
  // is healthy the *measured demand*, not the (now comfortable) tail, says
  // how much of the reservation is actually load-bearing.
  double demand_headroom = 1.3;
  double demand_ema_alpha = 0.2;

  // Adjustment sizing: one step changes the slice by step_fraction of its
  // current value, but at least min_step.
  double step_fraction = 0.25;
  TimeNs min_step = Us(4);

  // Per-tenant adjustment rate limit. Defaults sit far inside the PR 4
  // guest_trust budgets (2000 calls/s token bucket, 32 INC/DEC flips per
  // 100 ms): 4 adjustments per 100 ms is two orders of magnitude below both.
  int max_adjust_per_window = 4;
  TimeNs rate_window = Ms(100);

  // Consecutive host INC rejections before the tenant is marked saturated
  // and handed off to the pressure/degradation ladder.
  int saturation_after = 3;

  // Consecutive ticks with a degraded channel (or channel-level actuation
  // failures) before entering fail-static freeze.
  int freeze_after = 2;
  // Re-engage probe backoff while frozen: initial, growth, cap.
  TimeNs reengage_backoff = Ms(100);
  double reengage_backoff_mult = 2.0;
  TimeNs reengage_backoff_max = Sec(2);

  // Minimum samples in the window before a decision is made.
  uint64_t min_samples = 32;

  // Sliding-window quantile estimator geometry (shared by all tenants).
  WindowedQuantile::Options window;
};

// Controller counters, aggregated into ResilienceCounters by the runner.
struct ControlStats {
  uint64_t samples = 0;              // Response-time samples observed.
  uint64_t decisions = 0;            // Ticks with enough samples to evaluate.
  uint64_t inc_adjustments = 0;
  uint64_t dec_adjustments = 0;
  uint64_t hysteresis_holds = 0;     // In-band: no action by design.
  uint64_t demand_floor_holds = 0;   // DEC withheld: slice is load-bearing.
  uint64_t pressure_holds = 0;       // INC withheld under host pressure.
  uint64_t ladder_holds = 0;         // Tenant shed/compressed by PR 2 ladder.
  uint64_t rate_limit_holds = 0;     // Per-window adjustment budget exhausted.
  uint64_t windup_clamps = 0;        // Integrator hit the anti-windup clamp.
  uint64_t actuation_failures = 0;   // SchedSetAttr adjustments rejected.
  uint64_t saturation_events = 0;    // Handed off to the degradation ladder.
  uint64_t saturations_resolved = 0; // Tail recovered after a handoff.
  uint64_t freezes = 0;              // Fail-static entries.
  uint64_t reengage_probes = 0;      // Probes issued while frozen.
  uint64_t reengages = 0;            // Frozen -> engaged transitions.
};

class SloController : public JobObserver {
 public:
  SloController(Simulator* sim, ControlConfig config);

  struct TenantOptions {
    TimeNs slo = 0;        // Response-time SLO; 0 = the task's period.
    TimeNs min_slice = 0;  // DEC floor; 0 = the slice at Watch time.
    TimeNs max_slice = 0;  // INC ceiling; 0 = 4x the slice at Watch time.
  };

  // Starts controlling `task` (already registered with `guest`). Installs
  // itself as the task's observer, forwarding completions to whatever
  // observer was installed before (deadline monitors keep working).
  // `channel` may be null (non-RTVirt framework): the degraded-channel
  // fail-static trigger is then disabled for this tenant.
  void Watch(GuestOs* guest, Task* task, RtvirtGuestChannel* channel,
             TenantOptions opts);
  void Watch(GuestOs* guest, Task* task, RtvirtGuestChannel* channel) {
    Watch(guest, task, channel, TenantOptions());
  }

  // Schedules the periodic decision tick. Idempotent; called by the
  // Experiment on first Run().
  void Arm();
  bool armed() const { return armed_; }

  const ControlStats& stats() const { return stats_; }
  int num_tenants() const { return static_cast<int>(tenants_.size()); }

  // Introspection (tests, benches).
  TimeNs CurrentSlice(const Task* task) const;
  bool Frozen(const Task* task) const;
  bool Saturated(const Task* task) const;
  // Saturation handoffs that have not resolved yet (bench gate: must be 0
  // at the end of a run — the ladder must always dig the tenant out).
  uint64_t unresolved_saturations() const {
    return stats_.saturation_events - stats_.saturations_resolved;
  }

  // JobObserver: records the response time and forwards downstream.
  void OnJobCompleted(const Task& task, const Job& job, TimeNs completion) override;

 private:
  struct Tenant {
    GuestOs* guest = nullptr;
    Task* task = nullptr;
    RtvirtGuestChannel* channel = nullptr;
    JobObserver* downstream = nullptr;
    TimeNs slo = 0;
    TimeNs min_slice = 0;
    TimeNs max_slice = 0;
    TimeNs cur_slice = 0;  // Last slice the controller believes is installed.
    WindowedQuantile window;
    double integrator = 0.0;
    // Demand-floor estimation: completed work since the last tick feeds an
    // EMA of the work rate (CPU fraction).
    uint64_t work_since_tick = 0;
    TimeNs last_tick = 0;
    double work_rate_ema = 0.0;
    // Rate limiting.
    int64_t rate_epoch = -1;
    int adjustments_in_window = 0;
    // Saturation handoff.
    bool saturated = false;
    int inc_rejections = 0;
    // Fail-static.
    bool frozen = false;
    int channel_strikes = 0;
    TimeNs reengage_at = 0;
    TimeNs cur_backoff = 0;

    explicit Tenant(const WindowedQuantile::Options& w) : window(w) {}
  };

  void Tick();
  void Decide(Tenant& t, TimeNs now);
  // True when the tenant's pinned VCPU has a healthy (non-degraded) channel.
  bool ChannelHealthy(const Tenant& t) const;
  // Host pressure as published in the tenant VM's shared page.
  bool UnderPressure(const Tenant& t) const;
  bool RateBudgetExhausted(Tenant& t, TimeNs now);
  // Issues SchedSetAttr(new_slice) with kBwReasonSloControl; returns the
  // guest status code.
  int Actuate(Tenant& t, TimeNs new_slice);
  // Smallest slice the measured demand supports (>= opts min_slice).
  TimeNs DemandFloor(const Tenant& t) const;
  void EnterSaturation(Tenant& t);
  void ResolveSaturation(Tenant& t);
  void EnterFrozen(Tenant& t, TimeNs now);

  Simulator* sim_;
  ControlConfig config_;
  std::vector<Tenant> tenants_;
  std::unordered_map<const Task*, size_t> by_task_;
  ControlStats stats_;
  bool armed_ = false;
};

}  // namespace rtvirt

#endif  // SRC_CONTROL_SLO_CONTROLLER_H_

#include "src/control/slo_controller.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/hv/hypercall.h"

namespace rtvirt {

SloController::SloController(Simulator* sim, ControlConfig config)
    : sim_(sim), config_(config) {
  RTVIRT_CHECK(config_.decision_period > 0, "control: non-positive decision period");
  RTVIRT_CHECK(config_.inc_band > config_.dec_band,
               "control: hysteresis bands inverted (inc %f <= dec %f)",
               config_.inc_band, config_.dec_band);
}

void SloController::Watch(GuestOs* guest, Task* task, RtvirtGuestChannel* channel,
                          TenantOptions opts) {
  RTVIRT_CHECK(task->is_rta() && task->registered(),
               "control: Watch() requires a registered RTA");
  Tenant t(config_.window);
  t.guest = guest;
  t.task = task;
  t.channel = channel;
  t.downstream = task->observer();
  t.slo = opts.slo > 0 ? opts.slo : task->params().period;
  t.min_slice = opts.min_slice > 0 ? opts.min_slice : task->params().slice;
  t.max_slice = opts.max_slice > 0 ? opts.max_slice : task->params().slice * 4;
  t.cur_slice = task->params().slice;
  RTVIRT_CHECK(t.min_slice <= t.cur_slice && t.cur_slice <= t.max_slice,
               "control: slice bounds exclude the registered slice");
  task->set_observer(this);
  by_task_[task] = tenants_.size();
  tenants_.push_back(std::move(t));
}

void SloController::Arm() {
  if (armed_) {
    return;
  }
  armed_ = true;
  sim_->After(config_.decision_period, [this] { Tick(); });
}

void SloController::OnJobCompleted(const Task& task, const Job& job, TimeNs completion) {
  auto it = by_task_.find(&task);
  if (it != by_task_.end()) {
    Tenant& t = tenants_[it->second];
    t.window.Add(completion - job.release, completion);
    t.work_since_tick += static_cast<uint64_t>(job.work);
    ++stats_.samples;
    if (t.downstream != nullptr) {
      t.downstream->OnJobCompleted(task, job, completion);
    }
  }
}

TimeNs SloController::CurrentSlice(const Task* task) const {
  auto it = by_task_.find(task);
  return it == by_task_.end() ? 0 : tenants_[it->second].cur_slice;
}

bool SloController::Frozen(const Task* task) const {
  auto it = by_task_.find(task);
  return it != by_task_.end() && tenants_[it->second].frozen;
}

bool SloController::Saturated(const Task* task) const {
  auto it = by_task_.find(task);
  return it != by_task_.end() && tenants_[it->second].saturated;
}

bool SloController::ChannelHealthy(const Tenant& t) const {
  if (t.channel == nullptr || t.task->vcpu_index() < 0) {
    return true;
  }
  return !t.channel->degraded(t.guest->vm()->vcpu(t.task->vcpu_index()));
}

bool SloController::UnderPressure(const Tenant& t) const {
  return t.guest->vm()->shared_page().pressure_level() > 0;
}

bool SloController::RateBudgetExhausted(Tenant& t, TimeNs now) {
  int64_t epoch = now / config_.rate_window;
  if (epoch != t.rate_epoch) {
    t.rate_epoch = epoch;
    t.adjustments_in_window = 0;
  }
  return t.adjustments_in_window >= config_.max_adjust_per_window;
}

int SloController::Actuate(Tenant& t, TimeNs new_slice) {
  RtaParams params = t.task->params();
  params.slice = new_slice;
  int rc = t.guest->SchedSetAttr(t.task, params, kBwReasonSloControl);
  if (rc == kGuestOk) {
    t.cur_slice = new_slice;
    ++t.adjustments_in_window;
    // A fresh reservation invalidates the error history: drain the
    // integrator so it cannot immediately refire on stale tail samples
    // measured under the old reservation.
    t.integrator = 0.0;
    t.channel_strikes = 0;
  } else {
    ++stats_.actuation_failures;
  }
  return rc;
}

TimeNs SloController::DemandFloor(const Tenant& t) const {
  double demand_slice = t.work_rate_ema * config_.demand_headroom *
                        static_cast<double>(t.task->params().period);
  return std::max(t.min_slice, static_cast<TimeNs>(demand_slice));
}

void SloController::EnterSaturation(Tenant& t) {
  if (!t.saturated) {
    t.saturated = true;
    ++stats_.saturation_events;
  }
}

void SloController::ResolveSaturation(Tenant& t) {
  if (t.saturated) {
    t.saturated = false;
    t.inc_rejections = 0;
    ++stats_.saturations_resolved;
  }
}

void SloController::EnterFrozen(Tenant& t, TimeNs now) {
  if (t.frozen) {
    return;
  }
  // Fail-static: the last-good reservation stays installed (the host holds
  // it until a successful DEC, which the starved channel cannot deliver
  // anyway); the controller merely stops steering until a probe succeeds.
  t.frozen = true;
  t.cur_backoff = config_.reengage_backoff;
  t.reengage_at = now + t.cur_backoff;
  t.integrator = 0.0;
  ++stats_.freezes;
}

void SloController::Tick() {
  TimeNs now = sim_->Now();
  for (Tenant& t : tenants_) {
    Decide(t, now);
  }
  sim_->After(config_.decision_period, [this] { Tick(); });
}

void SloController::Decide(Tenant& t, TimeNs now) {
  if (t.task == nullptr || !t.task->registered() || t.guest->vm()->crashed()) {
    return;
  }
  t.window.Advance(now);

  // Demand-rate EMA (CPU fraction of completed work). Updated every tick —
  // including frozen/held ones — so it decays once a flash crowd subsides
  // and the DEC floor releases the extra reservation for reclaim.
  if (now > t.last_tick) {
    double inst = static_cast<double>(t.work_since_tick) /
                  static_cast<double>(now - t.last_tick);
    t.work_rate_ema = t.last_tick == 0
                          ? inst
                          : (1.0 - config_.demand_ema_alpha) * t.work_rate_ema +
                                config_.demand_ema_alpha * inst;
    t.work_since_tick = 0;
    t.last_tick = now;
  }

  if (t.frozen) {
    if (now < t.reengage_at) {
      return;
    }
    ++stats_.reengage_probes;
    if (!ChannelHealthy(t)) {
      t.cur_backoff = std::min(
          static_cast<TimeNs>(static_cast<double>(t.cur_backoff) *
                              config_.reengage_backoff_mult),
          config_.reengage_backoff_max);
      t.reengage_at = now + t.cur_backoff;
      return;
    }
    t.frozen = false;
    t.channel_strikes = 0;
    t.cur_backoff = 0;
    ++stats_.reengages;
    // Fall through: re-engaged this tick.
  }

  if (!ChannelHealthy(t)) {
    if (++t.channel_strikes >= config_.freeze_after) {
      EnterFrozen(t, now);
    }
    return;
  }
  t.channel_strikes = 0;

  // A tenant the PR 2 ladder has shed or compressed belongs to the ladder:
  // re-asserting parameters here would wipe the compression (SchedSetAttr
  // treats new parameters as a new contract) and fight the pressure
  // protocol's hysteresis with our own.
  if (t.task->shed() || t.task->compressed()) {
    ++stats_.ladder_holds;
    return;
  }

  if (t.window.count() < config_.min_samples) {
    return;
  }
  ++stats_.decisions;

  TimeNs tail = t.window.Quantile(config_.target_quantile);
  double slo = static_cast<double>(t.slo);
  double err = (static_cast<double>(tail) - config_.inc_band * slo) / slo;

  bool above_band = static_cast<double>(tail) > config_.inc_band * slo;
  bool below_band = static_cast<double>(tail) < config_.dec_band * slo;

  // Conditional integration (anti-windup part 1): the integrator only
  // accumulates while the tail is outside the hysteresis band; in-band it
  // bleeds toward zero. A long healthy stretch must not bank a clamped
  // negative reserve that later mutes the first flash-crowd INC ticks.
  // Remember the pre-tick value so a withheld action rolls integration back.
  double pre_integrator = t.integrator;
  if (above_band || below_band) {
    t.integrator += config_.ki * err;
    if (t.integrator > config_.integrator_clamp) {
      t.integrator = config_.integrator_clamp;  // Anti-windup part 2: clamp.
      ++stats_.windup_clamps;
    } else if (t.integrator < -config_.integrator_clamp) {
      t.integrator = -config_.integrator_clamp;
      ++stats_.windup_clamps;
    }
  } else {
    t.integrator *= 0.5;
  }
  double signal = config_.kp * err + t.integrator;

  // Back under the INC threshold means the ladder (or subsiding load) dug
  // the tenant out of any outstanding saturation handoff.
  if (t.saturated && !above_band) {
    ResolveSaturation(t);
  }

  if (above_band && signal > 0.0) {
    if (t.saturated) {
      // Handed off: the degradation ladder owns this overload. No retries.
      return;
    }
    if (UnderPressure(t)) {
      // The host is asking guests to *shrink*; raising our reservation now
      // would fight the compress/shed ladder head on.
      ++stats_.pressure_holds;
      t.integrator = pre_integrator;
      return;
    }
    if (RateBudgetExhausted(t, now)) {
      ++stats_.rate_limit_holds;
      t.integrator = pre_integrator;
      return;
    }
    TimeNs step = std::max(
        config_.min_step, static_cast<TimeNs>(static_cast<double>(t.cur_slice) *
                                              config_.step_fraction));
    TimeNs new_slice = std::min(t.cur_slice + step, t.max_slice);
    if (new_slice <= t.cur_slice) {
      // At the cap with the SLO still missed: more reservation cannot come
      // from this controller. Hand off.
      EnterSaturation(t);
      return;
    }
    int rc = Actuate(t, new_slice);
    if (rc == kGuestOk) {
      ++stats_.inc_adjustments;
      t.inc_rejections = 0;
    } else if (ChannelHealthy(t)) {
      // Host-level rejection with a live channel: capacity, not connectivity.
      if (++t.inc_rejections >= config_.saturation_after) {
        EnterSaturation(t);
      }
    } else if (++t.channel_strikes >= config_.freeze_after) {
      EnterFrozen(t, now);
    }
    return;
  }

  if (below_band && signal < 0.0) {
    // A comfortable tail is necessary but not sufficient to shrink: under
    // sustained load the tail is comfortable *because* the raised
    // reservation absorbs the demand, and handing it back would re-miss the
    // SLO next window — the classic INC/DEC limit cycle. The measured
    // demand rate floors the DEC instead.
    TimeNs floor = DemandFloor(t);
    if (t.cur_slice <= floor) {
      ++stats_.demand_floor_holds;
      t.integrator = pre_integrator;
      return;
    }
    if (RateBudgetExhausted(t, now)) {
      ++stats_.rate_limit_holds;
      t.integrator = pre_integrator;
      return;
    }
    TimeNs step = std::max(
        config_.min_step, static_cast<TimeNs>(static_cast<double>(t.cur_slice) *
                                              config_.step_fraction));
    TimeNs new_slice = std::max(t.cur_slice - step, floor);
    int rc = Actuate(t, new_slice);
    if (rc == kGuestOk) {
      ++stats_.dec_adjustments;
    } else if (!ChannelHealthy(t) && ++t.channel_strikes >= config_.freeze_after) {
      EnterFrozen(t, now);
    }
    return;
  }

  // Inside the hysteresis band (or the PI signal disagrees with the band):
  // hold, by design.
  ++stats_.hysteresis_holds;
}

}  // namespace rtvirt

// Streaming sliding-window quantile estimator for the SLO controller.
//
// HdrHistogram-style log-linear buckets over a ring of fixed time slots: one
// Add is an O(1) pair of array increments (current slot + window aggregate),
// one Quantile is a single O(buckets) scan of the aggregate, and window
// eviction subtracts a whole expired slot from the aggregate in O(buckets).
// Every array is sized in the constructor and never grows, so the steady
// path performs no allocation — the controller runs inside the simulator's
// zero-alloc steady state (asserted by tests/control_test.cc).
//
// Bucket layout (sub = 2^sub_bits sub-buckets per octave): values are first
// quantized to units of 2^unit_shift ns. A unit value u < sub maps exactly
// to bucket u; above that, each octave [2^k, 2^(k+1)) splits into `sub`
// buckets of width 2^(k - sub_bits), giving a bounded relative error of
// 1/sub. Quantile() returns the *upper* edge of the selected bucket, so the
// estimate never under-reports a tail latency — conservative in exactly the
// direction an SLO check needs.

#ifndef SRC_CONTROL_WINDOWED_QUANTILE_H_
#define SRC_CONTROL_WINDOWED_QUANTILE_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "src/common/time.h"

namespace rtvirt {

class WindowedQuantile {
 public:
  struct Options {
    // Sliding window = num_slots * slot_width; eviction granularity is one
    // slot (samples leave the window at most one slot_width late).
    int num_slots = 8;
    TimeNs slot_width = Ms(250);
    // Sub-buckets per octave: relative error <= 1 / 2^sub_bits (~3% at 5).
    int sub_bits = 5;
    // Values are quantized to 2^unit_shift ns before bucketing (10 -> ~1 us
    // units). 0 makes small-value windows exact (unit tests).
    int unit_shift = 10;
    // Octaves above the linear range; values beyond saturate into the top
    // bucket. 22 octaves above ~1 us units covers ~4 s of latency.
    int max_octaves = 22;
  };

  explicit WindowedQuantile(const Options& opts)
      : opts_(opts),
        sub_(1 << opts.sub_bits),
        num_buckets_((opts.max_octaves + 1) * (1 << opts.sub_bits)),
        slots_(static_cast<size_t>(opts.num_slots) * num_buckets_, 0),
        aggregate_(static_cast<size_t>(num_buckets_), 0),
        slot_counts_(static_cast<size_t>(opts.num_slots), 0) {}

  // Records one sample at time `now`. O(1); evicts expired slots first.
  void Add(TimeNs value, TimeNs now) {
    Roll(now);
    int b = BucketOf(value);
    int ring = static_cast<int>(cur_slot_ % opts_.num_slots);
    ++slots_[static_cast<size_t>(ring) * num_buckets_ + b];
    ++slot_counts_[ring];
    ++aggregate_[b];
    ++count_;
  }

  // Advances the window without adding a sample (evicts expired slots).
  void Advance(TimeNs now) { Roll(now); }

  // Folds another estimator's current window into this one's current slot
  // (cross-tenant aggregation). Requires identical bucket geometry.
  void Merge(const WindowedQuantile& other) {
    int ring = static_cast<int>(cur_slot_ % opts_.num_slots);
    int n = std::min(num_buckets_, other.num_buckets_);
    for (int b = 0; b < n; ++b) {
      uint64_t c = other.aggregate_[b];
      slots_[static_cast<size_t>(ring) * num_buckets_ + b] += c;
      slot_counts_[ring] += c;
      aggregate_[b] += c;
      count_ += c;
    }
  }

  uint64_t count() const { return count_; }

  // The q-quantile (0 < q <= 1) of the samples currently in the window,
  // reported as the upper edge of the owning bucket; 0 on an empty window.
  TimeNs Quantile(double q) const {
    if (count_ == 0) {
      return 0;
    }
    auto target = static_cast<uint64_t>(
        static_cast<double>(count_) * std::clamp(q, 0.0, 1.0) + 0.999999);
    target = std::clamp<uint64_t>(target, 1, count_);
    uint64_t seen = 0;
    for (int b = 0; b < num_buckets_; ++b) {
      seen += aggregate_[b];
      if (seen >= target) {
        return UpperEdge(b);
      }
    }
    return UpperEdge(num_buckets_ - 1);
  }

 private:
  // value -> bucket index (clamped into [0, num_buckets_)).
  int BucketOf(TimeNs value) const {
    uint64_t u = value <= 0 ? 0 : static_cast<uint64_t>(value) >> opts_.unit_shift;
    int idx;
    if (u < static_cast<uint64_t>(sub_)) {
      idx = static_cast<int>(u);  // Linear range: exact.
    } else {
      int shift = std::bit_width(u) - opts_.sub_bits - 1;
      auto mantissa = static_cast<int>(u >> shift);  // In [sub, 2*sub).
      idx = shift * sub_ + mantissa;
    }
    return std::min(idx, num_buckets_ - 1);
  }

  // Upper edge of bucket b, back in ns. Exact inverse of BucketOf on the
  // linear range; the +(2^unit_shift - 1) keeps sub-unit remainders covered.
  TimeNs UpperEdge(int b) const {
    uint64_t u_hi;
    int octave = b >> opts_.sub_bits;
    if (octave == 0) {
      u_hi = static_cast<uint64_t>(b);
    } else {
      int shift = octave - 1;
      uint64_t mantissa = static_cast<uint64_t>(sub_ + (b & (sub_ - 1)));
      u_hi = ((mantissa + 1) << shift) - 1;
    }
    return static_cast<TimeNs>(((u_hi + 1) << opts_.unit_shift) - 1);
  }

  // Evicts every slot the window slid past since the last call.
  void Roll(TimeNs now) {
    int64_t slot = now / opts_.slot_width;
    if (slot <= cur_slot_) {
      return;
    }
    int64_t steps = slot - cur_slot_;
    if (steps >= opts_.num_slots) {
      std::fill(slots_.begin(), slots_.end(), 0);
      std::fill(aggregate_.begin(), aggregate_.end(), 0);
      std::fill(slot_counts_.begin(), slot_counts_.end(), 0);
      count_ = 0;
    } else {
      for (int64_t s = cur_slot_ + 1; s <= slot; ++s) {
        int ring = static_cast<int>(s % opts_.num_slots);
        if (slot_counts_[ring] == 0) {
          continue;
        }
        uint64_t* bucket = &slots_[static_cast<size_t>(ring) * num_buckets_];
        for (int b = 0; b < num_buckets_; ++b) {
          aggregate_[b] -= bucket[b];
          bucket[b] = 0;
        }
        count_ -= slot_counts_[ring];
        slot_counts_[ring] = 0;
      }
    }
    cur_slot_ = slot;
  }

  Options opts_;
  int sub_;
  int num_buckets_;
  std::vector<uint64_t> slots_;       // num_slots x num_buckets, row-major.
  std::vector<uint64_t> aggregate_;   // Column sums of the live slots.
  std::vector<uint64_t> slot_counts_; // Samples per ring slot.
  int64_t cur_slot_ = 0;
  uint64_t count_ = 0;
};

}  // namespace rtvirt

#endif  // SRC_CONTROL_WINDOWED_QUANTILE_H_

#include "src/audit/invariant_auditor.h"

#include <cstdio>
#include <utility>

#include "src/guest/guest_os.h"
#include "src/hv/machine.h"
#include "src/rtvirt/dpwrap.h"
#include "src/rtvirt/guest_channel.h"

namespace rtvirt {

InvariantAuditor::InvariantAuditor(Machine* machine, DpWrapScheduler* dpwrap,
                                   AuditorConfig config)
    : machine_(machine), dpwrap_(dpwrap), config_(config) {}

void InvariantAuditor::WatchGuest(GuestOs* guest, RtvirtGuestChannel* channel) {
  guests_.push_back(WatchedGuest{guest, channel});
}

void InvariantAuditor::Arm() {
  if (!config_.enabled) {
    return;
  }
  machine_->sim()->After(config_.period, [this] { Tick(); });
}

void InvariantAuditor::Tick() {
  CheckNow();
  machine_->sim()->After(config_.period, [this] { Tick(); });
}

void InvariantAuditor::Record(const char* invariant, std::string detail) {
  ++total_violations_;
  if (config_.log_to_stderr) {
    std::fprintf(stderr, "rtvirt-audit: t=%lld ns [%s] %s\n",
                 static_cast<long long>(machine_->sim()->Now()), invariant,
                 detail.c_str());
  }
  if (violations_.size() < config_.max_violations) {
    violations_.push_back(
        AuditViolation{machine_->sim()->Now(), invariant, std::move(detail)});
  }
}

size_t InvariantAuditor::CheckNow() {
  ++checks_run_;
  size_t before = total_violations_;
  TimeNs now = machine_->sim()->Now();
  char buf[256];

  // Host scheduler: totals, conservation, plan geometry, carry bounds (and,
  // under pcpu_recovery, plan sums against *effective* capacity).
  if (dpwrap_ != nullptr) {
    for (std::string& d : dpwrap_->AuditPlan()) {
      Record("host-plan", std::move(d));
    }
    // Isolation (guest_trust only — empty otherwise): a well-behaved VM's
    // planned allocation must meet its fluid share no matter what a
    // quarantined co-resident does. Counted separately so harnesses can gate
    // on containment specifically.
    for (std::string& d : dpwrap_->AuditIsolation()) {
      ++isolation_violations_;
      Record("trust-isolation", std::move(d));
    }
  }

  // PCPU capacity state: an offline core must never be executing anyone.
  // Machine::SetPcpuOnline revokes synchronously, so a dispatched VCPU here
  // means the evacuation path lost someone.
  for (int i = 0; i < machine_->num_pcpus(); ++i) {
    const Pcpu* p = machine_->pcpu(i);
    if (!p->online() && p->current() != nullptr) {
      std::snprintf(buf, sizeof(buf), "pcpu %d is offline but vcpu %d is dispatched on it",
                    i, p->current()->global_id());
      Record("pcpu-state", buf);
    }
  }

  for (const WatchedGuest& w : guests_) {
    GuestOs* g = w.guest;
    if (g->vm()->crashed()) {
      // A crashed guest's bookkeeping is frozen mid-flight and its host-side
      // reservations are deliberately orphaned until the watchdog reclaims
      // them; none of the cross-layer invariants are expected to hold.
      continue;
    }
    // Guest-internal bookkeeping.
    for (std::string& d : g->AuditInvariants()) {
      Record("guest-state", std::move(d));
    }
    // Bridge: guest admission vs acknowledged grant vs host reservation.
    if (w.channel == nullptr || dpwrap_ == nullptr ||
        g->sched_class() != GuestSchedClass::kPartitionedEdf) {
      continue;
    }
    for (int i = 0; i < g->num_vcpus(); ++i) {
      const Vcpu* v = g->vm()->vcpu(i);
      Bandwidth granted = w.channel->GrantedBw(v);
      // What the channel would request for the guest's current admission
      // total: its padded demand must fit inside the grant the host last
      // acknowledged, otherwise the guest admitted work the host never
      // agreed to serve.
      Bandwidth padded = w.channel->WithSlack(g->VcpuReservedBw(i), g->VcpuMinPeriod(i));
      if (padded > granted) {
        std::snprintf(buf, sizeof(buf),
                      "vcpu %d: guest-admitted (padded) %lld ppb exceeds acked grant %lld ppb",
                      v->index(), static_cast<long long>(padded.ppb()),
                      static_cast<long long>(granted.ppb()));
        Record("guest-grant", buf);
      }
      // The host may hold more than the channel believes (orphans from a
      // previous guest incarnation awaiting the watchdog), never less.
      Bandwidth host = dpwrap_->ReservedBw(v);
      if (granted > host) {
        std::snprintf(buf, sizeof(buf),
                      "vcpu %d: acked grant %lld ppb exceeds host reservation %lld ppb",
                      v->index(), static_cast<long long>(granted.ppb()),
                      static_cast<long long>(host.ppb()));
        Record("grant-host", buf);
      }
    }
  }

  // Shared pages: publication timestamps must not come from the future.
  for (int vi = 0; vi < machine_->num_vms(); ++vi) {
    const Vm* vm = machine_->vm(vi);
    for (int i = 0; i < vm->num_vcpus(); ++i) {
      TimeNs published = vm->shared_page().last_publish_time(i);
      if (published > now) {
        std::snprintf(buf, sizeof(buf),
                      "vm %d vcpu %d: deadline published at %lld ns, after now %lld ns", vi,
                      i, static_cast<long long>(published), static_cast<long long>(now));
        Record("page-time", buf);
      }
    }
  }
  return total_violations_ - before;
}

}  // namespace rtvirt

// Cross-layer invariant auditor.
//
// The cross-layer scheduling contract spans three bookkeeping domains — the
// guest scheduler's per-VCPU admission totals, the channel's record of what
// the host acknowledged, and the host scheduler's reservation table and plan.
// Each layer maintains its own view, and a bug in any hypercall/recovery path
// silently desynchronizes them long before a deadline miss makes it visible.
// The auditor periodically checks the conservation invariants that tie the
// views together and reports structured diagnostics:
//
//   host   - reservation totals consistent and within capacity (+epsilon),
//            plan segments inside the slice and disjoint, per-VCPU supply
//            bounded by the reservation plus carry backlog (AuditPlan);
//   pcpu   - an offline core never has a VCPU dispatched on it (the
//            SetPcpuOnline evacuation path must never lose anyone);
//   guest  - per-VCPU admitted bandwidth equals the sum of pinned effective
//            bandwidths and fits the VCPU capacity; shed tasks hold no pin
//            or queued jobs (GuestOs::AuditInvariants);
//   bridge - the guest's padded admission total never exceeds the grant the
//            channel last acknowledged, and that grant never exceeds what
//            the host actually holds for the VCPU;
//   page   - shared-page publication timestamps never come from the future.
//
// Everything is read-only and event-count-neutral when disabled: with
// `enabled == false`, Arm() schedules nothing, so simulation traces are
// byte-identical with or without an auditor constructed.

#ifndef SRC_AUDIT_INVARIANT_AUDITOR_H_
#define SRC_AUDIT_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace rtvirt {

class GuestOs;
class Machine;
class DpWrapScheduler;
class RtvirtGuestChannel;

struct AuditorConfig {
  // Master switch: when false, Arm() is a no-op (no events scheduled).
  bool enabled = false;
  // Cadence of the periodic check.
  TimeNs period = Ms(10);
  // Stored-violation cap; the total count keeps incrementing past it.
  size_t max_violations = 64;
  // Also print each violation to stderr as it is recorded.
  bool log_to_stderr = false;
};

struct AuditViolation {
  TimeNs time = 0;         // Simulation time of the failed check.
  std::string invariant;   // Category: host-plan, trust-isolation, pcpu-state,
                           // guest-state, guest-grant, grant-host, page-time.
  std::string detail;      // Human-readable diagnostic.
};

class InvariantAuditor {
 public:
  // `dpwrap` may be null (baseline host schedulers): host-side and bridge
  // checks are skipped and only watched guests are audited.
  InvariantAuditor(Machine* machine, DpWrapScheduler* dpwrap, AuditorConfig config = {});

  // Registers a guest for auditing. `channel` may be null (traditional,
  // host-unaware guests): the bridge checks are skipped for this guest.
  void WatchGuest(GuestOs* guest, RtvirtGuestChannel* channel);

  // Starts the periodic check loop (no-op unless config.enabled).
  void Arm();

  // Runs every check once, immediately; returns how many new violations the
  // pass recorded. Usable without Arm() (tests call it at chosen instants).
  size_t CheckNow();

  const AuditorConfig& config() const { return config_; }
  const std::vector<AuditViolation>& violations() const { return violations_; }
  uint64_t total_violations() const { return total_violations_; }
  // trust-isolation subset of the total: containment failures of the
  // guest_trust boundary (stored violations are capped; this count is not).
  uint64_t isolation_violations() const { return isolation_violations_; }
  uint64_t checks_run() const { return checks_run_; }

 private:
  struct WatchedGuest {
    GuestOs* guest = nullptr;
    RtvirtGuestChannel* channel = nullptr;
  };

  void Tick();
  void Record(const char* invariant, std::string detail);

  Machine* machine_;
  DpWrapScheduler* dpwrap_;
  AuditorConfig config_;
  std::vector<WatchedGuest> guests_;
  std::vector<AuditViolation> violations_;
  uint64_t total_violations_ = 0;
  uint64_t isolation_violations_ = 0;
  uint64_t checks_run_ = 0;
};

}  // namespace rtvirt

#endif  // SRC_AUDIT_INVARIANT_AUDITOR_H_

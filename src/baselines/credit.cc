#include "src/baselines/credit.h"

#include <algorithm>
#include <cassert>

#include "src/hv/machine.h"

namespace rtvirt {

CreditScheduler::CreditScheduler(CreditConfig config) : config_(config) {}

void CreditScheduler::Attach(Machine* machine) {
  HostScheduler::Attach(machine);
  accounting_event_ = machine_->sim()->After(config_.timeslice, [this] { Accounting(); });
  tick_events_.resize(machine_->num_pcpus());
  for (int i = 0; i < machine_->num_pcpus(); ++i) {
    tick_events_[i] = machine_->sim()->After(config_.tick_period, [this, i] { Tick(i); });
  }
}

void CreditScheduler::VcpuInserted(Vcpu* vcpu) {
  all_vcpus_.push_back(vcpu);
  CreditState st;
  st.vcpu = vcpu;
  states_[vcpu] = st;
}

void CreditScheduler::VcpuRemoved(Vcpu* vcpu) {
  all_vcpus_.erase(std::remove(all_vcpus_.begin(), all_vcpus_.end(), vcpu), all_vcpus_.end());
  states_.erase(vcpu);
}

int CreditScheduler::TotalWeight() const {
  int total = 0;
  for (const Vcpu* v : all_vcpus_) {
    total += v->vm()->weight();
  }
  return total;
}

void CreditScheduler::Tick(int pcpu_id) {
  machine_->pcpu(pcpu_id)->InjectOverhead(config_.tick_cost);
  // Credit is tick-driven: the tick settles accounting and re-evaluates the
  // runqueue (boost decay and priority changes take effect here).
  machine_->pcpu(pcpu_id)->SettleAccounting();
  machine_->pcpu(pcpu_id)->RequestReschedule();
  tick_events_[pcpu_id] =
      machine_->sim()->After(config_.tick_period, [this, pcpu_id] { Tick(pcpu_id); });
}

void CreditScheduler::Accounting() {
  for (int i = 0; i < machine_->num_pcpus(); ++i) {
    machine_->pcpu(i)->SettleAccounting();  // Charge consumption to this window.
  }
  TimeNs pool = config_.timeslice * machine_->num_pcpus();
  int total_weight = TotalWeight();
  for (auto& [v, st] : states_) {
    if (total_weight > 0) {
      st.credits += pool * st.vcpu->vm()->weight() / total_weight;
    }
    // Cap both ways, as Xen does, so neither hoarding nor debt is unbounded.
    st.credits = std::clamp<TimeNs>(st.credits, -config_.timeslice, config_.timeslice);
    st.priority = st.credits >= 0 ? Priority::kUnder : Priority::kOver;
    st.boost_ran = 0;
    st.window_consumed = 0;
    st.capped_out = false;
  }
  accounting_event_ = machine_->sim()->After(config_.timeslice, [this] { Accounting(); });
  for (int i = 0; i < machine_->num_pcpus(); ++i) {
    machine_->pcpu(i)->RequestReschedule();
  }
}

void CreditScheduler::SetCap(Vcpu* vcpu, Bandwidth cap) { states_[vcpu].cap = cap; }

void CreditScheduler::AccountRun(Vcpu* vcpu, TimeNs ran) {
  auto it = states_.find(vcpu);
  if (it == states_.end()) {
    return;
  }
  CreditState& st = it->second;
  st.credits -= ran;
  st.window_consumed += ran;
  if (st.cap > Bandwidth::Zero() && st.window_consumed >= st.cap.SliceOf(config_.timeslice)) {
    st.capped_out = true;  // Parked until the next accounting window.
  }
  st.last_run = machine_->sim()->Now();
  if (st.priority == Priority::kBoost) {
    st.boost_ran += ran;
    if (st.boost_ran >= config_.tick_period) {
      st.priority = st.credits >= 0 ? Priority::kUnder : Priority::kOver;
    }
  }
}

void CreditScheduler::VcpuWake(Vcpu* vcpu) {
  CreditState& st = states_[vcpu];
  if (st.credits >= 0) {
    st.priority = Priority::kBoost;  // Boost on wake from idle.
    st.boost_ran = 0;
  }
  // Tickle an idle PCPU (round-robin: simultaneous wakes must hit distinct
  // PCPUs), else the PCPU running the lowest-priority VCPU.
  Pcpu* victim = nullptr;
  Priority victim_pri = st.priority;
  int n = machine_->num_pcpus();
  for (int k = 0; k < n; ++k) {
    Pcpu* p = machine_->pcpu((tickle_cursor_ + k) % n);
    if (p->current() == nullptr) {
      tickle_cursor_ = (p->id() + 1) % n;
      p->RequestReschedule();
      return;
    }
    auto it = states_.find(p->current());
    if (it != states_.end() && it->second.priority > victim_pri) {
      victim_pri = it->second.priority;
      victim = p;
    }
  }
  if (victim != nullptr) {
    victim->RequestReschedule();
  }
}

void CreditScheduler::VcpuBlock(Vcpu* vcpu) { (void)vcpu; }

ScheduleDecision CreditScheduler::PickNext(Pcpu* pcpu) {
  TimeNs now = machine_->sim()->Now();
  Vcpu* cur = pcpu->current();
  if (cur != nullptr && !cur->blocked()) {
    // Honor the ratelimit: do not preempt a VCPU that just started.
    const CreditState& st = states_[cur];
    if (!st.capped_out && now < st.dispatched_at + config_.ratelimit) {
      return ScheduleDecision{cur, st.dispatched_at + config_.ratelimit};
    }
  }
  CreditState* best = nullptr;
  // Insertion order: deterministic round-robin tie-breaking.
  for (Vcpu* vcpu : all_vcpus_) {
    CreditState& st = states_[vcpu];
    bool continuing = st.vcpu->running() && st.vcpu->pcpu() == pcpu;
    if (!st.vcpu->runnable() && !continuing) {
      continue;
    }
    if (st.capped_out) {
      continue;  // Over its cap; parked until the next accounting.
    }
    if (best == nullptr || st.priority < best->priority ||
        (st.priority == best->priority && st.last_run < best->last_run)) {
      best = &st;
    }
  }
  if (best == nullptr) {
    return ScheduleDecision{nullptr, kTimeNever};
  }
  if (best->vcpu != cur) {
    best->dispatched_at = now;
  }
  TimeNs horizon = config_.timeslice;
  if (best->cap > Bandwidth::Zero()) {
    horizon = std::min(horizon, std::max<TimeNs>(
        best->cap.SliceOf(config_.timeslice) - best->window_consumed, 1));
  }
  return ScheduleDecision{best->vcpu, now + horizon};
}

TimeNs CreditScheduler::ScheduleCost(const Pcpu* pcpu) const {
  (void)pcpu;
  return config_.pick_cost;
}

TimeNs CreditScheduler::DispatchCost(const Vcpu* next) const {
  (void)next;
  return config_.dispatch_cost;
}

}  // namespace rtvirt

#include "src/baselines/server_edf.h"

#include <algorithm>
#include <cassert>

#include "src/hv/machine.h"

namespace rtvirt {

ServerEdfScheduler::ServerEdfScheduler(ServerEdfConfig config) : config_(config) {}

void ServerEdfScheduler::Attach(Machine* machine) {
  HostScheduler::Attach(machine);
  if (config_.quantum > 0) {
    // Quantum-driven: every PCPU re-enters schedule() each quantum.
    quantum_ticks_.resize(machine_->num_pcpus());
    for (int i = 0; i < machine_->num_pcpus(); ++i) {
      quantum_ticks_[i] =
          machine_->sim()->After(config_.quantum, [this, i] { QuantumTick(i); });
    }
  }
}

void ServerEdfScheduler::QuantumTick(int pcpu_id) {
  machine_->pcpu(pcpu_id)->RequestReschedule();
  quantum_ticks_[pcpu_id] =
      machine_->sim()->After(config_.quantum, [this, pcpu_id] { QuantumTick(pcpu_id); });
}

void ServerEdfScheduler::VcpuInserted(Vcpu* vcpu) { all_vcpus_.push_back(vcpu); }

void ServerEdfScheduler::VcpuRemoved(Vcpu* vcpu) {
  all_vcpus_.erase(std::remove(all_vcpus_.begin(), all_vcpus_.end(), vcpu), all_vcpus_.end());
  auto it = servers_.find(vcpu);
  if (it != servers_.end()) {
    machine_->sim()->Cancel(it->second.replenish_event);
    servers_.erase(it);
  }
}

void ServerEdfScheduler::SetServer(Vcpu* vcpu, ServerParams params) {
  assert(params.budget > 0 && params.period >= params.budget);
  Server& s = servers_[vcpu];
  machine_->sim()->Cancel(s.replenish_event);
  s.vcpu = vcpu;
  s.params = params;
  Replenish(vcpu);
}

void ServerEdfScheduler::Replenish(Vcpu* vcpu) {
  // Settle any in-flight consumption first, so it is charged against the
  // old budget and not silently deducted from the fresh one.
  if (vcpu->running()) {
    vcpu->pcpu()->SettleAccounting();
  }
  Server& s = servers_[vcpu];
  TimeNs now = machine_->sim()->Now();
  // Quantum-driven overruns (negative budget) are repaid here; positive
  // leftovers (deferrable) are preserved but never exceed one budget.
  s.budget = std::min(s.params.budget, s.budget + s.params.budget);
  s.deadline = now + s.params.period;
  s.replenish_event = machine_->sim()->After(s.params.period, [this, vcpu] { Replenish(vcpu); });
  if (vcpu->runnable() || vcpu->running()) {
    TickleFor(vcpu);
  }
}

void ServerEdfScheduler::AccountRun(Vcpu* vcpu, TimeNs ran) {
  auto it = servers_.find(vcpu);
  if (it != servers_.end()) {
    // May go negative in quantum-driven mode (enforcement lag); the debt is
    // repaid at replenishment.
    it->second.budget -= ran;
  }
}

void ServerEdfScheduler::TickleFor(Vcpu* vcpu) {
  // Prefer an idle PCPU, then one running best-effort work, then (for a
  // server) the PCPU running the latest-deadline server — classic gEDF.
  // Idle PCPUs are taken round-robin: simultaneous wakes/replenishments must
  // tickle *distinct* PCPUs or the coalesced reschedule serves only one.
  Pcpu* best_effort_pcpu = nullptr;
  Pcpu* latest_pcpu = nullptr;
  TimeNs latest_deadline = -1;
  int n = machine_->num_pcpus();
  for (int k = 0; k < n; ++k) {
    Pcpu* p = machine_->pcpu((tickle_cursor_ + k) % n);
    Vcpu* cur = p->current();
    if (cur == nullptr) {
      tickle_cursor_ = (p->id() + 1) % n;
      p->RequestReschedule();
      return;
    }
    auto it = servers_.find(cur);
    if (it == servers_.end()) {
      best_effort_pcpu = p;
    } else if (it->second.deadline > latest_deadline) {
      latest_deadline = it->second.deadline;
      latest_pcpu = p;
    }
  }
  if (best_effort_pcpu != nullptr) {
    best_effort_pcpu->RequestReschedule();
    return;
  }
  auto it = servers_.find(vcpu);
  if (it != servers_.end() && latest_pcpu != nullptr && it->second.deadline < latest_deadline) {
    latest_pcpu->RequestReschedule();
  }
}

void ServerEdfScheduler::VcpuWake(Vcpu* vcpu) {
  auto it = servers_.find(vcpu);
  if (it == servers_.end() || it->second.budget > 0) {
    TickleFor(vcpu);
  }
}

void ServerEdfScheduler::VcpuBlock(Vcpu* vcpu) { (void)vcpu; }

Vcpu* ServerEdfScheduler::PickBestEffort(Pcpu* pcpu) {
  size_t n = all_vcpus_.size();
  for (size_t i = 0; i < n; ++i) {
    Vcpu* v = all_vcpus_[(be_cursor_ + i) % n];
    if (servers_.find(v) != servers_.end()) {
      continue;  // Depleted servers wait for replenishment (non-work-conserving).
    }
    bool continuing = v->running() && v->pcpu() == pcpu;
    if (!v->runnable() && !continuing) {
      continue;
    }
    be_cursor_ = (be_cursor_ + i + 1) % n;
    return v;
  }
  return nullptr;
}

ScheduleDecision ServerEdfScheduler::PickNext(Pcpu* pcpu) {
  TimeNs now = machine_->sim()->Now();
  Server* best = nullptr;
  // Iterate in VCPU insertion order so EDF tie-breaking is deterministic.
  for (Vcpu* v : all_vcpus_) {
    auto it = servers_.find(v);
    if (it == servers_.end()) {
      continue;
    }
    Server& s = it->second;
    if (s.budget <= 0) {
      continue;
    }
    bool continuing = s.vcpu->running() && s.vcpu->pcpu() == pcpu;
    if (!s.vcpu->runnable() && !continuing) {
      continue;  // Blocked, or running on another PCPU.
    }
    // '<=': deadline ties go to the later-inserted server, matching the
    // paper's Figure 1a schedule (VM3 runs before VM1 at their shared
    // deadline); EDF permits either order.
    if (best == nullptr || s.deadline <= best->deadline) {
      best = &s;
    }
  }
  if (best != nullptr) {
    TimeNs horizon = best->budget;
    if (config_.quantum > 0) {
      // Budget enforcement only at quantum boundaries.
      horizon = (horizon + config_.quantum - 1) / config_.quantum * config_.quantum;
    }
    return ScheduleDecision{best->vcpu, now + horizon};
  }
  Vcpu* be = PickBestEffort(pcpu);
  if (be != nullptr) {
    return ScheduleDecision{be, now + config_.best_effort_quantum};
  }
  return ScheduleDecision{nullptr, kTimeNever};
}

TimeNs ServerEdfScheduler::ScheduleCost(const Pcpu* pcpu) const {
  (void)pcpu;
  return config_.pick_cost;
}

}  // namespace rtvirt

// Xen's default Credit scheduler (proportional share), the non-real-time
// baseline of the paper's section 4.4 experiments.
//
// Model: every accounting period (the "timeslice"), each VCPU earns credits
// proportional to its VM's weight and pays for the CPU time it consumed.
// VCPUs with positive credits run at UNDER priority, exhausted ones at OVER.
// A VCPU waking from idle is boosted (BOOST) ahead of UNDER/OVER work until
// it has consumed a tick's worth of CPU — this is why Credit serves an idle
// latency-sensitive VM quickly on average while providing no tail guarantee.
// The ratelimit prevents preemption of a VCPU that has run for less than the
// configured minimum. A periodic accounting tick charges interference on
// every PCPU (Credit is quantum-driven, unlike the event-driven RT
// schedulers), which is the source of its longer dedicated-CPU tail
// (Table 4).

#ifndef SRC_BASELINES_CREDIT_H_
#define SRC_BASELINES_CREDIT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/hv/host_scheduler.h"
#include "src/sim/simulator.h"

namespace rtvirt {

struct CreditConfig {
  // Accounting period and round-robin quantum (Xen default 30 ms; the paper
  // sets it to 1 ms for the memcached experiments).
  TimeNs timeslice = Ms(30);
  // Minimum uninterrupted run before a preemption is honored.
  TimeNs ratelimit = Us(500);
  // Periodic scheduler tick per PCPU and its interference cost.
  TimeNs tick_period = Ms(10);
  TimeNs tick_cost = Us(40);
  TimeNs pick_cost = 500;  // ns
  // Wake->dispatch path cost (softirq + timer reprogram + runqueue ops),
  // calibrated from the paper's Table 4 dedicated-CPU Credit percentiles.
  TimeNs dispatch_cost = Us(60);
};

class CreditScheduler : public HostScheduler {
 public:
  explicit CreditScheduler(CreditConfig config = {});

  // Xen Credit "cap": an upper bound on the CPU a VCPU may consume per
  // accounting window, even when the host is idle (0 = uncapped). The paper
  // uses caps to bound each VM to its allocated bandwidth in Figure 5b.
  void SetCap(Vcpu* vcpu, Bandwidth cap);

  std::string_view name() const override { return "credit"; }
  void Attach(Machine* machine) override;
  void VcpuInserted(Vcpu* vcpu) override;
  void VcpuRemoved(Vcpu* vcpu) override;
  void VcpuWake(Vcpu* vcpu) override;
  void VcpuBlock(Vcpu* vcpu) override;
  ScheduleDecision PickNext(Pcpu* pcpu) override;
  void AccountRun(Vcpu* vcpu, TimeNs ran) override;
  TimeNs ScheduleCost(const Pcpu* pcpu) const override;
  TimeNs DispatchCost(const Vcpu* next) const override;

 private:
  enum class Priority { kBoost = 0, kUnder = 1, kOver = 2 };

  struct CreditState {
    Vcpu* vcpu = nullptr;
    TimeNs credits = 0;      // Signed; ns of entitled CPU time.
    TimeNs consumed = 0;     // Since the last accounting.
    Priority priority = Priority::kUnder;
    TimeNs boost_ran = 0;    // CPU consumed while boosted.
    TimeNs last_run = 0;     // Round-robin key within a priority class.
    TimeNs dispatched_at = 0;  // For the ratelimit.
    Bandwidth cap;             // Zero: uncapped.
    TimeNs window_consumed = 0;  // Consumption in the current window.
    bool capped_out = false;     // Hit the cap; parked until accounting.
  };

  void Accounting();
  void Tick(int pcpu_id);
  int TotalWeight() const;

  CreditConfig config_;
  std::unordered_map<const Vcpu*, CreditState> states_;
  std::vector<Vcpu*> all_vcpus_;
  Simulator::EventId accounting_event_;
  int tickle_cursor_ = 0;
  std::vector<Simulator::EventId> tick_events_;
  bool started_ = false;
};

}  // namespace rtvirt

#endif  // SRC_BASELINES_CREDIT_H_

// Host-level EDF scheduling of server VCPUs.
//
// Each configured VCPU is a deferrable server with a (budget, period)
// interface: the budget replenishes at every period boundary, the server's
// EDF deadline is the end of its current period, and an idle server retains
// its budget until the next replenishment. Runnable servers with budget are
// scheduled globally by earliest deadline (gEDF), migrating freely between
// PCPUs — this is RT-Xen 2.0's best configuration (gEDF host + deferrable
// server) and, with interfaces taken directly from workload parameters, the
// traditional VMM-level EDF of the paper's Figure 1 motivational example.
// There is no cross-layer awareness: hypercalls are rejected.

#ifndef SRC_BASELINES_SERVER_EDF_H_
#define SRC_BASELINES_SERVER_EDF_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"
#include "src/hv/host_scheduler.h"
#include "src/sim/simulator.h"

namespace rtvirt {

struct ServerParams {
  TimeNs budget = 0;
  TimeNs period = 0;
};

struct ServerEdfConfig {
  // Round-robin quantum for best-effort (serverless) VCPUs.
  TimeNs best_effort_quantum = Ms(1);
  // Virtual cost of one PickNext: a sorted-runqueue gEDF pick.
  TimeNs pick_cost = 900;  // ns
  // Quantum-driven mode (RT-Xen 2.0 as evaluated by the paper; 0 = the
  // event-driven "new experimental version" of section 4.5). When set,
  // budget enforcement happens only at quantum boundaries — a server can
  // overrun its budget by up to a quantum (repaid at replenishment, which
  // caps the stored budget at Θ) — and every PCPU re-invokes schedule()
  // each quantum, inflating the schedule() call count.
  TimeNs quantum = 0;
};

class ServerEdfScheduler : public HostScheduler {
 public:
  explicit ServerEdfScheduler(ServerEdfConfig config = {});

  // Configures (or reconfigures) a VCPU's server interface. The first period
  // starts at the current simulation time.
  void SetServer(Vcpu* vcpu, ServerParams params);

  std::string_view name() const override { return "server-gedf"; }
  void Attach(Machine* machine) override;
  void VcpuInserted(Vcpu* vcpu) override;
  void VcpuRemoved(Vcpu* vcpu) override;
  void VcpuWake(Vcpu* vcpu) override;
  void VcpuBlock(Vcpu* vcpu) override;
  ScheduleDecision PickNext(Pcpu* pcpu) override;
  void AccountRun(Vcpu* vcpu, TimeNs ran) override;
  TimeNs ScheduleCost(const Pcpu* pcpu) const override;

 private:
  struct Server {
    Vcpu* vcpu = nullptr;
    ServerParams params;
    TimeNs budget = 0;    // Remaining budget in the current period.
    TimeNs deadline = 0;  // End of the current period (EDF key).
    Simulator::EventId replenish_event;
  };

  void Replenish(Vcpu* vcpu);
  void QuantumTick(int pcpu_id);
  // Preempt the PCPU running the lowest-priority work if `vcpu` beats it.
  void TickleFor(Vcpu* vcpu);
  Vcpu* PickBestEffort(Pcpu* pcpu);

  ServerEdfConfig config_;
  std::unordered_map<const Vcpu*, Server> servers_;
  std::vector<Vcpu*> all_vcpus_;
  std::vector<Simulator::EventId> quantum_ticks_;
  size_t be_cursor_ = 0;
  int tickle_cursor_ = 0;
};

}  // namespace rtvirt

#endif  // SRC_BASELINES_SERVER_EDF_H_

// Exact sample statistics: percentiles, histograms, CDF dumps.
//
// The evaluation reports tail percentiles (99th, 99.9th) over at most a few
// hundred thousand samples per run, so samples are kept exactly and sorted on
// demand rather than sketched.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace rtvirt {

class Samples {
 public:
  void Add(double v);
  void Clear();

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double Min() const;
  double Max() const;
  double Mean() const;
  double Stddev() const;
  double Sum() const;

  // Percentile with nearest-rank interpolation; p in [0, 100].
  double Percentile(double p) const;

  // Fraction of samples <= threshold, in [0, 1].
  double FractionAtMost(double threshold) const;

  // (value, cumulative fraction) pairs at `points` evenly spaced ranks,
  // suitable for plotting a CDF like Figure 5.
  struct CdfPoint {
    double value;
    double fraction;
  };
  std::vector<CdfPoint> Cdf(size_t points) const;

  // Checkpoint accessors: the raw sample vector in its current order.
  // Restoring marks the set unsorted; the next ordered query re-sorts, which
  // yields the same bytes either way (sorting is deterministic).
  const std::vector<double>& raw_values() const { return values_; }
  void RestoreValues(std::vector<double> values) {
    values_ = std::move(values);
    sorted_ = false;
  }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double v);
  size_t bucket_count() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t total() const { return total_; }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;

  // Multi-line ASCII rendering (for example programs).
  std::string Render(size_t max_width) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace rtvirt

#endif  // SRC_SIM_STATS_H_

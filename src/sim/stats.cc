#include "src/sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>

namespace rtvirt {

void Samples::Add(double v) {
  values_.push_back(v);
  sorted_ = values_.size() <= 1;
}

void Samples::Clear() {
  values_.clear();
  sorted_ = true;
}

void Samples::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::Min() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Samples::Max() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Samples::Sum() const { return std::accumulate(values_.begin(), values_.end(), 0.0); }

double Samples::Mean() const {
  return values_.empty() ? 0.0 : Sum() / static_cast<double>(values_.size());
}

double Samples::Stddev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  double mean = Mean();
  double acc = 0.0;
  for (double v : values_) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::Percentile(double p) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  if (p <= 0.0) {
    return values_.front();
  }
  if (p >= 100.0) {
    return values_.back();
  }
  // Nearest-rank (ceil) percentile, the convention used for tail-latency SLOs:
  // the 99.9th percentile is the smallest value v such that at least 99.9% of
  // samples are <= v.
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values_.size()) - 1e-9));
  if (rank == 0) {
    rank = 1;
  }
  return values_[rank - 1];
}

double Samples::FractionAtMost(double threshold) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  auto it = std::upper_bound(values_.begin(), values_.end(), threshold);
  return static_cast<double>(it - values_.begin()) / static_cast<double>(values_.size());
}

std::vector<Samples::CdfPoint> Samples::Cdf(size_t points) const {
  std::vector<CdfPoint> out;
  if (values_.empty() || points == 0) {
    return out;
  }
  EnsureSorted();
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points);
    size_t rank = static_cast<size_t>(
        std::ceil(frac * static_cast<double>(values_.size()) - 1e-9));
    if (rank == 0) {
      rank = 1;
    }
    out.push_back(CdfPoint{values_[rank - 1], frac});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::Add(double v) {
  ++total_;
  if (v < lo_) {
    ++underflow_;
    return;
  }
  if (v >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<size_t>((v - lo_) / width_);
  if (idx >= counts_.size()) {
    idx = counts_.size() - 1;  // Floating point edge at hi_.
  }
  ++counts_[idx];
}

double Histogram::BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::BucketHigh(size_t i) const { return BucketLow(i) + width_; }

std::string Histogram::Render(size_t max_width) const {
  uint64_t peak = underflow_ > overflow_ ? underflow_ : overflow_;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  if (peak == 0) {
    peak = 1;
  }
  std::ostringstream out;
  auto bar = [&](uint64_t c) {
    auto n = static_cast<size_t>(static_cast<double>(c) / static_cast<double>(peak) *
                                 static_cast<double>(max_width));
    return std::string(n, '#');
  };
  if (underflow_ > 0) {
    out << "  < " << lo_ << ": " << underflow_ << " " << bar(underflow_) << "\n";
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    out << "  [" << BucketLow(i) << ", " << BucketHigh(i) << "): " << counts_[i] << " "
        << bar(counts_[i]) << "\n";
  }
  if (overflow_ > 0) {
    out << "  >= " << hi_ << ": " << overflow_ << " " << bar(overflow_) << "\n";
  }
  return out.str();
}

}  // namespace rtvirt

// Cancellable discrete-event queue with two backends behind one API.
//
// Events are callbacks ordered by (time, insertion sequence); both backends
// produce the exact same total order, so a run is byte-identical regardless
// of which one drives it (tests/determinism_test.cc drives them in lockstep
// to prove it).
//
//  * kCalendar (default): a calendar queue — a ring of power-of-two-width
//    time buckets (the time-to-bucket mapping is a shift, never a 64-bit
//    division), each bucket a doubly-linked list kept (time, seq)-sorted,
//    with nodes recycled through a chunked freelist arena. Insert and pop
//    are O(1) amortized, cancellation really unlinks the entry in O(1), and
//    the steady state after warm-up performs no allocations at all (the
//    perf suite asserts this, bench/perf_suite).
//  * kHeap: the original binary heap. Cancellation is lazy — a cancelled
//    entry stays in the heap and is skipped on pop — but tombstones are now
//    compacted away whenever they outnumber live entries 2:1, so cancel-heavy
//    workloads no longer grow the heap without bound.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/time.h"
#include "src/sim/sim_config.h"

namespace rtvirt {

struct EventNode;

// Checkpoint identity of a scheduled event (src/checkpoint). Tagged events
// carry the owning component's id (FNV-1a of its checkpoint section name)
// plus a component-private (kind, payload) pair sufficient to re-create the
// callback on restore. owner == 0 means untagged: the event cannot survive a
// checkpoint, and SaveCheckpoint fails loudly if one is live.
struct EventTag {
  uint64_t owner = 0;
  uint32_t kind = 0;
  uint64_t payload = 0;
  bool tagged() const { return owner != 0; }
};

// Operation and allocation counters, cheap enough to maintain always. The
// perf recorder reads these to assert the zero-alloc steady state, and the
// heap-compaction regression test reads `backlog` to assert bounded memory.
struct EventQueueStats {
  uint64_t schedules = 0;
  uint64_t cancels = 0;
  uint64_t pops = 0;
  // Node-storage allocations: arena chunk growths (calendar) or per-event
  // node allocations (heap). Zero growth after warm-up on the calendar path.
  uint64_t node_allocs = 0;
  uint64_t calendar_resizes = 0;
  uint64_t heap_compactions = 0;
  // Entries currently held by the backend, including heap tombstones; the
  // compaction rule bounds this at O(live entries).
  size_t backlog = 0;
  size_t free_nodes = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Identifies a scheduled event for cancellation. Default-constructed ids
  // are inert, and ids of events that already fired (or were cancelled, or
  // whose node was since recycled) cancel as a no-op: calendar ids carry a
  // generation stamp checked against the node, heap ids share ownership of
  // the node and check its fired/cancelled state.
  class EventId {
   public:
    EventId() = default;
    bool valid() const { return node_ != nullptr || ref_ != nullptr; }

   private:
    friend class EventQueue;
    EventNode* node_ = nullptr;  // Calendar backend: arena node...
    uint64_t gen_ = 0;           // ...plus its generation at schedule time.
    std::shared_ptr<EventNode> ref_;  // Heap backend: shared ownership.
  };

  explicit EventQueue(EventQueueKind kind = EventQueueKind::kCalendar);
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  EventQueueKind kind() const { return kind_; }

  EventId Schedule(TimeNs when, Callback cb) {
    return Schedule(when, EventTag{}, std::move(cb));
  }
  EventId Schedule(TimeNs when, const EventTag& tag, Callback cb);

  // Cancels the event if it has not fired yet; resets `id` to inert.
  void Cancel(EventId& id);

  // Checkpoint support: snapshot of one pending event's identity.
  struct LiveEvent {
    TimeNs time;
    uint64_t seq;
    EventTag tag;
  };
  // Appends every pending event (in seq order, which also fixes same-time
  // firing order) to `out`.
  void CollectLive(std::vector<LiveEvent>* out) const;
  // Drops every pending event. Calendar nodes return to the arena with their
  // generation bumped, so EventIds held by components cancel as no-ops.
  void Clear();

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event; kTimeNever when empty.
  TimeNs NextTime() const;

  // Removes and returns the earliest pending event. Precondition: !empty().
  struct Fired {
    TimeNs time;
    Callback callback;
  };
  Fired PopNext();

  const EventQueueStats& stats() const;

 private:
  struct Bucket {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };
  struct HeapEntry {
    TimeNs time;
    uint64_t seq;
    std::shared_ptr<EventNode> node;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Arena: calendar nodes come from chunked blocks and recycle through a
  // freelist, so a warmed-up queue never touches the allocator again.
  EventNode* AllocNode();
  void FreeNode(EventNode* n);

  // Calendar primitives.
  size_t BucketIndex(TimeNs time) const;
  void BucketInsert(EventNode* n);
  void BucketUnlink(EventNode* n);
  // Locates (and caches) the earliest node, advancing the search front.
  EventNode* FindMin() const;
  void ResizeCalendar(size_t new_buckets);
  void MaybeResize();
  int TuneWidthShift(std::vector<EventNode*>& nodes) const;

  // Heap primitives.
  void HeapSkim() const;
  void HeapCompact();

  EventQueueKind kind_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  mutable EventQueueStats stats_;

  // Calendar state. Bucket widths are powers of two so the hot-path
  // time-to-bucket mapping is a shift, never a 64-bit division. `pos_abs_`
  // is the absolute bucket number (time >> width_shift_) the search front
  // sits at; it advances on pops and is pulled back by an insert that lands
  // behind it, so the scan never misses an event.
  std::vector<Bucket> buckets_;
  int width_shift_ = 0;
  mutable int64_t pos_abs_ = 0;
  mutable EventNode* cached_min_ = nullptr;
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  EventNode* free_head_ = nullptr;
  size_t free_count_ = 0;

  // Heap state (mutable: skimming tombstones off the top is logically
  // const). `heap_cancelled_` counts tombstones still in the vector.
  mutable std::vector<HeapEntry> heap_;
  mutable size_t heap_cancelled_ = 0;
};

struct EventNode {
  TimeNs time = 0;
  uint64_t seq = 0;
  // Bumped whenever the node fires, is cancelled, or is recycled — a stale
  // EventId's generation no longer matches, making its Cancel() a no-op.
  uint64_t gen = 0;
  bool cancelled = false;  // Heap backend: lazy tombstone.
  EventTag tag;            // Checkpoint identity; owner 0 = untagged.
  EventNode* prev = nullptr;
  EventNode* next = nullptr;  // Bucket list link, doubles as freelist link.
  EventQueue::Callback callback;
};

}  // namespace rtvirt

#endif  // SRC_SIM_EVENT_QUEUE_H_

// Cancellable discrete-event queue.
//
// Events are callbacks ordered by (time, insertion sequence). Cancellation is
// lazy: a cancelled entry stays in the heap and is skipped on pop, which keeps
// both Schedule() and Cancel() at O(log n) / O(1) without tombstone sweeps.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/time.h"

namespace rtvirt {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Identifies a scheduled event for cancellation. Default-constructed ids
  // are inert: cancelling them is a no-op.
  class EventId {
   public:
    EventId() = default;
    bool valid() const { return node_ != nullptr; }

   private:
    friend class EventQueue;
    explicit EventId(std::shared_ptr<struct EventNode> node) : node_(std::move(node)) {}
    std::shared_ptr<struct EventNode> node_;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  EventId Schedule(TimeNs when, Callback cb);

  // Cancels the event if it has not fired yet; resets `id` to inert.
  void Cancel(EventId& id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event; kTimeNever when empty.
  TimeNs NextTime() const;

  // Removes and returns the earliest pending event. Precondition: !empty().
  struct Fired {
    TimeNs time;
    Callback callback;
  };
  Fired PopNext();

 private:
  struct HeapEntry {
    TimeNs time;
    uint64_t seq;
    std::shared_ptr<struct EventNode> node;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Drops cancelled entries from the top of the heap.
  void SkimCancelled() const;

  mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
};

struct EventNode {
  EventQueue::Callback callback;
  bool cancelled = false;
};

}  // namespace rtvirt

#endif  // SRC_SIM_EVENT_QUEUE_H_

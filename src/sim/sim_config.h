// Simulator-core configuration: which event-queue backend drives the run.
//
// kCalendar is the default: a calendar queue with O(1) amortized insert/pop,
// O(1) real cancellation (entries are unlinked, not tombstoned) and
// arena-recycled nodes, so the steady state after warm-up allocates nothing.
// It preserves the exact (time, insertion-seq) total order of the binary
// heap, so default runs are byte-identical across backends; kHeap remains
// available for differential testing (see tests/determinism_test.cc) and as
// the reference implementation the perf suite measures the speedup against.

#ifndef SRC_SIM_SIM_CONFIG_H_
#define SRC_SIM_SIM_CONFIG_H_

namespace rtvirt {

enum class EventQueueKind {
  kCalendar,  // bucket ring + freelist arena (default)
  kHeap,      // binary heap, lazy cancellation with bounded tombstones
};

struct SimConfig {
  EventQueueKind event_queue = EventQueueKind::kCalendar;
};

}  // namespace rtvirt

#endif  // SRC_SIM_SIM_CONFIG_H_

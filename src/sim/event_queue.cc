#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/check.h"

namespace rtvirt {

EventQueue::EventId EventQueue::Schedule(TimeNs when, Callback cb) {
  auto node = std::make_shared<EventNode>();
  node->callback = std::move(cb);
  heap_.push(HeapEntry{when, next_seq_++, node});
  ++live_count_;
  return EventId(std::move(node));
}

void EventQueue::Cancel(EventId& id) {
  if (id.node_ != nullptr && !id.node_->cancelled && id.node_->callback != nullptr) {
    id.node_->cancelled = true;
    RTVIRT_CHECK(live_count_ > 0,
                 "event-queue live count underflow on cancel (seq counter at %llu)",
                 static_cast<unsigned long long>(next_seq_));
    --live_count_;
  }
  id.node_.reset();
}

void EventQueue::SkimCancelled() const {
  while (!heap_.empty() && heap_.top().node->cancelled) {
    heap_.pop();
  }
}

TimeNs EventQueue::NextTime() const {
  SkimCancelled();
  return heap_.empty() ? kTimeNever : heap_.top().time;
}

EventQueue::Fired EventQueue::PopNext() {
  SkimCancelled();
  RTVIRT_CHECK(!heap_.empty(), "PopNext on an empty event queue (live count %llu)",
               static_cast<unsigned long long>(live_count_));
  HeapEntry entry = heap_.top();
  heap_.pop();
  --live_count_;
  Fired fired{entry.time, std::move(entry.node->callback)};
  // Mark the node as fired so a late Cancel() on its id is a no-op.
  entry.node->callback = nullptr;
  return fired;
}

}  // namespace rtvirt

#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace rtvirt {

namespace {

// Calendar sizing. The ring targets roughly one live entry per bucket:
// sorted in-bucket lists keep pops O(1) from the head even when entries
// cluster, and scanning an empty bucket costs one 16-byte header load from
// an array that is small enough to stay cache-warm. The ring doubles when
// occupancy exceeds 2 and halves (with wide hysteresis, so it cannot
// oscillate) when it drops below 1/8. Bucket width is retuned at each
// resize from the spacing of the earliest events, Brown-style, but rounded
// to a power of two so the time-to-bucket mapping stays a shift.
constexpr size_t kMinBuckets = 64;       // Power of two.
constexpr size_t kMaxBuckets = size_t{1} << 18;  // 256k buckets ~ 4 MB headers.
constexpr int kInitialWidthShift = 17;   // 2^17 ns ~ 131 us buckets.
constexpr int kMinWidthShift = 6;        // 2^6 ns: no point going finer.
constexpr int kMaxWidthShift = 30;       // 2^30 ns ~ 1.07 s buckets.
constexpr size_t kChunkNodes = 256;      // Arena nodes carved per growth.
constexpr size_t kWidthSample = 64;      // Earliest events sampled on retune.

// Heap compaction floor: below this many entries, tombstones are too cheap
// to be worth sweeping.
constexpr size_t kCompactFloor = 64;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

bool NodeBefore(TimeNs at, uint64_t as, TimeNs bt, uint64_t bs) {
  if (at != bt) {
    return at < bt;
  }
  return as < bs;
}

}  // namespace

EventQueue::EventQueue(EventQueueKind kind) : kind_(kind) {
  if (kind_ == EventQueueKind::kCalendar) {
    buckets_.resize(kMinBuckets);
    width_shift_ = kInitialWidthShift;
  }
}

EventQueue::~EventQueue() = default;

EventNode* EventQueue::AllocNode() {
  if (free_head_ == nullptr) {
    chunks_.push_back(std::make_unique<EventNode[]>(kChunkNodes));
    ++stats_.node_allocs;
    EventNode* chunk = chunks_.back().get();
    for (size_t i = 0; i < kChunkNodes; ++i) {
      chunk[i].next = free_head_;
      free_head_ = &chunk[i];
    }
    free_count_ += kChunkNodes;
  }
  EventNode* n = free_head_;
  free_head_ = n->next;
  --free_count_;
  n->prev = nullptr;
  n->next = nullptr;
  return n;
}

void EventQueue::FreeNode(EventNode* n) {
  ++n->gen;  // Invalidate every EventId still pointing here.
  n->callback = nullptr;
  n->prev = nullptr;
  n->next = free_head_;
  free_head_ = n;
  ++free_count_;
}

size_t EventQueue::BucketIndex(TimeNs time) const {
  return static_cast<size_t>(static_cast<uint64_t>(time) >> width_shift_) &
         (buckets_.size() - 1);
}

void EventQueue::BucketInsert(EventNode* n) {
  Bucket& b = buckets_[BucketIndex(n->time)];
  // Walk backwards from the tail: timers overwhelmingly land at or near the
  // end of their bucket's sorted list.
  EventNode* at = b.tail;
  while (at != nullptr && NodeBefore(n->time, n->seq, at->time, at->seq)) {
    at = at->prev;
  }
  n->prev = at;
  if (at == nullptr) {
    n->next = b.head;
    if (b.head != nullptr) {
      b.head->prev = n;
    } else {
      b.tail = n;
    }
    b.head = n;
  } else {
    n->next = at->next;
    if (at->next != nullptr) {
      at->next->prev = n;
    } else {
      b.tail = n;
    }
    at->next = n;
  }
}

void EventQueue::BucketUnlink(EventNode* n) {
  Bucket& b = buckets_[BucketIndex(n->time)];
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    b.head = n->next;
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  } else {
    b.tail = n->prev;
  }
  n->prev = nullptr;
  n->next = nullptr;
}

EventNode* EventQueue::FindMin() const {
  if (cached_min_ != nullptr) {
    return cached_min_;
  }
  const size_t nb = buckets_.size();
  const size_t mask = nb - 1;
  int64_t abs = pos_abs_;
  for (size_t scanned = 0; scanned < nb; ++scanned, ++abs) {
    EventNode* head = buckets_[static_cast<size_t>(abs) & mask].head;
    if (head != nullptr &&
        static_cast<int64_t>(static_cast<uint64_t>(head->time) >>
                             width_shift_) == abs) {
      // Sorted bucket: the head is its minimum, and every other pending
      // event maps to a strictly later absolute bucket, so this is the
      // global minimum.
      pos_abs_ = abs;
      cached_min_ = head;
      return head;
    }
  }
  // A full fruitless lap: everything pending is more than one ring
  // revolution ahead. Direct-scan the bucket heads for the global minimum
  // instead of walking the gap bucket by bucket.
  EventNode* best = nullptr;
  for (const Bucket& b : buckets_) {
    EventNode* head = b.head;
    if (head != nullptr &&
        (best == nullptr ||
         NodeBefore(head->time, head->seq, best->time, best->seq))) {
      best = head;
    }
  }
  RTVIRT_CHECK(best != nullptr,
               "calendar scan found no live entry (live count %llu)",
               static_cast<unsigned long long>(live_count_));
  pos_abs_ = static_cast<int64_t>(static_cast<uint64_t>(best->time) >>
                                  width_shift_);
  cached_min_ = best;
  return best;
}

int EventQueue::TuneWidthShift(std::vector<EventNode*>& nodes) const {
  if (nodes.size() < 2) {
    return width_shift_;
  }
  // The spacing of the earliest events decides the width; they are the ones
  // the search front is about to walk through.
  size_t sample = std::min(nodes.size(), kWidthSample);
  std::partial_sort(nodes.begin(), nodes.begin() + sample, nodes.end(),
                    [](const EventNode* a, const EventNode* b) {
                      return NodeBefore(a->time, a->seq, b->time, b->seq);
                    });
  uint64_t span = static_cast<uint64_t>(nodes[sample - 1]->time) -
                  static_cast<uint64_t>(nodes[0]->time);
  uint64_t gap = span / (sample - 1);
  // Bucket width ~ 4x the mean gap keeps in-bucket lists a handful of
  // entries long while the front rarely crosses an empty bucket.
  uint64_t width = gap * 4;
  int shift = kMinWidthShift;
  while (shift < kMaxWidthShift && (uint64_t{1} << shift) < width) {
    ++shift;
  }
  return shift;
}

void EventQueue::ResizeCalendar(size_t new_buckets) {
  std::vector<EventNode*> nodes;
  nodes.reserve(live_count_);
  for (Bucket& b : buckets_) {
    for (EventNode* n = b.head; n != nullptr; n = n->next) {
      nodes.push_back(n);
    }
    b.head = nullptr;
    b.tail = nullptr;
  }
  width_shift_ = TuneWidthShift(nodes);
  buckets_.assign(new_buckets, Bucket{});
  // Reinsert in (time, seq) order: every insert appends at its bucket tail,
  // so the rebuild is linear after the sort.
  std::sort(nodes.begin(), nodes.end(),
            [](const EventNode* a, const EventNode* b) {
              return NodeBefore(a->time, a->seq, b->time, b->seq);
            });
  for (EventNode* n : nodes) {
    n->prev = nullptr;
    n->next = nullptr;
    BucketInsert(n);
  }
  cached_min_ = nodes.empty() ? nullptr : nodes.front();
  pos_abs_ = nodes.empty() ? 0
                           : static_cast<int64_t>(
                                 static_cast<uint64_t>(nodes.front()->time) >>
                                 width_shift_);
  ++stats_.calendar_resizes;
}

void EventQueue::MaybeResize() {
  const size_t nb = buckets_.size();
  if (live_count_ > nb && nb < kMaxBuckets) {
    ResizeCalendar(
        std::min(kMaxBuckets, std::max(RoundUpPow2(live_count_), 2 * nb)));
  } else if (nb > kMinBuckets && live_count_ * 8 < nb) {
    ResizeCalendar(std::max(kMinBuckets, nb / 2));
  }
}

EventQueue::EventId EventQueue::Schedule(TimeNs when, const EventTag& tag,
                                         Callback cb) {
  ++stats_.schedules;
  EventId id;
  if (kind_ == EventQueueKind::kCalendar) {
    EventNode* n = AllocNode();
    n->time = when;
    n->seq = next_seq_++;
    n->tag = tag;
    n->callback = std::move(cb);
    BucketInsert(n);
    ++live_count_;
    int64_t abs =
        static_cast<int64_t>(static_cast<uint64_t>(when) >> width_shift_);
    if (abs < pos_abs_) {
      pos_abs_ = abs;  // Landed behind the front: pull the scan back.
    }
    if (cached_min_ != nullptr &&
        NodeBefore(n->time, n->seq, cached_min_->time, cached_min_->seq)) {
      cached_min_ = n;
    }
    id.node_ = n;
    id.gen_ = n->gen;
    MaybeResize();
    return id;
  }
  auto n = std::make_shared<EventNode>();
  ++stats_.node_allocs;
  n->time = when;
  n->seq = next_seq_++;
  n->tag = tag;
  n->callback = std::move(cb);
  heap_.push_back(HeapEntry{when, n->seq, n});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  id.ref_ = std::move(n);
  return id;
}

void EventQueue::Cancel(EventId& id) {
  if (kind_ == EventQueueKind::kCalendar) {
    EventNode* n = id.node_;
    if (n == nullptr || n->gen != id.gen_) {
      id = EventId{};
      return;  // Already fired, cancelled, or the node was recycled.
    }
    RTVIRT_CHECK(
        live_count_ > 0,
        "event-queue live count underflow on cancel (seq counter at %llu)",
        static_cast<unsigned long long>(next_seq_));
    if (n == cached_min_) {
      cached_min_ = nullptr;
    }
    BucketUnlink(n);
    FreeNode(n);
    --live_count_;
    ++stats_.cancels;
    id = EventId{};
    MaybeResize();
    return;
  }
  std::shared_ptr<EventNode> n = std::move(id.ref_);
  id = EventId{};
  if (n == nullptr || n->cancelled) {
    return;
  }
  RTVIRT_CHECK(
      live_count_ > 0,
      "event-queue live count underflow on cancel (seq counter at %llu)",
      static_cast<unsigned long long>(next_seq_));
  n->cancelled = true;
  n->callback = nullptr;  // Release captures now; the entry stays a tombstone.
  --live_count_;
  ++heap_cancelled_;
  ++stats_.cancels;
  if (heap_cancelled_ > 2 * live_count_ && heap_.size() >= kCompactFloor) {
    HeapCompact();
  }
}

void EventQueue::HeapSkim() const {
  while (!heap_.empty() && heap_.front().node->cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    --heap_cancelled_;
  }
}

void EventQueue::HeapCompact() {
  heap_.erase(
      std::remove_if(heap_.begin(), heap_.end(),
                     [](const HeapEntry& e) { return e.node->cancelled; }),
      heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  heap_cancelled_ = 0;
  if (heap_.capacity() > 4 * heap_.size() + kCompactFloor) {
    heap_.shrink_to_fit();
  }
  ++stats_.heap_compactions;
}

TimeNs EventQueue::NextTime() const {
  if (live_count_ == 0) {
    return kTimeNever;
  }
  if (kind_ == EventQueueKind::kCalendar) {
    return FindMin()->time;
  }
  HeapSkim();
  return heap_.front().time;
}

EventQueue::Fired EventQueue::PopNext() {
  RTVIRT_CHECK(live_count_ > 0,
               "PopNext on an empty event queue (live count %llu)",
               static_cast<unsigned long long>(live_count_));
  ++stats_.pops;
  Fired fired;
  if (kind_ == EventQueueKind::kCalendar) {
    EventNode* n = FindMin();
    // Successor cache: the next node in this sorted bucket is the global
    // minimum whenever it still maps to the same absolute bucket (every
    // other pending event maps to a strictly later one). Prefetch it — the
    // next pop touches it first.
    EventNode* succ = n->next;
    if (succ != nullptr &&
        (static_cast<uint64_t>(succ->time) >> width_shift_) ==
            (static_cast<uint64_t>(n->time) >> width_shift_)) {
      __builtin_prefetch(succ);
      cached_min_ = succ;
    } else {
      cached_min_ = nullptr;
    }
    fired.time = n->time;
    fired.callback = std::move(n->callback);
    BucketUnlink(n);
    FreeNode(n);
    --live_count_;
    MaybeResize();
    return fired;
  }
  HeapSkim();
  HeapEntry& top = heap_.front();
  fired.time = top.time;
  fired.callback = std::move(top.node->callback);
  top.node->cancelled = true;  // Marks "fired": a late Cancel() is a no-op.
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  --live_count_;
  return fired;
}

void EventQueue::CollectLive(std::vector<LiveEvent>* out) const {
  size_t base = out->size();
  if (kind_ == EventQueueKind::kCalendar) {
    for (const Bucket& b : buckets_) {
      for (EventNode* n = b.head; n != nullptr; n = n->next) {
        out->push_back(LiveEvent{n->time, n->seq, n->tag});
      }
    }
  } else {
    for (const HeapEntry& e : heap_) {
      if (!e.node->cancelled) {
        out->push_back(LiveEvent{e.node->time, e.node->seq, e.node->tag});
      }
    }
  }
  std::sort(out->begin() + base, out->end(),
            [](const LiveEvent& a, const LiveEvent& b) { return a.seq < b.seq; });
}

void EventQueue::Clear() {
  if (kind_ == EventQueueKind::kCalendar) {
    for (Bucket& b : buckets_) {
      EventNode* n = b.head;
      while (n != nullptr) {
        EventNode* next = n->next;
        FreeNode(n);  // Bumps gen: stale EventIds cancel as no-ops.
        n = next;
      }
      b.head = nullptr;
      b.tail = nullptr;
    }
    cached_min_ = nullptr;
    pos_abs_ = 0;
  } else {
    for (HeapEntry& e : heap_) {
      e.node->cancelled = true;  // A late Cancel() through an EventId is a no-op.
      e.node->callback = nullptr;
    }
    heap_.clear();
    heap_cancelled_ = 0;
  }
  live_count_ = 0;
}

const EventQueueStats& EventQueue::stats() const {
  stats_.backlog =
      kind_ == EventQueueKind::kCalendar ? live_count_ : heap_.size();
  stats_.free_nodes = free_count_;
  return stats_;
}

}  // namespace rtvirt

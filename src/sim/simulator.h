// Discrete-event simulator clock and run loop.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>

#include "src/common/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/sim_config.h"

namespace rtvirt {

class Simulator {
 public:
  using EventId = EventQueue::EventId;
  using Callback = EventQueue::Callback;

  explicit Simulator(SimConfig config = {}) : queue_(config.event_queue) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules `cb` at absolute time `when` (must be >= Now()).
  EventId At(TimeNs when, Callback cb) { return At(when, EventTag{}, std::move(cb)); }

  // Tagged variant: the event carries a checkpoint identity so it can be
  // re-created after a restore (src/checkpoint).
  EventId At(TimeNs when, const EventTag& tag, Callback cb);

  // Schedules `cb` `delay` ns from now.
  EventId After(TimeNs delay, Callback cb) { return At(now_ + delay, std::move(cb)); }
  EventId After(TimeNs delay, const EventTag& tag, Callback cb) {
    return At(now_ + delay, tag, std::move(cb));
  }

  void Cancel(EventId& id) { queue_.Cancel(id); }

  // Runs events until the queue is empty or the clock would pass `end`;
  // leaves the clock at min(end, time of last event).
  void RunUntil(TimeNs end);

  // Runs until the queue is empty.
  void RunAll();

  uint64_t events_processed() const { return events_processed_; }
  bool idle() const { return queue_.empty(); }
  // Operation/allocation counters of the underlying event queue.
  const EventQueueStats& queue_stats() const { return queue_.stats(); }

  // Checkpoint support (src/checkpoint). CollectLiveEvents snapshots every
  // pending event's (time, seq, tag); ClearEventsForRestore drops them all
  // so a restored image can re-create the queue from scratch; RestoreClock
  // moves the clock without running anything.
  void CollectLiveEvents(std::vector<EventQueue::LiveEvent>* out) const {
    queue_.CollectLive(out);
  }
  void ClearEventsForRestore() { queue_.Clear(); }
  void RestoreClock(TimeNs now, uint64_t events_processed) {
    now_ = now;
    events_processed_ = events_processed;
  }

 private:
  TimeNs now_ = 0;
  EventQueue queue_;
  uint64_t events_processed_ = 0;
};

}  // namespace rtvirt

#endif  // SRC_SIM_SIMULATOR_H_

#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace rtvirt {

Simulator::EventId Simulator::At(TimeNs when, Callback cb) {
  assert(when >= now_);
  return queue_.Schedule(when, std::move(cb));
}

void Simulator::RunUntil(TimeNs end) {
  while (!queue_.empty() && queue_.NextTime() <= end) {
    EventQueue::Fired fired = queue_.PopNext();
    assert(fired.time >= now_);
    now_ = fired.time;
    ++events_processed_;
    fired.callback();
  }
  if (now_ < end) {
    now_ = end;
  }
}

void Simulator::RunAll() {
  while (!queue_.empty()) {
    EventQueue::Fired fired = queue_.PopNext();
    assert(fired.time >= now_);
    now_ = fired.time;
    ++events_processed_;
    fired.callback();
  }
}

}  // namespace rtvirt

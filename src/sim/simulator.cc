#include "src/sim/simulator.h"

#include <utility>

#include "src/common/check.h"

namespace rtvirt {

Simulator::EventId Simulator::At(TimeNs when, const EventTag& tag, Callback cb) {
  RTVIRT_CHECK(when >= now_,
               "event scheduled in the past: when=%lld ns < now=%lld ns",
               static_cast<long long>(when), static_cast<long long>(now_));
  return queue_.Schedule(when, tag, std::move(cb));
}

void Simulator::RunUntil(TimeNs end) {
  while (!queue_.empty() && queue_.NextTime() <= end) {
    EventQueue::Fired fired = queue_.PopNext();
    RTVIRT_CHECK(fired.time >= now_,
                 "event fired in the past: time=%lld ns < now=%lld ns",
                 static_cast<long long>(fired.time), static_cast<long long>(now_));
    now_ = fired.time;
    ++events_processed_;
    fired.callback();
  }
  if (now_ < end) {
    now_ = end;
  }
}

void Simulator::RunAll() {
  while (!queue_.empty()) {
    EventQueue::Fired fired = queue_.PopNext();
    RTVIRT_CHECK(fired.time >= now_,
                 "event fired in the past: time=%lld ns < now=%lld ns",
                 static_cast<long long>(fired.time), static_cast<long long>(now_));
    now_ = fired.time;
    ++events_processed_;
    fired.callback();
  }
}

}  // namespace rtvirt

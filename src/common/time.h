// Virtual time representation used throughout the simulator.
//
// All times are 64-bit signed nanosecond counts. A single alias is used for
// both time points (ns since simulation start) and durations; the scheduler
// math in this codebase is simple enough that a point/duration split would
// add friction without catching real bugs, and it matches how the Xen and
// Linux schedulers the paper modifies represent time (s_time_t / ktime_t).

#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <cstdint>
#include <limits>

namespace rtvirt {

// Nanoseconds; also used as a time point (ns since simulation start).
using TimeNs = int64_t;

constexpr TimeNs kNsPerUs = 1000;
constexpr TimeNs kNsPerMs = 1000 * 1000;
constexpr TimeNs kNsPerSec = 1000 * 1000 * 1000;

// A sentinel far enough in the future that arithmetic on it cannot overflow
// when small offsets are added.
constexpr TimeNs kTimeNever = std::numeric_limits<TimeNs>::max() / 4;

constexpr TimeNs Us(int64_t v) { return v * kNsPerUs; }
constexpr TimeNs Ms(int64_t v) { return v * kNsPerMs; }
constexpr TimeNs Sec(int64_t v) { return v * kNsPerSec; }
constexpr TimeNs Min(int64_t v) { return v * 60 * kNsPerSec; }

constexpr double ToUs(TimeNs t) { return static_cast<double>(t) / kNsPerUs; }
constexpr double ToMs(TimeNs t) { return static_cast<double>(t) / kNsPerMs; }
constexpr double ToSec(TimeNs t) { return static_cast<double>(t) / kNsPerSec; }

}  // namespace rtvirt

#endif  // SRC_COMMON_TIME_H_

// Exact fixed-point CPU bandwidth arithmetic.
//
// A Bandwidth is a fraction of one processor expressed in parts-per-billion
// (ppb). DP-WRAP splits every global slice among VCPUs proportionally to
// their bandwidths; doing that with floating point would accumulate drift
// that eventually shows up as spurious deadline misses in long runs, so all
// splits here are integer math with explicit rounding direction.

#ifndef SRC_COMMON_BANDWIDTH_H_
#define SRC_COMMON_BANDWIDTH_H_

#include <cassert>
#include <compare>
#include <cstdint>

#include "src/common/time.h"

namespace rtvirt {

class Bandwidth {
 public:
  static constexpr int64_t kUnit = 1000 * 1000 * 1000;  // 1.0 CPU in ppb.

  constexpr Bandwidth() = default;
  static constexpr Bandwidth FromPpb(int64_t ppb) { return Bandwidth(ppb); }
  // One full CPU.
  static constexpr Bandwidth One() { return Bandwidth(kUnit); }
  static constexpr Bandwidth Zero() { return Bandwidth(0); }
  // `cpus` whole CPUs (used for machine capacity).
  static constexpr Bandwidth Cpus(int64_t cpus) { return Bandwidth(cpus * kUnit); }

  // slice/period, rounded up so that a reservation derived from a task is
  // never smaller than what the task demands.
  static constexpr Bandwidth FromSlicePeriod(TimeNs slice, TimeNs period) {
    assert(period > 0 && slice >= 0);
    using Wide = __int128;
    Wide ppb = (static_cast<Wide>(slice) * kUnit + period - 1) / period;
    return Bandwidth(static_cast<int64_t>(ppb));
  }

  static constexpr Bandwidth FromDouble(double fraction) {
    return Bandwidth(static_cast<int64_t>(fraction * kUnit + 0.5));
  }

  constexpr int64_t ppb() const { return ppb_; }
  constexpr double ToDouble() const { return static_cast<double>(ppb_) / kUnit; }

  // Share of a duration proportional to this bandwidth, rounded down.
  constexpr TimeNs SliceOf(TimeNs duration) const {
    using Wide = __int128;
    return static_cast<TimeNs>(static_cast<Wide>(duration) * ppb_ / kUnit);
  }

  // Share of a duration, rounded up.
  constexpr TimeNs SliceOfCeil(TimeNs duration) const {
    using Wide = __int128;
    return static_cast<TimeNs>((static_cast<Wide>(duration) * ppb_ + kUnit - 1) / kUnit);
  }

  constexpr Bandwidth operator+(Bandwidth o) const { return Bandwidth(ppb_ + o.ppb_); }
  constexpr Bandwidth operator-(Bandwidth o) const { return Bandwidth(ppb_ - o.ppb_); }
  constexpr Bandwidth& operator+=(Bandwidth o) {
    ppb_ += o.ppb_;
    return *this;
  }
  constexpr Bandwidth& operator-=(Bandwidth o) {
    ppb_ -= o.ppb_;
    return *this;
  }
  constexpr auto operator<=>(const Bandwidth&) const = default;

 private:
  explicit constexpr Bandwidth(int64_t ppb) : ppb_(ppb) {}

  int64_t ppb_ = 0;
};

// Capacity-degradation conversions (PCPU fault model): a core running at
// `speed_ppb` (Bandwidth::kUnit = full speed) makes speed_ppb/kUnit useful ns
// of progress per wall-clock ns. Work→wall rounds up (never under-schedule a
// job), wall→work rounds down (never over-credit progress); both are exact
// identities at full speed, keeping healthy-machine arithmetic bit-for-bit
// unchanged. floor(ceil(w*K/s)*s/K) == w for 0 < s <= K, so a completion
// timer set via SpeedWorkToWall banks exactly `work` via SpeedWallToWork.
constexpr TimeNs SpeedWorkToWall(TimeNs work, int64_t speed_ppb) {
  assert(speed_ppb > 0);
  if (speed_ppb == Bandwidth::kUnit) {
    return work;
  }
  using Wide = __int128;
  return static_cast<TimeNs>(
      (static_cast<Wide>(work) * Bandwidth::kUnit + speed_ppb - 1) / speed_ppb);
}

constexpr TimeNs SpeedWallToWork(TimeNs wall, int64_t speed_ppb) {
  if (speed_ppb == Bandwidth::kUnit) {
    return wall;
  }
  using Wide = __int128;
  return static_cast<TimeNs>(static_cast<Wide>(wall) * speed_ppb / Bandwidth::kUnit);
}

}  // namespace rtvirt

#endif  // SRC_COMMON_BANDWIDTH_H_

// Deterministic random number generation for workload models.
//
// Every experiment seeds its own Rng so that runs are reproducible and the
// benches regenerate the same table rows on every invocation.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>

#include "src/common/time.h"

namespace rtvirt {

// SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom number
// generators"): a full-avalanche 64-bit mix, so sequential inputs land on
// statistically independent outputs.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Derives the seed for stream `stream` of a run seeded with `base`. Distinct
// (base, stream) pairs map to decorrelated seeds by construction — unlike the
// ad-hoc `seed * k + c` multiplier streams this replaces, where nearby bases
// produce correlated engine states. Use one stream index per independent
// generator (fault plan, per-tier churn, per-shard sweep work, ...).
constexpr uint64_t DeriveSeed(uint64_t base, uint64_t stream) {
  return SplitMix64(SplitMix64(base) + 0x9E3779B97F4A7C15ull * stream);
}

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform duration in [lo, hi] inclusive.
  TimeNs UniformTime(TimeNs lo, TimeNs hi) { return UniformInt(lo, hi); }

  // Normal, truncated below at `min`.
  double NormalAtLeast(double mean, double stddev, double min) {
    double v = std::normal_distribution<double>(mean, stddev)(engine_);
    return v < min ? min : v;
  }

  // Exponential with the given mean.
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Log-normal parameterized by the median and the log-space sigma.
  double LogNormal(double median, double sigma) {
    return std::lognormal_distribution<double>(std::log(median), sigma)(engine_);
  }

  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  // Derive an independent stream (for per-VM / per-client generators).
  Rng Fork() { return Rng(engine_()); }

  // Checkpoint accessors: the engine state is the Rng's only state (every
  // distribution above is constructed per call), so a textual dump of the
  // mt19937_64 state round-trips the generator exactly.
  std::string SaveState() const {
    std::ostringstream out;
    out << engine_;
    return out.str();
  }
  // Returns true iff `state` parses as a complete engine state.
  bool RestoreState(const std::string& state) {
    std::istringstream in(state);
    std::mt19937_64 engine;
    in >> engine;
    if (in.fail()) {
      return false;
    }
    engine_ = engine;
    return true;
  }

  friend bool operator==(const Rng& a, const Rng& b) {
    return a.engine_ == b.engine_;
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rtvirt

#endif  // SRC_COMMON_RNG_H_

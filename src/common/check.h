// Always-on fatal invariant checks.
//
// The simulator's event-ordering invariants (events never fire in the past,
// the queue's live count never underflows) guard against exactly the silent
// state corruption a release build is most likely to hit in long runs — so
// they must not vanish under NDEBUG the way assert() does. RTVIRT_CHECK is
// active in every build type: on violation it formats a diagnostic with the
// failing expression and message, then aborts.
//
// Two properties matter for the supervised sweep runner (src/sweep), which
// runs many simulations on concurrent worker threads:
//
//  1. The diagnostic is formatted into a single buffer and emitted with one
//     write. The previous three-fprintf sequence interleaved arbitrarily
//     when two threads failed concurrently, corrupting both messages.
//  2. A thread-local failure handler can be installed (see
//     SetCheckFailureHandler / src/sweep/check_capture.h). When present it
//     receives the formatted diagnostic instead of the stderr+abort path —
//     the sweep runner uses this to convert a shard's invariant violation
//     into a recorded, retryable shard failure rather than harness death.
//     The handler is cleared before it is invoked, so a second failure
//     raised while handling the first (e.g. from a destructor during stack
//     unwinding) falls through to the normal abort. A handler that returns
//     aborts as well: RTVIRT_CHECK never continues past a violation.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rtvirt {

// Receives the fully formatted diagnostic. Must not return if the failure is
// to be contained (the sweep capture handler throws); returning aborts.
using CheckFailureHandler = void (*)(const char* message);

namespace check_internal {

inline thread_local CheckFailureHandler t_handler = nullptr;

}  // namespace check_internal

// Installs `handler` for the calling thread, returning the previous one
// (nullptr = default stderr+abort behavior). Scoped use only — see
// sweep::ScopedCheckCapture for the RAII wrapper.
inline CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  CheckFailureHandler old = check_internal::t_handler;
  check_internal::t_handler = handler;
  return old;
}

namespace check_internal {

// [[noreturn]] holds on every path: a containment handler throws, and the
// default path aborts.
#if defined(__GNUC__)
__attribute__((format(printf, 4, 5)))
#endif
[[noreturn]] inline void
Fail(const char* file, int line, const char* expr, const char* fmt, ...) {
  // One buffer, one write: concurrent failures on other threads may still
  // race to abort, but their diagnostics no longer interleave mid-line.
  char msg[1024];
  int n = std::snprintf(msg, sizeof(msg),
                        "rtvirt: fatal invariant violation at %s:%d: %s\n  ", file,
                        line, expr);
  if (n < 0) {
    n = 0;
  } else if (static_cast<size_t>(n) >= sizeof(msg)) {
    n = static_cast<int>(sizeof(msg)) - 1;
  }
  va_list args;
  va_start(args, fmt);
  int m = std::vsnprintf(msg + n, sizeof(msg) - static_cast<size_t>(n), fmt, args);
  va_end(args);
  if (m < 0) {
    m = 0;
  }
  size_t len = static_cast<size_t>(n) + static_cast<size_t>(m);
  if (len >= sizeof(msg) - 1) {
    len = sizeof(msg) - 2;
  }
  msg[len] = '\n';
  msg[len + 1] = '\0';
  ++len;

  if (t_handler != nullptr) {
    CheckFailureHandler handler = t_handler;
    t_handler = nullptr;  // Nested failures while handling abort outright.
    handler(msg);
    // A containment handler never returns (it throws); reaching here means
    // the handler declined, so fall through to the fatal path.
  }
  std::fwrite(msg, 1, len, stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace check_internal
}  // namespace rtvirt

#define RTVIRT_CHECK(cond, ...)                                                      \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      ::rtvirt::check_internal::Fail(__FILE__, __LINE__, #cond, __VA_ARGS__);        \
    }                                                                                \
  } while (0)

#endif  // SRC_COMMON_CHECK_H_

// Always-on fatal invariant checks.
//
// The simulator's event-ordering invariants (events never fire in the past,
// the queue's live count never underflows) guard against exactly the silent
// state corruption a release build is most likely to hit in long runs — so
// they must not vanish under NDEBUG the way assert() does. RTVIRT_CHECK is
// active in every build type: on violation it prints a diagnostic with the
// failing expression and message, then aborts.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define RTVIRT_CHECK(cond, ...)                                                  \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::fprintf(stderr, "rtvirt: fatal invariant violation at %s:%d: %s\n  ", \
                   __FILE__, __LINE__, #cond);                                   \
      std::fprintf(stderr, __VA_ARGS__);                                         \
      std::fprintf(stderr, "\n");                                                \
      std::fflush(stderr);                                                       \
      std::abort();                                                              \
    }                                                                            \
  } while (0)

#endif  // SRC_COMMON_CHECK_H_

// Quickstart: build an RTVirt host, run two real-time applications in a VM
// alongside a CPU-hungry neighbour VM, and check that every deadline is met.
//
// This walks through the whole public API surface:
//   1. Experiment     — a simulated host with the RTVirt (DP-WRAP) scheduler;
//   2. AddGuest       — a VM with a pEDF guest OS and the cross-layer channel;
//   3. PeriodicRta    — an rt-app-style periodic real-time application;
//   4. DeadlineMonitor — deadline and response-time accounting.

#include <iostream>

#include "src/metrics/deadline_monitor.h"
#include "src/metrics/report.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"

int main() {
  using namespace rtvirt;

  // A 4-PCPU host running the RTVirt cross-layer stack (guest pEDF +
  // host-level DP-WRAP + sched_rtvirt() hypercall channel).
  ExperimentConfig config;
  config.framework = Framework::kRtvirt;
  config.machine.num_pcpus = 4;
  Experiment host(config);

  // A VM with two VCPUs for our time-sensitive applications...
  GuestOs* app_vm = host.AddGuest("app-vm", 2);
  // ...and a noisy neighbour that will happily eat every spare cycle.
  GuestOs* noisy_vm = host.AddGuest("noisy-vm", 1);
  noisy_vm->CreateBackgroundTask("cpu-hog");

  // Two periodic RTAs: a 30 fps video pipeline stage (18 ms of work every
  // 33 ms) and a 100 Hz control loop (2 ms every 10 ms). Registration goes
  // through the guest's sched_setattr() path, which requests host bandwidth
  // with the sched_rtvirt() hypercall before admitting the task.
  DeadlineMonitor monitor;
  PeriodicRta video(app_vm, "video-30fps", RtaParams{Ms(18), Ms(33), false});
  PeriodicRta control(app_vm, "control-100hz", RtaParams{Ms(2), Ms(10), false});
  video.task()->set_observer(&monitor);
  control.task()->set_observer(&monitor);
  video.Start(/*start=*/0, /*stop=*/Sec(10));
  control.Start(/*start=*/0, /*stop=*/Sec(10));

  // Sample the host reservation mid-run (both RTAs unregister at t=10s).
  host.Run(Sec(5));
  double reserved = host.dpwrap()->total_reserved().ToDouble();
  host.Run(Sec(10) + Ms(100));

  std::cout << "RTVirt quickstart: 10 s with a CPU hog sharing the host\n\n";
  TablePrinter table({"task", "jobs", "misses", "worst response (ms)"});
  for (const auto& [name, stats] : monitor.per_task()) {
    table.AddRow({name, std::to_string(stats.completed), std::to_string(stats.misses),
                  TablePrinter::Fmt(ToMs(stats.max_response), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nHost bandwidth reserved for RTAs (at t=5s): "
            << TablePrinter::Fmt(reserved, 3) << " CPUs of " << config.machine.num_pcpus
            << "\n";
  std::cout << "Noisy neighbour still received "
            << TablePrinter::Fmt(ToSec(noisy_vm->vm()->TotalRuntime()), 2)
            << " CPU-seconds of residual bandwidth\n";
  std::cout << (monitor.total_misses() == 0 ? "\nAll deadlines met.\n"
                                            : "\nDeadline misses detected!\n");
  return monitor.total_misses() == 0 ? 0 : 1;
}

// Cross-host placement example (paper section 6): a small cloud of RTVirt
// hosts admits real-time VMs cluster-wide. When fragmentation blocks an
// arrival that would fit in aggregate, the placer plans the cheapest live
// migrations (pre-copy cost model) to make room — and the destination host's
// DP-WRAP scheduler then proves the placement by running the VM's RTA with
// zero deadline misses.

#include <iostream>

#include "src/cluster/placement.h"
#include "src/metrics/deadline_monitor.h"
#include "src/metrics/report.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"

int main() {
  using namespace rtvirt;

  // Three 4-CPU hosts, load-balancing placement.
  ClusterPlacer placer({{0, 4}, {1, 4}, {2, 4}}, PlacementPolicy::kWorstFit);

  auto request = [](const std::string& name, double bw, double mem_gb) {
    VmPlacementRequest r;
    r.name = name;
    r.bandwidth = Bandwidth::FromDouble(bw);
    r.migration.memory_gb = mem_gb;
    return r;
  };

  std::cout << "Placing six real-time VMs across three 4-CPU hosts (worst-fit):\n";
  TablePrinter table({"VM", "bandwidth", "host"});
  for (const auto& [name, bw, mem] :
       {std::tuple{"db", 2.5, 16.0}, {"web", 1.5, 2.0}, {"stream", 2.5, 8.0},
        std::tuple{"cache", 1.0, 4.0}, {"batch", 1.0, 32.0}, {"ml", 1.0, 24.0}}) {
    auto host = placer.Place(request(name, bw, mem));
    table.AddRow({name, TablePrinter::Fmt(bw, 1),
                  host.has_value() ? std::to_string(*host) : "REJECTED"});
  }
  table.Print(std::cout);

  // A big tenant arrives: no single host has 3.5 CPUs free, but the cluster
  // does. Rebalance with the cheapest migrations.
  VmPlacementRequest tenant = request("tenant", 2.0, 8.0);
  std::cout << "\nArrival of 'tenant' (2.0 CPUs): direct placement "
            << (placer.Place(tenant).has_value() ? "succeeded?!" : "fails (fragmentation)")
            << "\n";
  auto plan = placer.PlanRebalance(tenant);
  if (!plan.has_value()) {
    std::cout << "no rebalance plan found\n";
    return 1;
  }
  std::cout << "Rebalance plan (target host " << plan->target_host << "):\n";
  for (const MigrationStep& step : plan->steps) {
    std::cout << "  live-migrate '" << step.vm << "' host" << step.from << " -> host"
              << step.to << "  (pre-copy " << step.cost.rounds << " rounds, total "
              << TablePrinter::Fmt(ToSec(step.cost.total_time), 2) << " s, downtime "
              << TablePrinter::Fmt(ToMs(step.cost.downtime), 1) << " ms)\n";
  }

  // Prove the placement: run the tenant's RTA on a simulated RTVirt host
  // with the residual load the placer left there.
  ExperimentConfig cfg;
  cfg.framework = Framework::kRtvirt;
  cfg.machine.num_pcpus = 4;
  Experiment host(cfg);
  Bandwidth residual = placer.HostLoad(plan->target_host) - tenant.bandwidth;
  GuestOs* neighbours = host.AddGuest("neighbours", 4);
  // Standing reservations representing the host's other tenants, split so
  // each stays within one VCPU.
  int shares = static_cast<int>(residual.ToDouble()) + 1;
  for (int i = 0; i < shares; ++i) {
    Task* neighbour_load = neighbours->CreateTask("load" + std::to_string(i));
    TimeNs slice = Bandwidth::FromPpb(residual.ppb() / shares).SliceOf(Ms(10));
    if (slice > 0) {
      neighbours->SchedSetAttr(neighbour_load, RtaParams{slice, Ms(10), false});
    }
  }
  GuestOs* tenant_vm = host.AddGuest("tenant", 4);
  DeadlineMonitor mon;
  PeriodicRta rta(tenant_vm, "tenant-rta", RtaParams{Ms(35), Ms(40), false});
  rta.task()->set_observer(&mon);
  rta.Start(0, Sec(5));
  host.Run(Sec(5) + Ms(100));
  std::cout << "\nTenant RTA on host " << plan->target_host << ": " << mon.total_completed()
            << " jobs, " << mon.total_misses() << " misses (admission result "
            << rta.admission_result() << ")\n";
  return mon.total_misses() == 0 ? 0 : 1;
}

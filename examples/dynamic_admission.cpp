// Dynamic admission control example: what happens when tenants ask for more
// real-time bandwidth than the host has? RTVirt's two-level admission
// (guest pEDF first-fit + host DP-WRAP capacity check over the
// sched_rtvirt() hypercall) accepts requests up to the host capacity and
// cleanly rejects the rest; departures free bandwidth for later arrivals.

#include <iostream>
#include <memory>
#include <vector>

#include "src/metrics/deadline_monitor.h"
#include "src/metrics/report.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"

int main() {
  using namespace rtvirt;

  ExperimentConfig config;
  config.framework = Framework::kRtvirt;
  config.machine.num_pcpus = 2;  // Deliberately small: 2.0 CPUs of capacity.
  Experiment host(config);

  DeadlineMonitor monitor;
  std::vector<std::unique_ptr<PeriodicRta>> tenants;
  std::vector<GuestOs*> guests;

  // Phase 1 (t=0): five tenants each want 0.55 CPUs -> 2.75 CPUs demanded,
  // only three fit (1.65 + slack) on the 2-CPU host.
  for (int i = 0; i < 5; ++i) {
    GuestOs* g = host.AddGuest("tenant" + std::to_string(i), 1);
    guests.push_back(g);
    auto rta = std::make_unique<PeriodicRta>(g, "tenant" + std::to_string(i),
                                             RtaParams{Ms(11), Ms(20), false});
    rta->task()->set_observer(&monitor);
    rta->Start(0, Sec(20));
    tenants.push_back(std::move(rta));
  }
  host.Run(Ms(1));

  std::cout << "Phase 1: five tenants request 0.55 CPUs each on a 2-CPU host\n";
  TablePrinter phase1({"tenant", "admitted"});
  int admitted = 0;
  for (size_t i = 0; i < tenants.size(); ++i) {
    bool ok = tenants[i]->admission_result() == kGuestOk;
    admitted += ok ? 1 : 0;
    phase1.AddRow({"tenant" + std::to_string(i), ok ? "yes" : "no (host: -ENOSPC)"});
  }
  phase1.Print(std::cout);
  std::cout << "Reserved: " << TablePrinter::Fmt(host.dpwrap()->total_reserved().ToDouble(), 2)
            << " / 2.00 CPUs\n\n";

  // Phase 2 (t=20s): the admitted tenants finish and unregister; a late
  // tenant arrives and now fits.
  GuestOs* late_guest = host.AddGuest("late-tenant", 1);
  PeriodicRta late(late_guest, "late-tenant", RtaParams{Ms(11), Ms(20), false});
  late.task()->set_observer(&monitor);
  late.Start(Sec(21), Sec(40));
  host.Run(Sec(22));
  std::cout << "Phase 2: after the early tenants left, the late tenant is "
            << (late.admission_result() == kGuestOk ? "admitted" : "rejected") << "\n";

  host.Run(Sec(41));
  std::cout << "\nOverall: " << monitor.total_completed() << " jobs, " << monitor.total_misses()
            << " deadline misses across all admitted tenants\n";
  std::cout << "(Admission control is what makes the zero-miss guarantee possible: the\n"
            << " host never promises bandwidth it does not have.)\n";
  return (admitted == 3 && late.admission_result() == kGuestOk && monitor.total_misses() == 0)
             ? 0
             : 1;
}

// Video streaming server example (paper section 4.3): a streaming VM spawns
// one transcoding RTA per client stream, with CPU needs that depend on the
// requested frame rate (Table 3). Streams come and go; RTVirt adapts the
// host reservation online through the cross-layer channel, so every stream
// keeps its frame deadlines while a batch VM soaks up the leftover CPU.

#include <iostream>
#include <memory>
#include <vector>

#include "src/metrics/deadline_monitor.h"
#include "src/metrics/report.h"
#include "src/runner/experiment.h"
#include "src/workloads/periodic.h"
#include "src/workloads/vlc.h"

int main() {
  using namespace rtvirt;

  ExperimentConfig config;
  config.framework = Framework::kRtvirt;
  config.machine.num_pcpus = 4;
  Experiment host(config);

  // The streaming VM gets 2 VCPUs and may hotplug more if streams pile up.
  GuestConfig guest_config;
  guest_config.allow_hotplug = true;
  guest_config.max_vcpus = 4;
  GuestOs* streamer = host.AddGuest("streaming-vm", 2, guest_config);
  GuestOs* batch = host.AddGuest("batch-vm", 1);
  batch->CreateBackgroundTask("nightly-transcode");

  // A day in the life of a streaming server, compressed to 60 s: clients
  // request streams at different frame rates and hang up at various times.
  struct Stream {
    int fps;
    TimeNs start;
    TimeNs stop;
  };
  const std::vector<Stream> sessions = {
      {24, Sec(0), Sec(45)},  {30, Sec(5), Sec(30)},  {60, Sec(10), Sec(25)},
      {48, Sec(20), Sec(55)}, {30, Sec(32), Sec(60)}, {24, Sec(40), Sec(60)},
  };

  DeadlineMonitor monitor;
  std::vector<std::unique_ptr<PeriodicRta>> streams;
  for (size_t i = 0; i < sessions.size(); ++i) {
    auto rta = std::make_unique<PeriodicRta>(
        streamer, "stream" + std::to_string(i) + "@" + std::to_string(sessions[i].fps) + "fps",
        VlcParams(sessions[i].fps));
    rta->task()->set_observer(&monitor);
    rta->Start(sessions[i].start, sessions[i].stop);
    streams.push_back(std::move(rta));
  }

  host.Run(Sec(61));

  std::cout << "Video streaming VM: 6 dynamic streams over 60 s\n\n";
  TablePrinter table({"stream", "frames", "missed deadlines", "miss ratio"});
  for (const auto& [name, stats] : monitor.per_task()) {
    table.AddRow({name, std::to_string(stats.completed), std::to_string(stats.misses),
                  TablePrinter::Pct(stats.MissRatio(), 3)});
  }
  table.Print(std::cout);
  std::cout << "\nVCPUs in the streaming VM (after hotplug): " << streamer->num_vcpus() << "\n";
  std::cout << "Hypercalls issued for dynamic bandwidth changes: "
            << host.machine().overhead().hypercalls << "\n";
  std::cout << "Batch VM residual CPU time: "
            << TablePrinter::Fmt(ToSec(batch->vm()->TotalRuntime()), 1) << " s\n";
  return monitor.total_misses() == 0 ? 0 : 1;
}

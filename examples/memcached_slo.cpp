// memcached tail-latency example (paper section 4.4): an in-memory cache VM
// with a 500 us / 99.9th-percentile SLO shares two PCPUs with a crowd of
// CPU-bound VMs. The same scenario runs under Xen's default Credit
// scheduler and under RTVirt; only RTVirt keeps the tail under the SLO
// while the hogs still receive the residual bandwidth.

#include <iostream>
#include <vector>

#include "src/metrics/deadline_monitor.h"
#include "src/metrics/report.h"
#include "src/runner/experiment.h"
#include "src/workloads/memcached.h"

namespace {

struct RunResult {
  rtvirt::Samples latency;
  rtvirt::TimeNs hog_runtime = 0;
  uint64_t requests = 0;
};

RunResult RunUnder(rtvirt::Framework fw) {
  using namespace rtvirt;
  ExperimentConfig config;
  config.framework = fw;
  config.machine.num_pcpus = 2;
  if (fw == Framework::kCredit) {
    config.credit.timeslice = Ms(1);
    config.credit.ratelimit = Us(500);
  }
  Experiment host(config);

  GuestOs* cache = host.AddGuest("cache-vm", 1);
  if (fw == Framework::kCredit) {
    cache->vm()->set_weight(1710);  // ~26% share vs the 19 hogs below.
  }
  std::vector<GuestOs*> hogs;
  for (int i = 0; i < 19; ++i) {
    hogs.push_back(host.AddGuest("hog" + std::to_string(i), 1));
    hogs.back()->CreateBackgroundTask("spin");
  }

  DeadlineMonitor monitor;
  MemcachedConfig mcfg;  // 100 qps, 500 us SLO, 58 us reservation slice.
  MemcachedServer server(cache, "memcached", mcfg, host.rng().Fork());
  server.task()->set_observer(&monitor);
  server.Start(0, Sec(60));
  host.Run(Sec(60) + Ms(10));

  RunResult result;
  result.latency = monitor.response_times_us();
  result.requests = server.requests_sent();
  for (GuestOs* hog : hogs) {
    result.hog_runtime += hog->vm()->TotalRuntime();
  }
  return result;
}

}  // namespace

int main() {
  using namespace rtvirt;
  std::cout << "memcached with a 500 us @ p99.9 SLO vs 19 CPU hogs on 2 PCPUs\n\n";
  TablePrinter table({"scheduler", "requests", "mean (us)", "p99 (us)", "p99.9 (us)", "SLO"});
  RunResult credit = RunUnder(Framework::kCredit);
  RunResult rtv = RunUnder(Framework::kRtvirt);
  auto row = [&](const char* name, const RunResult& r) {
    table.AddRow({name, std::to_string(r.requests), TablePrinter::Fmt(r.latency.Mean(), 1),
                  TablePrinter::Fmt(r.latency.Percentile(99), 1),
                  TablePrinter::Fmt(r.latency.Percentile(99.9), 1),
                  r.latency.Percentile(99.9) <= 500.0 ? "met" : "MISSED"});
  };
  row("Credit", credit);
  row("RTVirt", rtv);
  table.Print(std::cout);

  std::cout << "\nRTVirt latency CDF:\n";
  PrintCdf(std::cout, rtv.latency, 10, "us");
  std::cout << "\nHog throughput under RTVirt: "
            << TablePrinter::Fmt(ToSec(rtv.hog_runtime), 1)
            << " CPU-seconds (the reservation is only "
            << TablePrinter::Fmt(Bandwidth::FromSlicePeriod(Us(58), Us(500)).ToDouble(), 3)
            << " CPUs; everything else stays work-conserving)\n";
  return rtv.latency.Percentile(99.9) <= 500.0 ? 0 : 1;
}

// Figure 5b: five memcached VMs (sharded servers, one Mutilate instance
// each) alongside ten periodic VMs emulating video streaming servers
// (3x24fps, 3x30fps, 2x48fps, 2x60fps; Table 3 parameters) on the 15-PCPU
// host. Reports the aggregate memcached latency distribution, the video
// VMs' deadline misses, and the allocated/claimed bandwidth per framework.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace rtvirt {
namespace {

constexpr TimeNs kDuration = Sec(200);
constexpr TimeNs kSlo = Us(500);
constexpr int kVideoFps[] = {24, 24, 24, 30, 30, 30, 48, 48, 60, 60};

struct Setup {
  const char* name;
  Framework fw;
  ServerParams mc_server;  // RT-Xen only.
  TimeNs rtvirt_slice;     // RTVirt only.
  const char* paper_999;
};

struct Outcome {
  Samples latency;
  DeadlineMonitor video;
  double allocated = 0;
  double claimed = 0;
};

void Run(const Setup& setup, Outcome& out) {
  ExperimentConfig cfg = bench::Config(setup.fw, 15);
  if (setup.fw == Framework::kCredit) {
    // Default 30 ms accounting window (cap enforcement granularity) with the
    // paper's 500 us ratelimit: the window beat against the video periods is
    // what turns caps into deadline misses.
    cfg.credit.ratelimit = Us(500);
  }
  Experiment exp(cfg);
  DeadlineMonitor mc_monitor;
  std::vector<std::unique_ptr<MemcachedServer>> servers;
  std::vector<std::unique_ptr<PeriodicRta>> videos;
  std::vector<PeriodicResource> interfaces;

  for (int i = 0; i < 5; ++i) {
    GuestOs* mc = exp.AddGuest("mc" + std::to_string(i), 1);
    MemcachedConfig mcfg;
    switch (setup.fw) {
      case Framework::kRtvirt:
        mcfg.slice = setup.rtvirt_slice;
        bench::SetMicroSlack(exp, mc);  // 6 us slack on the 500 us period.
        out.allocated +=
            Bandwidth::FromSlicePeriod(setup.rtvirt_slice + Us(6), kSlo).ToDouble();
        break;
      case Framework::kRtXen: {
        exp.SetVcpuServer(mc->vm()->vcpu(0), setup.mc_server);
        Bandwidth bw =
            Bandwidth::FromSlicePeriod(setup.mc_server.budget, setup.mc_server.period);
        mc->SetVcpuCapacity(0, bw);
        mcfg.slice = std::min(setup.mc_server.budget, Us(66));
        interfaces.push_back(PeriodicResource{setup.mc_server.period, setup.mc_server.budget});
        out.allocated += bw.ToDouble();
        break;
      }
      case Framework::kCredit:
        // Paper: the VM is bounded to its allocated bandwidth (26% of a CPU,
        // from Table 4's 130 us / 500 us) via weight + cap.
        mc->vm()->set_weight(260);
        exp.credit()->SetCap(mc->vm()->vcpu(0), Bandwidth::FromDouble(0.26));
        out.allocated += 0.26;
        break;
      default:
        break;
    }
    auto server = std::make_unique<MemcachedServer>(mc, "mc" + std::to_string(i), mcfg,
                                                    exp.rng().Fork());
    server->task()->set_observer(&mc_monitor);
    server->Start(0, kDuration);
    servers.push_back(std::move(server));
  }

  for (int i = 0; i < 10; ++i) {
    RtaParams video = VlcParams(kVideoFps[i]);
    GuestOs* g;
    if (setup.fw == Framework::kRtXen) {
      PeriodicResource iface;
      g = bench::AddRtXenVm(exp, "video" + std::to_string(i), video, &iface);
      interfaces.push_back(iface);
      out.allocated += iface.bandwidth().ToDouble();
    } else {
      g = exp.AddGuest("video" + std::to_string(i), 1);
      if (setup.fw == Framework::kRtvirt) {
        out.allocated += Bandwidth::FromSlicePeriod(video.slice + Us(500), video.period)
                             .ToDouble();
      } else {
        // Credit: weight proportional to, and cap at, the VM's allocated
        // bandwidth (this is what "allocated" means for Credit). The cap
        // equals the rt-app demand, so any accounting-window burstiness
        // shows up as deadline misses — Credit has no notion of deadlines.
        double need = video.bandwidth().ToDouble();
        g->vm()->set_weight(static_cast<int>(need * 1000));
        exp.credit()->SetCap(g->vm()->vcpu(0), Bandwidth::FromDouble(need));
        out.allocated += need;
      }
    }
    auto rta = std::make_unique<PeriodicRta>(g, "video" + std::to_string(i), video);
    rta->task()->set_observer(&out.video);
    rta->Start(0, kDuration);
    videos.push_back(std::move(rta));
  }

  out.claimed = setup.fw == Framework::kRtXen
                    ? DmprPack(interfaces).claimed_cpus
                    : out.allocated;
  exp.Run(kDuration + Ms(300));
  out.latency = mc_monitor.response_times_us();
}

}  // namespace
}  // namespace rtvirt

int main() {
  using namespace rtvirt;
  bench::Header(
      "Figure 5b: 5 memcached VMs + 10 video-streaming VMs (SLO: 500 us @ p99.9)");

  const Setup setups[] = {
      {"Credit", Framework::kCredit, {}, 0, "1170"},
      {"RT-Xen A", Framework::kRtXen, {Us(66), Us(283)}, 0, "1974"},
      {"RT-Xen B", Framework::kRtXen, {Us(33), Us(177)}, 0, "296"},
      {"RTVirt", Framework::kRtvirt, {}, Us(58), "303"},
  };

  TablePrinter table({"Config", "alloc CPUs", "claimed CPUs", "mc p99.9", "SLO met",
                      "video misses", "worst video miss%", "paper mc p99.9"});
  std::vector<std::pair<const char*, Samples>> cdfs;
  for (const Setup& s : setups) {
    Outcome out;
    Run(s, out);
    table.AddRow({s.name, TablePrinter::Fmt(out.allocated, 2),
                  TablePrinter::Fmt(out.claimed, 2),
                  TablePrinter::Fmt(out.latency.Percentile(99.9), 1),
                  out.latency.Percentile(99.9) <= ToUs(kSlo) ? "yes" : "NO",
                  std::to_string(out.video.total_misses()) + "/" +
                      std::to_string(out.video.total_completed()),
                  TablePrinter::Pct(out.video.WorstTaskMissRatio(), 2), s.paper_999});
    cdfs.emplace_back(s.name, std::move(out.latency));
  }
  table.Print(std::cout);

  std::cout << "\nAggregate memcached latency CDFs (us), 20 points each:\n";
  for (auto& [name, samples] : cdfs) {
    std::cout << name << ":\n";
    PrintCdf(std::cout, samples, 20, "us");
  }
  std::cout << "\nPaper: Credit misses the SLO (1170 us) and drops video deadlines (worst\n"
               "14.35%); RT-Xen meets video deadlines only via overprovisioning (claimed 15\n"
               "CPUs); RTVirt meets both with ~10% less allocated / 46.7% less claimed\n"
               "bandwidth.\n";
  return 0;
}

// Fault-resilience evaluation of the cross-layer channel (robustness PR):
//
// 1. Transient-fault sweep. Adaptive streaming RTAs periodically re-negotiate
//    their reservation (sched_setattr lo<->hi) while hypercalls fail
//    transiently with probability p. Three configurations per p:
//      fault-free  — p = 0 reference;
//      no-retry    — legacy channel: the first -EAGAIN surfaces to the guest,
//                    a failed upward switch leaves the task under-reserved
//                    while its demand rises (a hog VM soaks the residual
//                    best-effort time, so under-reservation means misses);
//      resilient   — bounded in-call retry + degraded-mode fallback.
//    Acceptance: at p = 10%, resilient stays within 2x the fault-free miss
//    rate (+0.5pp absolute floor) while no-retry does not.
//
// 2. Degraded-mode drill. A hard 500 ms hypercall outage (forcing retry
//    exhaustion -> degraded mode -> virtual-time repair), shared-page
//    staleness, and a VM crash/restart with the host watchdog reclaiming the
//    orphaned reservations.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/resilience.h"

namespace rtvirt::bench {
namespace {

constexpr TimeNs kRunLength = Sec(20);
constexpr int kPcpus = 4;
constexpr int kRtaVms = 4;
constexpr int kTasksPerVm = 2;
constexpr int kHogVcpus = 8;

// An adaptive streaming task: alternates between a low-rate and a high-rate
// profile at random scene changes, re-negotiating its reservation each time.
// Demand follows the profile regardless of whether the sched_setattr was
// admitted — exactly the situation where a transiently failed upward switch
// leaves the task under-reserved.
class AdaptiveRta {
 public:
  AdaptiveRta(Experiment* exp, GuestOs* guest, std::string name, RtaParams lo, RtaParams hi)
      : exp_(exp), guest_(guest), task_(guest->CreateTask(std::move(name))), lo_(lo), hi_(hi),
        demand_(lo) {}

  void Start(TimeNs start, TimeNs stop) {
    stop_ = stop;
    sim()->At(start, [this] { TryRegister(); });
    sim()->At(start, [this] { ReleaseOne(); });
    sim()->At(start + NextSwitchDelay(), [this] { DoSwitch(); });
  }

  // Restart handler: the reborn guest kernel re-admits the task.
  void Reregister() {
    if (!task_->registered() && sim()->Now() < stop_) {
      TryRegister();
    }
  }

  Task* task() const { return task_; }
  uint64_t failed_switches() const { return failed_switches_; }

 private:
  Simulator* sim() const { return guest_->vm()->machine()->sim(); }
  TimeNs NextSwitchDelay() { return exp_->rng().UniformTime(Ms(150), Ms(400)); }

  void TryRegister() {
    if (sim()->Now() >= stop_) {
      return;
    }
    // Registration is mandatory (the task cannot run without it), so the
    // app-level loop retries; parameter *switches* below are opportunistic.
    if (guest_->SchedSetAttr(task_, demand_) != kGuestOk) {
      sim()->After(Ms(10), [this] { TryRegister(); });
    }
  }

  void DoSwitch() {
    if (sim()->Now() >= stop_) {
      return;
    }
    demand_ = demand_.slice == lo_.slice ? hi_ : lo_;
    if (task_->registered()) {
      if (guest_->SchedSetAttr(task_, demand_) != kGuestOk) {
        ++failed_switches_;  // Keeps the old reservation; demand rose anyway.
      }
    }
    sim()->After(NextSwitchDelay(), [this] { DoSwitch(); });
  }

  void ReleaseOne() {
    TimeNs now = sim()->Now();
    if (now >= stop_) {
      if (task_->registered()) {
        guest_->SchedUnregister(task_);
      }
      return;
    }
    task_->set_next_release(now + demand_.period);
    if (task_->registered()) {
      guest_->ReleaseJob(task_, demand_.slice, now + demand_.period);
    }
    sim()->After(demand_.period, [this] { ReleaseOne(); });
  }

  Experiment* exp_;
  GuestOs* guest_;
  Task* task_;
  RtaParams lo_;
  RtaParams hi_;
  RtaParams demand_;
  TimeNs stop_ = 0;
  uint64_t failed_switches_ = 0;
};

struct Scenario {
  std::unique_ptr<Experiment> exp;
  std::vector<std::unique_ptr<AdaptiveRta>> tasks;
  DeadlineMonitor monitor;

  void Run() { exp->Run(kRunLength); }
};

enum class Mode { kNoRetry, kResilient };

ExperimentConfig BaseConfig(Mode mode) {
  ExperimentConfig cfg = Config(Framework::kRtvirt, kPcpus);
  if (mode == Mode::kResilient) {
    cfg.channel.max_retries = 3;
    cfg.channel.degraded_fallback = true;
  }
  return cfg;
}

// 4 RTA VMs x 2 adaptive tasks (lo 2ms/10ms, hi 4ms/10ms) + a hog VM whose
// background tasks soak all best-effort residual.
Scenario BuildScenario(ExperimentConfig cfg) {
  Scenario s;
  s.exp = std::make_unique<Experiment>(std::move(cfg));
  RtaParams lo{Ms(2), Ms(10)};
  RtaParams hi{Ms(4), Ms(10)};
  for (int v = 0; v < kRtaVms; ++v) {
    GuestOs* g = s.exp->AddGuest("rta" + std::to_string(v), 1);
    for (int t = 0; t < kTasksPerVm; ++t) {
      auto rta = std::make_unique<AdaptiveRta>(
          s.exp.get(), g, "vm" + std::to_string(v) + ".t" + std::to_string(t), lo, hi);
      s.monitor.Watch(rta->task());
      rta->Start(Ms(1), kRunLength - Ms(10));
      s.tasks.push_back(std::move(rta));
    }
  }
  GuestOs* hog = s.exp->AddGuest("hog", kHogVcpus);
  for (int i = 0; i < kHogVcpus; ++i) {
    hog->CreateBackgroundTask("hog" + std::to_string(i));
  }
  return s;
}

FaultPlan SweepFaults(double fail_prob, uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.hypercall_fail_prob = fail_prob;
  plan.hypercall_drop_prob = fail_prob / 4;
  plan.hypercall_spike_prob = 0.05;
  plan.hypercall_spike_latency = Us(200);
  return plan;
}

void TransientSweep() {
  Header("Transient hypercall faults: adaptive RTAs, miss ratio vs fault rate");
  TablePrinter table({"fail_prob", "config", "miss_ratio", "failed_switches", "retries",
                      "degraded", "recovered"});
  double fault_free = 0.0;
  double resilient_at_10 = 0.0;
  double no_retry_at_10 = 0.0;
  for (double p : {0.0, 0.05, 0.10, 0.20}) {
    for (Mode mode : {Mode::kNoRetry, Mode::kResilient}) {
      ExperimentConfig cfg = BaseConfig(mode);
      if (p > 0) {
        cfg.faults = SweepFaults(p, /*seed=*/7);
      }
      Scenario s = BuildScenario(std::move(cfg));
      s.Run();
      uint64_t failed = 0;
      for (const auto& t : s.tasks) {
        failed += t->failed_switches();
      }
      ResilienceCounters rc = s.exp->resilience();
      double miss = s.monitor.TotalMissRatio();
      table.AddRow({TablePrinter::Fmt(p, 2), mode == Mode::kNoRetry ? "no-retry" : "resilient",
                    Pct(miss), std::to_string(failed), std::to_string(rc.retries),
                    std::to_string(rc.degraded_entries), std::to_string(rc.recoveries)});
      if (p == 0.0 && mode == Mode::kResilient) {
        fault_free = miss;
      }
      if (p == 0.10 && mode == Mode::kResilient) {
        resilient_at_10 = miss;
      }
      if (p == 0.10 && mode == Mode::kNoRetry) {
        no_retry_at_10 = miss;
      }
    }
  }
  table.Print(std::cout);

  double bound = 2 * fault_free + 0.005;
  bool resilient_ok = resilient_at_10 <= bound;
  bool ablation_shows = no_retry_at_10 > bound;
  std::cout << "check: fault_free=" << Pct(fault_free) << " resilient@10%="
            << Pct(resilient_at_10) << " no_retry@10%=" << Pct(no_retry_at_10)
            << " bound=" << Pct(bound) << " => "
            << (resilient_ok && ablation_shows ? "PASS" : "FAIL")
            << " (resilient <= bound < no-retry)\n";
}

void DegradedModeDrill() {
  Header("Degraded-mode drill: outage, stale shared page, VM crash + restart");
  ExperimentConfig cfg = BaseConfig(Mode::kResilient);
  cfg.faults = SweepFaults(0.02, /*seed=*/11);
  cfg.faults.hypercall_outages.push_back({Sec(5), Sec(5) + Ms(500)});
  cfg.faults.shared_page_visibility_delay = Us(200);
  cfg.faults.vm_failures.push_back({/*vm_index=*/0, /*crash_at=*/Sec(10),
                                    /*restart_at=*/Sec(12)});
  cfg.dpwrap.watchdog.reclaim_crashed = true;
  cfg.dpwrap.watchdog.freshness_horizon = Ms(50);

  Scenario s = BuildScenario(std::move(cfg));
  // Crashed-VM recovery: when the VM restarts its tasks re-register.
  s.exp->fault_injector()->AddRestartHandler([&s](Vm* vm) {
    (void)vm;
    for (auto& t : s.tasks) {
      t->Reregister();  // No-op for tasks that are still registered.
    }
  });
  s.Run();

  ResilienceCounters rc = s.exp->resilience();
  PrintResilience(std::cout, rc);
  std::cout << "overall miss ratio: " << Pct(s.monitor.TotalMissRatio()) << "\n";
  bool ok = rc.degraded_entries > 0 && rc.recoveries > 0 && rc.vm_crashes == 1 &&
            rc.vm_restarts == 1 && rc.watchdog_reclaims >= 1;
  std::cout << "check: degraded=" << rc.degraded_entries << " recovered=" << rc.recoveries
            << " crashes=" << rc.vm_crashes << " restarts=" << rc.vm_restarts
            << " reclaims=" << rc.watchdog_reclaims << " => " << (ok ? "PASS" : "FAIL")
            << "\n";
}

}  // namespace
}  // namespace rtvirt::bench

int main() {
  rtvirt::bench::TransientSweep();
  rtvirt::bench::DegradedModeDrill();
  return 0;
}

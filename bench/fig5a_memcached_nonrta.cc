// Figure 5a: latency distribution of a memcached VM contending with 19
// non-RTA CPU-bound VMs on two PCPUs, under Credit (26% share, 1 ms
// timeslice, 500 us ratelimit), RT-Xen A (66 us / 283 us), RT-Xen B
// (33 us / 177 us) and RTVirt (58 us / 500 us). SLO: 500 us at the 99.9th
// percentile. Prints each configuration's latency percentiles, the CDF
// series, and the CPU bandwidth it reserves.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace rtvirt {
namespace {

constexpr TimeNs kDuration = Sec(200);
constexpr TimeNs kSlo = Us(500);

struct Setup {
  const char* name;
  Framework fw;
  ServerParams server;    // RT-Xen only.
  TimeNs rtvirt_slice;    // RTVirt only.
  double credit_share;    // Credit only.
  const char* paper_999;
};

struct Outcome {
  Samples latency;
  double reserved_cpus = 0;
  TimeNs hog_runtime = 0;
};

Outcome Run(const Setup& setup) {
  ExperimentConfig cfg = bench::Config(setup.fw, 2);
  if (setup.fw == Framework::kCredit) {
    cfg.credit.timeslice = Ms(1);     // Paper: global timeslice 1 ms.
    cfg.credit.ratelimit = Us(500);   // Paper: ratelimit 500 us.
  }
  Experiment exp(cfg);
  GuestOs* mc = exp.AddGuest("memcached", 1);

  Outcome out;
  MemcachedConfig mcfg;
  switch (setup.fw) {
    case Framework::kRtvirt:
      mcfg.slice = setup.rtvirt_slice;
      bench::SetMicroSlack(exp, mc);  // 6 us slack on the 500 us period.
      break;
    case Framework::kRtXen: {
      exp.SetVcpuServer(mc->vm()->vcpu(0), setup.server);
      Bandwidth bw = Bandwidth::FromSlicePeriod(setup.server.budget, setup.server.period);
      mc->SetVcpuCapacity(0, bw);
      mcfg.slice = std::min(setup.server.budget, Us(66));
      out.reserved_cpus = bw.ToDouble();
      break;
    }
    case Framework::kCredit: {
      // Weight equivalent to the reserved share among the 19 hog VMs.
      int hog_weight = 256;
      int total_needed = static_cast<int>(19 * hog_weight / (1.0 - setup.credit_share) *
                                          setup.credit_share);
      mc->vm()->set_weight(total_needed);
      out.reserved_cpus = setup.credit_share * 2;  // Share of both PCPUs.
      break;
    }
    default:
      break;
  }

  std::vector<GuestOs*> hogs;
  for (int i = 0; i < 19; ++i) {
    GuestOs* hog = exp.AddGuest("hog" + std::to_string(i), 1);
    hog->CreateBackgroundTask("bg");
    hogs.push_back(hog);
  }

  DeadlineMonitor mon;
  MemcachedServer server(mc, "mc", mcfg, exp.rng().Fork());
  server.task()->set_observer(&mon);
  server.Start(0, kDuration);
  exp.Run(Sec(1));
  if (setup.fw == Framework::kRtvirt) {
    // The actual host reservation (RTA bandwidth + slack).
    out.reserved_cpus = exp.dpwrap()->total_reserved().ToDouble();
  }
  exp.Run(kDuration + Ms(10));
  out.latency = mon.response_times_us();
  for (GuestOs* hog : hogs) {
    out.hog_runtime += hog->vm()->TotalRuntime();
  }
  return out;
}

}  // namespace
}  // namespace rtvirt

int main() {
  using namespace rtvirt;
  bench::Header("Figure 5a: memcached vs 19 non-RTA VMs on 2 PCPUs (SLO: 500 us @ p99.9)");

  const Setup setups[] = {
      {"Credit", Framework::kCredit, {}, 0, 0.26, "7100"},
      {"RT-Xen A", Framework::kRtXen, {Us(66), Us(283)}, 0, 0, "114"},
      {"RT-Xen B", Framework::kRtXen, {Us(33), Us(177)}, 0, 0, "8400"},
      {"RTVirt", Framework::kRtvirt, {}, Us(58), 0, "379"},
  };

  TablePrinter table({"Config", "reserved CPUs", "mean", "p99", "p99.9", "SLO met",
                      "paper p99.9", "hog CPU-s"});
  std::vector<std::pair<const char*, Samples>> cdfs;
  for (const Setup& s : setups) {
    Outcome out = Run(s);
    table.AddRow({s.name, TablePrinter::Fmt(out.reserved_cpus, 3),
                  TablePrinter::Fmt(out.latency.Mean(), 1),
                  TablePrinter::Fmt(out.latency.Percentile(99), 1),
                  TablePrinter::Fmt(out.latency.Percentile(99.9), 1),
                  out.latency.Percentile(99.9) <= ToUs(kSlo) ? "yes" : "NO", s.paper_999,
                  TablePrinter::Fmt(ToSec(out.hog_runtime), 1)});
    cdfs.emplace_back(s.name, std::move(out.latency));
  }
  table.Print(std::cout);

  std::cout << "\nLatency CDFs (us), 20 points each:\n";
  for (auto& [name, samples] : cdfs) {
    std::cout << name << ":\n";
    PrintCdf(std::cout, samples, 20, "us");
  }
  std::cout << "\nPaper: only RTVirt and RT-Xen A meet the SLO; RTVirt uses 50.2% less CPU\n"
               "bandwidth than RT-Xen A.\n";
  return 0;
}

// PCPU fault & capacity-degradation evaluation (robustness PR): a 4-core
// host loses core 3 mid-run, has core 2 frequency-throttled while the dead
// core is still out, then heals — and three recovery policies ride the same
// deterministic fault timeline:
//
//   t =  6 s  pcpu 3 goes offline (hotplug window)      effective cap 3.0
//   t = 10 s  pcpu 2 throttled to 0.6x                  effective cap 2.6
//   t = 14 s  pcpu 2 back to full speed                 effective cap 3.0
//   t = 18 s  pcpu 3 back online                        effective cap 4.0
//
// Demand: a HIGH-criticality inelastic tier (~1.8 CPUs, one RTA per VCPU)
// plus a LOW elastic tier (~1.8 CPUs, compressible to 0.9). At the trough
// the host can serve 2.6 CPUs, so HIGH fits only if the LOW tier gives way.
//
//   recover - full cross-layer path: DP-WRAP re-plans over surviving
//             effective capacity, evacuated VCPUs pay the migration-model
//             cost, the capacity drop raises host pressure and the guest
//             compress-then-shed ladder pushes LOW out of the way; the
//             invariant auditor watches the whole time;
//   replan  - host-only recovery: the layout tracks effective capacity (no
//             dead-core segments) but nobody renegotiates demand, so the
//             plan is squeezed proportionally below what HIGH needs;
//   frozen  - no protection: the plan still lays segments onto the dead
//             core (their VCPUs simply never run) and stretches consumed
//             time on the throttled core without compensation.
//
// Acceptance: with recovery enabled HIGH misses nothing across the whole
// failure/throttle/heal timeline and the auditor (which checks the plan
// against *effective*, not nominal, capacity) records zero violations;
// frozen demonstrably misses HIGH deadlines.

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/migration_model.h"
#include "src/metrics/resilience.h"
#include "src/workloads/churn.h"

namespace rtvirt::bench {
namespace {

constexpr TimeNs kRunLength = Sec(24);
constexpr int kPcpus = 4;
constexpr int kHighTasks = 8;
constexpr int kLowTasks = 4;
constexpr TimeNs kRetry = Ms(50);

// Off the 10 ms period grid and the replan boundaries, so the dying core is
// mid-grant and the evacuation path (not just the layout change) is exercised.
constexpr TimeNs kCoreFailAt = Sec(6) + Us(1700);
constexpr TimeNs kCoreBackAt = Sec(18);
constexpr TimeNs kThrottleAt = Sec(10);
constexpr TimeNs kHealAt = Sec(14);

enum class Mode { kRecover, kReplan, kFrozen };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kRecover:
      return "recover";
    case Mode::kReplan:
      return "replan";
    case Mode::kFrozen:
      return "frozen";
  }
  return "?";
}

struct TierResult {
  int total = 0;
  int admitted = 0;
  uint64_t ontime = 0;  // Completions that met their deadline.
  uint64_t missed = 0;  // Completions past their deadline.
  double miss = 0.0;    // Miss ratio over completed jobs.
};

struct TimelineResult {
  TierResult hi, lo;
  ResilienceCounters rc;
};

// Intra-host VCPU evacuation moves a hot per-core working set, not a whole
// VM image; the stop-and-copy downtime of a small live migration is the
// model-derived price every evacuated VCPU pays on its next dispatch.
TimeNs EvacuationPenalty() {
  MigrationCostModel m;
  m.memory_gb = 0.002;        // ~2 MB of hot per-VCPU state.
  m.dirty_rate_gbps = 0.5;
  m.link_gbps = 50.0;         // Cross-core, not cross-host: memory-bus speed.
  m.downtime_target_gb = 0.002;
  return m.Predict().downtime;
}

// One criticality tier: a ChurnDriver whose every slot runs a single fixed
// profile episode for the whole run (staggered arrivals + the retry loop).
ChurnConfig Tier(TimeNs stagger, RtaParams profile, Criticality crit, double elastic_min) {
  ChurnConfig c;
  c.experiment_len = kRunLength;
  c.min_episode = kRunLength + Sec(10);  // Longer than the run: one episode
  c.max_episode = kRunLength + Sec(10);  // per slot, capped at the end.
  c.max_gap = stagger;
  c.idle_prob = 0.0;
  c.criticality = crit;
  c.elastic_min_fraction = elastic_min;
  c.profile = profile;
  c.admission_retry = kRetry;
  return c;
}

TierResult Summarize(const ChurnDriver& churn, const DeadlineMonitor& mon) {
  TierResult r;
  for (const auto& rta : churn.rtas()) {
    ++r.total;
    if (rta->admitted_at() != kTimeNever) {
      ++r.admitted;
    }
  }
  r.ontime = mon.total_completed() - mon.total_misses();
  r.missed = mon.total_misses();
  r.miss = mon.TotalMissRatio();
  return r;
}

TimelineResult RunTimeline(Mode mode) {
  ExperimentConfig cfg = Config(Framework::kRtvirt, kPcpus);
  cfg.machine.evacuation_penalty = EvacuationPenalty();
  if (mode == Mode::kRecover || mode == Mode::kReplan) {
    cfg.dpwrap.pcpu_recovery.enabled = true;
  }
  if (mode == Mode::kRecover) {
    cfg.dpwrap.overload.enabled = true;
    cfg.audit.enabled = true;
  }
  GuestConfig gcfg;
  gcfg.overload.enabled = mode == Mode::kRecover;

  // The deterministic hardware timeline; identical in every mode.
  FaultPlan::PcpuFault outage;
  outage.kind = FaultPlan::PcpuFault::Kind::kTransientOffline;
  outage.pcpu = kPcpus - 1;
  outage.at = kCoreFailAt;
  outage.until = kCoreBackAt;
  cfg.faults.pcpu_faults.push_back(outage);
  FaultPlan::PcpuFault throttle;
  throttle.kind = FaultPlan::PcpuFault::Kind::kDegrade;
  throttle.pcpu = kPcpus - 2;
  throttle.at = kThrottleAt;
  throttle.until = kHealAt;
  throttle.speed = 0.6;
  cfg.faults.pcpu_faults.push_back(throttle);

  Experiment exp(cfg);
  GuestOs* hi = exp.AddGuest("hi", kHighTasks, gcfg);
  GuestOs* lo = exp.AddGuest("lo", kLowTasks, gcfg);

  DeadlineMonitor hi_mon, lo_mon;
  // Utilizations deliberately never pack a VCPU to exactly 1.0 under any
  // compression/reshuffle combination (max packing 0.9): the channel's
  // budget slack needs surviving margin to drain transient backlogs, and an
  // exactly-full VCPU would clip it into permanent tardiness.
  RtaParams quarter{Us(2250), Ms(10)};  // 0.225 CPU x 8 = 1.8 CPUs, inelastic.
  RtaParams half{Us(4500), Ms(10)};     // 0.45 CPU x 4 = 1.8 CPUs, elastic to 0.9.
  ChurnDriver hi_churn(hi, Tier(Ms(200), quarter, Criticality::kHigh, 1.0), Rng(211),
                       &hi_mon);
  ChurnDriver lo_churn(lo, Tier(Ms(200), half, Criticality::kLow, 0.5), Rng(212), &lo_mon);
  hi_churn.Start();
  lo_churn.Start();
  std::function<void()> sample;
  if (std::getenv("RTVIRT_RESILIENCE_TRACE") != nullptr) {
    sample = [&] {
      std::cout << "t=" << exp.sim().Now() / Ms(1) << "ms hi=" << hi_mon.total_completed()
                << "/" << hi_mon.total_misses() << " lo=" << lo_mon.total_completed()
                << "/" << lo_mon.total_misses()
                << " cap=" << Cpus(exp.machine().EffectiveCapacity())
                << " host=" << exp.dpwrap()->total_reserved().ppb() / 1000000
                << " pressure=" << exp.dpwrap()->pressure() << "\n";
      if (exp.sim().Now() < kRunLength) {
        exp.sim().After(Ms(500), sample);
      }
    };
    exp.sim().After(Ms(500), sample);
  }
  exp.Run(kRunLength);

  TimelineResult r;
  r.hi = Summarize(hi_churn, hi_mon);
  r.lo = Summarize(lo_churn, lo_mon);
  r.rc = exp.resilience();
  if (exp.auditor() != nullptr) {
    for (const AuditViolation& v : exp.auditor()->violations()) {
      std::cout << "audit violation @" << v.time << " ns [" << v.invariant << "] "
                << v.detail << "\n";
    }
  }
  if (mode == Mode::kRecover) {
    exp.PrintReport(std::cout, "pcpu_resilience/recover");
  }
  return r;
}

std::string Adm(const TierResult& t) {
  return std::to_string(t.admitted) + "/" + std::to_string(t.total);
}

void ResilienceTimeline() {
  Header("PCPU failure/throttle/heal timeline: cross-layer recovery vs "
         "host-only replan vs frozen layout");
  TablePrinter table({"config", "hi_adm", "hi_ontime", "hi_missed", "hi_miss", "lo_adm",
                      "lo_miss", "evac", "replans", "sheds", "resumes", "audit"});
  TimelineResult recover, replan, frozen;
  for (Mode mode : {Mode::kRecover, Mode::kReplan, Mode::kFrozen}) {
    TimelineResult r = RunTimeline(mode);
    table.AddRow({ModeName(mode), Adm(r.hi), std::to_string(r.hi.ontime),
                  std::to_string(r.hi.missed), Pct(r.hi.miss), Adm(r.lo), Pct(r.lo.miss),
                  std::to_string(r.rc.pcpu_evacuations),
                  std::to_string(r.rc.capacity_replans), std::to_string(r.rc.sheds),
                  std::to_string(r.rc.resumes),
                  std::to_string(r.rc.audit_violations) + "/" +
                      std::to_string(r.rc.audit_checks)});
    switch (mode) {
      case Mode::kRecover:
        recover = r;
        break;
      case Mode::kReplan:
        replan = r;
        break;
      case Mode::kFrozen:
        frozen = r;
        break;
    }
  }
  table.Print(std::cout);

  bool recover_ok = recover.hi.admitted == recover.hi.total && recover.hi.missed == 0 &&
                    recover.rc.pcpu_evacuations > 0 && recover.rc.capacity_replans > 0;
  bool audit_ok = recover.rc.audit_checks > 0 && recover.rc.audit_violations == 0;
  bool shed_ok = recover.rc.sheds > 0 && recover.rc.resumes > 0;
  bool frozen_shows = frozen.hi.missed > 0;
  std::cout << "check: recover hi " << Adm(recover.hi) << " missed=" << recover.hi.missed
            << " evac=" << recover.rc.pcpu_evacuations
            << " replans=" << recover.rc.capacity_replans << " => "
            << (recover_ok ? "PASS" : "FAIL")
            << " (HIGH misses nothing across the fault timeline)\n";
  std::cout << "check: audit checks=" << recover.rc.audit_checks << " violations="
            << recover.rc.audit_violations << " => " << (audit_ok ? "PASS" : "FAIL")
            << " (plan stayed within effective capacity)\n";
  std::cout << "check: sheds=" << recover.rc.sheds << " resumes=" << recover.rc.resumes
            << " => " << (shed_ok ? "PASS" : "FAIL")
            << " (LOW gave way at the trough and came back after heal)\n";
  std::cout << "check: frozen hi missed=" << frozen.hi.missed << " replan hi missed="
            << replan.hi.missed << " => " << (frozen_shows ? "PASS" : "FAIL")
            << " (frozen layout demonstrably misses)\n";
}

}  // namespace
}  // namespace rtvirt::bench

int main() {
  rtvirt::bench::ResilienceTimeline();
  return 0;
}
